// Peer-to-peer sync point processing — the LU 6.2 environment Presumed
// Nothing was designed for. Unlike client-server 2PC:
//
//   * any participant can initiate the commit, and the coordinator can
//     change from one transaction to the next;
//   * a server can declare OK_TO_LEAVE_OUT and be skipped entirely by
//     transactions that do not touch it;
//   * two peers initiating commit for the same transaction is an error the
//     protocol detects and turns into a consistent abort.

#include <cstdio>

#include "harness/cluster.h"
#include "util/logging.h"

using namespace tpc;

namespace {

void Writer(harness::Cluster& c, const std::string& node) {
  c.tm(node).SetAppDataHandler(
      [&c, node](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm(node).Write(txn, 0, node + ":data", "v",
                         [](Status st) { TPC_CHECK(st.ok()); });
      });
}

}  // namespace

int main() {
  harness::NodeOptions options;
  options.tm.protocol = tm::ProtocolKind::kPresumedNothing;
  options.tm.include_idle_sessions = true;
  options.tm.leave_out_opt = true;
  options.tm.ok_to_leave_out = true;
  options.rm_options.ok_to_leave_out = true;

  harness::Cluster c;
  c.AddNode("alpha", options);
  c.AddNode("beta", options);
  c.AddNode("archive", options);  // a suspendable server
  c.Connect("alpha", "beta");
  c.Connect("alpha", "archive");
  Writer(c, "beta");
  Writer(c, "archive");

  // --- Transaction 1: alpha coordinates; everyone participates -------------
  uint64_t txn1 = c.tm("alpha").Begin();
  c.tm("alpha").Write(txn1, 0, "alpha:data", "v",
                      [](Status st) { TPC_CHECK(st.ok()); });
  TPC_CHECK(c.tm("alpha").SendWork(txn1, "beta").ok());
  TPC_CHECK(c.tm("alpha").SendWork(txn1, "archive").ok());
  c.RunFor(sim::kSecond);
  auto commit1 = c.CommitAndWait("alpha", txn1);
  c.RunFor(sim::kSecond);
  std::printf("txn1 (alpha coordinates, all three): %s; archive voted "
              "OK_TO_LEAVE_OUT and is now suspended\n",
              std::string(tm::OutcomeToString(commit1.result.outcome)).c_str());

  // --- Transaction 2: beta coordinates this time; archive untouched --------
  // Peer-to-peer: the coordinator role moved from alpha to beta.
  uint64_t txn2 = c.tm("beta").Begin();
  c.tm("beta").Write(txn2, 0, "beta:data", "v2",
                     [](Status st) { TPC_CHECK(st.ok()); });
  TPC_CHECK(c.tm("beta").SendWork(txn2, "alpha").ok());
  c.tm("alpha").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm("alpha").Write(txn, 0, "alpha:data", "v2",
                            [](Status st) { TPC_CHECK(st.ok()); });
      });
  c.RunFor(sim::kSecond);
  auto commit2 = c.CommitAndWait("beta", txn2);
  c.RunFor(sim::kSecond);
  std::printf("txn2 (beta coordinates, archive left out): %s; archive cost: "
              "%llu flows, %llu log writes\n",
              std::string(tm::OutcomeToString(commit2.result.outcome)).c_str(),
              static_cast<unsigned long long>(
                  c.tm("archive").CostOf(txn2).flows_sent),
              static_cast<unsigned long long>(
                  c.tm("archive").CostOf(txn2).tm_log_writes));

  // --- Transaction 3: data reaches the archive again: it rejoins -----------
  uint64_t txn3 = c.tm("alpha").Begin();
  TPC_CHECK(c.tm("alpha").SendWork(txn3, "archive").ok());
  c.RunFor(sim::kSecond);
  auto commit3 = c.CommitAndWait("alpha", txn3);
  c.RunFor(sim::kSecond);
  std::printf("txn3 (archive touched again): %s; archive cost: %llu flows\n",
              std::string(tm::OutcomeToString(commit3.result.outcome)).c_str(),
              static_cast<unsigned long long>(
                  c.tm("archive").CostOf(txn3).flows_sent));

  // --- Transaction 4: two initiators — the error case ----------------------
  uint64_t txn4 = c.tm("alpha").Begin();
  c.tm("alpha").Write(txn4, 0, "alpha:data", "v4",
                      [](Status st) { TPC_CHECK(st.ok()); });
  TPC_CHECK(c.tm("alpha").SendWork(txn4, "beta").ok());
  c.RunFor(sim::kSecond);
  bool alpha_done = false, beta_done = false;
  tm::CommitResult alpha_result, beta_result;
  c.tm("alpha").Commit(txn4, [&](tm::CommitResult r) {
    alpha_done = true;
    alpha_result = r;
  });
  c.tm("beta").Commit(txn4, [&](tm::CommitResult r) {
    beta_done = true;
    beta_result = r;
  });
  c.RunFor(60 * sim::kSecond);
  std::printf("txn4 (both peers initiated commit): alpha=%s beta=%s — "
              "consistent %s\n",
              std::string(tm::OutcomeToString(alpha_result.outcome)).c_str(),
              std::string(tm::OutcomeToString(beta_result.outcome)).c_str(),
              c.Audit(txn4).consistent ? "abort" : "DIVERGENCE!");
  return 0;
}
