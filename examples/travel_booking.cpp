// Travel booking: the hotel/airline reservation workload the paper's
// introduction motivates. A travel agency books a flight and a hotel in one
// distributed transaction, consults a fare-quote service (read-only), and
// survives a mid-commit crash of the hotel system.
//
// Also demonstrates the paper's central reliability comparison: when the
// hotel operator makes a heuristic decision during an outage, Presumed
// Nothing reports the damage to the travel agency while Presumed Abort
// (R*-style) silently tells it "committed".

#include <cstdio>
#include <string>

#include "harness/cluster.h"
#include "util/logging.h"

using namespace tpc;

namespace {

struct Trip {
  harness::Cluster cluster;

  explicit Trip(tm::ProtocolKind protocol,
                tm::HeuristicPolicy hotel_policy = tm::HeuristicPolicy::kNever) {
    harness::NodeOptions options;
    options.tm.protocol = protocol;
    harness::NodeOptions hotel_options = options;
    hotel_options.tm.heuristic_policy = hotel_policy;
    hotel_options.tm.heuristic_delay = 30 * sim::kSecond;
    hotel_options.tm.inquiry_delay = 500 * sim::kSecond;

    cluster.AddNode("agency", options);
    cluster.AddNode("airline", options);
    cluster.AddNode("hotel", hotel_options);
    cluster.AddNode("quotes", options);  // fare quotes: read-only
    cluster.Connect("agency", "airline");
    cluster.Connect("agency", "hotel");
    cluster.Connect("agency", "quotes");

    cluster.tm("airline").SetAppDataHandler(
        [this](uint64_t txn, const net::NodeId&, std::string_view seat) {
          cluster.tm("airline").Write(txn, 0, "seat:" + std::string(seat),
                                      "booked",
                                      [](Status st) { TPC_CHECK(st.ok()); });
        });
    cluster.tm("hotel").SetAppDataHandler(
        [this](uint64_t txn, const net::NodeId&, std::string_view room) {
          cluster.tm("hotel").Write(txn, 0, "room:" + std::string(room),
                                    "booked",
                                    [](Status st) { TPC_CHECK(st.ok()); });
        });
    cluster.tm("quotes").SetAppDataHandler(
        [this](uint64_t txn, const net::NodeId&, std::string_view) {
          cluster.tm("quotes").Read(txn, 0, "fare:NYC-SFO",
                                    [](Result<std::string>) {});
        });
  }

  uint64_t Book() {
    uint64_t txn = cluster.tm("agency").Begin();
    cluster.tm("agency").Write(txn, 0, "itinerary:42", "NYC-SFO",
                               [](Status st) { TPC_CHECK(st.ok()); });
    TPC_CHECK(cluster.tm("agency").SendWork(txn, "airline", "12A").ok());
    TPC_CHECK(cluster.tm("agency").SendWork(txn, "hotel", "501").ok());
    TPC_CHECK(cluster.tm("agency").SendWork(txn, "quotes").ok());
    cluster.RunFor(sim::kSecond);
    return txn;
  }
};

}  // namespace

int main() {
  // --- 1. The happy path -----------------------------------------------------
  {
    Trip trip(tm::ProtocolKind::kPresumedAbort);
    uint64_t txn = trip.Book();
    auto commit = trip.cluster.CommitAndWait("agency", txn);
    trip.cluster.RunFor(sim::kSecond);
    std::printf("1. Booking committed: outcome=%s, latency=%lldms\n",
                std::string(tm::OutcomeToString(commit.result.outcome)).c_str(),
                static_cast<long long>(commit.latency / sim::kMillisecond));
    std::printf("   seat 12A:  %s\n",
                trip.cluster.node("airline").rm().Peek("seat:12A").value_or("?").c_str());
    std::printf("   room 501:  %s\n",
                trip.cluster.node("hotel").rm().Peek("room:501").value_or("?").c_str());
    tm::TxnCost quotes = trip.cluster.tm("quotes").CostOf(txn);
    std::printf("   fare-quote service voted read-only: %llu flows, "
                "%llu log writes\n",
                static_cast<unsigned long long>(quotes.flows_sent),
                static_cast<unsigned long long>(quotes.tm_log_writes));
  }

  // --- 2. The hotel crashes mid-commit and recovers --------------------------
  {
    Trip trip(tm::ProtocolKind::kPresumedAbort);
    uint64_t txn = trip.Book();
    trip.cluster.ctx().failures().ArmCrash("hotel", "after_prepared_force");
    auto commit = trip.cluster.StartCommit("agency", txn);
    trip.cluster.RunFor(10 * sim::kSecond);
    std::printf("\n2. Hotel crashed during commit; agency still waiting: %s\n",
                commit->completed ? "no (?)" : "yes");
    trip.cluster.node("hotel").Restart();
    trip.cluster.RunFor(60 * sim::kSecond);
    std::printf("   after hotel recovery: outcome=%s, booking consistent=%s\n",
                std::string(tm::OutcomeToString(
                    trip.cluster.tm("agency").View(txn).outcome)).c_str(),
                trip.cluster.Audit(txn).consistent ? "yes" : "NO");
  }

  // --- 3. Heuristic damage: PA hides it from the agency, PN reports it -------
  //
  // The hotel is booked through a franchise system (a cascaded
  // coordinator). The franchise crashes right after durably deciding
  // commit; the hotel, blocked in doubt, heuristically aborts. When the
  // franchise recovers and re-drives the commit, the damage is detected —
  // and what happens to the report is the PA-vs-PN difference: PA stops it
  // at the franchise (the immediate coordinator, R*-style); PN carries it
  // all the way to the agency.
  for (auto protocol : {tm::ProtocolKind::kPresumedAbort,
                        tm::ProtocolKind::kPresumedNothing}) {
    harness::Cluster c;
    harness::NodeOptions options;
    options.tm.protocol = protocol;
    harness::NodeOptions hotel_options = options;
    hotel_options.tm.heuristic_policy = tm::HeuristicPolicy::kAbort;
    hotel_options.tm.heuristic_delay = 30 * sim::kSecond;
    hotel_options.tm.inquiry_delay = 500 * sim::kSecond;
    c.AddNode("agency", options);
    c.AddNode("franchise", options);
    c.AddNode("hotel", hotel_options);
    c.Connect("agency", "franchise");
    c.Connect("franchise", "hotel");
    c.tm("franchise").SetAppDataHandler(
        [&c](uint64_t txn, const net::NodeId& from, std::string_view room) {
          if (from != "agency") return;
          c.tm("franchise").Write(txn, 0, "booking-fee", "20",
                                  [](Status st) { TPC_CHECK(st.ok()); });
          TPC_CHECK(
              c.tm("franchise").SendWork(txn, "hotel", std::string(room)).ok());
        });
    c.tm("hotel").SetAppDataHandler(
        [&c](uint64_t txn, const net::NodeId&, std::string_view room) {
          c.tm("hotel").Write(txn, 0, "room:" + std::string(room), "booked",
                              [](Status st) { TPC_CHECK(st.ok()); });
        });

    uint64_t txn = c.tm("agency").Begin();
    c.tm("agency").Write(txn, 0, "itinerary:42", "NYC-SFO",
                         [](Status st) { TPC_CHECK(st.ok()); });
    TPC_CHECK(c.tm("agency").SendWork(txn, "franchise", "501").ok());
    c.RunFor(sim::kSecond);

    c.ctx().failures().ArmCrash("franchise", "after_commit_force");
    auto commit = c.StartCommit("agency", txn);
    c.RunFor(60 * sim::kSecond);   // hotel heuristically aborts at +30s
    c.node("franchise").Restart();
    c.RunFor(300 * sim::kSecond);  // recovery re-drives the commit

    harness::TxnAudit audit = c.Audit(txn);
    std::printf("\n3. [%s] hotel heuristically aborted against a commit:\n",
                std::string(tm::ProtocolKindToString(protocol)).c_str());
    std::printf("   ground truth damage:          %s\n",
                audit.damage_ground_truth ? "yes" : "no");
    std::printf("   franchise saw the report:     %s\n",
                c.tm("franchise").View(txn).damage_reported_here ? "yes"
                                                                 : "no");
    std::printf("   agency told about damage:     %s\n",
                (commit->completed && commit->result.heuristic_damage) ||
                        c.tm("agency").View(txn).damage_reported_here
                    ? "yes"
                    : "NO — it believes the trip is fully booked");
    std::printf("   itinerary: %s / room 501: %s\n",
                c.node("agency").rm().Peek("itinerary:42").value_or("-").c_str(),
                c.node("hotel").rm().Peek("room:501").value_or("-").c_str());
  }
  return 0;
}
