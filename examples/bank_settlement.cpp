// End-of-day settlement between two banks — the application the paper cites
// for the long-locks optimization ("banks that needed to reconcile their
// accounts at the end of the day... a large number of short transactions
// with small delays between them").
//
// Runs the same stream of settlement transactions three ways and compares
// network flows:
//   1. basic 2PC,
//   2. presumed abort + long locks (acks ride the next transaction), and
//   3. presumed abort + long locks + last agent (two transactions commit
//      in three flows).

#include <cstdio>
#include <string>

#include "analysis/cost_model.h"
#include "harness/cluster.h"
#include "harness/scenarios.h"
#include "util/logging.h"
#include "util/format.h"

using namespace tpc;

namespace {

constexpr uint64_t kSettlements = 40;  // even, for the last-agent pairing

uint64_t RunStream(analysis::Table4Variant variant) {
  // The Table 4 scenario *is* the settlement stream: two members, r short
  // transactions, each moving one balance adjustment across.
  analysis::CostTriplet cost =
      harness::RunTable4Scenario(variant, kSettlements);
  return cost.flows;
}

}  // namespace

int main() {
  std::printf("End-of-day settlement: %llu transfer transactions between\n"
              "bank A and bank B.\n\n",
              static_cast<unsigned long long>(kSettlements));

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"protocol", "network flows", "flows per settlement"});
  for (auto variant : {analysis::Table4Variant::kBasic2PC,
                       analysis::Table4Variant::kLongLocks,
                       analysis::Table4Variant::kLongLocksLastAgent}) {
    uint64_t flows = RunStream(variant);
    rows.push_back({std::string(analysis::Table4VariantName(variant)),
                    StringPrintf("%llu", static_cast<unsigned long long>(flows)),
                    StringPrintf("%.1f", static_cast<double>(flows) /
                                             kSettlements)});
  }
  std::printf("%s", RenderTable(rows).c_str());

  std::printf(
      "\nWith long locks the commit acknowledgment is packaged into the\n"
      "next settlement's first data packet (4 -> 3 flows); adding the\n"
      "last-agent optimization and alternating initiators commits two\n"
      "settlements in three flows (1.5 per transaction), exactly the\n"
      "paper's Table 4.\n");

  // Show the actual money movement is still correct under the most
  // aggressive configuration: run a few hand-driven settlements and check
  // the balances.
  harness::Cluster c;
  harness::NodeOptions options;
  options.tm.protocol = tm::ProtocolKind::kPresumedAbort;
  c.AddNode("bankA", options);
  c.AddNode("bankB", options);
  c.Connect("bankA", "bankB", {.long_locks = true}, {});

  int balance_a = 1000;
  int balance_b = 1000;
  c.tm("bankB").SetAppDataHandler(
      [&](uint64_t txn, const net::NodeId&, std::string_view amount) {
        balance_b += std::stoi(std::string(amount));
        c.tm("bankB").Write(txn, 0, "balance", std::to_string(balance_b),
                            [](Status st) { TPC_CHECK(st.ok()); });
      });

  for (int i = 0; i < 5; ++i) {
    uint64_t txn = c.tm("bankA").Begin();
    balance_a -= 10;
    c.tm("bankA").Write(txn, 0, "balance", std::to_string(balance_a),
                        [](Status st) { TPC_CHECK(st.ok()); });
    TPC_CHECK(c.tm("bankA").SendWork(txn, "bankB", "10").ok());
    c.RunFor(100 * sim::kMillisecond);
    auto commit = c.StartCommit("bankA", txn);
    c.RunFor(100 * sim::kMillisecond);
    // bankB opens the next settlement; its data carries the buffered ack.
    uint64_t handshake = c.tm("bankB").Begin();
    TPC_CHECK(c.tm("bankB").SendWork(handshake, "bankA").ok());
    c.RunFor(100 * sim::kMillisecond);
    TPC_CHECK(commit->completed);
    TPC_CHECK(commit->result.outcome == tm::Outcome::kCommitted);
  }
  c.RunFor(sim::kSecond);
  std::printf(
      "\nAfter 5 transfers of 10 under long locks:\n"
      "  bank A balance: %s (expected 950)\n"
      "  bank B balance: %s (expected 1050)\n",
      c.node("bankA").rm().Peek("balance").value_or("?").c_str(),
      c.node("bankB").rm().Peek("balance").value_or("?").c_str());
  return 0;
}
