// Quickstart: build a three-node cluster, run one distributed transaction
// through presumed-abort two-phase commit, and inspect what happened.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "harness/cluster.h"
#include "util/logging.h"

using namespace tpc;

int main() {
  // A cluster is a deterministic simulation: nodes, a network, and a clock.
  harness::Cluster cluster(/*seed=*/42);

  // Every node gets a transaction manager, a write-ahead log, and one
  // key-value resource manager by default.
  harness::NodeOptions options;
  options.tm.protocol = tm::ProtocolKind::kPresumedAbort;
  cluster.AddNode("app", options);     // the commit coordinator
  cluster.AddNode("orders", options);  // a database server
  cluster.AddNode("stock", options);   // another database server
  cluster.Connect("app", "orders");
  cluster.Connect("app", "stock");

  // Servers do work when application data reaches them.
  cluster.tm("orders").SetAppDataHandler(
      [&](uint64_t txn, const net::NodeId&, std::string_view data) {
        cluster.tm("orders").Write(txn, 0, "order:1001", std::string(data),
                                   [](Status st) { TPC_CHECK(st.ok()); });
      });
  cluster.tm("stock").SetAppDataHandler(
      [&](uint64_t txn, const net::NodeId&, std::string_view) {
        cluster.tm("stock").Write(txn, 0, "widget:count", "41",
                                  [](Status st) { TPC_CHECK(st.ok()); });
      });

  // One distributed transaction: the app updates both servers...
  uint64_t txn = cluster.tm("app").Begin();
  TPC_CHECK(cluster.tm("app").SendWork(txn, "orders", "1 widget").ok());
  TPC_CHECK(cluster.tm("app").SendWork(txn, "stock").ok());
  cluster.RunFor(sim::kSecond);

  // ...and commits. CommitAndWait drives the simulated event loop until
  // the commit callback fires.
  harness::DrivenCommit commit = cluster.CommitAndWait("app", txn);
  cluster.RunFor(sim::kSecond);

  std::printf("outcome:        %s\n",
              std::string(tm::OutcomeToString(commit.result.outcome)).c_str());
  std::printf("commit latency: %lld us (simulated)\n",
              static_cast<long long>(commit.latency));
  std::printf("order row:      %s\n",
              cluster.node("orders").rm().Peek("order:1001").value_or("?").c_str());
  std::printf("stock row:      %s\n",
              cluster.node("stock").rm().Peek("widget:count").value_or("?").c_str());

  // Cost accounting — the quantities the paper analyzes.
  tm::TxnCost total = cluster.TotalCost(txn);
  std::printf("total flows:    %llu network messages\n",
              static_cast<unsigned long long>(total.flows_sent));
  std::printf("TM log writes:  %llu (%llu forced)\n",
              static_cast<unsigned long long>(total.tm_log_writes),
              static_cast<unsigned long long>(total.tm_log_forced));

  // The full message/log trace for the transaction:
  std::printf("\ntrace:\n%s", cluster.ctx().trace().Render(txn).c_str());

  // And the cluster-wide operational metrics.
  std::printf("\nmetrics:\n%s", cluster.ReportMetrics().c_str());
  return 0;
}
