// Write-ahead log: record encoding, forced/non-forced semantics, crash
// durability boundaries, group commit batching, recovery scans.

#include <gtest/gtest.h>

#include "sim/sim_context.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace tpc::wal {
namespace {

LogRecord MakeRecord(RecordType type, uint64_t txn, std::string owner = "tm",
                     std::string body = "") {
  LogRecord rec;
  rec.type = type;
  rec.txn = txn;
  rec.owner = std::move(owner);
  rec.body = std::move(body);
  return rec;
}

TEST(LogRecordTest, EncodeDecodeRoundTrip) {
  LogRecord rec = MakeRecord(RecordType::kTmPrepared, 42, "node1.tm", "body");
  std::string encoded = rec.Encode();
  size_t offset = 0;
  auto decoded = DecodeRecord(encoded, &offset);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, RecordType::kTmPrepared);
  EXPECT_EQ(decoded->txn, 42u);
  EXPECT_EQ(decoded->owner, "node1.tm");
  EXPECT_EQ(decoded->body, "body");
  EXPECT_EQ(offset, encoded.size());
}

TEST(LogRecordTest, CorruptedCrcIsDetected) {
  std::string encoded = MakeRecord(RecordType::kTmCommitted, 7).Encode();
  encoded[encoded.size() - 1] ^= 0x01;  // flip a bit in the body
  size_t offset = 0;
  EXPECT_TRUE(DecodeRecord(encoded, &offset).status().IsCorruption());
  EXPECT_EQ(offset, 0u);  // offset untouched on failure
}

TEST(LogRecordTest, TruncatedTailIsDetected) {
  std::string encoded = MakeRecord(RecordType::kTmCommitted, 7).Encode();
  encoded.resize(encoded.size() - 3);
  size_t offset = 0;
  EXPECT_TRUE(DecodeRecord(encoded, &offset).status().IsCorruption());
}

TEST(LogRecordTest, ScanStopsAtTornTail) {
  std::string log;
  log += MakeRecord(RecordType::kTmPrepared, 1).Encode();
  log += MakeRecord(RecordType::kTmCommitted, 1).Encode();
  std::string torn = MakeRecord(RecordType::kTmEnd, 1).Encode();
  log += torn.substr(0, torn.size() / 2);
  std::vector<LogRecord> records = ScanLog(log);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].type, RecordType::kTmPrepared);
  EXPECT_EQ(records[1].type, RecordType::kTmCommitted);
}

TEST(LogRecordTest, TmRecordClassification) {
  EXPECT_TRUE(IsTmRecord(RecordType::kTmPrepared));
  EXPECT_TRUE(IsTmRecord(RecordType::kTmEnd));
  EXPECT_FALSE(IsTmRecord(RecordType::kRmUpdate));
  EXPECT_FALSE(IsTmRecord(RecordType::kCheckpoint));
}

class LogManagerTest : public ::testing::Test {
 protected:
  sim::SimContext ctx_;
  LogManager log_{&ctx_, "node1", 2 * sim::kMillisecond};
};

TEST_F(LogManagerTest, NonForcedAppendCompletesImmediately) {
  bool done = false;
  log_.Append(MakeRecord(RecordType::kTmEnd, 1), /*force=*/false,
              [&] { done = true; });
  EXPECT_TRUE(done);  // before any simulated time passes
  EXPECT_EQ(log_.stats().writes, 1u);
  EXPECT_EQ(log_.stats().forced_writes, 0u);
}

TEST_F(LogManagerTest, ForcedAppendWaitsForDeviceLatency) {
  bool done = false;
  log_.Append(MakeRecord(RecordType::kTmCommitted, 1), /*force=*/true,
              [&] { done = true; });
  EXPECT_FALSE(done);
  ctx_.events().RunUntil(1 * sim::kMillisecond);
  EXPECT_FALSE(done);  // device takes 2ms
  ctx_.events().RunUntil(2 * sim::kMillisecond);
  EXPECT_TRUE(done);
  EXPECT_EQ(log_.device_forces(), 1u);
}

TEST_F(LogManagerTest, ForceCoversEarlierNonForcedRecords) {
  log_.Append(MakeRecord(RecordType::kRmUpdate, 1, "rm"), /*force=*/false);
  log_.Append(MakeRecord(RecordType::kTmPrepared, 1), /*force=*/true);
  ctx_.events().Run();
  std::vector<LogRecord> recovered = log_.Recover();
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered[0].type, RecordType::kRmUpdate);
  EXPECT_EQ(recovered[1].type, RecordType::kTmPrepared);
}

TEST_F(LogManagerTest, UnforcedTailLostOnCrash) {
  log_.Append(MakeRecord(RecordType::kTmPrepared, 1), /*force=*/true);
  ctx_.events().Run();
  log_.Append(MakeRecord(RecordType::kTmCommitted, 1), /*force=*/false);
  log_.Crash();
  std::vector<LogRecord> recovered = log_.Recover();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].type, RecordType::kTmPrepared);
}

TEST_F(LogManagerTest, InFlightForceLostOnCrash) {
  bool done = false;
  log_.Append(MakeRecord(RecordType::kTmCommitted, 1), /*force=*/true,
              [&] { done = true; });
  ctx_.events().RunUntil(1 * sim::kMillisecond);  // write still in flight
  log_.Crash();
  ctx_.events().Run();
  EXPECT_FALSE(done);  // callback dropped
  EXPECT_TRUE(log_.Recover().empty());
}

TEST_F(LogManagerTest, PerTxnAndPerOwnerStats) {
  log_.Append(MakeRecord(RecordType::kTmPrepared, 1, "a"), true);
  log_.Append(MakeRecord(RecordType::kTmCommitted, 1, "a"), true);
  log_.Append(MakeRecord(RecordType::kTmEnd, 1, "a"), false);
  log_.Append(MakeRecord(RecordType::kTmCommitted, 2, "b"), true);
  ctx_.events().Run();
  EXPECT_EQ(log_.StatsForTxn(1).writes, 3u);
  EXPECT_EQ(log_.StatsForTxn(1).forced_writes, 2u);
  EXPECT_EQ(log_.StatsForTxn(2).writes, 1u);
  EXPECT_EQ(log_.StatsForOwner("a").writes, 3u);
  EXPECT_EQ(log_.StatsForOwner("b").forced_writes, 1u);
  EXPECT_EQ(log_.StatsForOwner("absent").writes, 0u);
}

TEST_F(LogManagerTest, LsnAdvancesByEncodedSize) {
  Lsn first = log_.Append(MakeRecord(RecordType::kTmEnd, 1), false);
  Lsn second = log_.Append(MakeRecord(RecordType::kTmEnd, 2), false);
  EXPECT_EQ(first, 0u);
  EXPECT_GT(second, first);
}

class GroupCommitTest : public ::testing::Test {
 protected:
  GroupCommitTest() {
    GroupCommitOptions group;
    group.enabled = true;
    group.group_size = 4;
    group.group_timeout = 5 * sim::kMillisecond;
    log_.set_group_commit(group);
  }
  sim::SimContext ctx_;
  LogManager log_{&ctx_, "node1", 2 * sim::kMillisecond};
};

TEST_F(GroupCommitTest, BatchesUpToGroupSizeIntoOneDeviceWrite) {
  int completions = 0;
  for (int i = 0; i < 4; ++i) {
    log_.Append(MakeRecord(RecordType::kTmCommitted, i + 1), true,
                [&] { ++completions; });
  }
  ctx_.events().Run();
  EXPECT_EQ(completions, 4);
  EXPECT_EQ(log_.stats().forced_writes, 4u);  // logical forces
  EXPECT_EQ(log_.device_forces(), 1u);        // one physical write
}

TEST_F(GroupCommitTest, TimerFlushesPartialGroup) {
  int completions = 0;
  log_.Append(MakeRecord(RecordType::kTmCommitted, 1), true,
              [&] { ++completions; });
  log_.Append(MakeRecord(RecordType::kTmCommitted, 2), true,
              [&] { ++completions; });
  ctx_.events().RunUntil(4 * sim::kMillisecond);
  EXPECT_EQ(completions, 0);  // still gathering
  ctx_.events().Run();
  EXPECT_EQ(completions, 2);  // timeout at 5ms + 2ms device
  EXPECT_EQ(log_.device_forces(), 1u);
}

TEST_F(GroupCommitTest, SuccessiveGroupsUseSeparateWrites) {
  int completions = 0;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      log_.Append(MakeRecord(RecordType::kTmCommitted, round * 4 + i + 1),
                  true, [&] { ++completions; });
    }
    ctx_.events().Run();
  }
  EXPECT_EQ(completions, 12);
  EXPECT_EQ(log_.device_forces(), 3u);
}

TEST_F(GroupCommitTest, RecordsDurableAfterGroupFlush) {
  for (int i = 0; i < 4; ++i)
    log_.Append(MakeRecord(RecordType::kTmCommitted, i + 1), true);
  ctx_.events().Run();
  EXPECT_EQ(log_.Recover().size(), 4u);
}

TEST(StableStorageTest, WritesAreFifoAndQueued) {
  sim::SimContext ctx;
  StableStorage storage(&ctx, 2 * sim::kMillisecond);
  std::vector<int> order;
  storage.Write("a", [&] { order.push_back(1); });
  storage.Write("b", [&] { order.push_back(2); });
  ctx.events().RunUntil(2 * sim::kMillisecond);
  EXPECT_EQ(order, (std::vector<int>{1}));  // second write queued behind
  ctx.events().Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(storage.durable(), "ab");
  EXPECT_EQ(storage.completed_writes(), 2u);
}

TEST(StableStorageTest, CrashDropsQueuedAndInFlight) {
  sim::SimContext ctx;
  StableStorage storage(&ctx, 2 * sim::kMillisecond);
  bool first = false, second = false;
  storage.Write("a", [&] { first = true; });
  storage.Write("b", [&] { second = true; });
  ctx.events().RunUntil(1 * sim::kMillisecond);
  storage.Crash();
  ctx.events().Run();
  EXPECT_FALSE(first);
  EXPECT_FALSE(second);
  EXPECT_TRUE(storage.durable().empty());
}

}  // namespace
}  // namespace tpc::wal
