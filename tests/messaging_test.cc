// Zero-allocation messaging hot path: pooled payload buffers, small-buffer
// trace tags, in-place PDU encode/decode (PduWriter/PduCursor), malformed
// payload fuzzing, and a counting-allocator proof that a steady-state
// send -> deliver -> decode round trip touches the allocator zero times.

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <random>
#include <string>
#include <vector>

#include "net/network.h"
#include "runtime/sim_runtime.h"
#include "sim/sim_context.h"
#include "tm/protocol_messages.h"
#include "util/binary_io.h"

// --- counting allocator ------------------------------------------------------
// Replaceable global operator new/delete: every heap allocation in this test
// binary bumps the counter. The zero-allocation test reads the delta across
// a warmed-up region; everything else just pays one increment per alloc.

namespace {
unsigned long long g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace tpc {
namespace {

// --- TraceTag ----------------------------------------------------------------

TEST(TraceTagTest, InlineStorageAndFallback) {
  net::TraceTag tag;
  EXPECT_TRUE(tag.empty());
  tag = "PREPARE";
  EXPECT_EQ(tag.view(), "PREPARE");
  tag.append("+ACK");
  EXPECT_EQ(tag.view(), "PREPARE+ACK");
  EXPECT_EQ(tag.size(), 11u);
  tag.append(')');
  EXPECT_EQ(tag.view(), "PREPARE+ACK)");
  tag.clear();
  EXPECT_TRUE(tag.empty());
  EXPECT_EQ(tag.view(), "");

  // A message with no tag reports its kind name in traces.
  net::Message msg;
  msg.kind = net::MsgKind::kPdu;
  EXPECT_EQ(msg.TagView(), "PDU");
  msg.trace_tag = "VOTE(YES)";
  EXPECT_EQ(msg.TagView(), "VOTE(YES)");
}

TEST(TraceTagTest, LongTagsSpillWithoutTruncation) {
  // Cross the inline capacity mid-append and byte-for-byte equality must
  // hold — traces are compared bit-for-bit against the string-backed path.
  std::string expect;
  net::TraceTag tag;
  for (int i = 0; i < 12; ++i) {
    tag.append("APP_DATA+");
    expect += "APP_DATA+";
    EXPECT_EQ(tag.view(), expect) << "piece " << i;
  }
  EXPECT_EQ(tag.size(), expect.size());

  // Assigning a short tag after a spill returns to the inline buffer.
  tag = "ACK";
  EXPECT_EQ(tag.view(), "ACK");

  // One oversized assignment spills directly.
  const std::string big(200, 'x');
  tag = big;
  EXPECT_EQ(tag.view(), big);
}

// --- payload pool ------------------------------------------------------------

class CountingEndpoint : public net::Endpoint {
 public:
  explicit CountingEndpoint(net::Network* network) : network_(network) {}
  void OnMessage(const net::Message& msg) override {
    ++deliveries;
    last_payload.assign(network_->PayloadOf(msg));
  }
  bool IsUp() const override { return true; }
  uint64_t deliveries = 0;
  std::string last_payload;

 protected:
  net::Network* network_;
};

TEST(PayloadPoolTest, BuffersAreRecycledAfterDelivery) {
  sim::SimContext ctx;
  net::Network network(&ctx);
  CountingEndpoint a(&network), b(&network);
  network.Register("a", &a);
  network.Register("b", &b);

  net::Message msg;
  msg.from = network.IdOf("a");
  msg.to = network.IdOf("b");
  msg.payload = network.AcquirePayload();
  const uint32_t index = msg.payload.index;
  network.PayloadBuffer(msg.payload) = "hello";
  ASSERT_TRUE(network.Send(std::move(msg)).ok());
  ctx.events().Run();
  EXPECT_EQ(b.last_payload, "hello");

  // The delivered buffer went back on the free list; the next acquire hands
  // out the same slot, cleared but with its capacity intact.
  net::PayloadRef reused = network.AcquirePayload();
  EXPECT_EQ(reused.index, index);
  EXPECT_TRUE(network.PayloadBuffer(reused).empty());
  EXPECT_GE(network.PayloadBuffer(reused).capacity(), 5u);
}

TEST(PayloadPoolTest, RejectedAndDroppedSendsReturnTheBuffer) {
  sim::SimContext ctx;
  net::Network network(&ctx);
  CountingEndpoint a(&network), b(&network);
  network.Register("a", &a);
  network.Register("b", &b);

  // Rejected: unknown destination.
  net::Message msg;
  msg.from = network.IdOf("a");
  msg.payload = network.AcquirePayload();
  const uint32_t index = msg.payload.index;
  EXPECT_TRUE(network.Send(std::move(msg)).IsInvalidArgument());
  EXPECT_EQ(network.AcquirePayload().index, index);  // back on the free list

  // Dropped: link down. The buffer still comes back.
  network.SetLinkDown("a", "b", true);
  net::Message dropped;
  dropped.from = network.IdOf("a");
  dropped.to = network.IdOf("b");
  dropped.payload = network.AcquirePayload();
  const uint32_t drop_index = dropped.payload.index;
  ASSERT_TRUE(network.Send(std::move(dropped)).ok());
  EXPECT_EQ(network.AcquirePayload().index, drop_index);
}

// During OnMessage the delivered payload view must survive reentrant sends
// that force the pool to grow (the deque keeps buffer addresses stable).
class ReentrantEndpoint : public CountingEndpoint {
 public:
  ReentrantEndpoint(net::Network* network, uint32_t* self, uint32_t* peer)
      : CountingEndpoint(network), self_(self), peer_(peer) {}
  void OnMessage(const net::Message& msg) override {
    std::string_view view = network_->PayloadOf(msg);
    const std::string before(view);
    if (before.substr(0, 4) == "seed") {
      for (int i = 0; i < 64; ++i) {  // forces pool growth mid-upcall
        net::Message out;
        out.from = *self_;
        out.to = *peer_;
        out.payload = network_->AcquirePayload();
        network_->PayloadBuffer(out.payload).assign("reentrant");
        ASSERT_TRUE(network_->Send(std::move(out)).ok());
      }
    }
    EXPECT_EQ(view, before);  // the view never moved
    ++deliveries;
  }

 private:
  uint32_t* self_;
  uint32_t* peer_;
};

TEST(PayloadPoolTest, ViewsSurviveReentrantPoolGrowth) {
  sim::SimContext ctx;
  net::Network network(&ctx);
  uint32_t a_id = 0, b_id = 0;
  ReentrantEndpoint a(&network, &a_id, &b_id), b(&network, &b_id, &a_id);
  network.Register("a", &a);
  network.Register("b", &b);
  a_id = network.IdOf("a");
  b_id = network.IdOf("b");

  net::Message msg;
  msg.from = a_id;
  msg.to = b_id;
  msg.payload = network.AcquirePayload();
  network.PayloadBuffer(msg.payload).assign("seed payload with some length");
  ASSERT_TRUE(network.Send(std::move(msg)).ok());
  ctx.events().Run();
  EXPECT_EQ(b.deliveries, 1u);
  EXPECT_EQ(a.deliveries, 64u);
}

// --- PduWriter / PduCursor ---------------------------------------------------

tm::Pdu FullyLoadedVote() {
  tm::Pdu pdu;
  pdu.type = tm::PduType::kVote;
  pdu.txn = 0xdeadbeefULL;
  pdu.vote = rm::Vote::kYes;
  pdu.reliable = true;
  pdu.ok_to_leave_out = true;
  pdu.unsolicited = true;
  pdu.last_agent = true;
  pdu.vote_long_locks = true;
  pdu.heur_commit = true;
  pdu.damage = true;
  pdu.outcome_pending = true;
  pdu.from_last_agent = true;
  pdu.answer = tm::InquiryAnswer::kInDoubt;
  return pdu;
}

TEST(PduCursorTest, RoundTripsBundleInPlace) {
  tm::Pdu ack;
  ack.type = tm::PduType::kAck;
  ack.txn = 1;
  tm::Pdu vote = FullyLoadedVote();
  tm::Pdu data;
  data.type = tm::PduType::kAppData;
  data.txn = 2;
  data.data = "application bytes";

  std::string buf;
  tm::PduWriter writer(&buf);
  writer.Append(ack);
  writer.Append(vote);
  writer.Append(data);
  EXPECT_EQ(writer.count(), 3u);
  // Same bytes as the vector-based encoder: the two paths interoperate.
  EXPECT_EQ(buf, tm::EncodePdus({ack, vote, data}));

  tm::PduCursor cursor(buf);
  ASSERT_TRUE(cursor.Next());
  EXPECT_EQ(cursor.pdu().type, tm::PduType::kAck);
  EXPECT_EQ(cursor.pdu().txn, 1u);
  ASSERT_TRUE(cursor.Next());
  EXPECT_EQ(cursor.pdu().type, tm::PduType::kVote);
  EXPECT_EQ(cursor.pdu().txn, 0xdeadbeefULL);
  EXPECT_TRUE(cursor.pdu().last_agent);
  EXPECT_TRUE(cursor.pdu().vote_long_locks);
  EXPECT_EQ(cursor.pdu().answer, tm::InquiryAnswer::kInDoubt);
  ASSERT_TRUE(cursor.Next());
  EXPECT_EQ(cursor.pdu().type, tm::PduType::kAppData);
  EXPECT_TRUE(cursor.pdu().data.empty());  // app bytes stay in the payload
  EXPECT_EQ(cursor.data(), "application bytes");
  EXPECT_FALSE(cursor.Next());
  EXPECT_TRUE(cursor.status().ok());
  EXPECT_EQ(cursor.index(), 3u);
}

TEST(PduCursorTest, DescribePayloadMatchesDescribePdus) {
  tm::Pdu ack;
  ack.type = tm::PduType::kAck;
  tm::Pdu vote;
  vote.type = tm::PduType::kVote;
  vote.vote = rm::Vote::kReadOnly;
  vote.unsolicited = true;

  const std::vector<tm::Pdu> bundle = {ack, vote};
  net::TraceTag tag;
  tm::DescribePayload(tm::EncodePdus(bundle), &tag);
  EXPECT_EQ(tag.view(), tm::DescribePdus(bundle));
  EXPECT_EQ(tag.view(), "ACK+VOTE(READ-ONLY,unsolicited)");
}

// --- malformed payload fuzz --------------------------------------------------

// Walks the payload with PduCursor, returning (frames, ok).
std::pair<size_t, bool> CursorWalk(std::string_view payload,
                                   std::vector<std::string>* datas = nullptr) {
  tm::PduCursor cursor(payload);
  while (cursor.Next()) {
    if (datas != nullptr) datas->emplace_back(cursor.data());
  }
  return {cursor.index(), cursor.status().ok()};
}

// DecodePdus and PduCursor must agree on every input: both accept with the
// same frames, or both reject. (Empty payloads are the one intentional
// difference — DecodePdus rejects them outright, a cursor just yields zero
// frames — and the TM's validation pass handles that case explicitly.)
void ExpectCodecAgreement(std::string_view payload) {
  std::vector<std::string> cursor_datas;
  const auto [frames, ok] = CursorWalk(payload, &cursor_datas);
  auto decoded = tm::DecodePdus(payload);
  if (payload.empty()) {
    EXPECT_FALSE(decoded.ok());
    EXPECT_TRUE(ok);
    EXPECT_EQ(frames, 0u);
    return;
  }
  if (ok && frames <= 1024) {
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    ASSERT_EQ(decoded->size(), frames);
    for (size_t i = 0; i < frames; ++i)
      EXPECT_EQ((*decoded)[i].data, cursor_datas[i]);
  } else {
    EXPECT_FALSE(decoded.ok());
  }
}

TEST(PduFuzzTest, MutatedPayloadsNeverCrashOrDisagree) {
  std::mt19937_64 rng(20260806);

  // Corpus of valid bundles with varied shapes, spanning every PDU type —
  // including the paxos family, whose frames carry an encoded PaxosBody in
  // the data field.
  std::vector<std::string> corpus;
  for (int i = 0; i < 32; ++i) {
    std::vector<tm::Pdu> bundle(1 + rng() % 4);
    for (auto& pdu : bundle) {
      pdu.type = static_cast<tm::PduType>(
          1 + rng() % static_cast<int>(tm::PduType::kPaxosTakeover));
      pdu.txn = rng();
      pdu.vote = static_cast<rm::Vote>(rng() % 3);
      pdu.answer = static_cast<tm::InquiryAnswer>(rng() % 4);
      pdu.long_locks = rng() % 2;
      pdu.unsolicited = rng() % 2;
      pdu.last_agent = rng() % 2;
      if (pdu.type == tm::PduType::kAppData)
        pdu.data.assign(rng() % 100, static_cast<char>('a' + rng() % 26));
      if (pdu.type >= tm::PduType::kPaxosAccept) {
        tm::PaxosBody body;
        body.ballot = static_cast<uint32_t>(rng() % 1000);
        body.granted = rng() % 2;
        body.prepared = rng() % 2;
        body.instance = "s1";
        body.leader = "c0";
        // Build names via append rather than `"x" + std::to_string(...)`:
        // GCC 12's -Wrestrict trips over the inlined operator+(const char*,
        // string&&) at -O2 (false positive, fixed upstream).
        auto name = [](char prefix, uint64_t n) {
          std::string s(1, prefix);
          s += std::to_string(n);
          return s;
        };
        for (uint64_t m = rng() % 4; m > 0; --m)
          body.cohort.push_back(name('n', m));
        for (uint64_t m = rng() % 4; m > 0; --m)
          body.acceptors.push_back(name('a', m));
        for (uint64_t m = rng() % 3; m > 0; --m)
          body.accepted.push_back(
              {name('n', m), static_cast<uint32_t>(rng() % 10),
               rng() % 2 != 0});
        pdu.data.clear();
        tm::EncodePaxosBody(body, &pdu.data);
      }
    }
    corpus.push_back(tm::EncodePdus(bundle));
    ExpectCodecAgreement(corpus.back());  // intact bundles round-trip
  }

  // >= 1k mutations: truncations, byte flips, random splices.
  for (int round = 0; round < 1200; ++round) {
    std::string payload = corpus[rng() % corpus.size()];
    switch (round % 3) {
      case 0:  // truncate mid-frame
        payload.resize(rng() % (payload.size() + 1));
        break;
      case 1: {  // flip a byte (type, flags, length, or data)
        if (!payload.empty()) {
          const size_t pos = rng() % payload.size();
          payload[pos] = static_cast<char>(
              static_cast<uint8_t>(payload[pos]) ^ (1 + rng() % 255));
        }
        break;
      }
      case 2: {  // splice random garbage into the tail
        payload.resize(rng() % (payload.size() + 1));
        const size_t extra = rng() % 16;
        for (size_t i = 0; i < extra; ++i)
          payload.push_back(static_cast<char>(rng() % 256));
        break;
      }
    }
    ExpectCodecAgreement(payload);
  }
}

TEST(PduFuzzTest, OversizedAppDataLengthIsRejectedNotOverread) {
  // Hand-craft a kAppData frame whose declared data length dwarfs the
  // actual bytes: the decoder must report corruption, not read past the
  // buffer.
  std::string payload;
  AppendU8(payload, 1);  // kAppData
  AppendVarint(payload, 7);  // txn
  AppendU8(payload, 0);
  AppendU8(payload, 0);  // flags
  AppendU8(payload, 0);  // vote
  AppendU8(payload, 0);  // answer
  AppendVarint(payload, uint64_t{1} << 40);  // declared length: 1 TiB
  payload += "abc";  // actual bytes: 3

  EXPECT_FALSE(tm::DecodePdus(payload).ok());
  const auto [frames, ok] = CursorWalk(payload);
  EXPECT_EQ(frames, 0u);
  EXPECT_FALSE(ok);
}

bool BodiesEqual(const tm::PaxosBody& a, const tm::PaxosBody& b) {
  if (a.ballot != b.ballot || a.promised != b.promised ||
      a.granted != b.granted || a.prepared != b.prepared ||
      a.instance != b.instance || a.leader != b.leader ||
      a.cohort != b.cohort || a.acceptors != b.acceptors ||
      a.accepted.size() != b.accepted.size()) {
    return false;
  }
  for (size_t i = 0; i < a.accepted.size(); ++i) {
    if (a.accepted[i].instance != b.accepted[i].instance ||
        a.accepted[i].ballot != b.accepted[i].ballot ||
        a.accepted[i].prepared != b.accepted[i].prepared) {
      return false;
    }
  }
  return true;
}

TEST(PaxosBodyFuzzTest, MutatedBodiesNeverCrashAndSurvivorsReEncode) {
  std::mt19937_64 rng(20260809);

  auto random_name = [&] {
    return std::string(1 + rng() % 12, static_cast<char>('a' + rng() % 26));
  };
  std::vector<std::string> corpus;
  for (int i = 0; i < 24; ++i) {
    tm::PaxosBody body;
    body.ballot = static_cast<uint32_t>(rng());
    body.promised = static_cast<uint32_t>(rng());
    body.granted = rng() % 2;
    body.prepared = rng() % 2;
    body.instance = random_name();
    body.leader = random_name();
    for (uint64_t m = rng() % 5; m > 0; --m)
      body.cohort.push_back(random_name());
    for (uint64_t m = rng() % 5; m > 0; --m)
      body.acceptors.push_back(random_name());
    for (uint64_t m = rng() % 4; m > 0; --m)
      body.accepted.push_back(
          {random_name(), static_cast<uint32_t>(rng()), rng() % 2 != 0});

    // Intact bodies round-trip exactly.
    std::string wire;
    tm::EncodePaxosBody(body, &wire);
    tm::PaxosBody decoded;
    ASSERT_TRUE(tm::DecodePaxosBody(wire, &decoded).ok());
    EXPECT_TRUE(BodiesEqual(body, decoded));
    corpus.push_back(std::move(wire));
  }

  // >= 1k mutations: decode must reject or succeed cleanly — never crash or
  // overread — and any survivor must re-encode to bytes that decode back to
  // an equal body (no half-parsed garbage states).
  tm::PaxosBody scratch;
  std::string rewire;
  for (int round = 0; round < 1500; ++round) {
    std::string wire = corpus[rng() % corpus.size()];
    switch (round % 3) {
      case 0:
        wire.resize(rng() % (wire.size() + 1));
        break;
      case 1:
        if (!wire.empty()) {
          const size_t pos = rng() % wire.size();
          wire[pos] = static_cast<char>(static_cast<uint8_t>(wire[pos]) ^
                                        (1 + rng() % 255));
        }
        break;
      case 2: {
        wire.resize(rng() % (wire.size() + 1));
        const size_t extra = rng() % 16;
        for (size_t i = 0; i < extra; ++i)
          wire.push_back(static_cast<char>(rng() % 256));
        break;
      }
    }
    if (!tm::DecodePaxosBody(wire, &scratch).ok()) continue;
    rewire.clear();
    tm::EncodePaxosBody(scratch, &rewire);
    tm::PaxosBody again;
    ASSERT_TRUE(tm::DecodePaxosBody(rewire, &again).ok());
    EXPECT_TRUE(BodiesEqual(scratch, again));
  }
}

// --- paxos bundle codec -------------------------------------------------------

// A decoded bundle is normalized: singleton-only fields are cleared and every
// entry carries the bundle ballot (entry ballots are not on the wire).
tm::PaxosBody MakeBundle(uint64_t ballot, std::string leader,
                         std::vector<std::string> cohort,
                         std::vector<std::string> acceptors,
                         std::vector<std::pair<std::string, bool>> entries) {
  tm::PaxosBody body;
  body.ballot = ballot;
  body.leader = std::move(leader);
  body.cohort = std::move(cohort);
  body.acceptors = std::move(acceptors);
  for (auto& [name, prepared] : entries)
    body.accepted.push_back({name, ballot, prepared});
  return body;
}

TEST(PaxosBundleCodecTest, RoundTripsBothDirections) {
  // A takeover 2a bundle (full header) and an acceptor's 2b bundle (header
  // fields empty) — the two shapes the protocol actually sends.
  const tm::PaxosBody two_a = MakeBundle(
      9, "s1", {"c0", "s1"}, {"c0", "s1", "a2"},
      {{"c0", true}, {"s1", false}});
  const tm::PaxosBody two_b =
      MakeBundle(0, "", {}, {}, {{"c0", true}, {"s1", true}});
  for (const tm::PaxosBody* body : {&two_a, &two_b}) {
    std::string wire;
    tm::EncodePaxosBundle(*body, &wire);
    tm::PaxosBody decoded;
    // Dirty the decode target: decode must fully overwrite or clear every
    // bundle-relevant field (capacity reuse, not state reuse).
    decoded.instance = "stale";
    decoded.promised = 77;
    decoded.granted = true;
    decoded.prepared = true;
    ASSERT_TRUE(tm::DecodePaxosBundle(wire, &decoded).ok());
    EXPECT_TRUE(BodiesEqual(*body, decoded));
  }
}

TEST(PaxosBundleCodecTest, TruncationAtEveryBoundaryIsRejected) {
  const tm::PaxosBody body = MakeBundle(
      12, "c0", {"c0", "s1", "s2"}, {"c0", "s1", "a2"},
      {{"c0", true}, {"s1", false}, {"s2", true}});
  std::string wire;
  tm::EncodePaxosBundle(body, &wire);
  // Counts are declared up front and trailing bytes are rejected, so EVERY
  // proper prefix — including each header / name / entry boundary — must
  // fail, and every extension must fail too.
  tm::PaxosBody scratch;
  for (size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(
        tm::DecodePaxosBundle(std::string_view(wire.data(), len), &scratch)
            .ok())
        << "prefix of length " << len << " decoded";
  }
  std::string extended = wire;
  extended.push_back('\0');
  EXPECT_FALSE(tm::DecodePaxosBundle(extended, &scratch).ok());
}

TEST(PaxosBundleFuzzTest, MutatedBundlesNeverCrashAndSurvivorsReEncode) {
  std::mt19937_64 rng(20260810);
  auto random_name = [&] {
    return std::string(1 + rng() % 12, static_cast<char>('a' + rng() % 26));
  };
  std::vector<std::string> corpus;
  for (int i = 0; i < 24; ++i) {
    tm::PaxosBody body;
    body.ballot = rng();
    body.leader = random_name();
    for (uint64_t m = rng() % 5; m > 0; --m)
      body.cohort.push_back(random_name());
    for (uint64_t m = rng() % 5; m > 0; --m)
      body.acceptors.push_back(random_name());
    for (uint64_t m = rng() % 5; m > 0; --m)
      body.accepted.push_back({random_name(), body.ballot, rng() % 2 != 0});

    std::string wire;
    tm::EncodePaxosBundle(body, &wire);
    tm::PaxosBody decoded;
    ASSERT_TRUE(tm::DecodePaxosBundle(wire, &decoded).ok());
    EXPECT_TRUE(BodiesEqual(body, decoded));
    corpus.push_back(std::move(wire));
  }

  // >= 1.5k mutations (truncations, bit flips, truncate+extend): decode must
  // reject or succeed cleanly — never crash or overread — and any survivor
  // must re-encode to bytes that decode back to an equal bundle.
  tm::PaxosBody scratch;
  std::string rewire;
  for (int round = 0; round < 1500; ++round) {
    std::string wire = corpus[rng() % corpus.size()];
    switch (round % 3) {
      case 0:
        wire.resize(rng() % (wire.size() + 1));
        break;
      case 1:
        if (!wire.empty()) {
          const size_t pos = rng() % wire.size();
          wire[pos] = static_cast<char>(static_cast<uint8_t>(wire[pos]) ^
                                        (1 + rng() % 255));
        }
        break;
      case 2: {
        wire.resize(rng() % (wire.size() + 1));
        const size_t extra = rng() % 16;
        for (size_t i = 0; i < extra; ++i)
          wire.push_back(static_cast<char>(rng() % 256));
        break;
      }
    }
    if (!tm::DecodePaxosBundle(wire, &scratch).ok()) continue;
    rewire.clear();
    tm::EncodePaxosBundle(scratch, &rewire);
    tm::PaxosBody again;
    ASSERT_TRUE(tm::DecodePaxosBundle(rewire, &again).ok());
    EXPECT_TRUE(BodiesEqual(scratch, again));
  }
}

// --- zero-allocation round trip ----------------------------------------------

class PduCountingEndpoint : public net::Endpoint {
 public:
  explicit PduCountingEndpoint(net::Network* network) : network_(network) {}
  void OnMessage(const net::Message& msg) override {
    tm::PduCursor cursor(network_->PayloadOf(msg));
    while (cursor.Next()) {
      pdus_seen += 1;
      data_bytes += cursor.data().size();
    }
    ok = ok && cursor.status().ok();
  }
  bool IsUp() const override { return true; }
  uint64_t pdus_seen = 0;
  uint64_t data_bytes = 0;
  bool ok = true;

 private:
  net::Network* network_;
};

TEST(ZeroAllocationTest, SteadyStateSendDeliverDecodeDoesNotAllocate) {
  sim::SimContext ctx;
  net::Network network(&ctx);
  network.set_tracing(false);
  ctx.trace().set_capture(false);
  PduCountingEndpoint a(&network), b(&network);
  network.Register("a", &a);
  network.Register("b", &b);
  const uint32_t a_id = network.IdOf("a");
  const uint32_t b_id = network.IdOf("b");
  // 1024us divides the timing wheel size (16384), so deliveries cycle
  // through only 16 wheel buckets — a short warmup touches them all.
  network.set_default_latency(1024);

  auto round_trip = [&] {
    tm::Pdu ack;
    ack.type = tm::PduType::kAck;
    ack.txn = 42;
    tm::Pdu data;
    data.type = tm::PduType::kAppData;
    data.txn = 42;
    data.data = "workbytes";  // fits SSO: building the Pdu never allocates

    net::Message msg;
    msg.from = a_id;
    msg.to = b_id;
    msg.kind = net::MsgKind::kPdu;
    msg.txn = 42;
    msg.payload = network.AcquirePayload();
    tm::PduWriter writer(&network.PayloadBuffer(msg.payload));
    writer.Append(ack);
    writer.Append(data);
    if (!network.Send(std::move(msg)).ok()) b.ok = false;
    ctx.events().Run();
  };

  // Warm the payload pool, message slab, free lists, and wheel buckets.
  for (int i = 0; i < 64; ++i) round_trip();

  const uint64_t before = g_alloc_count;
  for (int i = 0; i < 256; ++i) round_trip();
  const uint64_t allocations = g_alloc_count - before;

  EXPECT_EQ(allocations, 0u) << "steady-state round trips must not allocate";
  EXPECT_TRUE(b.ok);
  EXPECT_EQ(b.pdus_seen, 2u * (64 + 256));
  EXPECT_EQ(b.data_bytes, 9u * (64 + 256));
}

// The paxos codec rides the TM's per-session hot path (every 2a/2b/1a/1b
// exchange encodes into a reused scratch string and decodes into a reused
// PaxosBody), so steady-state encode/decode must be allocation-free: Clear()
// keeps container capacity, node names fit SSO, and the encoder appends into
// whatever capacity the scratch already has.
TEST(ZeroAllocationTest, PaxosBodyCodecSteadyStateDoesNotAllocate) {
  tm::PaxosBody body;
  body.ballot = 7;
  body.granted = true;
  body.prepared = true;
  body.instance = "s1";
  body.leader = "c0";
  // Populate via reserve+push_back: assigning an initializer_list here makes
  // GCC 12 pair the libstdc++-internal operator new with this TU's replaced
  // operator delete and emit a bogus -Wmismatched-new-delete at -O2.
  body.cohort.reserve(3);
  for (const char* n : {"c0", "s1", "s2"}) body.cohort.push_back(n);
  body.acceptors.reserve(3);
  for (const char* n : {"c0", "s1", "a2"}) body.acceptors.push_back(n);
  body.accepted.reserve(2);
  body.accepted.push_back({"s1", 3, true});
  body.accepted.push_back({"s2", 0, false});

  std::string wire;
  tm::PaxosBody decoded;
  bool ok = true;
  auto cycle = [&] {
    wire.clear();
    tm::EncodePaxosBody(body, &wire);
    ok = ok && tm::DecodePaxosBody(wire, &decoded).ok() &&
         BodiesEqual(body, decoded);
  };

  // Warm the scratch string and the decoded body's container capacities.
  for (int i = 0; i < 64; ++i) cycle();

  const uint64_t before = g_alloc_count;
  for (int i = 0; i < 256; ++i) cycle();
  const uint64_t allocations = g_alloc_count - before;

  EXPECT_TRUE(ok);
  EXPECT_EQ(allocations, 0u)
      << "steady-state paxos encode/decode must not allocate";
}

// The bundle codec carries every ballot-0 vote round and every takeover
// round (one 2a bundle per acceptor, one 2b bundle back), so its
// steady-state cost discipline matches the singleton codec's: encode into a
// warm scratch, decode with container-capacity reuse, zero allocations.
TEST(ZeroAllocationTest, PaxosBundleCodecSteadyStateDoesNotAllocate) {
  tm::PaxosBody body;
  body.ballot = 11;
  body.leader = "s1";
  body.cohort.reserve(3);
  for (const char* n : {"c0", "s1", "s2"}) body.cohort.push_back(n);
  body.acceptors.reserve(3);
  for (const char* n : {"c0", "s1", "a2"}) body.acceptors.push_back(n);
  body.accepted.reserve(3);
  body.accepted.push_back({"c0", 11, true});
  body.accepted.push_back({"s1", 11, true});
  body.accepted.push_back({"s2", 11, false});

  std::string wire;
  tm::PaxosBody decoded;
  bool ok = true;
  auto cycle = [&] {
    wire.clear();
    tm::EncodePaxosBundle(body, &wire);
    ok = ok && tm::DecodePaxosBundle(wire, &decoded).ok() &&
         BodiesEqual(body, decoded);
  };

  for (int i = 0; i < 64; ++i) cycle();

  const uint64_t before = g_alloc_count;
  for (int i = 0; i < 256; ++i) cycle();
  const uint64_t allocations = g_alloc_count - before;

  EXPECT_TRUE(ok);
  EXPECT_EQ(allocations, 0u)
      << "steady-state bundle encode/decode must not allocate";
}

// The runtime seam must be free on the sim path: forwarding clock reads,
// txn ids, and timer arm/cancel/fire through the SimRuntime adapter adds
// zero allocations over calling the event queue directly. The trap this
// guards: wrapping the caller's InlineFunction callback in another callable
// at the adapter boundary would silently heap-allocate every timer (the
// same-type emplace adoption in InlineFunction is what prevents it).
TEST(ZeroAllocationTest, SimRuntimeAdapterAddsNoAllocations) {
  sim::SimContext ctx;
  runtime::SimRuntime rt(&ctx);

  uint64_t fired = 0;
  bool cancels_ok = true;
  auto cycle = [&] {
    // Arm-and-cancel (the TM's ack/vote timer pattern) plus arm-and-fire.
    // 1024/2048 divide the timing wheel size (16384), so the deadlines
    // cycle through a fixed set of wheel buckets a short warmup fills —
    // the same trick the round-trip test plays with its link latency.
    runtime::TimerId cancelled = rt.ArmTimer(2048, [&fired] { ++fired; });
    cancels_ok = cancels_ok && rt.CancelTimer(cancelled);
    rt.ArmTimer(1024, [&fired] { ++fired; });
    ctx.events().Run();
    (void)rt.Now();
    (void)rt.NextTxnId();
  };

  for (int i = 0; i < 64; ++i) cycle();  // warm the slab + wheel buckets

  const uint64_t before = g_alloc_count;
  for (int i = 0; i < 256; ++i) cycle();
  const uint64_t allocations = g_alloc_count - before;

  EXPECT_EQ(allocations, 0u) << "the adapter must not wrap timer callbacks";
  EXPECT_TRUE(cancels_ok);
  EXPECT_EQ(fired, 64u + 256u);
}

}  // namespace
}  // namespace tpc
