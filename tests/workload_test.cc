// The workload generator itself: determinism, outcome accounting, the
// read-only knob, and contention behavior.

#include <gtest/gtest.h>

#include "harness/workload.h"

namespace tpc::harness {
namespace {

WorkloadStats RunStandard(WorkloadOptions options,
                          NodeOptions node_options = {}) {
  Cluster cluster(options.seed + 1000);
  Workload::BuildStandardCluster(&cluster, options, node_options);
  Workload workload(&cluster, options);
  return workload.Run();
}

TEST(WorkloadTest, AllTransactionsResolveWithoutFailures) {
  WorkloadOptions options;
  options.transactions = 50;
  WorkloadStats stats = RunStandard(options);
  EXPECT_EQ(stats.incomplete, 0u);
  EXPECT_EQ(stats.committed + stats.aborted, 50u);
  EXPECT_GT(stats.committed, 0u);
  EXPECT_GT(stats.flows, 0u);
  EXPECT_GT(stats.Throughput(), 0.0);
}

TEST(WorkloadTest, DeterministicForSameSeed) {
  WorkloadOptions options;
  options.transactions = 30;
  options.seed = 9;
  WorkloadStats a = RunStandard(options);
  WorkloadStats b = RunStandard(options);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(a.flows, b.flows);
  EXPECT_EQ(a.forced, b.forced);
  EXPECT_EQ(a.elapsed, b.elapsed);
}

TEST(WorkloadTest, ReadOnlyFractionReducesForcedWrites) {
  WorkloadOptions mostly_writes;
  mostly_writes.transactions = 60;
  mostly_writes.read_only_fraction = 0.0;
  WorkloadOptions mostly_reads = mostly_writes;
  mostly_reads.read_only_fraction = 0.9;
  WorkloadStats writes = RunStandard(mostly_writes);
  WorkloadStats reads = RunStandard(mostly_reads);
  EXPECT_LT(reads.forced, writes.forced);
  EXPECT_LT(reads.flows, writes.flows);
}

TEST(WorkloadTest, HotKeyContentionSlowsTheStream) {
  WorkloadOptions uniform;
  uniform.transactions = 60;
  uniform.read_only_fraction = 0.0;
  uniform.hot_key_fraction = 0.0;
  WorkloadOptions hot = uniform;
  hot.hot_key_fraction = 1.0;  // every write hits the same key
  WorkloadStats cool_stats = RunStandard(uniform);
  WorkloadStats hot_stats = RunStandard(hot);
  // Contention can only slow things down (lock queues serialize commits).
  EXPECT_LE(hot_stats.Throughput(), cool_stats.Throughput() * 1.05);
  EXPECT_EQ(hot_stats.incomplete, 0u);
}

TEST(WorkloadTest, StatsSummaryIsReadable) {
  WorkloadOptions options;
  options.transactions = 10;
  WorkloadStats stats = RunStandard(options);
  std::string summary = stats.ToString();
  EXPECT_NE(summary.find("committed"), std::string::npos);
  EXPECT_NE(summary.find("txn/s"), std::string::npos);
}

TEST(WorkloadTest, RunsUnderEveryProtocol) {
  for (auto protocol :
       {tm::ProtocolKind::kBasic2PC, tm::ProtocolKind::kPresumedAbort,
        tm::ProtocolKind::kPresumedNothing,
        tm::ProtocolKind::kPresumedCommit}) {
    WorkloadOptions options;
    options.transactions = 20;
    NodeOptions node_options;
    node_options.tm.protocol = protocol;
    WorkloadStats stats = RunStandard(options, node_options);
    EXPECT_EQ(stats.incomplete, 0u)
        << tm::ProtocolKindToString(protocol);
    EXPECT_GT(stats.committed, 0u);
  }
}

}  // namespace
}  // namespace tpc::harness
