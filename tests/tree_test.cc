// Multi-level commit trees: cascaded coordinators, damage-report
// propagation differences between PA and PN, the two-initiator (Figure 5)
// hazard, and the wait-for-outcome optimization.

#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace tpc {
namespace {

using harness::Cluster;
using harness::NodeOptions;
using tm::HeuristicPolicy;
using tm::Outcome;
using tm::ProtocolKind;

NodeOptions Options(ProtocolKind protocol) {
  NodeOptions options;
  options.tm.protocol = protocol;
  return options;
}

// Builds root -> mid -> leaf, with updates everywhere, ready to commit.
uint64_t SetupChain(Cluster& c) {
  c.tm("mid").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId& from, std::string_view) {
        if (from != "root") return;
        c.tm("mid").Write(txn, 0, "mid_key", "v",
                          [](Status st) { ASSERT_TRUE(st.ok()); });
        ASSERT_TRUE(c.tm("mid").SendWork(txn, "leaf").ok());
      });
  c.tm("leaf").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm("leaf").Write(txn, 0, "leaf_key", "v",
                           [](Status st) { ASSERT_TRUE(st.ok()); });
      });
  uint64_t txn = c.tm("root").Begin();
  c.tm("root").Write(txn, 0, "root_key", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  EXPECT_TRUE(c.tm("root").SendWork(txn, "mid").ok());
  c.RunFor(sim::kSecond);
  return txn;
}

class ChainCommitTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ChainCommitTest, CascadedCoordinatorPropagatesBothPhases) {
  Cluster c;
  c.AddNode("root", Options(GetParam()));
  c.AddNode("mid", Options(GetParam()));
  c.AddNode("leaf", Options(GetParam()));
  c.Connect("root", "mid");
  c.Connect("mid", "leaf");
  uint64_t txn = SetupChain(c);

  auto commit = c.CommitAndWait("root", txn);
  c.RunFor(sim::kSecond);
  ASSERT_TRUE(commit.completed);
  EXPECT_EQ(commit.result.outcome, Outcome::kCommitted);
  for (const char* node : {"root", "mid", "leaf"}) {
    EXPECT_EQ(c.tm(node).View(txn).outcome, Outcome::kCommitted) << node;
  }
  EXPECT_EQ(c.node("leaf").rm().Peek("leaf_key").value_or(""), "v");
  EXPECT_EQ(c.node("mid").rm().Peek("mid_key").value_or(""), "v");
  EXPECT_TRUE(c.Audit(txn).consistent);
  // All control blocks retired.
  EXPECT_FALSE(c.tm("root").Knows(txn));
  EXPECT_FALSE(c.tm("mid").Knows(txn));
  EXPECT_FALSE(c.tm("leaf").Knows(txn));
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ChainCommitTest,
                         ::testing::Values(ProtocolKind::kBasic2PC,
                                           ProtocolKind::kPresumedAbort,
                                           ProtocolKind::kPresumedNothing));

TEST(ChainAccountingTest, ThreeNodeChainMatchesTable3Formulas) {
  // n = 3 participants: 4(n-1) = 8 flows, 3n-1 = 8 writes, 2n-1 = 5 forced.
  Cluster c;
  c.AddNode("root", Options(ProtocolKind::kPresumedAbort));
  c.AddNode("mid", Options(ProtocolKind::kPresumedAbort));
  c.AddNode("leaf", Options(ProtocolKind::kPresumedAbort));
  c.Connect("root", "mid");
  c.Connect("mid", "leaf");
  uint64_t txn = SetupChain(c);
  auto commit = c.CommitAndWait("root", txn);
  c.RunFor(sim::kSecond);
  ASSERT_TRUE(commit.completed);

  tm::TxnCost total = c.TotalCost(txn);
  EXPECT_EQ(total.flows_sent, 8u);
  EXPECT_EQ(total.tm_log_writes, 8u);
  EXPECT_EQ(total.tm_log_forced, 5u);
}

// --- Damage reporting: PA vs PN -----------------------------------------------

// Leaf heuristically aborts while mid is down; the transaction commits.
// Under PN the damage report reaches the root; under PA it stops at mid.
struct DamageRun {
  std::unique_ptr<Cluster> cluster;
  uint64_t txn = 0;
  bool completed = false;
  tm::CommitResult result;
};

DamageRun RunDamageScenario(ProtocolKind protocol) {
  DamageRun run;
  run.cluster = std::make_unique<Cluster>();
  Cluster& c = *run.cluster;
  NodeOptions leaf_options = Options(protocol);
  leaf_options.tm.heuristic_policy = HeuristicPolicy::kAbort;
  leaf_options.tm.heuristic_delay = 20 * sim::kSecond;
  leaf_options.tm.inquiry_delay = 500 * sim::kSecond;
  c.AddNode("root", Options(protocol));
  c.AddNode("mid", Options(protocol));
  c.AddNode("leaf", leaf_options);
  c.Connect("root", "mid");
  c.Connect("mid", "leaf");
  run.txn = SetupChain(c);

  // Mid crashes right after forcing its commit record: the leaf is in
  // doubt, takes its heuristic abort at +20s, and the overall transaction
  // commits when mid recovers and re-drives.
  c.ctx().failures().ArmCrash("mid", "after_commit_force");
  c.tm("root").Commit(run.txn, [&run](tm::CommitResult r) {
    run.completed = true;
    run.result = r;
  });
  c.RunFor(40 * sim::kSecond);
  c.node("mid").Restart();
  c.RunFor(200 * sim::kSecond);
  return run;
}

TEST(DamageReportingTest, PnReportsDamageToRoot) {
  DamageRun run = RunDamageScenario(ProtocolKind::kPresumedNothing);
  Cluster& c = *run.cluster;
  ASSERT_TRUE(run.completed);
  EXPECT_EQ(run.result.outcome, Outcome::kCommitted);
  // Ground truth: damage happened.
  EXPECT_TRUE(c.Audit(run.txn).damage_ground_truth);
  // PN: the root was told.
  EXPECT_TRUE(run.result.heuristic_damage ||
              c.tm("root").View(run.txn).damage_reported_here);
}

TEST(DamageReportingTest, PaStopsDamageReportAtImmediateCoordinator) {
  DamageRun run = RunDamageScenario(ProtocolKind::kPresumedAbort);
  Cluster& c = *run.cluster;
  ASSERT_TRUE(run.completed);
  EXPECT_EQ(run.result.outcome, Outcome::kCommitted);
  // Ground truth: damage happened...
  EXPECT_TRUE(c.Audit(run.txn).damage_ground_truth);
  // ...but the root believes the transaction committed cleanly (the R*
  // behavior the paper criticizes for commercial use).
  EXPECT_FALSE(run.result.heuristic_damage);
  EXPECT_FALSE(c.tm("root").View(run.txn).damage_reported_here);
  // The report stopped at the immediate coordinator.
  EXPECT_TRUE(c.tm("mid").View(run.txn).damage_reported_here);
}

// --- Two initiators (the Figure 5 hazard class) ----------------------------------

TEST(TwoInitiatorsTest, ConcurrentInitiatorsAbortConsistently) {
  // Pd and Pe both initiate commit for the same distributed transaction
  // (the situation general leave-out would create): both trees must abort.
  Cluster c;
  for (const char* n : {"pd", "pa", "pe"})
    c.AddNode(n, Options(ProtocolKind::kPresumedNothing));
  c.Connect("pd", "pa");
  c.Connect("pa", "pe");

  // One shared transaction: pd works with pa, pe works with pa.
  uint64_t txn = c.tm("pd").Begin();
  c.tm("pd").Write(txn, 0, "d", "v", [](Status st) { ASSERT_TRUE(st.ok()); });
  ASSERT_TRUE(c.tm("pd").SendWork(txn, "pa").ok());
  c.RunFor(sim::kSecond);
  c.tm("pe").Write(txn, 0, "e", "v", [](Status st) { ASSERT_TRUE(st.ok()); });
  ASSERT_TRUE(c.tm("pe").SendWork(txn, "pa").ok());
  c.RunFor(sim::kSecond);

  bool pd_done = false, pe_done = false;
  tm::CommitResult pd_result, pe_result;
  c.tm("pd").Commit(txn, [&](tm::CommitResult r) {
    pd_done = true;
    pd_result = r;
  });
  c.tm("pe").Commit(txn, [&](tm::CommitResult r) {
    pe_done = true;
    pe_result = r;
  });
  c.RunFor(60 * sim::kSecond);

  ASSERT_TRUE(pd_done);
  ASSERT_TRUE(pe_done);
  EXPECT_EQ(pd_result.outcome, Outcome::kAborted);
  EXPECT_EQ(pe_result.outcome, Outcome::kAborted);
  EXPECT_TRUE(c.Audit(txn).consistent);
  EXPECT_TRUE(c.node("pd").rm().Peek("d").status().IsNotFound());
  EXPECT_TRUE(c.node("pe").rm().Peek("e").status().IsNotFound());
}

// --- Wait for outcome --------------------------------------------------------------

TEST(WaitForOutcomeTest, NonBlockingCommitReturnsPendingAndResolvesLater) {
  Cluster c;
  NodeOptions root_options = Options(ProtocolKind::kPresumedNothing);
  root_options.tm.wait_for_outcome_block = false;  // the optimization
  root_options.tm.ack_timeout = 2 * sim::kSecond;
  c.AddNode("root", root_options);
  c.AddNode("sub", Options(ProtocolKind::kPresumedNothing));
  c.Connect("root", "sub");
  c.tm("sub").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm("sub").Write(txn, 0, "s", "v",
                          [](Status st) { ASSERT_TRUE(st.ok()); });
      });
  uint64_t txn = c.tm("root").Begin();
  c.tm("root").Write(txn, 0, "r", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("root").SendWork(txn, "sub").ok());
  c.RunFor(sim::kSecond);

  // The sub crashes after committing (its ack never arrives).
  c.ctx().failures().ArmCrash("sub", "after_commit_force");
  bool completed = false;
  tm::CommitResult result;
  c.tm("root").Commit(txn, [&](tm::CommitResult r) {
    completed = true;
    result = r;
  });
  // One attempt + one retry at 2s each, then the app gets control back.
  c.RunFor(10 * sim::kSecond);
  ASSERT_TRUE(completed);
  EXPECT_EQ(result.outcome, Outcome::kCommitted);
  EXPECT_TRUE(result.outcome_pending);  // "recovery is in progress"

  // Background recovery finishes once the sub returns.
  c.node("sub").Restart();
  c.RunFor(120 * sim::kSecond);
  EXPECT_EQ(c.tm("sub").View(txn).outcome, Outcome::kCommitted);
  EXPECT_EQ(c.node("sub").rm().Peek("s").value_or(""), "v");
  EXPECT_TRUE(c.Audit(txn).consistent);
}

TEST(WaitForOutcomeTest, BlockingModeWaitsForRecovery) {
  Cluster c;
  NodeOptions root_options = Options(ProtocolKind::kPresumedNothing);
  root_options.tm.wait_for_outcome_block = true;  // classic late ack
  root_options.tm.ack_timeout = 2 * sim::kSecond;
  c.AddNode("root", root_options);
  c.AddNode("sub", Options(ProtocolKind::kPresumedNothing));
  c.Connect("root", "sub");
  c.tm("sub").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm("sub").Write(txn, 0, "s", "v",
                          [](Status st) { ASSERT_TRUE(st.ok()); });
      });
  uint64_t txn = c.tm("root").Begin();
  c.tm("root").Write(txn, 0, "r", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("root").SendWork(txn, "sub").ok());
  c.RunFor(sim::kSecond);

  c.ctx().failures().ArmCrash("sub", "after_prepared_force");
  bool completed = false;
  c.tm("root").Commit(txn, [&](tm::CommitResult) { completed = true; });
  c.RunFor(60 * sim::kSecond);
  EXPECT_FALSE(completed);  // blocked awaiting the crashed subordinate

  c.node("sub").Restart();
  c.RunFor(120 * sim::kSecond);
  EXPECT_TRUE(completed);
  EXPECT_TRUE(c.Audit(txn).consistent);
}

}  // namespace
}  // namespace tpc
