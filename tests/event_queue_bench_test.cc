// Correctness coverage for the event-loop microbenchmark kernel shared with
// bench/event_queue_bench: both the optimized queue and the frozen seed
// copy must execute the same number of handlers, cancel the same timers,
// and agree on clock semantics — otherwise the reported speedup compares
// different work.

#include "sim/event_loop_kernel.h"

#include <vector>

#include <gtest/gtest.h>

namespace tpc::sim {
namespace {

TEST(EventLoopKernelTest, OptimizedQueueExecutesRequestedEvents) {
  EventQueue q;
  EventLoopKernelResult r = RunEventLoopKernel(q, 10'000);
  // The kernel rounds up to whole 64-delivery batches.
  EXPECT_GE(r.events, 10'000u);
  EXPECT_LT(r.events, 10'000u + 64);
  EXPECT_GT(r.events_per_sec, 0.0);
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.executed(), r.events);
}

TEST(EventLoopKernelTest, LegacyQueueExecutesRequestedEvents) {
  LegacyEventQueue q;
  EventLoopKernelResult r = RunEventLoopKernel(q, 10'000);
  EXPECT_GE(r.events, 10'000u);
  EXPECT_LT(r.events, 10'000u + 64);
  EXPECT_GT(r.events_per_sec, 0.0);
}

TEST(EventLoopKernelTest, BothQueuesDoIdenticalWork) {
  EventQueue fast;
  LegacyEventQueue slow;
  EventLoopKernelResult opt = RunEventLoopKernel(fast, 5'000);
  EventLoopKernelResult legacy = RunEventLoopKernel(slow, 5'000);
  EXPECT_EQ(opt.events, legacy.events);
  EXPECT_EQ(opt.cancelled, legacy.cancelled);
  // Every armed timer is cancelled before it can fire.
  EXPECT_GT(opt.cancelled, 0u);
}

TEST(EventLoopKernelTest, LegacyQueueMatchesOptimizedOrdering) {
  // The legacy copy is the baseline for a like-for-like comparison: drive
  // both with an order-sensitive script and require identical traces.
  std::vector<int> fast_order;
  std::vector<int> slow_order;
  EventQueue fast;
  LegacyEventQueue slow;
  for (int i = 0; i < 10; ++i) {
    fast.ScheduleAt((i * 7) % 5, [&fast_order, i] { fast_order.push_back(i); });
    slow.ScheduleAt((i * 7) % 5, [&slow_order, i] { slow_order.push_back(i); });
  }
  fast.Run();
  slow.Run();
  EXPECT_EQ(fast_order, slow_order);
}

}  // namespace
}  // namespace tpc::sim
