// Atomicity under failure injection: for every protocol, crash any single
// participant at any protocol step, recover it, and verify the cluster
// converges to a consistent outcome (all-commit or all-abort) with data
// effects matching — the fundamental guarantee 2PC exists to provide.
//
// Heuristics are disabled here, so there is no legitimate divergence.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "harness/cluster.h"

namespace tpc {
namespace {

using harness::Cluster;
using harness::NodeOptions;
using tm::Outcome;
using tm::ProtocolKind;

struct CrashPlan {
  std::string node;
  std::string point;
  int occurrence;
};

class CrashMatrixTest
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, int>> {};

// Enumerated crash plans: node x instrumented point x occurrence. The
// occurrence matters for points hit repeatedly (retries).
const CrashPlan kPlans[] = {
    {"sub1", "after_prepared_force", 1},
    {"sub2", "after_prepared_force", 1},
    {"mid", "after_prepared_force", 1},
    {"root", "after_commit_force", 1},
    {"mid", "after_commit_force", 1},
    {"sub1", "after_commit_force", 1},
    {"sub2", "after_commit_force", 1},
};

TEST_P(CrashMatrixTest, SingleCrashNeverViolatesAtomicity) {
  auto [protocol, plan_index] = GetParam();
  const CrashPlan& plan = kPlans[plan_index];

  // Tree: root -> {sub1, mid}, mid -> sub2. Everyone writes.
  Cluster c;
  NodeOptions options;
  options.tm.protocol = protocol;
  options.tm.inquiry_delay = 5 * sim::kSecond;
  options.tm.ack_timeout = 5 * sim::kSecond;
  for (const char* n : {"root", "sub1", "mid", "sub2"}) c.AddNode(n, options);
  c.Connect("root", "sub1");
  c.Connect("root", "mid");
  c.Connect("mid", "sub2");

  auto writer = [&c](const std::string& node) {
    c.tm(node).SetAppDataHandler(
        [&c, node](uint64_t txn, const net::NodeId& from, std::string_view) {
          if (node == "mid" && from != "root") return;
          c.tm(node).Write(txn, 0, node + "_key", "v",
                           [](Status st) { ASSERT_TRUE(st.ok()); });
          if (node == "mid") {
            ASSERT_TRUE(c.tm(node).SendWork(txn, "sub2").ok());
          }
        });
  };
  writer("sub1");
  writer("mid");
  writer("sub2");

  uint64_t txn = c.tm("root").Begin();
  c.tm("root").Write(txn, 0, "root_key", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("root").SendWork(txn, "sub1").ok());
  ASSERT_TRUE(c.tm("root").SendWork(txn, "mid").ok());
  c.RunFor(sim::kSecond);

  c.ctx().failures().ArmCrash(plan.node, plan.point, plan.occurrence);
  auto commit = c.StartCommit("root", txn);
  c.RunFor(60 * sim::kSecond);

  // Restart the crashed node (if the plan actually fired) and let
  // recovery converge.
  if (!c.tm(plan.node).IsUp()) c.node(plan.node).Restart();
  c.RunFor(10 * 60 * sim::kSecond);

  harness::TxnAudit audit = c.Audit(txn);
  EXPECT_FALSE(audit.any_in_doubt)
      << plan.node << "@" << plan.point << " left blocked participants";
  EXPECT_TRUE(audit.consistent)
      << plan.node << "@" << plan.point << " diverged";
  EXPECT_FALSE(audit.damage_ground_truth);

  // Data effects agree with the recorded outcome everywhere.
  const bool committed = tm::CommittedEffects(c.tm("root").View(txn).outcome);
  for (const char* node : {"root", "sub1", "mid", "sub2"}) {
    auto value = c.node(node).rm().Peek(std::string(node) + "_key");
    if (committed) {
      EXPECT_EQ(value.value_or(""), "v") << node;
    } else {
      EXPECT_TRUE(value.status().IsNotFound()) << node;
    }
  }
}

std::string PlanName(
    const ::testing::TestParamInfo<std::tuple<ProtocolKind, int>>& info) {
  auto [protocol, plan_index] = info.param;
  const CrashPlan& plan = kPlans[plan_index];
  std::string name;
  switch (protocol) {
    case ProtocolKind::kBasic2PC: name = "Basic"; break;
    case ProtocolKind::kPresumedAbort: name = "PA"; break;
    case ProtocolKind::kPresumedNothing: name = "PN"; break;
    case ProtocolKind::kPresumedCommit: name = "PC"; break;
    case ProtocolKind::kPaxosCommit: name = "Paxos"; break;
    case ProtocolKind::kOnePhase: name = "OnePhase"; break;
    case ProtocolKind::kOnePhaseLogless: name = "OnePhaseLogless"; break;
  }
  name += "_" + plan.node + "_" + plan.point;
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CrashMatrixTest,
    ::testing::Combine(::testing::Values(ProtocolKind::kPresumedAbort,
                                         ProtocolKind::kPresumedNothing,
                                         ProtocolKind::kPresumedCommit),
                       ::testing::Range(0, 7)),
    PlanName);

// The baseline protocol blocks in some of these cases (that is its known
// weakness), so it gets a weaker property: no divergence, ever — blocked
// participants are allowed.
class Basic2pcCrashTest : public ::testing::TestWithParam<int> {};

TEST_P(Basic2pcCrashTest, NeverDiverges) {
  const CrashPlan& plan = kPlans[GetParam()];
  Cluster c;
  NodeOptions options;
  options.tm.protocol = ProtocolKind::kBasic2PC;
  options.tm.inquiry_delay = 5 * sim::kSecond;
  options.tm.ack_timeout = 5 * sim::kSecond;
  for (const char* n : {"root", "sub1", "mid", "sub2"}) c.AddNode(n, options);
  c.Connect("root", "sub1");
  c.Connect("root", "mid");
  c.Connect("mid", "sub2");
  for (const std::string node : {"sub1", "mid", "sub2"}) {
    c.tm(node).SetAppDataHandler(
        [&c, node](uint64_t txn, const net::NodeId& from, std::string_view) {
          if (node == "mid" && from != "root") return;
          c.tm(node).Write(txn, 0, node + "_key", "v",
                           [](Status st) { ASSERT_TRUE(st.ok()); });
          if (node == "mid") {
            ASSERT_TRUE(c.tm(node).SendWork(txn, "sub2").ok());
          }
        });
  }
  uint64_t txn = c.tm("root").Begin();
  ASSERT_TRUE(c.tm("root").SendWork(txn, "sub1").ok());
  ASSERT_TRUE(c.tm("root").SendWork(txn, "mid").ok());
  c.RunFor(sim::kSecond);

  c.ctx().failures().ArmCrash(plan.node, plan.point, plan.occurrence);
  auto commit = c.StartCommit("root", txn);
  c.RunFor(60 * sim::kSecond);
  if (!c.tm(plan.node).IsUp()) c.node(plan.node).Restart();
  c.RunFor(10 * 60 * sim::kSecond);

  // Among the participants that have resolved, effects must agree.
  bool any_commit = false, any_abort = false;
  for (const char* node : {"root", "sub1", "mid", "sub2"}) {
    Outcome o = c.tm(node).View(txn).outcome;
    if (o == Outcome::kCommitted) any_commit = true;
    if (o == Outcome::kAborted) any_abort = true;
  }
  EXPECT_FALSE(any_commit && any_abort)
      << plan.node << "@" << plan.point << " diverged under basic 2PC";
}

INSTANTIATE_TEST_SUITE_P(Matrix, Basic2pcCrashTest, ::testing::Range(0, 7));

}  // namespace
}  // namespace tpc
