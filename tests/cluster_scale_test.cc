// Cluster-scale harness coverage: bulk topology construction invariants,
// the multi-coordinator workload (completion, contention, the cascaded
// read-only last-agent chain), per-node memory budgets, and the
// determinism contract the cluster bench relies on — a fixed (config,
// seed) cell renders a bit-identical trace regardless of sweep thread
// count or the order cells are issued in.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "harness/cluster_workload.h"
#include "harness/sweep.h"
#include "sim/trace.h"

namespace tpc {
namespace {

using harness::Cluster;
using harness::ClusterWorkloadOptions;
using harness::ClusterWorkloadStats;
using harness::Topology;
using harness::TopologyOptions;
using harness::TopologyShape;

// --- Topology construction ------------------------------------------------------

void CheckTreeInvariants(const Topology& topo, const TopologyOptions& opts) {
  ASSERT_EQ(topo.servers.size(), opts.servers);
  ASSERT_EQ(topo.parent.size(), opts.servers);
  ASSERT_EQ(topo.children.size(), opts.servers);
  EXPECT_EQ(topo.coordinators.size(), opts.coordinators);
  EXPECT_EQ(topo.parent[0], Topology::kNoParent);

  size_t edges = 0, leaves = 0;
  for (uint32_t i = 0; i < opts.servers; ++i) {
    if (i > 0) {
      ASSERT_LT(topo.parent[i], i) << "parents precede children";
      // The child list of my parent contains me.
      const auto& sibs = topo.children[topo.parent[i]];
      EXPECT_NE(std::find(sibs.begin(), sibs.end(), i), sibs.end());
    }
    if (opts.shape != TopologyShape::kStar) {
      EXPECT_LE(topo.children[i].size(), opts.fanout) << "node " << i;
    }
    edges += topo.children[i].size();
    if (topo.children[i].empty()) ++leaves;
  }
  EXPECT_EQ(edges, opts.servers - 1) << "a tree";
  EXPECT_EQ(topo.leaves.size(), leaves);
  EXPECT_GE(topo.depth, 1u);

  // NextHop from the root reaches every leaf by walking real edges.
  for (uint32_t leaf : topo.leaves) {
    if (leaf == 0) continue;
    uint32_t at = 0;
    size_t hops = 0;
    while (at != leaf) {
      at = topo.NextHop(at, leaf);
      ASSERT_LE(++hops, topo.depth) << "path longer than depth";
    }
  }
}

TEST(TopologyTest, TreeShape) {
  Cluster c(1);
  TopologyOptions opts;
  opts.shape = TopologyShape::kTree;
  opts.servers = 73;  // deliberately not a full tree
  opts.fanout = 4;
  opts.coordinators = 3;
  Topology topo = c.BuildTopology(opts);
  CheckTreeInvariants(topo, opts);
  EXPECT_EQ(topo.depth, 4u);  // 1 + 4 + 16 + 52-of-64
}

TEST(TopologyTest, StarShape) {
  Cluster c(1);
  TopologyOptions opts;
  opts.shape = TopologyShape::kStar;
  opts.servers = 33;
  opts.coordinators = 1;
  Topology topo = c.BuildTopology(opts);
  CheckTreeInvariants(topo, opts);
  EXPECT_EQ(topo.depth, 2u);
  EXPECT_EQ(topo.children[0].size(), 32u);
}

TEST(TopologyTest, RandomSparseRespectsFanoutAndSeed) {
  Cluster c1(1), c2(1), c3(1);
  TopologyOptions opts;
  opts.shape = TopologyShape::kRandomSparse;
  opts.servers = 200;
  opts.fanout = 3;
  opts.wiring_seed = 5;
  Topology a = c1.BuildTopology(opts);
  Topology b = c2.BuildTopology(opts);
  CheckTreeInvariants(a, opts);
  EXPECT_EQ(a.parent, b.parent) << "same wiring seed, same tree";
  opts.wiring_seed = 6;
  Topology d = c3.BuildTopology(opts);
  CheckTreeInvariants(d, opts);
  EXPECT_NE(a.parent, d.parent) << "different wiring seed, different tree";
}

TEST(TopologyTest, Fanout1IsAChain) {
  for (TopologyShape shape :
       {TopologyShape::kTree, TopologyShape::kRandomSparse}) {
    Cluster c(1);
    TopologyOptions opts;
    opts.shape = shape;
    opts.servers = 16;
    opts.fanout = 1;
    Topology topo = c.BuildTopology(opts);
    CheckTreeInvariants(topo, opts);
    EXPECT_EQ(topo.depth, 16u);
    EXPECT_EQ(topo.leaves.size(), 1u);
  }
}

// --- Workload completion and contention ----------------------------------------

ClusterWorkloadStats RunCell(TopologyShape shape, size_t servers,
                             size_t fanout, size_t coordinators,
                             const ClusterWorkloadOptions& wopts,
                             tm::TmConfig tm_config = {}) {
  Cluster cluster(42);
  TopologyOptions topt;
  topt.shape = shape;
  topt.servers = servers;
  topt.fanout = fanout;
  topt.coordinators = coordinators;
  topt.node_options.tm = tm_config;
  Topology topo = cluster.BuildTopology(topt);
  return RunClusterWorkload(&cluster, topo, wopts);
}

TEST(ClusterWorkloadTest, CompletesAcrossProtocols) {
  for (tm::ProtocolKind protocol :
       {tm::ProtocolKind::kBasic2PC, tm::ProtocolKind::kPresumedAbort,
        tm::ProtocolKind::kPresumedNothing}) {
    tm::TmConfig config;
    config.protocol = protocol;
    ClusterWorkloadOptions wopts;
    wopts.transactions = 32;
    ClusterWorkloadStats stats =
        RunCell(TopologyShape::kTree, 64, 8, 4, wopts, config);
    EXPECT_EQ(stats.incomplete, 0u);
    EXPECT_EQ(stats.committed + stats.aborted, 32u);
    EXPECT_GT(stats.events, 0u);
    EXPECT_GT(stats.Throughput(), 0.0);
  }
}

// Regression: a deep chain where every node between the initiator and the
// single writing leaf is read-only used to swallow the last agent's
// decision — each read-only delegator forgot the transaction on its vote,
// so the outcome never travelled back up and the coordinator hung.
TEST(ClusterWorkloadTest, ReadOnlyLastAgentChainCompletes) {
  tm::TmConfig config;
  config.protocol = tm::ProtocolKind::kPresumedAbort;
  config.read_only_opt = true;
  config.last_agent_opt = true;
  ClusterWorkloadOptions wopts;
  wopts.transactions = 32;
  wopts.targets_per_txn = 1;  // single leaf => fully read-only interior
  ClusterWorkloadStats stats =
      RunCell(TopologyShape::kTree, 64, 2, 2, wopts, config);
  EXPECT_EQ(stats.incomplete, 0u);
  EXPECT_EQ(stats.committed, 32u);
}

TEST(ClusterWorkloadTest, HotKeyContentionResolvesWithoutStalling) {
  // Slam 8 coordinators into two hot keys across overlapping leaf sets:
  // lock waits and timeout-broken deadlocks must all surface as commits or
  // aborts before the deadline — never as a stuck stream.
  ClusterWorkloadOptions wopts;
  wopts.transactions = 64;
  wopts.targets_per_txn = 4;
  wopts.theta = 0.9;
  wopts.hot_keys = 2;
  wopts.key_theta = 0.9;
  ClusterWorkloadStats stats =
      RunCell(TopologyShape::kTree, 64, 8, 8, wopts);
  EXPECT_EQ(stats.incomplete, 0u);
  EXPECT_EQ(stats.committed + stats.aborted, 64u);
  EXPECT_GT(stats.committed, 0u);
}

// --- Memory budgets -------------------------------------------------------------

TEST(ClusterMemoryTest, PerNodeFootprintDoesNotGrowWithClusterSize) {
  auto bytes_per_node = [](size_t servers) {
    Cluster cluster(42);
    TopologyOptions topt;
    topt.servers = servers;
    topt.fanout = 8;
    topt.coordinators = 4;
    Topology topo = cluster.BuildTopology(topt);
    ClusterWorkloadOptions wopts;
    wopts.transactions = 16;
    RunClusterWorkload(&cluster, topo, wopts);
    harness::MemoryStats mem = cluster.MemoryUsage();
    EXPECT_EQ(mem.nodes, servers + 4);
    EXPECT_GT(mem.total_bytes(), 0u);
    return mem.bytes_per_node();
  };
  const double small = bytes_per_node(64);
  const double large = bytes_per_node(1024);
  // Sparse link/session/txn tables: a 16x larger cluster must not cost
  // more per node (fixed per-node state plus O(fanout) links amortize the
  // shared network tables *better* as the cluster grows).
  EXPECT_LE(large, small * 1.25);
}

// --- Determinism ----------------------------------------------------------------

struct CellSpec {
  uint64_t seed;
  size_t coordinators;
};

std::string RunTracedCell(const CellSpec& spec) {
  Cluster cluster(spec.seed);
  TopologyOptions topt;
  topt.servers = 64;
  topt.fanout = 8;
  topt.coordinators = spec.coordinators;
  Topology topo = cluster.BuildTopology(topt);
  ClusterWorkloadOptions wopts;
  wopts.transactions = 24;
  wopts.theta = 0.7;
  RunClusterWorkload(&cluster, topo, wopts);
  return cluster.ctx().trace().Render();
}

TEST(ClusterDeterminismTest, TraceIdenticalAcrossSweepThreadCounts) {
  const std::vector<CellSpec> grid = {
      {7, 1}, {7, 2}, {7, 4}, {11, 4}, {13, 8}};
  auto run_grid = [&](unsigned threads) {
    std::vector<std::string> traces(grid.size());
    harness::RunSweep(
        grid.size(),
        [&](size_t i) {
          traces[i] = RunTracedCell(grid[i]);
          return harness::SweepCell{};
        },
        threads);
    return traces;
  };
  const std::vector<std::string> serial = run_grid(1);
  const std::vector<std::string> parallel = run_grid(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "cell " << i;
    EXPECT_GT(serial[i].size(), 1000u) << "trace is substantive";
  }
}

TEST(ClusterDeterminismTest, TraceIndependentOfCoordinatorCountOrdering) {
  // Running the c=2 cell before or after the c=4 cell (or on another
  // thread entirely) must not perturb either trace: every cell owns its
  // SimContext and the whole transaction plan is fixed up front.
  const std::string c2_first = RunTracedCell({7, 2});
  const std::string c4 = RunTracedCell({7, 4});
  const std::string c2_again = RunTracedCell({7, 2});
  EXPECT_EQ(c2_first, c2_again);
  EXPECT_NE(c2_first, c4) << "coordinator count is a real knob";
}

}  // namespace
}  // namespace tpc
