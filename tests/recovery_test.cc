// Crash, recovery, blocking, and heuristic-decision behavior — the
// reliability half of the paper's analysis. Every scenario checks both the
// protocol outcome and the data effects rebuilt from the log.

#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace tpc {
namespace {

using harness::Cluster;
using harness::NodeOptions;
using tm::HeuristicPolicy;
using tm::Outcome;
using tm::ProtocolKind;

NodeOptions Options(ProtocolKind protocol) {
  NodeOptions options;
  options.tm.protocol = protocol;
  return options;
}

void SubWritesOnData(Cluster& c, const std::string& node) {
  c.tm(node).SetAppDataHandler(
      [&c, node](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm(node).Write(txn, 0, node + "_key", "v",
                         [](Status st) { ASSERT_TRUE(st.ok()); });
      });
}

// Sets up coordinator+subordinate with work on both, returns txn id.
uint64_t SetupTwoNodeWork(Cluster& c) {
  SubWritesOnData(c, "sub");
  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "coord_key", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  EXPECT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.RunFor(sim::kSecond);
  return txn;
}

// --- Subordinate crashes while in doubt -------------------------------------

TEST(RecoveryTest, PaSubordinateCrashInDoubtRecoversCommitViaInquiry) {
  Cluster c;
  c.AddNode("coord", Options(ProtocolKind::kPresumedAbort));
  c.AddNode("sub", Options(ProtocolKind::kPresumedAbort));
  c.Connect("coord", "sub");
  uint64_t txn = SetupTwoNodeWork(c);

  // The subordinate crashes right after its prepared record is durable
  // (its YES vote is never sent).
  c.ctx().failures().ArmCrash("sub", "after_prepared_force");
  bool completed = false;
  tm::CommitResult result;
  c.tm("coord").Commit(txn, [&](tm::CommitResult r) {
    completed = true;
    result = r;
  });
  c.RunFor(5 * sim::kSecond);
  EXPECT_FALSE(completed);  // coordinator is waiting for the vote

  // The subordinate restarts; its recovery inquiry finds a coordinator
  // that has not decided -> it stays in doubt; the coordinator's vote
  // timeout then aborts, and the next inquiry resolves abort.
  c.node("sub").Restart();
  c.RunFor(60 * sim::kSecond);
  EXPECT_TRUE(completed);
  EXPECT_EQ(result.outcome, Outcome::kAborted);
  harness::TxnAudit audit = c.Audit(txn);
  EXPECT_TRUE(audit.consistent);
  // Both sides undid the work.
  EXPECT_TRUE(c.node("coord").rm().Peek("coord_key").status().IsNotFound());
  EXPECT_TRUE(c.node("sub").rm().Peek("sub_key").status().IsNotFound());
}

TEST(RecoveryTest, PaSubordinateCrashAfterVoteLearnsCommitOnRestart) {
  Cluster c;
  c.AddNode("coord", Options(ProtocolKind::kPresumedAbort));
  c.AddNode("sub", Options(ProtocolKind::kPresumedAbort));
  c.Connect("coord", "sub");
  // 5ms link: Prepare lands at 5ms, the sub's two forces finish by ~9ms,
  // the vote lands at ~14ms, and the Commit lands at ~21ms — so a crash at
  // 12ms is strictly between "vote sent" and "Commit received".
  c.network().SetLinkLatency("coord", "sub", 5 * sim::kMillisecond);
  uint64_t txn = SetupTwoNodeWork(c);

  // Crash the subordinate after its vote is sent but before the Commit
  // message arrives.
  bool completed = false;
  tm::CommitResult result;
  c.tm("coord").Commit(txn, [&](tm::CommitResult r) {
    completed = true;
    result = r;
  });
  c.ctx().events().ScheduleAt(c.ctx().now() + 12 * sim::kMillisecond,
                              [&c] { c.ctx().failures().CrashNow("sub"); });
  c.RunFor(5 * sim::kSecond);
  EXPECT_FALSE(completed);  // ack outstanding; coordinator keeps retrying

  c.node("sub").Restart();
  // On restart the sub is in doubt and inquires; the coordinator replies
  // committed; the retried Commit also lands. Either path resolves.
  c.RunFor(60 * sim::kSecond);
  EXPECT_TRUE(completed);
  EXPECT_EQ(result.outcome, Outcome::kCommitted);
  EXPECT_EQ(c.node("sub").rm().Peek("sub_key").value_or(""), "v");
  EXPECT_EQ(c.node("coord").rm().Peek("coord_key").value_or(""), "v");
  EXPECT_TRUE(c.Audit(txn).consistent);
}

// --- Coordinator crashes ------------------------------------------------------

TEST(RecoveryTest, PaCoordinatorCrashBeforeDecisionPresumesAbort) {
  Cluster c;
  NodeOptions sub_options = Options(ProtocolKind::kPresumedAbort);
  sub_options.tm.inquiry_delay = 3 * sim::kSecond;
  c.AddNode("coord", Options(ProtocolKind::kPresumedAbort));
  c.AddNode("sub", sub_options);
  c.Connect("coord", "sub");
  uint64_t txn = SetupTwoNodeWork(c);

  // Coordinator crashes the moment all votes are in, before logging the
  // decision: there is no trace of the transaction at the coordinator.
  bool completed = false;
  c.tm("coord").Commit(txn, [&](tm::CommitResult) { completed = true; });
  c.ctx().events().ScheduleAt(c.ctx().now() + 4 * sim::kMillisecond,
                              [&c] { c.ctx().failures().CrashNow("coord"); });
  c.RunFor(sim::kSecond);
  EXPECT_FALSE(completed);
  EXPECT_EQ(c.tm("sub").InDoubtCount(), 1u);

  // Coordinator restarts with no record; the subordinate's inquiry gets
  // the presumed-abort answer and unblocks.
  c.node("coord").Restart();
  c.RunFor(30 * sim::kSecond);
  EXPECT_EQ(c.tm("sub").InDoubtCount(), 0u);
  EXPECT_EQ(c.tm("sub").View(txn).outcome, Outcome::kAborted);
  EXPECT_TRUE(c.node("sub").rm().Peek("sub_key").status().IsNotFound());
}

TEST(RecoveryTest, Basic2pcCoordinatorCrashBeforeDecisionBlocksSubordinate) {
  // The blocking weakness that motivates PA/PN: with no presumption, the
  // subordinate stays in doubt indefinitely holding its locks.
  Cluster c;
  NodeOptions sub_options = Options(ProtocolKind::kBasic2PC);
  sub_options.tm.inquiry_delay = 3 * sim::kSecond;
  c.AddNode("coord", Options(ProtocolKind::kBasic2PC));
  c.AddNode("sub", sub_options);
  c.Connect("coord", "sub");
  uint64_t txn = SetupTwoNodeWork(c);

  bool completed = false;
  c.tm("coord").Commit(txn, [&](tm::CommitResult) { completed = true; });
  c.ctx().events().ScheduleAt(c.ctx().now() + 4 * sim::kMillisecond,
                              [&c] { c.ctx().failures().CrashNow("coord"); });
  c.RunFor(sim::kSecond);
  c.node("coord").Restart();
  c.RunFor(10 * 60 * sim::kSecond);  // ten minutes of inquiries

  // Still blocked: inquiries keep answering "unknown".
  EXPECT_EQ(c.tm("sub").InDoubtCount(), 1u);
  EXPECT_EQ(c.tm("sub").View(txn).outcome, Outcome::kInDoubt);
  // And the subordinate's locks are still held: a new writer blocks.
  bool granted = false;
  uint64_t txn2 = c.tm("sub").Begin();
  c.tm("sub").Write(txn2, 0, "sub_key", "other",
                    [&](Status st) { granted = st.ok(); });
  c.RunFor(sim::kSecond);
  EXPECT_FALSE(granted);
}

TEST(RecoveryTest, PaCoordinatorCrashAfterCommitForceResendsOnRestart) {
  Cluster c;
  c.AddNode("coord", Options(ProtocolKind::kPresumedAbort));
  c.AddNode("sub", Options(ProtocolKind::kPresumedAbort));
  c.Connect("coord", "sub");
  uint64_t txn = SetupTwoNodeWork(c);

  c.ctx().failures().ArmCrash("coord", "after_commit_force");
  bool completed = false;
  c.tm("coord").Commit(txn, [&](tm::CommitResult) { completed = true; });
  c.RunFor(5 * sim::kSecond);
  EXPECT_FALSE(completed);  // crashed mid-commit; app callback lost
  EXPECT_EQ(c.tm("sub").InDoubtCount(), 1u);

  c.node("coord").Restart();
  c.RunFor(60 * sim::kSecond);
  // Recovery re-sent the Commit; the whole tree is committed.
  EXPECT_EQ(c.tm("sub").View(txn).outcome, Outcome::kCommitted);
  EXPECT_EQ(c.tm("coord").View(txn).outcome, Outcome::kCommitted);
  EXPECT_EQ(c.node("sub").rm().Peek("sub_key").value_or(""), "v");
  // The coordinator's own RM redid its update from the log.
  EXPECT_EQ(c.node("coord").rm().Peek("coord_key").value_or(""), "v");
  EXPECT_TRUE(c.Audit(txn).consistent);
}

TEST(RecoveryTest, PnCoordinatorCrashBeforeDecisionDrivesAbort) {
  // PN's commit-pending record makes the coordinator responsible for
  // driving recovery: after the crash it aborts the subordinates itself —
  // no subordinate inquiry exists under PN.
  Cluster c;
  c.AddNode("coord", Options(ProtocolKind::kPresumedNothing));
  c.AddNode("sub", Options(ProtocolKind::kPresumedNothing));
  c.Connect("coord", "sub");
  uint64_t txn = SetupTwoNodeWork(c);

  bool completed = false;
  c.tm("coord").Commit(txn, [&](tm::CommitResult) { completed = true; });
  // Crash after commit-pending + prepares are out but before the decision:
  // commit-pending force (2ms) + prepare flight (1ms) + sub force (2ms)...
  // crash at 4ms: votes still in flight.
  c.ctx().events().ScheduleAt(c.ctx().now() + 4 * sim::kMillisecond,
                              [&c] { c.ctx().failures().CrashNow("coord"); });
  c.RunFor(sim::kSecond);
  EXPECT_EQ(c.tm("sub").InDoubtCount(), 1u);

  c.node("coord").Restart();
  c.RunFor(60 * sim::kSecond);
  EXPECT_EQ(c.tm("sub").InDoubtCount(), 0u);
  EXPECT_EQ(c.tm("sub").View(txn).outcome, Outcome::kAborted);
  EXPECT_TRUE(c.node("sub").rm().Peek("sub_key").status().IsNotFound());
  EXPECT_TRUE(c.Audit(txn).consistent);
}

// --- Data effects across crashes ------------------------------------------------

TEST(RecoveryTest, CommittedDataSurvivesCrashViaRedo) {
  Cluster c;
  c.AddNode("coord", Options(ProtocolKind::kPresumedAbort));
  c.AddNode("sub", Options(ProtocolKind::kPresumedAbort));
  c.Connect("coord", "sub");
  uint64_t txn = SetupTwoNodeWork(c);
  auto commit = c.CommitAndWait("coord", txn);
  ASSERT_TRUE(commit.completed);
  c.RunFor(sim::kSecond);

  // Crash both nodes; everything volatile is gone.
  c.ctx().failures().CrashNow("coord");
  c.ctx().failures().CrashNow("sub");
  c.node("coord").Restart();
  c.node("sub").Restart();
  c.RunFor(sim::kSecond);

  EXPECT_EQ(c.node("coord").rm().Peek("coord_key").value_or(""), "v");
  EXPECT_EQ(c.node("sub").rm().Peek("sub_key").value_or(""), "v");
}

TEST(RecoveryTest, UncommittedDataVanishesOnCrash) {
  Cluster c;
  c.AddNode("coord", Options(ProtocolKind::kPresumedAbort));
  c.AddNode("sub", Options(ProtocolKind::kPresumedAbort));
  c.Connect("coord", "sub");
  uint64_t txn = SetupTwoNodeWork(c);
  (void)txn;

  // No commit: updates are volatile (update records were never forced).
  c.ctx().failures().CrashNow("coord");
  c.node("coord").Restart();
  c.RunFor(sim::kSecond);
  EXPECT_TRUE(c.node("coord").rm().Peek("coord_key").status().IsNotFound());
}

// --- Heuristic decisions ----------------------------------------------------------

struct HeuristicRun {
  std::unique_ptr<Cluster> cluster;
  uint64_t txn = 0;
  bool completed = false;
  tm::CommitResult result;
};

// The subordinate heuristically commits/aborts while the coordinator is
// down; the coordinator then recovers and commits. If the heuristic was
// abort, damage occurred.
HeuristicRun RunHeuristicScenario(ProtocolKind protocol,
                                  HeuristicPolicy policy) {
  HeuristicRun run;
  run.cluster = std::make_unique<Cluster>();
  Cluster& c = *run.cluster;
  NodeOptions sub_options = Options(protocol);
  sub_options.tm.heuristic_policy = policy;
  sub_options.tm.heuristic_delay = 20 * sim::kSecond;
  sub_options.tm.inquiry_delay = 500 * sim::kSecond;  // heuristic fires first
  NodeOptions coord_options = Options(protocol);
  c.AddNode("coord", coord_options);
  c.AddNode("sub", sub_options);
  c.Connect("coord", "sub");
  run.txn = SetupTwoNodeWork(c);

  // Coordinator crashes right after forcing the commit record: the
  // subordinate is in doubt and the decision is not coming.
  c.ctx().failures().ArmCrash("coord", "after_commit_force");
  c.tm("coord").Commit(run.txn, [&run](tm::CommitResult r) {
    run.completed = true;
    run.result = r;
  });
  c.RunFor(30 * sim::kSecond);  // heuristic fires at +20s

  // Coordinator restarts and re-drives the commit; the subordinate
  // compares it with its heuristic decision.
  c.node("coord").Restart();
  c.RunFor(120 * sim::kSecond);
  return run;
}

TEST(HeuristicTest, HeuristicAbortAgainstCommitIsDamage) {
  HeuristicRun run = RunHeuristicScenario(ProtocolKind::kPresumedNothing,
                                          HeuristicPolicy::kAbort);
  Cluster& c = *run.cluster;
  // Ground truth: coordinator committed, subordinate heuristically aborted.
  EXPECT_EQ(c.tm("sub").View(run.txn).outcome, Outcome::kHeuristicAborted);
  EXPECT_EQ(c.tm("coord").View(run.txn).outcome, Outcome::kCommitted);
  harness::TxnAudit audit = c.Audit(run.txn);
  EXPECT_TRUE(audit.damage_ground_truth);
  EXPECT_TRUE(audit.any_heuristic);
  // PN reliably reports the damage to the coordinator.
  EXPECT_TRUE(c.tm("coord").View(run.txn).damage_reported_here);
  // Data diverged: that is what heuristic damage means.
  EXPECT_EQ(c.node("coord").rm().Peek("coord_key").value_or(""), "v");
  EXPECT_TRUE(c.node("sub").rm().Peek("sub_key").status().IsNotFound());
}

TEST(HeuristicTest, HeuristicCommitMatchingOutcomeIsNotDamage) {
  HeuristicRun run = RunHeuristicScenario(ProtocolKind::kPresumedNothing,
                                          HeuristicPolicy::kCommit);
  Cluster& c = *run.cluster;
  EXPECT_EQ(c.tm("sub").View(run.txn).outcome, Outcome::kHeuristicCommitted);
  harness::TxnAudit audit = c.Audit(run.txn);
  EXPECT_FALSE(audit.damage_ground_truth);
  EXPECT_TRUE(audit.any_heuristic);
  EXPECT_FALSE(c.tm("coord").View(run.txn).damage_reported_here);
  // Both sides have the committed data.
  EXPECT_EQ(c.node("sub").rm().Peek("sub_key").value_or(""), "v");
}

TEST(HeuristicTest, HeuristicLocksAreReleased) {
  // The whole point of a heuristic decision: stop holding valuable locks.
  Cluster c;
  NodeOptions sub_options = Options(ProtocolKind::kPresumedNothing);
  sub_options.tm.heuristic_policy = HeuristicPolicy::kAbort;
  sub_options.tm.heuristic_delay = 20 * sim::kSecond;
  // The probe below must outwait the heuristic, not hit its own deadlock
  // timeout first.
  sub_options.rm_options.lock_timeout = 300 * sim::kSecond;
  c.AddNode("coord", Options(ProtocolKind::kPresumedNothing));
  c.AddNode("sub", sub_options);
  c.Connect("coord", "sub");
  uint64_t txn = SetupTwoNodeWork(c);

  c.ctx().failures().ArmCrash("coord", "after_commit_force");
  c.tm("coord").Commit(txn, [](tm::CommitResult) {});
  c.RunFor(10 * sim::kSecond);

  // Before the heuristic fires, the lock is held.
  bool granted = false;
  uint64_t probe = c.tm("sub").Begin();
  c.tm("sub").Write(probe, 0, "sub_key", "probe",
                    [&](Status st) { granted = st.ok(); });
  c.RunFor(sim::kSecond);
  EXPECT_FALSE(granted);

  c.RunFor(30 * sim::kSecond);  // heuristic fires at +20s; waiter unblocks
  EXPECT_TRUE(granted);
}

}  // namespace
}  // namespace tpc
