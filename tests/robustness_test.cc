// Robustness: malformed or corrupted network traffic must never crash a
// transaction manager or corrupt a transaction — it is dropped, and the
// protocol's normal retry/recovery machinery covers the loss.

#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "util/random.h"

namespace tpc {
namespace {

using harness::Cluster;
using harness::NodeOptions;

TEST(RobustnessTest, MalformedMessagesAreDroppedNotFatal) {
  Cluster c;
  c.AddNode("a", {});
  c.AddNode("b", {});
  c.Connect("a", "b");
  c.tm("b").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm("b").Write(txn, 0, "k", "v", [](Status) {});
      });

  Random rng(1234);
  // Blast garbage at both nodes, interleaved with a real transaction.
  auto blast = [&](const std::string& from, const std::string& to) {
    net::LegacyMessage msg;
    msg.from = from;
    msg.to = to;
    msg.trace_tag = "GARBAGE";
    size_t len = rng.Uniform(64);
    for (size_t i = 0; i < len; ++i)
      msg.payload.push_back(static_cast<char>(rng.Uniform(256)));
    ASSERT_TRUE(c.network().SendLegacy(std::move(msg)).ok());
  };
  for (int i = 0; i < 50; ++i) {
    blast("a", "b");
    blast("b", "a");
  }
  uint64_t txn = c.tm("a").Begin();
  c.tm("a").Write(txn, 0, "k", "v", [](Status st) { ASSERT_TRUE(st.ok()); });
  ASSERT_TRUE(c.tm("a").SendWork(txn, "b").ok());
  for (int i = 0; i < 50; ++i) {
    blast("a", "b");
    blast("b", "a");
  }
  c.RunFor(sim::kSecond);
  auto commit = c.CommitAndWait("a", txn);
  c.RunFor(sim::kSecond);
  ASSERT_TRUE(commit.completed);
  EXPECT_EQ(commit.result.outcome, tm::Outcome::kCommitted);
  EXPECT_EQ(c.node("b").rm().Peek("k").value_or(""), "v");
  EXPECT_TRUE(c.Audit(txn).consistent);
}

TEST(RobustnessTest, TruncatedProtocolMessageIsDropped) {
  // A valid PDU payload cut short mid-frame must also be survivable.
  Cluster c;
  c.AddNode("a", {});
  c.AddNode("b", {});
  c.Connect("a", "b");
  tm::Pdu pdu;
  pdu.type = tm::PduType::kPrepare;
  pdu.txn = 42;
  std::string payload = tm::EncodePdus({pdu});
  net::LegacyMessage msg;
  msg.from = "a";
  msg.to = "b";
  msg.trace_tag = "TRUNCATED";
  msg.payload = payload.substr(0, payload.size() / 2);
  ASSERT_TRUE(c.network().SendLegacy(std::move(msg)).ok());
  c.RunFor(sim::kSecond);
  // b neither crashed nor created transaction state.
  EXPECT_TRUE(c.tm("b").IsUp());
  EXPECT_FALSE(c.tm("b").Knows(42));
}

}  // namespace
}  // namespace tpc
