// Randomized whole-system property test: a seeded stream of distributed
// transactions over a fully connected cluster, with random node crashes
// (plus restarts) and random link partitions (plus heals) injected
// throughout. After the dust settles, every transaction must be
// all-or-nothing: each participant either has the transaction's marker row
// (committed everywhere) or does not (aborted everywhere), no participant
// is left in doubt, and no heuristic damage exists (heuristics are off).
//
// This is the closest thing to the protocols' contract: atomicity under
// arbitrary single-fault timing, checked end-to-end through the network,
// WAL, lock manager, resource managers, and recovery.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "harness/cluster.h"
#include "util/random.h"

namespace tpc {
namespace {

using harness::Cluster;
using harness::NodeOptions;
using tm::Outcome;
using tm::ProtocolKind;

constexpr int kNodes = 4;
constexpr int kTxns = 30;

std::string NodeName(int i) { return "n" + std::to_string(i); }

class RandomWorkloadTest
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, uint64_t>> {};

TEST_P(RandomWorkloadTest, EveryTransactionIsAllOrNothing) {
  auto [protocol, seed] = GetParam();
  Cluster c(seed);
  Random rng(seed * 7919 + 13);

  NodeOptions options;
  options.tm.protocol = protocol;
  options.tm.vote_timeout = 10 * sim::kSecond;
  options.tm.ack_timeout = 5 * sim::kSecond;
  options.tm.inquiry_delay = 5 * sim::kSecond;
  options.tm.recovery_retry_interval = 10 * sim::kSecond;
  for (int i = 0; i < kNodes; ++i) c.AddNode(NodeName(i), options);
  for (int i = 0; i < kNodes; ++i)
    for (int j = i + 1; j < kNodes; ++j) c.Connect(NodeName(i), NodeName(j));

  // Every node writes a per-transaction marker when work reaches it.
  for (int i = 0; i < kNodes; ++i) {
    const std::string name = NodeName(i);
    c.tm(name).SetAppDataHandler(
        [&c, name](uint64_t txn, const net::NodeId&, std::string_view) {
          c.tm(name).Write(txn, 0, "t" + std::to_string(txn), "done",
                           [](Status) { /* may fail if node crashes */ });
        });
  }

  struct TxnRecord {
    uint64_t id;
    std::string coordinator;
    std::set<std::string> participants;  // includes the coordinator
    std::shared_ptr<harness::DrivenCommit> commit;
  };
  std::vector<TxnRecord> txns;

  auto chaos = [&] {
    // Random crash (restart arrives 20-40s later) or partition (heals
    // 10-30s later), at most one of each armed per call.
    if (rng.Bernoulli(0.4)) {
      int victim = static_cast<int>(rng.Uniform(kNodes));
      std::string name = NodeName(victim);
      if (c.tm(name).IsUp()) {
        c.ctx().failures().CrashNow(name);
        sim::Time delay = static_cast<sim::Time>(
            rng.UniformRange(20, 40) * static_cast<uint64_t>(sim::kSecond));
        c.ctx().events().ScheduleAfter(delay, [&c, name] {
          if (!c.tm(name).IsUp()) c.node(name).Restart();
        });
      }
    }
    if (rng.Bernoulli(0.3)) {
      int a = static_cast<int>(rng.Uniform(kNodes));
      int b = static_cast<int>(rng.Uniform(kNodes));
      if (a != b) {
        std::string na = NodeName(a), nb = NodeName(b);
        c.network().SetLinkDown(na, nb, true);
        sim::Time delay = static_cast<sim::Time>(
            rng.UniformRange(10, 30) * static_cast<uint64_t>(sim::kSecond));
        c.ctx().events().ScheduleAfter(
            delay, [&c, na, nb] { c.network().SetLinkDown(na, nb, false); });
      }
    }
  };

  for (int i = 0; i < kTxns; ++i) {
    int coord = static_cast<int>(rng.Uniform(kNodes));
    std::string coord_name = NodeName(coord);
    if (!c.tm(coord_name).IsUp()) {
      c.RunFor(5 * sim::kSecond);
      if (!c.tm(coord_name).IsUp()) continue;  // still down; skip this slot
    }
    TxnRecord record;
    record.id = c.tm(coord_name).Begin();
    record.coordinator = coord_name;
    record.participants.insert(coord_name);
    c.tm(coord_name).Write(record.id, 0, "t" + std::to_string(record.id),
                           "done", [](Status) {});
    // 1-3 random other participants.
    uint64_t extra = rng.UniformRange(1, 3);
    for (uint64_t k = 0; k < extra; ++k) {
      int peer = static_cast<int>(rng.Uniform(kNodes));
      if (peer == coord) continue;
      std::string peer_name = NodeName(peer);
      if (record.participants.count(peer_name)) continue;
      if (c.tm(coord_name).SendWork(record.id, peer_name).ok()) {
        record.participants.insert(peer_name);
      }
    }
    c.RunFor(static_cast<sim::Time>(
        rng.UniformRange(100, 1000) * static_cast<uint64_t>(sim::kMillisecond)));
    if (rng.Bernoulli(0.25)) chaos();
    if (!c.tm(coord_name).IsUp()) {
      // Coordinator died before initiating commit: the work just vanishes
      // (active state is volatile); nothing to track.
      continue;
    }
    record.commit = c.StartCommit(coord_name, record.id);
    txns.push_back(std::move(record));
    c.RunFor(static_cast<sim::Time>(
        rng.UniformRange(200, 2000) * static_cast<uint64_t>(sim::kMillisecond)));
    if (rng.Bernoulli(0.2)) chaos();
  }

  // Heal the world and let recovery converge.
  for (int i = 0; i < kNodes; ++i)
    for (int j = i + 1; j < kNodes; ++j)
      c.network().SetLinkDown(NodeName(i), NodeName(j), false);
  c.RunFor(5 * 60 * sim::kSecond);
  for (int i = 0; i < kNodes; ++i)
    if (!c.tm(NodeName(i)).IsUp()) c.node(NodeName(i)).Restart();
  c.RunFor(20 * 60 * sim::kSecond);

  // The contract.
  for (const TxnRecord& record : txns) {
    harness::TxnAudit audit = c.Audit(record.id);
    EXPECT_TRUE(audit.consistent) << "txn " << record.id << " diverged";
    EXPECT_FALSE(audit.damage_ground_truth) << "txn " << record.id;
    EXPECT_FALSE(audit.any_heuristic) << "txn " << record.id;
    EXPECT_EQ(c.tm(record.coordinator).InDoubtCount(), 0u);

    // All-or-nothing markers. A node's marker exists iff its local view
    // committed; cross-node agreement is what matters.
    const std::string key = "t" + std::to_string(record.id);
    int with_marker = 0;
    int participants_with_state = 0;
    for (const std::string& node : record.participants) {
      Outcome o = c.tm(node).View(record.id).outcome;
      if (o == Outcome::kUnknown || o == Outcome::kActive) continue;
      // A read-only view means the node's work was lost before prepare
      // (e.g. its APP_DATA dropped in a partition, or a crash wiped its
      // unprepared updates): it correctly guaranteed nothing, so no
      // marker is expected of it.
      if (o == Outcome::kReadOnly) continue;
      ++participants_with_state;
      if (c.node(node).rm().Peek(key).ok()) ++with_marker;
    }
    if (participants_with_state > 0) {
      EXPECT_TRUE(with_marker == 0 || with_marker == participants_with_state)
          << "txn " << record.id << ": " << with_marker << "/"
          << participants_with_state << " markers present";
    }
  }
}

std::string CaseName(
    const ::testing::TestParamInfo<std::tuple<ProtocolKind, uint64_t>>& info) {
  auto [protocol, seed] = info.param;
  std::string name;
  switch (protocol) {
    case ProtocolKind::kBasic2PC: name = "Basic"; break;
    case ProtocolKind::kPresumedAbort: name = "PA"; break;
    case ProtocolKind::kPresumedNothing: name = "PN"; break;
    case ProtocolKind::kPresumedCommit: name = "PC"; break;
    case ProtocolKind::kPaxosCommit: name = "Paxos"; break;
    case ProtocolKind::kOnePhase: name = "OnePhase"; break;
    case ProtocolKind::kOnePhaseLogless: name = "OnePhaseLogless"; break;
  }
  return name + "_seed" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Chaos, RandomWorkloadTest,
    ::testing::Combine(::testing::Values(ProtocolKind::kPresumedAbort,
                                         ProtocolKind::kPresumedNothing,
                                         ProtocolKind::kPresumedCommit),
                       ::testing::Values<uint64_t>(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)),
    CaseName);

}  // namespace
}  // namespace tpc
