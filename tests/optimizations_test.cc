// Per-optimization behavior and cost accounting (Table 2 columns), one
// optimization at a time, in the two-node configuration the paper uses.

#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace tpc {
namespace {

using harness::Cluster;
using harness::NodeOptions;
using tm::Outcome;
using tm::ProtocolKind;

NodeOptions PaOptions() {
  NodeOptions options;
  options.tm.protocol = ProtocolKind::kPresumedAbort;
  return options;
}

void SubWritesOnData(Cluster& c, const std::string& node) {
  c.tm(node).SetAppDataHandler(
      [&c, node](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm(node).Write(txn, 0, node + "_key", "v",
                         [](Status st) { ASSERT_TRUE(st.ok()); });
      });
}

// --- Read only --------------------------------------------------------------

TEST(ReadOnlyOptTest, ReadOnlySubordinateSkipsPhaseTwoAndLogs) {
  Cluster c;
  c.AddNode("coord", PaOptions());
  c.AddNode("sub", PaOptions());
  c.Connect("coord", "sub");
  // Subordinate only reads.
  c.tm("sub").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm("sub").Read(txn, 0, "nonexistent", [](Result<std::string> r) {
          EXPECT_TRUE(r.status().IsNotFound());
        });
      });

  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.Drain();
  auto commit = c.CommitAndWait("coord", txn);
  c.Drain();

  ASSERT_TRUE(commit.completed);
  EXPECT_EQ(commit.result.outcome, Outcome::kCommitted);
  // Subordinate: 1 flow (the RO vote), 0 logs.
  tm::TxnCost sub = c.tm("sub").CostOf(txn);
  EXPECT_EQ(sub.flows_sent, 1u);
  EXPECT_EQ(sub.tm_log_writes, 0u);
  // Coordinator still logs commit (it updated).
  tm::TxnCost coord = c.tm("coord").CostOf(txn);
  EXPECT_EQ(coord.flows_sent, 1u);  // Prepare only; no Commit to the RO sub
  EXPECT_EQ(coord.tm_log_writes, 2u);
  EXPECT_EQ(coord.tm_log_forced, 1u);
}

TEST(ReadOnlyOptTest, FullyReadOnlyTransactionLogsNothingUnderPa) {
  Cluster c;
  c.AddNode("coord", PaOptions());
  c.AddNode("sub", PaOptions());
  c.Connect("coord", "sub");
  // Nobody updates anything.
  uint64_t txn = c.tm("coord").Begin();
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.Drain();
  auto commit = c.CommitAndWait("coord", txn);
  c.Drain();

  ASSERT_TRUE(commit.completed);
  EXPECT_EQ(commit.result.outcome, Outcome::kCommitted);
  // Table 2 "PA, Read-Only case": 1 flow each way, zero log records.
  EXPECT_EQ(c.tm("coord").CostOf(txn).flows_sent, 1u);
  EXPECT_EQ(c.tm("sub").CostOf(txn).flows_sent, 1u);
  EXPECT_EQ(c.tm("coord").CostOf(txn).tm_log_writes, 0u);
  EXPECT_EQ(c.tm("sub").CostOf(txn).tm_log_writes, 0u);
}

TEST(ReadOnlyOptTest, DisabledReadOnlyOptTreatsIdleSubAsYesVoter) {
  Cluster c;
  NodeOptions options = PaOptions();
  options.tm.read_only_opt = false;
  c.AddNode("coord", options);
  c.AddNode("sub", options);
  c.Connect("coord", "sub");

  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.Drain();
  auto commit = c.CommitAndWait("coord", txn);
  c.Drain();

  ASSERT_TRUE(commit.completed);
  // Without the optimization the idle subordinate does full 2PC freight.
  tm::TxnCost sub = c.tm("sub").CostOf(txn);
  EXPECT_EQ(sub.flows_sent, 2u);      // vote + ack
  EXPECT_EQ(sub.tm_log_writes, 3u);   // prepared, committed, end
  EXPECT_EQ(sub.tm_log_forced, 2u);
}

// --- Last agent --------------------------------------------------------------

TEST(LastAgentOptTest, DelegatesDecisionAndSavesFlows) {
  Cluster c;
  NodeOptions options = PaOptions();
  options.tm.last_agent_opt = true;
  c.AddNode("coord", options);
  c.AddNode("sub", options);
  c.Connect("coord", "sub");
  SubWritesOnData(c, "sub");

  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.Drain();
  auto commit = c.CommitAndWait("coord", txn);
  c.Drain();

  ASSERT_TRUE(commit.completed);
  EXPECT_EQ(commit.result.outcome, Outcome::kCommitted);
  EXPECT_EQ(c.node("sub").rm().Peek("sub_key").value_or(""), "v");

  // Table 2 "PA & last agent": coordinator 1 flow (the YES vote),
  // logs (3, 2 forced); last agent 1 flow (Commit), logs (2, 1 forced).
  tm::TxnCost coord = c.tm("coord").CostOf(txn);
  tm::TxnCost sub = c.tm("sub").CostOf(txn);
  EXPECT_EQ(coord.flows_sent, 1u);
  EXPECT_EQ(coord.tm_log_writes, 3u);
  EXPECT_EQ(coord.tm_log_forced, 2u);
  EXPECT_EQ(sub.flows_sent, 1u);
  // The END record waits for the implied ack, so only `committed` so far.
  EXPECT_EQ(sub.tm_log_writes, 1u);
  EXPECT_EQ(sub.tm_log_forced, 1u);

  // The last agent holds its END until the implied ack (next data).
  EXPECT_TRUE(c.tm("sub").Knows(txn));
  uint64_t txn2 = c.tm("coord").Begin();
  ASSERT_TRUE(c.tm("coord").SendWork(txn2, "sub").ok());
  c.Drain();
  EXPECT_FALSE(c.tm("sub").Knows(txn));
  // Now the books are closed: Table 2's (2, 1 forced) for the last agent.
  sub = c.tm("sub").CostOf(txn);
  EXPECT_EQ(sub.tm_log_writes, 2u);
  EXPECT_EQ(sub.tm_log_forced, 1u);
  EXPECT_EQ(sub.flows_sent, 1u);  // the implied ack cost nothing
}

TEST(LastAgentOptTest, ReadOnlyInitiatorSkipsPreparedForce) {
  Cluster c;
  NodeOptions options = PaOptions();
  options.tm.last_agent_opt = true;
  c.AddNode("coord", options);
  c.AddNode("sub", options);
  c.Connect("coord", "sub");
  SubWritesOnData(c, "sub");

  uint64_t txn = c.tm("coord").Begin();  // coordinator does no updates
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.Drain();
  auto commit = c.CommitAndWait("coord", txn);
  c.Drain();

  ASSERT_TRUE(commit.completed);
  EXPECT_EQ(commit.result.outcome, Outcome::kCommitted);
  EXPECT_EQ(c.node("sub").rm().Peek("sub_key").value_or(""), "v");
  // The paper: "the initiator can vote read only to the last agent without
  // having to force-write a prepared log record."
  EXPECT_EQ(c.tm("coord").CostOf(txn).tm_log_writes, 0u);
  EXPECT_EQ(c.tm("coord").CostOf(txn).flows_sent, 1u);
}

TEST(LastAgentOptTest, LastAgentNoAbortsInitiator) {
  Cluster c;
  NodeOptions options = PaOptions();
  options.tm.last_agent_opt = true;
  c.AddNode("coord", options);
  c.AddNode("sub", options);
  c.Connect("coord", "sub");
  // Make the last agent unable to commit: it initiates its own commit for
  // the same transaction first (two initiators => abort reply).
  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.Drain();
  bool sub_done = false;
  c.tm("sub").Commit(txn, [&](tm::CommitResult result) {
    sub_done = true;
    EXPECT_EQ(result.outcome, Outcome::kAborted);
  });
  auto commit = c.CommitAndWait("coord", txn);
  c.Drain();
  ASSERT_TRUE(commit.completed);
  EXPECT_EQ(commit.result.outcome, Outcome::kAborted);
  EXPECT_TRUE(sub_done);
  EXPECT_TRUE(c.node("coord").rm().Peek("k").status().IsNotFound());
  EXPECT_TRUE(c.Audit(txn).consistent);
}

// --- Unsolicited vote ---------------------------------------------------------

TEST(UnsolicitedVoteTest, ServerVotesEarlyAndPrepareIsSkipped) {
  Cluster c;
  c.AddNode("coord", PaOptions());
  c.AddNode("sub", PaOptions());
  c.Connect("coord", "sub");
  c.tm("sub").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm("sub").Write(txn, 0, "sub_key", "v", [&c, txn](Status st) {
          ASSERT_TRUE(st.ok());
          // Server knows it is done: prepare and vote without being asked.
          c.tm("sub").UnsolicitedPrepare(txn);
        });
      });

  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  // RunFor (not Drain): the in-doubt unsolicited voter runs a recurring
  // inquiry timer until the decision arrives, so the queue never empties.
  c.RunFor(sim::kSecond);

  auto commit = c.CommitAndWait("coord", txn);
  c.Drain();
  ASSERT_TRUE(commit.completed);
  EXPECT_EQ(commit.result.outcome, Outcome::kCommitted);
  EXPECT_EQ(c.node("sub").rm().Peek("sub_key").value_or(""), "v");

  // Table 2 "PA & unsolicited vote": coordinator sends only the Commit
  // (1 flow); subordinate sends vote + ack (2 flows), normal logging.
  tm::TxnCost coord = c.tm("coord").CostOf(txn);
  tm::TxnCost sub = c.tm("sub").CostOf(txn);
  EXPECT_EQ(coord.flows_sent, 1u);
  EXPECT_EQ(coord.tm_log_writes, 2u);
  EXPECT_EQ(coord.tm_log_forced, 1u);
  EXPECT_EQ(sub.flows_sent, 2u);
  EXPECT_EQ(sub.tm_log_writes, 3u);
  EXPECT_EQ(sub.tm_log_forced, 2u);
}

// --- Leave out -----------------------------------------------------------------

TEST(LeaveOutTest, UntouchedSuspendedServerIsLeftOut) {
  Cluster c;
  NodeOptions coord_options = PaOptions();
  coord_options.tm.include_idle_sessions = true;
  coord_options.tm.leave_out_opt = true;
  NodeOptions server_options = PaOptions();
  server_options.tm.ok_to_leave_out = true;
  server_options.rm_options.ok_to_leave_out = true;
  c.AddNode("coord", coord_options);
  c.AddNode("server", server_options);
  c.Connect("coord", "server");
  SubWritesOnData(c, "server");

  // Transaction 1 touches the server; it votes OK_TO_LEAVE_OUT.
  uint64_t txn1 = c.tm("coord").Begin();
  c.tm("coord").Write(txn1, 0, "a", "1", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn1, "server").ok());
  c.Drain();
  auto commit1 = c.CommitAndWait("coord", txn1);
  c.Drain();
  ASSERT_TRUE(commit1.completed);
  EXPECT_EQ(commit1.result.outcome, Outcome::kCommitted);

  // Transaction 2 does not touch the server: it is left out entirely.
  uint64_t txn2 = c.tm("coord").Begin();
  c.tm("coord").Write(txn2, 0, "a", "2", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  auto commit2 = c.CommitAndWait("coord", txn2);
  c.Drain();
  ASSERT_TRUE(commit2.completed);
  EXPECT_EQ(commit2.result.outcome, Outcome::kCommitted);
  EXPECT_EQ(c.tm("server").CostOf(txn2).flows_sent, 0u);
  EXPECT_EQ(c.tm("server").CostOf(txn2).tm_log_writes, 0u);
  EXPECT_EQ(c.tm("coord").CostOf(txn2).flows_sent, 0u);

  // Transaction 3 touches it again: it rejoins.
  uint64_t txn3 = c.tm("coord").Begin();
  ASSERT_TRUE(c.tm("coord").SendWork(txn3, "server").ok());
  c.Drain();
  auto commit3 = c.CommitAndWait("coord", txn3);
  c.Drain();
  ASSERT_TRUE(commit3.completed);
  EXPECT_GT(c.tm("server").CostOf(txn3).flows_sent, 0u);
}

TEST(LeaveOutTest, WithoutOptimizationIdleSessionDoesFullFreight) {
  Cluster c;
  NodeOptions coord_options = PaOptions();
  coord_options.tm.include_idle_sessions = true;
  coord_options.tm.leave_out_opt = false;
  coord_options.tm.read_only_opt = false;  // basic behavior
  NodeOptions server_options = PaOptions();
  server_options.tm.read_only_opt = false;
  c.AddNode("coord", coord_options);
  c.AddNode("server", server_options);
  c.Connect("coord", "server");

  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "a", "1", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  auto commit = c.CommitAndWait("coord", txn);
  c.Drain();
  ASSERT_TRUE(commit.completed);
  // The untouched server is still a full participant (4 flows total on the
  // session, 3 log writes at the server).
  EXPECT_EQ(c.tm("server").CostOf(txn).flows_sent, 2u);
  EXPECT_EQ(c.tm("server").CostOf(txn).tm_log_writes, 3u);
}

// --- Vote reliable -------------------------------------------------------------

TEST(VoteReliableTest, ReliableSubordinateElidesAck) {
  Cluster c;
  NodeOptions options = PaOptions();
  options.tm.vote_reliable_opt = true;
  options.rm_options.reliable = true;
  c.AddNode("coord", options);
  c.AddNode("sub", options);
  c.Connect("coord", "sub");
  SubWritesOnData(c, "sub");

  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.Drain();
  auto commit = c.CommitAndWait("coord", txn);
  c.Drain();

  ASSERT_TRUE(commit.completed);
  EXPECT_EQ(commit.result.outcome, Outcome::kCommitted);
  // Subordinate sends only its vote; the ack is implied.
  EXPECT_EQ(c.tm("sub").CostOf(txn).flows_sent, 1u);
  EXPECT_EQ(c.tm("sub").CostOf(txn).tm_log_writes, 3u);
  // Coordinator completes without waiting and both sides forget.
  EXPECT_FALSE(c.tm("coord").Knows(txn));
  EXPECT_FALSE(c.tm("sub").Knows(txn));
}

TEST(VoteReliableTest, UnreliableRmForcesExplicitAck) {
  Cluster c;
  NodeOptions options = PaOptions();
  options.tm.vote_reliable_opt = true;
  options.rm_options.reliable = false;  // not reliable
  c.AddNode("coord", options);
  c.AddNode("sub", options);
  c.Connect("coord", "sub");
  SubWritesOnData(c, "sub");

  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.Drain();
  auto commit = c.CommitAndWait("coord", txn);
  c.Drain();
  ASSERT_TRUE(commit.completed);
  EXPECT_EQ(c.tm("sub").CostOf(txn).flows_sent, 2u);  // vote + explicit ack
}

// --- Long locks -----------------------------------------------------------------

TEST(LongLocksTest, AckPiggybacksOnNextTransactionData) {
  Cluster c;
  c.AddNode("coord", PaOptions());
  c.AddNode("sub", PaOptions());
  // The coordinator requests long locks on this session.
  c.Connect("coord", "sub", {.long_locks = true}, {});
  SubWritesOnData(c, "sub");

  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.Drain();

  bool committed = false;
  c.tm("coord").Commit(txn, [&](tm::CommitResult result) {
    committed = true;
    EXPECT_EQ(result.outcome, Outcome::kCommitted);
  });
  c.Drain();
  // The subordinate has committed but its ack is buffered: the coordinator
  // is still waiting (late acknowledgment).
  EXPECT_FALSE(committed);
  EXPECT_EQ(c.tm("sub").CostOf(txn).flows_sent, 1u);  // just the vote

  // The subordinate begins the next transaction; its first data message
  // carries the buffered ack.
  uint64_t txn2 = c.tm("sub").Begin();
  ASSERT_TRUE(c.tm("sub").SendWork(txn2, "coord").ok());
  c.Drain();
  EXPECT_TRUE(committed);
  EXPECT_EQ(c.tm("sub").CostOf(txn).flows_sent, 1u);  // ack rode for free
}

// --- Shared log ------------------------------------------------------------------

TEST(SharedLogTest, RmSharingTmLogSkipsItsForces) {
  Cluster c;
  NodeOptions options = PaOptions();
  options.rm_options.shared_log_with_tm = true;
  c.AddNode("coord", options);
  c.AddNode("sub", options);
  c.Connect("coord", "sub");
  SubWritesOnData(c, "sub");

  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.Drain();
  auto commit = c.CommitAndWait("coord", txn);
  c.Drain();
  ASSERT_TRUE(commit.completed);

  // The RM wrote its records but forced none of them.
  wal::LogWriteStats rm_stats =
      c.node("sub").log().StatsForOwner("sub.rm0");
  EXPECT_GE(rm_stats.writes, 3u);  // update, prepared, committed
  EXPECT_EQ(rm_stats.forced_writes, 0u);
  // TM-level forces still happened and made everything durable.
  wal::LogWriteStats tm_stats =
      c.node("sub").log().StatsForOwner("sub.tm");
  EXPECT_EQ(tm_stats.forced_writes, 2u);
}

TEST(SharedLogTest, MemberSharingHostLogDowngradesTmForces) {
  // Shared-log member node: its TM records go to the coordinator's log and
  // are never forced (the host's forces cover them) — the Table 3
  // shared-logs configuration.
  Cluster c;
  c.AddNode("coord", PaOptions());
  NodeOptions member_options = PaOptions();
  member_options.shared_log_host = "coord";
  c.AddNode("member", member_options);
  c.Connect("coord", "member");
  SubWritesOnData(c, "member");

  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "member").ok());
  c.Drain();
  auto commit = c.CommitAndWait("coord", txn);
  c.Drain();
  ASSERT_TRUE(commit.completed);
  EXPECT_EQ(commit.result.outcome, Outcome::kCommitted);

  tm::TxnCost member = c.tm("member").CostOf(txn);
  EXPECT_EQ(member.tm_log_writes, 3u);
  EXPECT_EQ(member.tm_log_forced, 0u);  // downgraded; host forces cover
  EXPECT_EQ(member.flows_sent, 2u);     // flows unchanged
}

// --- Early vs late acknowledgment --------------------------------------------------

TEST(AckTimingTest, EarlyAckCompletesRootBeforeSubtreeAcks) {
  // Chain: root -> mid -> leaf. With early acks at the cascaded
  // coordinator, the root completes as soon as mid's commit is durable.
  for (tm::AckTiming timing : {tm::AckTiming::kLate, tm::AckTiming::kEarly}) {
    Cluster c;
    NodeOptions options = PaOptions();
    options.tm.ack_timing = timing;
    c.AddNode("root", options);
    c.AddNode("mid", options);
    c.AddNode("leaf", options);
    c.Connect("root", "mid");
    c.Connect("mid", "leaf");
    // Slow link between mid and leaf so the difference is visible.
    c.network().SetLinkLatency("mid", "leaf", 100 * sim::kMillisecond);

    c.tm("mid").SetAppDataHandler(
        [&c](uint64_t txn, const net::NodeId& from, std::string_view) {
          if (from != "root") return;
          c.tm("mid").Write(txn, 0, "m", "v",
                            [](Status st) { ASSERT_TRUE(st.ok()); });
          ASSERT_TRUE(c.tm("mid").SendWork(txn, "leaf").ok());
        });
    c.tm("leaf").SetAppDataHandler(
        [&c](uint64_t txn, const net::NodeId&, std::string_view) {
          c.tm("leaf").Write(txn, 0, "l", "v",
                             [](Status st) { ASSERT_TRUE(st.ok()); });
        });

    uint64_t txn = c.tm("root").Begin();
    c.tm("root").Write(txn, 0, "r", "v", [](Status st) {
      ASSERT_TRUE(st.ok());
    });
    ASSERT_TRUE(c.tm("root").SendWork(txn, "mid").ok());
    c.Drain();
    auto commit = c.CommitAndWait("root", txn);
    c.Drain();
    ASSERT_TRUE(commit.completed);
    EXPECT_EQ(commit.result.outcome, Outcome::kCommitted);
    EXPECT_TRUE(c.Audit(txn).consistent);
    if (timing == tm::AckTiming::kEarly) {
      // Root completed without waiting for the leaf's ack round trip:
      // strictly less latency than the late-ack run would need.
      EXPECT_LT(commit.latency, 300 * sim::kMillisecond);
    } else {
      EXPECT_GE(commit.latency, 400 * sim::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace tpc
