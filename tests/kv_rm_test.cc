// KV resource manager: transactional reads/writes, undo/redo, votes,
// crash recovery, in-doubt resolution.

#include <gtest/gtest.h>

#include "rm/kv_resource_manager.h"
#include "sim/sim_context.h"
#include "wal/log_manager.h"

namespace tpc::rm {
namespace {

class KvRmTest : public ::testing::Test {
 protected:
  KvRmTest() : log_(&ctx_, "node"), rm_(&ctx_, "node.rm0", &log_) {}

  void Write(uint64_t txn, const std::string& key, const std::string& value) {
    bool done = false;
    rm_.Write(txn, key, value, [&](Status st) {
      ASSERT_TRUE(st.ok());
      done = true;
    });
    ctx_.events().Run();
    ASSERT_TRUE(done);
  }

  VoteInfo Prepare(uint64_t txn) {
    VoteInfo out;
    bool done = false;
    rm_.Prepare(txn, [&](VoteInfo info) {
      out = info;
      done = true;
    });
    ctx_.events().Run();
    EXPECT_TRUE(done);
    return out;
  }

  void Commit(uint64_t txn) {
    bool done = false;
    rm_.Commit(txn, [&](Status st) {
      ASSERT_TRUE(st.ok());
      done = true;
    });
    ctx_.events().Run();
    ASSERT_TRUE(done);
  }

  void Abort(uint64_t txn) {
    bool done = false;
    rm_.Abort(txn, [&](Status st) {
      ASSERT_TRUE(st.ok());
      done = true;
    });
    ctx_.events().Run();
    ASSERT_TRUE(done);
  }

  sim::SimContext ctx_;
  wal::LogManager log_;
  KVResourceManager rm_;
};

TEST_F(KvRmTest, WriteCommitPersists) {
  Write(1, "k", "v1");
  EXPECT_EQ(Prepare(1).vote, Vote::kYes);
  Commit(1);
  EXPECT_EQ(rm_.Peek("k").value_or(""), "v1");
}

TEST_F(KvRmTest, AbortUndoesInReverseOrder) {
  Write(1, "k", "original");
  EXPECT_EQ(Prepare(1).vote, Vote::kYes);
  Commit(1);
  Write(2, "k", "second");
  Write(2, "k", "third");
  Abort(2);
  EXPECT_EQ(rm_.Peek("k").value_or(""), "original");
}

TEST_F(KvRmTest, AbortOfInsertRemovesKey) {
  Write(1, "fresh", "v");
  Abort(1);
  EXPECT_TRUE(rm_.Peek("fresh").status().IsNotFound());
}

TEST_F(KvRmTest, ReadOnlyTxnVotesReadOnly) {
  bool read_done = false;
  rm_.Read(1, "absent", [&](Result<std::string> r) {
    EXPECT_TRUE(r.status().IsNotFound());
    read_done = true;
  });
  ctx_.events().Run();
  ASSERT_TRUE(read_done);
  EXPECT_EQ(Prepare(1).vote, Vote::kReadOnly);
  EXPECT_FALSE(rm_.HasUpdates(1));
}

TEST_F(KvRmTest, VoteCarriesConfiguredAttributes) {
  KVOptions options;
  options.reliable = true;
  options.ok_to_leave_out = true;
  KVResourceManager reliable_rm(&ctx_, "node.rm1", &log_, options);
  bool done = false;
  reliable_rm.Write(1, "k", "v", [&](Status st) {
    ASSERT_TRUE(st.ok());
    done = true;
  });
  ctx_.events().Run();
  ASSERT_TRUE(done);
  VoteInfo info;
  reliable_rm.Prepare(1, [&](VoteInfo v) { info = v; });
  ctx_.events().Run();
  EXPECT_EQ(info.vote, Vote::kYes);
  EXPECT_TRUE(info.reliable);
  EXPECT_TRUE(info.ok_to_leave_out);
}

TEST_F(KvRmTest, ReadsSeeOwnUncommittedWrites) {
  Write(1, "k", "mine");
  std::string seen;
  rm_.Read(1, "k", [&](Result<std::string> r) {
    ASSERT_TRUE(r.ok());
    seen = *r;
  });
  ctx_.events().Run();
  EXPECT_EQ(seen, "mine");
}

TEST_F(KvRmTest, WriteConflictBlocksUntilRelease) {
  Write(1, "k", "v1");
  bool granted = false;
  rm_.Write(2, "k", "v2", [&](Status st) { granted = st.ok(); });
  ctx_.events().RunUntil(ctx_.now() + 10 * sim::kMillisecond);
  EXPECT_FALSE(granted);
  // Prepare + commit without draining the queue past the waiter's
  // deadlock timeout.
  rm_.Prepare(1, [this](VoteInfo info) {
    EXPECT_EQ(info.vote, Vote::kYes);
    rm_.Commit(1, [](Status st) { ASSERT_TRUE(st.ok()); });
  });
  ctx_.events().RunUntil(ctx_.now() + sim::kSecond);
  EXPECT_TRUE(granted);
}

TEST_F(KvRmTest, CommittedStateRebuiltFromLogAfterCrash) {
  Write(1, "a", "1");
  Write(1, "b", "2");
  Prepare(1);
  Commit(1);
  rm_.Crash();
  EXPECT_TRUE(rm_.Peek("a").status().IsNotFound());  // volatile image gone
  std::vector<uint64_t> in_doubt = rm_.Recover(log_.Recover());
  EXPECT_TRUE(in_doubt.empty());
  EXPECT_EQ(rm_.Peek("a").value_or(""), "1");
  EXPECT_EQ(rm_.Peek("b").value_or(""), "2");
}

TEST_F(KvRmTest, PreparedTxnRecoversInDoubtAndResolvesCommit) {
  Write(1, "k", "v");
  Prepare(1);
  rm_.Crash();
  std::vector<uint64_t> in_doubt = rm_.Recover(log_.Recover());
  ASSERT_EQ(in_doubt, (std::vector<uint64_t>{1}));
  EXPECT_TRUE(rm_.InDoubt(1));
  // The in-doubt data is invisible and its locks are held.
  EXPECT_TRUE(rm_.Peek("k").status().IsNotFound());
  bool blocked_granted = false;
  rm_.Write(2, "k", "other", [&](Status st) { blocked_granted = st.ok(); });
  ctx_.events().RunUntil(sim::kSecond);
  EXPECT_FALSE(blocked_granted);

  rm_.ResolveRecovered(1, /*commit=*/true);
  ctx_.events().Run();
  EXPECT_EQ(rm_.Peek("k").value_or(""), "other");  // waiter wrote after us
  EXPECT_FALSE(rm_.InDoubt(1));
}

TEST_F(KvRmTest, PreparedTxnResolvesAbortWithoutEffects) {
  Write(1, "k", "v");
  Prepare(1);
  rm_.Crash();
  std::vector<uint64_t> in_doubt = rm_.Recover(log_.Recover());
  ASSERT_EQ(in_doubt.size(), 1u);
  rm_.ResolveRecovered(1, /*commit=*/false);
  ctx_.events().Run();
  EXPECT_TRUE(rm_.Peek("k").status().IsNotFound());
}

TEST_F(KvRmTest, UnpreparedTxnLostOnCrash) {
  Write(1, "k", "v");  // update record non-forced, nothing durable
  rm_.Crash();
  log_.Crash();
  EXPECT_TRUE(rm_.Recover(log_.Recover()).empty());
  EXPECT_TRUE(rm_.Peek("k").status().IsNotFound());
}

TEST_F(KvRmTest, CommitViaRecoveredFlagAppliesUpdates) {
  // TM-style resolution: Commit() on a recovered in-doubt transaction must
  // apply the redo images.
  Write(1, "k", "v");
  Prepare(1);
  rm_.Crash();
  ASSERT_EQ(rm_.Recover(log_.Recover()).size(), 1u);
  Commit(1);
  EXPECT_EQ(rm_.Peek("k").value_or(""), "v");
}

TEST_F(KvRmTest, EndReadOnlyReleasesLocks) {
  bool read_done = false;
  rm_.Read(1, "k", [&](Result<std::string>) { read_done = true; });
  ctx_.events().Run();
  ASSERT_TRUE(read_done);
  rm_.EndReadOnly(1);
  bool granted = false;
  rm_.Write(2, "k", "v", [&](Status st) { granted = st.ok(); });
  ctx_.events().Run();
  EXPECT_TRUE(granted);
}

TEST_F(KvRmTest, SharedLogOptionSkipsForces) {
  KVOptions options;
  options.shared_log_with_tm = true;
  KVResourceManager shared_rm(&ctx_, "node.rm1", &log_, options);
  bool done = false;
  shared_rm.Write(1, "k", "v", [&](Status st) {
    ASSERT_TRUE(st.ok());
    done = true;
  });
  ctx_.events().Run();
  ASSERT_TRUE(done);
  shared_rm.Prepare(1, [](VoteInfo) {});
  bool committed = false;
  shared_rm.Commit(1, [&](Status) { committed = true; });
  ctx_.events().Run();
  EXPECT_TRUE(committed);
  EXPECT_EQ(log_.StatsForOwner("node.rm1").forced_writes, 0u);
  EXPECT_GE(log_.StatsForOwner("node.rm1").writes, 3u);
}

}  // namespace
}  // namespace tpc::rm
