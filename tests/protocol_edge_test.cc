// Deeper protocol edge cases: heuristics at intermediates, early-ack
// interplay, long locks across failures, leave-out under PN's vote
// handshake, unsolicited NO votes, shared-log crash soundness, group
// commit under crashes, and last-agent recovery.

#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace tpc {
namespace {

using harness::Cluster;
using harness::NodeOptions;
using tm::HeuristicPolicy;
using tm::Outcome;
using tm::ProtocolKind;

NodeOptions Options(ProtocolKind protocol) {
  NodeOptions options;
  options.tm.protocol = protocol;
  return options;
}

void Writer(Cluster& c, const std::string& node) {
  c.tm(node).SetAppDataHandler(
      [&c, node](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm(node).Write(txn, 0, node + "_key", "v",
                         [](Status st) { ASSERT_TRUE(st.ok()); });
      });
}

// --- Heuristic at a cascaded coordinator -------------------------------------

TEST(IntermediateHeuristicTest, HeuristicAtMidPropagatesToItsSubtree) {
  // root -> mid -> leaf. Root crashes after commit-force; mid (in doubt)
  // heuristically commits, which must also release the leaf; since the
  // real outcome was commit, no damage results.
  Cluster c;
  NodeOptions mid_options = Options(ProtocolKind::kPresumedNothing);
  mid_options.tm.heuristic_policy = HeuristicPolicy::kCommit;
  mid_options.tm.heuristic_delay = 20 * sim::kSecond;
  c.AddNode("root", Options(ProtocolKind::kPresumedNothing));
  c.AddNode("mid", mid_options);
  c.AddNode("leaf", Options(ProtocolKind::kPresumedNothing));
  c.Connect("root", "mid");
  c.Connect("mid", "leaf");
  c.tm("mid").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId& from, std::string_view) {
        if (from != "root") return;
        c.tm("mid").Write(txn, 0, "m", "v",
                          [](Status st) { ASSERT_TRUE(st.ok()); });
        ASSERT_TRUE(c.tm("mid").SendWork(txn, "leaf").ok());
      });
  Writer(c, "leaf");

  uint64_t txn = c.tm("root").Begin();
  c.tm("root").Write(txn, 0, "r", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("root").SendWork(txn, "mid").ok());
  c.RunFor(sim::kSecond);

  c.ctx().failures().ArmCrash("root", "after_commit_force");
  auto commit = c.StartCommit("root", txn);
  c.RunFor(40 * sim::kSecond);  // mid's heuristic commit fires at +20s
  // The leaf received mid's (heuristic) commit and is done; its data is in.
  EXPECT_EQ(c.tm("leaf").View(txn).outcome, Outcome::kCommitted);
  EXPECT_EQ(c.node("leaf").rm().Peek("leaf_key").value_or(""), "v");
  EXPECT_EQ(c.tm("mid").View(txn).outcome, Outcome::kHeuristicCommitted);

  // Root recovers and re-drives its commit; mid's heuristic matches.
  c.node("root").Restart();
  c.RunFor(120 * sim::kSecond);
  harness::TxnAudit audit = c.Audit(txn);
  EXPECT_TRUE(audit.consistent);
  EXPECT_FALSE(audit.damage_ground_truth);
  EXPECT_TRUE(audit.any_heuristic);
}

// --- Early acknowledgment with late damage --------------------------------------

TEST(EarlyAckTest, EarlyAckTradesConfidenceForSpeed) {
  // With early acks, the root completes before the leaf processes the
  // commit — exactly the paper's tradeoff: "there is a tradeoff between
  // wait time and confidence in the outcome."
  Cluster c;
  NodeOptions options = Options(ProtocolKind::kPresumedAbort);
  options.tm.ack_timing = tm::AckTiming::kEarly;
  c.AddNode("root", options);
  c.AddNode("mid", options);
  c.AddNode("leaf", options);
  c.Connect("root", "mid");
  c.Connect("mid", "leaf");
  c.network().SetLinkLatency("mid", "leaf", 200 * sim::kMillisecond);
  c.tm("mid").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId& from, std::string_view) {
        if (from != "root") return;
        c.tm("mid").Write(txn, 0, "m", "v",
                          [](Status st) { ASSERT_TRUE(st.ok()); });
        ASSERT_TRUE(c.tm("mid").SendWork(txn, "leaf").ok());
      });
  Writer(c, "leaf");
  uint64_t txn = c.tm("root").Begin();
  c.tm("root").Write(txn, 0, "r", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("root").SendWork(txn, "mid").ok());
  c.RunFor(sim::kSecond);
  auto commit = c.StartCommit("root", txn);
  c.RunFor(450 * sim::kMillisecond);
  // Root already completed...
  EXPECT_TRUE(commit->completed);
  // ...while the leaf is still in doubt (commit in flight on the slow link).
  EXPECT_EQ(c.tm("leaf").InDoubtCount(), 1u);
  c.RunFor(10 * sim::kSecond);
  EXPECT_TRUE(c.Audit(txn).consistent);
}

// --- Long locks across a subordinate crash ------------------------------------

TEST(LongLocksFailureTest, CrashedSubordinateStillResolvesAfterRestart) {
  Cluster c;
  c.AddNode("coord", Options(ProtocolKind::kPresumedAbort));
  c.AddNode("sub", Options(ProtocolKind::kPresumedAbort));
  c.Connect("coord", "sub", {.long_locks = true}, {});
  Writer(c, "sub");
  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.RunFor(sim::kSecond);
  auto commit = c.StartCommit("coord", txn);
  c.RunFor(sim::kSecond);
  EXPECT_FALSE(commit->completed);  // ack buffered under long locks

  // The subordinate crashes with the buffered (volatile!) ack and restarts.
  c.ctx().failures().CrashNow("sub");
  c.node("sub").Restart();
  c.RunFor(120 * sim::kSecond);
  // Recovery: the sub found its committed record without END, resumed the
  // decision phase, and (with the session's long-locks context gone) sent
  // the ack; the coordinator completes.
  EXPECT_TRUE(commit->completed);
  EXPECT_EQ(commit->result.outcome, Outcome::kCommitted);
  EXPECT_EQ(c.node("sub").rm().Peek("sub_key").value_or(""), "v");
  EXPECT_TRUE(c.Audit(txn).consistent);
}

// --- PN leave-out handshake across transactions ----------------------------------

TEST(PnLeaveOutTest, RequiresPriorVoteBeforeExclusion) {
  // Under PN an untouched partner may be left out only if it voted
  // OK_TO_LEAVE_OUT in a previous commit (it might otherwise have started
  // independent work). The first idle transaction must include it; after
  // the handshake, it is excluded.
  Cluster c;
  NodeOptions coord_options = Options(ProtocolKind::kPresumedNothing);
  coord_options.tm.include_idle_sessions = true;
  coord_options.tm.leave_out_opt = true;
  NodeOptions server_options = Options(ProtocolKind::kPresumedNothing);
  server_options.tm.ok_to_leave_out = true;
  server_options.rm_options.ok_to_leave_out = true;
  c.AddNode("coord", coord_options);
  c.AddNode("server", server_options);
  c.Connect("coord", "server");
  Writer(c, "server");

  // Transaction 1: server untouched, but no prior vote: it participates.
  uint64_t txn1 = c.tm("coord").Begin();
  c.tm("coord").Write(txn1, 0, "a", "1", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  auto commit1 = c.CommitAndWait("coord", txn1);
  c.RunFor(sim::kSecond);
  ASSERT_TRUE(commit1.completed);
  EXPECT_GT(c.tm("server").CostOf(txn1).flows_sent, 0u);

  // The server voted OK_TO_LEAVE_OUT (read-only, idle) in txn1; the next
  // idle transaction leaves it out entirely.
  uint64_t txn2 = c.tm("coord").Begin();
  c.tm("coord").Write(txn2, 0, "a", "2", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  auto commit2 = c.CommitAndWait("coord", txn2);
  c.RunFor(sim::kSecond);
  ASSERT_TRUE(commit2.completed);
  EXPECT_EQ(c.tm("server").CostOf(txn2).flows_sent, 0u);
}

// --- Unsolicited NO vote ------------------------------------------------------------

TEST(UnsolicitedVoteTest, UnsolicitedNoAbortsTheTransaction) {
  Cluster c;
  c.AddNode("coord", Options(ProtocolKind::kPresumedAbort));
  c.AddNode("sub", Options(ProtocolKind::kPresumedAbort));
  c.Connect("coord", "sub");
  c.tm("sub").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm("sub").Write(txn, 0, "s", "v", [&c, txn](Status st) {
          ASSERT_TRUE(st.ok());
          // Poison the prepare, then vote early: the unsolicited vote is NO.
          c.node("sub").rm().FailNextPrepare();
          c.tm("sub").UnsolicitedPrepare(txn);
        });
      });
  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.RunFor(sim::kSecond);
  auto commit = c.CommitAndWait("coord", txn);
  c.RunFor(sim::kSecond);
  ASSERT_TRUE(commit.completed);
  EXPECT_EQ(commit.result.outcome, Outcome::kAborted);
  EXPECT_TRUE(c.node("coord").rm().Peek("k").status().IsNotFound());
  EXPECT_TRUE(c.node("sub").rm().Peek("s").status().IsNotFound());
  EXPECT_TRUE(c.Audit(txn).consistent);
}

// --- Shared log soundness across crashes ---------------------------------------------

TEST(SharedLogCrashTest, UnforcedRmRecordsRecoverViaTmForceOrdering) {
  // DESIGN.md's soundness argument for the shared-log optimization: the
  // RM's non-forced prepared/committed records are covered by the TM's
  // later forces. Crash after the TM's commit force and verify the RM's
  // data survives even though the RM forced nothing itself.
  Cluster c;
  NodeOptions options = Options(ProtocolKind::kPresumedAbort);
  options.rm_options.shared_log_with_tm = true;
  c.AddNode("coord", options);
  c.AddNode("sub", options);
  c.Connect("coord", "sub");
  Writer(c, "sub");
  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.RunFor(sim::kSecond);
  auto commit = c.CommitAndWait("coord", txn);
  ASSERT_TRUE(commit.completed);
  ASSERT_EQ(commit.result.outcome, Outcome::kCommitted);
  c.RunFor(sim::kSecond);

  // Both machines lose everything volatile.
  c.ctx().failures().CrashNow("coord");
  c.ctx().failures().CrashNow("sub");
  c.node("coord").Restart();
  c.node("sub").Restart();
  c.RunFor(60 * sim::kSecond);
  EXPECT_EQ(c.node("coord").rm().Peek("k").value_or(""), "v");
  EXPECT_EQ(c.node("sub").rm().Peek("sub_key").value_or(""), "v");
  // The RM really forced nothing.
  EXPECT_EQ(c.node("sub").log().StatsForOwner("sub.rm0").forced_writes, 0u);
}

// --- Group commit under crash ---------------------------------------------------------

TEST(GroupCommitCrashTest, UngroupedTailLostButConsistent) {
  // Transactions whose group was still building when the node crashed are
  // simply not durable: they resolve aborted, never half-done.
  Cluster c;
  NodeOptions options = Options(ProtocolKind::kPresumedAbort);
  options.group_commit.enabled = true;
  options.group_commit.group_size = 64;                  // never fills
  options.group_commit.group_timeout = 5 * sim::kSecond; // nor times out
  c.AddNode("coord", options);
  c.AddNode("sub", Options(ProtocolKind::kPresumedAbort));
  c.Connect("coord", "sub");
  Writer(c, "sub");
  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.RunFor(sim::kSecond);
  auto commit = c.StartCommit("coord", txn);
  c.RunFor(sim::kSecond);
  // The commit force sits in the group buffer: not durable, not sent.
  EXPECT_FALSE(commit->completed);
  c.ctx().failures().CrashNow("coord");
  c.node("coord").Restart();
  c.RunFor(120 * sim::kSecond);
  // No commit record survived; the sub's inquiry resolves abort.
  EXPECT_EQ(c.tm("sub").View(txn).outcome, Outcome::kAborted);
  EXPECT_TRUE(c.node("coord").rm().Peek("k").status().IsNotFound());
  EXPECT_TRUE(c.node("sub").rm().Peek("sub_key").status().IsNotFound());
  EXPECT_TRUE(c.Audit(txn).consistent);
}

// --- Last-agent recovery ------------------------------------------------------------

TEST(LastAgentRecoveryTest, InitiatorCrashAfterVoteResolvesViaInquiry) {
  // The initiator (which is in doubt after handing the decision away)
  // crashes; on restart its prepared record names the last agent as the
  // place to ask, and the inquiry resolves commit.
  Cluster c;
  NodeOptions options = Options(ProtocolKind::kPresumedAbort);
  options.tm.last_agent_opt = true;
  options.tm.inquiry_delay = 5 * sim::kSecond;
  c.AddNode("coord", options);
  c.AddNode("sub", options);
  c.Connect("coord", "sub", {.last_agent_candidate = true}, {});
  Writer(c, "sub");
  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.RunFor(sim::kSecond);

  // Crash the initiator right after its prepared force (its YES vote to
  // the last agent is never sent -> the last agent never decides; after
  // restart the inquiry finds the LA undecided, and the vote... is gone.
  // The LA's own vote-side state never formed, so the inquiry gets the
  // presumed-abort answer once the LA has no transaction).
  c.ctx().failures().ArmCrash("coord", "after_prepared_force");
  auto commit = c.StartCommit("coord", txn);
  c.RunFor(2 * sim::kSecond);
  EXPECT_FALSE(commit->completed);
  c.node("coord").Restart();
  c.RunFor(120 * sim::kSecond);
  // The initiator recovered in doubt, inquired at the decision owner, got
  // "no information => abort" (PA), and aborted; the sub (active, never
  // prepared) was told to abort too.
  EXPECT_EQ(c.tm("coord").View(txn).outcome, Outcome::kAborted);
  EXPECT_TRUE(c.node("coord").rm().Peek("k").status().IsNotFound());
  EXPECT_TRUE(c.node("sub").rm().Peek("sub_key").status().IsNotFound());
  EXPECT_TRUE(c.Audit(txn).consistent);
}

}  // namespace
}  // namespace tpc
