// The scenario-script engine: parsing, execution, expectations, and the
// shipped sample scenarios.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "harness/scenario_script.h"

namespace tpc::harness {
namespace {

Result<ScriptReport> RunScript(const std::string& script) {
  return RunScenarioScript(script);
}

TEST(ScenarioScriptTest, MinimalCommitScenario) {
  auto report = RunScript(R"(
node a
node b
connect a b
handler b write
begin t1 a
write a t1 k v
work t1 a b
run 1s
commit-wait t1 a
expect t1 committed
expect-key a k v
expect-key b b_key v
expect-flows t1 4
)");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->expect_failed, 0) << report->output;
}

TEST(ScenarioScriptTest, FailedExpectationIsReportedNotFatal) {
  auto report = RunScript(R"(
node a
begin t1 a
write a t1 k v
commit-wait t1 a
expect t1 aborted
expect-key a k wrong-value
expect-key a missing v
)");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->expect_failed, 3);
  EXPECT_NE(report->output.find("EXPECT FAILED"), std::string::npos);
}

TEST(ScenarioScriptTest, SyntaxErrorsCarryLineNumbers) {
  auto report = RunScript("node a\nbogus-command x\n");
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("line 2"), std::string::npos);
}

TEST(ScenarioScriptTest, UnknownTxnIsError) {
  auto report = RunScript("node a\ncommit t9 a\n");
  EXPECT_FALSE(report.ok());
}

TEST(ScenarioScriptTest, BadDurationIsError) {
  EXPECT_FALSE(RunScript("node a\nrun 5parsecs\n").ok());
  EXPECT_FALSE(RunScript("node a\nrun xyzms\n").ok());
}

TEST(ScenarioScriptTest, CommentsAndBlankLinesIgnored) {
  auto report = RunScript(R"(
# a comment
node a   # trailing comment

begin t1 a
commit-wait t1 a
expect t1 committed
)");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->expect_failed, 0);
}

TEST(ScenarioScriptTest, CrashRestartPartitionFlow) {
  auto report = RunScript(R"(
node coord
node sub
connect coord sub
handler sub write
begin t1 coord
write coord t1 k v
work t1 coord sub
run 1s
crash-at sub after_prepared_force
commit t1 coord
run 30s
restart sub
run 120s
expect t1 aborted
expect-key sub sub_key absent
)");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->expect_failed, 0) << report->output;
}

TEST(ScenarioScriptTest, DiagramAndCostsProduceOutput) {
  auto report = RunScript(R"(
node a
node b
connect a b
handler b write
begin t1 a
write a t1 k v
work t1 a b
run 1s
commit-wait t1 a
diagram t1 a b
costs t1
)");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->output.find("time(ms)"), std::string::npos);
  EXPECT_NE(report->output.find("PREPARE"), std::string::npos);
  EXPECT_NE(report->output.find("flows"), std::string::npos);
}

// Every shipped sample scenario must run clean.
class ShippedScenarioTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ShippedScenarioTest, RunsWithNoFailedExpectations) {
  std::ifstream in(std::string(SCENARIO_DIR) + "/" + GetParam());
  ASSERT_TRUE(in.good()) << "missing scenario file " << GetParam();
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto report = RunScript(buffer.str());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->expect_failed, 0) << report->output;
}

INSTANTIATE_TEST_SUITE_P(All, ShippedScenarioTest,
                         ::testing::Values("last_agent.tpc",
                                           "heuristic_damage.tpc",
                                           "presumed_commit.tpc",
                                           "blocking_basic_2pc.tpc",
                                           "read_only.tpc",
                                           "wait_for_outcome.tpc",
                                           "leave_out.tpc",
                                           "vote_reliable.tpc",
                                           "combined_optimizations.tpc",
                                           "pn_cascaded.tpc"));

}  // namespace
}  // namespace tpc::harness
