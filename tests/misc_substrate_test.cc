// Coverage for the remaining substrate surfaces: the execution trace, the
// failure injector, protocol-message decoding robustness, the analytic
// cost model, and transaction-manager edge cases.

#include <gtest/gtest.h>

#include "analysis/cost_model.h"
#include "harness/cluster.h"
#include "sim/failure_injector.h"
#include "sim/trace.h"
#include "tm/protocol_messages.h"

namespace tpc {
namespace {

// --- Trace -------------------------------------------------------------------

TEST(TraceTest, FiltersByKindAndTxn) {
  sim::Trace trace;
  trace.Add({10, sim::TraceKind::kSend, "a", "b", 1, "PREPARE"});
  trace.Add({20, sim::TraceKind::kLogForce, "b", "", 1, "tm.prepared"});
  trace.Add({30, sim::TraceKind::kSend, "b", "a", 2, "VOTE"});
  EXPECT_EQ(trace.Count(sim::TraceKind::kSend), 2u);
  EXPECT_EQ(trace.CountTxn(1), 2u);
  EXPECT_EQ(trace.Count(sim::TraceKind::kSend, "a"), 1u);
  // ForEach visits matching entries in order without copying them.
  std::vector<std::string> sends;
  trace.ForEach(
      [](const sim::TraceEntry& e) { return e.kind == sim::TraceKind::kSend; },
      [&sends](const sim::TraceEntry& e) { sends.push_back(e.detail); });
  EXPECT_EQ(sends, (std::vector<std::string>{"PREPARE", "VOTE"}));
}

TEST(TraceTest, RenderContainsEssentials) {
  sim::Trace trace;
  trace.Add({10, sim::TraceKind::kSend, "a", "b", 7, "PREPARE"});
  std::string out = trace.Render();
  EXPECT_NE(out.find("a -> b"), std::string::npos);
  EXPECT_NE(out.find("SEND"), std::string::npos);
  EXPECT_NE(out.find("PREPARE"), std::string::npos);
  EXPECT_NE(out.find("txn 7"), std::string::npos);
  trace.Clear();
  EXPECT_TRUE(trace.entries().empty());
}

TEST(TraceTest, AllKindsHaveNames) {
  for (int k = 0; k <= static_cast<int>(sim::TraceKind::kApp); ++k) {
    EXPECT_NE(sim::TraceKindToString(static_cast<sim::TraceKind>(k)), "?");
  }
}

// --- Failure injector ----------------------------------------------------------

TEST(FailureInjectorTest, FiresOnNthOccurrence) {
  sim::FailureInjector injector;
  int crashes = 0;
  injector.RegisterNode("n", [&] { ++crashes; });
  injector.ArmCrash("n", "point", /*occurrence=*/3);
  EXPECT_FALSE(injector.CrashPoint("n", "point"));
  EXPECT_FALSE(injector.CrashPoint("n", "point"));
  EXPECT_TRUE(injector.CrashPoint("n", "point"));
  EXPECT_EQ(crashes, 1);
  // Fires only once.
  EXPECT_FALSE(injector.CrashPoint("n", "point"));
  EXPECT_EQ(injector.hits("n", "point"), 4u);
}

TEST(FailureInjectorTest, UnarmedPointsJustCount) {
  sim::FailureInjector injector;
  injector.RegisterNode("n", [] { FAIL() << "must not crash"; });
  EXPECT_FALSE(injector.CrashPoint("n", "point"));
  EXPECT_EQ(injector.hits("n", "point"), 1u);
  EXPECT_EQ(injector.hits("n", "other"), 0u);
}

TEST(FailureInjectorTest, ResetClearsTriggers) {
  sim::FailureInjector injector;
  int crashes = 0;
  injector.RegisterNode("n", [&] { ++crashes; });
  injector.ArmCrash("n", "point", 1);
  injector.Reset();
  EXPECT_FALSE(injector.CrashPoint("n", "point"));
  EXPECT_EQ(crashes, 0);
}

TEST(FailureInjectorTest, ResetDropsRegistrationsButKeepsIds) {
  // Regression: a harness destroyed and rebuilt on a reused injector used
  // to leave the old crash callback dangling into freed nodes.
  sim::FailureInjector injector;
  const uint32_t node = injector.InternNode("n");
  const uint32_t point = injector.InternPoint("p");
  int old_harness = 0;
  injector.RegisterNode("n", [&] { ++old_harness; });
  injector.Reset();

  int new_harness = 0;
  injector.RegisterNode("n", [&] { ++new_harness; });
  injector.ArmCrash("n", "p", 1);
  // Pre-Reset interned ids stay valid for components that cached them.
  EXPECT_TRUE(injector.CrashPoint(node, point));
  EXPECT_EQ(old_harness, 0);
  EXPECT_EQ(new_harness, 1);
}

TEST(FailureInjectorTest, ReRegisterOverwritesCallbacks) {
  sim::FailureInjector injector;
  int stale = 0;
  int live = 0;
  injector.RegisterNode("n", [&] { ++stale; });
  injector.RegisterNode("n", [&] { ++live; });  // rebuild without Reset
  injector.ArmCrash("n", "p", 1);
  EXPECT_TRUE(injector.CrashPoint("n", "p"));
  EXPECT_EQ(stale, 0);
  EXPECT_EQ(live, 1);
}

TEST(FailureInjectorTest, OccurrenceCountsArePerEpoch) {
  // A node's occurrence counters restart when it crashes; hits() keeps the
  // whole-simulation total.
  sim::FailureInjector injector;
  int crashes = 0;
  injector.RegisterNode("n", [&] { ++crashes; });
  injector.ArmCrash("n", "p", /*occurrence=*/2, /*epoch=*/0);
  injector.ArmCrash("n", "p", /*occurrence=*/2, /*epoch=*/1);

  EXPECT_FALSE(injector.CrashPoint("n", "p"));  // epoch 0, count 1
  EXPECT_TRUE(injector.CrashPoint("n", "p"));   // epoch 0, count 2: crash
  EXPECT_EQ(injector.node_epoch("n"), 1);
  EXPECT_EQ(injector.epoch_hits("n", "p"), 0u);  // reset by the crash

  EXPECT_FALSE(injector.CrashPoint("n", "p"));  // epoch 1, count 1
  EXPECT_TRUE(injector.CrashPoint("n", "p"));   // epoch 1, count 2: crash
  EXPECT_EQ(crashes, 2);
  EXPECT_EQ(injector.node_epoch("n"), 2);
  EXPECT_EQ(injector.hits("n", "p"), 4u);  // totals survive every epoch
}

TEST(FailureInjectorTest, EpochTargetedTriggerIgnoresOtherEpochs) {
  sim::FailureInjector injector;
  int crashes = 0;
  injector.RegisterNode("n", [&] { ++crashes; });
  injector.ArmCrash("n", "p", /*occurrence=*/1, /*epoch=*/1);
  // Epoch 0 hits never match an epoch-1 trigger.
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(injector.CrashPoint("n", "p"));
  injector.CrashNow("n");  // manually advance to epoch 1
  EXPECT_EQ(crashes, 1);
  EXPECT_TRUE(injector.CrashPoint("n", "p"));
  EXPECT_EQ(crashes, 2);
}

TEST(FailureInjectorTest, DisarmAllKeepsRegistrationsAndCounters) {
  sim::FailureInjector injector;
  int crashes = 0;
  injector.RegisterNode("n", [&] { ++crashes; });
  injector.ArmCrash("n", "p", 1);
  EXPECT_FALSE(injector.CrashPoint("n", "q"));
  injector.DisarmAll();
  EXPECT_FALSE(injector.CrashPoint("n", "p"));  // trigger gone
  EXPECT_EQ(crashes, 0);
  EXPECT_EQ(injector.hits("n", "q"), 1u);  // counters survive
  injector.CrashNow("n");                  // registration survives
  EXPECT_EQ(crashes, 1);
}

// --- Protocol message codec -------------------------------------------------------

TEST(PduCodecTest, RoundTripsAllFields) {
  tm::Pdu pdu;
  pdu.type = tm::PduType::kVote;
  pdu.txn = 0xdeadbeefULL;
  pdu.vote = rm::Vote::kYes;
  pdu.reliable = true;
  pdu.ok_to_leave_out = true;
  pdu.unsolicited = true;
  pdu.last_agent = true;
  pdu.vote_long_locks = true;
  pdu.heur_commit = true;
  pdu.damage = true;
  pdu.outcome_pending = true;
  pdu.from_last_agent = true;
  pdu.answer = tm::InquiryAnswer::kInDoubt;
  pdu.data = "payload";

  auto decoded = tm::DecodePdus(tm::EncodePdus({pdu}));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 1u);
  const tm::Pdu& d = (*decoded)[0];
  EXPECT_EQ(d.type, tm::PduType::kVote);
  EXPECT_EQ(d.txn, 0xdeadbeefULL);
  EXPECT_EQ(d.vote, rm::Vote::kYes);
  EXPECT_TRUE(d.reliable);
  EXPECT_TRUE(d.ok_to_leave_out);
  EXPECT_TRUE(d.unsolicited);
  EXPECT_TRUE(d.last_agent);
  EXPECT_TRUE(d.vote_long_locks);
  EXPECT_TRUE(d.heur_commit);
  EXPECT_FALSE(d.heur_abort);
  EXPECT_TRUE(d.damage);
  EXPECT_TRUE(d.outcome_pending);
  EXPECT_TRUE(d.from_last_agent);
  EXPECT_EQ(d.answer, tm::InquiryAnswer::kInDoubt);
  EXPECT_EQ(d.data, "payload");
}

TEST(PduCodecTest, MultiplePdusPreserveOrder) {
  tm::Pdu ack;
  ack.type = tm::PduType::kAck;
  ack.txn = 1;
  tm::Pdu data;
  data.type = tm::PduType::kAppData;
  data.txn = 2;
  auto decoded = tm::DecodePdus(tm::EncodePdus({ack, data}));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].type, tm::PduType::kAck);
  EXPECT_EQ((*decoded)[1].type, tm::PduType::kAppData);
}

TEST(PduCodecTest, RejectsGarbage) {
  EXPECT_FALSE(tm::DecodePdus("").ok());
  EXPECT_FALSE(tm::DecodePdus(std::string("\xff\xff\xff", 3)).ok());
  // Valid message with trailing junk.
  tm::Pdu pdu;
  pdu.type = tm::PduType::kAck;
  std::string payload = tm::EncodePdus({pdu}) + "junk";
  EXPECT_FALSE(tm::DecodePdus(payload).ok());
  // Truncated message.
  std::string truncated = tm::EncodePdus({pdu});
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(tm::DecodePdus(truncated).ok());
}

TEST(PduCodecTest, RejectsBadEnumValues) {
  tm::Pdu pdu;
  pdu.type = tm::PduType::kVote;
  std::string payload = tm::EncodePdus({pdu});
  // Corrupt the type byte (frames are packed back to back, no count prefix).
  payload[0] = 99;
  EXPECT_FALSE(tm::DecodePdus(payload).ok());
}

TEST(PduCodecTest, DescribeNamesEveryType) {
  for (int t = 1; t <= static_cast<int>(tm::PduType::kInquiryReply); ++t) {
    EXPECT_NE(tm::PduTypeToString(static_cast<tm::PduType>(t)), "?");
  }
  tm::Pdu vote;
  vote.type = tm::PduType::kVote;
  vote.vote = rm::Vote::kReadOnly;
  tm::Pdu ack;
  ack.type = tm::PduType::kAck;
  EXPECT_EQ(tm::DescribePdus({ack, vote}), "ACK+VOTE(READ-ONLY)");
}

// --- Cost model -----------------------------------------------------------------

TEST(CostModelTest, PaperExamplePoints) {
  using analysis::Table3Cost;
  using analysis::Table3Variant;
  EXPECT_EQ(Table3Cost(Table3Variant::kBasic2PC, 11, 4),
            (analysis::CostTriplet{40, 32, 21}));
  EXPECT_EQ(Table3Cost(Table3Variant::kPaReadOnly, 11, 4),
            (analysis::CostTriplet{32, 20, 13}));
  EXPECT_EQ(Table3Cost(Table3Variant::kPaLeaveOut, 11, 4),
            (analysis::CostTriplet{24, 20, 13}));
  EXPECT_EQ(Table3Cost(Table3Variant::kPaSharedLogs, 11, 4),
            (analysis::CostTriplet{40, 32, 13}));
  EXPECT_EQ(analysis::Table4Cost(analysis::Table4Variant::kBasic2PC, 12),
            (analysis::CostTriplet{48, 60, 36}));
  EXPECT_EQ(
      analysis::Table4Cost(analysis::Table4Variant::kLongLocksLastAgent, 12),
      (analysis::CostTriplet{18, 60, 36}));
}

TEST(CostModelTest, ZeroMembersIsBaseline) {
  using analysis::Table3Cost;
  using analysis::Table3Variant;
  for (auto variant : analysis::AllTable3Variants()) {
    EXPECT_EQ(Table3Cost(variant, 11, 0),
              Table3Cost(Table3Variant::kBasic2PC, 11, 0))
        << analysis::Table3VariantName(variant);
  }
}

TEST(CostModelTest, GroupCommitExpectation) {
  EXPECT_DOUBLE_EQ(analysis::GroupCommitExpectedForces(100, 1), 300.0);
  EXPECT_DOUBLE_EQ(analysis::GroupCommitExpectedForces(100, 10), 30.0);
  EXPECT_DOUBLE_EQ(analysis::GroupCommitExpectedForces(100, 0), 300.0);
}

// --- TM edge cases -----------------------------------------------------------------

TEST(TmEdgeCaseTest, SendWorkToUnknownPeerFails) {
  harness::Cluster c;
  c.AddNode("a", {});
  uint64_t txn = c.tm("a").Begin();
  EXPECT_TRUE(c.tm("a").SendWork(txn, "nobody").IsInvalidArgument());
}

TEST(TmEdgeCaseTest, CommitWithNoWorkCompletesTrivially) {
  harness::Cluster c;
  c.AddNode("a", {});
  uint64_t txn = c.tm("a").Begin();
  auto commit = c.CommitAndWait("a", txn);
  ASSERT_TRUE(commit.completed);
  EXPECT_EQ(commit.result.outcome, tm::Outcome::kCommitted);
  EXPECT_EQ(c.tm("a").CostOf(txn).tm_log_writes, 0u);  // nothing at stake
}

TEST(TmEdgeCaseTest, LocalOnlyCommitForcesOnce) {
  harness::Cluster c;
  c.AddNode("a", {});
  uint64_t txn = c.tm("a").Begin();
  c.tm("a").Write(txn, 0, "k", "v", [](Status st) { ASSERT_TRUE(st.ok()); });
  auto commit = c.CommitAndWait("a", txn);
  ASSERT_TRUE(commit.completed);
  EXPECT_EQ(commit.result.outcome, tm::Outcome::kCommitted);
  EXPECT_EQ(c.node("a").rm().Peek("k").value_or(""), "v");
  // Local 1PC: committed (forced) + end.
  EXPECT_EQ(c.tm("a").CostOf(txn).tm_log_forced, 1u);
  EXPECT_EQ(c.tm("a").CostOf(txn).flows_sent, 0u);
}

TEST(TmEdgeCaseTest, MultipleRmsOnOneNodeAllParticipate) {
  harness::Cluster c;
  harness::NodeOptions options;
  options.num_rms = 3;
  c.AddNode("a", options);
  uint64_t txn = c.tm("a").Begin();
  for (size_t i = 0; i < 3; ++i) {
    c.tm("a").Write(txn, i, "k", "v" + std::to_string(i),
                    [](Status st) { ASSERT_TRUE(st.ok()); });
  }
  auto commit = c.CommitAndWait("a", txn);
  ASSERT_TRUE(commit.completed);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(c.node("a").rm(i).Peek("k").value_or(""),
              "v" + std::to_string(i));
  }
}

TEST(TmEdgeCaseTest, SequentialTransactionsReuseSessions) {
  harness::Cluster c;
  c.AddNode("a", {});
  c.AddNode("b", {});
  c.Connect("a", "b");
  c.tm("b").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId&, std::string_view v) {
        c.tm("b").Write(txn, 0, "k", std::string(v), [](Status st) {
          ASSERT_TRUE(st.ok());
        });
      });
  for (int i = 0; i < 10; ++i) {
    uint64_t txn = c.tm("a").Begin();
    ASSERT_TRUE(c.tm("a").SendWork(txn, "b", std::to_string(i)).ok());
    c.RunFor(100 * sim::kMillisecond);
    auto commit = c.CommitAndWait("a", txn);
    ASSERT_TRUE(commit.completed);
    EXPECT_EQ(commit.result.outcome, tm::Outcome::kCommitted);
  }
  EXPECT_EQ(c.node("b").rm().Peek("k").value_or(""), "9");
}

TEST(TmEdgeCaseTest, MetricsReportCoversEveryNode) {
  harness::Cluster c;
  c.AddNode("alpha", {});
  c.AddNode("beta", {});
  c.Connect("alpha", "beta");
  c.tm("beta").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm("beta").Write(txn, 0, "k", "v", [](Status) {});
      });
  uint64_t txn = c.tm("alpha").Begin();
  ASSERT_TRUE(c.tm("alpha").SendWork(txn, "beta").ok());
  c.RunFor(sim::kSecond);
  auto commit = c.CommitAndWait("alpha", txn);
  ASSERT_TRUE(commit.completed);
  std::string report = c.ReportMetrics();
  EXPECT_NE(report.find("network:"), std::string::npos);
  EXPECT_NE(report.find("alpha"), std::string::npos);
  EXPECT_NE(report.find("beta"), std::string::npos);
  EXPECT_NE(report.find("device forces"), std::string::npos);
}

TEST(TmEdgeCaseTest, ViewOfUnknownTxnIsUnknown) {
  harness::Cluster c;
  c.AddNode("a", {});
  EXPECT_EQ(c.tm("a").View(12345).outcome, tm::Outcome::kUnknown);
  EXPECT_EQ(c.tm("a").CostOf(12345).flows_sent, 0u);
  EXPECT_FALSE(c.tm("a").Knows(12345));
}

}  // namespace
}  // namespace tpc
