// Pipelined group-commit WAL: the size-aware log device model (latency +
// bandwidth + queue depth), the flush-policy ladder (pipelining, workers-
// write-log, WILO steal), crash hygiene across mid-group crashes, and a
// counting-allocator proof that the steady-state flush loop never touches
// the heap.

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "sim/sim_context.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

// --- counting allocator ------------------------------------------------------
// Replaceable global operator new/delete (see messaging_test.cc): every heap
// allocation in this binary bumps the counter; the zero-allocation test
// reads the delta across a warmed-up region.

static unsigned long long g_alloc_count = 0;

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace tpc::wal {
namespace {

LogRecord MakeRecord(RecordType type, uint64_t txn, std::string owner = "tm",
                     std::string body = "") {
  LogRecord rec;
  rec.type = type;
  rec.txn = txn;
  rec.owner = std::move(owner);
  rec.body = std::move(body);
  return rec;
}

// --- device model ------------------------------------------------------------

TEST(DeviceModelTest, ServiceTimeAddsBytesOverBandwidth) {
  DeviceOptions device;
  device.write_latency = 1 * sim::kMillisecond;
  device.bandwidth_bytes_per_sec = 1'000'000;  // 1 MB/s -> 1us per byte
  EXPECT_EQ(device.ServiceTime(0), 1 * sim::kMillisecond);
  EXPECT_EQ(device.ServiceTime(1000), 2 * sim::kMillisecond);
  device.bandwidth_bytes_per_sec = 0;  // infinite: size never matters
  EXPECT_EQ(device.ServiceTime(1 << 20), 1 * sim::kMillisecond);
}

TEST(DeviceModelTest, QueueDepthOverlapsService) {
  sim::SimContext ctx;
  DeviceOptions device;
  device.write_latency = 2 * sim::kMillisecond;
  device.queue_depth = 2;
  StableStorage storage(&ctx, device);
  std::vector<int> order;
  storage.Write("a", [&] { order.push_back(1); });
  storage.Write("b", [&] { order.push_back(2); });
  // Depth 2: both serve concurrently and retire together at 2ms (a serial
  // device would finish "b" at 4ms).
  ctx.events().RunUntil(2 * sim::kMillisecond);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(storage.durable(), "ab");
}

TEST(DeviceModelTest, RetirementIsFifoDespiteOutOfOrderService) {
  sim::SimContext ctx;
  DeviceOptions device;
  device.write_latency = 1 * sim::kMillisecond;
  device.bandwidth_bytes_per_sec = 1'000'000;  // 1us per byte
  device.queue_depth = 2;
  StableStorage storage(&ctx, device);
  std::vector<int> order;
  // "a..." (2000 bytes -> 3ms) finishes after "b" (1ms), but "b" must wait:
  // the durable log is always a prefix of what was submitted.
  storage.Write(std::string(2000, 'a'), [&] { order.push_back(1); });
  storage.Write("b", [&] { order.push_back(2); });
  ctx.events().RunUntil(2 * sim::kMillisecond);
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(storage.durable_bytes(), 0u);
  ctx.events().Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(storage.durable_bytes(), 2001u);
}

TEST(DeviceModelTest, BandwidthStretchesLargeWrites) {
  sim::SimContext ctx;
  DeviceOptions device;
  device.write_latency = 1 * sim::kMillisecond;
  device.bandwidth_bytes_per_sec = 500'000;  // 2us per byte
  StableStorage storage(&ctx, device);
  bool done = false;
  storage.Write(std::string(1000, 'x'), [&] { done = true; });
  ctx.events().RunUntil(2 * sim::kMillisecond);
  EXPECT_FALSE(done);  // 1ms op + 2ms transfer
  ctx.events().RunUntil(3 * sim::kMillisecond);
  EXPECT_TRUE(done);
  EXPECT_EQ(storage.bytes_written(), 1000u);
}

// --- flush-policy ladder -----------------------------------------------------

GroupCommitOptions PolicyOptions(FlushPolicy policy) {
  GroupCommitOptions group;
  group.enabled = true;
  group.policy = policy;
  group.group_size = 4;
  group.group_timeout = 5 * sim::kMillisecond;
  group.max_pipeline_depth = 2;
  group.daemon_interval = 1 * sim::kMillisecond;
  group.worker_buffer_bytes = 4096;
  return group;
}

TEST(FlushPolicyTest, NamesRoundTrip) {
  for (FlushPolicy p :
       {FlushPolicy::kCountTimer, FlushPolicy::kFlushPipelining,
        FlushPolicy::kWorkersWriteLog, FlushPolicy::kWiloSteal}) {
    FlushPolicy parsed;
    ASSERT_TRUE(ParseFlushPolicy(FlushPolicyName(p), &parsed));
    EXPECT_EQ(parsed, p);
  }
  FlushPolicy parsed;
  EXPECT_FALSE(ParseFlushPolicy("bogus", &parsed));
}

TEST(FlushPolicyTest, PipeliningSubmitsWithoutWaitingForGroup) {
  sim::SimContext ctx;
  DeviceOptions device;
  device.write_latency = 2 * sim::kMillisecond;
  device.queue_depth = 2;
  LogManager log(&ctx, "n1", device);
  log.set_group_commit(PolicyOptions(FlushPolicy::kFlushPipelining));
  bool done = false;
  log.Append(MakeRecord(RecordType::kTmCommitted, 1), true,
             [&] { done = true; });
  // A lone force submits immediately — no count trigger, no group timer.
  ctx.events().RunUntil(2 * sim::kMillisecond);
  EXPECT_TRUE(done);
  EXPECT_EQ(log.device_forces(), 1u);
}

TEST(FlushPolicyTest, PipeliningBatchesBeyondDepth) {
  sim::SimContext ctx;
  DeviceOptions device;
  device.write_latency = 2 * sim::kMillisecond;
  device.queue_depth = 1;
  LogManager log(&ctx, "n1", device);
  GroupCommitOptions group = PolicyOptions(FlushPolicy::kFlushPipelining);
  group.max_pipeline_depth = 1;
  log.set_group_commit(group);
  int completions = 0;
  // First force occupies the single pipeline slot; the next three accumulate
  // and the device completion submits them as one batch.
  for (int i = 0; i < 4; ++i)
    log.Append(MakeRecord(RecordType::kTmCommitted, i + 1), true,
               [&] { ++completions; });
  ctx.events().RunUntil(2 * sim::kMillisecond);
  EXPECT_EQ(completions, 1);
  ctx.events().Run();
  EXPECT_EQ(completions, 4);
  EXPECT_EQ(log.device_forces(), 2u);  // 1 + batched 3
}

TEST(FlushPolicyTest, WorkersWriteLogKeepsLsnOrderAcrossOwners) {
  sim::SimContext ctx;
  LogManager log(&ctx, "n1", 2 * sim::kMillisecond);
  log.set_group_commit(PolicyOptions(FlushPolicy::kWorkersWriteLog));
  // Interleaved appends from two owners: per-owner buffers must gather back
  // into exact LSN (arrival) order, byte for byte.
  std::vector<Lsn> lsns;
  lsns.push_back(log.Append(MakeRecord(RecordType::kRmUpdate, 1, "rm"), false));
  lsns.push_back(log.Append(MakeRecord(RecordType::kTmPrepared, 1, "tm"), false));
  lsns.push_back(log.Append(MakeRecord(RecordType::kRmUpdate, 2, "rm"), false));
  bool done = false;
  log.Append(MakeRecord(RecordType::kTmCommitted, 1, "tm"), true,
             [&] { done = true; });
  ctx.events().Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(log.durable_lsn(), log.next_lsn());
  std::vector<LogRecord> recovered = log.Recover();
  ASSERT_EQ(recovered.size(), 4u);
  EXPECT_EQ(recovered[0].type, RecordType::kRmUpdate);
  EXPECT_EQ(recovered[0].txn, 1u);
  EXPECT_EQ(recovered[1].type, RecordType::kTmPrepared);
  EXPECT_EQ(recovered[2].txn, 2u);
  EXPECT_EQ(recovered[3].type, RecordType::kTmCommitted);
  // LSNs are exact byte offsets even with per-owner buffering.
  EXPECT_EQ(lsns[0], 0u);
  EXPECT_LT(lsns[1], lsns[2]);
}

TEST(FlushPolicyTest, WiloStealSubmitsPeerBuffers) {
  sim::SimContext ctx;
  LogManager log(&ctx, "n1", 2 * sim::kMillisecond);
  GroupCommitOptions group = PolicyOptions(FlushPolicy::kWiloSteal);
  group.worker_buffer_bytes = 64;
  group.group_size = 100;  // count trigger out of the way
  log.set_group_commit(group);
  // "rm" fills its buffer past the threshold; the overflowing worker steals
  // the daemon's job and submits every owner's buffer.
  log.Append(MakeRecord(RecordType::kTmPrepared, 1, "tm"), false);
  for (int i = 0; i < 4; ++i)
    log.Append(
        MakeRecord(RecordType::kRmUpdate, 2, "rm", std::string(32, 'x')),
        false);
  ctx.events().Run();
  EXPECT_GE(log.steals(), 1u);
  EXPECT_EQ(log.durable_lsn(), log.next_lsn());
  EXPECT_EQ(log.Recover().size(), 5u);
}

TEST(FlushPolicyTest, OwnerBuffersCountedInApproxBytes) {
  sim::SimContext ctx;
  LogManager log(&ctx, "n1", 2 * sim::kMillisecond);
  log.set_group_commit(PolicyOptions(FlushPolicy::kWorkersWriteLog));
  const uint64_t before = log.ApproxBytes();
  for (int i = 0; i < 16; ++i)
    log.Append(
        MakeRecord(RecordType::kRmUpdate, 1, "rm", std::string(256, 'x')),
        false);
  // Unflushed per-owner buffers are real heap held by the log.
  EXPECT_GT(log.ApproxBytes(), before + 16 * 256);
}

// --- crash hygiene -----------------------------------------------------------

TEST(WalCrashTest, CrashMidGroupThenRecoverTwice) {
  sim::SimContext ctx;
  LogManager log(&ctx, "n1", 2 * sim::kMillisecond);
  GroupCommitOptions group;
  group.enabled = true;
  group.group_size = 8;
  group.group_timeout = 5 * sim::kMillisecond;
  log.set_group_commit(group);

  // Round 1: one record durable, then crash while the next group is still
  // gathering (its timer armed). The armed timer must be cancelled — a
  // stale pop after recovery would flush buffers from the previous life.
  log.Append(MakeRecord(RecordType::kTmPrepared, 1), true);
  ctx.events().Run();
  bool lost1 = false;
  log.Append(MakeRecord(RecordType::kTmCommitted, 1), true,
             [&] { lost1 = true; });
  ctx.events().RunUntil(ctx.events().now() + 1 * sim::kMillisecond);
  log.Crash();
  ctx.events().Run();
  EXPECT_FALSE(lost1);
  ASSERT_EQ(log.Recover().size(), 1u);
  EXPECT_EQ(log.durable_lsn(), log.next_lsn());

  // Round 2: same dance after the first recovery — the second crash must
  // find the same clean timer state the first one did.
  log.Append(MakeRecord(RecordType::kTmPrepared, 2), true);
  ctx.events().Run();
  ASSERT_EQ(log.Recover().size(), 2u);
  bool lost2 = false;
  log.Append(MakeRecord(RecordType::kTmCommitted, 2), true,
             [&] { lost2 = true; });
  ctx.events().RunUntil(ctx.events().now() + 1 * sim::kMillisecond);
  log.Crash();
  ctx.events().Run();
  EXPECT_FALSE(lost2);
  EXPECT_EQ(log.Recover().size(), 2u);

  // And the log still works after two mid-group crashes.
  bool done = false;
  log.Append(MakeRecord(RecordType::kTmEnd, 3), true, [&] { done = true; });
  ctx.events().Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(log.Recover().size(), 3u);
}

TEST(WalCrashTest, CrashWithFlushInFlightDropsAcks) {
  sim::SimContext ctx;
  DeviceOptions device;
  device.write_latency = 2 * sim::kMillisecond;
  LogManager log(&ctx, "n1", device);
  log.set_group_commit(PolicyOptions(FlushPolicy::kFlushPipelining));
  bool acked = false;
  log.Append(MakeRecord(RecordType::kTmCommitted, 1), true,
             [&] { acked = true; });
  ctx.events().RunUntil(1 * sim::kMillisecond);  // flush in flight
  log.Crash();
  ctx.events().Run();
  EXPECT_FALSE(acked);
  EXPECT_TRUE(log.Recover().empty());
  EXPECT_EQ(log.durable_lsn(), log.next_lsn());
}

TEST(WalCrashTest, WorkersWriteLogCrashLosesOwnerBuffers) {
  sim::SimContext ctx;
  LogManager log(&ctx, "n1", 2 * sim::kMillisecond);
  log.set_group_commit(PolicyOptions(FlushPolicy::kWorkersWriteLog));
  log.Append(MakeRecord(RecordType::kTmPrepared, 1, "tm"), true);
  ctx.events().Run();
  ASSERT_EQ(log.Recover().size(), 1u);
  // Buffered-only records (owner buffers, no force completed) die with the
  // node; the gathered flush after recovery must not resurrect them.
  log.Append(MakeRecord(RecordType::kRmUpdate, 2, "rm"), false);
  log.Append(MakeRecord(RecordType::kTmPrepared, 2, "tm"), false);
  log.Crash();
  ctx.events().Run();
  EXPECT_EQ(log.Recover().size(), 1u);
  log.Append(MakeRecord(RecordType::kTmPrepared, 3, "tm"), true);
  ctx.events().Run();
  std::vector<LogRecord> recovered = log.Recover();
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered[1].txn, 3u);
}

// --- allocation-free steady state --------------------------------------------

TEST(WalAllocationTest, SteadyStateFlushLoopDoesNotAllocate) {
  sim::SimContext ctx;
  ctx.trace().set_capture(false);
  DeviceOptions device;
  // Power-of-two service time: each iteration advances sim time by exactly
  // one service, so completions land on wheel buckets at a fixed stride. 2048
  // divides the event wheel's 2^14us span, giving 8 recurring bucket
  // positions that spin(64) fully warms; a non-dividing stride (say 2000us)
  // would walk cold buckets for 1024 iterations and the wheel's first-touch
  // vector growth would pollute the WAL's allocation proof.
  device.write_latency = 2048;
  device.queue_depth = 2;
  LogManager log(&ctx, "n1", device);
  log.set_group_commit(PolicyOptions(FlushPolicy::kFlushPipelining));

  const LogRecord rec =
      MakeRecord(RecordType::kTmCommitted, 7, "tm", "steady-state-body");
  int acks = 0;
  int* acks_ptr = &acks;  // pointer capture fits std::function's SBO

  auto spin = [&](int iterations) {
    for (int i = 0; i < iterations; ++i) {
      log.Append(rec, /*force=*/true, [acks_ptr] { ++*acks_ptr; });
      log.Append(rec, /*force=*/true, [acks_ptr] { ++*acks_ptr; });
      ctx.events().Run();
      // Keep the durable image bounded so its backing string never regrows:
      // the simulated disk contents are workload bytes, not flush overhead.
      log.DiscardPrefix(log.durable_lsn());
    }
  };

  spin(64);  // warm every pool: flush buffers, cb vectors, ring, wheel
  const unsigned long long before = g_alloc_count;
  spin(256);
  const unsigned long long allocations = g_alloc_count - before;
  EXPECT_EQ(allocations, 0u)
      << "steady-state append->flush->ack loop must not allocate";
  EXPECT_EQ(acks, 2 * (64 + 256));
}

}  // namespace
}  // namespace tpc::wal
