#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace tpc::sim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueueTest, FifoWithinSameInstant) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(5, [&] { order.push_back(1); });
  q.ScheduleAt(5, [&] { order.push_back(2); });
  q.ScheduleAt(5, [&] { order.push_back(3); });
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, ScheduleAfterUsesNow) {
  EventQueue q;
  Time seen = -1;
  q.ScheduleAt(100, [&] {
    q.ScheduleAfter(50, [&] { seen = q.now(); });
  });
  q.Run();
  EXPECT_EQ(seen, 150);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventId id = q.ScheduleAt(10, [&] { ran = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // already cancelled
  q.Run();
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelAfterRunFails) {
  EventQueue q;
  EventId id = q.ScheduleAt(1, [] {});
  q.Run();
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventQueue q;
  std::vector<Time> fired;
  q.ScheduleAt(10, [&] { fired.push_back(10); });
  q.ScheduleAt(20, [&] { fired.push_back(20); });
  q.ScheduleAt(30, [&] { fired.push_back(30); });
  q.RunUntil(25);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));
  EXPECT_EQ(q.now(), 25);
  q.Run();
  EXPECT_EQ(fired, (std::vector<Time>{10, 20, 30}));
}

TEST(EventQueueTest, EventsScheduledDuringRunExecute) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.ScheduleAfter(1, recurse);
  };
  q.ScheduleAt(0, recurse);
  q.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.now(), 4);
}

TEST(EventQueueTest, MaxEventsBoundsRun) {
  EventQueue q;
  int count = 0;
  for (int i = 0; i < 10; ++i) q.ScheduleAt(i, [&] { ++count; });
  EXPECT_EQ(q.Run(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueueTest, PendingExcludesCancelled) {
  EventQueue q;
  EventId a = q.ScheduleAt(1, [] {});
  q.ScheduleAt(2, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, RunUntilSkipsCancelledHead) {
  EventQueue q;
  bool ran = false;
  EventId a = q.ScheduleAt(5, [&] { ran = true; });
  q.Cancel(a);
  q.RunUntil(10);
  EXPECT_FALSE(ran);
  EXPECT_EQ(q.now(), 10);
}

TEST(EventQueueTest, MassCancelledTimersDoNotLeakStorage) {
  // The seed leaked one tombstone per cancelled far-future timer until the
  // clock reached it. Compaction must keep stored entries bounded even when
  // every timer is cancelled long before it would fire.
  EventQueue q;
  for (int round = 0; round < 1000; ++round) {
    EventId ids[8];
    for (auto& id : ids)
      id = q.ScheduleAfter(1000 * kSecond, [] { FAIL() << "timer fired"; });
    for (auto& id : ids) EXPECT_TRUE(q.Cancel(id));
  }
  EXPECT_EQ(q.pending(), 0u);
  // 8000 cancelled timers; far fewer than that may remain stored.
  EXPECT_LT(q.queued(), 200u);
  EXPECT_EQ(q.Run(), 0u);
}

TEST(EventQueueTest, StaleIdCannotCancelSlotReuser) {
  EventQueue q;
  EventId first = q.ScheduleAt(1, [] {});
  q.Run();
  // The slot is free; a new event may reuse it under a new generation.
  bool ran = false;
  q.ScheduleAt(2, [&] { ran = true; });
  EXPECT_FALSE(q.Cancel(first));
  q.Run();
  EXPECT_TRUE(ran);
}

TEST(EventQueueTest, FarEventsCrossTheWheelHorizon) {
  // Events beyond the wheel's near horizon overflow to the heap and must
  // still run in exact (time, schedule) order when the clock reaches them.
  EventQueue q;
  std::vector<Time> fired;
  const Time far = 10 * kSecond;  // far beyond the 16.4ms wheel span
  q.ScheduleAt(far + 3, [&] { fired.push_back(far + 3); });
  q.ScheduleAt(5, [&] { fired.push_back(5); });
  q.ScheduleAt(far + 1, [&] { fired.push_back(far + 1); });
  q.ScheduleAt(far + 1, [&] { fired.push_back(-(far + 1)); });  // FIFO tie
  q.Run();
  EXPECT_EQ(fired, (std::vector<Time>{5, far + 1, -(far + 1), far + 3}));
  EXPECT_EQ(q.now(), far + 3);
}

TEST(EventQueueTest, SameInstantScheduleFromMidBucketHandler) {
  // A handler scheduling at the current instant re-enters the bucket the
  // cursor is part-way through; the already-consumed prefix must not be
  // seen again (its slots may have been recycled into the new events).
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(7, [&] {
    order.push_back(1);
    q.ScheduleAfter(0, [&] { order.push_back(3); });
  });
  q.ScheduleAt(7, [&] { order.push_back(2); });
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueTest, WheelRebaseAfterDrainIsClean) {
  // Drain the wheel completely (leaving a consumed bucket behind), then let
  // a far event re-base the window onto the same bucket indices: the stale
  // consumed entries must not resurface as ghost events.
  EventQueue q;
  int near_runs = 0;
  for (int i = 0; i < 32; ++i) q.ScheduleAt(100, [&] { ++near_runs; });
  const Time far = 100 + (1 << 14);  // same bucket index, next wheel turn
  int far_runs = 0;
  q.ScheduleAt(far, [&] { ++far_runs; });
  q.Run();
  EXPECT_EQ(near_runs, 32);
  EXPECT_EQ(far_runs, 1);
  EXPECT_EQ(q.executed(), 33u);
  EXPECT_EQ(q.now(), far);
}

TEST(EventQueueTest, ExecutedCountsLifetimeEvents) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.ScheduleAt(i, [] {});
  q.Run();
  EventId id = q.ScheduleAt(10, [] {});
  q.Cancel(id);
  q.Run();
  EXPECT_EQ(q.executed(), 5u);  // cancelled events never count
}

}  // namespace
}  // namespace tpc::sim
