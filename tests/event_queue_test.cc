#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace tpc::sim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueueTest, FifoWithinSameInstant) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(5, [&] { order.push_back(1); });
  q.ScheduleAt(5, [&] { order.push_back(2); });
  q.ScheduleAt(5, [&] { order.push_back(3); });
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, ScheduleAfterUsesNow) {
  EventQueue q;
  Time seen = -1;
  q.ScheduleAt(100, [&] {
    q.ScheduleAfter(50, [&] { seen = q.now(); });
  });
  q.Run();
  EXPECT_EQ(seen, 150);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventId id = q.ScheduleAt(10, [&] { ran = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // already cancelled
  q.Run();
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelAfterRunFails) {
  EventQueue q;
  EventId id = q.ScheduleAt(1, [] {});
  q.Run();
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventQueue q;
  std::vector<Time> fired;
  q.ScheduleAt(10, [&] { fired.push_back(10); });
  q.ScheduleAt(20, [&] { fired.push_back(20); });
  q.ScheduleAt(30, [&] { fired.push_back(30); });
  q.RunUntil(25);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));
  EXPECT_EQ(q.now(), 25);
  q.Run();
  EXPECT_EQ(fired, (std::vector<Time>{10, 20, 30}));
}

TEST(EventQueueTest, EventsScheduledDuringRunExecute) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.ScheduleAfter(1, recurse);
  };
  q.ScheduleAt(0, recurse);
  q.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.now(), 4);
}

TEST(EventQueueTest, MaxEventsBoundsRun) {
  EventQueue q;
  int count = 0;
  for (int i = 0; i < 10; ++i) q.ScheduleAt(i, [&] { ++count; });
  EXPECT_EQ(q.Run(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueueTest, PendingExcludesCancelled) {
  EventQueue q;
  EventId a = q.ScheduleAt(1, [] {});
  q.ScheduleAt(2, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, RunUntilSkipsCancelledHead) {
  EventQueue q;
  bool ran = false;
  EventId a = q.ScheduleAt(5, [&] { ran = true; });
  q.Cancel(a);
  q.RunUntil(10);
  EXPECT_FALSE(ran);
  EXPECT_EQ(q.now(), 10);
}

}  // namespace
}  // namespace tpc::sim
