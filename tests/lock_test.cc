// Lock manager: 2PL modes, queuing, upgrades, timeouts, statistics.

#include <gtest/gtest.h>

#include "lock/lock_manager.h"
#include "sim/sim_context.h"

namespace tpc::lock {
namespace {

class LockManagerTest : public ::testing::Test {
 protected:
  Status Acquire(uint64_t txn, const std::string& key, LockMode mode) {
    Status out = Status::Internal("callback never ran");
    locks_.Acquire(txn, key, mode, [&](Status st) { out = std::move(st); });
    return out;
  }

  sim::SimContext ctx_;
  LockManager locks_{&ctx_, "node", 10 * sim::kSecond};
};

TEST_F(LockManagerTest, SharedLocksAreCompatible) {
  EXPECT_TRUE(Acquire(1, "k", LockMode::kShared).ok());
  EXPECT_TRUE(Acquire(2, "k", LockMode::kShared).ok());
  EXPECT_TRUE(locks_.Holds(1, "k", LockMode::kShared));
  EXPECT_TRUE(locks_.Holds(2, "k", LockMode::kShared));
}

TEST_F(LockManagerTest, ExclusiveConflictsQueue) {
  EXPECT_TRUE(Acquire(1, "k", LockMode::kExclusive).ok());
  bool granted = false;
  locks_.Acquire(2, "k", LockMode::kExclusive,
                 [&](Status st) { granted = st.ok(); });
  EXPECT_FALSE(granted);
  EXPECT_EQ(locks_.WaiterCount(), 1u);
  locks_.ReleaseAll(1);
  EXPECT_TRUE(granted);
  EXPECT_TRUE(locks_.Holds(2, "k", LockMode::kExclusive));
}

TEST_F(LockManagerTest, ReacquireHeldLockIsNoOp) {
  EXPECT_TRUE(Acquire(1, "k", LockMode::kExclusive).ok());
  EXPECT_TRUE(Acquire(1, "k", LockMode::kExclusive).ok());
  EXPECT_TRUE(Acquire(1, "k", LockMode::kShared).ok());  // weaker: ok
  locks_.ReleaseAll(1);
  EXPECT_FALSE(locks_.Holds(1, "k", LockMode::kShared));
}

TEST_F(LockManagerTest, UpgradeWhenSoleHolder) {
  EXPECT_TRUE(Acquire(1, "k", LockMode::kShared).ok());
  EXPECT_TRUE(Acquire(1, "k", LockMode::kExclusive).ok());
  EXPECT_TRUE(locks_.Holds(1, "k", LockMode::kExclusive));
}

TEST_F(LockManagerTest, UpgradeWaitsForOtherSharers) {
  EXPECT_TRUE(Acquire(1, "k", LockMode::kShared).ok());
  EXPECT_TRUE(Acquire(2, "k", LockMode::kShared).ok());
  bool upgraded = false;
  locks_.Acquire(1, "k", LockMode::kExclusive,
                 [&](Status st) { upgraded = st.ok(); });
  EXPECT_FALSE(upgraded);
  locks_.ReleaseAll(2);
  EXPECT_TRUE(upgraded);
  EXPECT_TRUE(locks_.Holds(1, "k", LockMode::kExclusive));
}

TEST_F(LockManagerTest, UpgradeJumpsQueue) {
  // txn1 holds S; txn3 queues for X; txn1's upgrade must not deadlock
  // behind txn3.
  EXPECT_TRUE(Acquire(1, "k", LockMode::kShared).ok());
  bool writer = false;
  locks_.Acquire(3, "k", LockMode::kExclusive,
                 [&](Status st) { writer = st.ok(); });
  bool upgraded = false;
  locks_.Acquire(1, "k", LockMode::kExclusive,
                 [&](Status st) { upgraded = st.ok(); });
  EXPECT_TRUE(upgraded);  // sole holder: immediate
  EXPECT_FALSE(writer);
  locks_.ReleaseAll(1);
  EXPECT_TRUE(writer);
}

TEST_F(LockManagerTest, WaitTimesOut) {
  EXPECT_TRUE(Acquire(1, "k", LockMode::kExclusive).ok());
  Status waited = Status::OK();
  bool fired = false;
  locks_.Acquire(2, "k", LockMode::kExclusive, [&](Status st) {
    fired = true;
    waited = std::move(st);
  });
  ctx_.events().RunUntil(11 * sim::kSecond);
  EXPECT_TRUE(fired);
  EXPECT_TRUE(waited.IsTimedOut());
  EXPECT_EQ(locks_.stats().timeouts, 1u);
  // The holder is unaffected.
  EXPECT_TRUE(locks_.Holds(1, "k", LockMode::kExclusive));
}

TEST_F(LockManagerTest, FifoGrantOrderAmongWaiters) {
  EXPECT_TRUE(Acquire(1, "k", LockMode::kExclusive).ok());
  std::vector<int> order;
  locks_.Acquire(2, "k", LockMode::kExclusive,
                 [&](Status st) { if (st.ok()) order.push_back(2); });
  locks_.Acquire(3, "k", LockMode::kExclusive,
                 [&](Status st) { if (st.ok()) order.push_back(3); });
  locks_.ReleaseAll(1);
  EXPECT_EQ(order, (std::vector<int>{2}));
  locks_.ReleaseAll(2);
  EXPECT_EQ(order, (std::vector<int>{2, 3}));
}

TEST_F(LockManagerTest, SharedWaitersGrantTogether) {
  EXPECT_TRUE(Acquire(1, "k", LockMode::kExclusive).ok());
  int granted = 0;
  locks_.Acquire(2, "k", LockMode::kShared, [&](Status st) {
    if (st.ok()) ++granted;
  });
  locks_.Acquire(3, "k", LockMode::kShared, [&](Status st) {
    if (st.ok()) ++granted;
  });
  locks_.ReleaseAll(1);
  EXPECT_EQ(granted, 2);
}

TEST_F(LockManagerTest, NewRequestQueuesBehindExistingWaiters) {
  // Fairness: a compatible S request must not starve a queued X waiter.
  EXPECT_TRUE(Acquire(1, "k", LockMode::kShared).ok());
  bool writer = false;
  locks_.Acquire(2, "k", LockMode::kExclusive,
                 [&](Status st) { writer = st.ok(); });
  bool reader = false;
  locks_.Acquire(3, "k", LockMode::kShared,
                 [&](Status st) { reader = st.ok(); });
  EXPECT_FALSE(reader);  // queued behind the writer despite compatibility
  locks_.ReleaseAll(1);
  EXPECT_TRUE(writer);
  EXPECT_FALSE(reader);
  locks_.ReleaseAll(2);
  EXPECT_TRUE(reader);
}

TEST_F(LockManagerTest, HoldTimeStatisticsRecorded) {
  EXPECT_TRUE(Acquire(1, "k", LockMode::kExclusive).ok());
  ctx_.events().RunUntil(5 * sim::kSecond);
  locks_.ReleaseAll(1);
  ASSERT_EQ(locks_.stats().hold_time.count(), 1u);
  EXPECT_DOUBLE_EQ(locks_.stats().hold_time.Mean(),
                   static_cast<double>(5 * sim::kSecond));
}

TEST_F(LockManagerTest, WaitTimeStatisticsRecorded) {
  EXPECT_TRUE(Acquire(1, "k", LockMode::kExclusive).ok());
  locks_.Acquire(2, "k", LockMode::kExclusive, [](Status) {});
  ctx_.events().RunUntil(3 * sim::kSecond);
  locks_.ReleaseAll(1);
  ASSERT_EQ(locks_.stats().wait_time.count(), 1u);
  EXPECT_DOUBLE_EQ(locks_.stats().wait_time.Mean(),
                   static_cast<double>(3 * sim::kSecond));
}

TEST_F(LockManagerTest, ReleaseAllCoversManyKeys) {
  for (int i = 0; i < 10; ++i)
    EXPECT_TRUE(Acquire(1, "k" + std::to_string(i), LockMode::kExclusive).ok());
  locks_.ReleaseAll(1);
  for (int i = 0; i < 10; ++i)
    EXPECT_TRUE(Acquire(2, "k" + std::to_string(i), LockMode::kExclusive).ok());
}

TEST_F(LockManagerTest, ReleaseUnknownTxnIsNoOp) {
  locks_.ReleaseAll(99);  // must not crash or disturb stats
  EXPECT_EQ(locks_.stats().hold_time.count(), 0u);
}

}  // namespace
}  // namespace tpc::lock
