// Hierarchical (intent) locking: the compatibility matrix, covers/supremum
// algebra, and the store-level scan semantics they enable in the KV RM.

#include <gtest/gtest.h>

#include "lock/lock_manager.h"
#include "rm/kv_resource_manager.h"
#include "sim/sim_context.h"
#include "wal/log_manager.h"

namespace tpc {
namespace {

using lock::LockMode;

// --- Mode algebra --------------------------------------------------------------

TEST(LockModeTest, CompatibilityMatrixIsTheTextbookOne) {
  using lock::LockModesCompatible;
  const LockMode kAll[] = {LockMode::kIntentShared, LockMode::kIntentExclusive,
                           LockMode::kShared, LockMode::kExclusive};
  // X conflicts with everything.
  for (LockMode m : kAll) {
    EXPECT_FALSE(LockModesCompatible(LockMode::kExclusive, m));
    EXPECT_FALSE(LockModesCompatible(m, LockMode::kExclusive));
  }
  // Intent modes are mutually compatible.
  EXPECT_TRUE(LockModesCompatible(LockMode::kIntentShared,
                                  LockMode::kIntentExclusive));
  EXPECT_TRUE(LockModesCompatible(LockMode::kIntentExclusive,
                                  LockMode::kIntentExclusive));
  // S is compatible with S and IS only.
  EXPECT_TRUE(LockModesCompatible(LockMode::kShared, LockMode::kShared));
  EXPECT_TRUE(LockModesCompatible(LockMode::kShared, LockMode::kIntentShared));
  EXPECT_FALSE(
      LockModesCompatible(LockMode::kShared, LockMode::kIntentExclusive));
  // Symmetry.
  for (LockMode a : kAll)
    for (LockMode b : kAll)
      EXPECT_EQ(LockModesCompatible(a, b), LockModesCompatible(b, a));
}

TEST(LockModeTest, CoversIsAPartialOrder) {
  using lock::LockModeCovers;
  for (LockMode m : {LockMode::kIntentShared, LockMode::kIntentExclusive,
                     LockMode::kShared, LockMode::kExclusive}) {
    EXPECT_TRUE(LockModeCovers(m, m));                      // reflexive
    EXPECT_TRUE(LockModeCovers(LockMode::kExclusive, m));   // X is top
  }
  EXPECT_TRUE(LockModeCovers(LockMode::kShared, LockMode::kIntentShared));
  EXPECT_TRUE(
      LockModeCovers(LockMode::kIntentExclusive, LockMode::kIntentShared));
  EXPECT_FALSE(LockModeCovers(LockMode::kShared, LockMode::kIntentExclusive));
  EXPECT_FALSE(LockModeCovers(LockMode::kIntentExclusive, LockMode::kShared));
  EXPECT_FALSE(LockModeCovers(LockMode::kIntentShared, LockMode::kShared));
}

TEST(LockModeTest, SupremumEscalatesIncomparablePairsToX) {
  using lock::LockModeSupremum;
  EXPECT_EQ(LockModeSupremum(LockMode::kShared, LockMode::kIntentExclusive),
            LockMode::kExclusive);
  EXPECT_EQ(LockModeSupremum(LockMode::kIntentShared, LockMode::kShared),
            LockMode::kShared);
  EXPECT_EQ(
      LockModeSupremum(LockMode::kIntentShared, LockMode::kIntentExclusive),
      LockMode::kIntentExclusive);
}

// --- Lock manager with intent modes ----------------------------------------------

class IntentLockTest : public ::testing::Test {
 protected:
  Status Acquire(uint64_t txn, const std::string& key, LockMode mode) {
    Status out = Status::Internal("pending");
    locks_.Acquire(txn, key, mode, [&](Status st) { out = std::move(st); });
    return out;
  }

  sim::SimContext ctx_;
  lock::LockManager locks_{&ctx_, "node", 10 * sim::kSecond};
};

TEST_F(IntentLockTest, ManyIntentHoldersCoexist) {
  for (uint64_t txn = 1; txn <= 5; ++txn) {
    EXPECT_TRUE(Acquire(txn, "table", txn % 2 ? LockMode::kIntentShared
                                              : LockMode::kIntentExclusive)
                    .ok());
  }
}

TEST_F(IntentLockTest, SharedBlocksBehindIntentExclusive) {
  EXPECT_TRUE(Acquire(1, "table", LockMode::kIntentExclusive).ok());
  bool granted = false;
  locks_.Acquire(2, "table", LockMode::kShared,
                 [&](Status st) { granted = st.ok(); });
  EXPECT_FALSE(granted);
  locks_.ReleaseAll(1);
  EXPECT_TRUE(granted);
}

TEST_F(IntentLockTest, IntentUpgradesInPlace) {
  EXPECT_TRUE(Acquire(1, "table", LockMode::kIntentShared).ok());
  EXPECT_TRUE(Acquire(2, "table", LockMode::kIntentShared).ok());
  // IS -> IX succeeds immediately: IX is compatible with the other IS.
  EXPECT_TRUE(Acquire(1, "table", LockMode::kIntentExclusive).ok());
  EXPECT_TRUE(locks_.Holds(1, "table", LockMode::kIntentExclusive));
}

TEST_F(IntentLockTest, SharedPlusIntentExclusiveEscalatesToExclusive) {
  EXPECT_TRUE(Acquire(1, "table", LockMode::kShared).ok());
  // Re-request IX: the supremum is X; no other holders, so in place.
  EXPECT_TRUE(Acquire(1, "table", LockMode::kIntentExclusive).ok());
  EXPECT_TRUE(locks_.Holds(1, "table", LockMode::kExclusive));
}

// --- Scan semantics in the KV RM ---------------------------------------------------

class ScanTest : public ::testing::Test {
 protected:
  ScanTest() : log_(&ctx_, "node"), rm_(&ctx_, "node.rm0", &log_) {}

  void CommitWrite(uint64_t txn, const std::string& key,
                   const std::string& value) {
    rm_.Write(txn, key, value, [](Status st) { ASSERT_TRUE(st.ok()); });
    rm_.Prepare(txn, [](rm::VoteInfo) {});
    rm_.Commit(txn, [](Status st) { ASSERT_TRUE(st.ok()); });
    ctx_.events().Run();
  }

  sim::SimContext ctx_;
  wal::LogManager log_;
  rm::KVResourceManager rm_;
};

TEST_F(ScanTest, ScanReturnsPrefixRangeInOrder) {
  CommitWrite(1, "user:alice", "1");
  CommitWrite(2, "user:bob", "2");
  CommitWrite(3, "order:77", "x");
  std::vector<std::pair<std::string, std::string>> rows;
  rm_.Scan(4, "user:", [&](auto result) {
    ASSERT_TRUE(result.ok());
    rows = *result;
  });
  ctx_.events().Run();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, "user:alice");
  EXPECT_EQ(rows[1].first, "user:bob");
}

TEST_F(ScanTest, ScanWaitsForInFlightWriters) {
  rm_.Write(1, "user:alice", "dirty", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  bool scanned = false;
  rm_.Scan(2, "user:", [&](auto result) {
    ASSERT_TRUE(result.ok());
    scanned = true;
    // The writer resolved before we ran: no dirty data visible mid-flight.
    ASSERT_EQ(result->size(), 1u);
    EXPECT_EQ((*result)[0].second, "final");
  });
  ctx_.events().RunUntil(ctx_.now() + 10 * sim::kMillisecond);
  EXPECT_FALSE(scanned);  // blocked on the store lock (IX held by txn 1)
  rm_.Write(1, "user:alice", "final", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  rm_.Prepare(1, [](rm::VoteInfo) {});
  rm_.Commit(1, [](Status st) { ASSERT_TRUE(st.ok()); });
  ctx_.events().RunUntil(ctx_.now() + sim::kSecond);
  EXPECT_TRUE(scanned);
}

TEST_F(ScanTest, WritersQueueBehindAScanningTransaction) {
  CommitWrite(1, "user:alice", "1");
  bool scanned = false;
  rm_.Scan(2, "user:", [&](auto result) {
    ASSERT_TRUE(result.ok());
    scanned = true;
  });
  ctx_.events().Run();
  ASSERT_TRUE(scanned);
  // txn 2 holds S on the store until it ends: a writer queues.
  bool wrote = false;
  rm_.Write(3, "user:carol", "3", [&](Status st) { wrote = st.ok(); });
  ctx_.events().RunUntil(ctx_.now() + 10 * sim::kMillisecond);
  EXPECT_FALSE(wrote);
  rm_.EndReadOnly(2);  // the scanning transaction ends
  ctx_.events().RunUntil(ctx_.now() + sim::kSecond);
  EXPECT_TRUE(wrote);
}

TEST_F(ScanTest, ConcurrentScansShareTheStoreLock) {
  CommitWrite(1, "k", "v");
  int scans = 0;
  rm_.Scan(2, "", [&](auto result) {
    ASSERT_TRUE(result.ok());
    ++scans;
  });
  rm_.Scan(3, "", [&](auto result) {
    ASSERT_TRUE(result.ok());
    ++scans;
  });
  ctx_.events().Run();
  EXPECT_EQ(scans, 2);
}

TEST_F(ScanTest, ScanningTxnVotesReadOnly) {
  CommitWrite(1, "k", "v");
  rm_.Scan(2, "", [](auto) {});
  ctx_.events().Run();
  rm::VoteInfo info;
  rm_.Prepare(2, [&](rm::VoteInfo v) { info = v; });
  ctx_.events().Run();
  EXPECT_EQ(info.vote, rm::Vote::kReadOnly);
}

}  // namespace
}  // namespace tpc
