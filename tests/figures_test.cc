// Pins the figure reproductions: each of the paper's eight figures renders
// with the expected cluster-total flows and log writes, and the Figure 5
// hazard resolves to a consistent abort. The fig_flows bench prints these;
// this test keeps them from drifting.

#include <gtest/gtest.h>

#include "harness/scenarios.h"

namespace tpc {
namespace {

struct FigureExpectation {
  int figure;
  const char* totals;  // the "--- totals:" line the scenario must print
};

class FigureTest : public ::testing::TestWithParam<FigureExpectation> {};

TEST_P(FigureTest, TotalsMatchThePaper) {
  const FigureExpectation& expected = GetParam();
  std::string rendered = harness::RunFigureScenario(expected.figure);
  EXPECT_NE(rendered.find(expected.totals), std::string::npos)
      << "figure " << expected.figure << " rendered:\n"
      << rendered;
  // Every figure draws a sequence diagram.
  EXPECT_NE(rendered.find("time(ms)"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllFigures, FigureTest,
    ::testing::Values(
        // Basic 2PC, two participants: 4 flows; coordinator (2,1f) +
        // subordinate (3,2f).
        FigureExpectation{1, "totals: 4 flows, 5 TM log writes (3 forced)"},
        // Basic 2PC with a cascaded coordinator: Table 3's n=3 point.
        FigureExpectation{2, "totals: 8 flows, 8 TM log writes (5 forced)"},
        // PN chain: commit-pending at both coordinators, forced ENDs.
        FigureExpectation{3, "totals: 8 flows, 12 TM log writes (9 forced)"},
        // Partial read-only: the reader contributes 1 flow and no writes.
        FigureExpectation{4, "totals: 6 flows, 5 TM log writes (3 forced)"},
        // Two initiators (PN): both trees abort with explicit, forced,
        // acknowledged aborts.
        FigureExpectation{5, "totals: 16 flows, 10 TM log writes (6 forced)"},
        // Last agent: the whole commit in two flows.
        FigureExpectation{6, "totals: 2 flows, 5 TM log writes (3 forced)"},
        // Long locks: three flows; the ack rides the next transaction.
        FigureExpectation{7, "totals: 3 flows, 5 TM log writes (3 forced)"},
        // Vote reliable chain: both acks elided (8 - 2 = 6 flows).
        FigureExpectation{8, "totals: 6 flows, 8 TM log writes (5 forced)"}),
    [](const auto& info) {
      return "Figure" + std::to_string(info.param.figure);
    });

TEST(FigureTest, Figure5ResolvesConsistently) {
  std::string rendered = harness::RunFigureScenario(5);
  EXPECT_NE(rendered.find("outcome at pd: aborted, at pe: aborted "
                          "(consistent: yes)"),
            std::string::npos)
      << rendered;
}

TEST(FigureTest, UnknownFigureIsReported) {
  EXPECT_NE(harness::RunFigureScenario(99).find("unknown figure"),
            std::string::npos);
}

}  // namespace
}  // namespace tpc
