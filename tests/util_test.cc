// Utility layer: CRC32C vectors, binary encoding, formatting, histogram,
// deterministic RNG.

#include <gtest/gtest.h>

#include <set>

#include "util/binary_io.h"
#include "util/crc32c.h"
#include "util/format.h"
#include "util/histogram.h"
#include "util/random.h"

namespace tpc {
namespace {

// --- CRC32C -------------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vectors.
  char zeros[32] = {};
  EXPECT_EQ(crc32c::Value(zeros, sizeof(zeros)), 0x8a9136aau);
  unsigned char ones[32];
  for (auto& b : ones) b = 0xff;
  EXPECT_EQ(crc32c::Value(ones, sizeof(ones)), 0x62a8ab43u);
  unsigned char ascending[32];
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<unsigned char>(i);
  EXPECT_EQ(crc32c::Value(ascending, sizeof(ascending)), 0x46dd794eu);
}

TEST(Crc32cTest, ExtendMatchesWholeBuffer) {
  std::string data = "hello world";
  uint32_t whole = crc32c::Value(data);
  uint32_t split = crc32c::Extend(crc32c::Value(data.substr(0, 5)),
                                  data.data() + 5, data.size() - 5);
  EXPECT_EQ(whole, split);
}

TEST(Crc32cTest, MaskRoundTripsAndDiffers) {
  uint32_t crc = crc32c::Value("abc");
  EXPECT_NE(crc32c::Mask(crc), crc);
  EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
}

// --- Binary IO ------------------------------------------------------------------

TEST(BinaryIoTest, FixedWidthRoundTrip) {
  Encoder enc;
  enc.PutU8(0xab);
  enc.PutU16(0xbeef);
  enc.PutU32(0xdeadbeefu);
  enc.PutU64(0x0123456789abcdefULL);
  enc.PutBool(true);
  Decoder dec(enc.buffer());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  bool b;
  ASSERT_TRUE(dec.GetU8(&u8).ok());
  ASSERT_TRUE(dec.GetU16(&u16).ok());
  ASSERT_TRUE(dec.GetU32(&u32).ok());
  ASSERT_TRUE(dec.GetU64(&u64).ok());
  ASSERT_TRUE(dec.GetBool(&b).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0xbeef);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_TRUE(b);
  EXPECT_TRUE(dec.empty());
}

class VarintTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintTest, RoundTrips) {
  Encoder enc;
  enc.PutVarint(GetParam());
  Decoder dec(enc.buffer());
  uint64_t out = 0;
  ASSERT_TRUE(dec.GetVarint(&out).ok());
  EXPECT_EQ(out, GetParam());
  EXPECT_TRUE(dec.empty());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VarintTest,
                         ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL,
                                           16383ULL, 16384ULL, 1ULL << 32,
                                           UINT64_MAX));

TEST(BinaryIoTest, StringRoundTripIncludingEmbeddedNul) {
  Encoder enc;
  enc.PutString(std::string("a\0b", 3));
  enc.PutString("");
  Decoder dec(enc.buffer());
  std::string a, b;
  ASSERT_TRUE(dec.GetString(&a).ok());
  ASSERT_TRUE(dec.GetString(&b).ok());
  EXPECT_EQ(a, std::string("a\0b", 3));
  EXPECT_TRUE(b.empty());
}

TEST(BinaryIoTest, UnderflowIsCorruption) {
  Decoder dec("x");
  uint32_t v;
  EXPECT_TRUE(dec.GetU32(&v).IsCorruption());
}

TEST(BinaryIoTest, BadBoolIsCorruption) {
  Encoder enc;
  enc.PutU8(2);
  Decoder dec(enc.buffer());
  bool b;
  EXPECT_TRUE(dec.GetBool(&b).IsCorruption());
}

TEST(BinaryIoTest, StringLengthBeyondBufferIsCorruption) {
  Encoder enc;
  enc.PutVarint(100);  // claims 100 bytes, provides none
  Decoder dec(enc.buffer());
  std::string s;
  EXPECT_TRUE(dec.GetString(&s).IsCorruption());
}

// --- Formatting -------------------------------------------------------------------

TEST(FormatTest, StringPrintfBasics) {
  EXPECT_EQ(StringPrintf("x=%d y=%s", 7, "z"), "x=7 y=z");
}

TEST(FormatTest, StringPrintfLongOutput) {
  std::string big(1000, 'a');
  EXPECT_EQ(StringPrintf("%s", big.c_str()).size(), 1000u);
}

TEST(FormatTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(FormatTest, RenderTableAlignsColumns) {
  std::string table = RenderTable({{"name", "count"}, {"aa", "1"},
                                   {"b", "100"}});
  EXPECT_NE(table.find("| name | count |"), std::string::npos);
  EXPECT_NE(table.find("| aa   | 1     |"), std::string::npos);
  EXPECT_NE(table.find("| b    | 100   |"), std::string::npos);
}

// --- Histogram ---------------------------------------------------------------------

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.Add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 5.0);
}

TEST(HistogramTest, PercentileInterpolates) {
  Histogram h;
  h.Add(0);
  h.Add(10);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(25), 2.5);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Add(1);
  b.Add(3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
}

TEST(HistogramTest, AddAfterPercentileQueryStillSorts) {
  Histogram h;
  h.Add(5);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 5.0);
  h.Add(1);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
}

// --- Random -------------------------------------------------------------------------

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.Next() == b.Next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformInRange) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.Uniform(10), 10u);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RandomTest, BernoulliEdges) {
  Random r(7);
  EXPECT_FALSE(r.Bernoulli(0.0));
  EXPECT_TRUE(r.Bernoulli(1.0));
  int heads = 0;
  for (int i = 0; i < 10000; ++i)
    if (r.Bernoulli(0.3)) ++heads;
  EXPECT_NEAR(heads, 3000, 300);
}

TEST(RandomTest, ExponentialHasRequestedMean) {
  Random r(7);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.Exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(RandomTest, SkewedStaysInRange) {
  Random r(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.Skewed(100, 0.9);
    EXPECT_LT(v, 100u);
    seen.insert(v);
  }
  // Skew means low indices dominate but multiple values appear.
  EXPECT_GT(seen.size(), 5u);
}

TEST(RandomTest, SkewedDeterministicPerSeed) {
  Random a(42), b(42), c(43);
  int differs = 0;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t va = a.Skewed(1000, 0.7);
    EXPECT_EQ(va, b.Skewed(1000, 0.7));
    if (va != c.Skewed(1000, 0.7)) ++differs;
  }
  EXPECT_GT(differs, 900);  // a different seed gives a different stream
}

// The cluster workload leans on Skewed for both leaf and key selection:
// theta=0 must be uniform (no accidental hotspots) and rising theta must
// concentrate mass on low indices (real contention when asked for).
TEST(RandomTest, SkewedThetaZeroIsUniform) {
  Random r(11);
  const int n = 10, draws = 50000;
  std::vector<int> count(n, 0);
  for (int i = 0; i < draws; ++i) ++count[r.Skewed(n, 0.0)];
  for (int b = 0; b < n; ++b) {
    EXPECT_NEAR(count[b], draws / n, draws / n / 5) << "bucket " << b;
  }
}

TEST(RandomTest, SkewedConcentratesWithTheta) {
  const int n = 100, draws = 50000;
  auto head_mass = [&](double theta) {
    Random r(11);
    int head = 0;  // draws landing in the first decile
    for (int i = 0; i < draws; ++i)
      if (r.Skewed(n, theta) < static_cast<uint64_t>(n / 10)) ++head;
    return static_cast<double>(head) / draws;
  };
  const double uniform = head_mass(0.0);
  const double mild = head_mass(0.5);
  const double hot = head_mass(0.9);
  EXPECT_NEAR(uniform, 0.10, 0.02);
  EXPECT_GT(mild, uniform + 0.05);
  EXPECT_GT(hot, mild + 0.05);
  // At theta 0.9 the head decile should dominate the distribution.
  EXPECT_GT(hot, 0.4);
}

}  // namespace
}  // namespace tpc
