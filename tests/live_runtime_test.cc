// Live-backend tests: the same protocol engines on real threads.
//
//  - LiveRuntime substrate: mailbox FIFO, timer fire, claim-on-run cancel.
//  - Sim/live equivalence: one PA commit + one abort driven through both
//    backends produce the same decisions, the same per-node durable
//    log-record sequences, the same stores, and the same lock-release
//    behavior (a follow-up writer is granted immediately on both).
//  - Live smoke: a batch of closed-loop commits completes atomically.
//  - Kill-and-recover: stop a cluster, rebuild it on the same directory,
//    and recover committed effects from the fsync'd files — the proof that
//    FileStorage's durability claim is real.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "harness/cluster.h"
#include "harness/live_cluster.h"
#include "wal/log_record.h"

namespace tpc {
namespace {

using harness::Cluster;
using harness::LiveCluster;
using harness::LiveClusterOptions;
using harness::LiveNode;
using harness::LiveNodeOptions;
using harness::NodeOptions;
using tm::Outcome;
using tm::ProtocolKind;

std::string FreshDir(const std::string& tag) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("tpc_live_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir.string();
}

// --- substrate ---------------------------------------------------------------

TEST(LiveRuntimeTest, MailboxFifoAndTimers) {
  runtime::LiveRuntime rt(runtime::LiveOptions{2, 100});
  runtime::LiveNodeRuntime* n = rt.AddNode("n");
  rt.Start();

  // Tasks posted from one thread run in order.
  std::vector<int> order;
  for (int i = 0; i < 100; ++i)
    n->Post(runtime::Task([&order, i] { order.push_back(i); }));
  rt.WaitIdle();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);

  // A short timer fires, on the owning node's context.
  std::promise<void> fired;
  n->Post(runtime::Task([n, &fired] {
    n->ArmTimer(2'000, [&fired] { fired.set_value(); });
  }));
  ASSERT_EQ(fired.get_future().wait_for(std::chrono::seconds(10)),
            std::future_status::ready);

  // Cancel before fire returns true and suppresses the callback.
  std::atomic<bool> ran{false};
  std::promise<bool> cancelled;
  n->Post(runtime::Task([n, &ran, &cancelled] {
    runtime::TimerId id = n->ArmTimer(60'000'000, [&ran] { ran = true; });
    cancelled.set_value(n->CancelTimer(id));
  }));
  EXPECT_TRUE(cancelled.get_future().get());
  rt.WaitIdle();
  rt.Stop();
  EXPECT_FALSE(ran.load());
}

// --- sim/live equivalence ----------------------------------------------------

struct NodeImage {
  std::vector<std::string> records;  ///< "type txn owner" in append order
  std::map<std::string, std::string, std::less<>> store;
};

std::vector<std::string> RecordSeq(std::string_view durable) {
  std::vector<std::string> out;
  for (const wal::LogRecord& r : wal::ScanLog(durable)) {
    out.push_back(std::string(wal::RecordTypeToString(r.type)) + " " +
                  std::to_string(r.txn) + " " + r.owner);
  }
  return out;
}

// Drives the scenario on the simulated cluster: txn1 commits across
// coord+sub1+sub2, txn2 (coord+sub1) aborts, then a follow-up write probes
// lock release. Returns per-node images plus the commit outcome.
std::map<std::string, NodeImage> RunScenarioSim(Outcome* commit_outcome,
                                                bool* followup_granted) {
  Cluster c;
  NodeOptions o;
  o.tm.protocol = ProtocolKind::kPresumedAbort;
  for (const char* n : {"coord", "sub1", "sub2"}) c.AddNode(n, o);
  c.Connect("coord", "sub1");
  c.Connect("coord", "sub2");
  for (const char* n : {"sub1", "sub2"}) {
    std::string name = n;
    c.tm(name).SetAppDataHandler(
        [&c, name](uint64_t txn, const net::NodeId&, std::string_view data) {
          c.tm(name).Write(txn, 0, std::string(data), "v@" + name,
                           [](Status st) { ASSERT_TRUE(st.ok()); });
        });
  }

  uint64_t txn1 = c.tm("coord").Begin();
  c.tm("coord").Write(txn1, 0, "ck", "cv",
                      [](Status st) { ASSERT_TRUE(st.ok()); });
  EXPECT_TRUE(c.tm("coord").SendWork(txn1, "sub1", "k1").ok());
  EXPECT_TRUE(c.tm("coord").SendWork(txn1, "sub2", "k2").ok());
  c.Drain();
  harness::DrivenCommit commit = c.CommitAndWait("coord", txn1);
  EXPECT_TRUE(commit.completed);
  *commit_outcome = commit.result.outcome;
  c.Drain();

  uint64_t txn2 = c.tm("coord").Begin();
  c.tm("coord").Write(txn2, 0, "ak", "av",
                      [](Status st) { ASSERT_TRUE(st.ok()); });
  EXPECT_TRUE(c.tm("coord").SendWork(txn2, "sub1", "k1").ok());
  c.Drain();
  c.tm("coord").AbortTxn(txn2);
  c.Drain();

  // Lock release: the aborted txn's locks are free again.
  uint64_t txn3 = c.tm("coord").Begin();
  bool granted = false;
  c.tm("coord").Write(txn3, 0, "ck", "x",
                      [&granted](Status st) { granted = st.ok(); });
  c.Drain();
  *followup_granted = granted;
  c.tm("coord").AbortTxn(txn3);
  c.Drain();

  std::map<std::string, NodeImage> images;
  for (const char* n : {"coord", "sub1", "sub2"}) {
    c.node(n).log().ForceAll(nullptr);
    c.Drain();
    NodeImage& img = images[n];
    img.records = RecordSeq(c.node(n).log().storage().durable());
    img.store = c.node(n).rm().store();
  }
  return images;
}

// The same scenario, live: every protocol call posted to the owning node.
std::map<std::string, NodeImage> RunScenarioLive(Outcome* commit_outcome,
                                                 bool* followup_granted) {
  LiveClusterOptions opts;
  opts.worker_threads = 3;
  opts.dir = FreshDir("equiv");
  LiveCluster c(opts);
  LiveNodeOptions o;
  o.tm.protocol = ProtocolKind::kPresumedAbort;
  for (const char* n : {"coord", "sub1", "sub2"}) c.AddNode(n, o);
  c.Connect("coord", "sub1");
  c.Connect("coord", "sub2");
  for (const char* n : {"sub1", "sub2"}) {
    std::string name = n;
    c.tm(name).SetAppDataHandler(
        [&c, name](uint64_t txn, const net::NodeId&, std::string_view data) {
          c.tm(name).Write(txn, 0, std::string(data), "v@" + name,
                           [](Status st) { ASSERT_TRUE(st.ok()); });
        });
  }
  c.Start();

  uint64_t txn1 = 0;
  c.RunOn("coord", [&c, &txn1] {
    txn1 = c.tm("coord").Begin();
    c.tm("coord").Write(txn1, 0, "ck", "cv",
                        [](Status st) { ASSERT_TRUE(st.ok()); });
    EXPECT_TRUE(c.tm("coord").SendWork(txn1, "sub1", "k1").ok());
    EXPECT_TRUE(c.tm("coord").SendWork(txn1, "sub2", "k2").ok());
  });
  c.WaitIdle();  // subs processed the app data

  std::promise<tm::CommitResult> committed;
  c.Post("coord", [&c, txn1, &committed] {
    c.tm("coord").Commit(txn1, [&committed](tm::CommitResult r) {
      committed.set_value(r);
    });
  });
  tm::CommitResult commit = committed.get_future().get();
  *commit_outcome = commit.outcome;

  uint64_t txn2 = 0;
  c.RunOn("coord", [&c, &txn2] {
    txn2 = c.tm("coord").Begin();
    c.tm("coord").Write(txn2, 0, "ak", "av",
                        [](Status st) { ASSERT_TRUE(st.ok()); });
    EXPECT_TRUE(c.tm("coord").SendWork(txn2, "sub1", "k1").ok());
  });
  c.WaitIdle();
  c.RunOn("coord", [&c, txn2] { c.tm("coord").AbortTxn(txn2); });
  // The abort fans out asynchronously; wait until every node forgot it.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  for (;;) {
    c.WaitIdle();
    bool known = false;
    for (const char* n : {"coord", "sub1", "sub2"}) {
      c.RunOn(n, [&c, n, txn2, &known] {
        if (c.tm(n).Knows(txn2)) known = true;
      });
    }
    if (!known) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      ADD_FAILURE() << "abort did not quiesce within the deadline";
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  bool granted = false;
  c.RunOn("coord", [&c, &granted] {
    uint64_t txn3 = c.tm("coord").Begin();
    c.tm("coord").Write(txn3, 0, "ck", "x",
                        [&granted](Status st) { granted = st.ok(); });
    c.tm("coord").AbortTxn(txn3);
  });
  c.WaitIdle();
  *followup_granted = granted;

  std::map<std::string, NodeImage> images;
  for (const char* n : {"coord", "sub1", "sub2"}) {
    std::promise<void> forced;
    c.Post(n, [&c, n, &forced] {
      c.node(n).log().ForceAll([&forced] { forced.set_value(); });
    });
    forced.get_future().wait();
    NodeImage& img = images[n];
    c.RunOn(n, [&c, n, &img] {
      img.records = RecordSeq(c.node(n).log().storage().durable());
      img.store = c.node(n).rm().store();
    });
  }
  c.Stop();
  return images;
}

TEST(SimLiveEquivalenceTest, SameDecisionsLogsAndStores) {
  Outcome sim_outcome = Outcome::kUnknown;
  Outcome live_outcome = Outcome::kUnknown;
  bool sim_granted = false;
  bool live_granted = false;
  std::map<std::string, NodeImage> sim =
      RunScenarioSim(&sim_outcome, &sim_granted);
  std::map<std::string, NodeImage> live =
      RunScenarioLive(&live_outcome, &live_granted);

  EXPECT_EQ(sim_outcome, Outcome::kCommitted);
  EXPECT_EQ(live_outcome, sim_outcome);
  EXPECT_TRUE(sim_granted);
  EXPECT_EQ(live_granted, sim_granted);
  for (const char* n : {"coord", "sub1", "sub2"}) {
    EXPECT_EQ(live[n].records, sim[n].records) << "log divergence at " << n;
    EXPECT_EQ(live[n].store, sim[n].store) << "store divergence at " << n;
  }
}

// --- live smoke --------------------------------------------------------------

void RunClosedLoopAtomicity(ProtocolKind protocol, const std::string& tag,
                            int txns) {
  LiveClusterOptions opts;
  opts.worker_threads = 4;
  opts.dir = FreshDir(tag);
  LiveCluster c(opts);
  LiveNodeOptions o;
  o.tm.protocol = protocol;
  // Paxos: the three nodes double as the 2F+1 acceptor set (F=1), so the
  // accept forces land on real files and the 2a/2b fan-out crosses real
  // mailboxes.
  if (tm::IsPaxos(protocol)) o.tm.acceptors = {"coord", "sub1", "sub2"};
  for (const char* n : {"coord", "sub1", "sub2"}) c.AddNode(n, o);
  c.Connect("coord", "sub1");
  c.Connect("coord", "sub2");
  if (tm::IsPaxos(protocol)) c.Connect("sub1", "sub2");
  for (const char* n : {"sub1", "sub2"}) {
    std::string name = n;
    c.tm(name).SetAppDataHandler(
        [&c, name](uint64_t txn, const net::NodeId&, std::string_view data) {
          c.tm(name).Write(txn, 0, std::string(data), "v" + std::to_string(txn),
                           [](Status st) { ASSERT_TRUE(st.ok()); });
        });
  }
  c.Start();

  const int kTxns = txns;
  for (int i = 0; i < kTxns; ++i) {
    uint64_t txn = 0;
    std::string key = "k" + std::to_string(i);
    c.RunOn("coord", [&c, &txn, &key] {
      txn = c.tm("coord").Begin();
      c.tm("coord").Write(txn, 0, "c_" + key, "cv",
                          [](Status st) { ASSERT_TRUE(st.ok()); });
      EXPECT_TRUE(c.tm("coord").SendWork(txn, "sub1", key).ok());
      EXPECT_TRUE(c.tm("coord").SendWork(txn, "sub2", key).ok());
    });
    c.WaitIdle();
    std::promise<tm::CommitResult> done;
    c.Post("coord", [&c, txn, &done] {
      c.tm("coord").Commit(txn, [&done](tm::CommitResult r) {
        done.set_value(r);
      });
    });
    tm::CommitResult r = done.get_future().get();
    ASSERT_EQ(r.outcome, Outcome::kCommitted) << "txn " << txn;
    ASSERT_FALSE(r.heuristic_damage);
    // Atomicity: a committed transaction's effects are present everywhere.
    std::string expect = "v" + std::to_string(txn);
    for (const char* n : {"sub1", "sub2"}) {
      c.RunOn(n, [&c, n, &key, &expect] {
        EXPECT_EQ(c.node(n).rm().Peek(key).value_or(""), expect);
      });
    }
  }
  c.Stop();
}

TEST(LiveClusterTest, ClosedLoopCommitsAreAtomic) {
  RunClosedLoopAtomicity(ProtocolKind::kPresumedAbort, "smoke", 25);
}

// The new protocol families run on the live runtime unchanged — same
// engine, real threads, real fsync. These are the cells the TSan CI job
// race-checks: the paxos acceptor state and the one-phase quiesce timer
// both live on the per-node worker, so a locking mistake in either shows
// up here.
TEST(LiveClusterTest, PaxosCommitClosedLoopIsAtomic) {
  RunClosedLoopAtomicity(ProtocolKind::kPaxosCommit, "live_paxos", 10);
}

TEST(LiveClusterTest, OnePhaseClosedLoopIsAtomic) {
  RunClosedLoopAtomicity(ProtocolKind::kOnePhase, "live_1pc", 10);
}

TEST(LiveClusterTest, OnePhaseLoglessClosedLoopIsAtomic) {
  RunClosedLoopAtomicity(ProtocolKind::kOnePhaseLogless, "live_1pc_ll", 10);
}

// --- kill and recover --------------------------------------------------------

TEST(LiveClusterTest, RecoversCommittedStateFromFiles) {
  const std::string dir = FreshDir("recover");
  constexpr int kTxns = 5;

  // Phase 1: commit kTxns transactions, force the log tails, stop.
  {
    LiveCluster c(LiveClusterOptions{2, 250, dir, true, 0});
    LiveNodeOptions o;
    o.tm.protocol = ProtocolKind::kPresumedAbort;
    c.AddNode("coord", o);
    c.AddNode("sub", o);
    c.Connect("coord", "sub");
    c.tm("sub").SetAppDataHandler(
        [&c](uint64_t txn, const net::NodeId&, std::string_view data) {
          c.tm("sub").Write(txn, 0, std::string(data),
                            "sv" + std::to_string(txn),
                            [](Status st) { ASSERT_TRUE(st.ok()); });
        });
    c.Start();
    for (int i = 0; i < kTxns; ++i) {
      uint64_t txn = 0;
      std::string key = "k" + std::to_string(i);
      c.RunOn("coord", [&c, &txn, &key] {
        txn = c.tm("coord").Begin();
        c.tm("coord").Write(txn, 0, "c_" + key, "cv",
                            [](Status st) { ASSERT_TRUE(st.ok()); });
        EXPECT_TRUE(c.tm("coord").SendWork(txn, "sub", key).ok());
      });
      c.WaitIdle();
      std::promise<tm::CommitResult> done;
      c.Post("coord", [&c, txn, &done] {
        c.tm("coord").Commit(txn, [&done](tm::CommitResult r) {
          done.set_value(r);
        });
      });
      ASSERT_EQ(done.get_future().get().outcome, Outcome::kCommitted);
    }
    for (const char* n : {"coord", "sub"}) {
      std::promise<void> forced;
      c.Post(n, [&c, n, &forced] {
        c.node(n).log().ForceAll([&forced] { forced.set_value(); });
      });
      forced.get_future().wait();
    }
    c.Stop();
  }

  // Phase 2: a fresh cluster on the same directory. FileStorage reloads the
  // fsync'd files; crash-then-restart replays them into the RMs.
  {
    LiveCluster c(LiveClusterOptions{2, 250, dir, true, 0});
    LiveNodeOptions o;
    o.tm.protocol = ProtocolKind::kPresumedAbort;
    c.AddNode("coord", o);
    c.AddNode("sub", o);
    c.Connect("coord", "sub");
    c.Start();
    for (const char* n : {"coord", "sub"}) {
      c.RunOn(n, [&c, n] {
        LiveNode& node = c.node(n);
        node.tm().Crash();
        node.rm().Crash();
        node.log().Crash();
        node.tm().Restart();
      });
    }
    c.WaitIdle();
    // Every committed transaction's effects came back from disk.
    c.RunOn("sub", [&c] {
      for (int i = 0; i < kTxns; ++i) {
        std::string key = "k" + std::to_string(i);
        std::string got = c.node("sub").rm().Peek(key).value_or("");
        EXPECT_TRUE(got.rfind("sv", 0) == 0) << key << " -> " << got;
      }
    });
    c.RunOn("coord", [&c] {
      for (int i = 0; i < kTxns; ++i) {
        std::string key = "c_k" + std::to_string(i);
        EXPECT_EQ(c.node("coord").rm().Peek(key).value_or(""), "cv");
      }
    });
    c.Stop();
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tpc
