// Property tests: the simulation's measured costs equal the paper's
// closed-form formulas across the (variant, n, m) parameter space, not just
// at the paper's example point; and Table 4 holds for every even r.

#include <gtest/gtest.h>

#include <tuple>

#include "analysis/cost_model.h"
#include "harness/scenarios.h"

namespace tpc {
namespace {

using analysis::CostTriplet;
using analysis::Table3Cost;
using analysis::Table3Variant;
using analysis::Table3VariantName;
using analysis::Table4Cost;
using analysis::Table4Variant;

class Table3PropertyTest
    : public ::testing::TestWithParam<
          std::tuple<Table3Variant, uint64_t, uint64_t>> {};

TEST_P(Table3PropertyTest, MeasuredEqualsFormula) {
  auto [variant, n, m] = GetParam();
  if (m > n - 1) GTEST_SKIP() << "m must not exceed n-1";
  harness::ScenarioResult run = harness::RunTable3Scenario(variant, n, m);
  ASSERT_TRUE(run.completed) << Table3VariantName(variant);
  EXPECT_EQ(run.result.outcome, tm::Outcome::kCommitted);
  CostTriplet paper = Table3Cost(variant, n, m);
  EXPECT_EQ(run.measured.flows, paper.flows) << Table3VariantName(variant);
  EXPECT_EQ(run.measured.writes, paper.writes) << Table3VariantName(variant);
  EXPECT_EQ(run.measured.forced, paper.forced) << Table3VariantName(variant);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Table3PropertyTest,
    ::testing::Combine(
        ::testing::Values(Table3Variant::kBasic2PC, Table3Variant::kPaReadOnly,
                          Table3Variant::kPaLastAgent,
                          Table3Variant::kPaUnsolicitedVote,
                          Table3Variant::kPaLeaveOut,
                          Table3Variant::kPaVoteReliable,
                          Table3Variant::kPaWaitForOutcome,
                          Table3Variant::kPaSharedLogs,
                          Table3Variant::kPaLongLocks),
        ::testing::Values<uint64_t>(2, 3, 5, 11),
        ::testing::Values<uint64_t>(0, 1, 4)));

class Table4PropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Table4PropertyTest, AllVariantsMatchFormulas) {
  const uint64_t r = GetParam();
  for (auto variant : {Table4Variant::kBasic2PC, Table4Variant::kLongLocks,
                       Table4Variant::kLongLocksLastAgent}) {
    CostTriplet measured = harness::RunTable4Scenario(variant, r);
    CostTriplet paper = Table4Cost(variant, r);
    EXPECT_EQ(measured.flows, paper.flows)
        << analysis::Table4VariantName(variant) << " r=" << r;
    EXPECT_EQ(measured.writes, paper.writes)
        << analysis::Table4VariantName(variant) << " r=" << r;
    EXPECT_EQ(measured.forced, paper.forced)
        << analysis::Table4VariantName(variant) << " r=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Table4PropertyTest,
                         ::testing::Values<uint64_t>(2, 4, 12));

TEST(Table2PropertyTest, AllRowsMatchReconstructedTable) {
  auto expected = analysis::Table2Expected();
  auto measured = harness::RunTable2Scenarios();
  ASSERT_EQ(expected.size(), measured.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(measured[i].coordinator, expected[i].coordinator)
        << expected[i].label;
    EXPECT_EQ(measured[i].subordinate, expected[i].subordinate)
        << expected[i].label;
  }
}

}  // namespace
}  // namespace tpc
