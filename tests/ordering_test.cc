// Ordering and robustness invariants that the design document claims:
// PN's forced END strictly precedes its ack; repeated crashes during
// recovery still converge; Presumed Commit composes with the last-agent
// optimization.

#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace tpc {
namespace {

using harness::Cluster;
using harness::NodeOptions;
using tm::Outcome;
using tm::ProtocolKind;

void Writer(Cluster& c, const std::string& node) {
  c.tm(node).SetAppDataHandler(
      [&c, node](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm(node).Write(txn, 0, node + "_key", "v",
                         [](Status st) { ASSERT_TRUE(st.ok()); });
      });
}

// --- PN: END is forced before the ack leaves --------------------------------

TEST(PnOrderingTest, EndForcedStrictlyBeforeAckSent) {
  Cluster c;
  NodeOptions options;
  options.tm.protocol = ProtocolKind::kPresumedNothing;
  c.AddNode("coord", options);
  c.AddNode("sub", options);
  c.Connect("coord", "sub");
  Writer(c, "sub");
  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.RunFor(sim::kSecond);
  auto commit = c.CommitAndWait("coord", txn);
  ASSERT_TRUE(commit.completed);
  c.RunFor(sim::kSecond);

  // Find the sub's END force and its ACK send in the trace: the END force
  // must complete no later than the ACK leaves (PN's "never re-ask after
  // acking" requirement — DESIGN.md §3).
  sim::Time end_forced_at = -1;
  sim::Time ack_sent_at = -1;
  for (const auto& entry : c.ctx().trace().entries()) {
    if (entry.txn != txn) continue;
    if (entry.kind == sim::TraceKind::kLogForce && entry.node == "sub" &&
        entry.detail == "tm.end") {
      end_forced_at = entry.at;
    }
    if (entry.kind == sim::TraceKind::kSend && entry.node == "sub" &&
        entry.detail.find("ACK") != std::string::npos) {
      ack_sent_at = entry.at;
    }
  }
  ASSERT_GE(end_forced_at, 0) << "PN subordinate never forced its END";
  ASSERT_GE(ack_sent_at, 0) << "PN subordinate never acked";
  // The force *request* is traced at append time; the ack goes out only
  // from the force-completion callback, i.e. after the device delay.
  EXPECT_GE(ack_sent_at, end_forced_at + 2 * sim::kMillisecond);
}

TEST(PaOrderingTest, AckPrecedesNonForcedEnd) {
  // The contrast: PA's END is non-forced and written after the ack — one
  // fewer force on the subordinate's critical path.
  Cluster c;
  c.AddNode("coord", {});
  c.AddNode("sub", {});
  c.Connect("coord", "sub");
  Writer(c, "sub");
  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.RunFor(sim::kSecond);
  auto commit = c.CommitAndWait("coord", txn);
  ASSERT_TRUE(commit.completed);
  c.RunFor(sim::kSecond);

  bool end_seen_forced = false;
  for (const auto& entry : c.ctx().trace().entries()) {
    if (entry.txn == txn && entry.node == "sub" &&
        entry.detail == "tm.end" &&
        entry.kind == sim::TraceKind::kLogForce) {
      end_seen_forced = true;
    }
  }
  EXPECT_FALSE(end_seen_forced);
}

// --- Repeated crashes during recovery -----------------------------------------

TEST(DoubleCrashTest, CrashDuringRecoveryStillConverges) {
  Cluster c;
  NodeOptions options;
  options.tm.inquiry_delay = 5 * sim::kSecond;
  c.AddNode("coord", options);
  c.AddNode("sub", options);
  c.Connect("coord", "sub");
  Writer(c, "sub");
  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.RunFor(sim::kSecond);

  c.ctx().failures().ArmCrash("coord", "after_commit_force");
  auto commit = c.StartCommit("coord", txn);
  c.RunFor(10 * sim::kSecond);
  // First recovery attempt; crash again mid-recovery, twice.
  for (int i = 0; i < 2; ++i) {
    c.node("coord").Restart();
    c.RunFor(50 * sim::kMillisecond);  // recovery just began resending
    c.ctx().failures().CrashNow("coord");
    c.RunFor(5 * sim::kSecond);
  }
  c.node("coord").Restart();
  c.RunFor(300 * sim::kSecond);

  EXPECT_EQ(c.tm("coord").View(txn).outcome, Outcome::kCommitted);
  EXPECT_EQ(c.tm("sub").View(txn).outcome, Outcome::kCommitted);
  EXPECT_EQ(c.node("coord").rm().Peek("k").value_or(""), "v");
  EXPECT_EQ(c.node("sub").rm().Peek("sub_key").value_or(""), "v");
  EXPECT_TRUE(c.Audit(txn).consistent);
}

TEST(DoubleCrashTest, BothSidesCrashRepeatedlyAndConverge) {
  Cluster c;
  NodeOptions options;
  options.tm.inquiry_delay = 5 * sim::kSecond;
  options.tm.recovery_retry_interval = 10 * sim::kSecond;
  c.AddNode("coord", options);
  c.AddNode("sub", options);
  c.Connect("coord", "sub");
  Writer(c, "sub");
  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.RunFor(sim::kSecond);

  // The coordinator crashes the instant its commit record is durable (the
  // Commit message never leaves); the in-doubt subordinate then crashes
  // too, twice, before anyone recovers fully.
  c.ctx().failures().ArmCrash("coord", "after_commit_force");
  auto commit = c.StartCommit("coord", txn);
  c.RunFor(10 * sim::kSecond);
  ASSERT_FALSE(c.tm("coord").IsUp());
  ASSERT_EQ(c.tm("sub").InDoubtCount(), 1u);
  c.ctx().failures().CrashNow("sub");
  c.RunFor(2 * sim::kSecond);
  c.node("sub").Restart();  // recovers in doubt, starts inquiring
  c.RunFor(7 * sim::kSecond);
  c.ctx().failures().CrashNow("sub");  // ...and dies again mid-inquiry
  c.RunFor(2 * sim::kSecond);
  c.node("sub").Restart();
  c.node("coord").Restart();
  c.RunFor(300 * sim::kSecond);

  EXPECT_TRUE(c.Audit(txn).consistent);
  EXPECT_FALSE(c.Audit(txn).any_in_doubt);
  // The coordinator's commit record was forced before its crash, so the
  // outcome is commit everywhere.
  EXPECT_EQ(c.tm("sub").View(txn).outcome, Outcome::kCommitted);
  EXPECT_EQ(c.node("sub").rm().Peek("sub_key").value_or(""), "v");
}

// --- Presumed Commit composes with last agent -----------------------------------

TEST(PcLastAgentTest, DelegatedDecisionUnderPc) {
  Cluster c;
  NodeOptions options;
  options.tm.protocol = ProtocolKind::kPresumedCommit;
  options.tm.last_agent_opt = true;
  c.AddNode("coord", options);
  c.AddNode("sub", options);
  c.Connect("coord", "sub", {.last_agent_candidate = true}, {});
  Writer(c, "sub");
  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.RunFor(sim::kSecond);
  auto commit = c.CommitAndWait("coord", txn);
  c.RunFor(sim::kSecond);
  ASSERT_TRUE(commit.completed);
  EXPECT_EQ(commit.result.outcome, Outcome::kCommitted);
  EXPECT_EQ(c.node("sub").rm().Peek("sub_key").value_or(""), "v");
  EXPECT_EQ(c.node("coord").rm().Peek("k").value_or(""), "v");
  EXPECT_TRUE(c.Audit(txn).consistent);
  // Still two flows: the delegation vote and the decision.
  EXPECT_EQ(c.TotalCost(txn).flows_sent, 2u);

  // And the PC safety net behind it: crash the initiator after everything;
  // its (non-forced under PC) commit record may be gone, and recovery must
  // still converge to commit via the last agent / presumption.
  c.ctx().failures().CrashNow("coord");
  c.node("coord").Restart();
  c.RunFor(120 * sim::kSecond);
  EXPECT_EQ(c.node("coord").rm().Peek("k").value_or(""), "v");
  EXPECT_TRUE(c.Audit(txn).consistent);
}

}  // namespace
}  // namespace tpc
