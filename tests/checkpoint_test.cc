// Checkpointing and log truncation: store snapshots supersede the log
// prefix, recovery replays only post-checkpoint records, and the safety
// preconditions hold.

#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace tpc {
namespace {

using harness::Cluster;
using harness::NodeOptions;

void SubWritesOnData(Cluster& c, const std::string& node) {
  c.tm(node).SetAppDataHandler(
      [&c, node](uint64_t txn, const net::NodeId&, std::string_view v) {
        c.tm(node).Write(txn, 0, "k" + std::string(v), std::string(v),
                         [](Status st) { ASSERT_TRUE(st.ok()); });
      });
}

// Commits one two-node transaction writing key "k<v>" = v on both sides.
void CommitOne(Cluster& c, const std::string& v) {
  uint64_t txn = c.tm("a").Begin();
  c.tm("a").Write(txn, 0, "k" + v, v, [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("a").SendWork(txn, "b", v).ok());
  c.RunFor(100 * sim::kMillisecond);
  auto commit = c.CommitAndWait("a", txn);
  ASSERT_TRUE(commit.completed);
  ASSERT_EQ(commit.result.outcome, tm::Outcome::kCommitted);
  c.RunFor(100 * sim::kMillisecond);
}

TEST(CheckpointTest, StateSurvivesCrashViaSnapshotAlone) {
  Cluster c;
  c.AddNode("a", {});
  c.AddNode("b", {});
  c.Connect("a", "b");
  SubWritesOnData(c, "b");
  for (int i = 0; i < 5; ++i) CommitOne(c, std::to_string(i));

  bool done = false;
  ASSERT_TRUE(c.node("a").Checkpoint([&] { done = true; }).ok());
  c.RunFor(sim::kSecond);
  ASSERT_TRUE(done);

  // The pre-checkpoint log content is gone...
  EXPECT_GT(c.node("a").log().storage().base_offset(), 0u);
  // ...yet a crash+restart rebuilds the full store from the snapshot.
  c.ctx().failures().CrashNow("a");
  c.node("a").Restart();
  c.RunFor(sim::kSecond);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(c.node("a").rm().Peek("k" + std::to_string(i)).value_or(""),
              std::to_string(i));
  }
}

TEST(CheckpointTest, PostCheckpointTransactionsReplayOnTop) {
  Cluster c;
  c.AddNode("a", {});
  c.AddNode("b", {});
  c.Connect("a", "b");
  SubWritesOnData(c, "b");
  CommitOne(c, "old");

  bool done = false;
  ASSERT_TRUE(c.node("a").Checkpoint([&] { done = true; }).ok());
  c.RunFor(sim::kSecond);
  ASSERT_TRUE(done);

  CommitOne(c, "new");
  c.ctx().failures().CrashNow("a");
  c.node("a").Restart();
  c.RunFor(sim::kSecond);
  EXPECT_EQ(c.node("a").rm().Peek("kold").value_or(""), "old");
  EXPECT_EQ(c.node("a").rm().Peek("knew").value_or(""), "new");
}

TEST(CheckpointTest, RefusedWhileTransactionsInFlight) {
  Cluster c;
  c.AddNode("a", {});
  uint64_t txn = c.tm("a").Begin();
  c.tm("a").Write(txn, 0, "k", "v", [](Status st) { ASSERT_TRUE(st.ok()); });
  EXPECT_TRUE(c.node("a").Checkpoint(nullptr).IsFailedPrecondition());
  auto commit = c.CommitAndWait("a", txn);
  ASSERT_TRUE(commit.completed);
  c.RunFor(sim::kSecond);
  EXPECT_TRUE(c.node("a").Checkpoint(nullptr).ok());
}

TEST(CheckpointTest, RefusedOnSharedLogNodes) {
  Cluster c;
  c.AddNode("host", {});
  NodeOptions member_options;
  member_options.shared_log_host = "host";
  c.AddNode("member", member_options);
  EXPECT_TRUE(c.node("member").Checkpoint(nullptr).IsFailedPrecondition());
}

TEST(CheckpointTest, RepeatedCheckpointsKeepTruncating) {
  Cluster c;
  c.AddNode("a", {});
  c.AddNode("b", {});
  c.Connect("a", "b");
  SubWritesOnData(c, "b");
  uint64_t last_base = 0;
  for (int round = 0; round < 3; ++round) {
    CommitOne(c, "r" + std::to_string(round));
    bool done = false;
    ASSERT_TRUE(c.node("a").Checkpoint([&] { done = true; }).ok());
    c.RunFor(sim::kSecond);
    ASSERT_TRUE(done);
    uint64_t base = c.node("a").log().storage().base_offset();
    EXPECT_GT(base, last_base);
    last_base = base;
  }
  // Everything still recoverable.
  c.ctx().failures().CrashNow("a");
  c.node("a").Restart();
  c.RunFor(sim::kSecond);
  for (int round = 0; round < 3; ++round) {
    std::string v = "r" + std::to_string(round);
    EXPECT_EQ(c.node("a").rm().Peek("k" + v).value_or(""), v);
  }
}

TEST(CheckpointTest, MultipleRmsSnapshotTogether) {
  Cluster c;
  NodeOptions options;
  options.num_rms = 3;
  c.AddNode("a", options);
  uint64_t txn = c.tm("a").Begin();
  for (size_t i = 0; i < 3; ++i) {
    c.tm("a").Write(txn, i, "k", "v" + std::to_string(i),
                    [](Status st) { ASSERT_TRUE(st.ok()); });
  }
  auto commit = c.CommitAndWait("a", txn);
  ASSERT_TRUE(commit.completed);
  c.RunFor(sim::kSecond);

  bool done = false;
  ASSERT_TRUE(c.node("a").Checkpoint([&] { done = true; }).ok());
  c.RunFor(sim::kSecond);
  ASSERT_TRUE(done);
  c.ctx().failures().CrashNow("a");
  c.node("a").Restart();
  c.RunFor(sim::kSecond);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(c.node("a").rm(i).Peek("k").value_or(""),
              "v" + std::to_string(i));
  }
}

}  // namespace
}  // namespace tpc
