// Paxos Commit and one-phase protocol families.
//
// Three layers:
//   1. PaxosAcceptor unit tests — ballot discipline and the majority-
//      intersection argument, on the pure state machine.
//   2. End-to-end Paxos Commit on the cluster harness: happy path,
//      coordinator takeover, and recovery idempotency under twice-restarted
//      nodes.
//   3. One-phase family: early-prepare flow, the prepare-constraint
//      (writes after the early prepare are rejected), and the logless
//      variant's force count.

#include <limits>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "rm/kv_resource_manager.h"
#include "tm/paxos_acceptor.h"
#include "tm/types.h"

namespace tpc {
namespace {

using harness::Cluster;
using harness::DrivenCommit;
using harness::NodeOptions;
using tm::PaxosAcceptor;
using tm::ProtocolKind;

// --- acceptor state machine -------------------------------------------------

TEST(PaxosAcceptorTest, BallotDiscipline) {
  PaxosAcceptor acc;
  const std::vector<std::string> cohort = {"c0", "s1"};

  // Ballot-0 self votes always land on a fresh transaction.
  EXPECT_TRUE(acc.Accept(7, "c0", 0, true, cohort, "c0"));
  EXPECT_TRUE(acc.Accept(7, "s1", 0, false, cohort, "c0"));

  // A promise at ballot 3 blocks anything below it...
  EXPECT_TRUE(acc.Promise(7, 3));
  EXPECT_FALSE(acc.Accept(7, "c0", 2, true, cohort, ""));
  EXPECT_FALSE(acc.Promise(7, 1));
  // ...but re-granting the same ballot is idempotent (message retries).
  EXPECT_TRUE(acc.Promise(7, 3));

  // An accept at the promised ballot overwrites the instance.
  EXPECT_TRUE(acc.Accept(7, "c0", 3, false, cohort, ""));
  const tm::AcceptorTxn* state = acc.Find(7);
  ASSERT_NE(state, nullptr);
  const tm::AcceptorInstance* inst = state->Find("c0");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(inst->ballot, 3u);
  EXPECT_FALSE(inst->prepared);
  EXPECT_EQ(acc.Promised(7), 3u);

  // Accept also raises the promise: ballot 5 accept, then 4 is stale.
  EXPECT_TRUE(acc.Accept(7, "c0", 5, true, cohort, ""));
  EXPECT_FALSE(acc.Promise(7, 4));
}

TEST(PaxosAcceptorTest, RecordsCohortAndBallotZeroLeader) {
  PaxosAcceptor acc;
  EXPECT_TRUE(acc.Accept(1, "s1", 0, true, {"c0", "s1"}, "c0"));
  const tm::AcceptorTxn* state = acc.Find(1);
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->leader0, "c0");
  EXPECT_EQ(state->cohort.size(), 2u);
  // A later, thinner cohort never shrinks the recorded one; a takeover
  // (ballot >= 1) never overwrites the ballot-0 leader.
  EXPECT_TRUE(acc.Accept(1, "s1", 2, true, {"s1"}, "s1"));
  EXPECT_EQ(acc.Find(1)->cohort.size(), 2u);
  EXPECT_EQ(acc.Find(1)->leader0, "c0");
}

// The safety core: two leaders at distinct ballots can never assemble
// accepted majorities for conflicting values of one instance, because the
// later leader's phase 1 majority intersects any earlier accepted majority.
TEST(PaxosAcceptorTest, MajorityIntersection) {
  PaxosAcceptor a, b, c;  // the 2F+1 = 3 acceptor set
  const std::vector<std::string> cohort = {"c0", "s1"};

  // Leader 1 (ballot 0, the participant itself) reaches a majority {a, b}
  // with Prepared before dying.
  EXPECT_TRUE(a.Accept(9, "s1", 0, true, cohort, "c0"));
  EXPECT_TRUE(b.Accept(9, "s1", 0, true, cohort, "c0"));

  // Leader 2 runs phase 1 at ballot 4 against any majority: it must see the
  // Prepared value at the intersection member and re-propose it.
  EXPECT_TRUE(b.Promise(9, 4));
  EXPECT_TRUE(c.Promise(9, 4));
  const tm::AcceptorInstance* seen = b.Find(9)->Find("s1");
  ASSERT_NE(seen, nullptr);
  EXPECT_TRUE(seen->prepared) << "intersection must expose the accepted value";

  // Had leader 1 reached only a minority {a}, leader 2's majority {b, c}
  // sees nothing — and leader 1 can no longer finish: its stale ballot is
  // rejected at every promised member.
  PaxosAcceptor x, y, z;
  EXPECT_TRUE(x.Accept(9, "s1", 0, true, cohort, "c0"));
  EXPECT_TRUE(y.Promise(9, 4));
  EXPECT_TRUE(z.Promise(9, 4));
  EXPECT_EQ(y.Find(9)->Find("s1"), nullptr);
  EXPECT_FALSE(y.Accept(9, "s1", 0, true, cohort, "c0"))
      << "the revoked leader must not complete a late majority";
  // Leader 2 fixes Aborted at {y, z}: 2 of 3 — decided, conflict-free.
  EXPECT_TRUE(y.Accept(9, "s1", 4, false, cohort, ""));
  EXPECT_TRUE(z.Accept(9, "s1", 4, false, cohort, ""));
}

TEST(PaxosAcceptorTest, SnapshotRoundTripsAndRejectsCorruption) {
  PaxosAcceptor acc;
  EXPECT_TRUE(acc.Accept(3, "c0", 0, true, {"c0", "s1"}, "c0"));
  EXPECT_TRUE(acc.Promise(3, 6));
  std::string snap;
  acc.EncodeSnapshot(3, &snap);

  PaxosAcceptor restored;
  ASSERT_TRUE(restored.RestoreSnapshot(3, snap).ok());
  EXPECT_EQ(restored.Promised(3), 6u);
  const tm::AcceptorInstance* inst = restored.Find(3)->Find("c0");
  ASSERT_NE(inst, nullptr);
  EXPECT_TRUE(inst->prepared);
  EXPECT_EQ(restored.Find(3)->leader0, "c0");

  // Truncations and trailing garbage must be rejected, never half-applied.
  for (size_t cut = 0; cut < snap.size(); ++cut) {
    PaxosAcceptor damaged;
    EXPECT_FALSE(damaged.RestoreSnapshot(3, snap.substr(0, cut)).ok());
  }
  PaxosAcceptor trailing;
  EXPECT_FALSE(trailing.RestoreSnapshot(3, snap + "x").ok());

  EXPECT_TRUE(PaxosAcceptor::IsMajority(2, 3));
  EXPECT_FALSE(PaxosAcceptor::IsMajority(1, 3));
  EXPECT_TRUE(PaxosAcceptor::IsMajority(3, 5));
  EXPECT_FALSE(PaxosAcceptor::IsMajority(2, 5));
}

TEST(PaxosAcceptorTest, SixtyFourBitBallotsNeverWrap) {
  // Dueling takeovers drive ballots up monotonically; near the top of the
  // 64-bit range the discipline must still hold — a promise at a huge
  // ballot can never be outbid by arithmetic that wrapped around.
  PaxosAcceptor acc;
  const uint64_t huge = std::numeric_limits<uint64_t>::max() - 3;
  EXPECT_TRUE(acc.Promise(1, huge));
  EXPECT_FALSE(acc.Promise(1, huge - 1));
  EXPECT_FALSE(acc.Accept(1, "c0", 5, true, {"c0", "s1"}, "c0"));
  EXPECT_TRUE(acc.Accept(1, "c0", huge, true, {"c0", "s1"}, "c0"));
  // Snapshots carry the full width.
  std::string snap;
  acc.EncodeSnapshot(1, &snap);
  PaxosAcceptor restored;
  ASSERT_TRUE(restored.RestoreSnapshot(1, snap).ok());
  EXPECT_FALSE(restored.Promise(1, huge - 1));
  EXPECT_TRUE(restored.Promise(1, huge));
}

TEST(PaxosAcceptorTest, EraseAndTombstoneReclaimState) {
  PaxosAcceptor acc;
  EXPECT_TRUE(acc.Accept(7, "c0", 0, true, {"c0", "s1"}, "c0"));
  EXPECT_FALSE(acc.HasAllInstances(7));  // s1's instance still missing
  EXPECT_TRUE(acc.Accept(7, "s1", 0, true, {"c0", "s1"}, "c0"));
  EXPECT_TRUE(acc.HasAllInstances(7));
  const size_t held = acc.ApproxBytes();

  // Erase reclaims; the empty snapshot is the replayable tombstone.
  EXPECT_TRUE(acc.Erase(7));
  EXPECT_FALSE(acc.Erase(7));  // idempotent
  EXPECT_EQ(acc.txn_count(), 0u);
  EXPECT_LT(acc.ApproxBytes(), held);

  // Replaying live state then the tombstone (last-record-wins) ends
  // reclaimed, not resurrected as empty state.
  PaxosAcceptor replay;
  EXPECT_TRUE(replay.Accept(7, "c0", 0, true, {"c0", "s1"}, "c0"));
  std::string live;
  replay.EncodeSnapshot(7, &live);
  std::string tomb;
  PaxosAcceptor empty;
  empty.EncodeSnapshot(7, &tomb);  // unknown txn encodes the empty snapshot
  PaxosAcceptor target;
  ASSERT_TRUE(target.RestoreSnapshot(7, live).ok());
  EXPECT_EQ(target.txn_count(), 1u);
  ASSERT_TRUE(target.RestoreSnapshot(7, tomb).ok());
  EXPECT_EQ(target.txn_count(), 0u);
}

// --- end-to-end Paxos Commit ------------------------------------------------

struct PaxosCluster {
  Cluster c{1};
  uint64_t txn = 0;

  explicit PaxosCluster(bool acceptor_only_third = true) {
    NodeOptions base;
    base.tm.protocol = ProtocolKind::kPaxosCommit;
    base.tm.acceptors = {"c0", "s1", "a2"};
    base.tm.vote_timeout = 5 * sim::kSecond;
    base.tm.inquiry_delay = 4 * sim::kSecond;
    for (const char* n : {"c0", "s1", "a2"}) {
      NodeOptions options = base;
      if (acceptor_only_third && std::string(n) == "a2") options.num_rms = 0;
      c.AddNode(n, options);
    }
    c.Connect("c0", "s1");
    c.Connect("c0", "a2");
    c.Connect("s1", "a2");
    c.tm("s1").SetAppDataHandler(
        [this](uint64_t t, const net::NodeId&, std::string_view) {
          c.tm("s1").Write(t, 0, "k_s1", "v", [](Status) {});
        });
  }

  void StartWorkload() {
    txn = c.tm("c0").Begin();
    c.tm("c0").Write(txn, 0, "k_c0", "v", [](Status) {});
    (void)c.tm("c0").SendWork(txn, "s1");
    c.RunFor(sim::kSecond);
  }
};

TEST(PaxosCommitTest, HappyPathCommits) {
  PaxosCluster f;
  f.StartWorkload();
  const DrivenCommit r = f.c.CommitAndWait("c0", f.txn, 60 * sim::kSecond);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.result.outcome, tm::Outcome::kCommitted);
  EXPECT_EQ(f.c.tm("s1").View(f.txn).outcome, tm::Outcome::kCommitted);
  EXPECT_TRUE(f.c.node("s1").rm().Peek("k_s1").ok());
  const harness::TxnAudit audit = f.c.Audit(f.txn);
  EXPECT_TRUE(audit.consistent);
  EXPECT_FALSE(audit.any_in_doubt);
}

TEST(PaxosCommitTest, NoVoteAborts) {
  PaxosCluster f;
  f.StartWorkload();
  f.c.node("s1").rm().FailNextPrepare();
  const DrivenCommit r = f.c.CommitAndWait("c0", f.txn, 60 * sim::kSecond);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.result.outcome, tm::Outcome::kAborted);
  EXPECT_FALSE(f.c.node("s1").rm().Peek("k_s1").ok());
  EXPECT_FALSE(f.c.node("c0").rm().Peek("k_c0").ok());
}

// Coordinator dies right after fanning out its own Prepared vote: every
// instance is Prepared at the acceptors, so the subordinate's takeover must
// finish the consensus with COMMIT — this is the window where basic 2PC
// blocks until the coordinator returns.
TEST(PaxosCommitTest, SubordinateTakeoverCommitsAfterCoordinatorCrash) {
  PaxosCluster f;
  f.StartWorkload();
  f.c.ctx().failures().ArmCrash("c0", "root.after_paxos_vote_send", 1);
  auto commit = f.c.StartCommit("c0", f.txn);
  f.c.RunFor(20 * sim::kSecond);  // c0 stays down the whole time
  EXPECT_FALSE(f.c.tm("c0").IsUp());

  // s1 resolved without the coordinator.
  EXPECT_EQ(f.c.tm("s1").View(f.txn).outcome, tm::Outcome::kCommitted);
  EXPECT_TRUE(f.c.node("s1").rm().Peek("k_s1").ok());

  // The coordinator recovers in doubt from its prepared record, re-joins
  // the consensus, and lands on the same outcome.
  f.c.node("c0").Restart();
  f.c.RunFor(20 * sim::kSecond);
  EXPECT_EQ(f.c.tm("c0").View(f.txn).outcome, tm::Outcome::kCommitted);
  EXPECT_TRUE(f.c.node("c0").rm().Peek("k_c0").ok());
  EXPECT_TRUE(f.c.Audit(f.txn).consistent);
}

// Coordinator dies before its own vote: no acceptor ever saw the root's
// instance, so the takeover's free choice fixes Aborted — and the recovered
// root (no prepared record) converges on abort too.
TEST(PaxosCommitTest, TakeoverAbortsUnvotedCoordinatorInstance) {
  PaxosCluster f;
  f.StartWorkload();
  f.c.ctx().failures().ArmCrash("c0", "root.after_prepare_send", 1);
  auto commit = f.c.StartCommit("c0", f.txn);
  f.c.RunFor(20 * sim::kSecond);
  f.c.node("c0").Restart();
  f.c.RunFor(20 * sim::kSecond);
  EXPECT_EQ(f.c.tm("s1").View(f.txn).outcome, tm::Outcome::kAborted);
  EXPECT_FALSE(f.c.node("s1").rm().Peek("k_s1").ok());
  EXPECT_FALSE(f.c.node("c0").rm().Peek("k_c0").ok());
}

// Recovery idempotency under twice-restarted nodes: crash + restart every
// node twice after the commit resolves; the durable outcome and stores must
// be identical after each round, and no node may regress to in-doubt.
TEST(PaxosCommitTest, RecoveryIdempotentUnderDoubleRestart) {
  PaxosCluster f;
  f.StartWorkload();
  const DrivenCommit r = f.c.CommitAndWait("c0", f.txn, 60 * sim::kSecond);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.result.outcome, tm::Outcome::kCommitted);

  for (int round = 0; round < 2; ++round) {
    for (const char* n : {"c0", "s1", "a2"}) {
      if (f.c.tm(n).IsUp()) f.c.ctx().failures().CrashNow(n);
    }
    for (const char* n : {"c0", "s1", "a2"}) {
      f.c.ctx().failures().RestartNow(n);
    }
    f.c.RunFor(20 * sim::kSecond);
    EXPECT_EQ(f.c.tm("c0").View(f.txn).outcome, tm::Outcome::kCommitted)
        << "round " << round;
    EXPECT_EQ(f.c.tm("s1").View(f.txn).outcome, tm::Outcome::kCommitted)
        << "round " << round;
    ASSERT_TRUE(f.c.node("c0").rm().Peek("k_c0").ok()) << "round " << round;
    ASSERT_TRUE(f.c.node("s1").rm().Peek("k_s1").ok()) << "round " << round;
    EXPECT_EQ(f.c.tm("s1").InDoubtCount(), 0u) << "round " << round;
    EXPECT_EQ(f.c.tm("c0").InDoubtCount(), 0u) << "round " << round;
  }
}

// Satellite (a): two cohort members duel for the takeover across >= 3
// attempts each and still converge on one decision. The partition stalls
// both leaders (self-promise only, no majority), so the retry timer keeps
// raising attempts; healing the partition lets the duel resolve. The 64-bit
// saturating ballot arithmetic guarantees attempts never collide or wrap.
TEST(PaxosCommitTest, DuelingTakeoversConvergeOnOneDecision) {
  PaxosCluster f;
  f.StartWorkload();
  f.c.ctx().failures().ArmCrash("c0", "root.after_paxos_vote_send", 1);
  f.c.StartCommit("c0", f.txn);
  f.c.RunFor(100 * sim::kMillisecond);  // 2a fan-outs reach the acceptors
  EXPECT_FALSE(f.c.tm("c0").IsUp());

  // Partition every link, then bring c0 back: both prepared cohort members
  // (the recovered root and the stuck subordinate) start takeovers that
  // cannot reach a majority.
  const char* links[][2] = {{"c0", "s1"}, {"c0", "a2"}, {"s1", "a2"}};
  for (const auto& l : links) f.c.network().SetLinkDown(l[0], l[1], true);
  f.c.node("c0").Restart();
  f.c.RunFor(25 * sim::kSecond);  // several failed attempts on each side

  size_t c0_attempts = 0;
  size_t s1_attempts = 0;
  f.c.ctx().trace().ForEach(
      [](const sim::TraceEntry& e) {
        return e.detail.find("paxos takeover") != std::string::npos;
      },
      [&](const sim::TraceEntry& e) {
        if (e.node == "c0") ++c0_attempts;
        if (e.node == "s1") ++s1_attempts;
      });
  EXPECT_GE(c0_attempts, 3u) << "root should keep re-bidding";
  EXPECT_GE(s1_attempts, 3u) << "subordinate should keep re-bidding";

  for (const auto& l : links) f.c.network().SetLinkDown(l[0], l[1], false);
  f.c.RunFor(30 * sim::kSecond);

  // One decision, converged everywhere: every instance was Prepared before
  // the crash, so it must be commit.
  EXPECT_EQ(f.c.tm("c0").View(f.txn).outcome, tm::Outcome::kCommitted);
  EXPECT_EQ(f.c.tm("s1").View(f.txn).outcome, tm::Outcome::kCommitted);
  EXPECT_TRUE(f.c.node("c0").rm().Peek("k_c0").ok());
  EXPECT_TRUE(f.c.node("s1").rm().Peek("k_s1").ok());
  const harness::TxnAudit audit = f.c.Audit(f.txn);
  EXPECT_TRUE(audit.consistent);
  EXPECT_FALSE(audit.any_in_doubt);
}

// Satellite (c): a bundled 2b that arrives after the leader already decided
// (slow acceptor; the majority was reached without it) must be dropped
// idempotently — no second decision fan-out, no state resurrection.
TEST(PaxosCommitTest, LateAcceptorReplyAfterDecisionIsDropped) {
  PaxosCluster f;
  // a2 is two seconds away in each direction: its bundled 2b lands at the
  // coordinator well after {c0, s1} formed the majority, decided, fanned
  // out, collected acks, and forgot the transaction.
  f.c.network().SetLinkLatency("c0", "a2", 2 * sim::kSecond);
  f.c.network().SetLinkLatency("s1", "a2", 2 * sim::kSecond);
  f.StartWorkload();
  const auto count_decisions = [&f] {
    size_t n = 0;
    f.c.ctx().trace().ForEach(
        [](const sim::TraceEntry& e) {
          return e.kind == sim::TraceKind::kSend && e.node == "c0" &&
                 e.peer == "s1" &&
                 e.detail.find("COMMIT") != std::string::npos;
        },
        [&n](const sim::TraceEntry&) { ++n; });
    return n;
  };
  const DrivenCommit r = f.c.CommitAndWait("c0", f.txn, 60 * sim::kSecond);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.result.outcome, tm::Outcome::kCommitted);
  const size_t decisions_at_commit = count_decisions();

  f.c.RunFor(30 * sim::kSecond);  // the stragglers arrive and must be eaten

  EXPECT_EQ(count_decisions(), decisions_at_commit)
      << "the late 2b re-entered decision fan-out";
  EXPECT_EQ(f.c.tm("c0").View(f.txn).outcome, tm::Outcome::kCommitted);
  EXPECT_EQ(f.c.tm("s1").View(f.txn).outcome, tm::Outcome::kCommitted);
  EXPECT_TRUE(f.c.Audit(f.txn).consistent);
}

// Satellite (b): END-driven reclamation. A long closed loop of decided
// transactions must not accumulate acceptor state anywhere — the decision
// owner reclaims at Forget, cohort acceptors on the piggybacked kPaxosEnd,
// so at any quiescent point each node holds at most the not-yet-hinted tail
// (the most recent transaction).
TEST(PaxosCommitTest, AcceptorStateIsGarbageCollectedAcrossClosedLoop) {
  PaxosCluster f;
  size_t a2_bytes_early = 0;
  for (int i = 0; i < 30; ++i) {
    f.StartWorkload();
    const DrivenCommit r = f.c.CommitAndWait("c0", f.txn, 60 * sim::kSecond);
    ASSERT_TRUE(r.completed);
    ASSERT_EQ(r.result.outcome, tm::Outcome::kCommitted) << "iteration " << i;
    // The owner reclaims its own state at Forget; peers lag by at most the
    // buffered kPaxosEnd, which rides the next transaction's traffic.
    EXPECT_EQ(f.c.tm("c0").AcceptorTxnCount(), 0u) << "iteration " << i;
    EXPECT_LE(f.c.tm("s1").AcceptorTxnCount(), 1u) << "iteration " << i;
    EXPECT_LE(f.c.tm("a2").AcceptorTxnCount(), 1u) << "iteration " << i;
    if (i == 4) a2_bytes_early = f.c.tm("a2").ApproxBytes();
  }
  // Bounded memory on the acceptor-only node: growth across the last 25
  // decided transactions is per-txn archive metadata only, far below what
  // 25 leaked AcceptorTxn entries (cohort + instance vectors + strings)
  // would cost.
  const size_t a2_bytes_late = f.c.tm("a2").ApproxBytes();
  EXPECT_LT(a2_bytes_late, a2_bytes_early + 25 * 200)
      << "acceptor-only node keeps per-txn state after resolution";
}

// --- one-phase family -------------------------------------------------------

struct OnePhaseCluster {
  Cluster c{1};
  uint64_t txn = 0;

  explicit OnePhaseCluster(ProtocolKind protocol) {
    NodeOptions base;
    base.tm.protocol = protocol;
    base.tm.vote_timeout = 5 * sim::kSecond;
    c.AddNode("c0", base);
    c.AddNode("s1", base);
    c.Connect("c0", "s1");
    c.tm("s1").SetAppDataHandler(
        [this](uint64_t t, const net::NodeId&, std::string_view) {
          c.tm("s1").Write(t, 0, "k_s1", "v", [](Status) {});
        });
  }

  void StartWorkload() {
    txn = c.tm("c0").Begin();
    c.tm("c0").Write(txn, 0, "k_c0", "v", [](Status) {});
    (void)c.tm("c0").SendWork(txn, "s1");
    c.RunFor(sim::kSecond);
  }
};

TEST(OnePhaseTest, CommitsWithoutExplicitPrepare) {
  OnePhaseCluster f(ProtocolKind::kOnePhase);
  f.StartWorkload();
  const DrivenCommit r = f.c.CommitAndWait("c0", f.txn, 60 * sim::kSecond);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.result.outcome, tm::Outcome::kCommitted);
  EXPECT_TRUE(f.c.node("s1").rm().Peek("k_s1").ok());
  // The whole point: no Prepare request ever crossed the wire.
  size_t prepares = 0;
  f.c.ctx().trace().ForEach(
      [](const sim::TraceEntry& e) {
        return e.kind == sim::TraceKind::kSend &&
               e.detail.find("prepare") != std::string::npos;
      },
      [&prepares](const sim::TraceEntry&) { ++prepares; });
  EXPECT_EQ(prepares, 0u) << "one-phase commit must not send Prepare";
}

TEST(OnePhaseTest, LoglessVariantSkipsThePreparedForce) {
  tm::TxnCost with_log, logless;
  for (ProtocolKind p :
       {ProtocolKind::kOnePhase, ProtocolKind::kOnePhaseLogless}) {
    OnePhaseCluster f(p);
    f.StartWorkload();
    const DrivenCommit r = f.c.CommitAndWait("c0", f.txn, 60 * sim::kSecond);
    ASSERT_TRUE(r.completed);
    ASSERT_EQ(r.result.outcome, tm::Outcome::kCommitted);
    (p == ProtocolKind::kOnePhase ? with_log : logless) =
        f.c.TotalCost(f.txn);
  }
  // The logless subordinate votes YES with nothing on disk, so it spends
  // one forced write less than the logged early-prepare variant.
  EXPECT_EQ(logless.tm_log_forced + 1, with_log.tm_log_forced);
  EXPECT_EQ(logless.flows_sent, with_log.flows_sent);
}

// The prepare constraint: once the early prepare fires, the transaction's
// write window is closed — further writes are rejected, they can no longer
// be covered by the (already-sent) YES vote.
TEST(OnePhaseTest, WritesAfterEarlyPrepareAreRejected) {
  OnePhaseCluster f(ProtocolKind::kOnePhase);
  f.StartWorkload();  // runs 1s; the 10ms quiesce timer fired long ago
  EXPECT_EQ(f.c.tm("s1").View(f.txn).outcome, tm::Outcome::kInDoubt)
      << "subordinate should have early-prepared during the quiesce window";
  Status write_status = Status::OK();
  f.c.tm("s1").Write(f.txn, 0, "late_key", "v",
                     [&write_status](Status st) { write_status = st; });
  f.c.RunFor(100 * sim::kMillisecond);
  EXPECT_FALSE(write_status.ok());
  const DrivenCommit r = f.c.CommitAndWait("c0", f.txn, 60 * sim::kSecond);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.result.outcome, tm::Outcome::kCommitted);
  EXPECT_FALSE(f.c.node("s1").rm().Peek("late_key").ok())
      << "a rejected write must leave no effects";
}

// New data arriving after an early prepare would be lost — but the one-phase
// engine only early-prepares after the data flow quiesces, and re-arms the
// window on every new work message. A second work burst inside the quiesce
// window must therefore be covered by the (later) vote.
TEST(OnePhaseTest, QuiesceTimerReArmsOnNewWork) {
  OnePhaseCluster f(ProtocolKind::kOnePhase);
  f.txn = f.c.tm("c0").Begin();
  f.c.tm("c0").Write(f.txn, 0, "k_c0", "v", [](Status) {});
  (void)f.c.tm("c0").SendWork(f.txn, "s1");
  f.c.RunFor(4 * sim::kMillisecond);  // < early_prepare_delay
  (void)f.c.tm("c0").SendWork(f.txn, "s1");  // re-arms s1's window
  f.c.RunFor(sim::kSecond);
  const DrivenCommit r = f.c.CommitAndWait("c0", f.txn, 60 * sim::kSecond);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.result.outcome, tm::Outcome::kCommitted);
  EXPECT_TRUE(f.c.node("s1").rm().Peek("k_s1").ok());
}

}  // namespace
}  // namespace tpc
