// Crash-recovery torture campaign (harness/torture.h).
//
// The campaign discovers its own matrix: a fault-free probe of each scenario
// records which (node, crash point) pairs execution reaches; one cell is run
// per pair; cells reach *new* points (recovery resends, inquiries, heuristic
// paths only exist after a crash), which become new cells, until a fixed
// point. On top of that: second-occurrence cells, double-failure schedules,
// lossy links, and link flaps. Every cell must satisfy the oracle.
//
// Environment knobs:
//   TORTURE_LEVEL=smoke   bounded deterministic slice (CI smoke job)
//   TORTURE_REPRO=<line>  replay one cell from a printed repro line
//
// The TortureOracle tests sabotage healthy cells through the fixture hooks
// to prove each oracle failure mode actually fires.

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "harness/torture.h"
#include "lock/lock_manager.h"
#include "sim/trace.h"

namespace tpc::harness {
namespace {

std::string Level() {
  const char* env = std::getenv("TORTURE_LEVEL");
  return env == nullptr ? "full" : env;
}

TortureConfig BaseConfig(const std::string& scenario) {
  TortureConfig cfg;
  cfg.scenario = scenario;
  cfg.seed = 1;
  // The heuristic scenario needs the decision owner to stay down past
  // s1's heuristic_delay (8s), or the heuristic never fires.
  if (scenario == "pa_heur") cfg.recovery_delay = 20 * sim::kSecond;
  return cfg;
}

bool AnyViolationContains(const TortureResult& r, const std::string& needle) {
  return std::any_of(r.violations.begin(), r.violations.end(),
                     [&needle](const std::string& v) {
                       return v.find(needle) != std::string::npos;
                     });
}

// --- the campaign -----------------------------------------------------------

TEST(TortureCampaign, FullCrashPointMatrix) {
  const bool smoke = Level() == "smoke";
  std::set<std::string> smoke_scenarios = {"basic_pair", "pa_pair", "pa_la_ro",
                                           "pn_pair", "pa_gc_pipe",
                                           "pn_gc_wilo", "paxos_flat",
                                           "paxos_f0", "onephase_pair"};

  std::set<std::string> fired_points;     // distinct point names that fired
  std::set<std::string> fired_protocols;  // protocol configs they fired under
  size_t cells = 0;
  size_t fired_cells = 0;
  size_t blocked_cells = 0;

  for (const TortureScenario& sc : TortureScenarios()) {
    if (smoke && smoke_scenarios.count(sc.name) == 0) continue;

    std::set<std::pair<std::string, std::string>> seen;
    std::map<std::pair<std::string, std::string>, uint64_t> max_hits;
    std::deque<std::pair<std::string, std::string>> queue;
    auto absorb = [&](const TortureResult& r) {
      for (const std::string& v : r.violations) ADD_FAILURE() << v;
      for (const ReachedPoint& p : r.reached) {
        auto key = std::make_pair(p.node, p.point);
        uint64_t& h = max_hits[key];
        if (p.hits > h) h = p.hits;
        if (seen.insert(key).second) queue.push_back(key);
      }
    };

    absorb(RunTortureCell(BaseConfig(sc.name)));  // fault-free probe
    ++cells;

    size_t budget = smoke ? 12 : 10'000;  // smoke: bounded slice
    while (!queue.empty() && budget > 0) {
      auto [node, point] = queue.front();
      queue.pop_front();
      --budget;
      TortureConfig cfg = BaseConfig(sc.name);
      cfg.crash_node = node;
      cfg.crash_point = point;
      const TortureResult res = RunTortureCell(cfg);
      ++cells;
      if (res.crash_fired) {
        ++fired_cells;
        fired_points.insert(point);
        fired_protocols.insert(sc.protocol);
      }
      if (res.blocked) ++blocked_cells;
      absorb(res);
    }

    // Second-occurrence cells: points execution reaches at least twice
    // (vote resends, retries) crash on the second hit instead.
    if (!smoke) {
      size_t occ2 = 0;
      for (const auto& [key, hits] : max_hits) {
        if (hits < 2 || occ2 >= 8) continue;
        ++occ2;
        TortureConfig cfg = BaseConfig(sc.name);
        cfg.crash_node = key.first;
        cfg.crash_point = key.second;
        cfg.occurrence = 2;
        const TortureResult res = RunTortureCell(cfg);
        ++cells;
        if (res.crash_fired) {
          ++fired_cells;
          fired_points.insert(key.second);
          fired_protocols.insert(sc.protocol);
        }
        if (res.blocked) ++blocked_cells;
        for (const std::string& v : res.violations) ADD_FAILURE() << v;
      }
    }
  }

  std::cerr << "[torture] " << cells << " cells, " << fired_cells
            << " crashes fired, " << fired_points.size()
            << " distinct crash points, " << fired_protocols.size()
            << " protocol configs, " << blocked_cells
            << " legitimate basic-2PC blocks\n";
  if (!smoke) {
    EXPECT_GE(fired_points.size(), 40u);
    EXPECT_GE(fired_protocols.size(), 4u);
    EXPECT_GT(blocked_cells, 0u)
        << "basic-2PC coordinator crashes should exhibit blocking";
  } else {
    EXPECT_GE(fired_points.size(), 10u);
  }
}

// Targeted cells for the group-commit pipeline's own crash windows: a flush
// in flight when the node dies, a workers-write-log crash between gather and
// submit (the gathered bytes are volatile and must be recoverable as lost),
// and a WILO steal racing the crash. Each must fire and satisfy the oracle —
// in particular invariant 1: no commit ack can have run unless its covering
// device write completed (the covering-LSN TPC_CHECK aborts the process
// otherwise, so a violation cannot even reach the oracle silently).
TEST(TortureCampaign, GroupCommitPipelineWindows) {
  struct Cell {
    const char* scenario;
    const char* node;
    const char* point;
  };
  const Cell kCells[] = {
      {"pa_gc_timer", "c0", "wal.before_flush_submit"},
      {"pa_gc_timer", "c0", "wal.after_flush_submit"},
      {"basic_gc_pipe", "c0", "wal.after_flush_submit"},
      {"pa_gc_pipe", "c0", "wal.before_flush_submit"},
      {"pa_gc_pipe", "s1", "wal.after_flush_submit"},
      {"pa_gc_wwl", "c0", "wal.before_gather"},
      {"pa_gc_wwl", "m1", "wal.between_gather_submit"},
      {"pa_gc_wwl", "s2", "wal.between_gather_submit"},
      {"pn_gc_wilo", "s1", "wal.after_steal_submit"},
      {"pn_gc_wilo", "c0", "wal.after_steal_submit"},
  };
  for (const Cell& cell : kCells) {
    TortureConfig cfg = BaseConfig(cell.scenario);
    cfg.crash_node = cell.node;
    cfg.crash_point = cell.point;
    const TortureResult res = RunTortureCell(cfg);
    EXPECT_TRUE(res.crash_fired) << cfg.Repro();
    for (const std::string& v : res.violations) ADD_FAILURE() << v;
  }
}

// The tentpole claim, asserted head-to-head: in the window where basic 2PC
// demonstrably blocks (coordinator crash after the votes are in but before
// its decision is durable), Paxos Commit terminates — the prepared
// subordinate takes the consensus over against the surviving acceptor
// majority. The coordinator is itself one of the 2F+1 acceptors, so its
// crash already is an F=1 acceptor failure.
TEST(TortureCampaign, PaxosTerminatesWhereBasicBlocks) {
  TortureConfig basic = BaseConfig("basic_pair");
  basic.crash_node = "c0";
  basic.crash_point = "root.before_commit_force";
  const TortureResult b = RunTortureCell(basic);
  EXPECT_TRUE(b.crash_fired);
  EXPECT_TRUE(b.blocked) << "basic 2PC should block in this window";
  EXPECT_TRUE(b.ok()) << b.violations.front();

  TortureConfig paxos = BaseConfig("paxos_flat");
  paxos.crash_node = "c0";
  paxos.crash_point = "root.after_paxos_vote_send";
  const TortureResult p = RunTortureCell(paxos);
  EXPECT_TRUE(p.crash_fired);
  EXPECT_FALSE(p.blocked) << "Paxos Commit must not block";
  EXPECT_TRUE(p.committed)
      << "every instance was Prepared; the takeover must finish with commit";
  EXPECT_TRUE(p.ok()) << p.violations.front();
}

// Coordinator crash at every decision-adjacent crash point it reaches: the
// cell must terminate (any participant still in doubt after full recovery is
// an oracle violation for paxos — there is no `blocked` escape hatch).
TEST(TortureCampaign, PaxosCoordinatorCrashMatrix) {
  // The co-located/bundled optimization retired the coordinator's singleton
  // acceptor forces: its ballot-0 self-accept rides the prepared force
  // (root.*_vote_accept_force) and its local 2b delivery has no force of
  // its own — the acceptor.*_bundle_* windows now live on s1/a2 (see
  // PaxosCombinedForceCrashMatrix).
  const char* kPoints[] = {
      "root.after_prepare_send",       "root.after_paxos_vote_send",
      "root.before_vote_accept_force", "root.after_vote_accept_force",
      "root.before_commit_force",      "root.after_commit_force",
      "root.after_decision_send",      "takeover.after_query_send",
      "takeover.after_proposal_send",
  };
  size_t fired = 0;
  for (const char* point : kPoints) {
    TortureConfig cfg = BaseConfig("paxos_flat");
    cfg.crash_node = "c0";
    cfg.crash_point = point;
    const TortureResult res = RunTortureCell(cfg);
    if (res.crash_fired) ++fired;
    EXPECT_FALSE(res.blocked) << cfg.Repro();
    for (const std::string& v : res.violations) ADD_FAILURE() << v;
  }
  EXPECT_GE(fired, 7u) << "most decision-adjacent points should be reachable";
}

// The optimization-specific crash windows, every cell against the strict
// paxos oracle (termination, consistency, idempotent recovery):
//   - between the combined vote+accept force and the ballot-0 2a fan-out
//     (the window the co-located piggyback created: vote AND acceptance are
//     durable together, but nobody else has heard either), and
//   - around a cohort acceptor's covering bundle force / bundled 2b send.
TEST(TortureCampaign, PaxosCombinedForceCrashMatrix) {
  const std::pair<const char*, const char*> kCells[] = {
      {"c0", "root.before_vote_accept_force"},
      {"c0", "root.after_vote_accept_force"},
      {"s1", "sub.before_vote_accept_force"},
      {"s1", "sub.after_vote_accept_force"},
      {"s1", "acceptor.before_bundle_force"},
      {"s1", "acceptor.after_bundle_force"},
      {"s1", "acceptor.after_bundle_send"},
      {"a2", "acceptor.before_bundle_force"},
      {"a2", "acceptor.after_bundle_force"},
      {"a2", "acceptor.after_bundle_send"},
  };
  size_t fired = 0;
  for (const auto& [node, point] : kCells) {
    TortureConfig cfg = BaseConfig("paxos_flat");
    cfg.crash_node = node;
    cfg.crash_point = point;
    const TortureResult res = RunTortureCell(cfg);
    if (res.crash_fired) ++fired;
    EXPECT_FALSE(res.blocked) << cfg.Repro();
    for (const std::string& v : res.violations) ADD_FAILURE() << v;
  }
  EXPECT_GE(fired, 8u) << "the combined-force windows must be reachable";

  // F=0 degenerate: the lone co-located acceptor's crash is a total outage;
  // termination is still required once it restarts (takeover-on-recovery).
  for (const char* point :
       {"root.after_vote_accept_force", "root.before_commit_force",
        "sub.after_prepared_force"}) {
    TortureConfig cfg = BaseConfig("paxos_f0");
    cfg.crash_node = point[0] == 's' ? "s1" : "c0";
    cfg.crash_point = point;
    const TortureResult res = RunTortureCell(cfg);
    EXPECT_TRUE(res.crash_fired) << cfg.Repro();
    EXPECT_FALSE(res.blocked) << cfg.Repro();
    for (const std::string& v : res.violations) ADD_FAILURE() << v;
  }
}

// Coordinator crash plus a second, distinct acceptor down in the same
// window: 2 of the 2F+1 acceptors are gone, so the consensus stalls with no
// majority — until the driver restarts them, after which the takeover's
// retry completes it. Termination, not blocking, is still required.
TEST(TortureCampaign, PaxosCoordinatorPlusAcceptorCrash) {
  TortureConfig cfg = BaseConfig("paxos_flat");
  cfg.crash_node = "c0";
  cfg.crash_point = "root.after_paxos_vote_send";
  cfg.after_build = [](Cluster& c) {
    // The commit starts at t=1s; the root's 2a fan-out (and its armed
    // crash) happens within the first few milliseconds after that.
    c.ctx().events().ScheduleAt(1002 * sim::kMillisecond, [&c] {
      if (c.tm("a2").IsUp()) c.ctx().failures().CrashNow("a2");
    });
  };
  const TortureResult res = RunTortureCell(cfg);
  EXPECT_TRUE(res.crash_fired);
  EXPECT_FALSE(res.blocked);
  for (const std::string& v : res.violations) ADD_FAILURE() << v;
}

TEST(TortureCampaign, DoubleFailureSchedules) {
  struct Cell {
    const char* scenario;
    const char* node;
    const char* point;
    const char* point2;  // armed for the node's post-recovery epoch
  };
  const Cell kCells[] = {
      // Subordinate dies after voting, then again right after its
      // post-recovery inquiry goes out.
      {"pa_pair", "s1", "sub.after_prepared_force", "sub.after_inquiry_send"},
      {"basic_pair", "s1", "sub.after_prepared_force",
       "sub.after_inquiry_send"},
      // Coordinator dies after the commit force, then again while recovery
      // re-drives the decision to unacked subordinates.
      {"pa_chain", "c0", "root.after_commit_force",
       "recovery.after_decision_send"},
      {"pn_pair", "c0", "root.after_commit_force",
       "recovery.after_decision_send"},
      // Cascaded coordinator: vote, die, inquire, die again.
      {"pa_chain", "m1", "casc.after_prepared_force", "sub.after_inquiry_send"},
      // Paxos root: vote, die, recover in doubt (prepared root record),
      // immediately re-run the takeover — and die again right after the 1a
      // queries go out. The twice-restarted root must still converge with
      // the cohort.
      {"paxos_flat", "c0", "root.after_paxos_vote_send",
       "takeover.after_query_send"},
  };
  for (const Cell& cell : kCells) {
    TortureConfig cfg = BaseConfig(cell.scenario);
    cfg.crash_node = cell.node;
    cfg.crash_point = cell.point;
    cfg.crash2_point = cell.point2;
    const TortureResult res = RunTortureCell(cfg);
    EXPECT_TRUE(res.crash_fired) << cfg.Repro();
    EXPECT_TRUE(res.crash2_fired) << cfg.Repro();
    for (const std::string& v : res.violations) ADD_FAILURE() << v;
  }
}

TEST(TortureCampaign, LossyLinks) {
  const bool smoke = Level() == "smoke";
  const std::vector<std::string> scenarios =
      smoke ? std::vector<std::string>{"pa_pair"}
            : std::vector<std::string>{"basic_pair", "pa_chain", "pn_pair",
                                       "pa_la_ro"};
  for (const std::string& sc : scenarios) {
    for (uint64_t seed : {1ull, 7ull, 23ull}) {
      TortureConfig cfg = BaseConfig(sc);
      cfg.seed = seed;
      cfg.loss_rate = 0.25;
      const TortureResult res = RunTortureCell(cfg);
      for (const std::string& v : res.violations) ADD_FAILURE() << v;
    }
  }
  // Loss layered on a crash: the retry machinery must still converge.
  TortureConfig cfg = BaseConfig("pa_pair");
  cfg.loss_rate = 0.25;
  cfg.crash_node = "s1";
  cfg.crash_point = "sub.after_prepared_force";
  const TortureResult res = RunTortureCell(cfg);
  for (const std::string& v : res.violations) ADD_FAILURE() << v;

  // Regression: loss layered on a cascaded-coordinator crash. This exact
  // cell once tripped the idempotency invariant because the oracle left the
  // 25% loss active through its own restart rounds, so each round's recovery
  // traffic drew different drop decisions and the two durable-state
  // snapshots diverged. The oracle now quiesces the fault model first.
  TortureConfig regress;
  ASSERT_TRUE(ParseRepro(
      "scenario=pa_chain seed=7 crash=m1@casc.after_prepared_force occ=1 "
      "delay_ms=2000 loss=0.250",
      &regress));
  const TortureResult r2 = RunTortureCell(regress);
  EXPECT_TRUE(r2.crash_fired);
  for (const std::string& v : r2.violations) ADD_FAILURE() << v;
}

TEST(TortureCampaign, LinkFlaps) {
  for (const char* sc : {"pa_pair", "pn_chain", "basic_pair"}) {
    TortureConfig cfg = BaseConfig(sc);
    cfg.flap = true;
    const TortureResult res = RunTortureCell(cfg);
    for (const std::string& v : res.violations) ADD_FAILURE() << v;
  }
  // Flap across a subordinate crash window.
  TortureConfig cfg = BaseConfig("pa_pair");
  cfg.flap = true;
  cfg.crash_node = "s1";
  cfg.crash_point = "sub.after_prepared_force";
  cfg.recovery_delay = 4 * sim::kSecond;
  const TortureResult res = RunTortureCell(cfg);
  for (const std::string& v : res.violations) ADD_FAILURE() << v;
}

TEST(TortureCampaign, CellsAreDeterministic) {
  TortureConfig cfg = BaseConfig("pa_chain");
  cfg.crash_node = "m1";
  cfg.crash_point = "casc.after_prepared_force";
  cfg.loss_rate = 0.25;
  const TortureResult a = RunTortureCell(cfg);
  const TortureResult b = RunTortureCell(cfg);
  EXPECT_EQ(a.crash_fired, b.crash_fired);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.violations, b.violations);
  ASSERT_EQ(a.reached.size(), b.reached.size());
  for (size_t i = 0; i < a.reached.size(); ++i) {
    EXPECT_EQ(a.reached[i].node, b.reached[i].node);
    EXPECT_EQ(a.reached[i].point, b.reached[i].point);
    EXPECT_EQ(a.reached[i].hits, b.reached[i].hits);
  }
}

// --- repro lines ------------------------------------------------------------

TEST(TortureRepro, RoundTrips) {
  TortureConfig cfg;
  cfg.scenario = "pn_chain";
  cfg.seed = 99;
  cfg.crash_node = "m1";
  cfg.crash_point = "casc.after_yes_vote_send";
  cfg.occurrence = 2;
  cfg.epoch = 1;
  cfg.crash2_point = "sub.after_inquiry_send";
  cfg.recovery_delay = 4500 * sim::kMillisecond;
  cfg.loss_rate = 0.125;
  cfg.flap = true;

  TortureConfig parsed;
  ASSERT_TRUE(ParseRepro(cfg.Repro(), &parsed));
  EXPECT_EQ(parsed.scenario, cfg.scenario);
  EXPECT_EQ(parsed.seed, cfg.seed);
  EXPECT_EQ(parsed.crash_node, cfg.crash_node);
  EXPECT_EQ(parsed.crash_point, cfg.crash_point);
  EXPECT_EQ(parsed.occurrence, cfg.occurrence);
  EXPECT_EQ(parsed.epoch, cfg.epoch);
  EXPECT_EQ(parsed.crash2_point, cfg.crash2_point);
  EXPECT_EQ(parsed.recovery_delay, cfg.recovery_delay);
  EXPECT_DOUBLE_EQ(parsed.loss_rate, cfg.loss_rate);
  EXPECT_EQ(parsed.flap, cfg.flap);

  // Fault-free config: the crash fields stay out of the line entirely.
  TortureConfig plain;
  EXPECT_EQ(plain.Repro(), "scenario=pa_pair seed=1 delay_ms=2000");
  ASSERT_TRUE(ParseRepro(plain.Repro(), &parsed));
  EXPECT_TRUE(parsed.crash_node.empty());
}

TEST(TortureRepro, RejectsMalformedLines) {
  TortureConfig cfg;
  EXPECT_FALSE(ParseRepro("", &cfg));
  EXPECT_FALSE(ParseRepro("seed=1", &cfg));  // no scenario
  EXPECT_FALSE(ParseRepro("scenario=pa_pair bogus", &cfg));
  EXPECT_FALSE(ParseRepro("scenario=pa_pair crash=no_at_sign", &cfg));
  EXPECT_FALSE(ParseRepro("scenario=pa_pair unknown=1", &cfg));
}

TEST(TortureRepro, EnvReplay) {
  const char* line = std::getenv("TORTURE_REPRO");
  if (line == nullptr) GTEST_SKIP() << "TORTURE_REPRO not set";
  TortureConfig cfg;
  ASSERT_TRUE(ParseRepro(line, &cfg)) << "malformed TORTURE_REPRO: " << line;
  const TortureResult res = RunTortureCell(cfg);
  for (const std::string& v : res.violations) ADD_FAILURE() << v;
  std::cerr << "[torture] replayed: " << cfg.Repro()
            << " crash_fired=" << res.crash_fired
            << " committed=" << res.committed << " blocked=" << res.blocked
            << "\n";
}

// --- broken fixtures: every oracle failure mode must actually fire ----------

// A healthy reference cell: PA pair, subordinate dies after voting.
TortureConfig HealthyCrashCell() {
  TortureConfig cfg = BaseConfig("pa_pair");
  cfg.crash_node = "s1";
  cfg.crash_point = "sub.after_prepared_force";
  return cfg;
}

TEST(TortureOracle, HealthyCellPasses) {
  const TortureResult res = RunTortureCell(HealthyCrashCell());
  EXPECT_TRUE(res.crash_fired);
  EXPECT_TRUE(res.ok()) << res.violations.front();
}

TEST(TortureOracle, CatchesUnresolvedInDoubt) {
  // Cut the only link permanently just after the workload spreads: the
  // crashed subordinate restarts in doubt and its inquiries fall into the
  // void forever. PA must not block — the oracle flags it.
  TortureConfig cfg = HealthyCrashCell();
  cfg.after_build = [](Cluster& c) {
    c.ctx().events().ScheduleAt(1400 * sim::kMillisecond, [&c] {
      c.network().SetLinkDown("c0", "s1", true);
    });
  };
  const TortureResult res = RunTortureCell(cfg);
  EXPECT_TRUE(AnyViolationContains(res, "in doubt"))
      << "oracle missed a permanently in-doubt participant";
}

TEST(TortureOracle, CatchesUnreportedHeuristicDamage) {
  // No crash: the link flap isolates s1 past its heuristic delay, so s1
  // heuristically commits while the coordinator (which stays up and
  // remembers) times out and aborts — ground-truth damage on both sides.
  TortureConfig cfg = BaseConfig("pa_heur");
  cfg.flap = true;

  // Sanity: the un-sabotaged cell produces damage and reports it.
  const TortureResult clean = RunTortureCell(cfg);
  EXPECT_TRUE(clean.ok()) << clean.violations.front();

  // Erase the trace before the oracle looks: damage still happened (store
  // ground truth) but no report exists.
  cfg.before_oracle = [](Cluster& c) { c.ctx().trace().Clear(); };
  const TortureResult res = RunTortureCell(cfg);
  EXPECT_TRUE(AnyViolationContains(res, "never reported"))
      << "oracle missed unreported heuristic damage";
}

TEST(TortureOracle, CatchesLostCommittedEffect) {
  // Overwrite a committed key behind the protocol's back at quiescence.
  TortureConfig cfg = BaseConfig("pa_pair");
  cfg.before_oracle = [](Cluster& c) {
    tm::TransactionManager& tm = c.tm("s1");
    const uint64_t t = tm.Begin();
    tm.Write(t, 0, "k_s1", "corrupted", [](Status) {});
    c.RunFor(100 * sim::kMillisecond);
    c.CommitAndWait("s1", t);
  };
  const TortureResult res = RunTortureCell(cfg);
  EXPECT_TRUE(AnyViolationContains(res, "k_s1"))
      << "oracle missed a lost committed effect";
}

TEST(TortureOracle, CatchesLeakedLock) {
  TortureConfig cfg = BaseConfig("pn_pair");
  cfg.before_oracle = [](Cluster& c) {
    c.node("s1").rm().locks().Acquire(
        /*txn=*/9999, "stray_key", lock::LockMode::kExclusive, [](Status) {});
  };
  const TortureResult res = RunTortureCell(cfg);
  EXPECT_TRUE(AnyViolationContains(res, "leaked locks"))
      << "oracle missed a leaked lock";
}

TEST(TortureOracle, CatchesNonIdempotentRecovery) {
  // Durable state that drifts between the two restart rounds.
  TortureConfig cfg = BaseConfig("pa_pair");
  cfg.on_idempotency_round = [](Cluster& c, int round) {
    tm::TransactionManager& tm = c.tm("c0");
    const uint64_t t = tm.Begin();
    tm.Write(t, 0, "drift", std::to_string(round), [](Status) {});
    c.RunFor(100 * sim::kMillisecond);
    c.CommitAndWait("c0", t);
  };
  const TortureResult res = RunTortureCell(cfg);
  EXPECT_TRUE(AnyViolationContains(res, "idempotent"))
      << "oracle missed divergent recovery";
}

TEST(TortureOracle, CatchesAccountingDrift) {
  // A trace entry with no matching network counter: the two ledgers must
  // reconcile exactly.
  TortureConfig cfg = BaseConfig("pa_pair");
  cfg.before_oracle = [](Cluster& c) {
    c.ctx().trace().Add({c.ctx().now(), sim::TraceKind::kSend, "ghost", "c0",
                         0, "phantom flow"});
  };
  const TortureResult res = RunTortureCell(cfg);
  EXPECT_TRUE(AnyViolationContains(res, "sends"))
      << "oracle missed trace/counter drift";
}

TEST(TortureOracle, ViolationsEmbedReproLine) {
  TortureConfig cfg = BaseConfig("pa_pair");
  cfg.before_oracle = [](Cluster& c) { c.ctx().trace().Clear(); };
  const TortureResult res = RunTortureCell(cfg);
  ASSERT_FALSE(res.ok());
  for (const std::string& v : res.violations) {
    EXPECT_NE(v.find("[repro: scenario=pa_pair seed=1"), std::string::npos)
        << v;
  }
}

}  // namespace
}  // namespace tpc::harness
