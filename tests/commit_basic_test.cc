// End-to-end commit processing for the three protocols in the simplest
// topology (one coordinator, one subordinate), validating outcomes, data
// effects, flow counts, and log-write counts against Table 2.

#include <gtest/gtest.h>

#include "analysis/cost_model.h"
#include "harness/cluster.h"

namespace tpc {
namespace {

using harness::Cluster;
using harness::NodeOptions;
using tm::Outcome;
using tm::ProtocolKind;
using tm::TmConfig;

// Runs one update transaction (coordinator and subordinate each write one
// key) under `protocol` and returns the cluster for inspection.
struct TwoNodeRun {
  std::unique_ptr<Cluster> cluster;
  uint64_t txn = 0;
  harness::DrivenCommit commit;
};

TwoNodeRun RunTwoNodeCommit(ProtocolKind protocol) {
  TwoNodeRun run;
  run.cluster = std::make_unique<Cluster>();
  Cluster& c = *run.cluster;

  NodeOptions options;
  options.tm.protocol = protocol;
  c.AddNode("coord", options);
  c.AddNode("sub", options);
  c.Connect("coord", "sub");

  // Subordinate-side work happens when app data arrives.
  c.tm("sub").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm("sub").Write(txn, 0, "sub_key", "sub_value",
                          [](Status st) { ASSERT_TRUE(st.ok()); });
      });

  uint64_t txn = c.tm("coord").Begin();
  run.txn = txn;
  c.tm("coord").Write(txn, 0, "coord_key", "coord_value",
                      [](Status st) { ASSERT_TRUE(st.ok()); });
  EXPECT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.Drain();  // deliver the app data / perform the write

  run.commit = c.CommitAndWait("coord", txn);
  c.Drain();
  return run;
}

class TwoNodeCommitTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(TwoNodeCommitTest, CommitsAndAppliesEverywhere) {
  TwoNodeRun run = RunTwoNodeCommit(GetParam());
  ASSERT_TRUE(run.commit.completed);
  EXPECT_EQ(run.commit.result.outcome, Outcome::kCommitted);
  EXPECT_FALSE(run.commit.result.heuristic_damage);
  EXPECT_FALSE(run.commit.result.outcome_pending);

  Cluster& c = *run.cluster;
  EXPECT_EQ(c.node("coord").rm().Peek("coord_key").value_or(""), "coord_value");
  EXPECT_EQ(c.node("sub").rm().Peek("sub_key").value_or(""), "sub_value");

  harness::TxnAudit audit = c.Audit(run.txn);
  EXPECT_TRUE(audit.consistent);
  EXPECT_FALSE(audit.damage_ground_truth);
  EXPECT_FALSE(audit.any_heuristic);

  // Both sides forgot the transaction (no leaked control blocks).
  EXPECT_FALSE(c.tm("coord").Knows(run.txn));
  EXPECT_FALSE(c.tm("sub").Knows(run.txn));
}

TEST_P(TwoNodeCommitTest, LocksReleasedAfterCommit) {
  TwoNodeRun run = RunTwoNodeCommit(GetParam());
  Cluster& c = *run.cluster;
  // A fresh transaction can take exclusive locks on the same keys
  // immediately: no residual locks.
  uint64_t txn2 = c.tm("coord").Begin();
  bool granted = false;
  c.tm("coord").Write(txn2, 0, "coord_key", "x", [&](Status st) {
    granted = st.ok();
  });
  c.Drain();
  EXPECT_TRUE(granted);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, TwoNodeCommitTest,
                         ::testing::Values(ProtocolKind::kBasic2PC,
                                           ProtocolKind::kPresumedAbort,
                                           ProtocolKind::kPresumedNothing),
                         [](const auto& info) {
                           return std::string(
                               tm::ProtocolKindToString(info.param) ==
                                       "basic-2pc"
                                   ? "Basic"
                                   : tm::ProtocolKindToString(info.param) ==
                                             "presumed-abort"
                                         ? "PA"
                                         : "PN");
                         });

TEST(Table2AccountingTest, BasicTwoPhaseCommitMatchesTable2) {
  TwoNodeRun run = RunTwoNodeCommit(ProtocolKind::kBasic2PC);
  Cluster& c = *run.cluster;
  tm::TxnCost coord = c.tm("coord").CostOf(run.txn);
  tm::TxnCost sub = c.tm("sub").CostOf(run.txn);
  // Table 2, "Basic 2PC": coordinator 2 flows, (2, 1 forced); subordinate
  // 2 flows, (3, 2 forced). (The coordinator's APP_DATA is not a flow.)
  EXPECT_EQ(coord.flows_sent, 2u);
  EXPECT_EQ(coord.tm_log_writes, 2u);
  EXPECT_EQ(coord.tm_log_forced, 1u);
  EXPECT_EQ(sub.flows_sent, 2u);
  EXPECT_EQ(sub.tm_log_writes, 3u);
  EXPECT_EQ(sub.tm_log_forced, 2u);
}

TEST(Table2AccountingTest, PresumedAbortCommitMatchesTable2) {
  TwoNodeRun run = RunTwoNodeCommit(ProtocolKind::kPresumedAbort);
  Cluster& c = *run.cluster;
  tm::TxnCost coord = c.tm("coord").CostOf(run.txn);
  tm::TxnCost sub = c.tm("sub").CostOf(run.txn);
  EXPECT_EQ(coord.flows_sent, 2u);
  EXPECT_EQ(coord.tm_log_writes, 2u);
  EXPECT_EQ(coord.tm_log_forced, 1u);
  EXPECT_EQ(sub.flows_sent, 2u);
  EXPECT_EQ(sub.tm_log_writes, 3u);
  EXPECT_EQ(sub.tm_log_forced, 2u);
}

TEST(Table2AccountingTest, PresumedNothingMatchesTable2) {
  TwoNodeRun run = RunTwoNodeCommit(ProtocolKind::kPresumedNothing);
  Cluster& c = *run.cluster;
  tm::TxnCost coord = c.tm("coord").CostOf(run.txn);
  tm::TxnCost sub = c.tm("sub").CostOf(run.txn);
  // PN: coordinator logs commit-pending (forced), committed (forced),
  // END (non-forced); subordinate logs join (non-forced), prepared (forced),
  // committed (forced), END (forced before the ack).
  EXPECT_EQ(coord.flows_sent, 2u);
  EXPECT_EQ(coord.tm_log_writes, 3u);
  EXPECT_EQ(coord.tm_log_forced, 2u);
  EXPECT_EQ(sub.flows_sent, 2u);
  EXPECT_EQ(sub.tm_log_writes, 4u);
  EXPECT_EQ(sub.tm_log_forced, 3u);
}

TEST(TwoNodeAbortTest, SubordinateNoVoteAbortsEverywhere) {
  // The subordinate's RM votes NO (forced via a poisoned prepare): model by
  // having the subordinate's app write, then the coordinator aborts due to
  // a NO vote provoked by a conflicting root initiation instead. Simpler
  // and still end-to-end: abort via AbortTxn at the root.
  Cluster c;
  NodeOptions options;
  options.tm.protocol = ProtocolKind::kPresumedAbort;
  c.AddNode("coord", options);
  c.AddNode("sub", options);
  c.Connect("coord", "sub");
  c.tm("sub").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm("sub").Write(txn, 0, "k", "dirty",
                          [](Status st) { ASSERT_TRUE(st.ok()); });
      });

  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "dirty", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.Drain();

  c.tm("coord").AbortTxn(txn);
  c.Drain();

  EXPECT_TRUE(c.node("coord").rm().Peek("k").status().IsNotFound());
  EXPECT_TRUE(c.node("sub").rm().Peek("k").status().IsNotFound());
  harness::TxnAudit audit = c.Audit(txn);
  EXPECT_TRUE(audit.consistent);
}

TEST(TwoNodeAbortTest, PresumedAbortAbortCaseCostsMatchTable2) {
  // PA abort via NO vote: the subordinate is made to vote NO by initiating
  // its own commit concurrently (two initiators => abort), the clean
  // in-protocol way to get a NO. Cheaper to arrange: use a lock conflict?
  // Simplest deterministic NO: the subordinate initiates commit first.
  Cluster c;
  NodeOptions options;
  options.tm.protocol = ProtocolKind::kPresumedAbort;
  c.AddNode("coord", options);
  c.AddNode("sub", options);
  c.Connect("coord", "sub");

  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.Drain();

  // Subordinate also initiates commit: when the coordinator's Prepare
  // arrives, the subordinate votes NO (two initiators).
  bool sub_done = false;
  c.tm("sub").Commit(txn, [&](tm::CommitResult result) {
    sub_done = true;
    EXPECT_EQ(result.outcome, Outcome::kAborted);
  });
  harness::DrivenCommit commit = c.CommitAndWait("coord", txn);
  c.Drain();
  ASSERT_TRUE(commit.completed);
  EXPECT_EQ(commit.result.outcome, Outcome::kAborted);
  EXPECT_TRUE(sub_done);
  harness::TxnAudit audit = c.Audit(txn);
  EXPECT_TRUE(audit.consistent);
}

}  // namespace
}  // namespace tpc
