#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace tpc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("key k1");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "key k1");
  EXPECT_EQ(st.ToString(), "NotFound: key k1");
}

TEST(StatusTest, CopyPreservesMessage) {
  Status st = Status::Corruption("bad crc");
  Status copy = st;
  EXPECT_TRUE(copy.IsCorruption());
  EXPECT_EQ(copy.message(), "bad crc");
  Status assigned;
  assigned = copy;
  EXPECT_TRUE(assigned.IsCorruption());
  EXPECT_EQ(assigned.message(), "bad crc");
}

TEST(StatusTest, MoveLeavesSourceReusable) {
  Status st = Status::Aborted("deadlock");
  Status moved = std::move(st);
  EXPECT_TRUE(moved.IsAborted());
  EXPECT_EQ(moved.message(), "deadlock");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

Status Fails() { return Status::IOError("disk"); }
Status Propagates() {
  TPC_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(Propagates().IsIOError());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> HalfOf(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Status UseHalf(int v, int* out) {
  TPC_ASSIGN_OR_RETURN(*out, HalfOf(v));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_TRUE(UseHalf(9, &out).IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace tpc
