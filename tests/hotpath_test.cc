// Hot-path rework regressions: O(held) release with no string hashing,
// the S->X upgrade-ahead-of-waiters policy, WAL torn-tail robustness
// under truncation and byte flips, group commit across Crash(), and
// schedule/byte equivalence of the reworked lock and WAL layers against
// the frozen seed copies.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "lock/legacy_lock_manager.h"
#include "lock/lock_manager.h"
#include "sim/sim_context.h"
#include "wal/legacy_log_manager.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace tpc {
namespace {

using lock::LegacyLockManager;
using lock::LockManager;
using lock::LockMode;

// --- O(held) release --------------------------------------------------------

TEST(LockHotPathTest, ReleaseAllPerformsNoStringHashing) {
  sim::SimContext ctx;
  LockManager locks(&ctx, "node");

  // Intern once up front, the pattern the resource manager uses.
  std::vector<lock::KeyId> keys;
  for (int i = 0; i < 64; ++i)
    keys.push_back(locks.InternKey("key-" + std::to_string(i)));

  // KeyId acquires perform no string hashing at all.
  const uint64_t before_acquire = locks.string_lookups();
  for (lock::KeyId key : keys)
    locks.Acquire(7, key, LockMode::kExclusive,
                  [](Status st) { EXPECT_TRUE(st.ok()); });
  EXPECT_EQ(locks.string_lookups(), before_acquire);

  // Release walks the per-txn held list: O(held), zero hash lookups.
  const uint64_t before_release = locks.string_lookups();
  locks.ReleaseAll(7);
  EXPECT_EQ(locks.string_lookups(), before_release);

  for (lock::KeyId key : keys)
    EXPECT_FALSE(locks.Holds(7, key, LockMode::kIntentShared));
  EXPECT_EQ(locks.stats().acquisitions, keys.size());

  // The freed slab nodes are reusable: a second transaction takes the
  // same keys without conflict.
  for (lock::KeyId key : keys)
    locks.Acquire(8, key, LockMode::kExclusive,
                  [](Status st) { EXPECT_TRUE(st.ok()); });
  EXPECT_EQ(locks.string_lookups(), before_release);
  locks.ReleaseAll(8);
}

// --- S->X upgrade policy ----------------------------------------------------

TEST(LockUpgradeTest, UpgradeJumpsAheadOfQueuedWriter) {
  // Holder 1 and holder 2 share the key, writer 3 queues for X, then
  // holder 1 upgrades. The upgrade waits only for holder 2 — not for
  // writer 3, which arrived later and would otherwise starve (and
  // deadlock) the upgrader.
  sim::SimContext ctx;
  LockManager locks(&ctx, "node");
  locks.Acquire(1, "k", LockMode::kShared, [](Status st) { EXPECT_TRUE(st.ok()); });
  locks.Acquire(2, "k", LockMode::kShared, [](Status st) { EXPECT_TRUE(st.ok()); });

  std::vector<int> grants;
  locks.Acquire(3, "k", LockMode::kExclusive,
                [&](Status st) { if (st.ok()) grants.push_back(3); });
  locks.Acquire(1, "k", LockMode::kExclusive,
                [&](Status st) { if (st.ok()) grants.push_back(1); });
  EXPECT_TRUE(grants.empty());  // holder 2 still blocks the upgrade

  locks.ReleaseAll(2);
  EXPECT_EQ(grants, (std::vector<int>{1}));  // upgrade granted before writer 3
  EXPECT_TRUE(locks.Holds(1, "k", LockMode::kExclusive));

  locks.ReleaseAll(1);
  EXPECT_EQ(grants, (std::vector<int>{1, 3}));
}

TEST(LockUpgradeTest, DualUpgradeDeadlockResolvedByTimeout) {
  // Two sharers upgrading the same key deadlock against each other's S
  // hold; the wait timeout resolves it, as documented in lock_manager.h.
  sim::SimContext ctx;
  LockManager locks(&ctx, "node", 10 * sim::kSecond);
  locks.Acquire(1, "k", LockMode::kShared, [](Status st) { EXPECT_TRUE(st.ok()); });
  locks.Acquire(2, "k", LockMode::kShared, [](Status st) { EXPECT_TRUE(st.ok()); });

  Status up1 = Status::OK(), up2 = Status::OK();
  locks.Acquire(1, "k", LockMode::kExclusive, [&](Status st) { up1 = std::move(st); });
  locks.Acquire(2, "k", LockMode::kExclusive, [&](Status st) { up2 = std::move(st); });
  ctx.events().RunUntil(11 * sim::kSecond);

  EXPECT_TRUE(up1.IsTimedOut());
  EXPECT_TRUE(up2.IsTimedOut());
  EXPECT_EQ(locks.stats().timeouts, 2u);

  // Both still hold S (the caller aborts on timeout); releasing frees
  // the key for a fresh X request.
  locks.ReleaseAll(1);
  locks.ReleaseAll(2);
  bool granted = false;
  locks.Acquire(3, "k", LockMode::kExclusive, [&](Status st) { granted = st.ok(); });
  EXPECT_TRUE(granted);
}

// --- WAL torn-tail fuzz -----------------------------------------------------

struct EncodedLog {
  std::vector<wal::LogRecord> records;
  std::vector<size_t> ends;  // byte offset one past each record
  std::string bytes;
};

EncodedLog MakeFuzzLog(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  EncodedLog log;
  for (size_t i = 0; i < n; ++i) {
    wal::LogRecord rec;
    rec.type = (i % 2) ? wal::RecordType::kRmPrepared
                       : wal::RecordType::kTmCommitted;
    rec.txn = rng() % 100000;
    rec.owner = (i % 3) ? "n1.tm" : "n1.rm";
    rec.body.assign(rng() % 64, static_cast<char>('a' + i % 26));
    rec.EncodeTo(log.bytes);
    log.ends.push_back(log.bytes.size());
    log.records.push_back(std::move(rec));
  }
  return log;
}

void ExpectPrefixOf(const std::vector<wal::LogRecord>& got,
                    const std::vector<wal::LogRecord>& want, size_t n) {
  ASSERT_EQ(got.size(), n);
  for (size_t i = 0; i < n; ++i)
    EXPECT_EQ(got[i].Encode(), want[i].Encode()) << "record " << i;
}

TEST(WalTornTailTest, TruncationNeverYieldsPartialRecords) {
  const EncodedLog log = MakeFuzzLog(1000, /*seed=*/1);
  std::mt19937_64 rng(2);
  std::vector<size_t> lens = {0, 1, 7, 8, log.bytes.size()};
  for (int i = 0; i < 300; ++i) lens.push_back(rng() % (log.bytes.size() + 1));

  for (size_t len : lens) {
    std::vector<wal::LogRecord> got;
    EXPECT_NO_THROW(got = wal::ScanLog({log.bytes.data(), len}));
    // Exactly the records that fit entirely within the prefix.
    size_t complete = 0;
    while (complete < log.ends.size() && log.ends[complete] <= len) ++complete;
    ExpectPrefixOf(got, log.records, complete);
  }
}

TEST(WalTornTailTest, ByteFlipStopsScanAtFirstCorruption) {
  const EncodedLog log = MakeFuzzLog(1000, /*seed=*/3);
  std::mt19937_64 rng(4);

  for (int i = 0; i < 300; ++i) {
    const size_t pos = rng() % log.bytes.size();
    std::string corrupted = log.bytes;
    corrupted[pos] = static_cast<char>(
        static_cast<uint8_t>(corrupted[pos]) ^ (1 + rng() % 255));

    std::vector<wal::LogRecord> got;
    EXPECT_NO_THROW(got = wal::ScanLog(corrupted));
    // Every record before the corrupted one decodes intact; the CRC (or a
    // bounds check, if the flip hit a length field) stops the scan there.
    size_t hit = 0;
    while (log.ends[hit] <= pos) ++hit;
    ExpectPrefixOf(got, log.records, hit);
  }
}

// --- Group commit across Crash() --------------------------------------------

wal::LogRecord TmRecord(uint64_t txn) {
  wal::LogRecord rec;
  rec.type = wal::RecordType::kTmCommitted;
  rec.txn = txn;
  rec.owner = "n1.tm";
  rec.body = "payload";
  return rec;
}

TEST(GroupCommitCrashTest, PreCrashTimerDoesNotForcePostCrashRecords) {
  sim::SimContext ctx;
  wal::LogManager log(&ctx, "n1");
  wal::GroupCommitOptions group;
  group.enabled = true;
  group.group_size = 8;
  group.group_timeout = 5 * sim::kMillisecond;
  log.set_group_commit(group);

  bool pre_acked = false;
  log.Append(TmRecord(1), /*force=*/true, [&] { pre_acked = true; });  // arms timer
  ctx.events().RunUntil(1 * sim::kMillisecond);
  log.Crash();

  bool post_acked = false;
  log.Append(TmRecord(2), /*force=*/true, [&] { post_acked = true; });

  // The pre-crash timer would have fired at t=5ms; the post-crash group
  // window runs 1ms..6ms. At 5.5ms nothing may have been forced.
  ctx.events().RunUntil(5 * sim::kMillisecond + sim::kMillisecond / 2);
  EXPECT_FALSE(pre_acked);
  EXPECT_FALSE(post_acked);
  EXPECT_EQ(log.device_forces(), 0u);

  ctx.events().Run();
  EXPECT_FALSE(pre_acked);  // lost in the crash, never acked
  EXPECT_TRUE(post_acked);

  // Only the post-crash record is durable.
  std::vector<wal::LogRecord> recovered = log.Recover();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].txn, 2u);
}

TEST(GroupCommitCrashTest, CrashDropsInFlightForceCallbacks) {
  sim::SimContext ctx;
  wal::LogManager log(&ctx, "n1");  // no group commit: force flushes at once
  bool acked = false;
  log.Append(TmRecord(1), /*force=*/true, [&] { acked = true; });
  ctx.events().RunUntil(1 * sim::kMillisecond);  // device completes at 2ms
  log.Crash();
  ctx.events().Run();
  EXPECT_FALSE(acked);
  EXPECT_EQ(log.durable_lsn(), 0u);
}

TEST(GroupCommitCrashTest, ForceAllOnEmptyBufferStillAcks) {
  sim::SimContext ctx;
  wal::LogManager log(&ctx, "n1");
  bool acked = false;
  log.ForceAll([&] { acked = true; });
  EXPECT_FALSE(acked);  // durable only after the device round trip
  ctx.events().Run();
  EXPECT_TRUE(acked);
}

// --- Equivalence against the frozen seed copies -----------------------------

// One grant-log line per callback invocation, in order.
std::vector<std::string> RunLockWorkload(auto&& acquire, auto&& release_all,
                                         auto&& drive) {
  std::vector<std::string> log;
  auto record = [&log](uint64_t txn, int key, Status st) {
    log.push_back(std::to_string(txn) + ":" + std::to_string(key) + ":" +
                  (st.ok() ? "ok" : st.IsTimedOut() ? "timeout" : "err"));
  };

  std::mt19937_64 rng(99);
  constexpr LockMode kModes[] = {LockMode::kIntentShared,
                                 LockMode::kIntentExclusive, LockMode::kShared,
                                 LockMode::kExclusive};
  std::vector<uint64_t> live;
  for (uint64_t txn = 1; txn <= 200; ++txn) {
    const int locks_wanted = 1 + rng() % 4;
    for (int i = 0; i < locks_wanted; ++i) {
      const int key = rng() % 32;
      acquire(txn, "key-" + std::to_string(key), kModes[rng() % 4],
              [&record, txn, key](Status st) { record(txn, key, std::move(st)); });
    }
    live.push_back(txn);
    if (rng() % 2 == 0 && !live.empty()) {
      const size_t victim = rng() % live.size();
      release_all(live[victim]);
      live.erase(live.begin() + victim);
    }
  }
  for (uint64_t txn : live) release_all(txn);
  drive();  // fire any remaining timeouts
  return log;
}

TEST(HotPathEquivalenceTest, LockScheduleMatchesSeed) {
  sim::SimContext new_ctx, old_ctx;
  LockManager locks(&new_ctx, "node");
  LegacyLockManager legacy(&old_ctx, "node");

  std::vector<std::string> new_log = RunLockWorkload(
      [&](uint64_t txn, const std::string& key, LockMode mode, auto cb) {
        locks.Acquire(txn, key, mode, std::move(cb));
      },
      [&](uint64_t txn) { locks.ReleaseAll(txn); },
      [&] { new_ctx.events().Run(); });
  std::vector<std::string> old_log = RunLockWorkload(
      [&](uint64_t txn, const std::string& key, LockMode mode, auto cb) {
        legacy.Acquire(txn, key, mode, std::move(cb));
      },
      [&](uint64_t txn) { legacy.ReleaseAll(txn); },
      [&] { old_ctx.events().Run(); });

  EXPECT_EQ(new_log, old_log);
  EXPECT_EQ(locks.stats().acquisitions, legacy.stats().acquisitions);
  EXPECT_EQ(locks.stats().waits, legacy.stats().waits);
  EXPECT_EQ(locks.stats().timeouts, legacy.stats().timeouts);
}

TEST(HotPathEquivalenceTest, WalBytesAndStatsMatchSeed) {
  sim::SimContext new_ctx, old_ctx;
  wal::LogManager log(&new_ctx, "n1");
  wal::LegacyLogManager legacy(&old_ctx, "n1");

  std::mt19937_64 rng(5);
  for (int i = 0; i < 1000; ++i) {
    wal::LogRecord rec;
    rec.type = (i % 2) ? wal::RecordType::kRmUpdate : wal::RecordType::kTmPrepared;
    rec.txn = 1 + rng() % 64;
    rec.owner = (i % 2) ? "n1.rm" : "n1.tm";
    rec.body.assign(rng() % 48, 'x');
    const bool force = (i % 16) == 15;
    EXPECT_EQ(log.Append(rec, force), legacy.Append(rec, force));
  }
  log.ForceAll(nullptr);
  legacy.ForceAll(nullptr);
  new_ctx.events().Run();
  old_ctx.events().Run();

  EXPECT_EQ(log.next_lsn(), legacy.next_lsn());
  EXPECT_EQ(log.durable_lsn(), legacy.durable_lsn());
  EXPECT_EQ(log.storage().durable(), legacy.storage().durable());
  EXPECT_EQ(log.stats().writes, legacy.stats().writes);
  EXPECT_EQ(log.stats().forced_writes, legacy.stats().forced_writes);
  for (uint64_t txn = 1; txn <= 64; ++txn) {
    EXPECT_EQ(log.StatsForTxn(txn).writes, legacy.StatsForTxn(txn).writes);
    EXPECT_EQ(log.StatsForTxn(txn).forced_writes,
              legacy.StatsForTxn(txn).forced_writes);
  }
  for (const char* owner : {"n1.tm", "n1.rm"}) {
    EXPECT_EQ(log.StatsForOwner(owner).writes, legacy.StatsForOwner(owner).writes);
    EXPECT_EQ(log.StatsForOwner(owner).forced_writes,
              legacy.StatsForOwner(owner).forced_writes);
  }
}

}  // namespace
}  // namespace tpc
