// Presumed Commit (extension beyond the paper; flagged in DESIGN.md §6):
// commit accounting, the commit presumption, explicit acknowledged aborts,
// and crash behavior.

#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace tpc {
namespace {

using harness::Cluster;
using harness::NodeOptions;
using tm::Outcome;
using tm::ProtocolKind;

NodeOptions PcOptions() {
  NodeOptions options;
  options.tm.protocol = ProtocolKind::kPresumedCommit;
  return options;
}

void SubWritesOnData(Cluster& c, const std::string& node) {
  c.tm(node).SetAppDataHandler(
      [&c, node](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm(node).Write(txn, 0, node + "_key", "v",
                         [](Status st) { ASSERT_TRUE(st.ok()); });
      });
}

uint64_t SetupTwoNodes(Cluster& c) {
  c.AddNode("coord", PcOptions());
  c.AddNode("sub", PcOptions());
  c.Connect("coord", "sub");
  SubWritesOnData(c, "sub");
  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "coord_key", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  EXPECT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.RunFor(sim::kSecond);
  return txn;
}

TEST(PresumedCommitTest, CommitCostsMatchPcAccounting) {
  Cluster c;
  uint64_t txn = SetupTwoNodes(c);
  auto commit = c.CommitAndWait("coord", txn);
  c.RunFor(sim::kSecond);
  ASSERT_TRUE(commit.completed);
  EXPECT_EQ(commit.result.outcome, Outcome::kCommitted);

  // Coordinator: collecting (forced), committed (forced), END (non-forced);
  // Prepare + Commit flows. Subordinate: prepared (forced), committed
  // (non-forced, unacknowledged): 1 flow, (2, 1 forced).
  tm::TxnCost coord = c.tm("coord").CostOf(txn);
  tm::TxnCost sub = c.tm("sub").CostOf(txn);
  EXPECT_EQ(coord.flows_sent, 2u);
  EXPECT_EQ(coord.tm_log_writes, 3u);
  EXPECT_EQ(coord.tm_log_forced, 2u);
  EXPECT_EQ(sub.flows_sent, 1u);  // no commit ack
  EXPECT_EQ(sub.tm_log_writes, 2u);
  EXPECT_EQ(sub.tm_log_forced, 1u);

  EXPECT_FALSE(c.tm("coord").Knows(txn));
  EXPECT_FALSE(c.tm("sub").Knows(txn));
  EXPECT_EQ(c.node("sub").rm().Peek("sub_key").value_or(""), "v");
  EXPECT_TRUE(c.Audit(txn).consistent);
}

TEST(PresumedCommitTest, AbortIsExplicitForcedAndAcknowledged) {
  Cluster c;
  uint64_t txn = SetupTwoNodes(c);
  c.node("sub").rm().FailNextPrepare();
  auto commit = c.CommitAndWait("coord", txn);
  c.RunFor(sim::kSecond);
  ASSERT_TRUE(commit.completed);
  EXPECT_EQ(commit.result.outcome, Outcome::kAborted);
  // Coordinator: collecting (forced), aborted (forced), END after the ack.
  tm::TxnCost coord = c.tm("coord").CostOf(txn);
  EXPECT_EQ(coord.tm_log_forced, 2u);
  // The NO-voting subordinate acknowledged the abort (from the archive).
  tm::TxnCost sub = c.tm("sub").CostOf(txn);
  EXPECT_EQ(sub.flows_sent, 2u);  // NO vote + abort ack
  EXPECT_TRUE(c.Audit(txn).consistent);
}

TEST(PresumedCommitTest, LostCommitRecordResolvesCommitByPresumption) {
  // The name-giving case: the sub's commit record is non-forced; crash it
  // right after it acknowledges nothing and has only `prepared` durable.
  Cluster c;
  uint64_t txn = SetupTwoNodes(c);
  auto commit = c.CommitAndWait("coord", txn);
  ASSERT_TRUE(commit.completed);
  // Crash the sub before its (non-forced) commit record reaches disk.
  c.ctx().failures().CrashNow("sub");
  c.node("sub").Restart();
  c.RunFor(60 * sim::kSecond);
  // Recovery found `prepared` only; the inquiry answer (or the archive)
  // resolves commit and the data comes back via redo + resolution.
  EXPECT_EQ(c.tm("sub").View(txn).outcome, Outcome::kCommitted);
  EXPECT_EQ(c.node("sub").rm().Peek("sub_key").value_or(""), "v");
  EXPECT_TRUE(c.Audit(txn).consistent);
}

TEST(PresumedCommitTest, ForgottenCoordinatorAnswersCommitted) {
  // Even after the coordinator archives and a fresh process knows nothing,
  // the presumption answers commit for an in-doubt subordinate.
  Cluster c;
  NodeOptions sub_options = PcOptions();
  sub_options.tm.inquiry_delay = 5 * sim::kSecond;
  c.AddNode("coord", PcOptions());
  c.AddNode("sub", sub_options);
  c.Connect("coord", "sub");
  SubWritesOnData(c, "sub");
  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("coord").SendWork(txn, "sub").ok());
  c.RunFor(sim::kSecond);

  // Partition right after the vote arrives (PC timing: collecting force
  // 2ms, prepare at 3ms, sub forces until 7ms, vote lands at 8ms; the
  // Commit leaves at 10ms): the sub never sees the Commit.
  auto commit = c.StartCommit("coord", txn);
  c.RunFor(8 * sim::kMillisecond);
  c.network().SetLinkDown("coord", "sub", true);
  c.RunFor(10 * sim::kSecond);
  EXPECT_TRUE(commit->completed);  // no commit acks under PC
  EXPECT_EQ(c.tm("sub").InDoubtCount(), 1u);

  c.network().SetLinkDown("coord", "sub", false);
  c.RunFor(60 * sim::kSecond);
  EXPECT_EQ(c.tm("sub").InDoubtCount(), 0u);
  EXPECT_EQ(c.tm("sub").View(txn).outcome, Outcome::kCommitted);
  EXPECT_TRUE(c.Audit(txn).consistent);
}

TEST(PresumedCommitTest, CoordinatorCrashBeforeDecisionAbortsExplicitly) {
  // The collecting record exists exactly for this: a coordinator crash
  // before the decision must NOT let subordinates presume commit.
  Cluster c;
  uint64_t txn = SetupTwoNodes(c);
  bool completed = false;
  c.tm("coord").Commit(txn, [&](tm::CommitResult) { completed = true; });
  // Crash after prepares are out, before the commit record: collecting is
  // durable, nothing else.
  c.ctx().events().ScheduleAt(c.ctx().now() + 4 * sim::kMillisecond,
                              [&c] { c.ctx().failures().CrashNow("coord"); });
  c.RunFor(sim::kSecond);
  EXPECT_FALSE(completed);
  EXPECT_EQ(c.tm("sub").InDoubtCount(), 1u);

  c.node("coord").Restart();
  c.RunFor(120 * sim::kSecond);
  EXPECT_EQ(c.tm("sub").InDoubtCount(), 0u);
  EXPECT_EQ(c.tm("sub").View(txn).outcome, Outcome::kAborted);
  EXPECT_TRUE(c.node("sub").rm().Peek("sub_key").status().IsNotFound());
  EXPECT_TRUE(c.Audit(txn).consistent);
}

TEST(PresumedCommitTest, CascadedTreeCommits) {
  Cluster c;
  c.AddNode("root", PcOptions());
  c.AddNode("mid", PcOptions());
  c.AddNode("leaf", PcOptions());
  c.Connect("root", "mid");
  c.Connect("mid", "leaf");
  c.tm("mid").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId& from, std::string_view) {
        if (from != "root") return;
        c.tm("mid").Write(txn, 0, "m", "v",
                          [](Status st) { ASSERT_TRUE(st.ok()); });
        ASSERT_TRUE(c.tm("mid").SendWork(txn, "leaf").ok());
      });
  SubWritesOnData(c, "leaf");
  uint64_t txn = c.tm("root").Begin();
  c.tm("root").Write(txn, 0, "r", "v", [](Status st) {
    ASSERT_TRUE(st.ok());
  });
  ASSERT_TRUE(c.tm("root").SendWork(txn, "mid").ok());
  c.RunFor(sim::kSecond);
  auto commit = c.CommitAndWait("root", txn);
  c.RunFor(sim::kSecond);
  ASSERT_TRUE(commit.completed);
  EXPECT_EQ(commit.result.outcome, Outcome::kCommitted);
  EXPECT_TRUE(c.Audit(txn).consistent);
  EXPECT_EQ(c.node("leaf").rm().Peek("leaf_key").value_or(""), "v");
  // Total flows: no acks anywhere => 3 per parent-child edge.
  EXPECT_EQ(c.TotalCost(txn).flows_sent, 6u);
}

}  // namespace
}  // namespace tpc
