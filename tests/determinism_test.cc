// Determinism and contention: two pillars of the harness. The simulation
// must replay identically for a given seed (all failure tests depend on
// it), and lock contention between distributed transactions must resolve
// by timeout-abort without deadlock.

#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "sim/trace.h"

namespace tpc {
namespace {

using harness::Cluster;
using harness::NodeOptions;
using tm::Outcome;

std::string RunScriptedCluster(uint64_t seed) {
  Cluster c(seed);
  NodeOptions options;
  c.AddNode("a", options);
  c.AddNode("b", options);
  c.AddNode("d", options);
  c.Connect("a", "b");
  c.Connect("a", "d");
  for (const std::string node : {"b", "d"}) {
    c.tm(node).SetAppDataHandler(
        [&c, node](uint64_t txn, const net::NodeId&, std::string_view) {
          c.tm(node).Write(txn, 0, node, "v", [](Status) {});
        });
  }
  for (int i = 0; i < 5; ++i) {
    uint64_t txn = c.tm("a").Begin();
    c.tm("a").Write(txn, 0, "k" + std::to_string(i), "v", [](Status) {});
    EXPECT_TRUE(c.tm("a").SendWork(txn, "b").ok());
    EXPECT_TRUE(c.tm("a").SendWork(txn, "d").ok());
    c.RunFor(100 * sim::kMillisecond);
    auto commit = c.CommitAndWait("a", txn);
    EXPECT_TRUE(commit.completed);
  }
  return c.ctx().trace().Render();
}

TEST(DeterminismTest, IdenticalSeedsProduceIdenticalTraces) {
  std::string first = RunScriptedCluster(7);
  std::string second = RunScriptedCluster(7);
  EXPECT_EQ(first, second);
  EXPECT_GT(first.size(), 1000u);  // the trace is substantive
}

TEST(DeterminismTest, TraceIsStableAcrossRepeatedRuns) {
  // Guard against accidental introduction of wall-clock or address-based
  // ordering: ten runs, one fingerprint.
  std::string reference = RunScriptedCluster(99);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(RunScriptedCluster(99), reference);
}

// --- Distributed lock contention -----------------------------------------------

TEST(ContentionTest, ConflictingDistributedTxnsResolveByTimeoutAbort) {
  // Two coordinators write the same remote key in opposite orders across
  // two servers: a classic distributed deadlock. The lock-wait timeout
  // aborts the losers; nothing hangs and the surviving writes are
  // consistent.
  Cluster c;
  NodeOptions options;
  options.rm_options.lock_timeout = 3 * sim::kSecond;
  options.tm.vote_timeout = 30 * sim::kSecond;
  c.AddNode("c1", options);
  c.AddNode("c2", options);
  c.AddNode("s1", options);
  c.AddNode("s2", options);
  for (const char* coord : {"c1", "c2"}) {
    c.Connect(coord, "s1");
    c.Connect(coord, "s2");
  }
  // Payload selects the key; both coordinators write "shared" on both
  // servers, in opposite orders.
  for (const std::string node : {"s1", "s2"}) {
    c.tm(node).SetAppDataHandler(
        [&c, node](uint64_t txn, const net::NodeId&, std::string_view) {
          c.tm(node).Write(txn, 0, "shared", std::to_string(txn),
                           [](Status) { /* may time out: deadlock victim */ });
        });
  }

  uint64_t t1 = c.tm("c1").Begin();
  uint64_t t2 = c.tm("c2").Begin();
  ASSERT_TRUE(c.tm("c1").SendWork(t1, "s1").ok());
  ASSERT_TRUE(c.tm("c2").SendWork(t2, "s2").ok());
  c.RunFor(10 * sim::kMillisecond);
  // Now cross: each wants the other's held key.
  ASSERT_TRUE(c.tm("c1").SendWork(t1, "s2").ok());
  ASSERT_TRUE(c.tm("c2").SendWork(t2, "s1").ok());
  c.RunFor(10 * sim::kSecond);  // the 3s lock timeouts fire

  auto commit1 = c.StartCommit("c1", t1);
  auto commit2 = c.StartCommit("c2", t2);
  c.RunFor(120 * sim::kSecond);

  ASSERT_TRUE(commit1->completed);
  ASSERT_TRUE(commit2->completed);
  // Both transactions terminated (no hang); each is globally consistent.
  EXPECT_TRUE(c.Audit(t1).consistent);
  EXPECT_TRUE(c.Audit(t2).consistent);
  // The shared key, if present, holds a single transaction's value on any
  // server that committed it.
  for (const char* server : {"s1", "s2"}) {
    auto value = c.node(server).rm().Peek("shared");
    if (value.ok()) {
      EXPECT_TRUE(*value == std::to_string(t1) ||
                  *value == std::to_string(t2));
    }
  }
}

TEST(ContentionTest, QueuedWriterProceedsAfterCommit) {
  // A second distributed transaction queues on the first one's lock and
  // completes once it releases — lock waits translate directly into
  // commit-path latency, the paper's core motivation.
  Cluster c;
  NodeOptions options;
  options.rm_options.lock_timeout = 60 * sim::kSecond;
  c.AddNode("coord", options);
  c.AddNode("sub", options);
  c.Connect("coord", "sub");
  c.tm("sub").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm("sub").Write(txn, 0, "hot", std::to_string(txn), [](Status) {});
      });

  uint64_t t1 = c.tm("coord").Begin();
  ASSERT_TRUE(c.tm("coord").SendWork(t1, "sub").ok());
  c.RunFor(100 * sim::kMillisecond);
  uint64_t t2 = c.tm("coord").Begin();
  ASSERT_TRUE(c.tm("coord").SendWork(t2, "sub").ok());
  c.RunFor(100 * sim::kMillisecond);  // t2's write is queued behind t1's

  auto commit1 = c.StartCommit("coord", t1);
  c.RunFor(5 * sim::kSecond);
  ASSERT_TRUE(commit1->completed);
  // t2's write was granted after t1 released; commit it.
  auto commit2 = c.CommitAndWait("coord", t2);
  ASSERT_TRUE(commit2.completed);
  EXPECT_EQ(commit2.result.outcome, Outcome::kCommitted);
  EXPECT_EQ(c.node("sub").rm().Peek("hot").value_or(""), std::to_string(t2));
}

}  // namespace
}  // namespace tpc
