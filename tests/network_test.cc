// Simulated network: latency, ordering, partitions, crash-drop semantics,
// and traffic accounting.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/network.h"
#include "sim/sim_context.h"

namespace tpc::net {
namespace {

// Payload buffers are recycled when OnMessage returns, so the endpoint
// copies the delivered bytes out while they are still live.
class RecordingEndpoint : public Endpoint {
 public:
  RecordingEndpoint(sim::SimContext* ctx, Network* network)
      : ctx_(ctx), network_(network) {}

  void OnMessage(const Message& msg) override {
    received.push_back({ctx_->now(), msg.from, std::string(msg.TagView()),
                        std::string(network_->PayloadOf(msg))});
  }
  bool IsUp() const override { return up; }

  struct Delivery {
    sim::Time at;
    uint32_t from;
    std::string tag;
    std::string payload;
  };
  std::vector<Delivery> received;
  bool up = true;

 private:
  sim::SimContext* ctx_;
  Network* network_;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : network_(&ctx_), a_(&ctx_, &network_), b_(&ctx_, &network_) {
    network_.Register("a", &a_);
    network_.Register("b", &b_);
  }

  Message Make(const std::string& from, const std::string& to,
               std::string_view tag = "PING") {
    Message msg;
    msg.from = network_.InternId(from);
    msg.to = network_.InternId(to);
    msg.trace_tag = tag;
    msg.txn = 1;
    return msg;
  }

  sim::SimContext ctx_;
  Network network_;
  RecordingEndpoint a_, b_;
};

TEST_F(NetworkTest, DeliversWithDefaultLatency) {
  ASSERT_TRUE(network_.Send(Make("a", "b")).ok());
  ctx_.events().Run();
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(b_.received[0].at, sim::kMillisecond);
  EXPECT_EQ(b_.received[0].from, network_.IdOf("a"));
}

TEST_F(NetworkTest, PerLinkLatencyOverride) {
  network_.SetLinkLatency("a", "b", 50 * sim::kMillisecond);
  ASSERT_TRUE(network_.Send(Make("a", "b")).ok());
  ctx_.events().Run();
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(b_.received[0].at, 50 * sim::kMillisecond);
}

TEST_F(NetworkTest, SessionOrderPreservedWhenLatencyDrops) {
  // First message at 50ms latency, second at 1ms: FIFO still holds.
  network_.SetLinkLatency("a", "b", 50 * sim::kMillisecond);
  ASSERT_TRUE(network_.Send(Make("a", "b", "FIRST")).ok());
  network_.SetLinkLatency("a", "b", sim::kMillisecond);
  ASSERT_TRUE(network_.Send(Make("a", "b", "SECOND")).ok());
  ctx_.events().Run();
  ASSERT_EQ(b_.received.size(), 2u);
  EXPECT_EQ(b_.received[0].tag, "FIRST");
  EXPECT_EQ(b_.received[1].tag, "SECOND");
  EXPECT_GE(b_.received[1].at, b_.received[0].at);
}

TEST_F(NetworkTest, UnknownSenderOrDestinationRejected) {
  // Interned but never registered: no endpoint behind the id.
  EXPECT_TRUE(network_.Send(Make("ghost", "b")).IsInvalidArgument());
  EXPECT_TRUE(network_.Send(Make("a", "ghost2")).IsInvalidArgument());
  // Never interned at all (default-initialized message ids).
  Message blank;
  EXPECT_TRUE(network_.Send(std::move(blank)).IsInvalidArgument());
  EXPECT_EQ(network_.stats().messages_rejected, 3u);
}

TEST_F(NetworkTest, DeadSenderRejected) {
  a_.up = false;
  EXPECT_TRUE(network_.Send(Make("a", "b")).IsFailedPrecondition());
}

TEST_F(NetworkTest, DeadReceiverDropsSilently) {
  b_.up = false;
  ASSERT_TRUE(network_.Send(Make("a", "b")).ok());  // sender sees no error
  ctx_.events().Run();
  EXPECT_TRUE(b_.received.empty());
  EXPECT_EQ(network_.stats().messages_dropped, 1u);
}

TEST_F(NetworkTest, ReceiverCrashAfterSendStillDrops) {
  ASSERT_TRUE(network_.Send(Make("a", "b")).ok());
  b_.up = false;  // crashes while the message is in flight
  ctx_.events().Run();
  EXPECT_TRUE(b_.received.empty());
}

TEST_F(NetworkTest, LinkDownDropsBothDirections) {
  network_.SetLinkDown("a", "b", true);
  ASSERT_TRUE(network_.Send(Make("a", "b")).ok());
  ASSERT_TRUE(network_.Send(Make("b", "a")).ok());
  ctx_.events().Run();
  EXPECT_TRUE(a_.received.empty());
  EXPECT_TRUE(b_.received.empty());
  EXPECT_EQ(network_.stats().messages_dropped, 2u);

  network_.SetLinkDown("a", "b", false);
  ASSERT_TRUE(network_.Send(Make("a", "b")).ok());
  ctx_.events().Run();
  EXPECT_EQ(b_.received.size(), 1u);
}

TEST_F(NetworkTest, StatsCountFlowsAndBytes) {
  Message msg = Make("a", "b");
  msg.payload = network_.AcquirePayload();
  network_.PayloadBuffer(msg.payload) = "12345";
  ASSERT_TRUE(network_.Send(std::move(msg)).ok());
  ASSERT_TRUE(network_.Send(Make("b", "a")).ok());
  ctx_.events().Run();
  EXPECT_EQ(network_.stats().messages_sent, 2u);
  EXPECT_EQ(network_.stats().messages_delivered, 2u);
  EXPECT_EQ(network_.stats().bytes_sent, 5u);
  EXPECT_EQ(network_.stats().bytes_delivered, 5u);
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(b_.received[0].payload, "12345");
  EXPECT_EQ(network_.SentBy("a"), 1u);
  EXPECT_EQ(network_.SentBy("b"), 1u);
  EXPECT_EQ(network_.SentBy("ghost"), 0u);
}

TEST_F(NetworkTest, DroppedBytesCountedSentButNotDelivered) {
  b_.up = false;
  Message msg = Make("a", "b");
  msg.payload = network_.AcquirePayload();
  network_.PayloadBuffer(msg.payload) = "123";
  ASSERT_TRUE(network_.Send(std::move(msg)).ok());
  ctx_.events().Run();
  EXPECT_EQ(network_.stats().bytes_sent, 3u);
  EXPECT_EQ(network_.stats().bytes_delivered, 0u);
}

TEST_F(NetworkTest, LegacySendResolvesNamesAndCopiesPayload) {
  LegacyMessage msg;
  msg.from = "a";
  msg.to = "b";
  msg.trace_tag = "LEGACY";
  msg.payload = "abcdef";
  msg.txn = 7;
  ASSERT_TRUE(network_.SendLegacy(std::move(msg)).ok());
  ctx_.events().Run();
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(b_.received[0].from, network_.IdOf("a"));
  EXPECT_EQ(b_.received[0].tag, "LEGACY");
  EXPECT_EQ(b_.received[0].payload, "abcdef");
  EXPECT_EQ(network_.stats().bytes_sent, 6u);

  LegacyMessage ghost;
  ghost.from = "nobody";
  ghost.to = "b";
  EXPECT_TRUE(network_.SendLegacy(std::move(ghost)).IsInvalidArgument());
}

TEST_F(NetworkTest, TraceRecordsSendAndReceive) {
  ASSERT_TRUE(network_.Send(Make("a", "b")).ok());
  ctx_.events().Run();
  EXPECT_EQ(ctx_.trace().Count(sim::TraceKind::kSend, "a"), 1u);
  EXPECT_EQ(ctx_.trace().Count(sim::TraceKind::kReceive, "b"), 1u);
}

TEST_F(NetworkTest, TracingCanBeDisabled) {
  network_.set_tracing(false);
  ASSERT_TRUE(network_.Send(Make("a", "b")).ok());
  ctx_.events().Run();
  EXPECT_EQ(ctx_.trace().Count(sim::TraceKind::kSend), 0u);
}

// --- in-flight link-flap semantics (pinned by src/net/network.h) ------------

TEST_F(NetworkTest, InFlightMessageDueDuringOutageIsDroppedRetroactively) {
  // Sent while the link was up, delivery falls inside the outage window:
  // the outage destroys it, as a real line failure would.
  network_.SetLinkLatency("a", "b", 10 * sim::kMillisecond);
  ASSERT_TRUE(network_.Send(Make("a", "b")).ok());
  ctx_.events().ScheduleAt(5 * sim::kMillisecond,
                           [this] { network_.SetLinkDown("a", "b", true); });
  ctx_.events().Run();
  EXPECT_TRUE(b_.received.empty());
  EXPECT_EQ(network_.stats().messages_dropped, 1u);
}

TEST_F(NetworkTest, InFlightMessageDueAfterRecoveryIsDelivered) {
  // The outage opens and closes entirely before the delivery instant: the
  // message was neither on the wire during the outage (queued at the
  // sender) nor due during it, so it arrives.
  network_.SetLinkLatency("a", "b", 20 * sim::kMillisecond);
  ASSERT_TRUE(network_.Send(Make("a", "b")).ok());
  ctx_.events().ScheduleAt(2 * sim::kMillisecond,
                           [this] { network_.SetLinkDown("a", "b", true); });
  ctx_.events().ScheduleAt(8 * sim::kMillisecond,
                           [this] { network_.SetLinkDown("a", "b", false); });
  ctx_.events().Run();
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(b_.received[0].at, 20 * sim::kMillisecond);
}

TEST_F(NetworkTest, FlapPreservesSessionOrderAcrossSurvivors) {
  // One message dropped by the outage must not reorder the survivors.
  network_.SetLinkLatency("a", "b", 10 * sim::kMillisecond);
  ASSERT_TRUE(network_.Send(Make("a", "b", "FIRST")).ok());  // due 10ms: drop
  ctx_.events().ScheduleAt(5 * sim::kMillisecond,
                           [this] { network_.SetLinkDown("a", "b", true); });
  ctx_.events().ScheduleAt(15 * sim::kMillisecond, [this] {
    network_.SetLinkDown("a", "b", false);
    ASSERT_TRUE(network_.Send(Make("a", "b", "SECOND")).ok());
    ASSERT_TRUE(network_.Send(Make("a", "b", "THIRD")).ok());
  });
  ctx_.events().Run();
  ASSERT_EQ(b_.received.size(), 2u);
  EXPECT_EQ(b_.received[0].tag, "SECOND");
  EXPECT_EQ(b_.received[1].tag, "THIRD");
  EXPECT_LE(b_.received[0].at, b_.received[1].at);
}

// --- probabilistic loss -----------------------------------------------------

TEST_F(NetworkTest, LossRateZeroAndOneAreExact) {
  network_.SetLinkLossRate("a", "b", 0.0);
  ASSERT_TRUE(network_.Send(Make("a", "b")).ok());
  ctx_.events().Run();
  EXPECT_EQ(b_.received.size(), 1u);

  network_.SetLinkLossRate("a", "b", 1.0);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(network_.Send(Make("a", "b")).ok());
  ctx_.events().Run();
  EXPECT_EQ(b_.received.size(), 1u);  // nothing further arrived
  EXPECT_EQ(network_.stats().messages_dropped, 10u);
}

TEST_F(NetworkTest, LossAppliesToBothDirections) {
  network_.SetLinkLossRate("a", "b", 1.0);
  EXPECT_DOUBLE_EQ(network_.LinkLossRate("b", "a"), 1.0);
  ASSERT_TRUE(network_.Send(Make("b", "a")).ok());
  ctx_.events().Run();
  EXPECT_TRUE(a_.received.empty());
}

TEST(NetworkLossDeterminism, SameSeedSameDropPattern) {
  auto run = [](uint64_t seed) {
    sim::SimContext ctx(seed);
    Network network(&ctx);
    RecordingEndpoint a(&ctx, &network), b(&ctx, &network);
    network.Register("a", &a);
    network.Register("b", &b);
    network.SetLinkLossRate("a", "b", 0.5);
    for (int i = 0; i < 64; ++i) {
      Message msg;
      msg.from = network.InternId("a");
      msg.to = network.InternId("b");
      msg.trace_tag = "N";
      msg.txn = static_cast<uint64_t>(i) + 1;
      EXPECT_TRUE(network.Send(std::move(msg)).ok());
    }
    ctx.events().Run();
    std::vector<uint64_t> delivered;
    for (const auto& d : b.received) delivered.push_back(d.at);
    return delivered;
  };
  const auto first = run(7);
  const auto second = run(7);
  const auto other = run(8);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
  EXPECT_NE(first.size(), 64u);  // some were actually dropped
  EXPECT_NE(first, other);       // and the pattern is seed-dependent
}

}  // namespace
}  // namespace tpc::net
