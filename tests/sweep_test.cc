// The parallel sweep runner's contract: a sweep over real simulation cells
// run with N worker threads is byte-identical to the same grid run
// serially, because each cell builds its own SimContext and shares nothing.
// Also pins down result ordering, exception propagation, and thread
// resolution.

#include "harness/sweep.h"

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/bench_report.h"
#include "harness/cluster.h"
#include "util/logging.h"

namespace tpc::harness {
namespace {

// A real simulation cell: a 3-node commit with a per-cell link latency.
// Everything the cell touches is constructed inside the call.
SweepCell CommitCell(size_t i) {
  Cluster c(/*seed=*/100 + i);
  NodeOptions options;
  c.AddNode("coord", options);
  c.AddNode("s1", options);
  c.AddNode("s2", options);
  c.Connect("coord", "s1");
  c.Connect("coord", "s2");
  c.network().set_tracing(false);
  c.network().SetLinkLatency("coord", "s1",
                             static_cast<sim::Time>(1 + i) * sim::kMillisecond);
  for (const std::string node : {"s1", "s2"}) {
    c.tm(node).SetAppDataHandler(
        [&c, node](uint64_t txn, const net::NodeId&, std::string_view) {
          c.tm(node).Write(txn, 0, node + "_k", "v",
                           [](Status st) { TPC_CHECK(st.ok()); });
        });
  }
  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) { TPC_CHECK(st.ok()); });
  TPC_CHECK(c.tm("coord").SendWork(txn, "s1").ok());
  TPC_CHECK(c.tm("coord").SendWork(txn, "s2").ok());
  c.RunFor(100 * sim::kMillisecond);
  DrivenCommit commit = c.CommitAndWait("coord", txn);
  TPC_CHECK(commit.completed);

  SweepCell cell;
  cell.label = "cell" + std::to_string(i);
  cell.events = c.ctx().events().executed();
  cell.txns = 1;
  cell.sim_time = c.ctx().now();
  cell.Add("commit_latency_ms",
           static_cast<double>(commit.latency) / sim::kMillisecond);
  return cell;
}

TEST(SweepTest, ParallelMatchesSerialByteForByte) {
  constexpr size_t kCells = 8;
  std::vector<SweepCell> serial = RunSweep(kCells, CommitCell, /*threads=*/1);
  std::vector<SweepCell> parallel =
      RunSweep(kCells, CommitCell, /*threads=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < kCells; ++i) {
    EXPECT_EQ(serial[i].ToString(), parallel[i].ToString()) << "cell " << i;
  }
}

TEST(SweepTest, ResultsAreInGridOrderRegardlessOfCompletionOrder) {
  std::vector<SweepCell> cells = RunSweep(
      16,
      [](size_t i) {
        SweepCell cell;
        cell.label = "c" + std::to_string(i);
        cell.events = i;
        return cell;
      },
      /*threads=*/4);
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].label, "c" + std::to_string(i));
    EXPECT_EQ(cells[i].events, i);
  }
}

TEST(SweepTest, CellExceptionIsRethrownOnCaller) {
  EXPECT_THROW(RunSweep(
                   8,
                   [](size_t i) -> SweepCell {
                     if (i == 3) throw std::runtime_error("cell failed");
                     return SweepCell{};
                   },
                   /*threads=*/2),
               std::runtime_error);
}

TEST(SweepTest, EveryCellRunsExactlyOnce) {
  std::atomic<int> runs{0};
  RunSweep(
      32,
      [&runs](size_t) {
        runs.fetch_add(1, std::memory_order_relaxed);
        return SweepCell{};
      },
      /*threads=*/4);
  EXPECT_EQ(runs.load(), 32);
}

TEST(SweepTest, ResolveThreadsClampsToCells) {
  EXPECT_EQ(ResolveThreads(8, 3), 3u);
  EXPECT_EQ(ResolveThreads(2, 100), 2u);
  EXPECT_GE(ResolveThreads(0, 100), 1u);
}

TEST(SweepTest, CellToStringIsCanonical) {
  SweepCell cell;
  cell.label = "x";
  cell.events = 5;
  cell.txns = 2;
  cell.sim_time = 7;
  cell.Add("m", 1.5);
  EXPECT_EQ(cell.ToString(), "x|events=5|txns=2|sim_time=7|m=1.5");
  EXPECT_DOUBLE_EQ(cell.Get("m"), 1.5);
  EXPECT_DOUBLE_EQ(cell.Get("absent", -1.0), -1.0);
}

TEST(SweepTest, BenchReportJsonCarriesTotalsAndMetrics) {
  BenchReport report("unit");
  SweepCell cell;
  cell.label = "a";
  cell.events = 10;
  cell.txns = 4;
  cell.sim_time = 2 * sim::kSecond;
  cell.Add("metric", 3.0);
  report.AddCell(cell);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"bench\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"events\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"events_per_sec\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_txns_per_sec\""), std::string::npos);
  EXPECT_NE(json.find("\"metric\": 3"), std::string::npos);
}

}  // namespace
}  // namespace tpc::harness
