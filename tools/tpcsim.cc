// tpcsim: run a scenario script against the simulator.
//
//   tpcsim scenarios/last_agent.tpc
//
// Exits 0 when every expectation in the script held, 1 on expectation
// failures, 2 on script errors. See src/harness/scenario_script.h for the
// command reference and scenarios/ for examples.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness/scenario_script.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <scenario-file>\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  auto report = tpc::harness::RunScenarioScript(buffer.str());
  if (!report.ok()) {
    std::fprintf(stderr, "script error: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  std::printf("%s", report->output.c_str());
  std::printf("%d commands, %d expectation(s) failed\n", report->commands,
              report->expect_failed);
  return report->expect_failed == 0 ? 0 : 1;
}
