#!/usr/bin/env python3
"""Compare two BENCH_<name>.json files and fail on regressions.

Usage:
  bench_diff.py baseline.json current.json [--tolerance 0.10]
                [--metrics PATTERN]

Cells are matched by label. By default only metrics whose name contains
"speedup" are gated: speedups are ratios of two runs on the same machine,
so they transfer across hardware, while absolute commits/sec or ops/sec do
not (the checked-in baselines come from a different box than CI). Pass
--metrics to gate a different set (substring match, comma-separated).

Each pattern may carry its own tolerance as "pattern:tol", overriding
--tolerance; mixing is fine:

  --metrics "speedup,scale_efficiency:0.35,txns_per_mevent:0.05"

A metric matched by several patterns uses the first one. A gated metric
regresses when current < baseline * (1 - tolerance). Higher is assumed
better; wall_seconds-style metrics are never gated by default.

A pattern prefixed with "=" gates two-sided: the metric must stay within
tolerance of the baseline in *either* direction. Use this for deterministic
simulated-time quantities (device forces, simulated latency percentiles)
where a silent drop *or* rise is a behavior change worth flagging:

  --metrics "=device_forces:0.10,=p99_force_latency_us:0.15"

A metric whose *name* starts with "~" is report-only: it is printed with
its baseline (when present) for eyeballing trends, but it is never gated,
no matter what --metrics matches. Benches use the prefix for wall-clock
quantities (live commits/sec, latency percentiles on real hardware) that
are machine property, not code property.

Exit status: 0 = no regression, 1 = regression or malformed input.
"""

import argparse
import json
import sys


def load_cells(path):
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)
    cells = {}
    for cell in report.get("cells", []):
        label = cell.get("label")
        if label is None:
            raise ValueError(f"{path}: cell without a label")
        cells[label] = cell
    if not cells:
        raise ValueError(f"{path}: no cells")
    return report.get("bench", "?"), cells


def parse_patterns(spec, default_tolerance):
    """'a,=b:0.35' -> [('a', default, False), ('b', 0.35, True)]."""
    patterns = []
    for part in spec.split(","):
        if not part:
            continue
        two_sided = part.startswith("=")
        if two_sided:
            part = part[1:]
        if ":" in part:
            name, _, tol = part.rpartition(":")
            patterns.append((name, float(tol), two_sided))
        else:
            patterns.append((part, default_tolerance, two_sided))
    return patterns


def gated_metrics(cell, patterns):
    skip = {"label", "events", "txns", "sim_seconds"}
    for name, value in cell.items():
        if name in skip or not isinstance(value, (int, float)):
            continue
        if name.startswith("~"):  # report-only class: never gated
            continue
        for pattern, tolerance, two_sided in patterns:
            if pattern in name:
                yield name, float(value), tolerance, two_sided
                break


def report_only_metrics(cell):
    for name, value in cell.items():
        if name.startswith("~") and isinstance(value, (int, float)):
            yield name, float(value)


def main():
    parser = argparse.ArgumentParser(
        description="Fail when a benchmark metric regresses vs a baseline.")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional drop (default 0.10)")
    parser.add_argument("--metrics", default="speedup",
                        help="comma-separated substrings of metric names to "
                             "gate, each optionally with its own tolerance "
                             "as NAME:TOL (default: speedup)")
    args = parser.parse_args()

    try:
        base_name, base_cells = load_cells(args.baseline)
        cur_name, cur_cells = load_cells(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"bench_diff: {err}", file=sys.stderr)
        return 1
    if base_name != cur_name:
        print(f"bench_diff: comparing different benches "
              f"({base_name!r} vs {cur_name!r})", file=sys.stderr)
        return 1

    try:
        patterns = parse_patterns(args.metrics, args.tolerance)
    except ValueError as err:
        print(f"bench_diff: bad --metrics: {err}", file=sys.stderr)
        return 1
    regressions = []
    checked = 0
    for label, base_cell in sorted(base_cells.items()):
        cur_cell = cur_cells.get(label)
        if cur_cell is None:
            regressions.append(f"{label}: cell missing from {args.current}")
            continue
        for metric, cur_value in report_only_metrics(cur_cell):
            base = base_cell.get(metric)
            trend = (f"{float(base):.3f} -> {cur_value:.3f}"
                     if isinstance(base, (int, float)) else f"{cur_value:.3f}")
            print(f"  [---] {label:32s} {metric}: {trend} (report-only)")
        for metric, base_value, tolerance, two_sided in gated_metrics(
                base_cell, patterns):
            if metric not in cur_cell:
                regressions.append(f"{label}.{metric}: missing from current")
                continue
            cur_value = float(cur_cell[metric])
            floor = base_value * (1.0 - tolerance)
            ceiling = base_value * (1.0 + tolerance)
            if two_sided:
                ok = min(floor, ceiling) <= cur_value <= max(floor, ceiling)
                bound = f"range [{floor:.3f}, {ceiling:.3f}]"
            else:
                ok = cur_value >= floor
                bound = f"floor {floor:.3f}"
            checked += 1
            marker = "ok " if ok else "REG"
            print(f"  [{marker}] {label:32s} {metric}: "
                  f"{base_value:.3f} -> {cur_value:.3f} ({bound})")
            if not ok:
                regressions.append(
                    f"{label}.{metric}: {cur_value:.3f} outside {bound} "
                    f"(baseline {base_value:.3f}, tolerance "
                    f"{tolerance:.0%})")

    if checked == 0:
        print("bench_diff: no gated metrics matched "
              f"{patterns!r} in {args.baseline}", file=sys.stderr)
        return 1
    if regressions:
        print(f"\nbench_diff: {len(regressions)} regression(s):",
              file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    print(f"bench_diff: {checked} metric(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
