// Cluster-scale commit bench: simulated txns/sec and events/sec as the
// cluster grows 64 -> 2048 servers at fixed fanout, across protocol
// families (basic 2PC, presumed abort with read-only + last-agent,
// presumed nothing), coordinator counts, Zipf skew, and topology shapes.
//
// What it gates (via tools/bench_diff.py against bench/baselines):
//   - txns_per_mevent: committed+aborted per million simulator events.
//     Deterministic for a (config, seed) cell, so any drift is a behavior
//     change, not machine noise (tolerance 0.05).
//   - scale_efficiency: per-event wall cost of the 64-server cell divided
//     by this cell's — the "no O(cluster-size) work per txn" property. If
//     some per-message or per-commit path regains an O(nodes) scan, big
//     cells pay more per event and the ratio collapses (tolerance 0.35
//     absorbs machine noise in the wall-clock numerator).
// Everything else in the JSON (throughput, latency, bytes_per_node, peak
// RSS) is trajectory data, not a gate.
//
// Usage: cluster_bench [txns_per_cell] [threads]
//   threads defaults to 1: scale_efficiency compares wall time across
//   cells, which parallel cell execution would contaminate.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/bench_report.h"
#include "harness/cluster.h"
#include "harness/cluster_workload.h"
#include "harness/sweep.h"
#include "util/format.h"
#include "util/logging.h"

namespace {

using namespace tpc;
using harness::Cluster;
using harness::ClusterWorkloadOptions;
using harness::ClusterWorkloadStats;
using harness::NodeOptions;
using harness::Topology;
using harness::TopologyOptions;
using harness::TopologyShape;

struct CellConfig {
  std::string label;
  tm::TmConfig tm;
  TopologyShape shape = TopologyShape::kTree;
  size_t servers = 64;
  size_t fanout = 8;
  size_t coordinators = 4;
  double theta = 0.5;
  bool in_scale_sweep = false;  // participates in scale_efficiency ratios
};

tm::TmConfig Protocol(const char* family) {
  tm::TmConfig tm;
  if (std::string(family) == "basic") {
    tm.protocol = tm::ProtocolKind::kBasic2PC;
  } else if (std::string(family) == "pa_ro_la") {
    tm.protocol = tm::ProtocolKind::kPresumedAbort;
    tm.read_only_opt = true;
    tm.last_agent_opt = true;
  } else {
    tm.protocol = tm::ProtocolKind::kPresumedNothing;
  }
  return tm;
}

const char* ShapeName(TopologyShape shape) {
  switch (shape) {
    case TopologyShape::kTree: return "tree";
    case TopologyShape::kStar: return "star";
    case TopologyShape::kRandomSparse: return "sparse";
  }
  return "?";
}

std::vector<CellConfig> Grid(const char* family, size_t base_servers) {
  std::vector<CellConfig> grid;
  auto add = [&](TopologyShape shape, size_t servers, size_t fanout,
                 size_t coordinators, double theta, bool scale) {
    CellConfig c;
    c.label = StringPrintf("%s %s n%zu f%zu c%zu t%.1f", family,
                           ShapeName(shape), servers, fanout, coordinators,
                           theta);
    c.tm = Protocol(family);
    c.shape = shape;
    c.servers = servers;
    c.fanout = fanout;
    c.coordinators = coordinators;
    c.theta = theta;
    c.in_scale_sweep = scale;
    grid.push_back(c);
  };

  // Node-count sweep at fixed fanout: the scale_efficiency axis.
  for (size_t servers : {base_servers, 4 * base_servers, 16 * base_servers,
                         32 * base_servers}) {
    add(TopologyShape::kTree, servers, 8, 4, 0.5, /*scale=*/true);
  }
  return grid;
}

std::vector<CellConfig> ShapeGrid(size_t servers) {
  // Coordinator count, skew, and shape knobs on the mid-size cell, all on
  // the optimized-PA family (the paper's commercial recommendation).
  std::vector<CellConfig> grid;
  auto add = [&](TopologyShape shape, size_t fanout, size_t coordinators,
                 double theta) {
    CellConfig c;
    c.label = StringPrintf("pa_ro_la %s n%zu f%zu c%zu t%.1f",
                           ShapeName(shape), servers, fanout, coordinators,
                           theta);
    c.tm = Protocol("pa_ro_la");
    c.shape = shape;
    c.servers = servers;
    c.fanout = fanout;
    c.coordinators = coordinators;
    c.theta = theta;
    grid.push_back(c);
  };

  add(TopologyShape::kTree, 8, 1, 0.5);
  add(TopologyShape::kTree, 8, 2, 0.5);  // the CI smoke cell
  add(TopologyShape::kTree, 8, 8, 0.5);
  add(TopologyShape::kTree, 8, 4, 0.0);
  add(TopologyShape::kTree, 8, 4, 0.9);
  add(TopologyShape::kTree, 4, 4, 0.5);  // deeper tree, same node count
  add(TopologyShape::kStar, 8, 4, 0.5);
  add(TopologyShape::kRandomSparse, 4, 4, 0.5);
  return grid;
}

struct CellResult {
  harness::SweepCell cell;
  double wall_seconds = 0;
  uint64_t events = 0;
  bool in_scale_sweep = false;
  std::string family;
};

CellResult RunCell(const CellConfig& config, uint64_t txns) {
  const auto t0 = std::chrono::steady_clock::now();

  Cluster cluster(/*seed=*/42);
  cluster.network().set_tracing(false);
  cluster.ctx().trace().set_capture(false);

  TopologyOptions topt;
  topt.shape = config.shape;
  topt.servers = config.servers;
  topt.fanout = config.fanout;
  topt.coordinators = config.coordinators;
  topt.node_options.tm = config.tm;
  const Topology topo = cluster.BuildTopology(topt);

  // Time the transaction stream separately from cluster construction:
  // building N nodes is O(N) by nature, and folding it into the per-event
  // cost would make scale_efficiency measure setup, not the commit path.
  const auto t1 = std::chrono::steady_clock::now();
  ClusterWorkloadOptions wopt;
  wopt.transactions = txns;
  wopt.theta = config.theta;
  const ClusterWorkloadStats stats =
      RunClusterWorkload(&cluster, topo, wopt);
  const auto t2 = std::chrono::steady_clock::now();

  const double setup = std::chrono::duration<double>(t1 - t0).count();
  const double run = std::chrono::duration<double>(t2 - t1).count();
  const double wall = std::chrono::duration<double>(t2 - t0).count();
  const harness::MemoryStats mem = cluster.MemoryUsage();

  CellResult r;
  r.wall_seconds = wall;
  r.events = stats.events;
  r.in_scale_sweep = config.in_scale_sweep;

  harness::SweepCell& cell = r.cell;
  cell.label = config.label;
  cell.events = stats.events;
  cell.txns = stats.committed + stats.aborted;
  cell.sim_time = stats.elapsed;
  cell.Add("committed", static_cast<double>(stats.committed));
  cell.Add("aborted", static_cast<double>(stats.aborted));
  cell.Add("incomplete", static_cast<double>(stats.incomplete));
  cell.Add("txns_per_mevent",
           stats.events > 0 ? 1e6 * static_cast<double>(cell.txns) /
                                  static_cast<double>(stats.events)
                            : 0.0);
  cell.Add("sim_txns_per_sec", stats.Throughput());
  cell.Add("mean_commit_latency_ms", stats.mean_commit_latency_ms);
  cell.Add("flows", static_cast<double>(stats.flows));
  cell.Add("depth", static_cast<double>(topo.depth));
  cell.Add("wall_seconds", wall);
  cell.Add("setup_seconds", setup);
  cell.Add("run_seconds", run);
  cell.Add("wall_events_per_sec",
           run > 0 ? static_cast<double>(stats.events) / run : 0.0);
  cell.Add("bytes_per_node", mem.bytes_per_node());
  cell.Add("tm_bytes", static_cast<double>(mem.tm_bytes));
  cell.Add("network_bytes", static_cast<double>(mem.network_bytes));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t txns =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;
  const unsigned threads =
      argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10)) : 1;

  std::vector<CellConfig> grid;
  for (const char* family : {"basic", "pa_ro_la", "pn"}) {
    for (CellConfig& c : Grid(family, 64)) grid.push_back(std::move(c));
  }
  for (CellConfig& c : ShapeGrid(256)) grid.push_back(std::move(c));

  harness::BenchReport report("cluster");
  report.set_threads(harness::ResolveThreads(threads, grid.size()));

  std::printf(
      "cluster-scale commit: %zu cells, %llu txns/cell, %u thread(s)\n"
      "  %-30s %9s %9s %11s %11s %9s\n",
      grid.size(), static_cast<unsigned long long>(txns), threads, "cell",
      "events", "wall_s", "ev/s(wall)", "txn/s(sim)", "KiB/node");

  // One warmup cell so the first timed cell doesn't pay first-touch costs.
  RunCell(grid[0], txns / 4 + 1);

  // Scale-sweep cells repeat and keep the fastest run: scale_efficiency is
  // a wall-clock ratio, and best-of-N strips scheduler noise from both
  // sides of it (simulation results are identical across reps, so only the
  // timing differs).
  std::vector<harness::SweepCell> raw = harness::RunSweep(
      grid.size(),
      [&](size_t i) {
        CellResult best = RunCell(grid[i], txns);
        const int reps = grid[i].in_scale_sweep ? 2 : 0;
        for (int r = 0; r < reps; ++r) {
          CellResult again = RunCell(grid[i], txns);
          if (again.cell.Get("run_seconds") < best.cell.Get("run_seconds"))
            best = again;
        }
        return best.cell;
      },
      threads);

  // scale_efficiency: per-event wall cost of each family's smallest cell
  // over this cell's. Flat per-event cost as nodes grow => ~1.0.
  for (const char* family : {"basic", "pa_ro_la", "pn"}) {
    double base_cost = -1.0;
    for (harness::SweepCell& cell : raw) {
      if (cell.label.rfind(family, 0) != 0) continue;
      const bool scale_cell = cell.label.find(" tree n") != std::string::npos &&
                              cell.label.find(" f8 c4 t0.5") !=
                                  std::string::npos;
      if (!scale_cell) continue;
      const double cost = cell.events > 0
                              ? cell.Get("run_seconds") /
                                    static_cast<double>(cell.events)
                              : 0.0;
      if (base_cost < 0) base_cost = cost;  // grid order: smallest first
      cell.Add("scale_efficiency", cost > 0 ? base_cost / cost : 0.0);
    }
  }

  for (const harness::SweepCell& cell : raw) {
    report.AddCell(cell);
    std::printf("  %-30s %9llu %9.3f %11.0f %11.0f %9.1f\n",
                cell.label.c_str(),
                static_cast<unsigned long long>(cell.events),
                cell.Get("wall_seconds"), cell.Get("wall_events_per_sec"),
                cell.Get("sim_txns_per_sec"),
                cell.Get("bytes_per_node") / 1024.0);
  }

  std::printf("\n%s\n", report.Summary().c_str());
  std::printf("peak rss: %.1f MiB\n",
              static_cast<double>(harness::PeakRssBytes()) / (1024.0 * 1024.0));
  std::printf("wrote %s\n", report.WriteJson().c_str());
  return 0;
}
