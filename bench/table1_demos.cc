// Reproduces Table 1 of the paper — the qualitative advantages and
// disadvantages of each optimization — as executable demonstrations: each
// row's claimed advantage and disadvantage is exhibited by a concrete
// scenario and checked, not just asserted.

#include <cstdio>

#include "harness/cluster.h"
#include "util/logging.h"
#include "util/format.h"

namespace {

using namespace tpc;
using harness::Cluster;
using harness::NodeOptions;
using tm::Outcome;
using tm::ProtocolKind;

int g_failures = 0;

void Report(const char* optimization, const char* claim, bool demonstrated,
            const std::string& evidence) {
  std::printf("%-18s %-52s %s\n", optimization, claim,
              demonstrated ? "demonstrated" : "NOT DEMONSTRATED");
  std::printf("%-18s   evidence: %s\n", "", evidence.c_str());
  if (!demonstrated) ++g_failures;
}

NodeOptions Pa() {
  NodeOptions options;
  options.tm.protocol = ProtocolKind::kPresumedAbort;
  return options;
}

void AttachWriter(Cluster& c, const std::string& node) {
  c.tm(node).SetAppDataHandler(
      [&c, node](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm(node).Write(txn, 0, node + "_key", "v",
                         [](Status st) { TPC_CHECK(st.ok()); });
      });
}

// Read only: advantage = fewer messages/logs + early lock release;
// disadvantage = potential serializability violation.
void DemoReadOnly() {
  // Advantage: early release. Pa votes read-only; its lock frees before
  // global end.
  {
    Cluster c;
    c.AddNode("coord", Pa());
    c.AddNode("ro", Pa());
    c.Connect("coord", "ro");
    // Slow the commit down so the early release is observable.
    c.network().SetLinkLatency("coord", "ro", 100 * sim::kMillisecond);
    c.tm("ro").SetAppDataHandler(
        [&c](uint64_t txn, const net::NodeId&, std::string_view) {
          c.tm("ro").Read(txn, 0, "shared", [](Result<std::string>) {});
        });
    uint64_t txn = c.tm("coord").Begin();
    c.tm("coord").Write(txn, 0, "k", "v",
                        [](Status st) { TPC_CHECK(st.ok()); });
    TPC_CHECK(c.tm("coord").SendWork(txn, "ro").ok());
    c.RunFor(sim::kSecond);
    auto commit = c.StartCommit("coord", txn);
    // Run just past the prepare leg: the RO voter has voted and released,
    // but its vote has not yet reached the coordinator.
    c.RunFor(150 * sim::kMillisecond);
    bool released_early = false;
    uint64_t probe = c.tm("ro").Begin();
    c.tm("ro").Write(probe, 0, "shared", "x",
                     [&](Status st) { released_early = st.ok(); });
    c.RunFor(10 * sim::kMillisecond);
    Report("Read only", "advantage: early lock release at the RO voter",
           released_early && !commit->completed,
           "RO voter's lock was free while commit was still in flight");
  }
  // Disadvantage: serialization hazard — the RO voter releases while a
  // sibling still works; another transaction slips in between.
  {
    Cluster c;
    c.AddNode("coord", Pa());
    c.AddNode("pa", Pa());  // reads the shared resource, votes RO
    c.AddNode("pb", Pa());  // still working when pa releases
    c.Connect("coord", "pa");
    c.Connect("coord", "pb");
    c.network().SetLinkLatency("coord", "pb", 300 * sim::kMillisecond);
    std::string observed_at_pb;
    c.tm("pa").SetAppDataHandler(
        [&c](uint64_t txn, const net::NodeId&, std::string_view) {
          c.tm("pa").Read(txn, 0, "acct", [](Result<std::string>) {});
        });
    c.tm("pb").SetAppDataHandler(
        [&c](uint64_t txn, const net::NodeId&, std::string_view) {
          c.tm("pb").Write(txn, 0, "pb_key", "v",
                           [](Status st) { TPC_CHECK(st.ok()); });
        });
    // Seed pa's store.
    {
      uint64_t seed = c.tm("pa").Begin();
      c.tm("pa").Write(seed, 0, "acct", "100",
                       [](Status st) { TPC_CHECK(st.ok()); });
      auto done = c.CommitAndWait("pa", seed);
      TPC_CHECK(done.completed);
    }
    uint64_t txn = c.tm("coord").Begin();
    c.tm("coord").Write(txn, 0, "k", "v", [](Status st) {
      TPC_CHECK(st.ok());
    });
    TPC_CHECK(c.tm("coord").SendWork(txn, "pa").ok());
    TPC_CHECK(c.tm("coord").SendWork(txn, "pb").ok());
    c.RunFor(sim::kSecond);
    auto commit = c.StartCommit("coord", txn);
    c.RunFor(50 * sim::kMillisecond);  // pa has voted RO and released
    // An unrelated transaction changes what pa had read — before the
    // original transaction globally terminates.
    bool intruder_committed = false;
    {
      uint64_t intruder = c.tm("pa").Begin();
      c.tm("pa").Write(intruder, 0, "acct", "0",
                       [](Status st) { TPC_CHECK(st.ok()); });
      c.tm("pa").Commit(intruder, [&](tm::CommitResult r) {
        intruder_committed = r.outcome == Outcome::kCommitted;
      });
    }
    c.RunFor(10 * sim::kSecond);
    Report("Read only",
           "disadvantage: early release can violate serializability",
           intruder_committed && commit->completed,
           "an unrelated txn overwrote pa's read set before global end");
  }
}

// Vote reliable: advantage = fewer flows; disadvantage = a heuristic at a
// "reliable" resource goes unreported to the root.
void DemoVoteReliable() {
  Cluster c;
  NodeOptions options = Pa();
  options.tm.vote_reliable_opt = true;
  options.rm_options.reliable = true;  // claims reliability...
  options.tm.heuristic_policy = tm::HeuristicPolicy::kAbort;  // ...but isn't
  options.tm.heuristic_delay = 20 * sim::kSecond;
  options.tm.inquiry_delay = 500 * sim::kSecond;
  c.AddNode("coord", options);
  c.AddNode("sub", options);
  c.Connect("coord", "sub");
  AttachWriter(c, "sub");
  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) { TPC_CHECK(st.ok()); });
  TPC_CHECK(c.tm("coord").SendWork(txn, "sub").ok());
  c.RunFor(sim::kSecond);
  // The commit decision never reaches the sub (link drops right after the
  // vote arrives); the sub heuristically aborts against the commit.
  auto commit = c.StartCommit("coord", txn);
  c.RunFor(7 * sim::kMillisecond);  // vote received, commit not yet delivered
  c.network().SetLinkDown("coord", "sub", true);
  c.RunFor(60 * sim::kSecond);
  harness::TxnAudit audit = c.Audit(txn);
  Report("Vote reliable",
         "disadvantage: damage report to the root is lost",
         commit->completed && !commit->result.heuristic_damage &&
             audit.damage_ground_truth,
         "root completed cleanly (no ack expected) while the 'reliable' "
         "resource heuristically aborted");
}

// Wait for outcome: advantage = commit does not block across partitions.
void DemoWaitForOutcome() {
  Cluster c;
  NodeOptions root_options = Pa();
  root_options.tm.protocol = ProtocolKind::kPresumedNothing;
  root_options.tm.wait_for_outcome_block = false;
  root_options.tm.ack_timeout = 2 * sim::kSecond;
  NodeOptions sub_options = Pa();
  sub_options.tm.protocol = ProtocolKind::kPresumedNothing;
  c.AddNode("root", root_options);
  c.AddNode("sub", sub_options);
  c.Connect("root", "sub");
  AttachWriter(c, "sub");
  uint64_t txn = c.tm("root").Begin();
  c.tm("root").Write(txn, 0, "k", "v", [](Status st) { TPC_CHECK(st.ok()); });
  TPC_CHECK(c.tm("root").SendWork(txn, "sub").ok());
  c.RunFor(sim::kSecond);
  auto commit = c.StartCommit("root", txn);
  // PN timing: the Commit reaches the sub at ~11ms; its ack leaves at
  // ~15ms. Partition at 12ms: decision delivered, acknowledgment lost.
  c.RunFor(12 * sim::kMillisecond);
  c.network().SetLinkDown("root", "sub", true);  // partition before the ack
  c.RunFor(60 * sim::kSecond);
  Report("Wait for outcome",
         "advantage: 2PC does not block for most network partitions",
         commit->completed && commit->result.outcome_pending,
         "commit returned 'outcome pending' instead of blocking");

  // The disadvantage is the same fact seen from the other side: the
  // complete outcome is unknown at completion time.
  c.network().SetLinkDown("root", "sub", false);
  c.RunFor(120 * sim::kSecond);
  Report("Wait for outcome",
         "disadvantage: complete outcome unknown at completion",
         c.Audit(txn).consistent,
         "background recovery later confirmed the subordinate committed");
}

// Long locks: advantage = fewer flows; disadvantage = locks/commit held
// longer, and nothing flows until the next transaction starts.
void DemoLongLocks() {
  Cluster c;
  c.AddNode("coord", Pa());
  c.AddNode("sub", Pa());
  c.Connect("coord", "sub", {.long_locks = true}, {});
  AttachWriter(c, "sub");
  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) { TPC_CHECK(st.ok()); });
  TPC_CHECK(c.tm("coord").SendWork(txn, "sub").ok());
  c.RunFor(sim::kSecond);
  auto commit = c.StartCommit("coord", txn);
  c.RunFor(60 * sim::kSecond);
  const bool blocked = !commit->completed;
  uint64_t next_txn = c.tm("sub").Begin();
  TPC_CHECK(c.tm("sub").SendWork(next_txn, "coord").ok());
  c.RunFor(sim::kSecond);
  Report("Long locks",
         "disadvantage: commit completion waits for the next transaction",
         blocked && commit->completed,
         "commit stayed open 60s until the next transaction's data flowed");
}

// Group commit: advantage = fewer physical forces; disadvantage = longer
// per-transaction latency (lock holding) while groups build up.
void DemoGroupCommit() {
  auto run = [](bool enabled) {
    Cluster c;
    NodeOptions options = Pa();
    options.group_commit.enabled = enabled;
    options.group_commit.group_size = 8;
    options.group_commit.group_timeout = 20 * sim::kMillisecond;
    c.AddNode("coord", options);
    c.AddNode("sub", options);
    c.Connect("coord", "sub");
    AttachWriter(c, "sub");
    // Overlapping transactions: batching only helps when force requests
    // can accumulate.
    sim::Time total_latency = 0;
    const int kTxns = 16;
    std::vector<std::shared_ptr<harness::DrivenCommit>> commits;
    for (int i = 0; i < kTxns; ++i) {
      uint64_t txn = c.tm("coord").Begin();
      c.tm("coord").Write(txn, 0, "k" + std::to_string(i), "v",
                          [](Status st) { TPC_CHECK(st.ok()); });
      TPC_CHECK(c.tm("coord").SendWork(txn, "sub").ok());
      c.RunFor(2 * sim::kMillisecond);
      commits.push_back(c.StartCommit("coord", txn));
      c.RunFor(2 * sim::kMillisecond);
    }
    c.RunFor(5 * sim::kSecond);
    for (const auto& commit : commits) {
      TPC_CHECK(commit->completed);
      total_latency += commit->latency;
    }
    return std::make_pair(
        c.node("coord").log().device_forces() +
            c.node("sub").log().device_forces(),
        total_latency / kTxns);
  };
  auto [forces_off, latency_off] = run(false);
  auto [forces_on, latency_on] = run(true);
  Report("Group commit", "advantage: fewer physical forced writes",
         forces_on < forces_off,
         StringPrintf("device forces: %llu -> %llu",
                      static_cast<unsigned long long>(forces_off),
                      static_cast<unsigned long long>(forces_on)));
  Report("Group commit", "disadvantage: longer per-transaction latency",
         latency_on > latency_off,
         StringPrintf("mean commit latency: %lldus -> %lldus",
                      static_cast<long long>(latency_off),
                      static_cast<long long>(latency_on)));
}

// Last agent / unsolicited vote / leave-out / shared logs: the advantages
// are quantitative and already verified by the table benches; demonstrate
// the last-agent "extra forced write" disadvantage here.
void DemoLastAgent() {
  // PA + last agent makes the initiator force a prepared record it would
  // not otherwise write.
  Cluster plain;
  plain.AddNode("coord", Pa());
  plain.AddNode("sub", Pa());
  plain.Connect("coord", "sub");
  AttachWriter(plain, "sub");
  uint64_t txn1 = plain.tm("coord").Begin();
  plain.tm("coord").Write(txn1, 0, "k", "v",
                          [](Status st) { TPC_CHECK(st.ok()); });
  TPC_CHECK(plain.tm("coord").SendWork(txn1, "sub").ok());
  plain.RunFor(sim::kSecond);
  TPC_CHECK(plain.CommitAndWait("coord", txn1).completed);
  plain.RunFor(sim::kSecond);

  Cluster la;
  NodeOptions la_options = Pa();
  la_options.tm.last_agent_opt = true;
  la.AddNode("coord", la_options);
  la.AddNode("sub", la_options);
  la.Connect("coord", "sub", {.last_agent_candidate = true}, {});
  AttachWriter(la, "sub");
  uint64_t txn2 = la.tm("coord").Begin();
  la.tm("coord").Write(txn2, 0, "k", "v",
                       [](Status st) { TPC_CHECK(st.ok()); });
  TPC_CHECK(la.tm("coord").SendWork(txn2, "sub").ok());
  la.RunFor(sim::kSecond);
  TPC_CHECK(la.CommitAndWait("coord", txn2).completed);
  la.RunFor(sim::kSecond);

  uint64_t plain_forced = plain.tm("coord").CostOf(txn1).tm_log_forced;
  uint64_t la_forced = la.tm("coord").CostOf(txn2).tm_log_forced;
  uint64_t plain_flows = plain.TotalCost(txn1).flows_sent;
  uint64_t la_flows = la.TotalCost(txn2).flows_sent;
  Report("Last agent", "advantage: fewer messages, early release",
         la_flows < plain_flows,
         StringPrintf("total flows: %llu -> %llu",
                      static_cast<unsigned long long>(plain_flows),
                      static_cast<unsigned long long>(la_flows)));
  Report("Last agent", "disadvantage: one extra forced write (PA initiator)",
         la_forced == plain_forced + 1,
         StringPrintf("initiator forced writes: %llu -> %llu",
                      static_cast<unsigned long long>(plain_forced),
                      static_cast<unsigned long long>(la_forced)));
}

}  // namespace

int main() {
  std::printf(
      "Table 1: advantages and disadvantages of 2PC optimizations,\n"
      "reproduced as executable demonstrations.\n\n");
  DemoReadOnly();
  DemoLastAgent();
  DemoVoteReliable();
  DemoWaitForOutcome();
  DemoLongLocks();
  DemoGroupCommit();
  std::printf("\n%s\n", g_failures == 0
                            ? "All Table 1 claims demonstrated."
                            : "Some Table 1 claims NOT demonstrated!");
  return g_failures == 0 ? 0 : 1;
}
