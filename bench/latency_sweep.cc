// Commit latency and lock-hold time versus network delay, per optimization
// (Section 5's motivation: flows and forces translate into lock time,
// which bounds concurrency). Includes the paper's "satellite link" case:
// with one far-away partner, last agent turns two slow round trips into
// one.
//
// Usage: latency_sweep

#include <cstdio>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "util/logging.h"
#include "util/format.h"

namespace {

using namespace tpc;
using harness::Cluster;
using harness::NodeOptions;

struct Config {
  std::string label;
  bool last_agent = false;
  bool vote_reliable = false;
  bool unsolicited = false;
};

// One coordinator, one near subordinate (1ms), one far subordinate
// (configurable). Reports commit latency and the far node's lock hold.
struct Sample {
  sim::Time commit_latency;
  double far_lock_hold_mean;
};

Sample RunOne(const Config& config, sim::Time far_latency) {
  Cluster c;
  NodeOptions options;
  options.tm.protocol = tm::ProtocolKind::kPresumedAbort;
  options.tm.last_agent_opt = config.last_agent;
  options.tm.vote_reliable_opt = config.vote_reliable;
  options.rm_options.reliable = config.vote_reliable;
  c.AddNode("coord", options);
  c.AddNode("near", options);
  c.AddNode("far", options);
  tm::SessionOptions far_session;
  far_session.last_agent_candidate = config.last_agent;
  c.Connect("coord", "near");
  c.Connect("coord", "far", far_session, {});
  c.network().SetLinkLatency("coord", "far", far_latency);

  const bool unsolicited = config.unsolicited;
  for (const std::string node : {"near", "far"}) {
    c.tm(node).SetAppDataHandler(
        [&c, node, unsolicited](uint64_t txn, const net::NodeId&,
                                const std::string&) {
          c.tm(node).Write(txn, 0, node + "_key", "v",
                           [&c, node, txn, unsolicited](Status st) {
            TPC_CHECK(st.ok());
            if (unsolicited) c.tm(node).UnsolicitedPrepare(txn);
          });
        });
  }

  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) { TPC_CHECK(st.ok()); });
  TPC_CHECK(c.tm("coord").SendWork(txn, "near").ok());
  TPC_CHECK(c.tm("coord").SendWork(txn, "far").ok());
  c.RunFor(sim::kSecond);  // the work phase: locks held from here

  harness::DrivenCommit commit = c.CommitAndWait("coord", txn);
  TPC_CHECK(commit.completed);
  c.RunFor(30 * sim::kSecond);
  // Flush implied acks (last agent) so locks settle.
  uint64_t next_txn = c.tm("coord").Begin();
  TPC_CHECK(c.tm("coord").SendWork(next_txn, "far").ok());
  c.RunFor(30 * sim::kSecond);

  Sample sample;
  sample.commit_latency = commit.latency;
  sample.far_lock_hold_mean = c.node("far").rm().locks().stats().hold_time.Mean();
  return sample;
}

}  // namespace

int main() {
  std::printf(
      "Commit latency and far-node lock-hold time vs. link delay to one\n"
      "far partner (near partner fixed at 1ms; PA base protocol).\n\n");

  const std::vector<Config> configs = {
      {"PA baseline"},
      {"PA + last agent (far is last agent)", /*last_agent=*/true},
      {"PA + vote reliable", false, /*vote_reliable=*/true},
      {"PA + unsolicited vote", false, false, /*unsolicited=*/true},
  };

  for (sim::Time far : {5 * sim::kMillisecond, 50 * sim::kMillisecond,
                        300 * sim::kMillisecond /* satellite hop */}) {
    std::printf("far-link one-way delay: %lldms\n",
                static_cast<long long>(far / sim::kMillisecond));
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"configuration", "commit latency (ms)",
                    "far lock hold (ms, incl. 1s work phase)"});
    for (const auto& config : configs) {
      Sample sample = RunOne(config, far);
      rows.push_back(
          {config.label,
           StringPrintf("%.1f", static_cast<double>(sample.commit_latency) /
                                    sim::kMillisecond),
           StringPrintf("%.1f", sample.far_lock_hold_mean /
                                    sim::kMillisecond)});
    }
    std::printf("%s\n", RenderTable(rows).c_str());
  }
  std::printf(
      "Shape check (paper): with a slow far link, the last-agent\n"
      "configuration wins — communication with the far partner collapses\n"
      "to one slow round trip, so commit latency drops by roughly one\n"
      "far-link round trip versus the baseline.\n");
  return 0;
}
