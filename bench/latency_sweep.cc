// Commit latency and lock-hold time versus network delay, per optimization
// (Section 5's motivation: flows and forces translate into lock time,
// which bounds concurrency). Includes the paper's "satellite link" case:
// with one far-away partner, last agent turns two slow round trips into
// one.
//
// The (far-latency x configuration) grid runs as a parallel sweep — one
// cluster per cell, no shared state — and emits BENCH_latency_sweep.json.
//
// Usage: latency_sweep [threads]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/bench_report.h"
#include "harness/cluster.h"
#include "harness/sweep.h"
#include "util/logging.h"
#include "util/format.h"

namespace {

using namespace tpc;
using harness::Cluster;
using harness::NodeOptions;

struct Config {
  std::string label;
  bool last_agent = false;
  bool vote_reliable = false;
  bool unsolicited = false;
};

// One coordinator, one near subordinate (1ms), one far subordinate
// (configurable). Reports commit latency and the far node's lock hold.
harness::SweepCell RunOne(const Config& config, sim::Time far_latency) {
  Cluster c;
  NodeOptions options;
  options.tm.protocol = tm::ProtocolKind::kPresumedAbort;
  options.tm.last_agent_opt = config.last_agent;
  options.tm.vote_reliable_opt = config.vote_reliable;
  options.rm_options.reliable = config.vote_reliable;
  c.AddNode("coord", options);
  c.AddNode("near", options);
  c.AddNode("far", options);
  tm::SessionOptions far_session;
  far_session.last_agent_candidate = config.last_agent;
  c.Connect("coord", "near");
  c.Connect("coord", "far", far_session, {});
  c.network().SetLinkLatency("coord", "far", far_latency);

  const bool unsolicited = config.unsolicited;
  for (const std::string node : {"near", "far"}) {
    c.tm(node).SetAppDataHandler(
        [&c, node, unsolicited](uint64_t txn, const net::NodeId&,
                                std::string_view) {
          c.tm(node).Write(txn, 0, node + "_key", "v",
                           [&c, node, txn, unsolicited](Status st) {
            TPC_CHECK(st.ok());
            if (unsolicited) c.tm(node).UnsolicitedPrepare(txn);
          });
        });
  }

  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) { TPC_CHECK(st.ok()); });
  TPC_CHECK(c.tm("coord").SendWork(txn, "near").ok());
  TPC_CHECK(c.tm("coord").SendWork(txn, "far").ok());
  c.RunFor(sim::kSecond);  // the work phase: locks held from here

  harness::DrivenCommit commit = c.CommitAndWait("coord", txn);
  TPC_CHECK(commit.completed);
  c.RunFor(30 * sim::kSecond);
  // Flush implied acks (last agent) so locks settle.
  uint64_t next_txn = c.tm("coord").Begin();
  TPC_CHECK(c.tm("coord").SendWork(next_txn, "far").ok());
  c.RunFor(30 * sim::kSecond);

  harness::SweepCell cell;
  cell.label = config.label +
               StringPrintf(" @%lldms", static_cast<long long>(
                                            far_latency / sim::kMillisecond));
  cell.events = c.ctx().events().executed();
  cell.txns = 1;  // one driven commit per cell
  cell.sim_time = c.ctx().now();
  cell.Add("commit_latency_ms",
           static_cast<double>(commit.latency) / sim::kMillisecond);
  cell.Add("far_lock_hold_ms",
           c.node("far").rm().locks().stats().hold_time.Mean() /
               sim::kMillisecond);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads =
      argc > 1 ? static_cast<unsigned>(std::strtoul(argv[1], nullptr, 10))
               : 0;
  std::printf(
      "Commit latency and far-node lock-hold time vs. link delay to one\n"
      "far partner (near partner fixed at 1ms; PA base protocol).\n\n");

  const std::vector<Config> configs = {
      {"PA baseline"},
      {"PA + last agent (far is last agent)", /*last_agent=*/true},
      {"PA + vote reliable", false, /*vote_reliable=*/true},
      {"PA + unsolicited vote", false, false, /*unsolicited=*/true},
  };
  const std::vector<sim::Time> far_delays = {
      5 * sim::kMillisecond, 50 * sim::kMillisecond,
      300 * sim::kMillisecond /* satellite hop */};

  harness::BenchReport report("latency_sweep");
  const std::vector<harness::SweepCell> cells = harness::RunSweep(
      far_delays.size() * configs.size(),
      [&](size_t i) {
        return RunOne(configs[i % configs.size()],
                      far_delays[i / configs.size()]);
      },
      threads);
  report.AddCells(cells);
  report.set_threads(
      harness::ResolveThreads(threads, far_delays.size() * configs.size()));

  for (size_t d = 0; d < far_delays.size(); ++d) {
    std::printf("far-link one-way delay: %lldms\n",
                static_cast<long long>(far_delays[d] / sim::kMillisecond));
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"configuration", "commit latency (ms)",
                    "far lock hold (ms, incl. 1s work phase)"});
    for (size_t k = 0; k < configs.size(); ++k) {
      const harness::SweepCell& cell = cells[d * configs.size() + k];
      rows.push_back({configs[k].label,
                      StringPrintf("%.1f", cell.Get("commit_latency_ms")),
                      StringPrintf("%.1f", cell.Get("far_lock_hold_ms"))});
    }
    std::printf("%s\n", RenderTable(rows).c_str());
  }
  std::printf(
      "Shape check (paper): with a slow far link, the last-agent\n"
      "configuration wins — communication with the far partner collapses\n"
      "to one slow round trip, so commit latency drops by roughly one\n"
      "far-link round trip versus the baseline.\n");
  std::printf("\n%s\n", report.Summary().c_str());
  std::printf("wrote %s\n", report.WriteJson().c_str());
  return 0;
}
