// google-benchmark: end-to-end simulated commits per wall-clock second for
// each protocol and key optimizations — how fast the engine itself runs,
// and a regression guard on protocol-path allocations.

#include <benchmark/benchmark.h>

#include "harness/cluster.h"
#include "util/logging.h"

namespace tpc {
namespace {

using harness::Cluster;
using harness::NodeOptions;

void RunCommits(benchmark::State& state, NodeOptions options,
                tm::SessionOptions coord_session = {}) {
  Cluster c;
  c.AddNode("coord", options);
  c.AddNode("sub", options);
  c.Connect("coord", "sub", coord_session, {});
  c.network().set_tracing(false);
  c.tm("sub").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm("sub").Write(txn, 0, "s", "v",
                          [](Status st) { TPC_CHECK(st.ok()); });
      });
  for (auto _ : state) {
    uint64_t txn = c.tm("coord").Begin();
    c.tm("coord").Write(txn, 0, "k", "v",
                        [](Status st) { TPC_CHECK(st.ok()); });
    TPC_CHECK(c.tm("coord").SendWork(txn, "sub").ok());
    c.RunFor(10 * sim::kMillisecond);
    harness::DrivenCommit commit = c.CommitAndWait("coord", txn);
    TPC_CHECK(commit.completed);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CommitBasic2PC(benchmark::State& state) {
  NodeOptions options;
  options.tm.protocol = tm::ProtocolKind::kBasic2PC;
  RunCommits(state, options);
}
BENCHMARK(BM_CommitBasic2PC);

void BM_CommitPresumedAbort(benchmark::State& state) {
  NodeOptions options;
  options.tm.protocol = tm::ProtocolKind::kPresumedAbort;
  RunCommits(state, options);
}
BENCHMARK(BM_CommitPresumedAbort);

void BM_CommitPresumedNothing(benchmark::State& state) {
  NodeOptions options;
  options.tm.protocol = tm::ProtocolKind::kPresumedNothing;
  RunCommits(state, options);
}
BENCHMARK(BM_CommitPresumedNothing);

void BM_CommitPaVoteReliable(benchmark::State& state) {
  NodeOptions options;
  options.tm.protocol = tm::ProtocolKind::kPresumedAbort;
  options.tm.vote_reliable_opt = true;
  options.rm_options.reliable = true;
  RunCommits(state, options);
}
BENCHMARK(BM_CommitPaVoteReliable);

void BM_CommitPaGroupCommit(benchmark::State& state) {
  NodeOptions options;
  options.tm.protocol = tm::ProtocolKind::kPresumedAbort;
  options.group_commit.enabled = true;
  options.group_commit.group_size = 8;
  options.group_commit.group_timeout = 2 * sim::kMillisecond;
  RunCommits(state, options);
}
BENCHMARK(BM_CommitPaGroupCommit);

void BM_CommitStarN(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  Cluster c;
  NodeOptions options;
  c.AddNode("root", options);
  for (uint64_t i = 1; i < n; ++i) {
    std::string name = "m" + std::to_string(i);
    c.AddNode(name, options);
    c.Connect("root", name);
    c.tm(name).SetAppDataHandler(
        [&c, name](uint64_t txn, const net::NodeId&, std::string_view) {
          c.tm(name).Write(txn, 0, name, "v",
                           [](Status st) { TPC_CHECK(st.ok()); });
        });
  }
  c.network().set_tracing(false);
  for (auto _ : state) {
    uint64_t txn = c.tm("root").Begin();
    for (uint64_t i = 1; i < n; ++i) {
      TPC_CHECK(c.tm("root").SendWork(txn, "m" + std::to_string(i)).ok());
    }
    c.RunFor(10 * sim::kMillisecond);
    harness::DrivenCommit commit = c.CommitAndWait("root", txn);
    TPC_CHECK(commit.completed);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_CommitStarN)->Arg(3)->Arg(11)->Arg(31);

}  // namespace
}  // namespace tpc

BENCHMARK_MAIN();
