// The "commercial environment" end to end: a mixed closed-loop workload
// (reads, writes, hot-key contention, variable fan-out) run under each
// protocol and optimization bundle, summarizing outcomes, throughput,
// latency, flows, and forced writes — the paper's whole argument in one
// table.
//
// Usage: commercial_mix [txns]

#include <cstdio>
#include <cstdlib>

#include "harness/workload.h"
#include "util/format.h"
#include "util/logging.h"

namespace {

using namespace tpc;
using harness::Cluster;
using harness::NodeOptions;
using harness::Workload;
using harness::WorkloadOptions;
using harness::WorkloadStats;

struct Config {
  std::string label;
  tm::ProtocolKind protocol = tm::ProtocolKind::kPresumedAbort;
  bool vote_reliable = false;
  bool group_commit = false;
};

WorkloadStats RunConfig(const Config& config, uint64_t txns) {
  Cluster cluster(/*seed=*/2026);
  NodeOptions node_options;
  node_options.tm.protocol = config.protocol;
  node_options.tm.vote_reliable_opt = config.vote_reliable;
  node_options.rm_options.reliable = config.vote_reliable;
  if (config.group_commit) {
    node_options.group_commit.enabled = true;
    node_options.group_commit.group_size = 8;
    node_options.group_commit.group_timeout = 2 * sim::kMillisecond;
  }
  WorkloadOptions options;
  options.seed = 7;
  options.servers = 4;
  options.transactions = txns;
  options.read_only_fraction = 0.4;  // commercial mixes read a lot
  options.hot_key_fraction = 0.15;
  Workload::BuildStandardCluster(&cluster, options, node_options);
  Workload workload(&cluster, options);
  return workload.Run();
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t txns = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 150;
  std::printf(
      "Commercial mix: %llu closed-loop transactions, 4 servers, 40%% "
      "read-only,\n15%% hot-key writes, 1-3 participants each.\n\n",
      static_cast<unsigned long long>(txns));

  const Config configs[] = {
      {"Basic 2PC", tm::ProtocolKind::kBasic2PC},
      {"Presumed Abort", tm::ProtocolKind::kPresumedAbort},
      {"Presumed Commit (ext)", tm::ProtocolKind::kPresumedCommit},
      {"Presumed Nothing", tm::ProtocolKind::kPresumedNothing},
      {"PA + vote reliable", tm::ProtocolKind::kPresumedAbort, true},
      {"PA + group commit", tm::ProtocolKind::kPresumedAbort, false, true},
  };

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"configuration", "txn/s", "mean lat (ms)", "p99 (ms)",
                  "flows", "forced", "aborted"});
  for (const Config& config : configs) {
    WorkloadStats stats = RunConfig(config, txns);
    TPC_CHECK(stats.incomplete == 0);
    rows.push_back(
        {config.label, StringPrintf("%.0f", stats.Throughput()),
         StringPrintf("%.1f", stats.commit_latency.Mean() / sim::kMillisecond),
         StringPrintf("%.1f",
                      stats.commit_latency.Percentile(99) / sim::kMillisecond),
         StringPrintf("%llu", static_cast<unsigned long long>(stats.flows)),
         StringPrintf("%llu", static_cast<unsigned long long>(stats.forced)),
         StringPrintf("%llu",
                      static_cast<unsigned long long>(stats.aborted))});
  }
  std::printf("%s", tpc::RenderTable(rows).c_str());
  std::printf(
      "\nShape check (paper §1): commit processing dominates transaction\n"
      "time, so fewer flows and forces translate directly into latency\n"
      "and throughput; the read-only optimization (on in every PA row)\n"
      "keeps the 40%% read-only traffic nearly free.\n");
  return 0;
}
