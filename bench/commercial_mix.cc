// The "commercial environment" end to end: a mixed closed-loop workload
// (reads, writes, hot-key contention, variable fan-out) run under each
// protocol and optimization bundle, summarizing outcomes, throughput,
// latency, flows, and forced writes — the paper's whole argument in one
// table.
//
// The configuration grid runs as a parallel sweep — one cluster per cell —
// and emits BENCH_commercial_mix.json.
//
// Usage: commercial_mix [txns] [threads]

#include <cstdio>
#include <cstdlib>

#include "harness/bench_report.h"
#include "harness/sweep.h"
#include "harness/workload.h"
#include "util/format.h"
#include "util/logging.h"

namespace {

using namespace tpc;
using harness::Cluster;
using harness::NodeOptions;
using harness::Workload;
using harness::WorkloadOptions;
using harness::WorkloadStats;

struct Config {
  std::string label;
  tm::ProtocolKind protocol = tm::ProtocolKind::kPresumedAbort;
  bool vote_reliable = false;
  bool group_commit = false;
};

harness::SweepCell RunConfig(const Config& config, uint64_t txns) {
  Cluster cluster(/*seed=*/2026);
  NodeOptions node_options;
  node_options.tm.protocol = config.protocol;
  node_options.tm.vote_reliable_opt = config.vote_reliable;
  node_options.rm_options.reliable = config.vote_reliable;
  if (config.group_commit) {
    node_options.group_commit.enabled = true;
    node_options.group_commit.group_size = 8;
    node_options.group_commit.group_timeout = 2 * sim::kMillisecond;
  }
  WorkloadOptions options;
  options.seed = 7;
  options.servers = 4;
  options.transactions = txns;
  options.read_only_fraction = 0.4;  // commercial mixes read a lot
  options.hot_key_fraction = 0.15;
  Workload::BuildStandardCluster(&cluster, options, node_options);
  Workload workload(&cluster, options);
  WorkloadStats stats = workload.Run();
  TPC_CHECK(stats.incomplete == 0);

  harness::SweepCell cell;
  cell.label = config.label;
  cell.events = cluster.ctx().events().executed();
  cell.txns = stats.committed + stats.aborted;
  cell.sim_time = stats.elapsed;
  cell.Add("txn_per_sec", stats.Throughput());
  cell.Add("mean_latency_ms", stats.commit_latency.Mean() / sim::kMillisecond);
  cell.Add("p99_latency_ms",
           stats.commit_latency.Percentile(99) / sim::kMillisecond);
  cell.Add("flows", static_cast<double>(stats.flows));
  cell.Add("forced", static_cast<double>(stats.forced));
  cell.Add("aborted", static_cast<double>(stats.aborted));
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t txns = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 150;
  const unsigned threads =
      argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10))
               : 0;
  std::printf(
      "Commercial mix: %llu closed-loop transactions, 4 servers, 40%% "
      "read-only,\n15%% hot-key writes, 1-3 participants each.\n\n",
      static_cast<unsigned long long>(txns));

  const std::vector<Config> configs = {
      {"Basic 2PC", tm::ProtocolKind::kBasic2PC},
      {"Presumed Abort", tm::ProtocolKind::kPresumedAbort},
      {"Presumed Commit (ext)", tm::ProtocolKind::kPresumedCommit},
      {"Presumed Nothing", tm::ProtocolKind::kPresumedNothing},
      {"PA + vote reliable", tm::ProtocolKind::kPresumedAbort, true},
      {"PA + group commit", tm::ProtocolKind::kPresumedAbort, false, true},
  };

  harness::BenchReport report("commercial_mix");
  const std::vector<harness::SweepCell> cells = harness::RunSweep(
      configs.size(), [&](size_t i) { return RunConfig(configs[i], txns); },
      threads);
  report.AddCells(cells);
  report.set_threads(harness::ResolveThreads(threads, configs.size()));

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"configuration", "txn/s", "mean lat (ms)", "p99 (ms)",
                  "flows", "forced", "aborted"});
  for (const harness::SweepCell& cell : cells) {
    rows.push_back({cell.label, StringPrintf("%.0f", cell.Get("txn_per_sec")),
                    StringPrintf("%.1f", cell.Get("mean_latency_ms")),
                    StringPrintf("%.1f", cell.Get("p99_latency_ms")),
                    StringPrintf("%.0f", cell.Get("flows")),
                    StringPrintf("%.0f", cell.Get("forced")),
                    StringPrintf("%.0f", cell.Get("aborted"))});
  }
  std::printf("%s", tpc::RenderTable(rows).c_str());
  std::printf(
      "\nShape check (paper §1): commit processing dominates transaction\n"
      "time, so fewer flows and forces translate directly into latency\n"
      "and throughput; the read-only optimization (on in every PA row)\n"
      "keeps the 40%% read-only traffic nearly free.\n");
  std::printf("\n%s\n", report.Summary().c_str());
  std::printf("wrote %s\n", report.WriteJson().c_str());
  return 0;
}
