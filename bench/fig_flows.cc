// Reproduces the paper's figures 1-8 as message-flow / log-write time
// sequences captured from the simulation.
//
// Usage: fig_flows [figure]   (default: all eight)

#include <cstdio>
#include <cstdlib>

#include "harness/scenarios.h"

int main(int argc, char** argv) {
  if (argc > 1) {
    int figure = std::atoi(argv[1]);
    std::printf("%s\n", tpc::harness::RunFigureScenario(figure).c_str());
    return 0;
  }
  for (int figure = 1; figure <= 8; ++figure) {
    std::printf("%s\n", tpc::harness::RunFigureScenario(figure).c_str());
  }
  return 0;
}
