// Extension bench (beyond the paper): every protocol family the engine
// implements, compared in the two-participant commit and abort cases using
// the paper's accounting. The paper's Section 2-4 families (basic 2PC, PA,
// PN) are joined by Presumed Commit (PA's sibling from the R* work), Paxos
// Commit (Gray & Lamport — a 2F+1 acceptor set buys non-blocking commit
// with extra flows and acceptor forces), and the one-phase family (early
// prepare / "short" commit, with and without the subordinate's prepared
// force).
//
// Emits BENCH_protocol_compare.json: one cell per protocol x case, with
// per-role and total forced_writes / messages metrics. Every number is
// simulated and deterministic, so CI gates them two-sided at zero
// tolerance against bench/baselines/BENCH_protocol_compare.json — a cost
// change in either direction is a protocol-behavior change that must be
// reviewed (and re-baselined) deliberately.

#include <cstdio>

#include "harness/bench_report.h"
#include "harness/cluster.h"
#include "util/format.h"
#include "util/logging.h"

namespace {

using namespace tpc;
using harness::BenchReport;
using harness::Cluster;
using harness::NodeOptions;
using harness::SweepCell;
using tm::ProtocolKind;

struct RunResult {
  tm::TxnCost coord;
  tm::TxnCost sub;
  tm::TxnCost acc;  // paxos only: the acceptor-only third node
  bool committed = false;
};

constexpr ProtocolKind kAllProtocols[] = {
    ProtocolKind::kBasic2PC,      ProtocolKind::kPresumedAbort,
    ProtocolKind::kPresumedCommit, ProtocolKind::kPresumedNothing,
    ProtocolKind::kPaxosCommit,   ProtocolKind::kOnePhase,
    ProtocolKind::kOnePhaseLogless,
};

RunResult RunOne(ProtocolKind protocol, bool abort_case,
                 bool paxos_f0 = false) {
  Cluster c;
  NodeOptions options;
  options.tm.protocol = protocol;
  // Paxos Commit needs a 2F+1 acceptor set (F=1): both participants plus
  // one acceptor-only node, so acceptor state is co-located where possible
  // (the paper's "transaction manager as acceptor" deployment). The F=0
  // degenerate keeps a single acceptor co-located at the coordinator —
  // non-blocking is traded away and the cost collapses to PA's.
  if (tm::IsPaxos(protocol)) {
    options.tm.acceptors = paxos_f0 ? std::vector<std::string>{"coord"}
                                    : std::vector<std::string>{"coord", "sub",
                                                               "acc"};
  }
  c.AddNode("coord", options);
  c.AddNode("sub", options);
  c.Connect("coord", "sub");
  if (tm::IsPaxos(protocol) && !paxos_f0) {
    NodeOptions acc_options = options;
    acc_options.num_rms = 0;
    c.AddNode("acc", acc_options);
    c.Connect("coord", "acc");
    c.Connect("sub", "acc");
  }
  c.tm("sub").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm("sub").Write(txn, 0, "s", "v",
                          [](Status st) { TPC_CHECK(st.ok()); });
      });
  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) { TPC_CHECK(st.ok()); });
  TPC_CHECK(c.tm("coord").SendWork(txn, "sub").ok());
  // One-phase subordinates prepare unsolicited once their work quiesces, so
  // a NO voter must be armed before the quiesce window, not at commit time.
  if (abort_case && tm::IsOnePhase(protocol))
    c.node("sub").rm().FailNextPrepare();
  c.RunFor(sim::kSecond);
  if (abort_case && !tm::IsOnePhase(protocol))
    c.node("sub").rm().FailNextPrepare();
  auto commit = c.CommitAndWait("coord", txn);
  TPC_CHECK(commit.completed);
  c.RunFor(30 * sim::kSecond);
  RunResult result;
  result.coord = c.tm("coord").CostOf(txn);
  result.sub = c.tm("sub").CostOf(txn);
  if (tm::IsPaxos(protocol) && !paxos_f0) result.acc = c.tm("acc").CostOf(txn);
  result.committed = commit.result.outcome == tm::Outcome::kCommitted;
  return result;
}

std::string Fmt(const tm::TxnCost& cost) {
  return tpc::StringPrintf(
      "%llu flows, %llu writes (%lluf)",
      static_cast<unsigned long long>(cost.flows_sent),
      static_cast<unsigned long long>(cost.tm_log_writes),
      static_cast<unsigned long long>(cost.tm_log_forced));
}

uint64_t TotalForces(const RunResult& r) {
  return r.coord.tm_log_forced + r.sub.tm_log_forced + r.acc.tm_log_forced;
}

uint64_t TotalFlows(const RunResult& r) {
  return r.coord.flows_sent + r.sub.flows_sent + r.acc.flows_sent;
}

}  // namespace

int main() {
  BenchReport report("protocol_compare");
  std::printf(
      "Protocol comparison across every implemented family (extensions\n"
      "beyond the paper marked *). Two participants, update transaction;\n"
      "paxos-commit adds a third, acceptor-only node.\n\n");

  RunResult commit_results[std::size(kAllProtocols)];
  for (bool abort_case : {false, true}) {
    std::printf("%s case:\n", abort_case ? "Abort (subordinate votes NO)"
                                         : "Commit");
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"protocol", "coordinator", "subordinate", "acceptor"});
    size_t index = 0;
    for (auto protocol : kAllProtocols) {
      RunResult r = RunOne(protocol, abort_case);
      TPC_CHECK(r.committed == !abort_case);
      if (!abort_case) commit_results[index] = r;
      rows.push_back({std::string(tm::ProtocolKindToString(protocol)),
                      Fmt(r.coord), Fmt(r.sub),
                      tm::IsPaxos(protocol) ? Fmt(r.acc) : "-"});
      SweepCell cell;
      cell.label = tpc::StringPrintf(
          "%s %s", std::string(tm::ProtocolKindToString(protocol)).c_str(),
          abort_case ? "abort" : "commit");
      cell.txns = 1;
      cell.Add("coord_forced_writes", static_cast<double>(r.coord.tm_log_forced));
      cell.Add("coord_messages", static_cast<double>(r.coord.flows_sent));
      cell.Add("sub_forced_writes", static_cast<double>(r.sub.tm_log_forced));
      cell.Add("sub_messages", static_cast<double>(r.sub.flows_sent));
      if (tm::IsPaxos(protocol)) {
        cell.Add("acc_forced_writes", static_cast<double>(r.acc.tm_log_forced));
        cell.Add("acc_messages", static_cast<double>(r.acc.flows_sent));
      }
      cell.Add("total_forced_writes", static_cast<double>(TotalForces(r)));
      cell.Add("total_messages", static_cast<double>(TotalFlows(r)));
      report.AddCell(cell);
      ++index;
    }
    std::printf("%s\n", tpc::RenderTable(rows).c_str());
  }

  // F=0 degenerate cells (one acceptor, co-located at the coordinator).
  RunResult f0_commit;
  std::printf("Paxos Commit F=0 degenerate (acceptors = {coord}):\n");
  {
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"case", "coordinator", "subordinate"});
    for (bool abort_case : {false, true}) {
      RunResult r = RunOne(ProtocolKind::kPaxosCommit, abort_case,
                           /*paxos_f0=*/true);
      TPC_CHECK(r.committed == !abort_case);
      if (!abort_case) f0_commit = r;
      rows.push_back({abort_case ? "abort" : "commit", Fmt(r.coord),
                      Fmt(r.sub)});
      SweepCell cell;
      cell.label = tpc::StringPrintf("paxos-commit-f0 %s",
                                     abort_case ? "abort" : "commit");
      cell.txns = 1;
      cell.Add("coord_forced_writes",
               static_cast<double>(r.coord.tm_log_forced));
      cell.Add("coord_messages", static_cast<double>(r.coord.flows_sent));
      cell.Add("sub_forced_writes", static_cast<double>(r.sub.tm_log_forced));
      cell.Add("sub_messages", static_cast<double>(r.sub.flows_sent));
      cell.Add("total_forced_writes", static_cast<double>(TotalForces(r)));
      cell.Add("total_messages", static_cast<double>(TotalFlows(r)));
      report.AddCell(cell);
    }
    std::printf("%s\n", tpc::RenderTable(rows).c_str());
  }

  // Analytical-model sanity (Gray & Lamport Sec. 8; Stamos' short commit):
  // the relative ordering of the commit-case cost columns is a property of
  // the protocols, not of tuning, so assert it here where the table is made.
  const RunResult& pa = commit_results[1];
  const RunResult& paxos = commit_results[4];
  const RunResult& one_phase = commit_results[5];
  const RunResult& logless = commit_results[6];
  TPC_CHECK(TotalFlows(paxos) > TotalFlows(pa));
  TPC_CHECK(TotalForces(paxos) > TotalForces(pa));
  // The Gray–Lamport optimizations (co-located acceptor piggyback, 2a/2b
  // bundling) must beat the textbook per-instance protocol strictly on both
  // axes. The constants are PR 8's measured textbook costs for this exact
  // cell (see the pre-optimization BENCH_protocol_compare baseline):
  // 10 total forces / 11 total messages on commit.
  TPC_CHECK(TotalForces(paxos) < 10);
  TPC_CHECK(TotalFlows(paxos) < 11);
  // F=0 collapses to Presumed-Abort cost: equal forces, within one message
  // (Gray & Lamport Sec. 8 — "the same cost as two-phase commit").
  TPC_CHECK(TotalForces(f0_commit) == TotalForces(pa));
  TPC_CHECK(TotalFlows(f0_commit) <= TotalFlows(pa) + 1);
  for (size_t i = 0; i < 4; ++i)  // 1PC-logless beats every 2PC family
    TPC_CHECK(TotalForces(logless) < TotalForces(commit_results[i]));
  TPC_CHECK(TotalForces(logless) + 1 == TotalForces(one_phase));
  TPC_CHECK(TotalFlows(logless) == TotalFlows(one_phase));

  std::printf(
      "Reading: PC spends one more coordinator force than PA on commits\n"
      "(the collecting record) but drops the subordinate's commit force\n"
      "AND its ack. Paxos-commit pays 2a/2b flows to the acceptor set and\n"
      "acceptor forces — still more messages and forces than PA, but the\n"
      "Gray-Lamport optimizations (the co-located self-accept riding the\n"
      "prepared force, one bundled 2b + covering force per acceptor per\n"
      "transaction) cut the textbook 10 forces / 11 messages to 6 / 9 in\n"
      "exchange for surviving coordinator death (the torture matrix proves\n"
      "the non-blocking claim); the F=0 degenerate collapses to PA's exact\n"
      "cost while keeping the takeover machinery. One-phase drops the\n"
      "Prepare round entirely; the logless variant also drops the\n"
      "subordinate's prepared force — fewest forces of any family, at the\n"
      "price of presuming participant durability.\n\n");
  std::printf("%s\n", report.Summary().c_str());
  std::printf("wrote %s\n", report.WriteJson().c_str());
  return 0;
}
