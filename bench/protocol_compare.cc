// Extension bench (beyond the paper): Presumed Commit — PA's sibling —
// compared against basic 2PC, PA, and PN in the two-participant commit and
// abort cases, using the paper's accounting. The paper's disclaimer said
// some optimizations "may never be shipped"; PC eventually shipped
// everywhere, so we include it for completeness.

#include <cstdio>

#include "harness/cluster.h"
#include "util/format.h"
#include "util/logging.h"

namespace {

using namespace tpc;
using harness::Cluster;
using harness::NodeOptions;
using tm::ProtocolKind;

struct RunResult {
  tm::TxnCost coord;
  tm::TxnCost sub;
  bool committed = false;
};

RunResult RunOne(ProtocolKind protocol, bool abort_case) {
  Cluster c;
  NodeOptions options;
  options.tm.protocol = protocol;
  c.AddNode("coord", options);
  c.AddNode("sub", options);
  c.Connect("coord", "sub");
  c.tm("sub").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm("sub").Write(txn, 0, "s", "v",
                          [](Status st) { TPC_CHECK(st.ok()); });
      });
  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) { TPC_CHECK(st.ok()); });
  TPC_CHECK(c.tm("coord").SendWork(txn, "sub").ok());
  c.RunFor(sim::kSecond);
  if (abort_case) c.node("sub").rm().FailNextPrepare();
  auto commit = c.CommitAndWait("coord", txn);
  TPC_CHECK(commit.completed);
  c.RunFor(30 * sim::kSecond);
  RunResult result;
  result.coord = c.tm("coord").CostOf(txn);
  result.sub = c.tm("sub").CostOf(txn);
  result.committed = commit.result.outcome == tm::Outcome::kCommitted;
  return result;
}

std::string Fmt(const tm::TxnCost& cost) {
  return tpc::StringPrintf(
      "%llu flows, %llu writes (%lluf)",
      static_cast<unsigned long long>(cost.flows_sent),
      static_cast<unsigned long long>(cost.tm_log_writes),
      static_cast<unsigned long long>(cost.tm_log_forced));
}

}  // namespace

int main() {
  std::printf(
      "Protocol comparison including Presumed Commit (extension, not in\n"
      "the paper). Two participants, update transaction.\n\n");

  for (bool abort_case : {false, true}) {
    std::printf("%s case:\n", abort_case ? "Abort (subordinate votes NO)"
                                         : "Commit");
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"protocol", "coordinator", "subordinate"});
    for (auto protocol :
         {ProtocolKind::kBasic2PC, ProtocolKind::kPresumedAbort,
          ProtocolKind::kPresumedCommit, ProtocolKind::kPresumedNothing}) {
      RunResult r = RunOne(protocol, abort_case);
      TPC_CHECK(r.committed == !abort_case);
      rows.push_back({std::string(tm::ProtocolKindToString(protocol)),
                      Fmt(r.coord), Fmt(r.sub)});
    }
    std::printf("%s\n", tpc::RenderTable(rows).c_str());
  }

  std::printf(
      "Reading: PC spends one more coordinator force than PA on commits\n"
      "(the collecting record) but drops the subordinate's commit force\n"
      "AND its ack — the right trade when commits dominate, which is why\n"
      "it became the industry default alongside PA. On aborts PC pays\n"
      "PA's savings back (explicit forced, acknowledged aborts).\n");
  return 0;
}
