// Reproduces Table 4 of the paper: logging and message costs for the
// long-locks optimization over r successive two-member transactions.
// Paper example: r = 12.
//
// Usage: table4 [r]   (r must be even for the last-agent pairing)

#include <cstdio>
#include <cstdlib>

#include "analysis/cost_model.h"
#include "harness/scenarios.h"
#include "util/format.h"

int main(int argc, char** argv) {
  using namespace tpc;
  using analysis::CostTriplet;
  using analysis::Table4Cost;
  using analysis::Table4Variant;
  using analysis::Table4VariantName;

  uint64_t r = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 12;
  if (r == 0 || r % 2 != 0) {
    std::fprintf(stderr, "need even r > 0\n");
    return 2;
  }

  std::printf("Table 4: long-locks costs over r = %llu transactions\n",
              static_cast<unsigned long long>(r));
  std::printf("triplet = (flows, log writes, forced writes)\n\n");

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"2PC type", "measured", "paper formula", "match"});

  bool all_match = true;
  for (auto variant : {Table4Variant::kBasic2PC, Table4Variant::kLongLocks,
                       Table4Variant::kLongLocksLastAgent}) {
    CostTriplet paper = Table4Cost(variant, r);
    CostTriplet measured = harness::RunTable4Scenario(variant, r);
    const bool match = measured == paper;
    all_match = all_match && match;
    auto fmt = [](const CostTriplet& t) {
      return StringPrintf("%llu, %llu, %llu",
                          static_cast<unsigned long long>(t.flows),
                          static_cast<unsigned long long>(t.writes),
                          static_cast<unsigned long long>(t.forced));
    };
    rows.push_back({std::string(Table4VariantName(variant)), fmt(measured),
                    fmt(paper), match ? "yes" : "NO"});
  }

  std::printf("%s", RenderTable(rows).c_str());
  std::printf("\n%s\n", all_match
                            ? "All rows match the paper's formulas."
                            : "MISMATCH against the paper's formulas!");
  return all_match ? 0 : 1;
}
