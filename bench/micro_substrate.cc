// google-benchmark microbenchmarks of the substrates: real wall-clock cost
// of the event queue, log manager, lock manager, network, and record
// encoding. These measure the simulator itself, not simulated time.

#include <benchmark/benchmark.h>

#include "lock/lock_manager.h"
#include "net/network.h"
#include "sim/sim_context.h"
#include "tm/protocol_messages.h"
#include "util/crc32c.h"
#include "wal/log_manager.h"

namespace tpc {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  sim::EventQueue q;
  int64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) q.ScheduleAfter(i, [&] { ++sink; });
    q.Run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_LogAppendNonForced(benchmark::State& state) {
  sim::SimContext ctx;
  wal::LogManager log(&ctx, "bench", 1);
  wal::LogRecord rec;
  rec.type = wal::RecordType::kRmUpdate;
  rec.owner = "bench.rm";
  rec.body = std::string(64, 'x');
  uint64_t txn = 0;
  for (auto _ : state) {
    rec.txn = ++txn;
    log.Append(rec, /*force=*/false);
    if (txn % 1024 == 0) {
      state.PauseTiming();
      log.ForceAll(nullptr);
      ctx.events().Run();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogAppendNonForced);

void BM_LogForcedAppendWithDevice(benchmark::State& state) {
  sim::SimContext ctx;
  wal::LogManager log(&ctx, "bench", 1);
  wal::LogRecord rec;
  rec.type = wal::RecordType::kTmCommitted;
  rec.owner = "bench.tm";
  uint64_t txn = 0;
  for (auto _ : state) {
    rec.txn = ++txn;
    bool done = false;
    log.Append(rec, /*force=*/true, [&done] { done = true; });
    ctx.events().Run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogForcedAppendWithDevice);

void BM_LogRecordEncodeDecode(benchmark::State& state) {
  wal::LogRecord rec;
  rec.type = wal::RecordType::kTmPrepared;
  rec.txn = 123456;
  rec.owner = "node7.tm";
  rec.body = std::string(static_cast<size_t>(state.range(0)), 'p');
  for (auto _ : state) {
    std::string encoded = rec.Encode();
    size_t offset = 0;
    auto decoded = wal::DecodeRecord(encoded, &offset);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(rec.body.size()));
}
BENCHMARK(BM_LogRecordEncodeDecode)->Arg(16)->Arg(256)->Arg(4096);

void BM_LockAcquireRelease(benchmark::State& state) {
  sim::SimContext ctx;
  lock::LockManager locks(&ctx, "bench");
  uint64_t txn = 0;
  std::vector<std::string> keys;
  for (int i = 0; i < 16; ++i) keys.push_back("key" + std::to_string(i));
  for (auto _ : state) {
    ++txn;
    for (const auto& key : keys) {
      locks.Acquire(txn, key, lock::LockMode::kExclusive, [](Status st) {
        benchmark::DoNotOptimize(st);
      });
    }
    locks.ReleaseAll(txn);
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_LockAcquireRelease);

void BM_Crc32c(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'z');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(65536);

// Vector-based compatibility codec: one EncodePdus temporary plus an owned
// decoded vector per round trip.
void BM_PduEncodeDecode(benchmark::State& state) {
  std::vector<tm::Pdu> pdus(2);
  pdus[0].type = tm::PduType::kAck;
  pdus[0].txn = 42;
  pdus[1].type = tm::PduType::kVote;
  pdus[1].txn = 42;
  pdus[1].vote = rm::Vote::kYes;
  pdus[1].reliable = true;
  for (auto _ : state) {
    std::string payload = tm::EncodePdus(pdus);
    auto decoded = tm::DecodePdus(payload);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_PduEncodeDecode);

// In-place codec: PduWriter appends into a reused buffer, PduCursor walks
// the frames without materializing anything.
void BM_PduWriterCursor(benchmark::State& state) {
  std::vector<tm::Pdu> pdus(2);
  pdus[0].type = tm::PduType::kAck;
  pdus[0].txn = 42;
  pdus[1].type = tm::PduType::kVote;
  pdus[1].txn = 42;
  pdus[1].vote = rm::Vote::kYes;
  pdus[1].reliable = true;
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    tm::PduWriter writer(&buf);
    for (const auto& pdu : pdus) writer.Append(pdu);
    tm::PduCursor cursor(buf);
    while (cursor.Next()) benchmark::DoNotOptimize(cursor.pdu());
    benchmark::DoNotOptimize(cursor.status());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_PduWriterCursor);

class NullEndpoint : public net::Endpoint {
 public:
  void OnMessage(const net::Message&) override { ++count; }
  bool IsUp() const override { return true; }
  uint64_t count = 0;
};

// Pooled hot path: interned ids, payload encoded into a pooled buffer.
void BM_NetworkSendDeliver(benchmark::State& state) {
  sim::SimContext ctx;
  net::Network network(&ctx);
  network.set_tracing(false);
  NullEndpoint a, b;
  network.Register("a", &a);
  network.Register("b", &b);
  const uint32_t from = network.IdOf("a");
  const uint32_t to = network.IdOf("b");
  for (auto _ : state) {
    net::Message msg;
    msg.from = from;
    msg.to = to;
    msg.kind = net::MsgKind::kApp;
    msg.payload = network.AcquirePayload();
    network.PayloadBuffer(msg.payload).assign(64, 'm');
    benchmark::DoNotOptimize(network.Send(std::move(msg)));
    ctx.events().Run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkSendDeliver);

// Seed-shaped baseline: by-name message whose strings are resolved and
// copied at the network boundary.
void BM_NetworkSendDeliverLegacy(benchmark::State& state) {
  sim::SimContext ctx;
  net::Network network(&ctx);
  network.set_tracing(false);
  NullEndpoint a, b;
  network.Register("a", &a);
  network.Register("b", &b);
  const std::string payload(64, 'm');
  for (auto _ : state) {
    net::LegacyMessage msg;
    msg.from = "a";
    msg.to = "b";
    msg.kind = net::MsgKind::kApp;
    msg.payload = payload;
    benchmark::DoNotOptimize(network.SendLegacy(std::move(msg)));
    ctx.events().Run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkSendDeliverLegacy);

}  // namespace
}  // namespace tpc

BENCHMARK_MAIN();
