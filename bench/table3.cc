// Reproduces Table 3 of the paper: logging and message costs for each
// optimization in a transaction of n participants where m members follow
// the optimization. Paper example: n = 11, m = 4.
//
// Usage: table3 [n] [m]

#include <cstdio>
#include <cstdlib>

#include "analysis/cost_model.h"
#include "harness/scenarios.h"
#include "util/format.h"

int main(int argc, char** argv) {
  using namespace tpc;
  using analysis::AllTable3Variants;
  using analysis::CostTriplet;
  using analysis::Table3Cost;
  using analysis::Table3VariantName;

  uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;
  uint64_t m = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4;
  if (n < 2 || m > n - 1) {
    std::fprintf(stderr, "need n >= 2 and m <= n-1\n");
    return 2;
  }

  std::printf("Table 3: logging and message costs (n = %llu, m = %llu)\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(m));
  std::printf("triplet = (flows, log writes, forced writes)\n\n");

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"2PC type", "measured", "paper formula", "match"});

  bool all_match = true;
  for (auto variant : AllTable3Variants()) {
    CostTriplet paper = Table3Cost(variant, n, m);
    harness::ScenarioResult run = harness::RunTable3Scenario(variant, n, m);
    const bool match = run.completed && run.measured == paper;
    all_match = all_match && match;
    auto fmt = [](const CostTriplet& t) {
      return StringPrintf("%llu, %llu, %llu",
                          static_cast<unsigned long long>(t.flows),
                          static_cast<unsigned long long>(t.writes),
                          static_cast<unsigned long long>(t.forced));
    };
    rows.push_back({std::string(Table3VariantName(variant)),
                    fmt(run.measured), fmt(paper), match ? "yes" : "NO"});
  }

  std::printf("%s", RenderTable(rows).c_str());
  std::printf("\n%s\n", all_match
                            ? "All rows match the paper's formulas."
                            : "MISMATCH against the paper's formulas!");
  return all_match ? 0 : 1;
}
