// Lock-table microbenchmark: wall-clock acquire/release throughput of the
// interned lock manager against a frozen copy of the seed implementation
// (std::map table, string-keyed held lists, std::function callbacks).
//
// The workload mirrors the resource manager's hot path: each transaction
// takes an intent lock on the store, then exclusive locks on a few data
// keys drawn from a reusable universe, then releases everything at commit.
// Transactions run back to back so no request ever waits — this measures
// the grant/release path itself, not queueing. Emits BENCH_lock.json.
//
// Usage: lock_bench [txns]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/bench_report.h"
#include "lock/legacy_lock_manager.h"
#include "lock/lock_manager.h"
#include "sim/sim_context.h"
#include "util/format.h"
#include "util/logging.h"

namespace {

constexpr int kKeysPerTxn = 4;
constexpr size_t kKeyUniverse = 1024;

struct RunResult {
  uint64_t ops = 0;  // acquires + releases
  double wall_seconds = 0;
  double ops_per_sec = 0;
};

std::vector<std::string> MakeKeys() {
  std::vector<std::string> keys;
  keys.reserve(kKeyUniverse);
  for (size_t i = 0; i < kKeyUniverse; ++i)
    keys.push_back(tpc::StringPrintf("account-%04zu", i));
  return keys;
}

RunResult RunOptimized(uint64_t txns) {
  using namespace tpc;
  sim::SimContext ctx;
  ctx.trace().set_capture(false);
  lock::LockManager lm(&ctx, "n1");
  const std::vector<std::string> keys = MakeKeys();
  const lock::KeyId store = lm.InternKey("store");

  uint64_t granted = 0;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t t = 1; t <= txns; ++t) {
    lm.Acquire(t, store, lock::LockMode::kIntentExclusive,
               [&granted](Status st) {
                 TPC_CHECK(st.ok());
                 ++granted;
               });
    for (int j = 0; j < kKeysPerTxn; ++j) {
      // Like the RM: intern the name once per operation, then grant on ids.
      const lock::KeyId id =
          lm.InternKey(keys[(t * kKeysPerTxn + j) % kKeyUniverse]);
      lm.Acquire(t, id, lock::LockMode::kExclusive, [&granted](Status st) {
        TPC_CHECK(st.ok());
        ++granted;
      });
    }
    lm.ReleaseAll(t);
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;

  TPC_CHECK(granted == txns * (kKeysPerTxn + 1));
  RunResult r;
  r.ops = txns * (kKeysPerTxn + 2);  // acquires + one release batch
  r.wall_seconds = wall.count();
  r.ops_per_sec = r.wall_seconds > 0 ? r.ops / r.wall_seconds : 0;
  return r;
}

RunResult RunLegacy(uint64_t txns) {
  using namespace tpc;
  sim::SimContext ctx;
  ctx.trace().set_capture(false);
  lock::LegacyLockManager lm(&ctx, "n1");
  const std::vector<std::string> keys = MakeKeys();
  const std::string store = "store";

  uint64_t granted = 0;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t t = 1; t <= txns; ++t) {
    lm.Acquire(t, store, lock::LockMode::kIntentExclusive,
               [&granted](Status st) {
                 TPC_CHECK(st.ok());
                 ++granted;
               });
    for (int j = 0; j < kKeysPerTxn; ++j) {
      lm.Acquire(t, keys[(t * kKeysPerTxn + j) % kKeyUniverse],
                 lock::LockMode::kExclusive, [&granted](Status st) {
                   TPC_CHECK(st.ok());
                   ++granted;
                 });
    }
    lm.ReleaseAll(t);
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;

  TPC_CHECK(granted == txns * (kKeysPerTxn + 1));
  RunResult r;
  r.ops = txns * (kKeysPerTxn + 2);
  r.wall_seconds = wall.count();
  r.ops_per_sec = r.wall_seconds > 0 ? r.ops / r.wall_seconds : 0;
  return r;
}

// Warm up once, then keep the best of `reps` runs (see event_queue_bench).
template <typename Fn>
RunResult BestOf(Fn run, uint64_t txns, int reps) {
  run(txns / 4);
  RunResult best;
  for (int i = 0; i < reps; ++i) {
    RunResult r = run(txns);
    if (r.ops_per_sec > best.ops_per_sec) best = r;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tpc;
  const uint64_t txns =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1'000'000;

  harness::BenchReport report("lock");

  RunResult opt = BestOf(RunOptimized, txns, 3);
  RunResult legacy = BestOf(RunLegacy, txns, 3);

  const double speedup =
      legacy.ops_per_sec > 0 ? opt.ops_per_sec / legacy.ops_per_sec : 0.0;

  harness::SweepCell opt_cell;
  opt_cell.label = "optimized";
  opt_cell.txns = txns;
  opt_cell.Add("lock_ops_per_sec", opt.ops_per_sec);
  opt_cell.Add("wall_seconds", opt.wall_seconds);
  opt_cell.Add("speedup_vs_seed", speedup);
  report.AddCell(opt_cell);

  harness::SweepCell legacy_cell;
  legacy_cell.label = "legacy_seed";
  legacy_cell.txns = txns;
  legacy_cell.Add("lock_ops_per_sec", legacy.ops_per_sec);
  legacy_cell.Add("wall_seconds", legacy.wall_seconds);
  report.AddCell(legacy_cell);

  std::printf("lock table, %llu txns x %d keys:\n",
              static_cast<unsigned long long>(txns), kKeysPerTxn);
  std::printf("  optimized : %8.2fM lock ops/s (%.3fs)\n",
              opt.ops_per_sec / 1e6, opt.wall_seconds);
  std::printf("  seed copy : %8.2fM lock ops/s (%.3fs)\n",
              legacy.ops_per_sec / 1e6, legacy.wall_seconds);
  std::printf("  speedup   : %.2fx\n", speedup);
  std::printf("%s\n", report.Summary().c_str());
  std::printf("wrote %s\n", report.WriteJson().c_str());
  return 0;
}
