// Group-commit experiment (Section 4, "Group Commits") plus the flush-policy
// ladder sweep.
//
// Part 1 reproduces the paper's table: physical forced writes and
// per-transaction latency as a function of group size under an open-loop
// transaction arrival stream.
//
// Part 2 sweeps FlushPolicy x log-device model (latency, bandwidth) per
// protocol family on the same open-loop pair workload and emits
// BENCH_group_commit.json. All gated metrics are simulated-time quantities
// (commits per simulated second, device forces, p99 force latency), so they
// are machine-independent and bench_diff can hold them to tight two-sided
// tolerances against the checked-in baseline.
//
// Usage: group_commit [txns] [arrival_interval_us]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "analysis/cost_model.h"
#include "harness/bench_report.h"
#include "harness/cluster.h"
#include "harness/sweep.h"
#include "util/logging.h"
#include "util/format.h"
#include "util/histogram.h"
#include "wal/log_manager.h"

namespace {

using namespace tpc;
using harness::Cluster;
using harness::NodeOptions;

struct DeviceCell {
  const char* label;
  sim::Time write_latency;
  uint64_t bandwidth_bytes_per_sec;  // 0 = infinite
  uint32_t queue_depth;
};

struct ProtocolCell {
  const char* label;
  tm::ProtocolKind kind;
};

constexpr DeviceCell kDevices[] = {
    {"500us", 500, 0, 2},
    {"2ms", 2 * sim::kMillisecond, 0, 2},
    {"2ms+4MBps", 2 * sim::kMillisecond, 4'000'000, 2},
};

constexpr ProtocolCell kProtocols[] = {
    {"basic", tm::ProtocolKind::kBasic2PC},
    {"pa", tm::ProtocolKind::kPresumedAbort},
    {"pn", tm::ProtocolKind::kPresumedNothing},
};

constexpr wal::FlushPolicy kPolicies[] = {
    wal::FlushPolicy::kCountTimer,
    wal::FlushPolicy::kFlushPipelining,
    wal::FlushPolicy::kWorkersWriteLog,
    wal::FlushPolicy::kWiloSteal,
};

/// Open-loop coordinator+subordinate pair: one txn every `arrival`
/// microseconds, each writing on both nodes, until `txns` have been
/// injected; runs to completion and reports simulated-time metrics.
harness::SweepCell RunPolicyCell(const ProtocolCell& proto,
                                 wal::FlushPolicy policy,
                                 const DeviceCell& device, uint64_t txns,
                                 sim::Time arrival) {
  Cluster c;
  NodeOptions options;
  options.tm.protocol = proto.kind;
  options.log_force_latency = device.write_latency;
  options.log_bandwidth_bytes_per_sec = device.bandwidth_bytes_per_sec;
  options.log_queue_depth = device.queue_depth;
  options.group_commit.enabled = true;
  options.group_commit.policy = policy;
  options.group_commit.group_size = 8;
  options.group_commit.group_timeout = 5 * sim::kMillisecond;
  options.group_commit.max_pipeline_depth = 2;
  options.group_commit.daemon_interval = 1 * sim::kMillisecond;
  options.group_commit.worker_buffer_bytes = 256;  // small: WILO steals fire
  c.AddNode("coord", options);
  c.AddNode("sub", options);
  c.Connect("coord", "sub");
  c.network().set_default_latency(100);
  c.network().set_tracing(false);
  c.ctx().trace().set_capture(false);
  c.node("coord").log().set_collect_force_latency(true);
  c.node("sub").log().set_collect_force_latency(true);
  c.tm("sub").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm("sub").Write(txn, 0, "s" + std::to_string(txn), "v",
                          [](Status st) { TPC_CHECK(st.ok()); });
      });

  std::vector<std::shared_ptr<harness::DrivenCommit>> commits;
  for (uint64_t i = 0; i < txns; ++i) {
    uint64_t txn = c.tm("coord").Begin();
    c.tm("coord").Write(txn, 0, "k" + std::to_string(i), "v",
                        [](Status st) { TPC_CHECK(st.ok()); });
    TPC_CHECK(c.tm("coord").SendWork(txn, "sub").ok());
    c.RunFor(arrival / 2);
    commits.push_back(c.StartCommit("coord", txn));
    c.RunFor(arrival - arrival / 2);
  }
  // Run until the last commit lands (group timers keep the loop non-empty,
  // so drive by time, not by drain).
  for (int rounds = 0; rounds < 600; ++rounds) {
    uint64_t completed = 0;
    for (const auto& commit : commits)
      if (commit->completed) ++completed;
    if (completed == txns) break;
    c.RunFor(100 * sim::kMillisecond);
  }
  Histogram commit_latency;
  sim::Time last_done = 0;
  for (size_t i = 0; i < commits.size(); ++i) {
    TPC_CHECK(commits[i]->completed);
    commit_latency.Add(static_cast<double>(commits[i]->latency));
    // Commit i was initiated at i*arrival + arrival/2 (the injection loop
    // above), so its completion instant is exact — no run-loop granularity.
    const sim::Time done_at =
        static_cast<sim::Time>(i) * arrival + arrival / 2 +
        commits[i]->latency;
    if (done_at > last_done) last_done = done_at;
  }

  // Workload makespan: first injection happens at t=arrival/2, the span runs
  // to the last commit's completion. Simulated time, so the quantity is
  // exactly reproducible across machines.
  const double sim_seconds = static_cast<double>(last_done) / sim::kSecond;

  Histogram force_latency;
  force_latency.Merge(c.node("coord").log().force_latency());
  force_latency.Merge(c.node("sub").log().force_latency());

  harness::SweepCell cell;
  cell.label = StringPrintf("%s %s @%s", proto.label,
                            wal::FlushPolicyName(policy), device.label);
  cell.txns = txns;
  cell.sim_time = c.ctx().events().now();
  cell.Add("sim_commits_per_sec",
           sim_seconds > 0 ? static_cast<double>(txns) / sim_seconds : 0.0);
  cell.Add("device_forces",
           static_cast<double>(c.node("coord").log().device_forces() +
                               c.node("sub").log().device_forces()));
  cell.Add("p99_force_latency_us", force_latency.Percentile(99));
  cell.Add("mean_commit_latency_us", commit_latency.Mean());
  cell.Add("p99_commit_latency_us", commit_latency.Percentile(99));
  cell.Add("steals", static_cast<double>(c.node("coord").log().steals() +
                                         c.node("sub").log().steals()));
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t kTxns =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;
  const sim::Time kArrival =
      argc > 2 ? std::strtoll(argv[2], nullptr, 10) : 500;  // microseconds

  std::printf("Group commit: %llu transactions, one every %lldus\n",
              static_cast<unsigned long long>(kTxns),
              static_cast<long long>(kArrival));
  std::printf("(two participants per transaction; 3 logical forces each)\n\n");

  // ---- Part 1: the paper's group-size table (count+timer policy) ----------
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"group size", "device forces", "expected ~n*3/m",
                  "mean latency (us)", "p99 latency (us)"});

  for (uint32_t group_size : {1u, 2u, 4u, 8u, 16u, 32u}) {
    Cluster c;
    NodeOptions options;
    options.log_force_latency = 500;  // fast device; queueing still matters
    options.group_commit.enabled = group_size > 1;
    options.group_commit.group_size = group_size;
    options.group_commit.group_timeout = 4 * sim::kMillisecond;
    c.AddNode("coord", options);
    c.AddNode("sub", options);
    c.Connect("coord", "sub");
    c.network().set_default_latency(100);
    c.network().set_tracing(false);
    c.tm("sub").SetAppDataHandler(
        [&c](uint64_t txn, const net::NodeId&, std::string_view) {
          c.tm("sub").Write(txn, 0, "s" + std::to_string(txn), "v",
                            [](Status st) { TPC_CHECK(st.ok()); });
        });

    Histogram latency;
    std::vector<std::shared_ptr<harness::DrivenCommit>> commits;
    for (uint64_t i = 0; i < kTxns; ++i) {
      uint64_t txn = c.tm("coord").Begin();
      c.tm("coord").Write(txn, 0, "k" + std::to_string(i), "v",
                          [](Status st) { TPC_CHECK(st.ok()); });
      TPC_CHECK(c.tm("coord").SendWork(txn, "sub").ok());
      c.RunFor(kArrival / 2);
      commits.push_back(c.StartCommit("coord", txn));
      c.RunFor(kArrival - kArrival / 2);
    }
    c.RunFor(5 * sim::kSecond);

    uint64_t completed = 0;
    for (const auto& commit : commits) {
      if (commit->completed) {
        ++completed;
        latency.Add(static_cast<double>(commit->latency));
      }
    }
    TPC_CHECK(completed == kTxns);

    uint64_t device_forces = c.node("coord").log().device_forces() +
                             c.node("sub").log().device_forces();
    double expected = analysis::GroupCommitExpectedForces(
        kTxns, options.group_commit.enabled ? group_size : 1);
    rows.push_back(
        {StringPrintf("%u", group_size),
         StringPrintf("%llu", static_cast<unsigned long long>(device_forces)),
         StringPrintf("%.0f", expected),
         StringPrintf("%.0f", latency.Mean()),
         StringPrintf("%.0f", latency.Percentile(99))});
  }

  std::printf("%s", RenderTable(rows).c_str());
  std::printf(
      "\nShape check (paper): device forces fall roughly as 1/m while\n"
      "per-transaction latency grows as groups build up.\n\n");

  // ---- Part 2: flush-policy x device sweep per protocol family ------------
  tpc::harness::BenchReport report("group_commit");

  struct Combo {
    const ProtocolCell* proto;
    wal::FlushPolicy policy;
    const DeviceCell* device;
  };
  std::vector<Combo> grid;
  for (const ProtocolCell& proto : kProtocols)
    for (const DeviceCell& device : kDevices)
      for (wal::FlushPolicy policy : kPolicies)
        grid.push_back({&proto, policy, &device});

  std::vector<harness::SweepCell> cells = harness::RunSweep(
      grid.size(), [&](size_t i) {
        const Combo& combo = grid[i];
        return RunPolicyCell(*combo.proto, combo.policy, *combo.device, kTxns,
                             kArrival);
      });
  report.AddCells(cells);

  std::vector<std::vector<std::string>> sweep_rows;
  sweep_rows.push_back({"cell", "commits/sim-s", "device forces",
                        "p99 force (us)", "p99 commit (us)", "steals"});
  for (const harness::SweepCell& cell : cells) {
    sweep_rows.push_back(
        {cell.label, StringPrintf("%.1f", cell.Get("sim_commits_per_sec")),
         StringPrintf("%.0f", cell.Get("device_forces")),
         StringPrintf("%.0f", cell.Get("p99_force_latency_us")),
         StringPrintf("%.0f", cell.Get("p99_commit_latency_us")),
         StringPrintf("%.0f", cell.Get("steals"))});
  }
  std::printf("%s", RenderTable(sweep_rows).c_str());
  std::printf(
      "\nLadder check: at 2ms device latency pipelining/WWL/WILO sustain\n"
      "higher commits/sim-s than the mistimed count+timer groups, and the\n"
      "bandwidth-limited device stretches p99 force latency for every\n"
      "policy (writes now pay bytes/bandwidth on top of the op latency).\n");
  std::printf("\n%s\n", report.Summary().c_str());
  std::printf("wrote %s\n", report.WriteJson().c_str());
  return 0;
}
