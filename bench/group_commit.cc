// Group-commit experiment (Section 4, "Group Commits"): physical forced
// writes and per-transaction latency as a function of group size, under an
// open-loop transaction arrival stream.
//
// Usage: group_commit [txns] [arrival_interval_us]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "analysis/cost_model.h"
#include "harness/cluster.h"
#include "util/logging.h"
#include "util/format.h"
#include "util/histogram.h"

int main(int argc, char** argv) {
  using namespace tpc;
  using harness::Cluster;
  using harness::NodeOptions;

  const uint64_t kTxns =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;
  const sim::Time kArrival =
      argc > 2 ? std::strtoll(argv[2], nullptr, 10) : 500;  // microseconds

  std::printf("Group commit: %llu transactions, one every %lldus\n",
              static_cast<unsigned long long>(kTxns),
              static_cast<long long>(kArrival));
  std::printf("(two participants per transaction; 3 logical forces each)\n\n");

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"group size", "device forces", "expected ~n*3/m",
                  "mean latency (us)", "p99 latency (us)"});

  for (uint32_t group_size : {1u, 2u, 4u, 8u, 16u, 32u}) {
    Cluster c;
    NodeOptions options;
    options.log_force_latency = 500;  // fast device; queueing still matters
    options.group_commit.enabled = group_size > 1;
    options.group_commit.group_size = group_size;
    options.group_commit.group_timeout = 4 * sim::kMillisecond;
    c.AddNode("coord", options);
    c.AddNode("sub", options);
    c.Connect("coord", "sub");
    c.network().set_default_latency(100);
    c.network().set_tracing(false);
    c.tm("sub").SetAppDataHandler(
        [&c](uint64_t txn, const net::NodeId&, std::string_view) {
          c.tm("sub").Write(txn, 0, "s" + std::to_string(txn), "v",
                            [](Status st) { TPC_CHECK(st.ok()); });
        });

    Histogram latency;
    std::vector<std::shared_ptr<harness::DrivenCommit>> commits;
    for (uint64_t i = 0; i < kTxns; ++i) {
      uint64_t txn = c.tm("coord").Begin();
      c.tm("coord").Write(txn, 0, "k" + std::to_string(i), "v",
                          [](Status st) { TPC_CHECK(st.ok()); });
      TPC_CHECK(c.tm("coord").SendWork(txn, "sub").ok());
      c.RunFor(kArrival / 2);
      commits.push_back(c.StartCommit("coord", txn));
      c.RunFor(kArrival - kArrival / 2);
    }
    c.RunFor(5 * sim::kSecond);

    uint64_t completed = 0;
    for (const auto& commit : commits) {
      if (commit->completed) {
        ++completed;
        latency.Add(static_cast<double>(commit->latency));
      }
    }
    TPC_CHECK(completed == kTxns);

    uint64_t device_forces = c.node("coord").log().device_forces() +
                             c.node("sub").log().device_forces();
    double expected = analysis::GroupCommitExpectedForces(
        kTxns, options.group_commit.enabled ? group_size : 1);
    rows.push_back(
        {StringPrintf("%u", group_size),
         StringPrintf("%llu", static_cast<unsigned long long>(device_forces)),
         StringPrintf("%.0f", expected),
         StringPrintf("%.0f", latency.Mean()),
         StringPrintf("%.0f", latency.Percentile(99))});
  }

  std::printf("%s", RenderTable(rows).c_str());
  std::printf(
      "\nShape check (paper): device forces fall roughly as 1/m while\n"
      "per-transaction latency grows as groups build up.\n");
  return 0;
}
