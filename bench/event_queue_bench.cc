// Event-loop microbenchmark: wall-clock events/sec of the simulation kernel
// under its real hot-path mix (delivery bursts + armed-then-cancelled
// timers), measured for the optimized slab kernel and for a frozen copy of
// the seed implementation. Emits BENCH_event_loop.json.
//
// Usage: event_queue_bench [events_per_side]

#include <cstdio>
#include <cstdlib>

#include "harness/bench_report.h"
#include "sim/event_loop_kernel.h"
#include "util/format.h"

namespace {

// Warm up once, then keep the best of `reps` runs: on a shared box the
// scheduler can steal half a rep, and best-of-N is the standard way to
// measure the code rather than the neighbours.
template <typename Queue>
tpc::sim::EventLoopKernelResult BestOf(uint64_t n, int reps) {
  tpc::sim::EventLoopKernelResult best;
  {
    Queue warm;
    tpc::sim::RunEventLoopKernel(warm, n / 4);
  }
  for (int i = 0; i < reps; ++i) {
    Queue q;
    tpc::sim::EventLoopKernelResult r = tpc::sim::RunEventLoopKernel(q, n);
    if (r.events_per_sec > best.events_per_sec) best = r;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tpc;
  const uint64_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4'000'000;

  harness::BenchReport report("event_loop");

  sim::EventLoopKernelResult opt = BestOf<sim::EventQueue>(n, 3);
  sim::EventLoopKernelResult legacy = BestOf<sim::LegacyEventQueue>(n, 3);

  const double speedup =
      legacy.events_per_sec > 0 ? opt.events_per_sec / legacy.events_per_sec
                                : 0.0;

  harness::SweepCell opt_cell;
  opt_cell.label = "optimized";
  opt_cell.events = opt.events;
  opt_cell.Add("events_per_sec", opt.events_per_sec);
  opt_cell.Add("wall_seconds", opt.wall_seconds);
  opt_cell.Add("timers_cancelled", static_cast<double>(opt.cancelled));
  opt_cell.Add("speedup_vs_seed", speedup);
  report.AddCell(opt_cell);

  harness::SweepCell legacy_cell;
  legacy_cell.label = "legacy_seed";
  legacy_cell.events = legacy.events;
  legacy_cell.Add("events_per_sec", legacy.events_per_sec);
  legacy_cell.Add("wall_seconds", legacy.wall_seconds);
  legacy_cell.Add("timers_cancelled", static_cast<double>(legacy.cancelled));
  report.AddCell(legacy_cell);

  std::printf("event-loop kernel, %llu events per side:\n",
              static_cast<unsigned long long>(n));
  std::printf("  optimized : %8.2fM events/s (%.3fs)\n",
              opt.events_per_sec / 1e6, opt.wall_seconds);
  std::printf("  seed copy : %8.2fM events/s (%.3fs)\n",
              legacy.events_per_sec / 1e6, legacy.wall_seconds);
  std::printf("  speedup   : %.2fx\n", speedup);
  std::printf("%s\n", report.Summary().c_str());
  std::printf("wrote %s\n", report.WriteJson().c_str());
  return 0;
}
