// Live wall-clock commit throughput: the same protocol engines the
// simulation runs, on real threads with real fsync'd logs (LiveRuntime +
// LiveTransport + FileStorage), measured in commits per wall-clock second.
//
// Three groups of cells, all report-only (every metric is `~`-prefixed so
// tools/bench_diff.py prints it but never gates on it — wall-clock numbers
// are machine property, not protocol property):
//
//   - Per-protocol-family raw cells (coordinator + 2 subordinates, no
//     device floor): commits/sec and client-observed p50/p99 commit
//     latency for basic 2PC, PA, PA+RO+last-agent, and PN.
//   - A contended thread-scaling curve: 4 coordinator/subordinate pairs
//     whose log forces carry a 2ms service floor, driven closed-loop at
//     worker counts 1 -> hardware_concurrency. One worker serializes every
//     node's forces; more workers overlap them — the wall-clock analogue
//     of the group-commit I/O-overlap effect, visible even on one core
//     because a force parks its worker in the kernel (or a floor sleep).
//   - A gated smoke cell: small run that TPC_CHECKs completion and
//     atomicity (every committed transaction's writes present at every
//     participant). The check crashing is the gate; its numbers are not.
//
// Emits BENCH_live.json. Usage: live_bench [txns_per_cell]

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/bench_report.h"
#include "harness/live_cluster.h"
#include "util/logging.h"

namespace {

using namespace tpc;
using harness::LiveCluster;
using harness::LiveClusterOptions;
using harness::LiveNodeOptions;

struct FamilyConfig {
  const char* name;
  LiveNodeOptions options;
};

std::vector<FamilyConfig> Families() {
  std::vector<FamilyConfig> configs;

  FamilyConfig basic;
  basic.name = "basic2pc";
  basic.options.tm.protocol = tm::ProtocolKind::kBasic2PC;
  configs.push_back(basic);

  FamilyConfig pa;
  pa.name = "presumed_abort";
  pa.options.tm.protocol = tm::ProtocolKind::kPresumedAbort;
  configs.push_back(pa);

  FamilyConfig combo;
  combo.name = "pa_last_agent_ro";
  combo.options.tm.protocol = tm::ProtocolKind::kPresumedAbort;
  combo.options.tm.last_agent_opt = true;
  combo.options.tm.read_only_opt = true;
  configs.push_back(combo);

  FamilyConfig pn;
  pn.name = "presumed_nothing";
  pn.options.tm.protocol = tm::ProtocolKind::kPresumedNothing;
  configs.push_back(pn);

  return configs;
}

struct LiveRunResult {
  uint64_t txns = 0;
  double wall_seconds = 0;
  double commits_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
};

double Percentile(std::vector<double>& samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(samples.size()));
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx];
}

// One closed-loop transaction against `coord`: conversation work shipped to
// each subordinate, then the full distributed commit. Returns the commit
// latency in microseconds and checks the outcome.
double OneTxn(LiveCluster& c, const std::string& coord,
              const std::vector<std::string>& subs) {
  const auto t0 = std::chrono::steady_clock::now();
  uint64_t txn = 0;
  c.RunOn(coord, [&] {
    txn = c.tm(coord).Begin();
    c.tm(coord).Write(txn, 0, "k" + std::to_string(txn), "v",
                      [](Status st) { TPC_CHECK(st.ok()); });
    // s1-style subs write, s2-style subs read (exercises the RO vote path
    // in the combo family). FIFO per pair guarantees the work flow is
    // processed before the PREPARE that follows it.
    for (size_t i = 0; i < subs.size(); ++i) {
      TPC_CHECK(c.tm(coord).SendWork(txn, subs[i], i == 1 ? "r" : "w").ok());
    }
  });
  std::promise<tm::CommitResult> done;
  c.Post(coord, [&c, &coord, txn, &done] {
    c.tm(coord).Commit(txn, [&done](tm::CommitResult r) {
      done.set_value(r);
    });
  });
  tm::CommitResult r = done.get_future().get();
  TPC_CHECK(r.outcome == tm::Outcome::kCommitted);
  TPC_CHECK(!r.heuristic_damage);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

void InstallHandlers(LiveCluster& c, const std::string& writer_sub,
                     const std::string& reader_sub) {
  std::string w = writer_sub;
  c.tm(w).SetAppDataHandler(
      [&c, w](uint64_t txn, const net::NodeId&, std::string_view op) {
        if (op == "w") {
          c.tm(w).Write(txn, 0, "s" + std::to_string(txn), "v",
                        [](Status st) { TPC_CHECK(st.ok()); });
        }
      });
  if (!reader_sub.empty()) {
    std::string rd = reader_sub;
    c.tm(rd).SetAppDataHandler(
        [&c, rd](uint64_t txn, const net::NodeId&, std::string_view op) {
          if (op == "r") c.tm(rd).Read(txn, 0, "s", [](Result<std::string>) {});
        });
  }
}

// Coordinator + 2 subordinates, `clients` closed-loop client threads.
LiveRunResult RunFamily(const LiveNodeOptions& options, uint64_t txns,
                        int clients, int workers, int64_t floor_us,
                        const std::string& dir) {
  LiveClusterOptions copts;
  copts.worker_threads = workers;
  copts.dir = dir;
  copts.log_force_floor_us = floor_us;
  LiveCluster c(copts);
  c.AddNode("coord", options);
  c.AddNode("s1", options);
  c.AddNode("s2", options);
  c.Connect("coord", "s1");
  c.Connect("coord", "s2");
  InstallHandlers(c, "s1", "s2");
  c.Start();

  std::atomic<uint64_t> issued{0};
  std::mutex lat_mu;
  std::vector<double> latencies;
  const std::vector<std::string> subs = {"s1", "s2"};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> client_threads;
  for (int i = 0; i < clients; ++i) {
    client_threads.emplace_back([&] {
      std::vector<double> local;
      while (issued.fetch_add(1) < txns) {
        local.push_back(OneTxn(c, "coord", subs));
      }
      std::lock_guard<std::mutex> lock(lat_mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (auto& t : client_threads) t.join();
  const auto end = std::chrono::steady_clock::now();
  c.Stop();

  LiveRunResult result;
  result.txns = latencies.size();
  result.wall_seconds = std::chrono::duration<double>(end - start).count();
  result.commits_per_sec =
      result.wall_seconds > 0
          ? static_cast<double>(result.txns) / result.wall_seconds
          : 0;
  result.p50_us = Percentile(latencies, 0.50);
  result.p99_us = Percentile(latencies, 0.99);
  return result;
}

// The contended cell: `pairs` independent coordinator/subordinate pairs,
// every log force padded to a 2ms service floor. Throughput at one worker
// is bounded by the serialized sum of every node's forces; more workers
// overlap the floors across pairs.
LiveRunResult RunContended(const LiveNodeOptions& options, size_t pairs,
                           uint64_t txns_per_pair, int workers,
                           const std::string& dir) {
  LiveClusterOptions copts;
  copts.worker_threads = workers;
  copts.dir = dir;
  copts.log_force_floor_us = 2000;
  LiveCluster c(copts);
  std::vector<std::string> coords, subs;
  for (size_t p = 0; p < pairs; ++p) {
    coords.push_back("c" + std::to_string(p));
    subs.push_back("s" + std::to_string(p));
    c.AddNode(coords[p], options);
    c.AddNode(subs[p], options);
    c.Connect(coords[p], subs[p]);
    InstallHandlers(c, subs[p], "");
  }
  c.Start();

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> client_threads;
  for (size_t p = 0; p < pairs; ++p) {
    client_threads.emplace_back([&c, &coords, &subs, p, txns_per_pair] {
      const std::vector<std::string> my_subs = {subs[p]};
      for (uint64_t i = 0; i < txns_per_pair; ++i)
        OneTxn(c, coords[p], my_subs);
    });
  }
  for (auto& t : client_threads) t.join();
  const auto end = std::chrono::steady_clock::now();
  c.Stop();

  LiveRunResult result;
  result.txns = pairs * txns_per_pair;
  result.wall_seconds = std::chrono::duration<double>(end - start).count();
  result.commits_per_sec =
      result.wall_seconds > 0
          ? static_cast<double>(result.txns) / result.wall_seconds
          : 0;
  return result;
}

// Gated smoke: completion + atomicity, checked with TPC_CHECK (a failure
// crashes the bench; the numbers themselves are never gated).
void RunSmoke(const std::string& dir, harness::BenchReport* report) {
  LiveClusterOptions copts;
  copts.worker_threads = 2;
  copts.dir = dir;
  LiveCluster c(copts);
  LiveNodeOptions options;
  options.tm.protocol = tm::ProtocolKind::kPresumedAbort;
  c.AddNode("coord", options);
  c.AddNode("s1", options);
  c.AddNode("s2", options);
  c.Connect("coord", "s1");
  c.Connect("coord", "s2");
  InstallHandlers(c, "s1", "s2");
  c.Start();

  constexpr uint64_t kTxns = 10;
  std::vector<uint64_t> committed;
  const std::vector<std::string> subs = {"s1", "s2"};
  for (uint64_t i = 0; i < kTxns; ++i) {
    uint64_t txn = 0;
    c.RunOn("coord", [&] {
      txn = c.tm("coord").Begin();
      c.tm("coord").Write(txn, 0, "k" + std::to_string(txn), "v",
                          [](Status st) { TPC_CHECK(st.ok()); });
      TPC_CHECK(c.tm("coord").SendWork(txn, "s1", "w").ok());
      TPC_CHECK(c.tm("coord").SendWork(txn, "s2", "r").ok());
    });
    std::promise<tm::CommitResult> done;
    c.Post("coord", [&c, txn, &done] {
      c.tm("coord").Commit(txn, [&done](tm::CommitResult r) {
        done.set_value(r);
      });
    });
    tm::CommitResult r = done.get_future().get();
    TPC_CHECK(r.outcome == tm::Outcome::kCommitted);  // completion
    committed.push_back(txn);
  }
  // Atomicity: every committed transaction's effects are present at both
  // the coordinator and the writing subordinate.
  for (uint64_t txn : committed) {
    c.RunOn("coord", [&c, txn] {
      TPC_CHECK(c.node("coord").rm().Peek("k" + std::to_string(txn)).ok());
    });
    c.RunOn("s1", [&c, txn] {
      TPC_CHECK(c.node("s1").rm().Peek("s" + std::to_string(txn)).ok());
    });
  }
  c.Stop();

  harness::SweepCell cell;
  cell.label = "smoke (gated: completion + atomicity)";
  cell.txns = kTxns;
  cell.Add("~completed", static_cast<double>(committed.size()));
  report->AddCell(cell);
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t txns = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400;

  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("tpc_live_bench_" + std::to_string(::getpid()));
  std::filesystem::remove_all(root);

  harness::BenchReport report("live");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf(
      "live runtime: wall-clock commits/sec on real threads + fsync'd logs\n"
      "(%llu txns per family cell, hardware_concurrency=%u)\n\n",
      static_cast<unsigned long long>(txns), hw);

  RunSmoke((root / "smoke").string(), &report);
  std::printf("smoke: completion + atomicity checks passed\n\n");

  std::printf("%-20s %12s %10s %10s\n", "family", "commits/s", "p50 us",
              "p99 us");
  for (const FamilyConfig& family : Families()) {
    LiveRunResult r =
        RunFamily(family.options, txns, /*clients=*/4, /*workers=*/4,
                  /*floor_us=*/0, (root / family.name).string());
    std::printf("%-20s %12.0f %10.0f %10.0f\n", family.name,
                r.commits_per_sec, r.p50_us, r.p99_us);
    harness::SweepCell cell;
    cell.label = std::string("family ") + family.name;
    cell.txns = r.txns;
    cell.Add("~live_commits_per_sec", r.commits_per_sec);
    cell.Add("~p50_commit_us", r.p50_us);
    cell.Add("~p99_commit_us", r.p99_us);
    cell.Add("~wall_seconds", r.wall_seconds);
    report.AddCell(cell);
  }

  // Thread-scaling curve on the contended cell.
  std::printf("\ncontended scaling (4 pairs, 2ms force floor):\n");
  std::printf("%-10s %12s %10s\n", "workers", "commits/s", "speedup");
  LiveNodeOptions pa;
  pa.tm.protocol = tm::ProtocolKind::kPresumedAbort;
  std::vector<int> worker_counts = {1, 2, 4};
  if (hw > 4) worker_counts.push_back(static_cast<int>(hw));
  const uint64_t per_pair = std::max<uint64_t>(10, txns / 16);
  double base_cps = 0;
  double best_speedup = 0;
  for (int workers : worker_counts) {
    LiveRunResult r = RunContended(
        pa, /*pairs=*/4, per_pair, workers,
        (root / ("scaling_w" + std::to_string(workers))).string());
    if (workers == 1) base_cps = r.commits_per_sec;
    const double speedup = base_cps > 0 ? r.commits_per_sec / base_cps : 0;
    best_speedup = std::max(best_speedup, speedup);
    std::printf("%-10d %12.0f %9.2fx\n", workers, r.commits_per_sec, speedup);
    harness::SweepCell cell;
    cell.label = "contended workers=" + std::to_string(workers);
    cell.txns = r.txns;
    cell.Add("~live_commits_per_sec", r.commits_per_sec);
    cell.Add("~scaling_vs_1_worker", speedup);
    report.AddCell(cell);
  }
  std::printf("\nbest scaling vs 1 worker: %.2fx\n", best_speedup);

  std::filesystem::remove_all(root);
  report.set_threads(hw);
  std::string path = report.WriteJson();
  std::printf("\n%s\nwrote %s\n", report.Summary().c_str(), path.c_str());
  return 0;
}
