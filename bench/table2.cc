// Reproduces Table 2 of the paper: logging and network traffic of 2PC
// optimizations for a two-participant transaction, per role.
// Prints the paper's (reconstructed) analytic values next to the counts
// measured from the simulation.

#include <cstdio>

#include "analysis/cost_model.h"
#include "harness/scenarios.h"
#include "util/format.h"

int main() {
  using tpc::analysis::Table2Expected;
  using tpc::harness::RunTable2Scenarios;

  std::printf("Table 2: logging and network traffic of 2PC optimizations\n");
  std::printf("(two participants; cell = flows sent, log writes (forced))\n\n");

  auto expected = Table2Expected();
  auto measured = RunTable2Scenarios();

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"2PC variant", "coord flows (paper)", "coord logs (paper)",
                  "sub flows (paper)", "sub logs (paper)", "match"});

  bool all_match = true;
  for (size_t i = 0; i < expected.size(); ++i) {
    const auto& e = expected[i];
    const auto& m = measured[i];
    const bool match = e.coordinator == m.coordinator &&
                       e.subordinate == m.subordinate;
    all_match = all_match && match;
    rows.push_back({
        e.label,
        tpc::StringPrintf("%llu (%llu)",
                          static_cast<unsigned long long>(m.coordinator.flows),
                          static_cast<unsigned long long>(e.coordinator.flows)),
        tpc::StringPrintf(
            "%llu,%lluf (%llu,%lluf)",
            static_cast<unsigned long long>(m.coordinator.writes),
            static_cast<unsigned long long>(m.coordinator.forced),
            static_cast<unsigned long long>(e.coordinator.writes),
            static_cast<unsigned long long>(e.coordinator.forced)),
        tpc::StringPrintf("%llu (%llu)",
                          static_cast<unsigned long long>(m.subordinate.flows),
                          static_cast<unsigned long long>(e.subordinate.flows)),
        tpc::StringPrintf(
            "%llu,%lluf (%llu,%lluf)",
            static_cast<unsigned long long>(m.subordinate.writes),
            static_cast<unsigned long long>(m.subordinate.forced),
            static_cast<unsigned long long>(e.subordinate.writes),
            static_cast<unsigned long long>(e.subordinate.forced)),
        match ? "yes" : "NO",
    });
  }

  std::printf("%s", tpc::RenderTable(rows).c_str());
  std::printf("\ncells: measured (paper). %s\n",
              all_match ? "All rows match the paper's accounting."
                        : "MISMATCH against the paper's accounting!");
  return all_match ? 0 : 1;
}
