// Read-only-dominated workloads (Section 4: "For an environment that is
// dominated by read-only transactions this optimization provides enormous
// savings"): total flows and forced writes as the read-only fraction of a
// mixed transaction stream grows, with the read-only optimization on and
// off.
//
// Usage: readonly_fraction [txns]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/cluster.h"
#include "util/format.h"
#include "util/logging.h"
#include "util/random.h"

namespace {

using namespace tpc;
using harness::Cluster;
using harness::NodeOptions;

struct Totals {
  uint64_t flows = 0;
  uint64_t forced = 0;
};

Totals RunMix(bool read_only_opt, double ro_fraction, uint64_t txns,
              uint64_t seed) {
  Cluster c(seed);
  Random rng(seed);
  NodeOptions options;
  options.tm.read_only_opt = read_only_opt;
  c.AddNode("coord", options);
  c.AddNode("s1", options);
  c.AddNode("s2", options);
  c.Connect("coord", "s1");
  c.Connect("coord", "s2");
  c.network().set_tracing(false);

  // Per-transaction behavior is decided by the coordinator and shipped in
  // the payload: "w" = write, "r" = read only.
  for (const std::string node : {"s1", "s2"}) {
    c.tm(node).SetAppDataHandler(
        [&c, node](uint64_t txn, const net::NodeId&, const std::string& op) {
          if (op == "w") {
            c.tm(node).Write(txn, 0, "k" + std::to_string(txn), "v",
                             [](Status st) { TPC_CHECK(st.ok()); });
          } else {
            c.tm(node).Read(txn, 0, "k", [](Result<std::string>) {});
          }
        });
  }

  Totals totals;
  for (uint64_t i = 0; i < txns; ++i) {
    const bool read_only = rng.Bernoulli(ro_fraction);
    const std::string op = read_only ? "r" : "w";
    uint64_t txn = c.tm("coord").Begin();
    if (!read_only) {
      c.tm("coord").Write(txn, 0, "c" + std::to_string(txn), "v",
                          [](Status st) { TPC_CHECK(st.ok()); });
    } else {
      c.tm("coord").Read(txn, 0, "k", [](Result<std::string>) {});
    }
    TPC_CHECK(c.tm("coord").SendWork(txn, "s1", op).ok());
    TPC_CHECK(c.tm("coord").SendWork(txn, "s2", op).ok());
    c.RunFor(10 * sim::kMillisecond);
    harness::DrivenCommit commit = c.CommitAndWait("coord", txn);
    TPC_CHECK(commit.completed);
    tm::TxnCost cost = c.TotalCost(txn);
    totals.flows += cost.flows_sent;
    totals.forced += cost.tm_log_forced;
  }
  return totals;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t txns = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;
  std::printf(
      "Mixed workload (coordinator + 2 subordinates, %llu transactions):\n"
      "totals with the read-only optimization OFF vs ON, as the fraction\n"
      "of fully read-only transactions grows.\n\n",
      static_cast<unsigned long long>(txns));

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"RO fraction", "flows (off)", "flows (on)", "forced (off)",
                  "forced (on)", "savings"});
  for (double fraction : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    Totals off = RunMix(false, fraction, txns, /*seed=*/7);
    Totals on = RunMix(true, fraction, txns, /*seed=*/7);
    double savings =
        off.flows == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(on.flows + on.forced) /
                                 static_cast<double>(off.flows + off.forced));
    rows.push_back(
        {tpc::StringPrintf("%.2f", fraction),
         tpc::StringPrintf("%llu", static_cast<unsigned long long>(off.flows)),
         tpc::StringPrintf("%llu", static_cast<unsigned long long>(on.flows)),
         tpc::StringPrintf("%llu",
                           static_cast<unsigned long long>(off.forced)),
         tpc::StringPrintf("%llu", static_cast<unsigned long long>(on.forced)),
         tpc::StringPrintf("%.0f%%", savings)});
  }
  std::printf("%s", tpc::RenderTable(rows).c_str());
  std::printf(
      "\nShape check (paper): the savings scale with the read-only\n"
      "fraction, reaching 'enormous' (zero logging, one round trip) when\n"
      "the environment is read-only dominated.\n");
  return 0;
}
