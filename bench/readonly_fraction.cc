// Read-only-dominated workloads (Section 4: "For an environment that is
// dominated by read-only transactions this optimization provides enormous
// savings"): total flows and forced writes as the read-only fraction of a
// mixed transaction stream grows, with the read-only optimization on and
// off.
//
// The (fraction x on/off) grid runs as a parallel sweep — one cluster per
// cell — and emits BENCH_readonly_fraction.json.
//
// Usage: readonly_fraction [txns] [threads]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/bench_report.h"
#include "harness/cluster.h"
#include "harness/sweep.h"
#include "util/format.h"
#include "util/logging.h"
#include "util/random.h"

namespace {

using namespace tpc;
using harness::Cluster;
using harness::NodeOptions;

harness::SweepCell RunMix(bool read_only_opt, double ro_fraction,
                          uint64_t txns, uint64_t seed) {
  Cluster c(seed);
  Random rng(seed);
  NodeOptions options;
  options.tm.read_only_opt = read_only_opt;
  c.AddNode("coord", options);
  c.AddNode("s1", options);
  c.AddNode("s2", options);
  c.Connect("coord", "s1");
  c.Connect("coord", "s2");
  c.network().set_tracing(false);

  // Per-transaction behavior is decided by the coordinator and shipped in
  // the payload: "w" = write, "r" = read only.
  for (const std::string node : {"s1", "s2"}) {
    c.tm(node).SetAppDataHandler(
        [&c, node](uint64_t txn, const net::NodeId&, std::string_view op) {
          if (op == "w") {
            c.tm(node).Write(txn, 0, "k" + std::to_string(txn), "v",
                             [](Status st) { TPC_CHECK(st.ok()); });
          } else {
            c.tm(node).Read(txn, 0, "k", [](Result<std::string>) {});
          }
        });
  }

  uint64_t flows = 0;
  uint64_t forced = 0;
  for (uint64_t i = 0; i < txns; ++i) {
    const bool read_only = rng.Bernoulli(ro_fraction);
    const std::string op = read_only ? "r" : "w";
    uint64_t txn = c.tm("coord").Begin();
    if (!read_only) {
      c.tm("coord").Write(txn, 0, "c" + std::to_string(txn), "v",
                          [](Status st) { TPC_CHECK(st.ok()); });
    } else {
      c.tm("coord").Read(txn, 0, "k", [](Result<std::string>) {});
    }
    TPC_CHECK(c.tm("coord").SendWork(txn, "s1", op).ok());
    TPC_CHECK(c.tm("coord").SendWork(txn, "s2", op).ok());
    c.RunFor(10 * sim::kMillisecond);
    harness::DrivenCommit commit = c.CommitAndWait("coord", txn);
    TPC_CHECK(commit.completed);
    tm::TxnCost cost = c.TotalCost(txn);
    flows += cost.flows_sent;
    forced += cost.tm_log_forced;
  }

  harness::SweepCell cell;
  cell.label = StringPrintf("ro=%.2f opt=%s", ro_fraction,
                            read_only_opt ? "on" : "off");
  cell.events = c.ctx().events().executed();
  cell.txns = txns;
  cell.sim_time = c.ctx().now();
  cell.Add("flows", static_cast<double>(flows));
  cell.Add("forced", static_cast<double>(forced));
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t txns = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;
  const unsigned threads =
      argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10))
               : 0;
  std::printf(
      "Mixed workload (coordinator + 2 subordinates, %llu transactions):\n"
      "totals with the read-only optimization OFF vs ON, as the fraction\n"
      "of fully read-only transactions grows.\n\n",
      static_cast<unsigned long long>(txns));

  const std::vector<double> fractions = {0.0, 0.25, 0.5, 0.75, 0.9, 1.0};

  // Cell layout: pairs of (off, on) per fraction.
  harness::BenchReport report("readonly_fraction");
  const std::vector<harness::SweepCell> cells = harness::RunSweep(
      fractions.size() * 2,
      [&](size_t i) {
        return RunMix(/*read_only_opt=*/(i % 2) == 1, fractions[i / 2], txns,
                      /*seed=*/7);
      },
      threads);
  report.AddCells(cells);
  report.set_threads(harness::ResolveThreads(threads, fractions.size() * 2));

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"RO fraction", "flows (off)", "flows (on)", "forced (off)",
                  "forced (on)", "savings"});
  for (size_t f = 0; f < fractions.size(); ++f) {
    const harness::SweepCell& off = cells[f * 2];
    const harness::SweepCell& on = cells[f * 2 + 1];
    const double off_total = off.Get("flows") + off.Get("forced");
    const double savings =
        off.Get("flows") == 0
            ? 0.0
            : 100.0 * (1.0 - (on.Get("flows") + on.Get("forced")) / off_total);
    rows.push_back({tpc::StringPrintf("%.2f", fractions[f]),
                    tpc::StringPrintf("%.0f", off.Get("flows")),
                    tpc::StringPrintf("%.0f", on.Get("flows")),
                    tpc::StringPrintf("%.0f", off.Get("forced")),
                    tpc::StringPrintf("%.0f", on.Get("forced")),
                    tpc::StringPrintf("%.0f%%", savings)});
  }
  std::printf("%s", tpc::RenderTable(rows).c_str());
  std::printf(
      "\nShape check (paper): the savings scale with the read-only\n"
      "fraction, reaching 'enormous' (zero logging, one round trip) when\n"
      "the environment is read-only dominated.\n");
  std::printf("\n%s\n", report.Summary().c_str());
  std::printf("wrote %s\n", report.WriteJson().c_str());
  return 0;
}
