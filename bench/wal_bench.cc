// WAL append microbenchmark: wall-clock record-append throughput of the
// in-place-encoding log manager against a frozen copy of the seed
// implementation (temporary-string encode, unordered_map stats).
//
// The workload is the TM/RM record mix: small protocol records across a
// rotating set of transactions and two owner tags per node, appended
// unforced (the encode + buffer + stats path; device forces are simulated
// time, not wall time, and identical for both). Emits BENCH_wal.json.
//
// Usage: wal_bench [records]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/bench_report.h"
#include "sim/sim_context.h"
#include "util/logging.h"
#include "wal/legacy_log_manager.h"
#include "wal/log_manager.h"

namespace {

struct RunResult {
  uint64_t records = 0;
  uint64_t bytes = 0;
  double wall_seconds = 0;
  double records_per_sec = 0;
};

tpc::wal::LogRecord MakeRecord(uint64_t i, const std::string& tm_owner,
                               const std::string& rm_owner) {
  tpc::wal::LogRecord rec;
  rec.txn = 1 + i % 4096;  // rotating dense txn ids, like a live node
  const bool rm_side = (i & 1) != 0;
  rec.owner = rm_side ? rm_owner : tm_owner;
  rec.type = rm_side ? tpc::wal::RecordType::kRmPrepared
                     : tpc::wal::RecordType::kTmPrepared;
  rec.body.assign(32, static_cast<char>('a' + i % 26));
  return rec;
}

template <typename Manager>
RunResult Run(uint64_t records) {
  using namespace tpc;
  sim::SimContext ctx;
  ctx.trace().set_capture(false);
  Manager log(&ctx, "n1");
  const std::string tm_owner = "n1.tm";
  const std::string rm_owner = "n1.rm";

  // Build the record mix outside the timed region: the bench measures the
  // append path, not workload generation.
  std::vector<wal::LogRecord> mix;
  mix.reserve(4096);
  for (uint64_t i = 0; i < 4096; ++i)
    mix.push_back(MakeRecord(i, tm_owner, rm_owner));

  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < records; ++i) {
    // Force every 16th record, the cadence a live node's prepared/commit
    // forces impose — the buffer stays small instead of growing without
    // bound, and both sides pay the identical flush cost.
    log.Append(mix[i % 4096], /*force=*/(i & 15) == 15);
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  ctx.events().Run();  // drain simulated device completions

  RunResult r;
  r.records = records;
  r.bytes = log.next_lsn();
  r.wall_seconds = wall.count();
  r.records_per_sec = r.wall_seconds > 0 ? records / r.wall_seconds : 0;
  return r;
}

// Warm up once, then keep the best of `reps` runs (see event_queue_bench).
template <typename Manager>
RunResult BestOf(uint64_t records, int reps) {
  Run<Manager>(records / 4);
  RunResult best;
  for (int i = 0; i < reps; ++i) {
    RunResult r = Run<Manager>(records);
    if (r.records_per_sec > best.records_per_sec) best = r;
  }
  return best;
}

// Workers-write-log append path: records land in per-owner buffers and the
// flush daemon gathers them into one device write. The event loop runs every
// 4096 appends so the daemon/device machinery executes inside the timed
// region — this cell measures the full owner-buffer steady state (append +
// gather + recycle), not just the encode.
RunResult RunOwnerBuffers(uint64_t records) {
  using namespace tpc;
  sim::SimContext ctx;
  ctx.trace().set_capture(false);
  wal::LogManager log(&ctx, "n1");
  wal::GroupCommitOptions gc;
  gc.enabled = true;
  gc.policy = wal::FlushPolicy::kWorkersWriteLog;
  gc.group_size = 64;
  gc.daemon_interval = 1 * sim::kMillisecond;
  log.set_group_commit(gc);
  const std::string tm_owner = "n1.tm";
  const std::string rm_owner = "n1.rm";

  std::vector<wal::LogRecord> mix;
  mix.reserve(4096);
  for (uint64_t i = 0; i < 4096; ++i)
    mix.push_back(MakeRecord(i, tm_owner, rm_owner));

  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < records; ++i) {
    log.Append(mix[i % 4096], /*force=*/(i & 15) == 15);
    if ((i & 4095) == 4095) ctx.events().Run();
  }
  ctx.events().Run();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;

  RunResult r;
  r.records = records;
  r.bytes = log.next_lsn();
  r.wall_seconds = wall.count();
  r.records_per_sec = r.wall_seconds > 0 ? records / r.wall_seconds : 0;
  return r;
}

RunResult BestOfOwnerBuffers(uint64_t records, int reps) {
  RunOwnerBuffers(records / 4);
  RunResult best;
  for (int i = 0; i < reps; ++i) {
    RunResult r = RunOwnerBuffers(records);
    if (r.records_per_sec > best.records_per_sec) best = r;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tpc;
  const uint64_t records =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2'000'000;

  harness::BenchReport report("wal");

  RunResult opt = BestOf<wal::LogManager>(records, 3);
  RunResult legacy = BestOf<wal::LegacyLogManager>(records, 3);
  TPC_CHECK(opt.bytes == legacy.bytes);  // identical encodings

  const double speedup = legacy.records_per_sec > 0
                             ? opt.records_per_sec / legacy.records_per_sec
                             : 0.0;

  harness::SweepCell opt_cell;
  opt_cell.label = "optimized";
  opt_cell.Add("appends_per_sec", opt.records_per_sec);
  opt_cell.Add("mb_per_sec", opt.bytes / 1e6 / opt.wall_seconds);
  opt_cell.Add("wall_seconds", opt.wall_seconds);
  opt_cell.Add("speedup_vs_seed", speedup);
  report.AddCell(opt_cell);

  harness::SweepCell legacy_cell;
  legacy_cell.label = "legacy_seed";
  legacy_cell.Add("appends_per_sec", legacy.records_per_sec);
  legacy_cell.Add("mb_per_sec", legacy.bytes / 1e6 / legacy.wall_seconds);
  legacy_cell.Add("wall_seconds", legacy.wall_seconds);
  report.AddCell(legacy_cell);

  RunResult wwl = BestOfOwnerBuffers(records, 3);
  harness::SweepCell wwl_cell;
  wwl_cell.label = "workers_write_log";
  wwl_cell.Add("appends_per_sec", wwl.records_per_sec);
  wwl_cell.Add("mb_per_sec", wwl.bytes / 1e6 / wwl.wall_seconds);
  wwl_cell.Add("wall_seconds", wwl.wall_seconds);
  report.AddCell(wwl_cell);

  std::printf("wal append, %llu records:\n",
              static_cast<unsigned long long>(records));
  std::printf("  optimized : %8.2fM appends/s (%.3fs, %.0f MB/s)\n",
              opt.records_per_sec / 1e6, opt.wall_seconds,
              opt.bytes / 1e6 / opt.wall_seconds);
  std::printf("  seed copy : %8.2fM appends/s (%.3fs, %.0f MB/s)\n",
              legacy.records_per_sec / 1e6, legacy.wall_seconds,
              legacy.bytes / 1e6 / legacy.wall_seconds);
  std::printf("  speedup   : %.2fx\n", speedup);
  std::printf("  wwl path  : %8.2fM appends/s (%.3fs, %.0f MB/s)\n",
              wwl.records_per_sec / 1e6, wwl.wall_seconds,
              wwl.bytes / 1e6 / wwl.wall_seconds);
  std::printf("%s\n", report.Summary().c_str());
  std::printf("wrote %s\n", report.WriteJson().c_str());
  return 0;
}
