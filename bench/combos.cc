// Ablation of *combined* optimizations — the "intriguing combinations" the
// paper explicitly defers to a future paper ("better performance can be
// achieved by combining the different optimizations"). Measures cluster
// totals for a coordinator + 4 members under each combination.

#include <cstdio>

#include "harness/cluster.h"
#include "util/format.h"
#include "util/logging.h"

namespace {

using namespace tpc;
using harness::Cluster;
using harness::NodeOptions;

struct Combo {
  std::string label;
  bool read_only_members = false;  // members 2,3 perform no updates
  bool last_agent = false;         // member 0 is the last agent
  bool vote_reliable = false;
  bool unsolicited = false;        // member 1 votes unsolicited
  bool shared_log = false;         // member 3 shares the coordinator's log
  bool long_locks = false;         // member 2's session defers its ack
};

tm::TxnCost RunCombo(const Combo& combo) {
  Cluster c;
  NodeOptions coord_options;
  coord_options.tm.last_agent_opt = combo.last_agent;
  coord_options.tm.vote_reliable_opt = combo.vote_reliable;
  c.AddNode("coord", coord_options);

  const char* members[] = {"m0", "m1", "m2", "m3"};
  for (int i = 0; i < 4; ++i) {
    NodeOptions options;
    options.tm.last_agent_opt = combo.last_agent && i == 0;
    options.tm.vote_reliable_opt = combo.vote_reliable;
    options.rm_options.reliable = combo.vote_reliable;
    if (combo.shared_log && i == 3) options.shared_log_host = "coord";
    c.AddNode(members[i], options);
    tm::SessionOptions session;
    session.last_agent_candidate = combo.last_agent && i == 0;
    session.long_locks = combo.long_locks && i == 2;
    c.Connect("coord", members[i], session, {});
  }
  for (int i = 0; i < 4; ++i) {
    const std::string name = members[i];
    const bool writes = !(combo.read_only_members && (i == 2 || i == 3));
    const bool unsolicited = combo.unsolicited && i == 1;
    c.tm(name).SetAppDataHandler(
        [&c, name, writes, unsolicited](uint64_t txn, const net::NodeId&,
                                        std::string_view) {
          if (!writes) {
            c.tm(name).Read(txn, 0, "x", [](Result<std::string>) {});
            return;
          }
          c.tm(name).Write(txn, 0, name, "v",
                           [&c, name, txn, unsolicited](Status st) {
            TPC_CHECK(st.ok());
            if (unsolicited) c.tm(name).UnsolicitedPrepare(txn);
          });
        });
  }

  uint64_t txn = c.tm("coord").Begin();
  c.tm("coord").Write(txn, 0, "k", "v", [](Status st) { TPC_CHECK(st.ok()); });
  for (const char* m : members) TPC_CHECK(c.tm("coord").SendWork(txn, m).ok());
  c.RunFor(2 * sim::kSecond);
  auto commit = c.StartCommit("coord", txn);
  c.RunFor(30 * sim::kSecond);

  // Flush deferred acks (long locks / last agent implied acks).
  if (combo.long_locks) {
    uint64_t next_txn = c.tm("m2").Begin();
    TPC_CHECK(c.tm("m2").SendWork(next_txn, "coord").ok());
  }
  if (combo.last_agent) {
    uint64_t next_txn = c.tm("coord").Begin();
    TPC_CHECK(c.tm("coord").SendWork(next_txn, "m0").ok());
  }
  c.RunFor(30 * sim::kSecond);
  TPC_CHECK(commit->completed);
  TPC_CHECK(commit->result.outcome == tm::Outcome::kCommitted);
  return c.TotalCost(txn);
}

}  // namespace

int main() {
  std::printf(
      "Combined optimizations (the paper's deferred 'intriguing\n"
      "combinations'): coordinator + 4 members, PA base, one update\n"
      "transaction; totals across the cluster.\n\n");

  const Combo combos[] = {
      {"PA baseline (all update)"},
      {"read-only (2 RO members)", true},
      {"last agent", false, true},
      {"vote reliable", false, false, true},
      {"unsolicited vote", false, false, false, true},
      {"RO + last agent", true, true},
      {"RO + vote reliable", true, false, true},
      {"last agent + reliable", false, true, true},
      {"last agent + unsolicited", false, true, false, true},
      {"reliable + unsolicited", false, false, true, true},
      {"RO + LA + reliable + unsolicited", true, true, true, true},
      {"everything + shared log + long locks", true, true, true, true, true,
       true},
  };

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"combination", "flows", "log writes", "forced"});
  for (const Combo& combo : combos) {
    tm::TxnCost cost = RunCombo(combo);
    rows.push_back(
        {combo.label,
         tpc::StringPrintf("%llu",
                           static_cast<unsigned long long>(cost.flows_sent)),
         tpc::StringPrintf(
             "%llu", static_cast<unsigned long long>(cost.tm_log_writes)),
         tpc::StringPrintf(
             "%llu", static_cast<unsigned long long>(cost.tm_log_forced))});
  }
  std::printf("%s", tpc::RenderTable(rows).c_str());
  std::printf(
      "\nThe savings compose: each optimization removes its own flows and\n"
      "forces independently, so the combined rows approach the floor of\n"
      "one flow per decision-bearing member.\n");
  return 0;
}
