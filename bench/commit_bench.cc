// End-to-end commit throughput: simulated commits per wall-clock second for
// each protocol on a coordinator + 2 subordinates cell, with the messaging
// layer on the pooled zero-allocation path vs the frozen seed string path
// (TmConfig::legacy_string_messaging). Protocol behavior is identical on
// both paths — the delta is pure messaging overhead: per-message strings,
// EncodePdus/DecodePdus temporaries, and by-name lookups.
//
// Emits BENCH_commit.json (one cell per protocol x path, plus a speedup
// metric on each pooled cell); tools/bench_diff.py gates regressions on the
// speedups in CI.
//
// Usage: commit_bench [txns]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "harness/bench_report.h"
#include "harness/cluster.h"
#include "util/logging.h"
#include "wal/log_manager.h"

namespace {

using namespace tpc;
using harness::Cluster;
using harness::NodeOptions;

struct ProtocolConfig {
  const char* name;
  NodeOptions options;
};

std::vector<ProtocolConfig> Protocols() {
  std::vector<ProtocolConfig> configs;

  ProtocolConfig basic;
  basic.name = "basic2pc";
  basic.options.tm.protocol = tm::ProtocolKind::kBasic2PC;
  configs.push_back(basic);

  ProtocolConfig pa;
  pa.name = "presumed_abort";
  pa.options.tm.protocol = tm::ProtocolKind::kPresumedAbort;
  configs.push_back(pa);

  ProtocolConfig pn;
  pn.name = "presumed_nothing";
  pn.options.tm.protocol = tm::ProtocolKind::kPresumedNothing;
  configs.push_back(pn);

  // Combined optimizations: last agent + read-only voters on PA.
  ProtocolConfig combo;
  combo.name = "pa_last_agent_ro";
  combo.options.tm.protocol = tm::ProtocolKind::kPresumedAbort;
  combo.options.tm.last_agent_opt = true;
  combo.options.tm.read_only_opt = true;
  configs.push_back(combo);

  // Paxos Commit: the three cell nodes double as the 2F+1 acceptor set
  // (F=1), so every commit pays the 2a/2b fan-out and acceptor forces on
  // top of the conversation traffic — the messaging-path delta now includes
  // the paxos body codec.
  ProtocolConfig paxos;
  paxos.name = "paxos_commit";
  paxos.options.tm.protocol = tm::ProtocolKind::kPaxosCommit;
  paxos.options.tm.acceptors = {"coord", "s1", "s2"};
  configs.push_back(paxos);

  // One-phase family: subordinates vote unsolicited when their work
  // quiesces, so the commit round starts with votes already in flight.
  ProtocolConfig one_phase;
  one_phase.name = "one_phase";
  one_phase.options.tm.protocol = tm::ProtocolKind::kOnePhase;
  configs.push_back(one_phase);

  ProtocolConfig logless;
  logless.name = "one_phase_logless";
  logless.options.tm.protocol = tm::ProtocolKind::kOnePhaseLogless;
  configs.push_back(logless);

  return configs;
}

struct RunResult {
  uint64_t txns = 0;
  double wall_seconds = 0;
  double commits_per_sec = 0;
};

// Conversation traffic per transaction: the paper's commercial transactions
// exchange a batch of data flows with each participant (screens, rows, SQL)
// before the commit protocol runs. These flows are where the string path
// pays: each one costs it an EncodePdus temporary, a payload copy at the
// network boundary, and a DecodePdus re-allocation on delivery.
constexpr int kWorkFlowsPerSub = 32;
constexpr size_t kWorkFlowBytes = 16384;

// One coordinator + two subordinates; s1 writes, s2 reads (so the
// read-only combo cell actually exercises the RO vote path). Every
// transaction ships its conversation flows, then runs the full
// distributed commit.
RunResult RunCommits(const NodeOptions& options, bool legacy, uint64_t txns) {
  Cluster c;
  NodeOptions node = options;
  node.tm.legacy_string_messaging = legacy;
  c.AddNode("coord", node);
  c.AddNode("s1", node);
  c.AddNode("s2", node);
  c.Connect("coord", "s1");
  c.Connect("coord", "s2");
  c.network().set_tracing(false);
  c.ctx().trace().set_capture(false);

  // "w"/"r" open the conversation and pick the subordinate's role; the bulk
  // flows that follow model the rest of the exchange and need no action.
  c.tm("s1").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId&, std::string_view op) {
        if (op == "w") {
          c.tm("s1").Write(txn, 0, "s", "v",
                           [](Status st) { TPC_CHECK(st.ok()); });
        }
      });
  c.tm("s2").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId&, std::string_view op) {
        if (op == "r") {
          c.tm("s2").Read(txn, 0, "s", [](Result<std::string>) {});
        }
      });

  const std::string bulk(kWorkFlowBytes, 'd');
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < txns; ++i) {
    uint64_t txn = c.tm("coord").Begin();
    c.tm("coord").Write(txn, 0, "k", "v",
                        [](Status st) { TPC_CHECK(st.ok()); });
    TPC_CHECK(c.tm("coord").SendWork(txn, "s1", "w").ok());
    TPC_CHECK(c.tm("coord").SendWork(txn, "s2", "r").ok());
    for (int f = 1; f < kWorkFlowsPerSub; ++f) {
      TPC_CHECK(c.tm("coord").SendWork(txn, "s1", bulk).ok());
      TPC_CHECK(c.tm("coord").SendWork(txn, "s2", bulk).ok());
    }
    c.Drain();
    harness::DrivenCommit commit = c.CommitAndWait("coord", txn);
    TPC_CHECK(commit.completed);
    TPC_CHECK(commit.result.outcome == tm::Outcome::kCommitted);
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;

  RunResult r;
  r.txns = txns;
  r.wall_seconds = wall.count();
  r.commits_per_sec = r.wall_seconds > 0 ? txns / r.wall_seconds : 0;
  return r;
}

// --- contended group-commit cell -------------------------------------------
// Closed-loop workers on a coordinator+subordinate pair with a slow (2ms)
// log device: the protocol's forces dominate the round trip, so the flush
// policy decides throughput. kCountTimer is deliberately mistuned
// (group_size 8 with only 4 workers, so the count trigger never fires and
// every force eats the 5ms group timeout); kFlushPipelining submits
// immediately and overlaps flushes. Metrics are simulated-time, hence
// machine-independent; bench_diff gates the speedup two runs apart.

constexpr uint64_t kGcTxns = 100;
constexpr int kGcWorkers = 4;

double RunGcContended(wal::FlushPolicy policy) {
  Cluster c;
  NodeOptions node;
  node.tm.protocol = tm::ProtocolKind::kPresumedAbort;
  node.log_force_latency = 2 * sim::kMillisecond;
  node.log_queue_depth = 2;
  node.group_commit.enabled = true;
  node.group_commit.policy = policy;
  node.group_commit.group_size = 8;  // > worker count: count trigger starves
  node.group_commit.group_timeout = 5 * sim::kMillisecond;
  node.group_commit.max_pipeline_depth = 2;
  c.AddNode("coord", node);
  c.AddNode("sub", node);
  c.Connect("coord", "sub");
  c.network().set_default_latency(100);
  c.network().set_tracing(false);
  c.ctx().trace().set_capture(false);
  c.tm("sub").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId&, std::string_view) {
        c.tm("sub").Write(txn, 0, "s" + std::to_string(txn), "v",
                          [](Status st) { TPC_CHECK(st.ok()); });
      });

  uint64_t started = 0;
  uint64_t completed = 0;
  std::function<void()> start_one = [&] {
    if (started == kGcTxns) return;
    ++started;
    uint64_t txn = c.tm("coord").Begin();
    c.tm("coord").Write(txn, 0, "k" + std::to_string(txn), "v",
                        [](Status st) { TPC_CHECK(st.ok()); });
    TPC_CHECK(c.tm("coord").SendWork(txn, "sub").ok());
    // Think time before commit: the work flow must reach the subordinate
    // (and its write must land) before the commit tree includes it.
    c.ctx().events().ScheduleAfter(500, [&, txn] {
      c.tm("coord").Commit(txn, [&](tm::CommitResult result) {
        TPC_CHECK(result.outcome == tm::Outcome::kCommitted);
        ++completed;
        start_one();
      });
    });
  };
  for (int w = 0; w < kGcWorkers; ++w) start_one();
  for (int rounds = 0; rounds < 6000 && completed < kGcTxns; ++rounds)
    c.RunFor(10 * sim::kMillisecond);
  TPC_CHECK(completed == kGcTxns);

  const double sim_seconds =
      static_cast<double>(c.ctx().events().now()) / sim::kSecond;
  return static_cast<double>(kGcTxns) / sim_seconds;
}

// Warm up once per path, then alternate pooled/legacy reps and keep the
// best of each — interleaving keeps machine noise from landing entirely on
// one side of the comparison (see lock_bench for the best-of rationale).
std::pair<RunResult, RunResult> BestOfPair(const NodeOptions& options,
                                           uint64_t txns, int reps) {
  RunCommits(options, /*legacy=*/false, txns / 4);
  RunCommits(options, /*legacy=*/true, txns / 4);
  RunResult pooled, legacy;
  for (int i = 0; i < reps; ++i) {
    RunResult p = RunCommits(options, /*legacy=*/false, txns);
    if (p.commits_per_sec > pooled.commits_per_sec) pooled = p;
    RunResult l = RunCommits(options, /*legacy=*/true, txns);
    if (l.commits_per_sec > legacy.commits_per_sec) legacy = l;
  }
  return {pooled, legacy};
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t txns = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000;

  harness::BenchReport report("commit");
  std::printf(
      "end-to-end commits (coordinator + 2 subordinates, %llu txns/run,\n"
      "%d x %zu-byte work flows per subordinate, best of 3):\n"
      "pooled zero-allocation messaging vs seed string path\n\n",
      static_cast<unsigned long long>(txns), kWorkFlowsPerSub,
      kWorkFlowBytes);

  for (const ProtocolConfig& config : Protocols()) {
    auto [pooled, legacy] = BestOfPair(config.options, txns, 3);
    const double speedup = legacy.commits_per_sec > 0
                               ? pooled.commits_per_sec / legacy.commits_per_sec
                               : 0.0;

    harness::SweepCell pooled_cell;
    pooled_cell.label = std::string(config.name) + " pooled";
    pooled_cell.txns = pooled.txns;
    pooled_cell.Add("commits_per_sec", pooled.commits_per_sec);
    pooled_cell.Add("wall_seconds", pooled.wall_seconds);
    pooled_cell.Add("speedup_vs_legacy", speedup);
    report.AddCell(pooled_cell);

    harness::SweepCell legacy_cell;
    legacy_cell.label = std::string(config.name) + " legacy";
    legacy_cell.txns = legacy.txns;
    legacy_cell.Add("commits_per_sec", legacy.commits_per_sec);
    legacy_cell.Add("wall_seconds", legacy.wall_seconds);
    report.AddCell(legacy_cell);

    std::printf("  %-18s pooled %8.0f commits/s  legacy %8.0f  (%.2fx)\n",
                config.name, pooled.commits_per_sec, legacy.commits_per_sec,
                speedup);
  }

  const double ct = RunGcContended(wal::FlushPolicy::kCountTimer);
  const double fp = RunGcContended(wal::FlushPolicy::kFlushPipelining);
  const double gc_speedup = ct > 0 ? fp / ct : 0.0;
  harness::SweepCell gc_cell;
  gc_cell.label = "pa_gc_contended @2ms device";
  gc_cell.txns = kGcTxns * 2;
  gc_cell.Add("count_timer_sim_commits_per_sec", ct);
  gc_cell.Add("pipelining_sim_commits_per_sec", fp);
  gc_cell.Add("gc_speedup_vs_count_timer", gc_speedup);
  report.AddCell(gc_cell);
  std::printf(
      "\n  %-18s count+timer %6.0f commits/sim-s  pipelining %6.0f  (%.2fx)\n",
      "pa_gc @2ms dev", ct, fp, gc_speedup);
  // Acceptance bar: pipelining must hold >= 1.5x over the mistimed
  // count+timer groups on this cell. Simulated-time, so the check is exact
  // on every machine.
  TPC_CHECK(gc_speedup >= 1.5);

  std::printf("\n%s\n", report.Summary().c_str());
  std::printf("wrote %s\n", report.WriteJson().c_str());
  return 0;
}
