// Throughput under lock contention: the paper's second claim for faster
// commits — "by causing locks to be released sooner, reducing the wait
// time of other transactions". A closed-loop stream of conflicting
// transactions (every transaction updates the same hot key at the
// subordinate) turns commit-path latency directly into throughput.
//
// The configuration grid runs as a parallel sweep — one cluster per cell —
// and emits BENCH_throughput.json.
//
// Usage: throughput [txns] [threads]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/bench_report.h"
#include "harness/cluster.h"
#include "harness/sweep.h"
#include "util/format.h"
#include "util/logging.h"

namespace {

using namespace tpc;
using harness::Cluster;
using harness::NodeOptions;

struct Config {
  std::string label;
  tm::ProtocolKind protocol = tm::ProtocolKind::kPresumedAbort;
  bool vote_reliable = false;
  bool last_agent = false;
  bool group_commit = false;
};

harness::SweepCell RunStream(const Config& config, uint64_t txns) {
  Cluster c;
  NodeOptions options;
  options.tm.protocol = config.protocol;
  options.tm.vote_reliable_opt = config.vote_reliable;
  options.rm_options.reliable = config.vote_reliable;
  options.tm.last_agent_opt = config.last_agent;
  if (config.group_commit) {
    options.group_commit.enabled = true;
    options.group_commit.group_size = 8;
    options.group_commit.group_timeout = sim::kMillisecond;
  }
  c.AddNode("coord", options);
  c.AddNode("sub", options);
  tm::SessionOptions session;
  session.last_agent_candidate = config.last_agent;
  c.Connect("coord", "sub", session, {});
  c.network().set_tracing(false);
  c.tm("sub").SetAppDataHandler(
      [&c](uint64_t txn, const net::NodeId&, std::string_view) {
        // Hot key: every transaction conflicts with its predecessor.
        c.tm("sub").Write(txn, 0, "hot", std::to_string(txn),
                          [](Status st) { TPC_CHECK(st.ok()); });
      });

  const sim::Time start = c.ctx().now();
  for (uint64_t i = 0; i < txns; ++i) {
    uint64_t txn = c.tm("coord").Begin();
    c.tm("coord").Write(txn, 0, "k", "v",
                        [](Status st) { TPC_CHECK(st.ok()); });
    TPC_CHECK(c.tm("coord").SendWork(txn, "sub").ok());
    // Closed loop: each transaction runs to completion before the next
    // begins (its lock wait would otherwise serialize them anyway).
    harness::DrivenCommit commit = c.CommitAndWait("coord", txn);
    TPC_CHECK(commit.completed);
    TPC_CHECK(commit.result.outcome == tm::Outcome::kCommitted);
  }
  const double elapsed_s =
      static_cast<double>(c.ctx().now() - start) / sim::kSecond;

  harness::SweepCell cell;
  cell.label = config.label;
  cell.events = c.ctx().events().executed();
  cell.txns = txns;
  cell.sim_time = c.ctx().now() - start;
  cell.Add("txn_per_sec",
           elapsed_s > 0 ? static_cast<double>(txns) / elapsed_s : 0.0);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t txns = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;
  const unsigned threads =
      argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10))
               : 0;
  std::printf(
      "Closed-loop throughput on a hot key (every transaction conflicts):\n"
      "%llu transactions, 1ms links, 2ms log device.\n\n",
      static_cast<unsigned long long>(txns));

  const std::vector<Config> configs = {
      {"Basic 2PC", tm::ProtocolKind::kBasic2PC},
      {"Presumed Abort", tm::ProtocolKind::kPresumedAbort},
      {"Presumed Commit (ext)", tm::ProtocolKind::kPresumedCommit},
      {"Presumed Nothing", tm::ProtocolKind::kPresumedNothing},
      {"PA + vote reliable", tm::ProtocolKind::kPresumedAbort, true},
      {"PA + last agent", tm::ProtocolKind::kPresumedAbort, false, true},
  };

  harness::BenchReport report("throughput");
  const std::vector<harness::SweepCell> cells = harness::RunSweep(
      configs.size(), [&](size_t i) { return RunStream(configs[i], txns); },
      threads);
  report.AddCells(cells);
  report.set_threads(harness::ResolveThreads(threads, configs.size()));

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"configuration", "throughput (txn/s, simulated)"});
  for (const harness::SweepCell& cell : cells) {
    rows.push_back(
        {cell.label, tpc::StringPrintf("%.0f", cell.Get("txn_per_sec"))});
  }
  std::printf("%s", tpc::RenderTable(rows).c_str());
  std::printf(
      "\nShape check (paper §1): a faster commit path shortens the hot\n"
      "key's lock-hold window, which raises the whole stream's throughput\n"
      "— fewer flows/forces means more transactions per second.\n");
  std::printf("\n%s\n", report.Summary().c_str());
  std::printf("wrote %s\n", report.WriteJson().c_str());
  return 0;
}
