// Simulated message-passing network.
//
// Models what the paper's analysis depends on: each message is a *flow* with
// a per-link latency; sessions between a pair of nodes deliver in order (as
// LU 6.2 conversations do); links and nodes can fail, silently dropping
// traffic. Per-node and per-link flow counts feed the cost accounting.

#ifndef TPC_NET_NETWORK_H_
#define TPC_NET_NETWORK_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

#include "net/message.h"
#include "sim/sim_context.h"
#include "util/status.h"

namespace tpc::net {

/// Receiver interface implemented by simulated nodes.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Delivery upcall. Never invoked while the endpoint reports itself down.
  virtual void OnMessage(const Message& msg) = 0;

  /// A crashed node neither sends nor receives.
  virtual bool IsUp() const = 0;
};

/// Aggregate traffic counters.
struct NetworkStats {
  uint64_t messages_sent = 0;      ///< accepted into the network
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;   ///< link down, partition, or dead receiver
  uint64_t bytes_sent = 0;
};

/// The cluster interconnect.
class Network {
 public:
  explicit Network(sim::SimContext* ctx) : ctx_(ctx) {}

  /// Registers a node. Names must be unique.
  void Register(const NodeId& id, Endpoint* endpoint);

  /// Latency applied when no per-link override exists.
  void set_default_latency(sim::Time latency) { default_latency_ = latency; }
  sim::Time default_latency() const { return default_latency_; }

  /// Overrides latency for both directions of the (a, b) link.
  void SetLinkLatency(const NodeId& a, const NodeId& b, sim::Time latency);

  /// Takes both directions of the (a, b) link down or up. Messages sent
  /// while a link is down are dropped silently (no error to the sender, as
  /// with a real partition).
  void SetLinkDown(const NodeId& a, const NodeId& b, bool down);
  bool IsLinkDown(const NodeId& a, const NodeId& b) const;

  /// Sends a message. The sender must be registered and up. Delivery is
  /// in-order per directed pair. Counting: every accepted message is one
  /// flow, even if it is later dropped (the sender did the work).
  Status Send(Message msg);

  /// Latency the next message from `a` to `b` would experience.
  sim::Time LatencyBetween(const NodeId& a, const NodeId& b) const;

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats(); }

  /// Messages accepted from `node` (its outbound flow count).
  uint64_t SentBy(const NodeId& node) const;

  /// Enables/disables trace entries for sends and deliveries (on by default;
  /// turn off for large throughput benches).
  void set_tracing(bool on) { tracing_ = on; }

 private:
  static std::string LinkKey(const NodeId& a, const NodeId& b) {
    return a < b ? a + "|" + b : b + "|" + a;
  }

  sim::SimContext* ctx_;
  sim::Time default_latency_ = sim::kMillisecond;
  std::unordered_map<NodeId, Endpoint*> endpoints_;
  std::unordered_map<std::string, sim::Time> link_latency_;
  std::unordered_map<std::string, bool> link_down_;
  // Per directed pair: earliest time the next delivery may occur (FIFO).
  std::unordered_map<std::string, sim::Time> next_delivery_floor_;
  std::unordered_map<NodeId, uint64_t> sent_by_;
  NetworkStats stats_;
  bool tracing_ = true;
};

}  // namespace tpc::net

#endif  // TPC_NET_NETWORK_H_
