// Simulated message-passing network.
//
// Models what the paper's analysis depends on: each message is a *flow* with
// a per-link latency; sessions between a pair of nodes deliver in order (as
// LU 6.2 conversations do); links and nodes can fail, silently dropping
// traffic. Per-node and per-link flow counts feed the cost accounting.
//
// Hot-path design: node names are interned into dense uint32 ids, messages
// carry only those ids, per-node counters live in flat vectors indexed by
// them, and all per-link state (latency override, link-down flag, loss
// rate, FIFO delivery floor) lives in one sparse open-addressed map keyed
// by the directed pair — a Send performs no string building and one integer
// hash probe, and a cluster's link memory is O(links used), not O(nodes²). Payload bytes live in a network-owned buffer pool with
// free-list reuse (senders encode in place via PayloadBuffer), and in-flight
// messages are parked in a reusable slab so the scheduled delivery closure
// captures only 16 bytes and fits in the event queue's inline buffer. In
// steady state a Send → deliver round trip performs zero allocations.

#ifndef TPC_NET_NETWORK_H_
#define TPC_NET_NETWORK_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/message.h"
#include "net/transport.h"
#include "sim/sim_context.h"
#include "util/flat_map.h"
#include "util/status.h"

namespace tpc::net {

/// Aggregate traffic counters. Invariant: every *accepted* message is one
/// flow (messages_sent), and ends up delivered or dropped (or still in
/// flight). Sends that never enter the network — unknown sender or
/// destination, sender down — are counted as rejected, not sent.
/// Bytes are counted once at accept time (bytes_sent) and once at successful
/// delivery (bytes_delivered), so drop accounting is byte-accurate:
/// bytes_sent - bytes_delivered = bytes dropped or still in flight.
struct NetworkStats {
  uint64_t messages_sent = 0;      ///< accepted into the network
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;   ///< link down, partition, or dead receiver
  uint64_t messages_rejected = 0;  ///< refused at the send API; not a flow
  uint64_t bytes_sent = 0;
  uint64_t bytes_delivered = 0;
};

/// The cluster interconnect: the deterministic Transport backend.
class Network : public Transport {
 public:
  explicit Network(sim::SimContext* ctx) : ctx_(ctx) {}

  /// Registers a node. Names must be unique.
  void Register(const NodeId& id, Endpoint* endpoint) override;

  /// Latency applied when no per-link override exists.
  void set_default_latency(sim::Time latency) { default_latency_ = latency; }
  sim::Time default_latency() const { return default_latency_; }

  /// Overrides latency for both directions of the (a, b) link.
  void SetLinkLatency(const NodeId& a, const NodeId& b, sim::Time latency);

  /// Takes both directions of the (a, b) link down or up. Messages sent
  /// while a link is down are dropped silently (no error to the sender, as
  /// with a real partition).
  ///
  /// In-flight semantics (link flaps): the link state is checked both at
  /// send time and again at delivery time. A message sent while the link
  /// was up but *due for delivery during an outage* is dropped retroactively
  /// — it was on the wire when the link failed, so it never arrives. A
  /// message whose delivery time falls after the link recovers is delivered
  /// normally; the outage in between does not affect it. The FIFO delivery
  /// floor is unaffected by outages, so per-link ordering of surviving
  /// messages is preserved across a flap.
  void SetLinkDown(const NodeId& a, const NodeId& b, bool down);
  bool IsLinkDown(const NodeId& a, const NodeId& b) const;

  /// Sets a probabilistic loss rate on both directions of the (a, b) link:
  /// each accepted message is independently dropped with probability `p`
  /// (0 disables). Draws come from the SimContext RNG, so a given seed
  /// yields an identical loss pattern on every run. Lost messages count as
  /// dropped flows (the sender did the work) and do not advance the FIFO
  /// delivery floor.
  void SetLinkLossRate(const NodeId& a, const NodeId& b, double p);
  double LinkLossRate(const NodeId& a, const NodeId& b) const;

  /// Sends a message. The sender must be registered and up. Delivery is
  /// in-order per directed pair. Counting: every accepted message is one
  /// flow, even if it is later dropped (the sender did the work); a send
  /// that fails validation is rejected and never enters the network.
  /// Ownership: Send consumes msg.payload on every path — accepted, dropped,
  /// or rejected, the pooled buffer returns to the free list once the
  /// message reaches its terminal state. Callers never release it.
  Status Send(Message msg) override;

  /// String-path compatibility entry taking the seed message shape:
  /// resolves the names, copies payload and tag into pooled storage, and
  /// forwards to Send. Benches measure this as the pre-interning baseline;
  /// tests use it to inject traffic by name.
  Status SendLegacy(LegacyMessage msg) override;

  /// Latency the next message from `a` to `b` would experience.
  sim::Time LatencyBetween(const NodeId& a, const NodeId& b) const override;

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats(); }

  /// Messages accepted from `node` (its outbound flow count).
  uint64_t SentBy(const NodeId& node) const;

  /// Enables/disables trace entries for sends and deliveries (on by default;
  /// turn off for large throughput benches). Senders may also consult this
  /// to skip building per-message trace tags.
  void set_tracing(bool on) { tracing_ = on; }
  bool tracing() const override { return tracing_; }

  // --- public interning surface --------------------------------------------
  // Node names map to dense uint32 ids. Components that keep per-peer flat
  // tables (the TM's session vector) index them by these ids instead of
  // hashing names per message.

  /// Interns `name`, returning its dense id (stable for the network's life).
  uint32_t InternId(const NodeId& name) override { return Intern(name); }
  /// Id of `name`, or kNoId if never interned. Never allocates.
  uint32_t IdOf(const NodeId& name) const override { return Find(name); }
  /// The name interned as `id`. Requires a valid id.
  const NodeId& NameOf(uint32_t id) const override { return names_[id]; }

  // --- pooled payload buffers ----------------------------------------------
  // Senders acquire a buffer, encode the payload directly into it via
  // PayloadBuffer, and hand the ref to Send. Buffers keep their capacity
  // across reuse, so a warmed pool serves the steady state without touching
  // the allocator.

  /// Acquires a cleared buffer from the pool (capacity retained from its
  /// previous use).
  PayloadRef AcquirePayload() override;

  /// The mutable buffer behind `ref` — encode the payload in place here
  /// before Send. Requires a ref obtained from AcquirePayload.
  std::string& PayloadBuffer(PayloadRef ref) override {
    return payload_pool_[ref.index];
  }

  /// Read-only view of the bytes behind `ref`; empty for the null ref.
  std::string_view PayloadView(PayloadRef ref) const override {
    return ref.valid() ? std::string_view(payload_pool_[ref.index])
                       : std::string_view();
  }

  /// Heap bytes held by the network's own tables (interning, link state,
  /// payload pool, in-flight slab). Feeds the cluster memory budget; the
  /// key property is that link state is O(links used), not O(nodes²).
  uint64_t ApproxBytes() const;

 private:
  static constexpr uint32_t kNoNode = UINT32_MAX;
  static constexpr sim::Time kDefaultLatency = -1;  // sentinel in LinkState

  /// Per-directed-pair state, created lazily on first touch. A sparse
  /// topology of N nodes and L used links costs O(L) entries instead of the
  /// former four N×N matrices (which hit ~100 MB at 2048 nodes).
  struct LinkState {
    sim::Time latency = kDefaultLatency;  // kDefaultLatency: use default_latency_
    sim::Time floor = 0;                  // FIFO delivery floor
    double loss = 0.0;                    // per-message drop probability
    bool down = false;
  };

  static uint64_t PairKey(uint32_t a, uint32_t b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  /// Interns `name`. Interning does not register: link state may be
  /// configured before nodes attach.
  uint32_t Intern(const NodeId& name);
  /// Id of `name`, or kNoNode. Never allocates.
  uint32_t Find(const NodeId& name) const;

  void ReleasePayload(PayloadRef ref);
  uint32_t AcquireSlab(Message&& msg);
  void Deliver(uint32_t slab_index, uint32_t from, uint32_t to);

  sim::SimContext* ctx_;
  sim::Time default_latency_ = sim::kMillisecond;

  // Interning: name -> dense id, and id -> name for trace rendering.
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> names_;

  // Indexed by node id.
  std::vector<Endpoint*> endpoints_;  // nullptr: interned but not registered
  std::vector<uint64_t> sent_by_;

  // Sparse per-directed-pair link state keyed by PairKey(from, to). Only
  // pairs that ever carried a message or a configuration own an entry.
  FlatId64Map<LinkState> links_;

  // Payload buffer pool. A deque keeps buffer addresses stable while the
  // pool grows, so payload views held across a reentrant Send (an OnMessage
  // upcall that sends, forcing the pool to grow) never dangle.
  std::deque<std::string> payload_pool_;
  std::vector<uint32_t> payload_free_;

  // Parking slab for in-flight messages (delivery closures capture an index).
  std::vector<Message> slab_;
  std::vector<uint32_t> slab_free_;

  NetworkStats stats_;
  bool tracing_ = true;
};

}  // namespace tpc::net

#endif  // TPC_NET_NETWORK_H_
