// Network message envelope. Payload encoding is owned by the protocol layer
// (see tm/protocol_messages.h); the network treats it as opaque bytes.

#ifndef TPC_NET_MESSAGE_H_
#define TPC_NET_MESSAGE_H_

#include <cstdint>
#include <string>

namespace tpc::net {

/// Nodes are addressed by human-readable names ("coord", "sub1", ...), which
/// keeps traces and failure-injection points legible.
using NodeId = std::string;

/// One network message.
struct Message {
  NodeId from;
  NodeId to;
  std::string type;     ///< short type tag for traces ("PREPARE", "COMMIT", ...)
  std::string payload;  ///< encoded body, opaque to the network
  uint64_t txn = 0;     ///< transaction id for trace correlation (0 = none)
};

}  // namespace tpc::net

#endif  // TPC_NET_MESSAGE_H_
