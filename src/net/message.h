// Network message envelope. Payload encoding is owned by the protocol layer
// (see tm/protocol_messages.h); the network treats it as opaque bytes.

#ifndef TPC_NET_MESSAGE_H_
#define TPC_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace tpc::net {

/// Nodes are addressed by human-readable names ("coord", "sub1", ...), which
/// keeps traces and failure-injection points legible. The network interns
/// these into dense uint32 ids internally (see Network).
using NodeId = std::string;

/// Coarse message classification. Dispatch is driven by the payload, never
/// by this tag; it only labels traffic when no per-message trace tag was
/// computed (senders skip building one while tracing is off).
enum class MsgKind : unsigned char {
  kPdu,    ///< protocol PDU bundle (tm/protocol_messages.h)
  kApp,    ///< application traffic
  kOther,  ///< anything else (tests, fuzzed garbage)
};

std::string_view MsgKindName(MsgKind kind);

/// One network message.
struct Message {
  NodeId from;
  NodeId to;
  MsgKind kind = MsgKind::kOther;
  std::string trace_tag;  ///< human tag for traces ("PREPARE+..."); may be
                          ///< empty — senders only fill it while tracing
  std::string payload;    ///< encoded body, opaque to the network
  uint64_t txn = 0;       ///< transaction id for trace correlation (0 = none)

  /// Tag recorded in traces: the per-message string when present, else the
  /// static kind name.
  std::string_view TraceTag() const {
    return trace_tag.empty() ? MsgKindName(kind) : std::string_view(trace_tag);
  }
};

inline std::string_view MsgKindName(MsgKind kind) {
  switch (kind) {
    case MsgKind::kPdu:
      return "PDU";
    case MsgKind::kApp:
      return "APP";
    case MsgKind::kOther:
      return "MSG";
  }
  return "MSG";
}

}  // namespace tpc::net

#endif  // TPC_NET_MESSAGE_H_
