// Network message envelope. Payload encoding is owned by the protocol layer
// (see tm/protocol_messages.h); the network treats it as opaque bytes.
//
// Hot-path shape: a Message carries no heap strings. Sender and receiver are
// the network's interned uint32 node ids (names survive only at the
// trace-render boundary via Network::NameOf), the payload is a handle into a
// network-owned pooled buffer slab (Network::AcquirePayload), and the trace
// tag is a small inline buffer that is simply left empty while tracing is
// off — a steady-state Send touches no allocator.

#ifndef TPC_NET_MESSAGE_H_
#define TPC_NET_MESSAGE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace tpc::net {

/// Nodes are addressed by human-readable names ("coord", "sub1", ...), which
/// keeps traces and failure-injection points legible. The network interns
/// these into dense uint32 ids (see Network); messages carry only the ids.
using NodeId = std::string;

/// Coarse message classification. Dispatch is driven by the payload, never
/// by this tag; it only labels traffic when no per-message trace tag was
/// computed (senders skip building one while tracing is off).
enum class MsgKind : unsigned char {
  kPdu,    ///< protocol PDU bundle (tm/protocol_messages.h)
  kApp,    ///< application traffic
  kOther,  ///< anything else (tests, fuzzed garbage)
};

std::string_view MsgKindName(MsgKind kind);

/// Handle to a pooled payload buffer owned by the Network. A default
/// (invalid) ref means "no payload". The network releases the buffer back
/// to its free list once the message reaches a terminal state, so views of
/// a delivered payload are valid only for the duration of OnMessage.
struct PayloadRef {
  static constexpr uint32_t kNone = UINT32_MAX;
  uint32_t index = kNone;
  bool valid() const { return index != kNone; }
};

/// Human trace tag ("PREPARE+ACK") with small-buffer storage: tags short
/// enough for the inline buffer (the overwhelming majority) never allocate,
/// longer ones spill to a heap string rather than truncate — traces must
/// stay bit-for-bit identical to the string-backed implementation.
class TraceTag {
 public:
  TraceTag() = default;
  TraceTag(std::string_view s) { append(s); }  // NOLINT: implicit by design
  TraceTag& operator=(std::string_view s) {
    clear();
    append(s);
    return *this;
  }

  void append(std::string_view s) {
    if (spill_.empty() && len_ + s.size() <= kInlineCapacity) {
      std::memcpy(buf_ + len_, s.data(), s.size());
      len_ = static_cast<unsigned char>(len_ + s.size());
      return;
    }
    if (spill_.empty()) {
      spill_.assign(buf_, len_);
      len_ = 0;
    }
    spill_.append(s);
  }
  void append(char c) { append(std::string_view(&c, 1)); }

  void clear() {
    len_ = 0;
    spill_.clear();
  }
  bool empty() const { return len_ == 0 && spill_.empty(); }
  size_t size() const { return spill_.empty() ? len_ : spill_.size(); }
  std::string_view view() const {
    return spill_.empty() ? std::string_view(buf_, len_)
                          : std::string_view(spill_);
  }
  operator std::string_view() const { return view(); }  // NOLINT

 private:
  static constexpr size_t kInlineCapacity = 47;
  char buf_[kInlineCapacity];
  unsigned char len_ = 0;
  std::string spill_;  ///< overflow for tags longer than the inline buffer
};

inline bool operator==(const TraceTag& tag, std::string_view s) {
  return tag.view() == s;
}

/// One network message.
struct Message {
  uint32_t from = UINT32_MAX;  ///< interned sender id (Network::InternId)
  uint32_t to = UINT32_MAX;    ///< interned destination id
  MsgKind kind = MsgKind::kOther;
  TraceTag trace_tag;  ///< human tag for traces; senders only fill it
                       ///< while tracing is on
  PayloadRef payload;  ///< pooled buffer handle, opaque to the network
  uint64_t txn = 0;    ///< transaction id for trace correlation (0 = none)

  /// Tag recorded in traces: the per-message tag when present, else the
  /// static kind name.
  std::string_view TagView() const {
    return trace_tag.empty() ? MsgKindName(kind) : trace_tag.view();
  }
};

/// The seed-era message shape: four heap strings per message, addressed by
/// name. Kept as the frozen string-path baseline so bench/commit_bench can
/// measure what the pooled path saves (and so compatibility callers have a
/// by-name entry point); Network::SendLegacy resolves the names and copies
/// the payload onto the pooled path, preserving delivery semantics exactly.
struct LegacyMessage {
  NodeId from;
  NodeId to;
  MsgKind kind = MsgKind::kOther;
  std::string trace_tag;
  std::string payload;
  uint64_t txn = 0;
};

inline std::string_view MsgKindName(MsgKind kind) {
  switch (kind) {
    case MsgKind::kPdu:
      return "PDU";
    case MsgKind::kApp:
      return "APP";
    case MsgKind::kOther:
      return "MSG";
  }
  return "MSG";
}

}  // namespace tpc::net

#endif  // TPC_NET_MESSAGE_H_
