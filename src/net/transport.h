// Transport: the messaging seam the protocol engines code against.
//
// TransactionManager and the RMs send PDUs through this interface instead of
// holding a concrete net::Network, so the identical engine links against
// either backend:
//
//   - net::Network (network.h): the deterministic simulated interconnect —
//     per-link latency/loss/flaps, FIFO sessions, scheduled deliveries on
//     the sim event loop.
//   - runtime::LiveTransport (live_runtime.h): real threads — Send enqueues
//     a delivery task on the destination node's mailbox; OnMessage runs on
//     the destination's serialized worker context.
//
// The surface is exactly what the zero-allocation send path needs: intern a
// peer name once, acquire a pooled payload buffer, encode the PDU in place,
// hand the ref to Send. Both backends recycle the buffer when the message
// reaches its terminal state, so the engines never release payloads.
//
// Contract every backend guarantees:
//   - Delivery is in-order per directed (from, to) pair and serialized with
//     respect to the destination's other activity (event loop or mailbox).
//   - OnMessage is never invoked on an endpoint reporting IsUp() == false.
//   - Send consumes msg.payload on every path (accepted, dropped, rejected).
//   - Interned ids are dense, stable, and shared across all nodes on the
//     transport instance.

#ifndef TPC_NET_TRANSPORT_H_
#define TPC_NET_TRANSPORT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "net/message.h"
#include "sim/event_queue.h"
#include "util/status.h"

namespace tpc::net {

/// Receiver interface implemented by nodes.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Delivery upcall. Never invoked while the endpoint reports itself down.
  /// The message's payload buffer is recycled when this returns: read it via
  /// Transport::PayloadOf during the call, copy it if it must outlive it.
  virtual void OnMessage(const Message& msg) = 0;

  /// A crashed node neither sends nor receives.
  virtual bool IsUp() const = 0;
};

class Transport {
 public:
  static constexpr uint32_t kNoId = UINT32_MAX;

  virtual ~Transport() = default;

  /// Registers a node. Names must be unique.
  virtual void Register(const NodeId& id, Endpoint* endpoint) = 0;

  // --- interning ----------------------------------------------------------

  /// Interns `name`, returning its dense id (stable for the transport's
  /// life).
  virtual uint32_t InternId(const NodeId& name) = 0;
  /// Id of `name`, or kNoId if never interned. Never allocates.
  virtual uint32_t IdOf(const NodeId& name) const = 0;
  /// The name interned as `id`. Requires a valid id.
  virtual const NodeId& NameOf(uint32_t id) const = 0;

  // --- pooled payload buffers ---------------------------------------------

  /// Acquires a cleared buffer from the pool (capacity retained from its
  /// previous use).
  virtual PayloadRef AcquirePayload() = 0;
  /// The mutable buffer behind `ref` — encode the payload in place here
  /// before Send. Requires a ref obtained from AcquirePayload.
  virtual std::string& PayloadBuffer(PayloadRef ref) = 0;
  /// Read-only view of the bytes behind `ref`; empty for the null ref.
  virtual std::string_view PayloadView(PayloadRef ref) const = 0;

  /// The payload of a message (empty if it carries none). During OnMessage
  /// this is the delivered bytes; the view dies with the upcall.
  std::string_view PayloadOf(const Message& msg) const {
    return PayloadView(msg.payload);
  }

  // --- sending ------------------------------------------------------------

  /// Sends a message; delivery is in-order per directed pair. Send consumes
  /// msg.payload on every path.
  virtual Status Send(Message msg) = 0;

  /// String-path compatibility entry taking the seed message shape.
  virtual Status SendLegacy(LegacyMessage msg) = 0;

  /// Latency the next message from `a` to `b` would experience (an estimate
  /// on live backends, where the scheduler decides).
  virtual sim::Time LatencyBetween(const NodeId& a, const NodeId& b) const = 0;

  /// Whether senders should build per-message trace tags.
  virtual bool tracing() const = 0;
};

}  // namespace tpc::net

#endif  // TPC_NET_TRANSPORT_H_
