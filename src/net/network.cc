#include "net/network.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace tpc::net {

uint32_t Network::Intern(const NodeId& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(names_.size());
  ids_.emplace(name, id);
  names_.push_back(name);
  endpoints_.push_back(nullptr);
  sent_by_.push_back(0);
  if (names_.size() > cap_) GrowTables(static_cast<uint32_t>(names_.size()));
  return id;
}

uint32_t Network::Find(const NodeId& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? kNoNode : it->second;
}

void Network::GrowTables(uint32_t min_nodes) {
  uint32_t new_cap = cap_ == 0 ? 8 : cap_;
  while (new_cap < min_nodes) new_cap *= 2;
  if (new_cap == cap_) return;
  std::vector<sim::Time> latency(size_t{new_cap} * new_cap, kDefaultLatency);
  std::vector<unsigned char> down(size_t{new_cap} * new_cap, 0);
  std::vector<sim::Time> floor(size_t{new_cap} * new_cap, 0);
  std::vector<double> loss(size_t{new_cap} * new_cap, 0.0);
  for (uint32_t a = 0; a < cap_; ++a) {
    for (uint32_t b = 0; b < cap_; ++b) {
      latency[size_t{a} * new_cap + b] = latency_[LinkIndex(a, b)];
      down[size_t{a} * new_cap + b] = down_[LinkIndex(a, b)];
      floor[size_t{a} * new_cap + b] = delivery_floor_[LinkIndex(a, b)];
      loss[size_t{a} * new_cap + b] = loss_[LinkIndex(a, b)];
    }
  }
  latency_ = std::move(latency);
  down_ = std::move(down);
  delivery_floor_ = std::move(floor);
  loss_ = std::move(loss);
  cap_ = new_cap;
}

void Network::Register(const NodeId& id, Endpoint* endpoint) {
  TPC_CHECK(endpoint != nullptr);
  const uint32_t node = Intern(id);
  TPC_CHECK(endpoints_[node] == nullptr);  // names must be unique
  endpoints_[node] = endpoint;
}

void Network::SetLinkLatency(const NodeId& a, const NodeId& b,
                             sim::Time latency) {
  const uint32_t ia = Intern(a), ib = Intern(b);
  latency_[LinkIndex(ia, ib)] = latency;
  latency_[LinkIndex(ib, ia)] = latency;
}

void Network::SetLinkDown(const NodeId& a, const NodeId& b, bool down) {
  const uint32_t ia = Intern(a), ib = Intern(b);
  down_[LinkIndex(ia, ib)] = down ? 1 : 0;
  down_[LinkIndex(ib, ia)] = down ? 1 : 0;
}

bool Network::IsLinkDown(const NodeId& a, const NodeId& b) const {
  const uint32_t ia = Find(a), ib = Find(b);
  if (ia == kNoNode || ib == kNoNode) return false;
  return down_[LinkIndex(ia, ib)] != 0;
}

void Network::SetLinkLossRate(const NodeId& a, const NodeId& b, double p) {
  TPC_CHECK(p >= 0.0 && p <= 1.0);
  const uint32_t ia = Intern(a), ib = Intern(b);
  loss_[LinkIndex(ia, ib)] = p;
  loss_[LinkIndex(ib, ia)] = p;
}

double Network::LinkLossRate(const NodeId& a, const NodeId& b) const {
  const uint32_t ia = Find(a), ib = Find(b);
  if (ia == kNoNode || ib == kNoNode) return 0.0;
  return loss_[LinkIndex(ia, ib)];
}

sim::Time Network::LatencyBetween(const NodeId& a, const NodeId& b) const {
  const uint32_t ia = Find(a), ib = Find(b);
  if (ia == kNoNode || ib == kNoNode) return default_latency_;
  const sim::Time t = latency_[LinkIndex(ia, ib)];
  return t == kDefaultLatency ? default_latency_ : t;
}

PayloadRef Network::AcquirePayload() {
  if (!payload_free_.empty()) {
    const uint32_t idx = payload_free_.back();
    payload_free_.pop_back();
    payload_pool_[idx].clear();  // capacity survives, bytes do not
    return PayloadRef{idx};
  }
  payload_pool_.emplace_back();
  return PayloadRef{static_cast<uint32_t>(payload_pool_.size() - 1)};
}

void Network::ReleasePayload(PayloadRef ref) {
  if (ref.valid()) payload_free_.push_back(ref.index);
}

uint32_t Network::AcquireSlab(Message&& msg) {
  if (!slab_free_.empty()) {
    const uint32_t idx = slab_free_.back();
    slab_free_.pop_back();
    slab_[idx] = std::move(msg);
    return idx;
  }
  slab_.push_back(std::move(msg));
  return static_cast<uint32_t>(slab_.size() - 1);
}

Status Network::Send(Message msg) {
  const uint32_t from = msg.from;
  const uint32_t to = msg.to;
  if (from >= endpoints_.size() || endpoints_[from] == nullptr) {
    ++stats_.messages_rejected;
    ReleasePayload(msg.payload);
    return Status::InvalidArgument(
        "unknown sender: " +
        (from < names_.size() ? names_[from] : "(uninterned id)"));
  }
  if (!endpoints_[from]->IsUp()) {
    ++stats_.messages_rejected;
    ReleasePayload(msg.payload);
    return Status::FailedPrecondition("sender is down: " + names_[from]);
  }
  if (to >= endpoints_.size() || endpoints_[to] == nullptr) {
    ++stats_.messages_rejected;
    ReleasePayload(msg.payload);
    return Status::InvalidArgument(
        "unknown destination: " +
        (to < names_.size() ? names_[to] : "(uninterned id)"));
  }

  // Accepted: count the flow and its encoded bytes exactly once, here. The
  // payload buffer is pooled and reused, so byte accounting must never
  // depend on buffer identity or lifetime.
  ++stats_.messages_sent;
  stats_.bytes_sent += PayloadView(msg.payload).size();
  ++sent_by_[from];

  if (tracing_) {
    ctx_->trace().Add({ctx_->now(), sim::TraceKind::kSend, names_[from],
                       names_[to], msg.txn, std::string(msg.TagView())});
  }

  const size_t link = LinkIndex(from, to);
  if (down_[link] != 0) {
    ++stats_.messages_dropped;
    ReleasePayload(msg.payload);
    return Status::OK();  // silent loss, like a real partition
  }
  // Seeded probabilistic loss. A lost message never went on the wire as far
  // as the receiver is concerned, so the FIFO floor stays where it was.
  const double loss = loss_[link];
  if (loss > 0.0 && ctx_->rng().Bernoulli(loss)) {
    ++stats_.messages_dropped;
    ReleasePayload(msg.payload);
    return Status::OK();
  }

  const sim::Time link_latency = latency_[link];
  sim::Time deliver_at =
      ctx_->now() +
      (link_latency == kDefaultLatency ? default_latency_ : link_latency);
  if (deliver_at < delivery_floor_[link])
    deliver_at = delivery_floor_[link];  // preserve per-session FIFO order
  delivery_floor_[link] = deliver_at;

  // Park the message and capture only (this, index, ids): 16 bytes, which
  // the event queue stores inline — no allocation on the send path.
  const uint32_t idx = AcquireSlab(std::move(msg));
  ctx_->events().ScheduleAt(deliver_at,
                            [this, idx, from, to] { Deliver(idx, from, to); });
  return Status::OK();
}

Status Network::SendLegacy(LegacyMessage msg) {
  Message out;
  // By-name resolution costs the hash probes the seed path paid per send;
  // unknown names map to kNoId and fail Send's validation as before.
  out.from = Find(msg.from);
  out.to = Find(msg.to);
  out.kind = msg.kind;
  out.txn = msg.txn;
  if (!msg.trace_tag.empty()) out.trace_tag = msg.trace_tag;
  if (!msg.payload.empty()) {
    out.payload = AcquirePayload();
    PayloadBuffer(out.payload).assign(msg.payload);
  }
  return Send(std::move(out));
}

void Network::Deliver(uint32_t slab_index, uint32_t from, uint32_t to) {
  // Move the message out and recycle the slot first: the OnMessage upcall
  // may Send (and so re-acquire slab slots) reentrantly. The payload buffer
  // stays live until the upcall returns — reentrant sends acquire different
  // pool slots, and the deque keeps this buffer's address stable.
  Message msg = std::move(slab_[slab_index]);
  slab_free_.push_back(slab_index);

  Endpoint* endpoint = endpoints_[to];
  if (endpoint == nullptr || !endpoint->IsUp() ||
      down_[LinkIndex(from, to)] != 0) {
    ++stats_.messages_dropped;
    ReleasePayload(msg.payload);
    return;
  }
  ++stats_.messages_delivered;
  stats_.bytes_delivered += PayloadView(msg.payload).size();
  if (tracing_) {
    ctx_->trace().Add({ctx_->now(), sim::TraceKind::kReceive, names_[to],
                       names_[from], msg.txn, std::string(msg.TagView())});
  }
  endpoint->OnMessage(msg);
  ReleasePayload(msg.payload);
}

uint64_t Network::SentBy(const NodeId& node) const {
  const uint32_t id = Find(node);
  return id == kNoNode ? 0 : sent_by_[id];
}

}  // namespace tpc::net
