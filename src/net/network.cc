#include "net/network.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace tpc::net {

uint32_t Network::Intern(const NodeId& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(names_.size());
  ids_.emplace(name, id);
  names_.push_back(name);
  endpoints_.push_back(nullptr);
  sent_by_.push_back(0);
  return id;
}

uint32_t Network::Find(const NodeId& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? kNoNode : it->second;
}

void Network::Register(const NodeId& id, Endpoint* endpoint) {
  TPC_CHECK(endpoint != nullptr);
  const uint32_t node = Intern(id);
  TPC_CHECK(endpoints_[node] == nullptr);  // names must be unique
  endpoints_[node] = endpoint;
}

void Network::SetLinkLatency(const NodeId& a, const NodeId& b,
                             sim::Time latency) {
  const uint32_t ia = Intern(a), ib = Intern(b);
  // Sequential GetOrCreate calls: the second may rehash, so never hold the
  // first reference across it.
  links_.GetOrCreate(PairKey(ia, ib)).latency = latency;
  links_.GetOrCreate(PairKey(ib, ia)).latency = latency;
}

void Network::SetLinkDown(const NodeId& a, const NodeId& b, bool down) {
  const uint32_t ia = Intern(a), ib = Intern(b);
  links_.GetOrCreate(PairKey(ia, ib)).down = down;
  links_.GetOrCreate(PairKey(ib, ia)).down = down;
}

bool Network::IsLinkDown(const NodeId& a, const NodeId& b) const {
  const uint32_t ia = Find(a), ib = Find(b);
  if (ia == kNoNode || ib == kNoNode) return false;
  const LinkState* link = links_.Find(PairKey(ia, ib));
  return link != nullptr && link->down;
}

void Network::SetLinkLossRate(const NodeId& a, const NodeId& b, double p) {
  TPC_CHECK(p >= 0.0 && p <= 1.0);
  const uint32_t ia = Intern(a), ib = Intern(b);
  links_.GetOrCreate(PairKey(ia, ib)).loss = p;
  links_.GetOrCreate(PairKey(ib, ia)).loss = p;
}

double Network::LinkLossRate(const NodeId& a, const NodeId& b) const {
  const uint32_t ia = Find(a), ib = Find(b);
  if (ia == kNoNode || ib == kNoNode) return 0.0;
  const LinkState* link = links_.Find(PairKey(ia, ib));
  return link == nullptr ? 0.0 : link->loss;
}

sim::Time Network::LatencyBetween(const NodeId& a, const NodeId& b) const {
  const uint32_t ia = Find(a), ib = Find(b);
  if (ia == kNoNode || ib == kNoNode) return default_latency_;
  const LinkState* link = links_.Find(PairKey(ia, ib));
  if (link == nullptr || link->latency == kDefaultLatency)
    return default_latency_;
  return link->latency;
}

PayloadRef Network::AcquirePayload() {
  if (!payload_free_.empty()) {
    const uint32_t idx = payload_free_.back();
    payload_free_.pop_back();
    payload_pool_[idx].clear();  // capacity survives, bytes do not
    return PayloadRef{idx};
  }
  payload_pool_.emplace_back();
  return PayloadRef{static_cast<uint32_t>(payload_pool_.size() - 1)};
}

void Network::ReleasePayload(PayloadRef ref) {
  if (ref.valid()) payload_free_.push_back(ref.index);
}

uint32_t Network::AcquireSlab(Message&& msg) {
  if (!slab_free_.empty()) {
    const uint32_t idx = slab_free_.back();
    slab_free_.pop_back();
    slab_[idx] = std::move(msg);
    return idx;
  }
  slab_.push_back(std::move(msg));
  return static_cast<uint32_t>(slab_.size() - 1);
}

Status Network::Send(Message msg) {
  const uint32_t from = msg.from;
  const uint32_t to = msg.to;
  if (from >= endpoints_.size() || endpoints_[from] == nullptr) {
    ++stats_.messages_rejected;
    ReleasePayload(msg.payload);
    return Status::InvalidArgument(
        "unknown sender: " +
        (from < names_.size() ? names_[from] : "(uninterned id)"));
  }
  if (!endpoints_[from]->IsUp()) {
    ++stats_.messages_rejected;
    ReleasePayload(msg.payload);
    return Status::FailedPrecondition("sender is down: " + names_[from]);
  }
  if (to >= endpoints_.size() || endpoints_[to] == nullptr) {
    ++stats_.messages_rejected;
    ReleasePayload(msg.payload);
    return Status::InvalidArgument(
        "unknown destination: " +
        (to < names_.size() ? names_[to] : "(uninterned id)"));
  }

  // Accepted: count the flow and its encoded bytes exactly once, here. The
  // payload buffer is pooled and reused, so byte accounting must never
  // depend on buffer identity or lifetime.
  ++stats_.messages_sent;
  stats_.bytes_sent += PayloadView(msg.payload).size();
  ++sent_by_[from];

  if (tracing_) {
    ctx_->trace().Add({ctx_->now(), sim::TraceKind::kSend, names_[from],
                       names_[to], msg.txn, std::string(msg.TagView())});
  }

  // One probe fetches everything the send path needs: down flag, loss rate,
  // latency override, and the mutable FIFO floor.
  LinkState& link = links_.GetOrCreate(PairKey(from, to));
  if (link.down) {
    ++stats_.messages_dropped;
    ReleasePayload(msg.payload);
    return Status::OK();  // silent loss, like a real partition
  }
  // Seeded probabilistic loss. A lost message never went on the wire as far
  // as the receiver is concerned, so the FIFO floor stays where it was.
  if (link.loss > 0.0 && ctx_->rng().Bernoulli(link.loss)) {
    ++stats_.messages_dropped;
    ReleasePayload(msg.payload);
    return Status::OK();
  }

  sim::Time deliver_at =
      ctx_->now() +
      (link.latency == kDefaultLatency ? default_latency_ : link.latency);
  if (deliver_at < link.floor)
    deliver_at = link.floor;  // preserve per-session FIFO order
  link.floor = deliver_at;

  // Park the message and capture only (this, index, ids): 16 bytes, which
  // the event queue stores inline — no allocation on the send path.
  const uint32_t idx = AcquireSlab(std::move(msg));
  ctx_->events().ScheduleAt(deliver_at,
                            [this, idx, from, to] { Deliver(idx, from, to); });
  return Status::OK();
}

Status Network::SendLegacy(LegacyMessage msg) {
  Message out;
  // By-name resolution costs the hash probes the seed path paid per send;
  // unknown names map to kNoId and fail Send's validation as before.
  out.from = Find(msg.from);
  out.to = Find(msg.to);
  out.kind = msg.kind;
  out.txn = msg.txn;
  if (!msg.trace_tag.empty()) out.trace_tag = msg.trace_tag;
  if (!msg.payload.empty()) {
    out.payload = AcquirePayload();
    PayloadBuffer(out.payload).assign(msg.payload);
  }
  return Send(std::move(out));
}

void Network::Deliver(uint32_t slab_index, uint32_t from, uint32_t to) {
  // Move the message out and recycle the slot first: the OnMessage upcall
  // may Send (and so re-acquire slab slots) reentrantly. The payload buffer
  // stays live until the upcall returns — reentrant sends acquire different
  // pool slots, and the deque keeps this buffer's address stable.
  Message msg = std::move(slab_[slab_index]);
  slab_free_.push_back(slab_index);

  const LinkState* link = links_.Find(PairKey(from, to));
  Endpoint* endpoint = endpoints_[to];
  if (endpoint == nullptr || !endpoint->IsUp() ||
      (link != nullptr && link->down)) {
    ++stats_.messages_dropped;
    ReleasePayload(msg.payload);
    return;
  }
  ++stats_.messages_delivered;
  stats_.bytes_delivered += PayloadView(msg.payload).size();
  if (tracing_) {
    ctx_->trace().Add({ctx_->now(), sim::TraceKind::kReceive, names_[to],
                       names_[from], msg.txn, std::string(msg.TagView())});
  }
  endpoint->OnMessage(msg);
  ReleasePayload(msg.payload);
}

uint64_t Network::SentBy(const NodeId& node) const {
  const uint32_t id = Find(node);
  return id == kNoNode ? 0 : sent_by_[id];
}

uint64_t Network::ApproxBytes() const {
  uint64_t bytes = links_.ApproxBytes();
  bytes += names_.capacity() * sizeof(std::string);
  for (const auto& n : names_) bytes += n.capacity();
  // ids_ is an unordered_map; approximate a node per entry.
  bytes += ids_.size() * (sizeof(std::string) + 2 * sizeof(void*) + 16);
  bytes += endpoints_.capacity() * sizeof(Endpoint*);
  bytes += sent_by_.capacity() * sizeof(uint64_t);
  for (const auto& p : payload_pool_) bytes += sizeof(std::string) + p.capacity();
  bytes += payload_free_.capacity() * sizeof(uint32_t);
  bytes += slab_.capacity() * sizeof(Message);
  bytes += slab_free_.capacity() * sizeof(uint32_t);
  return bytes;
}

}  // namespace tpc::net
