#include "net/network.h"

#include "util/logging.h"

namespace tpc::net {

void Network::Register(const NodeId& id, Endpoint* endpoint) {
  TPC_CHECK(endpoint != nullptr);
  auto [it, inserted] = endpoints_.emplace(id, endpoint);
  (void)it;
  TPC_CHECK(inserted);
}

void Network::SetLinkLatency(const NodeId& a, const NodeId& b,
                             sim::Time latency) {
  link_latency_[LinkKey(a, b)] = latency;
}

void Network::SetLinkDown(const NodeId& a, const NodeId& b, bool down) {
  link_down_[LinkKey(a, b)] = down;
}

bool Network::IsLinkDown(const NodeId& a, const NodeId& b) const {
  auto it = link_down_.find(LinkKey(a, b));
  return it != link_down_.end() && it->second;
}

sim::Time Network::LatencyBetween(const NodeId& a, const NodeId& b) const {
  auto it = link_latency_.find(LinkKey(a, b));
  return it != link_latency_.end() ? it->second : default_latency_;
}

Status Network::Send(Message msg) {
  auto from_it = endpoints_.find(msg.from);
  if (from_it == endpoints_.end())
    return Status::InvalidArgument("unknown sender: " + msg.from);
  if (!from_it->second->IsUp())
    return Status::FailedPrecondition("sender is down: " + msg.from);
  if (endpoints_.find(msg.to) == endpoints_.end())
    return Status::InvalidArgument("unknown destination: " + msg.to);

  ++stats_.messages_sent;
  stats_.bytes_sent += msg.payload.size();
  ++sent_by_[msg.from];

  if (tracing_) {
    ctx_->trace().Add({ctx_->now(), sim::TraceKind::kSend, msg.from, msg.to,
                       msg.txn, msg.type});
  }

  if (IsLinkDown(msg.from, msg.to)) {
    ++stats_.messages_dropped;
    return Status::OK();  // silent loss, like a real partition
  }

  const std::string pair = msg.from + ">" + msg.to;
  sim::Time deliver_at = ctx_->now() + LatencyBetween(msg.from, msg.to);
  auto floor_it = next_delivery_floor_.find(pair);
  if (floor_it != next_delivery_floor_.end() && deliver_at < floor_it->second)
    deliver_at = floor_it->second;  // preserve per-session FIFO order
  next_delivery_floor_[pair] = deliver_at;

  ctx_->events().ScheduleAt(deliver_at, [this, msg = std::move(msg)] {
    auto it = endpoints_.find(msg.to);
    if (it == endpoints_.end() || !it->second->IsUp() ||
        IsLinkDown(msg.from, msg.to)) {
      ++stats_.messages_dropped;
      return;
    }
    ++stats_.messages_delivered;
    if (tracing_) {
      ctx_->trace().Add({ctx_->now(), sim::TraceKind::kReceive, msg.to,
                         msg.from, msg.txn, msg.type});
    }
    it->second->OnMessage(msg);
  });
  return Status::OK();
}

uint64_t Network::SentBy(const NodeId& node) const {
  auto it = sent_by_.find(node);
  return it == sent_by_.end() ? 0 : it->second;
}

}  // namespace tpc::net
