#include "net/network.h"

#include <algorithm>

#include "util/logging.h"

namespace tpc::net {

uint32_t Network::Intern(const NodeId& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(names_.size());
  ids_.emplace(name, id);
  names_.push_back(name);
  endpoints_.push_back(nullptr);
  sent_by_.push_back(0);
  if (names_.size() > cap_) GrowTables(static_cast<uint32_t>(names_.size()));
  return id;
}

uint32_t Network::Find(const NodeId& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? kNoNode : it->second;
}

void Network::GrowTables(uint32_t min_nodes) {
  uint32_t new_cap = cap_ == 0 ? 8 : cap_;
  while (new_cap < min_nodes) new_cap *= 2;
  if (new_cap == cap_) return;
  std::vector<sim::Time> latency(size_t{new_cap} * new_cap, kDefaultLatency);
  std::vector<unsigned char> down(size_t{new_cap} * new_cap, 0);
  std::vector<sim::Time> floor(size_t{new_cap} * new_cap, 0);
  for (uint32_t a = 0; a < cap_; ++a) {
    for (uint32_t b = 0; b < cap_; ++b) {
      latency[size_t{a} * new_cap + b] = latency_[LinkIndex(a, b)];
      down[size_t{a} * new_cap + b] = down_[LinkIndex(a, b)];
      floor[size_t{a} * new_cap + b] = delivery_floor_[LinkIndex(a, b)];
    }
  }
  latency_ = std::move(latency);
  down_ = std::move(down);
  delivery_floor_ = std::move(floor);
  cap_ = new_cap;
}

void Network::Register(const NodeId& id, Endpoint* endpoint) {
  TPC_CHECK(endpoint != nullptr);
  const uint32_t node = Intern(id);
  TPC_CHECK(endpoints_[node] == nullptr);  // names must be unique
  endpoints_[node] = endpoint;
}

void Network::SetLinkLatency(const NodeId& a, const NodeId& b,
                             sim::Time latency) {
  const uint32_t ia = Intern(a), ib = Intern(b);
  latency_[LinkIndex(ia, ib)] = latency;
  latency_[LinkIndex(ib, ia)] = latency;
}

void Network::SetLinkDown(const NodeId& a, const NodeId& b, bool down) {
  const uint32_t ia = Intern(a), ib = Intern(b);
  down_[LinkIndex(ia, ib)] = down ? 1 : 0;
  down_[LinkIndex(ib, ia)] = down ? 1 : 0;
}

bool Network::IsLinkDown(const NodeId& a, const NodeId& b) const {
  const uint32_t ia = Find(a), ib = Find(b);
  if (ia == kNoNode || ib == kNoNode) return false;
  return down_[LinkIndex(ia, ib)] != 0;
}

sim::Time Network::LatencyBetween(const NodeId& a, const NodeId& b) const {
  const uint32_t ia = Find(a), ib = Find(b);
  if (ia == kNoNode || ib == kNoNode) return default_latency_;
  const sim::Time t = latency_[LinkIndex(ia, ib)];
  return t == kDefaultLatency ? default_latency_ : t;
}

uint32_t Network::AcquireSlab(Message&& msg) {
  if (!slab_free_.empty()) {
    const uint32_t idx = slab_free_.back();
    slab_free_.pop_back();
    slab_[idx] = std::move(msg);
    return idx;
  }
  slab_.push_back(std::move(msg));
  return static_cast<uint32_t>(slab_.size() - 1);
}

Status Network::Send(Message msg) {
  const uint32_t from = Find(msg.from);
  if (from == kNoNode || endpoints_[from] == nullptr) {
    ++stats_.messages_rejected;
    return Status::InvalidArgument("unknown sender: " + msg.from);
  }
  if (!endpoints_[from]->IsUp()) {
    ++stats_.messages_rejected;
    return Status::FailedPrecondition("sender is down: " + msg.from);
  }
  const uint32_t to = Find(msg.to);
  if (to == kNoNode || endpoints_[to] == nullptr) {
    ++stats_.messages_rejected;
    return Status::InvalidArgument("unknown destination: " + msg.to);
  }

  ++stats_.messages_sent;
  stats_.bytes_sent += msg.payload.size();
  ++sent_by_[from];

  if (tracing_) {
    ctx_->trace().Add({ctx_->now(), sim::TraceKind::kSend, msg.from, msg.to,
                       msg.txn, std::string(msg.TraceTag())});
  }

  const size_t link = LinkIndex(from, to);
  if (down_[link] != 0) {
    ++stats_.messages_dropped;
    return Status::OK();  // silent loss, like a real partition
  }

  const sim::Time link_latency = latency_[link];
  sim::Time deliver_at =
      ctx_->now() +
      (link_latency == kDefaultLatency ? default_latency_ : link_latency);
  if (deliver_at < delivery_floor_[link])
    deliver_at = delivery_floor_[link];  // preserve per-session FIFO order
  delivery_floor_[link] = deliver_at;

  // Park the message and capture only (this, index, ids): 16 bytes, which
  // the event queue stores inline — no allocation on the send path.
  const uint32_t idx = AcquireSlab(std::move(msg));
  ctx_->events().ScheduleAt(deliver_at,
                            [this, idx, from, to] { Deliver(idx, from, to); });
  return Status::OK();
}

void Network::Deliver(uint32_t slab_index, uint32_t from, uint32_t to) {
  // Move the message out and recycle the slot first: the OnMessage upcall
  // may Send (and so re-acquire slab slots) reentrantly.
  Message msg = std::move(slab_[slab_index]);
  slab_free_.push_back(slab_index);

  Endpoint* endpoint = endpoints_[to];
  if (endpoint == nullptr || !endpoint->IsUp() ||
      down_[LinkIndex(from, to)] != 0) {
    ++stats_.messages_dropped;
    return;
  }
  ++stats_.messages_delivered;
  if (tracing_) {
    ctx_->trace().Add({ctx_->now(), sim::TraceKind::kReceive, msg.to, msg.from,
                       msg.txn, std::string(msg.TraceTag())});
  }
  endpoint->OnMessage(msg);
}

uint64_t Network::SentBy(const NodeId& node) const {
  const uint32_t id = Find(node);
  return id == kNoNode ? 0 : sent_by_[id];
}

}  // namespace tpc::net
