// Log manager: append-only WAL with forced / non-forced writes and group
// commit.
//
// Semantics (matching Section 2 of the paper):
//  * A non-forced append returns immediately; the record sits in the log
//    buffer and reaches stable storage when the next force (or any later
//    device flush) covers it. It is lost if the node crashes first.
//  * A forced append suspends the caller (its continuation runs only once
//    the record is durable).
//  * Group commit (Section 4) delays the physical force until either
//    `group_size` force requests have accumulated or `group_timeout`
//    expires, amortizing one device write across many transactions.
//
// Several components (the node's TM and any LRMs using the shared-log
// optimization) may append to one LogManager under distinct owner tags.

#ifndef TPC_WAL_LOG_MANAGER_H_
#define TPC_WAL_LOG_MANAGER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/sim_context.h"
#include "util/flat_map.h"
#include "util/interner.h"
#include "wal/log_record.h"
#include "wal/stable_storage.h"

namespace tpc::wal {

/// Group-commit tuning.
struct GroupCommitOptions {
  bool enabled = false;
  /// Physical force fires once this many force requests are pending.
  uint32_t group_size = 8;
  /// ... or once this much time has passed since the first pending request.
  sim::Time group_timeout = 5 * sim::kMillisecond;
};

/// Logical write counters (what the paper's tables count).
struct LogWriteStats {
  uint64_t writes = 0;         ///< total log records appended
  uint64_t forced_writes = 0;  ///< appended with force semantics
};

/// Per-node write-ahead log.
class LogManager {
 public:
  using AppendCallback = std::function<void()>;

  /// `node` names the owning node in traces. `force_latency` is the log
  /// device service time per physical write.
  LogManager(sim::SimContext* ctx, std::string node,
             sim::Time force_latency = 2 * sim::kMillisecond);

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  void set_group_commit(const GroupCommitOptions& opts) { group_ = opts; }
  const GroupCommitOptions& group_commit() const { return group_; }

  /// Appends a record. If `force`, `done` runs when the record is durable;
  /// otherwise `done` runs immediately (before returning). `done` may be
  /// null. Returns the record's LSN.
  Lsn Append(const LogRecord& record, bool force, AppendCallback done = nullptr);

  /// Forces everything currently buffered (used by checkpoints and by tests).
  void ForceAll(AppendCallback done);

  /// Crash: buffered records and pending force callbacks are lost; stable
  /// storage keeps completed writes only.
  void Crash();

  /// Checkpoint-driven truncation: discards all durable log content before
  /// `lsn`. The caller is responsible for ensuring nothing before `lsn` is
  /// still needed for recovery (see Node::Checkpoint).
  void DiscardPrefix(Lsn lsn);

  /// Recovery scan of durable content.
  std::vector<LogRecord> Recover() const { return ScanLog(storage_.durable()); }

  /// First LSN not yet guaranteed durable.
  Lsn durable_lsn() const { return storage_.durable_bytes(); }
  Lsn next_lsn() const { return next_lsn_; }

  const LogWriteStats& stats() const { return stats_; }
  /// Logical writes attributed to one transaction (0 entries prune to {}).
  LogWriteStats StatsForTxn(uint64_t txn) const;
  /// Logical writes attributed to one owner tag.
  LogWriteStats StatsForOwner(const std::string& owner) const;
  /// Physical device writes completed (group commit reduces this).
  uint64_t device_forces() const { return storage_.completed_writes(); }

  void ResetStats();

  StableStorage& storage() { return storage_; }

  /// Heap bytes held by the log's buffers and stats tables (cluster memory
  /// budget). Per-txn stats are sparse, so a node pays for the transactions
  /// it logged, not for the cluster-wide txn-id space.
  uint64_t ApproxBytes() const;

 private:
  void RequestForce(AppendCallback done);
  void Flush();
  LogWriteStats& TxnSlot(uint64_t txn);

  sim::SimContext* ctx_;
  std::string node_;
  StableStorage storage_;
  GroupCommitOptions group_;

  std::string buffer_;  // encoded records not yet handed to the device
  Lsn next_lsn_ = 0;
  std::vector<AppendCallback> pending_force_;
  uint32_t pending_force_requests_ = 0;
  sim::EventId group_timer_ = 0;
  bool group_timer_armed_ = false;
  uint64_t epoch_ = 0;

  LogWriteStats stats_;
  // Per-txn counters in a sparse open-addressed map (txn ids are global
  // across the cluster, so a dense by-id vector would cost every node
  // O(cluster-wide txn count)); per-owner counters in a flat vector indexed
  // by interned owner tag. The append hot path performs one integer hash
  // probe and no string hashing beyond the one owner-tag intern probe.
  FlatId64Map<LogWriteStats> txn_stats_;
  StringInterner owner_ids_;
  std::vector<LogWriteStats> owner_stats_;
};

}  // namespace tpc::wal

#endif  // TPC_WAL_LOG_MANAGER_H_
