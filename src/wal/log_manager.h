// Log manager: append-only WAL with forced / non-forced writes and a
// policy-composable group-commit pipeline.
//
// Semantics (matching Section 2 of the paper):
//  * A non-forced append returns immediately; the record sits in the log
//    buffer and reaches stable storage when the next force (or any later
//    device flush) covers it. It is lost if the node crashes first.
//  * A forced append suspends the caller (its continuation runs only once
//    the record is durable).
//  * Group commit (Section 4) delays the physical force until either
//    `group_size` force requests have accumulated or `group_timeout`
//    expires, amortizing one device write across many transactions.
//
// Beyond the paper's count+timer scheme, the flush path implements the
// modern policy ladder (after leanstore's commit protocols):
//  * kCountTimer       — the seed behavior, trace-frozen default.
//  * kFlushPipelining  — a force request submits immediately while fewer
//    than `max_pipeline_depth` flushes are in flight; beyond that requests
//    accumulate and the next device completion submits them as one batch.
//    Commit acks decouple from the fsync path; batching emerges under load.
//  * kWorkersWriteLog  — appends land in per-owner log buffers (the TM and
//    each shared-log LRM own one); a flush daemon wakes on the count
//    trigger or a `daemon_interval` timer, gathers every owner buffer in
//    arrival order into one pooled flush buffer, and submits a single
//    device write.
//  * kWiloSteal        — workers-write-log plus: a worker whose buffer
//    exceeds `worker_buffer_bytes` steals the daemon's job, gathering and
//    submitting every peer's buffer without waiting for the wake.
//
// Whatever the policy, an ack never runs before its covering device write
// retires: every pending force records the log tail it must cover and the
// completion path checks durability against it (always-on oracle).
//
// Several components (the node's TM and any LRMs using the shared-log
// optimization) may append to one LogManager under distinct owner tags.

#ifndef TPC_WAL_LOG_MANAGER_H_
#define TPC_WAL_LOG_MANAGER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include <memory>

#include "runtime/runtime.h"
#include "sim/sim_context.h"
#include "util/flat_map.h"
#include "util/histogram.h"
#include "util/interner.h"
#include "wal/log_record.h"
#include "wal/stable_storage.h"
#include "wal/storage_backend.h"
#include "wal/wal_crash_points.h"

namespace tpc::wal {

/// How buffered records and force requests become device writes.
enum class FlushPolicy : uint8_t {
  kCountTimer = 0,
  kFlushPipelining,
  kWorkersWriteLog,
  kWiloSteal,
};

/// Stable label for bench cells and sweep configs.
const char* FlushPolicyName(FlushPolicy p);
/// Inverse of FlushPolicyName; returns false on an unknown label.
bool ParseFlushPolicy(std::string_view name, FlushPolicy* out);

/// Group-commit tuning.
struct GroupCommitOptions {
  bool enabled = false;
  /// Physical force fires once this many force requests are pending.
  uint32_t group_size = 8;
  /// ... or once this much time has passed since the first pending request.
  sim::Time group_timeout = 5 * sim::kMillisecond;

  FlushPolicy policy = FlushPolicy::kCountTimer;
  /// kFlushPipelining: flushes allowed in flight before requests accumulate.
  uint32_t max_pipeline_depth = 2;
  /// kWorkersWriteLog / kWiloSteal: daemon gather deadline after the first
  /// pending force request (the policy ladder's analogue of group_timeout).
  sim::Time daemon_interval = 1 * sim::kMillisecond;
  /// kWiloSteal: an owner buffer larger than this triggers a steal flush.
  uint64_t worker_buffer_bytes = 4096;
};

/// Logical write counters (what the paper's tables count).
struct LogWriteStats {
  uint64_t writes = 0;         ///< total log records appended
  uint64_t forced_writes = 0;  ///< appended with force semantics
};

/// Per-node write-ahead log.
class LogManager {
 public:
  using AppendCallback = std::function<void()>;

  /// `node` names the owning node in traces. `force_latency` is the log
  /// device service time per physical write. Compatibility constructors for
  /// the sim path: own a simulated StableStorage device and a SimRuntime
  /// adapter over `ctx`, so pre-seam call sites compile unchanged.
  LogManager(sim::SimContext* ctx, std::string node,
             sim::Time force_latency = 2 * sim::kMillisecond);
  /// Full device model (latency + bandwidth + queue depth).
  LogManager(sim::SimContext* ctx, std::string node,
             const DeviceOptions& device);
  /// Backend-explicit constructor. `rt` supplies the clock and group-commit
  /// timers; `ctx` supplies the trace and failure injector; `storage` is the
  /// durability backend (not owned — a live node passes its FileStorage).
  LogManager(runtime::Runtime* rt, sim::SimContext* ctx, std::string node,
             StorageBackend* storage);

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  void set_group_commit(const GroupCommitOptions& opts) { group_ = opts; }
  const GroupCommitOptions& group_commit() const { return group_; }

  /// Appends a record. If `force`, `done` runs when the record is durable;
  /// otherwise `done` runs immediately (before returning). `done` may be
  /// null. Returns the record's LSN.
  Lsn Append(const LogRecord& record, bool force, AppendCallback done = nullptr);

  /// Forces everything currently buffered (used by checkpoints and by tests).
  void ForceAll(AppendCallback done);

  /// Crash: buffered records and pending force callbacks are lost; stable
  /// storage keeps completed writes only.
  void Crash();

  /// Checkpoint-driven truncation: discards all durable log content before
  /// `lsn`. The caller is responsible for ensuring nothing before `lsn` is
  /// still needed for recovery (see Node::Checkpoint).
  void DiscardPrefix(Lsn lsn);

  /// Recovery scan of durable content.
  std::vector<LogRecord> Recover() const { return ScanLog(storage_->durable()); }

  /// First LSN not yet guaranteed durable.
  Lsn durable_lsn() const { return storage_->durable_bytes(); }
  Lsn next_lsn() const { return next_lsn_; }

  const LogWriteStats& stats() const { return stats_; }
  /// Logical writes attributed to one transaction (0 entries prune to {}).
  LogWriteStats StatsForTxn(uint64_t txn) const;
  /// Logical writes attributed to one owner tag.
  LogWriteStats StatsForOwner(const std::string& owner) const;
  /// Physical device writes completed (group commit reduces this).
  uint64_t device_forces() const { return storage_->completed_writes(); }
  /// WILO steal flushes submitted.
  uint64_t steals() const { return steals_; }

  void ResetStats();

  /// Opt-in force-latency collection (request → ack, simulated time). Off by
  /// default: the histogram retains every sample, which would violate the
  /// allocation-free flush path and the cluster memory budgets.
  void set_collect_force_latency(bool on) { collect_force_latency_ = on; }
  const Histogram& force_latency() const { return force_latency_; }

  StorageBackend& storage() { return *storage_; }

  /// Heap bytes held by the log's buffers (including per-owner buffers and
  /// the recycled flush-buffer pool) and stats tables (cluster memory
  /// budget). Per-txn stats are sparse, so a node pays for the transactions
  /// it logged, not for the cluster-wide txn-id space.
  uint64_t ApproxBytes() const;

 private:
  /// A suspended forced append: `done` may run only once the log is durable
  /// through `cover`.
  struct PendingForce {
    AppendCallback done;
    Lsn cover;
    sim::Time requested;
  };
  /// One run of consecutive appends by the same owner (workers-write-log
  /// arrival-order bookkeeping; gather concatenates segments in order so the
  /// physical log layout equals the logical LSN order).
  struct Segment {
    uint32_t owner;
    uint32_t bytes;
  };

  void Init();  ///< shared constructor body
  void RequestForce(AppendCallback done);
  /// Count+timer / pipelining: submits the central buffer and the pending
  /// force callbacks as one device write.
  void Flush();
  /// Hands `bytes` plus every pending force callback to the device.
  void SubmitWrite(std::string bytes);
  /// Runs acks for a retired write (covering-LSN check per callback).
  void AckForces(std::vector<PendingForce>& cbs, uint64_t epoch);
  /// Device completion hook: pipelining submits the accumulated batch here.
  void OnFlushSlotFree();

  // --- workers-write-log / WILO machinery -----------------------------------
  bool UsesOwnerBuffers() const {
    return group_.enabled && (group_.policy == FlushPolicy::kWorkersWriteLog ||
                              group_.policy == FlushPolicy::kWiloSteal);
  }
  void ArmDaemonTimer();
  /// Schedules the zero-delay daemon wake (count trigger or WILO steal).
  void ScheduleWake(bool steal);
  /// Drains every owner buffer (arrival order) and submits one device write.
  void DaemonGatherAndSubmit(bool steal);
  void GatherOwnerBuffers(std::string& out);

  // --- pooled buffers (allocation-free steady-state flush) ------------------
  std::string TakeSpareBuffer();
  void RecycleBuffer(std::string&& s);
  std::vector<PendingForce> TakeSpareCbVec();
  void RecycleCbVec(std::vector<PendingForce>&& v);

  /// Fires a WAL crash point; true means this node just crashed and the
  /// caller must unwind without touching member state.
  bool CrashHere(WalCrashPt p) {
    return ctx_->failures().CrashPoint(fi_node_, wal_points_[static_cast<size_t>(p)]);
  }

  LogWriteStats& TxnSlot(uint64_t txn);

  std::unique_ptr<runtime::Runtime> owned_rt_;    ///< compat-ctor SimRuntime
  std::unique_ptr<StorageBackend> owned_storage_; ///< compat-ctor device
  runtime::Runtime* rt_;
  sim::SimContext* ctx_;  ///< trace + failure injector only
  std::string node_;
  StorageBackend* storage_;
  GroupCommitOptions group_;

  std::string buffer_;  // encoded records not yet handed to the device
  Lsn next_lsn_ = 0;
  std::vector<PendingForce> pending_force_;
  uint32_t pending_force_requests_ = 0;
  sim::EventId group_timer_ = 0;
  bool group_timer_armed_ = false;
  sim::EventId daemon_timer_ = 0;
  bool daemon_timer_armed_ = false;
  sim::EventId wake_event_ = 0;
  bool wake_armed_ = false;
  bool wake_is_steal_ = false;
  uint32_t flushes_in_flight_ = 0;
  uint64_t epoch_ = 0;
  uint64_t steals_ = 0;

  // Per-owner log buffers (workers-write-log): indexed by interned owner
  // tag, with arrival-order segments recording how gather must interleave
  // them so LSNs stay exact byte offsets.
  std::vector<std::string> owner_bufs_;
  std::vector<size_t> owner_read_;  // per-owner gather cursor (transient)
  std::vector<Segment> segments_;

  // Recycled capacity: flush buffers come back from the device once their
  // payload is durable; callback vectors come back after their acks run.
  std::vector<std::string> spare_buffers_;
  std::vector<std::vector<PendingForce>> spare_cb_vecs_;

  bool collect_force_latency_ = false;
  Histogram force_latency_;

  uint32_t fi_node_ = 0;
  uint32_t wal_points_[kWalCrashPointCount] = {};

  LogWriteStats stats_;
  // Per-txn counters in a sparse open-addressed map (txn ids are global
  // across the cluster, so a dense by-id vector would cost every node
  // O(cluster-wide txn count)); per-owner counters in a flat vector indexed
  // by interned owner tag. The append hot path performs one integer hash
  // probe and no string hashing beyond the one owner-tag intern probe.
  FlatId64Map<LogWriteStats> txn_stats_;
  StringInterner owner_ids_;
  std::vector<LogWriteStats> owner_stats_;
};

}  // namespace tpc::wal

#endif  // TPC_WAL_LOG_MANAGER_H_
