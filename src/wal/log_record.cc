#include "wal/log_record.h"

#include <cstring>

#include "util/binary_io.h"
#include "util/crc32c.h"

namespace tpc::wal {

std::string_view RecordTypeToString(RecordType type) {
  switch (type) {
    case RecordType::kTmJoin: return "tm.join";
    case RecordType::kTmCommitPending: return "tm.commit-pending";
    case RecordType::kTmPrepared: return "tm.prepared";
    case RecordType::kTmCommitted: return "tm.committed";
    case RecordType::kTmAborted: return "tm.aborted";
    case RecordType::kTmEnd: return "tm.end";
    case RecordType::kTmHeuristic: return "tm.heuristic";
    case RecordType::kTmAccept: return "tm.accept";
    case RecordType::kRmUpdate: return "rm.update";
    case RecordType::kRmPrepared: return "rm.prepared";
    case RecordType::kRmCommitted: return "rm.committed";
    case RecordType::kRmAborted: return "rm.aborted";
    case RecordType::kCheckpoint: return "checkpoint";
  }
  return "unknown";
}

bool IsTmRecord(RecordType type) {
  return static_cast<uint8_t>(type) < static_cast<uint8_t>(RecordType::kRmUpdate);
}

void LogRecord::EncodeTo(std::string& out) const {
  // Size the whole record up front so the buffer grows (and checks
  // capacity) exactly once, then write every field through raw pointers.
  const size_t header = out.size();
  const uint32_t len =
      static_cast<uint32_t>(1 + VarintLength(txn) + VarintLength(owner.size()) +
                            owner.size() + VarintLength(body.size()) +
                            body.size());
  out.resize(header + 8 + len);
  char* base = out.data() + header;
  char* p = base + 8;  // crc + len, patched once the body is in place
  *p++ = static_cast<char>(type);
  p += PutVarintTo(p, txn);
  p += PutVarintTo(p, owner.size());
  std::memcpy(p, owner.data(), owner.size());
  p += owner.size();
  p += PutVarintTo(p, body.size());
  std::memcpy(p, body.data(), body.size());
  PutU32To(base, crc32c::Mask(crc32c::Value(base + 8, len)));
  PutU32To(base + 4, len);
}

std::string LogRecord::Encode() const {
  std::string out;
  EncodeTo(out);
  return out;
}

Result<LogRecord> DecodeRecord(std::string_view data, size_t* offset) {
  size_t pos = *offset;
  if (pos > data.size() || data.size() - pos < 8)
    return Status::Corruption("truncated header");
  Decoder hdr(data.substr(pos, 8));
  uint32_t masked_crc = 0, len = 0;
  TPC_RETURN_IF_ERROR(hdr.GetU32(&masked_crc));
  TPC_RETURN_IF_ERROR(hdr.GetU32(&len));
  if (data.size() - pos - 8 < len) return Status::Corruption("truncated body");
  std::string_view inner = data.substr(pos + 8, len);
  if (crc32c::Unmask(masked_crc) != crc32c::Value(inner))
    return Status::Corruption("crc mismatch");

  Decoder dec(inner);
  LogRecord rec;
  uint8_t type = 0;
  TPC_RETURN_IF_ERROR(dec.GetU8(&type));
  rec.type = static_cast<RecordType>(type);
  uint64_t txn = 0;
  TPC_RETURN_IF_ERROR(dec.GetVarint(&txn));
  rec.txn = txn;
  TPC_RETURN_IF_ERROR(dec.GetString(&rec.owner));
  TPC_RETURN_IF_ERROR(dec.GetString(&rec.body));
  *offset = pos + 8 + len;
  return rec;
}

std::vector<LogRecord> ScanLog(std::string_view data) {
  std::vector<LogRecord> out;
  size_t offset = 0;
  while (offset < data.size()) {
    auto rec = DecodeRecord(data, &offset);
    if (!rec.ok()) break;  // torn tail: stop at first bad record
    out.push_back(std::move(rec).value());
  }
  return out;
}

}  // namespace tpc::wal
