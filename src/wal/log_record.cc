#include "wal/log_record.h"

#include "util/binary_io.h"
#include "util/crc32c.h"

namespace tpc::wal {

std::string_view RecordTypeToString(RecordType type) {
  switch (type) {
    case RecordType::kTmJoin: return "tm.join";
    case RecordType::kTmCommitPending: return "tm.commit-pending";
    case RecordType::kTmPrepared: return "tm.prepared";
    case RecordType::kTmCommitted: return "tm.committed";
    case RecordType::kTmAborted: return "tm.aborted";
    case RecordType::kTmEnd: return "tm.end";
    case RecordType::kTmHeuristic: return "tm.heuristic";
    case RecordType::kRmUpdate: return "rm.update";
    case RecordType::kRmPrepared: return "rm.prepared";
    case RecordType::kRmCommitted: return "rm.committed";
    case RecordType::kRmAborted: return "rm.aborted";
    case RecordType::kCheckpoint: return "checkpoint";
  }
  return "unknown";
}

bool IsTmRecord(RecordType type) {
  return static_cast<uint8_t>(type) < static_cast<uint8_t>(RecordType::kRmUpdate);
}

std::string LogRecord::Encode() const {
  Encoder body_enc;
  body_enc.PutU8(static_cast<uint8_t>(type));
  body_enc.PutVarint(txn);
  body_enc.PutString(owner);
  body_enc.PutString(body);
  const std::string& inner = body_enc.buffer();

  Encoder out;
  out.PutU32(crc32c::Mask(crc32c::Value(inner)));
  out.PutU32(static_cast<uint32_t>(inner.size()));
  std::string buf = out.Release();
  buf += inner;
  return buf;
}

Result<LogRecord> DecodeRecord(std::string_view data, size_t* offset) {
  size_t pos = *offset;
  if (data.size() - pos < 8) return Status::Corruption("truncated header");
  Decoder hdr(data.substr(pos, 8));
  uint32_t masked_crc = 0, len = 0;
  TPC_RETURN_IF_ERROR(hdr.GetU32(&masked_crc));
  TPC_RETURN_IF_ERROR(hdr.GetU32(&len));
  if (data.size() - pos - 8 < len) return Status::Corruption("truncated body");
  std::string_view inner = data.substr(pos + 8, len);
  if (crc32c::Unmask(masked_crc) != crc32c::Value(inner))
    return Status::Corruption("crc mismatch");

  Decoder dec(inner);
  LogRecord rec;
  uint8_t type = 0;
  TPC_RETURN_IF_ERROR(dec.GetU8(&type));
  rec.type = static_cast<RecordType>(type);
  uint64_t txn = 0;
  TPC_RETURN_IF_ERROR(dec.GetVarint(&txn));
  rec.txn = txn;
  TPC_RETURN_IF_ERROR(dec.GetString(&rec.owner));
  TPC_RETURN_IF_ERROR(dec.GetString(&rec.body));
  *offset = pos + 8 + len;
  return rec;
}

std::vector<LogRecord> ScanLog(std::string_view data) {
  std::vector<LogRecord> out;
  size_t offset = 0;
  while (offset < data.size()) {
    auto rec = DecodeRecord(data, &offset);
    if (!rec.ok()) break;  // torn tail: stop at first bad record
    out.push_back(std::move(rec).value());
  }
  return out;
}

}  // namespace tpc::wal
