#include "wal/stable_storage.h"

#include <utility>

namespace tpc::wal {

void StableStorage::Write(std::string data, WriteCallback done) {
  queue_.push_back(Pending{std::move(data), std::move(done)});
  if (!busy_) StartNext();
}

void StableStorage::StartNext() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  const uint64_t epoch = epoch_;
  ctx_->events().ScheduleAfter(write_latency_, [this, epoch] {
    if (epoch != epoch_) return;  // crashed while in flight: write lost
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    durable_ += p.data;
    ++completed_writes_;
    if (p.done) p.done();
    StartNext();
  });
}

void StableStorage::Crash() {
  ++epoch_;
  queue_.clear();
  busy_ = false;
}

void StableStorage::Truncate(uint64_t bytes) {
  if (bytes > durable_.size()) bytes = durable_.size();
  durable_.erase(0, bytes);
  base_offset_ += bytes;
}

}  // namespace tpc::wal
