#include "wal/stable_storage.h"

#include <utility>

namespace tpc::wal {

void StableStorage::Grow() {
  const size_t cap = ring_.empty() ? 4 : ring_.size() * 2;
  std::vector<Pending> bigger(cap);
  for (size_t i = 0; i < ring_size_; ++i) bigger[i] = std::move(Slot(i));
  ring_ = std::move(bigger);
  ring_head_ = 0;
}

void StableStorage::Write(std::string data, WriteCallback done) {
  if (ring_size_ == ring_.size()) Grow();
  Pending& slot = Slot(ring_size_);
  slot.data = std::move(data);
  slot.done = std::move(done);
  slot.completed = false;
  ++ring_size_;
  ++next_write_id_;
  Dispatch();
}

void StableStorage::Dispatch() {
  while (dispatched_ < ring_size_ && in_service_ < device_.queue_depth) {
    const uint64_t id = front_id_ + dispatched_;
    const sim::Time service = device_.ServiceTime(Slot(dispatched_).data.size());
    ++dispatched_;
    ++in_service_;
    const uint64_t epoch = epoch_;
    ctx_->events().ScheduleAfter(service, [this, epoch, id] {
      if (epoch != epoch_) return;  // crashed while in flight: write lost
      // Service finished; the write retires once every earlier write has.
      Slot(id - front_id_).completed = true;
      RetireCompleted(epoch);
      if (epoch != epoch_) return;  // a retirement callback crashed the node
      // The device slot frees only after retirement work, so callbacks that
      // reentrantly Write() see the slot busy — matching the seed's ordering
      // of completion work before the next dispatch.
      --in_service_;
      Dispatch();
    });
  }
}

void StableStorage::RetireCompleted(uint64_t epoch) {
  while (ring_size_ > 0 && Slot(0).completed) {
    // Move the payload and callback out before touching ring state: `done`
    // may reentrantly Write() and grow the ring.
    Pending& front = Slot(0);
    std::string data = std::move(front.data);
    WriteCallback done = std::move(front.done);
    front.data.clear();
    front.completed = false;
    ring_head_ = (ring_head_ + 1) & (ring_.size() - 1);
    --ring_size_;
    ++front_id_;
    --dispatched_;
    durable_ += data;
    ++completed_writes_;
    bytes_written_ += data.size();
    if (recycler_) {
      data.clear();  // capacity survives; contents already folded in
      recycler_(std::move(data));
    }
    if (done) done();
    if (epoch != epoch_) return;  // callback crashed the node
  }
}

void StableStorage::Crash() {
  ++epoch_;
  for (size_t i = 0; i < ring_size_; ++i) {
    Pending& p = Slot(i);
    p.data.clear();
    p.done.reset();  // drop captured state; ring capacity survives the crash
    p.completed = false;
  }
  ring_head_ = 0;
  ring_size_ = 0;
  dispatched_ = 0;
  in_service_ = 0;
  front_id_ = next_write_id_;
}

void StableStorage::Truncate(uint64_t bytes) {
  if (bytes > durable_.size()) bytes = durable_.size();
  durable_.erase(0, bytes);
  base_offset_ += bytes;
}

}  // namespace tpc::wal
