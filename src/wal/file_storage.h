// FileStorage: the real-disk StorageBackend — an append-only file with
// fdatasync durability.
//
// Write() performs the pwrite + fdatasync *inline on the calling thread*
// (the owning node's worker). That is deliberate: a force parks the node's
// worker in the kernel, so a live cluster's throughput scales with worker
// threads by overlapping different nodes' fsyncs — the same I/O-overlap
// effect group commit exploits on one device — and a process kill leaves
// exactly the synced prefix on disk. Completion callbacks are never run
// re-entrantly from Write: they are handed to `post`, which enqueues them
// on the node's mailbox, preserving the sim backend's submit-now/ack-later
// shape that LogManager's flush policies are written against.
//
// An optional service-time floor (`floor_us`) pads each write to a minimum
// wall-clock duration. On a filesystem whose fsync is microseconds (tmpfs,
// battery-backed cache) the floor restores a realistic device cost, which
// the contended live_bench cells rely on.
//
// fdatasync over O_DIRECT: the write path appends variable-length records,
// so O_DIRECT's alignment contract would force a block-sized staging layer;
// fdatasync on an O_APPEND fd gives the same durability statement (data +
// size are on stable media when the call returns) without it.
//
// Single-threaded per instance: all calls must come from the owning node's
// serialized execution context. Reconstruction: a new FileStorage on an
// existing path reloads the file into the durable mirror, which is how the
// kill-and-recover test proves the bytes actually reached the file.
//
// Truncate() only trims the in-memory mirror and advances base_offset();
// the file keeps its full contents (a reopened instance sees base offset 0
// with the full log — an equivalent image, since truncation only ever
// discards records recovery no longer needs).

#ifndef TPC_WAL_FILE_STORAGE_H_
#define TPC_WAL_FILE_STORAGE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "wal/storage_backend.h"

namespace tpc::wal {

/// Namespace-scope (not nested) so it can be a defaulted constructor
/// argument — GCC rejects brace-defaulting a nested aggregate with member
/// initializers inside the enclosing class.
struct FileStorageOptions {
  /// fdatasync after every write (the durability point). Tests may turn
  /// it off to measure the sync cost itself; a real deployment never does.
  bool sync = true;
  /// Minimum wall-clock service time per write, microseconds (0 = none).
  int64_t floor_us = 0;
};

class FileStorage final : public StorageBackend {
 public:
  using FileOptions = FileStorageOptions;

  /// Defers a completion to the owning node's execution context.
  using PostFn = std::function<void(WriteCallback&&)>;

  /// Opens (creating if absent) the append-only file at `path` and loads
  /// any existing contents into the durable mirror.
  FileStorage(std::string path, PostFn post, FileOptions options = {});
  ~FileStorage() override;

  FileStorage(const FileStorage&) = delete;
  FileStorage& operator=(const FileStorage&) = delete;

  void Write(std::string data, WriteCallback done) override;
  void Crash() override;
  const std::string& durable() const override { return durable_; }
  void Truncate(uint64_t bytes) override;
  uint64_t base_offset() const override { return base_offset_; }
  uint64_t completed_writes() const override { return completed_writes_; }
  uint64_t bytes_written() const override { return bytes_written_; }
  uint64_t durable_bytes() const override {
    return base_offset_ + durable_.size();
  }
  size_t writes_outstanding() const override { return 0; }
  void set_buffer_recycler(BufferRecycler recycler) override {
    recycler_ = std::move(recycler);
  }

  const std::string& path() const { return path_; }
  /// Cumulative wall-clock time spent inside pwrite+fdatasync (+floor),
  /// microseconds — live_bench reports it as the real device cost.
  int64_t sync_wall_us() const { return sync_wall_us_; }

 private:
  std::string path_;
  PostFn post_;
  FileOptions options_;
  int fd_ = -1;
  std::string durable_;  ///< in-memory mirror of the synced file contents
  uint64_t base_offset_ = 0;
  uint64_t completed_writes_ = 0;
  uint64_t bytes_written_ = 0;
  int64_t sync_wall_us_ = 0;
  BufferRecycler recycler_;
};

}  // namespace tpc::wal

#endif  // TPC_WAL_FILE_STORAGE_H_
