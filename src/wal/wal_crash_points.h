// Crash points instrumenting the WAL group-commit pipeline.
//
// Naming follows src/tm/crash_points.h (`role.point_name` with role `wal.`).
// WAL points fire only from *asynchronous* flush contexts — group/daemon
// timer pops, pipelined submit-on-completion, and the zero-delay wake events
// the count trigger and WILO steal schedule — never synchronously under
// `Append`/`RequestForce`. TM and RM call sites touch transaction state
// after Append returns, so a synchronous crash there would corrupt the very
// state recovery audits; the async-only rule keeps every WAL crash a clean
// "node dies between events" cut, matching the torture oracle's model.
//
// Windows covered:
//   before/after_flush_submit   — around handing a flush to the log device
//                                 (the in-flight-write-lost window)
//   before_gather               — workers-write-log daemon woke but has not
//                                 yet collected the per-owner buffers
//   between_gather_submit       — owner buffers drained into the flush
//                                 buffer, device write not yet submitted
//                                 (gathered bytes are volatile and die here)
//   after_steal_submit          — a WILO steal submitted a peer's buffer and
//                                 the stealing worker dies immediately after

#ifndef TPC_WAL_WAL_CRASH_POINTS_H_
#define TPC_WAL_WAL_CRASH_POINTS_H_

#include <cstddef>

namespace tpc::wal {

enum class WalCrashPt : unsigned {
  kBeforeFlushSubmit = 0,
  kAfterFlushSubmit,
  kBeforeGather,
  kBetweenGatherSubmit,
  kAfterStealSubmit,
  kCount
};

inline constexpr const char* kWalCrashPoints[] = {
    "wal.before_flush_submit", "wal.after_flush_submit",
    "wal.before_gather",       "wal.between_gather_submit",
    "wal.after_steal_submit",
};
inline constexpr size_t kWalCrashPointCount =
    sizeof(kWalCrashPoints) / sizeof(kWalCrashPoints[0]);
static_assert(kWalCrashPointCount == static_cast<size_t>(WalCrashPt::kCount));

inline const char* WalCrashPointName(WalCrashPt p) {
  return kWalCrashPoints[static_cast<size_t>(p)];
}

}  // namespace tpc::wal

#endif  // TPC_WAL_WAL_CRASH_POINTS_H_
