// Frozen copy of the seed LogManager (temporary-string record encode,
// unordered_map per-txn/per-owner stats, unconditional trace construction).
// Kept verbatim so bench/wal_bench.cc can measure the in-place rework
// against the original and tests can assert identical durable bytes.
// Do not optimize — that defeats its purpose as the baseline.

#ifndef TPC_WAL_LEGACY_LOG_MANAGER_H_
#define TPC_WAL_LEGACY_LOG_MANAGER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/sim_context.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"
#include "wal/stable_storage.h"

namespace tpc::wal {

/// The seed's write-ahead log, byte-for-byte behavior-identical to the
/// original (including its per-append temporary allocations).
class LegacyLogManager {
 public:
  using AppendCallback = std::function<void()>;

  LegacyLogManager(sim::SimContext* ctx, std::string node,
                   sim::Time force_latency = 2 * sim::kMillisecond);

  LegacyLogManager(const LegacyLogManager&) = delete;
  LegacyLogManager& operator=(const LegacyLogManager&) = delete;

  void set_group_commit(const GroupCommitOptions& opts) { group_ = opts; }

  Lsn Append(const LogRecord& record, bool force, AppendCallback done = nullptr);
  void ForceAll(AppendCallback done);
  void Crash();

  std::vector<LogRecord> Recover() const { return ScanLog(storage_.durable()); }

  Lsn durable_lsn() const { return storage_.durable_bytes(); }
  Lsn next_lsn() const { return next_lsn_; }

  const LogWriteStats& stats() const { return stats_; }
  LogWriteStats StatsForTxn(uint64_t txn) const;
  LogWriteStats StatsForOwner(const std::string& owner) const;
  uint64_t device_forces() const { return storage_.completed_writes(); }

  StableStorage& storage() { return storage_; }

 private:
  void RequestForce(AppendCallback done);
  void Flush();

  /// The seed's Encode: inner body into one temporary Encoder, header into a
  /// second, concatenated and returned by value.
  static std::string SeedEncode(const LogRecord& record);

  sim::SimContext* ctx_;
  std::string node_;
  StableStorage storage_;
  GroupCommitOptions group_;

  std::string buffer_;
  Lsn next_lsn_ = 0;
  std::vector<AppendCallback> pending_force_;
  uint32_t pending_force_requests_ = 0;
  sim::EventId group_timer_ = 0;
  bool group_timer_armed_ = false;
  uint64_t epoch_ = 0;

  LogWriteStats stats_;
  std::unordered_map<uint64_t, LogWriteStats> txn_stats_;
  std::unordered_map<std::string, LogWriteStats> owner_stats_;
};

}  // namespace tpc::wal

#endif  // TPC_WAL_LEGACY_LOG_MANAGER_H_
