// Frozen seed implementation — see legacy_log_manager.h. Logic is copied
// unchanged from the original log_manager.cc / log_record.cc Encode; only
// the class name differs.

#include "wal/legacy_log_manager.h"

#include <utility>

#include "util/binary_io.h"
#include "util/crc32c.h"
#include "util/logging.h"

namespace tpc::wal {

LegacyLogManager::LegacyLogManager(sim::SimContext* ctx, std::string node,
                                   sim::Time force_latency)
    : ctx_(ctx), node_(std::move(node)), storage_(ctx, force_latency) {}

std::string LegacyLogManager::SeedEncode(const LogRecord& record) {
  Encoder body_enc;
  body_enc.PutU8(static_cast<uint8_t>(record.type));
  body_enc.PutVarint(record.txn);
  body_enc.PutString(record.owner);
  body_enc.PutString(record.body);
  const std::string& inner = body_enc.buffer();

  Encoder out;
  out.PutU32(crc32c::Mask(crc32c::Value(inner)));
  out.PutU32(static_cast<uint32_t>(inner.size()));
  std::string buf = out.Release();
  buf += inner;
  return buf;
}

Lsn LegacyLogManager::Append(const LogRecord& record, bool force,
                             AppendCallback done) {
  std::string encoded = SeedEncode(record);
  Lsn lsn = next_lsn_;
  next_lsn_ += encoded.size();
  buffer_ += encoded;

  ++stats_.writes;
  auto& ts = txn_stats_[record.txn];
  ++ts.writes;
  auto& os = owner_stats_[record.owner];
  ++os.writes;

  ctx_->trace().Add({ctx_->now(),
                     force ? sim::TraceKind::kLogForce : sim::TraceKind::kLogWrite,
                     node_, "", record.txn,
                     std::string(RecordTypeToString(record.type))});

  if (force) {
    ++stats_.forced_writes;
    ++ts.forced_writes;
    ++os.forced_writes;
    RequestForce(std::move(done));
  } else if (done) {
    done();
  }
  return lsn;
}

void LegacyLogManager::ForceAll(AppendCallback done) {
  RequestForce(std::move(done));
}

void LegacyLogManager::RequestForce(AppendCallback done) {
  if (done) pending_force_.push_back(std::move(done));
  ++pending_force_requests_;

  if (!group_.enabled) {
    Flush();
    return;
  }
  if (pending_force_requests_ >= group_.group_size) {
    Flush();
    return;
  }
  if (!group_timer_armed_) {
    group_timer_armed_ = true;
    const uint64_t epoch = epoch_;
    group_timer_ = ctx_->events().ScheduleAfter(group_.group_timeout,
                                                [this, epoch] {
      if (epoch != epoch_) return;
      group_timer_armed_ = false;
      if (pending_force_requests_ > 0) Flush();
    });
  }
}

void LegacyLogManager::Flush() {
  if (group_timer_armed_) {
    ctx_->events().Cancel(group_timer_);
    group_timer_armed_ = false;
  }
  pending_force_requests_ = 0;
  std::vector<AppendCallback> callbacks = std::move(pending_force_);
  pending_force_.clear();
  std::string bytes = std::move(buffer_);
  buffer_.clear();
  if (bytes.empty() && callbacks.empty()) return;
  const uint64_t epoch = epoch_;
  storage_.Write(std::move(bytes),
                 [this, epoch, cbs = std::move(callbacks)]() mutable {
    if (epoch != epoch_) return;
    for (auto& cb : cbs) cb();
  });
}

void LegacyLogManager::Crash() {
  ++epoch_;
  buffer_.clear();
  pending_force_.clear();
  pending_force_requests_ = 0;
  if (group_timer_armed_) {
    ctx_->events().Cancel(group_timer_);
    group_timer_armed_ = false;
  }
  storage_.Crash();
  next_lsn_ = storage_.durable_bytes();
}

LogWriteStats LegacyLogManager::StatsForTxn(uint64_t txn) const {
  auto it = txn_stats_.find(txn);
  return it == txn_stats_.end() ? LogWriteStats{} : it->second;
}

LogWriteStats LegacyLogManager::StatsForOwner(const std::string& owner) const {
  auto it = owner_stats_.find(owner);
  return it == owner_stats_.end() ? LogWriteStats{} : it->second;
}

}  // namespace tpc::wal
