// StorageBackend: the durability seam LogManager codes against.
//
// The flush policies submit opaque byte batches and learn about durability
// through completion callbacks; everything else — what a "device" is, how
// long a write takes, what survives a crash — is the backend's business:
//
//   - StableStorage (stable_storage.h): the simulated log device — queueing
//     model, service times on the sim clock, in-order retirement, epoch
//     crash semantics. Deterministic; the trace-frozen default.
//   - FileStorage (file_storage.h): a real append-only file. Write performs
//     pwrite + fdatasync inline on the calling (node worker) thread and
//     posts the completion to the node's mailbox, so group commit batches
//     actual fsyncs and a kill leaves exactly the synced prefix on disk.
//
// Contract every backend guarantees:
//   - Writes retire in submission order; durable() is always a prefix of
//     what was submitted (plus everything retired before).
//   - `done` runs on the owning node's execution context after the write
//     (and all earlier writes) are durable, never re-entrantly from Write.
//   - Crash() drops submitted-but-unretired writes; retired bytes survive.
//   - durable_bytes() is monotonic in LSN space: base_offset() + retained.

#ifndef TPC_WAL_STORAGE_BACKEND_H_
#define TPC_WAL_STORAGE_BACKEND_H_

#include <cstdint>
#include <string>

#include "sim/inline_function.h"

namespace tpc::wal {

class StorageBackend {
 public:
  /// Completion callback; runs when the write retires (durable). Sized for
  /// the log manager's flush closure (this + epoch + a callback vector).
  using WriteCallback = sim::InlineFunction<48>;
  /// Installed by the owner to get flush-buffer capacity back after the
  /// payload is folded into the durable image (allocation-free flush loop).
  using BufferRecycler = sim::InlineFunction<24, void(std::string&&)>;

  virtual ~StorageBackend() = default;

  /// Queues `data` for durable append; `done` runs at retirement time.
  /// Submission order is retirement order regardless of device concurrency.
  virtual void Write(std::string data, WriteCallback done) = 0;

  /// Crash: in-flight and queued writes are lost; retired writes survive.
  virtual void Crash() = 0;

  /// Durable contents (what a recovery scan reads), starting at
  /// base_offset().
  virtual const std::string& durable() const = 0;

  /// Discards the first `bytes` of durable content (checkpoint-driven log
  /// truncation) and advances base_offset() accordingly.
  virtual void Truncate(uint64_t bytes) = 0;

  /// Offset of durable()[0] in the log's LSN space (grows with Truncate).
  virtual uint64_t base_offset() const = 0;

  /// Retired device writes (the physical-force count for group-commit
  /// accounting).
  virtual uint64_t completed_writes() const = 0;

  /// Payload bytes retired (bandwidth accounting).
  virtual uint64_t bytes_written() const = 0;

  /// End of the durable log in LSN space (base offset + retained bytes).
  virtual uint64_t durable_bytes() const = 0;

  /// Writes submitted and not yet retired (in service or queued).
  virtual size_t writes_outstanding() const = 0;

  /// Flush-buffer recycling: once a write's payload is durable, its string
  /// (cleared, capacity intact) is handed back through `recycler`.
  virtual void set_buffer_recycler(BufferRecycler recycler) = 0;
};

}  // namespace tpc::wal

#endif  // TPC_WAL_STORAGE_BACKEND_H_
