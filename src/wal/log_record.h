// Log record model and on-disk encoding.
//
// The paper's accounting counts *log writes*, split into forced and
// non-forced. Records here carry a type, the transaction id, an owner tag
// (which TM or LRM wrote it — several components can share one log, see the
// shared-log optimization), and an opaque body encoded by the owner.
//
// Disk format per record:
//   [u32 masked crc][u32 len][u8 type][varint txn][string owner][string body]
// CRC covers everything after the crc field. A recovery scan stops at the
// first record whose CRC does not verify (torn tail after a crash).

#ifndef TPC_WAL_LOG_RECORD_H_
#define TPC_WAL_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace tpc::wal {

/// Log sequence number: byte offset of the record start in the log.
using Lsn = uint64_t;
constexpr Lsn kInvalidLsn = ~0ULL;

/// Record types written by transaction managers and resource managers.
enum class RecordType : uint8_t {
  // Transaction-manager records.
  kTmJoin = 1,        ///< PN: subordinate notes its coordinator's identity
  kTmCommitPending,   ///< PN: coordinator remembers subordinates pre-Prepare
  kTmPrepared,        ///< participant is prepared (in doubt)
  kTmCommitted,       ///< commit decision / commit performed
  kTmAborted,         ///< abort decision / abort performed
  kTmEnd,             ///< transaction forgotten (all acks collected)
  kTmHeuristic,       ///< heuristic decision taken while in doubt
  kTmAccept,          ///< paxos acceptor state snapshot (promise + accepts)

  // Resource-manager records.
  kRmUpdate = 32,     ///< undo/redo for one store mutation
  kRmPrepared,        ///< LRM prepared (updates stable)
  kRmCommitted,       ///< LRM committed
  kRmAborted,         ///< LRM aborted (undo applied)

  // Infrastructure.
  kCheckpoint = 64,   ///< recovery checkpoint (not in the paper's counts)
};

std::string_view RecordTypeToString(RecordType type);

/// True for the TM record types (used to split per-role accounting).
bool IsTmRecord(RecordType type);

/// A decoded log record.
struct LogRecord {
  RecordType type = RecordType::kTmEnd;
  uint64_t txn = 0;
  std::string owner;  ///< writer tag, e.g. "coord.tm" or "sub1.rm0"
  std::string body;   ///< owner-defined payload

  /// Serializes to the on-disk format.
  std::string Encode() const;

  /// Appends the on-disk encoding to `out` with no temporary: the header is
  /// reserved, the body encoded in place, and the CRC computed over the
  /// in-place bytes before being patched into the header. This is the log
  /// manager's hot path — one record append touches only `out`.
  void EncodeTo(std::string& out) const;
};

/// Decodes one record starting at data[*offset]; advances *offset past it.
/// Corruption (bad CRC, truncation) is reported, leaving *offset untouched.
Result<LogRecord> DecodeRecord(std::string_view data, size_t* offset);

/// Scans a log image, returning all intact records; a corrupt or torn tail
/// terminates the scan silently (that is the expected crash artifact).
std::vector<LogRecord> ScanLog(std::string_view data);

}  // namespace tpc::wal

#endif  // TPC_WAL_LOG_RECORD_H_
