// Simulated stable storage (the log device).
//
// The device is modeled after Gray & Reuter-style log-device queueing:
// every write costs a fixed per-op latency plus its size over the device
// bandwidth, and up to `queue_depth` writes can be in service concurrently
// (the rest queue FIFO behind them). Writes *retire* strictly in submission
// order — a write becomes durable only once it and every earlier write have
// finished service — so the durable log is always a prefix of what was
// submitted. Bytes become durable when their write retires; an in-flight or
// queued write is lost on crash.
//
// The defaults (latency only, infinite bandwidth, queue depth 1) reproduce
// the seed device event-for-event: one write in service at a time, each
// completing `write_latency` after it reaches the head of the queue.

#ifndef TPC_WAL_STABLE_STORAGE_H_
#define TPC_WAL_STABLE_STORAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/inline_function.h"
#include "sim/sim_context.h"
#include "wal/storage_backend.h"

namespace tpc::wal {

/// Log-device service model.
struct DeviceOptions {
  /// Fixed per-operation service time (seek + rotational + command cost).
  sim::Time write_latency = 2 * sim::kMillisecond;
  /// Streaming bandwidth applied to the write's payload size; 0 = infinite
  /// (the seed behavior: size never matters).
  uint64_t bandwidth_bytes_per_sec = 0;
  /// Writes concurrently in service; further writes queue FIFO.
  uint32_t queue_depth = 1;

  /// Service time for one write of `bytes` payload bytes.
  sim::Time ServiceTime(uint64_t bytes) const {
    sim::Time t = write_latency;
    if (bandwidth_bytes_per_sec > 0)
      t += static_cast<sim::Time>((bytes * static_cast<uint64_t>(sim::kSecond)) /
                                  bandwidth_bytes_per_sec);
    return t;
  }
};

/// One simulated log device: the deterministic StorageBackend.
class StableStorage : public StorageBackend {
 public:
  using WriteCallback = StorageBackend::WriteCallback;
  using BufferRecycler = StorageBackend::BufferRecycler;

  StableStorage(sim::SimContext* ctx, sim::Time write_latency)
      : ctx_(ctx) {
    device_.write_latency = write_latency;
  }
  StableStorage(sim::SimContext* ctx, const DeviceOptions& device)
      : ctx_(ctx), device_(device) {}

  /// Queues `data` for durable append; `done` runs at retirement time.
  /// Submission order is retirement order regardless of queue depth.
  void Write(std::string data, WriteCallback done) override;

  /// Crash: in-flight and queued writes are lost; retired writes survive.
  void Crash() override;

  /// Durable contents (what a recovery scan reads), starting at
  /// base_offset().
  const std::string& durable() const override { return durable_; }

  /// Discards the first `bytes` of durable content (checkpoint-driven log
  /// truncation) and advances base_offset() accordingly.
  void Truncate(uint64_t bytes) override;

  /// Offset of durable()[0] in the log's LSN space (grows with Truncate).
  uint64_t base_offset() const override { return base_offset_; }

  /// Retired device writes (the physical-force count for group-commit
  /// accounting).
  uint64_t completed_writes() const override { return completed_writes_; }

  /// Payload bytes retired (bandwidth accounting).
  uint64_t bytes_written() const override { return bytes_written_; }

  /// End of the durable log in LSN space (base offset + retained bytes).
  uint64_t durable_bytes() const override {
    return base_offset_ + durable_.size();
  }

  /// Writes submitted and not yet retired (in service or queued).
  size_t writes_outstanding() const override { return ring_size_; }

  const DeviceOptions& device() const { return device_; }
  void set_device(const DeviceOptions& device) { device_ = device; }
  sim::Time write_latency() const { return device_.write_latency; }
  void set_write_latency(sim::Time t) { device_.write_latency = t; }

  /// Flush-buffer recycling: once a write's payload is durable, its string
  /// (cleared, capacity intact) is handed back through `recycler`.
  void set_buffer_recycler(BufferRecycler recycler) override {
    recycler_ = std::move(recycler);
  }

 private:
  struct Pending {
    std::string data;
    WriteCallback done;
    bool completed = false;  ///< service finished; awaiting in-order retire
  };

  /// Starts service on queued writes while device slots are free.
  void Dispatch();
  /// Retires the completed prefix of the queue (durability + callbacks).
  void RetireCompleted(uint64_t epoch);
  /// Slot holding the `logical`-th oldest pending write.
  Pending& Slot(size_t logical) {
    return ring_[(ring_head_ + logical) & (ring_.size() - 1)];
  }
  void Grow();

  sim::SimContext* ctx_;
  DeviceOptions device_;
  std::string durable_;
  uint64_t base_offset_ = 0;
  // Pending writes sit in a power-of-two ring (a deque would churn block
  // allocations in steady state; the warm ring allocates nothing). Logical
  // slots [0 .. dispatched_) are in service (or done, awaiting retire); the
  // rest wait for a device slot. front_id_ names the logical front in the
  // monotonically increasing per-write id space completion events carry.
  std::vector<Pending> ring_;
  size_t ring_head_ = 0;
  size_t ring_size_ = 0;
  size_t dispatched_ = 0;
  uint32_t in_service_ = 0;
  uint64_t next_write_id_ = 0;
  uint64_t front_id_ = 0;
  uint64_t epoch_ = 0;  // bumped on crash to invalidate in-flight completions
  uint64_t completed_writes_ = 0;
  uint64_t bytes_written_ = 0;
  BufferRecycler recycler_;
};

}  // namespace tpc::wal

#endif  // TPC_WAL_STABLE_STORAGE_H_
