// Simulated stable storage (the log device).
//
// Writes are serialized through a single device queue with a configurable
// service time, so force-write latency and I/O queueing — the effects group
// commit exists to mitigate — are actually modeled. Bytes become durable
// when their device write *completes*; an in-flight write is lost on crash.

#ifndef TPC_WAL_STABLE_STORAGE_H_
#define TPC_WAL_STABLE_STORAGE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/sim_context.h"

namespace tpc::wal {

/// One simulated log device.
class StableStorage {
 public:
  using WriteCallback = std::function<void()>;

  StableStorage(sim::SimContext* ctx, sim::Time write_latency)
      : ctx_(ctx), write_latency_(write_latency) {}

  /// Queues `data` for durable append; `done` runs at completion time.
  /// FIFO; one write in service at a time.
  void Write(std::string data, WriteCallback done);

  /// Crash: in-flight and queued writes are lost; completed writes survive.
  void Crash();

  /// Durable contents (what a recovery scan reads), starting at
  /// base_offset().
  const std::string& durable() const { return durable_; }

  /// Discards the first `bytes` of durable content (checkpoint-driven log
  /// truncation) and advances base_offset() accordingly.
  void Truncate(uint64_t bytes);

  /// Offset of durable()[0] in the log's LSN space (grows with Truncate).
  uint64_t base_offset() const { return base_offset_; }

  /// Completed device writes (the physical-force count for group-commit
  /// accounting).
  uint64_t completed_writes() const { return completed_writes_; }

  /// End of the durable log in LSN space (base offset + retained bytes).
  uint64_t durable_bytes() const { return base_offset_ + durable_.size(); }

  sim::Time write_latency() const { return write_latency_; }
  void set_write_latency(sim::Time t) { write_latency_ = t; }

 private:
  struct Pending {
    std::string data;
    WriteCallback done;
  };

  void StartNext();

  sim::SimContext* ctx_;
  sim::Time write_latency_;
  std::string durable_;
  uint64_t base_offset_ = 0;
  std::deque<Pending> queue_;
  bool busy_ = false;
  uint64_t epoch_ = 0;  // bumped on crash to invalidate in-flight completions
  uint64_t completed_writes_ = 0;
};

}  // namespace tpc::wal

#endif  // TPC_WAL_STABLE_STORAGE_H_
