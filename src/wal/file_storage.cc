#include "wal/file_storage.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "util/logging.h"

namespace tpc::wal {

namespace {
int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

FileStorage::FileStorage(std::string path, PostFn post, FileOptions options)
    : path_(std::move(path)), post_(std::move(post)), options_(options) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  TPC_CHECK(fd_ >= 0);
  // Reload whatever a previous incarnation synced: this is the recovery
  // image a restarted node scans.
  char buf[1 << 16];
  ssize_t n;
  uint64_t off = 0;
  while ((n = ::pread(fd_, buf, sizeof(buf), off)) > 0) {
    durable_.append(buf, static_cast<size_t>(n));
    off += static_cast<uint64_t>(n);
  }
  TPC_CHECK(n >= 0);
}

FileStorage::~FileStorage() {
  if (fd_ >= 0) ::close(fd_);
}

void FileStorage::Write(std::string data, WriteCallback done) {
  const int64_t start = NowUs();
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd_, data.data() + written, data.size() - written);
    if (n < 0 && errno == EINTR) continue;
    TPC_CHECK(n >= 0);
    written += static_cast<size_t>(n);
  }
  if (options_.sync && !data.empty()) TPC_CHECK(::fdatasync(fd_) == 0);
  // The bytes and their size are on stable media: fold into the mirror.
  durable_.append(data);
  ++completed_writes_;
  bytes_written_ += data.size();
  if (recycler_) recycler_(std::move(data));
  const int64_t elapsed = NowUs() - start;
  if (elapsed < options_.floor_us)
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.floor_us - elapsed));
  sync_wall_us_ += std::max(elapsed, options_.floor_us);
  // Ack later, on the node's context — never re-entrantly from Write.
  if (done) post_(std::move(done));
}

void FileStorage::Crash() {
  // Every submitted write completed (and synced) inline, so there is
  // nothing in flight to lose; the epoch guard in LogManager already
  // ignores completions posted before the crash.
}

void FileStorage::Truncate(uint64_t bytes) {
  TPC_CHECK(bytes <= durable_.size());
  durable_.erase(0, bytes);
  base_offset_ += bytes;
}

}  // namespace tpc::wal
