#include "wal/log_manager.h"

#include <utility>

#include "util/logging.h"

namespace tpc::wal {

LogManager::LogManager(sim::SimContext* ctx, std::string node,
                       sim::Time force_latency)
    : ctx_(ctx), node_(std::move(node)), storage_(ctx, force_latency) {}

LogWriteStats& LogManager::TxnSlot(uint64_t txn) {
  // May rehash: Append uses the reference before the next TxnSlot call.
  return txn_stats_.GetOrCreate(txn);
}

Lsn LogManager::Append(const LogRecord& record, bool force,
                       AppendCallback done) {
  const size_t start = buffer_.size();
  record.EncodeTo(buffer_);  // in place: no temporary encode buffer
  Lsn lsn = next_lsn_;
  next_lsn_ += buffer_.size() - start;

  ++stats_.writes;
  LogWriteStats& ts = TxnSlot(record.txn);
  ++ts.writes;
  const uint32_t owner = owner_ids_.Intern(record.owner);
  if (owner >= owner_stats_.size()) owner_stats_.resize(owner + 1);
  LogWriteStats& os = owner_stats_[owner];
  ++os.writes;

  if (ctx_->trace().capturing()) {
    ctx_->trace().Add({ctx_->now(),
                       force ? sim::TraceKind::kLogForce : sim::TraceKind::kLogWrite,
                       node_, "", record.txn,
                       std::string(RecordTypeToString(record.type))});
  }

  if (force) {
    ++stats_.forced_writes;
    ++ts.forced_writes;
    ++os.forced_writes;
    RequestForce(std::move(done));
  } else if (done) {
    done();
  }
  return lsn;
}

void LogManager::ForceAll(AppendCallback done) { RequestForce(std::move(done)); }

void LogManager::RequestForce(AppendCallback done) {
  if (done) pending_force_.push_back(std::move(done));
  ++pending_force_requests_;

  if (!group_.enabled) {
    Flush();
    return;
  }
  if (pending_force_requests_ >= group_.group_size) {
    Flush();
    return;
  }
  if (!group_timer_armed_) {
    group_timer_armed_ = true;
    const uint64_t epoch = epoch_;
    group_timer_ = ctx_->events().ScheduleAfter(group_.group_timeout,
                                                [this, epoch] {
      if (epoch != epoch_) return;
      group_timer_armed_ = false;
      if (pending_force_requests_ > 0) Flush();
    });
  }
}

void LogManager::Flush() {
  if (group_timer_armed_) {
    ctx_->events().Cancel(group_timer_);
    group_timer_armed_ = false;
  }
  pending_force_requests_ = 0;
  std::vector<AppendCallback> callbacks = std::move(pending_force_);
  pending_force_.clear();
  std::string bytes = std::move(buffer_);
  buffer_.clear();
  if (bytes.empty() && callbacks.empty()) return;
  // Even when the buffer is empty (everything already handed to the device)
  // we must not ack the callbacks until the device confirms prior queued
  // writes are durable, so we still enqueue a (possibly empty) write.
  const uint64_t epoch = epoch_;
  storage_.Write(std::move(bytes),
                 [this, epoch, cbs = std::move(callbacks)]() mutable {
    if (epoch != epoch_) return;
    for (auto& cb : cbs) cb();
  });
}

void LogManager::Crash() {
  ++epoch_;
  buffer_.clear();
  pending_force_.clear();
  pending_force_requests_ = 0;
  if (group_timer_armed_) {
    ctx_->events().Cancel(group_timer_);
    group_timer_armed_ = false;
  }
  storage_.Crash();
  // LSN space continues from the durable prefix after restart.
  next_lsn_ = storage_.durable_bytes();
}

void LogManager::DiscardPrefix(Lsn lsn) {
  TPC_CHECK(lsn <= storage_.durable_bytes());
  if (lsn <= storage_.base_offset()) return;
  storage_.Truncate(lsn - storage_.base_offset());
}

LogWriteStats LogManager::StatsForTxn(uint64_t txn) const {
  const LogWriteStats* stats = txn_stats_.Find(txn);
  return stats == nullptr ? LogWriteStats{} : *stats;
}

LogWriteStats LogManager::StatsForOwner(const std::string& owner) const {
  const uint32_t id = owner_ids_.Find(owner);
  if (id == StringInterner::kNotFound || id >= owner_stats_.size())
    return LogWriteStats{};
  return owner_stats_[id];
}

void LogManager::ResetStats() {
  stats_ = LogWriteStats{};
  txn_stats_.Clear();
  owner_stats_.clear();  // owner ids stay interned; slots refill on demand
}

uint64_t LogManager::ApproxBytes() const {
  uint64_t bytes = txn_stats_.ApproxBytes();
  bytes += buffer_.capacity();
  bytes += owner_stats_.capacity() * sizeof(LogWriteStats);
  bytes += pending_force_.capacity() * sizeof(AppendCallback);
  bytes += storage_.durable().size();
  return bytes;
}

}  // namespace tpc::wal
