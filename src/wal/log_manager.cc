#include "wal/log_manager.h"

#include <utility>

#include "runtime/sim_runtime.h"
#include "util/logging.h"

namespace tpc::wal {

namespace {
// Bounds the recycled flush-buffer / callback-vector pools. Steady state
// needs at most device-queue-depth + 1 buffers in rotation; anything beyond
// this is a burst we let the allocator reclaim.
constexpr size_t kMaxSpares = 8;
}  // namespace

const char* FlushPolicyName(FlushPolicy p) {
  switch (p) {
    case FlushPolicy::kCountTimer: return "count_timer";
    case FlushPolicy::kFlushPipelining: return "flush_pipelining";
    case FlushPolicy::kWorkersWriteLog: return "workers_write_log";
    case FlushPolicy::kWiloSteal: return "wilo_steal";
  }
  return "unknown";
}

bool ParseFlushPolicy(std::string_view name, FlushPolicy* out) {
  for (FlushPolicy p : {FlushPolicy::kCountTimer, FlushPolicy::kFlushPipelining,
                        FlushPolicy::kWorkersWriteLog, FlushPolicy::kWiloSteal}) {
    if (name == FlushPolicyName(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

LogManager::LogManager(sim::SimContext* ctx, std::string node,
                       sim::Time force_latency)
    : LogManager(ctx, std::move(node), DeviceOptions{force_latency, 0, 1}) {}

LogManager::LogManager(sim::SimContext* ctx, std::string node,
                       const DeviceOptions& device)
    : owned_rt_(std::make_unique<runtime::SimRuntime>(ctx)),
      owned_storage_(std::make_unique<StableStorage>(ctx, device)),
      rt_(owned_rt_.get()),
      ctx_(ctx),
      node_(std::move(node)),
      storage_(owned_storage_.get()) {
  Init();
}

LogManager::LogManager(runtime::Runtime* rt, sim::SimContext* ctx,
                       std::string node, StorageBackend* storage)
    : rt_(rt), ctx_(ctx), node_(std::move(node)), storage_(storage) {
  Init();
}

void LogManager::Init() {
  fi_node_ = ctx_->failures().InternNode(node_);
  for (size_t i = 0; i < kWalCrashPointCount; ++i)
    wal_points_[i] = ctx_->failures().InternPoint(kWalCrashPoints[i]);
  // Flush buffers come back (cleared, capacity intact) once the device has
  // folded their payload into the durable image.
  storage_->set_buffer_recycler(
      [this](std::string&& s) { RecycleBuffer(std::move(s)); });
}

LogWriteStats& LogManager::TxnSlot(uint64_t txn) {
  // May rehash: Append uses the reference before the next TxnSlot call.
  return txn_stats_.GetOrCreate(txn);
}

Lsn LogManager::Append(const LogRecord& record, bool force,
                       AppendCallback done) {
  const uint32_t owner = owner_ids_.Intern(record.owner);
  const bool owner_buffered = UsesOwnerBuffers();
  std::string* dst = &buffer_;
  if (owner_buffered) {
    if (owner >= owner_bufs_.size()) {
      owner_bufs_.resize(owner + 1);
      owner_read_.resize(owner + 1, 0);
    }
    dst = &owner_bufs_[owner];
  }
  const size_t start = dst->size();
  record.EncodeTo(*dst);  // in place: no temporary encode buffer
  const size_t len = dst->size() - start;
  Lsn lsn = next_lsn_;
  next_lsn_ += len;
  if (owner_buffered) {
    // Arrival-order segment list: gather interleaves the owner buffers in
    // exactly this order, so the physical log layout equals the LSN order
    // and every Append-returned LSN stays an exact byte offset.
    if (!segments_.empty() && segments_.back().owner == owner)
      segments_.back().bytes += static_cast<uint32_t>(len);
    else
      segments_.push_back(Segment{owner, static_cast<uint32_t>(len)});
  }

  ++stats_.writes;
  LogWriteStats& ts = TxnSlot(record.txn);
  ++ts.writes;
  if (owner >= owner_stats_.size()) owner_stats_.resize(owner + 1);
  LogWriteStats& os = owner_stats_[owner];
  ++os.writes;

  if (ctx_->trace().capturing()) {
    ctx_->trace().Add({rt_->Now(),
                       force ? sim::TraceKind::kLogForce : sim::TraceKind::kLogWrite,
                       node_, "", record.txn,
                       std::string(RecordTypeToString(record.type))});
  }

  if (force) {
    ++stats_.forced_writes;
    ++ts.forced_writes;
    ++os.forced_writes;
    RequestForce(std::move(done));
  } else if (done) {
    done();
  }

  // WILO: an owner whose buffer ran full steals the flush instead of
  // waiting for the daemon (the wake gathers every peer's buffer too). If a
  // wake is already armed, the steal flag folds into it.
  if (owner_buffered && group_.policy == FlushPolicy::kWiloSteal &&
      owner_bufs_[owner].size() > group_.worker_buffer_bytes) {
    ScheduleWake(/*steal=*/true);
  }
  return lsn;
}

void LogManager::ForceAll(AppendCallback done) {
  RequestForce(std::move(done));
  // Checkpoints need "force now" semantics; the daemon path would otherwise
  // sit out its gather deadline.
  if (UsesOwnerBuffers()) ScheduleWake(/*steal=*/false);
}

void LogManager::RequestForce(AppendCallback done) {
  if (done)
    pending_force_.push_back(
        PendingForce{std::move(done), next_lsn_, rt_->Now()});
  ++pending_force_requests_;

  if (!group_.enabled) {
    Flush();
    return;
  }
  switch (group_.policy) {
    case FlushPolicy::kCountTimer:
      if (pending_force_requests_ >= group_.group_size) {
        Flush();
      } else if (!group_timer_armed_) {
        group_timer_armed_ = true;
        const uint64_t epoch = epoch_;
        group_timer_ =
            rt_->ArmTimer(group_.group_timeout, [this, epoch] {
          if (epoch != epoch_) return;
          group_timer_armed_ = false;
          if (pending_force_requests_ == 0) return;
          if (CrashHere(WalCrashPt::kBeforeFlushSubmit)) return;
          Flush();
          CrashHere(WalCrashPt::kAfterFlushSubmit);
        });
      }
      break;
    case FlushPolicy::kFlushPipelining:
      // Submit while the pipeline has room; at depth, requests accumulate
      // and the next device completion submits them as one batch (see
      // OnFlushSlotFree). No timer: the device always completes, so the
      // batch is bounded by one device service time, not group_timeout.
      if (flushes_in_flight_ < group_.max_pipeline_depth) Flush();
      break;
    case FlushPolicy::kWorkersWriteLog:
    case FlushPolicy::kWiloSteal:
      if (pending_force_requests_ >= group_.group_size) {
        ScheduleWake(/*steal=*/false);
      } else if (!wake_armed_) {
        ArmDaemonTimer();
      }
      break;
  }
}

void LogManager::Flush() {
  if (group_timer_armed_) {
    // An armed flag must always name a live pending event.
    TPC_CHECK(rt_->CancelTimer(group_timer_));
    group_timer_armed_ = false;
  }
  std::string bytes = std::move(buffer_);
  buffer_ = TakeSpareBuffer();
  SubmitWrite(std::move(bytes));
}

void LogManager::SubmitWrite(std::string bytes) {
  pending_force_requests_ = 0;
  std::vector<PendingForce> cbs = std::move(pending_force_);
  pending_force_ = TakeSpareCbVec();
  if (bytes.empty() && cbs.empty()) {
    RecycleBuffer(std::move(bytes));
    RecycleCbVec(std::move(cbs));
    return;
  }
  // Even when the payload is empty (everything already handed to the device)
  // we must not ack the callbacks until the device confirms prior queued
  // writes are durable, so we still enqueue a (possibly empty) write.
  ++flushes_in_flight_;
  const uint64_t epoch = epoch_;
  storage_->Write(std::move(bytes),
                 [this, epoch, cbs = std::move(cbs)]() mutable {
    if (epoch != epoch_) return;
    --flushes_in_flight_;
    AckForces(cbs, epoch);
    if (epoch != epoch_) return;  // an ack callback crashed this node
    RecycleCbVec(std::move(cbs));
    OnFlushSlotFree();
  });
}

void LogManager::AckForces(std::vector<PendingForce>& cbs, uint64_t epoch) {
  for (PendingForce& pf : cbs) {
    // The group-commit safety invariant, whatever the policy: an ack may
    // only run once the log is durable through the tail the force covered.
    TPC_CHECK(storage_->durable_bytes() >= pf.cover);
    if (collect_force_latency_)
      force_latency_.Add(static_cast<double>(rt_->Now() - pf.requested));
    if (pf.done) pf.done();
    if (epoch != epoch_) return;  // callback crashed this node: stop acking
  }
}

void LogManager::OnFlushSlotFree() {
  if (!group_.enabled || group_.policy != FlushPolicy::kFlushPipelining)
    return;
  if (pending_force_requests_ == 0) return;
  if (flushes_in_flight_ >= group_.max_pipeline_depth) return;
  if (CrashHere(WalCrashPt::kBeforeFlushSubmit)) return;
  Flush();
  CrashHere(WalCrashPt::kAfterFlushSubmit);
}

void LogManager::ArmDaemonTimer() {
  if (daemon_timer_armed_) return;
  daemon_timer_armed_ = true;
  const uint64_t epoch = epoch_;
  daemon_timer_ =
      rt_->ArmTimer(group_.daemon_interval, [this, epoch] {
    if (epoch != epoch_) return;
    daemon_timer_armed_ = false;
    if (pending_force_requests_ == 0 && segments_.empty()) return;
    DaemonGatherAndSubmit(/*steal=*/false);
  });
}

void LogManager::ScheduleWake(bool steal) {
  if (wake_armed_) {
    wake_is_steal_ = wake_is_steal_ || steal;
    return;
  }
  if (daemon_timer_armed_) {
    TPC_CHECK(rt_->CancelTimer(daemon_timer_));
    daemon_timer_armed_ = false;
  }
  wake_armed_ = true;
  wake_is_steal_ = steal;
  // Zero-delay: the wake runs later this same instant, so the worker that
  // triggered it has fully unwound out of Append before any crash point in
  // the gather path can fire.
  const uint64_t epoch = epoch_;
  wake_event_ = rt_->ArmTimer(0, [this, epoch] {
    if (epoch != epoch_) return;
    wake_armed_ = false;
    DaemonGatherAndSubmit(wake_is_steal_);
  });
}

void LogManager::DaemonGatherAndSubmit(bool steal) {
  if (CrashHere(WalCrashPt::kBeforeGather)) return;
  std::string bytes = TakeSpareBuffer();
  GatherOwnerBuffers(bytes);
  // The gathered bytes live only in this local buffer: a crash in this
  // window loses them exactly like any buffered-but-unsubmitted record.
  if (CrashHere(WalCrashPt::kBetweenGatherSubmit)) return;
  SubmitWrite(std::move(bytes));
  if (steal) {
    ++steals_;
    CrashHere(WalCrashPt::kAfterStealSubmit);
  } else {
    CrashHere(WalCrashPt::kAfterFlushSubmit);
  }
}

void LogManager::GatherOwnerBuffers(std::string& out) {
  // Records appended before a mid-run policy switch sit in the central
  // buffer and predate every owner-buffered byte; they go first.
  if (!buffer_.empty()) {
    out.append(buffer_);
    buffer_.clear();
  }
  for (const Segment& seg : segments_) {
    const std::string& src = owner_bufs_[seg.owner];
    size_t& off = owner_read_[seg.owner];
    out.append(src, off, seg.bytes);
    off += seg.bytes;
  }
  segments_.clear();
  for (size_t i = 0; i < owner_bufs_.size(); ++i) {
    TPC_DCHECK(owner_read_[i] == owner_bufs_[i].size());
    owner_bufs_[i].clear();  // capacity survives for the next round
    owner_read_[i] = 0;
  }
}

std::string LogManager::TakeSpareBuffer() {
  if (spare_buffers_.empty()) return std::string();
  std::string s = std::move(spare_buffers_.back());
  spare_buffers_.pop_back();
  return s;
}

void LogManager::RecycleBuffer(std::string&& s) {
  s.clear();
  if (spare_buffers_.size() < kMaxSpares)
    spare_buffers_.push_back(std::move(s));
}

std::vector<LogManager::PendingForce> LogManager::TakeSpareCbVec() {
  if (spare_cb_vecs_.empty()) return {};
  std::vector<PendingForce> v = std::move(spare_cb_vecs_.back());
  spare_cb_vecs_.pop_back();
  return v;
}

void LogManager::RecycleCbVec(std::vector<PendingForce>&& v) {
  v.clear();
  if (spare_cb_vecs_.size() < kMaxSpares)
    spare_cb_vecs_.push_back(std::move(v));
}

void LogManager::Crash() {
  ++epoch_;
  buffer_.clear();
  pending_force_.clear();
  pending_force_requests_ = 0;
  for (std::string& b : owner_bufs_) b.clear();
  for (size_t& r : owner_read_) r = 0;
  segments_.clear();
  // Timer hygiene: an armed flag must always name a live pending event, so
  // each cancel must succeed — a dead EventId here could fire (or alias a
  // recycled slot) in the next epoch. Timer callbacks clear their armed flag
  // before running any body code, so a crash from inside one never reaches
  // this cancel for the event being executed.
  if (group_timer_armed_) {
    TPC_CHECK(rt_->CancelTimer(group_timer_));
    group_timer_armed_ = false;
  }
  if (daemon_timer_armed_) {
    TPC_CHECK(rt_->CancelTimer(daemon_timer_));
    daemon_timer_armed_ = false;
  }
  if (wake_armed_) {
    TPC_CHECK(rt_->CancelTimer(wake_event_));
    wake_armed_ = false;
  }
  wake_is_steal_ = false;
  flushes_in_flight_ = 0;
  storage_->Crash();
  // LSN space continues from the durable prefix after restart.
  next_lsn_ = storage_->durable_bytes();
}

void LogManager::DiscardPrefix(Lsn lsn) {
  TPC_CHECK(lsn <= storage_->durable_bytes());
  if (lsn <= storage_->base_offset()) return;
  storage_->Truncate(lsn - storage_->base_offset());
}

LogWriteStats LogManager::StatsForTxn(uint64_t txn) const {
  const LogWriteStats* stats = txn_stats_.Find(txn);
  return stats == nullptr ? LogWriteStats{} : *stats;
}

LogWriteStats LogManager::StatsForOwner(const std::string& owner) const {
  const uint32_t id = owner_ids_.Find(owner);
  if (id == StringInterner::kNotFound || id >= owner_stats_.size())
    return LogWriteStats{};
  return owner_stats_[id];
}

void LogManager::ResetStats() {
  stats_ = LogWriteStats{};
  txn_stats_.Clear();
  owner_stats_.clear();  // owner ids stay interned; slots refill on demand
  force_latency_.Clear();
  steals_ = 0;
}

uint64_t LogManager::ApproxBytes() const {
  uint64_t bytes = txn_stats_.ApproxBytes();
  bytes += buffer_.capacity();
  bytes += owner_stats_.capacity() * sizeof(LogWriteStats);
  bytes += pending_force_.capacity() * sizeof(PendingForce);
  for (const std::string& b : owner_bufs_) bytes += b.capacity();
  bytes += owner_bufs_.capacity() * sizeof(std::string);
  bytes += owner_read_.capacity() * sizeof(size_t);
  bytes += segments_.capacity() * sizeof(Segment);
  for (const std::string& b : spare_buffers_) bytes += b.capacity();
  bytes += spare_buffers_.capacity() * sizeof(std::string);
  for (const auto& v : spare_cb_vecs_)
    bytes += v.capacity() * sizeof(PendingForce);
  bytes += spare_cb_vecs_.capacity() * sizeof(std::vector<PendingForce>);
  bytes += force_latency_.count() * sizeof(double);
  bytes += storage_->durable().size();
  return bytes;
}

}  // namespace tpc::wal
