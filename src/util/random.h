// Deterministic pseudo-random number generation. All randomness in the
// simulator flows through a seeded Random so that every run is reproducible.

#ifndef TPC_UTIL_RANDOM_H_
#define TPC_UTIL_RANDOM_H_

#include <cstdint>

namespace tpc {

/// xoshiro256** generator seeded via SplitMix64. Deterministic, fast, and
/// good enough statistically for workload generation.
class Random {
 public:
  explicit Random(uint64_t seed) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi]. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  /// Zipfian-ish skewed pick in [0, n) using theta in (0,1); theta=0 uniform.
  uint64_t Skewed(uint64_t n, double theta);

 private:
  uint64_t s_[4];
};

}  // namespace tpc

#endif  // TPC_UTIL_RANDOM_H_
