// FlatId64Map: an open-addressed hash map from uint64 keys to inline
// values, built for the cluster-scale sparse side tables (per-txn TM meta,
// per-txn WAL stats, per-directed-link network state).
//
// Why not a dense vector indexed by id: transaction ids are global across
// the cluster, so a node that participates in k transactions out of N pays
// O(max id) memory with a dense table — at 1k+ nodes that multiplies into
// gigabytes. Why not std::unordered_map: per-insert node allocations and
// pointer-chasing probes on the commit hot path. This table keeps keys and
// values in two parallel vectors (linear probing, power-of-two capacity),
// costs O(entries) memory, performs no allocation in steady state, and a
// lookup is one multiplicative hash plus a short scan.
//
// Contract: keys must not equal kEmptyKey (UINT64_MAX); entries are never
// erased (Clear drops everything at once). References returned by
// GetOrCreate/Find are invalidated by the next GetOrCreate (it may rehash)
// — use them immediately, as all call sites here do. Iteration is
// deliberately not provided: probe order depends on insertion history, and
// nothing trace-visible may depend on it.

#ifndef TPC_UTIL_FLAT_MAP_H_
#define TPC_UTIL_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tpc {

template <typename V>
class FlatId64Map {
 public:
  static constexpr uint64_t kEmptyKey = UINT64_MAX;

  /// The value for `key`, default-constructing it on first sight.
  V& GetOrCreate(uint64_t key) {
    if (keys_.empty() || (count_ + 1) * 10 >= keys_.size() * 7) Grow();
    size_t i = Probe(key);
    if (keys_[i] == kEmptyKey) {
      keys_[i] = key;
      ++count_;
    }
    return vals_[i];
  }

  /// The value for `key`, or nullptr. Never allocates.
  V* Find(uint64_t key) {
    if (keys_.empty()) return nullptr;
    const size_t i = Probe(key);
    return keys_[i] == kEmptyKey ? nullptr : &vals_[i];
  }
  const V* Find(uint64_t key) const {
    return const_cast<FlatId64Map*>(this)->Find(key);
  }

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Drops every entry; capacity is retained for refill.
  void Clear() {
    std::fill(keys_.begin(), keys_.end(), kEmptyKey);
    std::fill(vals_.begin(), vals_.end(), V{});
    count_ = 0;
  }

  /// Heap footprint of the table itself (for memory-budget reporting;
  /// excludes heap owned by the values).
  uint64_t ApproxBytes() const {
    return keys_.capacity() * sizeof(uint64_t) + vals_.capacity() * sizeof(V);
  }

 private:
  static uint64_t Mix(uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
  }

  /// Slot holding `key`, or the empty slot where it would insert.
  size_t Probe(uint64_t key) const {
    const size_t mask = keys_.size() - 1;
    size_t i = static_cast<size_t>(Mix(key)) & mask;
    while (keys_[i] != kEmptyKey && keys_[i] != key) i = (i + 1) & mask;
    return i;
  }

  void Grow() {
    const size_t new_cap = keys_.empty() ? 16 : keys_.size() * 2;
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_vals = std::move(vals_);
    keys_.assign(new_cap, kEmptyKey);
    vals_.assign(new_cap, V{});
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmptyKey) continue;
      const size_t j = Probe(old_keys[i]);
      keys_[j] = old_keys[i];
      vals_[j] = std::move(old_vals[i]);
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<V> vals_;
  size_t count_ = 0;
};

}  // namespace tpc

#endif  // TPC_UTIL_FLAT_MAP_H_
