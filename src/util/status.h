// Status: lightweight error propagation without exceptions, in the style used
// throughout database C++ codebases (LevelDB/RocksDB/Arrow).
//
// Library functions that can fail return a Status (or a Result<T>, see
// result.h). A Status is cheap to copy in the OK case (no allocation).

#ifndef TPC_UTIL_STATUS_H_
#define TPC_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace tpc {

/// Error categories used across the library.
enum class StatusCode : unsigned char {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something nonsensical
  kNotFound,          ///< named entity does not exist
  kAlreadyExists,     ///< named entity already exists
  kCorruption,        ///< stored data failed validation (e.g. bad CRC)
  kIOError,           ///< (simulated) device error
  kFailedPrecondition,///< operation illegal in the current state
  kAborted,           ///< transaction/protocol aborted
  kUnavailable,       ///< peer or resource unreachable (e.g. partition)
  kTimedOut,          ///< operation exceeded its deadline
  kBlocked,           ///< commit outcome unresolved (in-doubt, blocking)
  kHeuristicDamage,   ///< heuristic decision conflicted with the outcome
  kHeuristicMixed,    ///< some participants committed, some aborted
  kOutcomePending,    ///< wait-for-outcome: recovery still in progress
  kInternal,          ///< invariant violation (a bug)
};

/// Returns a stable human-readable name ("OK", "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation: a code plus an optional message.
class Status {
 public:
  /// Default-constructed Status is OK.
  Status() noexcept = default;

  Status(const Status& other)
      : code_(other.code_),
        rep_(other.rep_ ? std::make_unique<std::string>(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      code_ = other.code_;
      rep_ = other.rep_ ? std::make_unique<std::string>(*other.rep_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(StatusCode::kIOError, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status Aborted(std::string_view msg) {
    return Status(StatusCode::kAborted, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(StatusCode::kUnavailable, msg);
  }
  static Status TimedOut(std::string_view msg) {
    return Status(StatusCode::kTimedOut, msg);
  }
  static Status Blocked(std::string_view msg) {
    return Status(StatusCode::kBlocked, msg);
  }
  static Status HeuristicDamage(std::string_view msg) {
    return Status(StatusCode::kHeuristicDamage, msg);
  }
  static Status HeuristicMixed(std::string_view msg) {
    return Status(StatusCode::kHeuristicMixed, msg);
  }
  static Status OutcomePending(std::string_view msg) {
    return Status(StatusCode::kOutcomePending, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsBlocked() const { return code_ == StatusCode::kBlocked; }
  bool IsHeuristicDamage() const { return code_ == StatusCode::kHeuristicDamage; }
  bool IsHeuristicMixed() const { return code_ == StatusCode::kHeuristicMixed; }
  bool IsOutcomePending() const { return code_ == StatusCode::kOutcomePending; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// Message supplied at construction; empty for OK.
  std::string_view message() const {
    return rep_ ? std::string_view(*rep_) : std::string_view();
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(StatusCode code, std::string_view msg)
      : code_(code),
        rep_(msg.empty() ? nullptr : std::make_unique<std::string>(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::unique_ptr<std::string> rep_;  // null for OK / empty-message statuses
};

}  // namespace tpc

/// Propagates a non-OK Status to the caller.
#define TPC_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::tpc::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                    \
  } while (0)

#endif  // TPC_UTIL_STATUS_H_
