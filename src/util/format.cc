#include "util/format.h"

#include <cstdio>

namespace tpc {
namespace {

void AppendV(std::string* dst, const char* fmt, va_list ap) {
  va_list ap2;
  va_copy(ap2, ap);
  char buf[256];
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  if (n < 0) {
    va_end(ap2);
    return;
  }
  if (static_cast<size_t>(n) < sizeof(buf)) {
    dst->append(buf, static_cast<size_t>(n));
  } else {
    std::string big(static_cast<size_t>(n) + 1, '\0');
    std::vsnprintf(big.data(), big.size(), fmt, ap2);
    big.resize(static_cast<size_t>(n));
    dst->append(big);
  }
  va_end(ap2);
}

}  // namespace

std::string StringPrintf(const char* fmt, ...) {
  std::string out;
  va_list ap;
  va_start(ap, fmt);
  AppendV(&out, fmt, ap);
  va_end(ap);
  return out;
}

void StringAppendF(std::string* dst, const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  AppendV(dst, fmt, ap);
  va_end(ap);
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string RenderTable(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return "";
  size_t cols = 0;
  for (const auto& r : rows) cols = std::max(cols, r.size());
  std::vector<size_t> width(cols, 0);
  for (const auto& r : rows)
    for (size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  std::string out;
  auto render_row = [&](const std::vector<std::string>& r) {
    out += "|";
    for (size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string();
      out += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    out += "\n";
  };
  auto render_rule = [&] {
    out += "+";
    for (size_t c = 0; c < cols; ++c) out += std::string(width[c] + 2, '-') + "+";
    out += "\n";
  };

  render_rule();
  render_row(rows[0]);
  render_rule();
  for (size_t i = 1; i < rows.size(); ++i) render_row(rows[i]);
  render_rule();
  return out;
}

}  // namespace tpc
