// Result<T>: a Status or a value, for functions that produce something on
// success. Mirrors arrow::Result / absl::StatusOr.

#ifndef TPC_UTIL_RESULT_H_
#define TPC_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace tpc {

/// Holds either an OK Status and a T, or a non-OK Status.
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK Status: failure. Constructing from an OK Status
  /// is a programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK Status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value access; requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when not ok.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

}  // namespace tpc

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define TPC_ASSIGN_OR_RETURN(lhs, rexpr)          \
  TPC_ASSIGN_OR_RETURN_IMPL_(                     \
      TPC_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define TPC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define TPC_CONCAT_(a, b) TPC_CONCAT_IMPL_(a, b)
#define TPC_CONCAT_IMPL_(a, b) a##b

#endif  // TPC_UTIL_RESULT_H_
