// Software CRC32C (Castagnoli). Used to checksum log records so that a
// torn/corrupt tail is detected during recovery scans.

#ifndef TPC_UTIL_CRC32C_H_
#define TPC_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tpc::crc32c {

/// Extends `init_crc` with `data`; pass 0 as the initial value.
uint32_t Extend(uint32_t init_crc, const void* data, size_t n);

/// CRC32C of a buffer.
inline uint32_t Value(const void* data, size_t n) { return Extend(0, data, n); }

inline uint32_t Value(std::string_view s) { return Value(s.data(), s.size()); }

/// Masks a CRC so that CRCs of data containing embedded CRCs stay robust
/// (same scheme as LevelDB).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace tpc::crc32c

#endif  // TPC_UTIL_CRC32C_H_
