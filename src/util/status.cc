#include "util/status.h"

namespace tpc {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kTimedOut: return "TimedOut";
    case StatusCode::kBlocked: return "Blocked";
    case StatusCode::kHeuristicDamage: return "HeuristicDamage";
    case StatusCode::kHeuristicMixed: return "HeuristicMixed";
    case StatusCode::kOutcomePending: return "OutcomePending";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (rep_ && !rep_->empty()) {
    out += ": ";
    out += *rep_;
  }
  return out;
}

}  // namespace tpc
