#include "util/crc32c.h"

#include <array>

namespace tpc::crc32c {
namespace {

constexpr uint32_t kPoly = 0x82f63b78u;  // reflected CRC32C polynomial

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k)
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = MakeTable();

}  // namespace

uint32_t Extend(uint32_t init_crc, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = init_crc ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i)
    crc = kTable[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

}  // namespace tpc::crc32c
