#include "util/crc32c.h"

#include <array>
#include <cstring>

namespace tpc::crc32c {
namespace {

constexpr uint32_t kPoly = 0x82f63b78u;  // reflected CRC32C polynomial

// Slice-by-8 tables: kTables[0] is the classic byte-at-a-time table;
// kTables[j][b] advances byte b through j additional zero bytes, letting
// Extend fold eight input bytes per iteration instead of one. The CRC
// values produced are identical to the byte-at-a-time algorithm.
constexpr std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k)
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    tables[0][i] = crc;
  }
  for (int j = 1; j < 8; ++j)
    for (uint32_t i = 0; i < 256; ++i)
      tables[j][i] =
          (tables[j - 1][i] >> 8) ^ tables[0][tables[j - 1][i] & 0xff];
  return tables;
}

constexpr auto kTables = MakeTables();

}  // namespace

uint32_t Extend(uint32_t init_crc, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = init_crc ^ 0xffffffffu;
  // Eight bytes per iteration. The two 32-bit loads assume little-endian
  // byte order (the platforms this simulator targets); the byte-at-a-time
  // tail below is the reference algorithm and handles any length.
  while (n >= 8) {
    uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    crc ^= lo;
    crc = kTables[7][crc & 0xff] ^ kTables[6][(crc >> 8) & 0xff] ^
          kTables[5][(crc >> 16) & 0xff] ^ kTables[4][crc >> 24] ^
          kTables[3][hi & 0xff] ^ kTables[2][(hi >> 8) & 0xff] ^
          kTables[1][(hi >> 16) & 0xff] ^ kTables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (size_t i = 0; i < n; ++i)
    crc = kTables[0][(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

}  // namespace tpc::crc32c
