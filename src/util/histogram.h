// Simple value histogram for latency / hold-time statistics.

#ifndef TPC_UTIL_HISTOGRAM_H_
#define TPC_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tpc {

/// Collects double samples; supports mean/min/max and percentile queries.
/// Percentiles are exact (samples are retained and sorted lazily); suitable
/// for simulation-scale sample counts.
class Histogram {
 public:
  void Add(double v);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double Mean() const;
  double Min() const;
  double Max() const;

  /// p in [0, 100]. Returns 0 when empty.
  double Percentile(double p) const;

  /// One-line summary: "count=... mean=... p50=... p99=... max=...".
  std::string ToString() const;

 private:
  void Sort() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0;
};

}  // namespace tpc

#endif  // TPC_UTIL_HISTOGRAM_H_
