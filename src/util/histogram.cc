#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/format.h"

namespace tpc {

void Histogram::Add(double v) {
  samples_.push_back(v);
  sorted_ = false;
  sum_ += v;
}

void Histogram::Merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
  sum_ += other.sum_;
}

void Histogram::Clear() {
  samples_.clear();
  sorted_ = true;
  sum_ = 0;
}

void Histogram::Sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::Mean() const {
  return samples_.empty() ? 0 : sum_ / static_cast<double>(samples_.size());
}

double Histogram::Min() const {
  Sort();
  return samples_.empty() ? 0 : samples_.front();
}

double Histogram::Max() const {
  Sort();
  return samples_.empty() ? 0 : samples_.back();
}

double Histogram::Percentile(double p) const {
  if (samples_.empty()) return 0;
  Sort();
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1 - frac) + samples_[hi] * frac;
}

std::string Histogram::ToString() const {
  return StringPrintf("count=%llu mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
                      static_cast<unsigned long long>(count()), Mean(),
                      Percentile(50), Percentile(95), Percentile(99), Max());
}

}  // namespace tpc
