// Small string-formatting helpers (GCC 12 lacks std::format).

#ifndef TPC_UTIL_FORMAT_H_
#define TPC_UTIL_FORMAT_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace tpc {

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Appends printf-style formatted text to *dst.
void StringAppendF(std::string* dst, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Renders a monospace table: first row is the header. Column widths auto-fit.
std::string RenderTable(const std::vector<std::vector<std::string>>& rows);

}  // namespace tpc

#endif  // TPC_UTIL_FORMAT_H_
