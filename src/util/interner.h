// StringInterner: maps strings to dense uint32 ids with an open-addressed
// hash table, keeping the reverse mapping (id -> name) for cold-path
// rendering (trace detail strings, timeout messages).
//
// Hot paths intern a key once and then work entirely in dense ids, so the
// per-operation cost is one FNV-1a hash + a short linear probe instead of a
// std::map walk over string comparisons. Ids are assigned in first-seen
// order and are never recycled, which makes them safe to use as direct
// indexes into flat side tables (lock entries, per-owner stats).

#ifndef TPC_UTIL_INTERNER_H_
#define TPC_UTIL_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tpc {

class StringInterner {
 public:
  static constexpr uint32_t kNotFound = UINT32_MAX;

  StringInterner() : table_(kInitialBuckets, kEmpty) {}

  /// Id for `s`, assigning the next dense id on first sight.
  uint32_t Intern(std::string_view s) {
    uint64_t h = Hash(s);
    size_t mask = table_.size() - 1;
    size_t i = static_cast<size_t>(h) & mask;
    while (table_[i] != kEmpty) {
      uint32_t id = table_[i];
      if (names_[id] == s) return id;
      i = (i + 1) & mask;
    }
    uint32_t id = static_cast<uint32_t>(names_.size());
    names_.emplace_back(s);
    table_[i] = id;
    if (names_.size() * 10 >= table_.size() * 7) Grow();
    return id;
  }

  /// Id for `s` if already interned, else kNotFound. Never allocates.
  uint32_t Find(std::string_view s) const {
    uint64_t h = Hash(s);
    size_t mask = table_.size() - 1;
    size_t i = static_cast<size_t>(h) & mask;
    while (table_[i] != kEmpty) {
      uint32_t id = table_[i];
      if (names_[id] == s) return id;
      i = (i + 1) & mask;
    }
    return kNotFound;
  }

  /// The string interned as `id`. Requires id < size().
  const std::string& NameOf(uint32_t id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

 private:
  static constexpr size_t kInitialBuckets = 64;  // power of two
  static constexpr uint32_t kEmpty = UINT32_MAX;

  static uint64_t Hash(std::string_view s) {
    uint64_t h = 1469598103934665603ull;  // FNV-1a 64-bit
    for (char c : s) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ull;
    }
    return h;
  }

  void Grow() {
    std::vector<uint32_t> fresh(table_.size() * 2, kEmpty);
    size_t mask = fresh.size() - 1;
    for (uint32_t id = 0; id < names_.size(); ++id) {
      size_t i = static_cast<size_t>(Hash(names_[id])) & mask;
      while (fresh[i] != kEmpty) i = (i + 1) & mask;
      fresh[i] = id;
    }
    table_ = std::move(fresh);
  }

  std::vector<std::string> names_;  // id -> name
  std::vector<uint32_t> table_;     // open-addressed: bucket -> id
};

}  // namespace tpc

#endif  // TPC_UTIL_INTERNER_H_
