#include "util/random.h"

#include <cmath>

namespace tpc {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Random::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

uint64_t Random::UniformRange(uint64_t lo, uint64_t hi) {
  return lo + Uniform(hi - lo + 1);
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Random::Exponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

uint64_t Random::Skewed(uint64_t n, double theta) {
  if (n <= 1 || theta <= 0.0) return Uniform(n == 0 ? 1 : n);
  // Simple power-law transform; adequate for hot/cold key workloads.
  double u = NextDouble();
  double x = std::pow(u, 1.0 / (1.0 - theta));
  auto idx = static_cast<uint64_t>(x * static_cast<double>(n));
  return idx >= n ? n - 1 : idx;
}

}  // namespace tpc
