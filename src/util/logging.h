// Invariant checking. TPC_CHECK aborts the process with a message on
// violation; it is always on (database code prefers loud failure over silent
// corruption). TPC_DCHECK compiles out in NDEBUG builds.

#ifndef TPC_UTIL_LOGGING_H_
#define TPC_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace tpc::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace tpc::internal

#define TPC_CHECK(expr)                                        \
  do {                                                         \
    if (!(expr)) ::tpc::internal::CheckFailed(__FILE__, __LINE__, #expr); \
  } while (0)

#define TPC_CHECK_OK(expr)                                                  \
  do {                                                                      \
    ::tpc::Status _st = (expr);                                             \
    if (!_st.ok())                                                          \
      ::tpc::internal::CheckFailed(__FILE__, __LINE__, _st.ToString().c_str()); \
  } while (0)

#ifdef NDEBUG
#define TPC_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define TPC_DCHECK(expr) TPC_CHECK(expr)
#endif

#endif  // TPC_UTIL_LOGGING_H_
