// Binary encoding/decoding for log records and network message payloads.
// Little-endian fixed-width integers, LEB128 varints, length-prefixed strings.

#ifndef TPC_UTIL_BINARY_IO_H_
#define TPC_UTIL_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace tpc {

// --- In-place append helpers ------------------------------------------------
// Hot paths (WAL record encoding) append straight into an existing buffer,
// skipping the temporary string an owned Encoder would cost. Encoder's Put*
// methods delegate to these, so there is one encoding implementation.

inline void AppendU8(std::string& buf, uint8_t v) {
  buf.push_back(static_cast<char>(v));
}

inline void AppendU32(std::string& buf, uint32_t v) {
  for (int i = 0; i < 4; ++i) AppendU8(buf, static_cast<uint8_t>(v >> (8 * i)));
}

inline void AppendU64(std::string& buf, uint64_t v) {
  for (int i = 0; i < 8; ++i) AppendU8(buf, static_cast<uint8_t>(v >> (8 * i)));
}

inline void AppendVarint(std::string& buf, uint64_t v) {
  while (v >= 0x80) {
    AppendU8(buf, static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  AppendU8(buf, static_cast<uint8_t>(v));
}

/// Length-prefixed (varint) byte string.
inline void AppendLengthPrefixed(std::string& buf, std::string_view s) {
  AppendVarint(buf, s.size());
  buf.append(s.data(), s.size());
}

/// Overwrites 4 bytes at `pos` with the little-endian encoding of `v`
/// (header patching: reserve, encode the body, patch length/checksum).
inline void PatchU32(std::string& buf, size_t pos, uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf[pos + i] = static_cast<char>(static_cast<uint8_t>(v >> (8 * i)));
}

// --- Raw-pointer writers ----------------------------------------------------
// For encoders that size their output up front (one resize, no per-field
// capacity checks) and then write fields directly.

/// Encoded size of the LEB128 varint of `v` (1..10 bytes).
inline size_t VarintLength(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Writes the LEB128 varint of `v` at `dst`; returns bytes written.
inline size_t PutVarintTo(char* dst, uint64_t v) {
  size_t n = 0;
  while (v >= 0x80) {
    dst[n++] = static_cast<char>(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  dst[n++] = static_cast<char>(static_cast<uint8_t>(v));
  return n;
}

/// Writes the 4-byte little-endian encoding of `v` at `dst`.
inline void PutU32To(char* dst, uint32_t v) {
  for (int i = 0; i < 4; ++i)
    dst[i] = static_cast<char>(static_cast<uint8_t>(v >> (8 * i)));
}

/// Appends encoded fields to an owned buffer.
class Encoder {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutVarint(uint64_t v);
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  /// Length-prefixed (varint) byte string.
  void PutString(std::string_view s);

  const std::string& buffer() const { return buf_; }
  std::string Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Consumes fields from a borrowed buffer. All getters return
/// Status::Corruption on underflow or malformed input.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* v);
  Status GetU16(uint16_t* v);
  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetVarint(uint64_t* v);
  Status GetBool(bool* v);
  Status GetString(std::string* s);
  /// Zero-copy variant: a view into the decoder's buffer (valid while the
  /// underlying bytes live).
  Status GetStringView(std::string_view* s);

  size_t remaining() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

 private:
  std::string_view data_;
};

}  // namespace tpc

#endif  // TPC_UTIL_BINARY_IO_H_
