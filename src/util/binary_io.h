// Binary encoding/decoding for log records and network message payloads.
// Little-endian fixed-width integers, LEB128 varints, length-prefixed strings.

#ifndef TPC_UTIL_BINARY_IO_H_
#define TPC_UTIL_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace tpc {

/// Appends encoded fields to an owned buffer.
class Encoder {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutVarint(uint64_t v);
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  /// Length-prefixed (varint) byte string.
  void PutString(std::string_view s);

  const std::string& buffer() const { return buf_; }
  std::string Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Consumes fields from a borrowed buffer. All getters return
/// Status::Corruption on underflow or malformed input.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* v);
  Status GetU16(uint16_t* v);
  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetVarint(uint64_t* v);
  Status GetBool(bool* v);
  Status GetString(std::string* s);

  size_t remaining() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

 private:
  std::string_view data_;
};

}  // namespace tpc

#endif  // TPC_UTIL_BINARY_IO_H_
