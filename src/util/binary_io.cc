#include "util/binary_io.h"

#include <cstring>

namespace tpc {

void Encoder::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void Encoder::PutU32(uint32_t v) { AppendU32(buf_, v); }

void Encoder::PutU64(uint64_t v) { AppendU64(buf_, v); }

void Encoder::PutVarint(uint64_t v) { AppendVarint(buf_, v); }

void Encoder::PutString(std::string_view s) { AppendLengthPrefixed(buf_, s); }

Status Decoder::GetU8(uint8_t* v) {
  if (data_.empty()) return Status::Corruption("decode underflow (u8)");
  *v = static_cast<uint8_t>(data_[0]);
  data_.remove_prefix(1);
  return Status::OK();
}

Status Decoder::GetU16(uint16_t* v) {
  if (data_.size() < 2) return Status::Corruption("decode underflow (u16)");
  uint16_t out = 0;
  std::memcpy(&out, data_.data(), 2);
  *v = out;  // assumes little-endian host; fine for this codebase's targets
  data_.remove_prefix(2);
  return Status::OK();
}

Status Decoder::GetU32(uint32_t* v) {
  if (data_.size() < 4) return Status::Corruption("decode underflow (u32)");
  uint32_t out = 0;
  std::memcpy(&out, data_.data(), 4);
  *v = out;
  data_.remove_prefix(4);
  return Status::OK();
}

Status Decoder::GetU64(uint64_t* v) {
  if (data_.size() < 8) return Status::Corruption("decode underflow (u64)");
  uint64_t out = 0;
  std::memcpy(&out, data_.data(), 8);
  *v = out;
  data_.remove_prefix(8);
  return Status::OK();
}

Status Decoder::GetVarint(uint64_t* v) {
  uint64_t out = 0;
  int shift = 0;
  while (true) {
    if (data_.empty()) return Status::Corruption("decode underflow (varint)");
    if (shift >= 64) return Status::Corruption("varint too long");
    uint8_t byte = static_cast<uint8_t>(data_[0]);
    data_.remove_prefix(1);
    out |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) break;
    shift += 7;
  }
  *v = out;
  return Status::OK();
}

Status Decoder::GetBool(bool* v) {
  uint8_t b = 0;
  TPC_RETURN_IF_ERROR(GetU8(&b));
  if (b > 1) return Status::Corruption("bool out of range");
  *v = b != 0;
  return Status::OK();
}

Status Decoder::GetString(std::string* s) {
  std::string_view v;
  TPC_RETURN_IF_ERROR(GetStringView(&v));
  s->assign(v.data(), v.size());
  return Status::OK();
}

Status Decoder::GetStringView(std::string_view* s) {
  uint64_t n = 0;
  TPC_RETURN_IF_ERROR(GetVarint(&n));
  if (data_.size() < n) return Status::Corruption("decode underflow (string)");
  *s = data_.substr(0, n);
  data_.remove_prefix(n);
  return Status::OK();
}

}  // namespace tpc
