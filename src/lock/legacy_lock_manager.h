// Frozen copy of the seed LockManager (std::map<std::string, Entry> table,
// per-txn key-string vectors, std::function callbacks). Kept verbatim so
// bench/lock_bench.cc can measure the interned rework against the original
// and tests can assert the two grant identical schedules. Do not optimize —
// that defeats its purpose as the baseline.

#ifndef TPC_LOCK_LEGACY_LOCK_MANAGER_H_
#define TPC_LOCK_LEGACY_LOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "lock/lock_manager.h"
#include "sim/sim_context.h"
#include "util/histogram.h"
#include "util/status.h"

namespace tpc::lock {

/// The seed's lock table, byte-for-byte behavior-identical to the original.
class LegacyLockManager {
 public:
  using GrantCallback = std::function<void(Status)>;

  explicit LegacyLockManager(sim::SimContext* ctx, std::string node,
                             sim::Time wait_timeout = 10 * sim::kSecond)
      : ctx_(ctx), node_(std::move(node)), wait_timeout_(wait_timeout) {}

  void Acquire(uint64_t txn, const std::string& key, LockMode mode,
               GrantCallback done);
  void ReleaseAll(uint64_t txn);
  bool Holds(uint64_t txn, const std::string& key, LockMode mode) const;
  size_t WaiterCount() const;

  const LockStats& stats() const { return stats_; }
  void ResetStats() { stats_ = LockStats{}; }

 private:
  struct Holder {
    uint64_t txn;
    LockMode mode;
    sim::Time granted_at;
  };
  struct Waiter {
    uint64_t txn;
    LockMode mode;
    GrantCallback done;
    sim::Time queued_at;
    sim::EventId timeout_event;
    bool cancelled = false;
  };
  struct Entry {
    std::vector<Holder> holders;
    std::deque<Waiter> waiters;
  };

  static bool Compatible(LockMode held, LockMode requested) {
    return LockModesCompatible(held, requested);
  }

  void PumpWaiters(const std::string& key);
  void Grant(const std::string& key, Entry& entry, Waiter& waiter);

  sim::SimContext* ctx_;
  std::string node_;
  sim::Time wait_timeout_;
  std::map<std::string, Entry> table_;
  // txn -> keys held (for ReleaseAll)
  std::unordered_map<uint64_t, std::vector<std::string>> held_by_txn_;
  LockStats stats_;
};

}  // namespace tpc::lock

#endif  // TPC_LOCK_LEGACY_LOCK_MANAGER_H_
