// Frozen seed implementation — see legacy_lock_manager.h. Logic is copied
// unchanged from the original lock_manager.cc; only the class name differs.

#include "lock/legacy_lock_manager.h"

#include <algorithm>

#include "util/format.h"
#include "util/logging.h"

namespace tpc::lock {

void LegacyLockManager::Acquire(uint64_t txn, const std::string& key,
                                LockMode mode, GrantCallback done) {
  Entry& entry = table_[key];

  // Re-entrant requests: covered modes return immediately; otherwise try
  // an in-place upgrade to the supremum of held and requested.
  bool is_upgrade = false;
  for (auto& h : entry.holders) {
    if (h.txn == txn) {
      if (LockModeCovers(h.mode, mode)) {
        done(Status::OK());  // already held strongly enough
        return;
      }
      is_upgrade = true;
      break;
    }
  }
  const LockMode wanted =
      is_upgrade ? [&] {
        for (const auto& h : entry.holders)
          if (h.txn == txn) return LockModeSupremum(h.mode, mode);
        return mode;
      }()
                 : mode;

  const bool no_queue = entry.waiters.empty();
  bool compatible = true;
  for (const auto& h : entry.holders) {
    if (h.txn == txn) continue;  // upgrade: only others matter
    if (!Compatible(h.mode, wanted)) {
      compatible = false;
      break;
    }
  }

  // Grant immediately when compatible with all holders and (to stay fair)
  // nobody is already queued. Upgrades jump the queue — queueing behind a
  // conflicting waiter would deadlock against our own hold.
  if (compatible && (no_queue || is_upgrade)) {
    if (is_upgrade) {
      for (auto& h : entry.holders)
        if (h.txn == txn) h.mode = wanted;
    } else {
      entry.holders.push_back(Holder{txn, mode, ctx_->now()});
      held_by_txn_[txn].push_back(key);
      ctx_->trace().Add({ctx_->now(), sim::TraceKind::kLock, node_, "", txn,
                         key + ":" + std::string(LockModeToString(mode))});
    }
    ++stats_.acquisitions;
    done(Status::OK());
    return;
  }

  // Queue.
  ++stats_.waits;
  Waiter w;
  w.txn = txn;
  w.mode = wanted;
  w.done = std::move(done);
  w.queued_at = ctx_->now();
  if (is_upgrade) {
    entry.waiters.push_front(std::move(w));
  } else {
    entry.waiters.push_back(std::move(w));
  }
  Waiter& queued = is_upgrade ? entry.waiters.front() : entry.waiters.back();
  queued.timeout_event =
      ctx_->events().ScheduleAfter(wait_timeout_, [this, key, txn] {
        Entry& e = table_[key];
        for (auto it = e.waiters.begin(); it != e.waiters.end(); ++it) {
          if (it->txn == txn && !it->cancelled) {
            GrantCallback cb = std::move(it->done);
            e.waiters.erase(it);
            ++stats_.timeouts;
            cb(Status::TimedOut("lock wait timeout on " + key));
            PumpWaiters(key);
            return;
          }
        }
      });
}

void LegacyLockManager::Grant(const std::string& key, Entry& entry,
                              Waiter& waiter) {
  ctx_->events().Cancel(waiter.timeout_event);
  stats_.wait_time.Add(static_cast<double>(ctx_->now() - waiter.queued_at));
  ++stats_.acquisitions;

  bool upgraded = false;
  for (auto& h : entry.holders) {
    if (h.txn == waiter.txn) {
      h.mode = LockModeSupremum(h.mode, waiter.mode);  // queued upgrade
      upgraded = true;
      break;
    }
  }
  if (!upgraded) {
    entry.holders.push_back(Holder{waiter.txn, waiter.mode, ctx_->now()});
    held_by_txn_[waiter.txn].push_back(key);
    ctx_->trace().Add({ctx_->now(), sim::TraceKind::kLock, node_, "",
                       waiter.txn,
                       key + ":" + std::string(LockModeToString(waiter.mode))});
  }
  waiter.done(Status::OK());
}

void LegacyLockManager::PumpWaiters(const std::string& key) {
  auto table_it = table_.find(key);
  if (table_it == table_.end()) return;
  Entry& entry = table_it->second;

  while (!entry.waiters.empty()) {
    Waiter& next = entry.waiters.front();
    bool compatible = true;
    for (const auto& h : entry.holders) {
      if (h.txn == next.txn) continue;
      if (!Compatible(h.mode, next.mode)) {
        compatible = false;
        break;
      }
    }
    if (!compatible) break;
    Waiter w = std::move(next);
    entry.waiters.pop_front();
    Grant(key, entry, w);
  }
  if (entry.holders.empty() && entry.waiters.empty()) table_.erase(table_it);
}

void LegacyLockManager::ReleaseAll(uint64_t txn) {
  auto it = held_by_txn_.find(txn);
  if (it == held_by_txn_.end()) return;
  std::vector<std::string> keys = std::move(it->second);
  held_by_txn_.erase(it);

  ctx_->trace().Add({ctx_->now(), sim::TraceKind::kUnlock, node_, "", txn,
                     StringPrintf("%zu locks", keys.size())});
  for (const auto& key : keys) {
    auto table_it = table_.find(key);
    if (table_it == table_.end()) continue;
    Entry& entry = table_it->second;
    for (auto h = entry.holders.begin(); h != entry.holders.end(); ++h) {
      if (h->txn == txn) {
        stats_.hold_time.Add(static_cast<double>(ctx_->now() - h->granted_at));
        entry.holders.erase(h);
        break;
      }
    }
    PumpWaiters(key);
  }
}

bool LegacyLockManager::Holds(uint64_t txn, const std::string& key,
                              LockMode mode) const {
  auto it = table_.find(key);
  if (it == table_.end()) return false;
  for (const auto& h : it->second.holders) {
    if (h.txn == txn) return LockModeCovers(h.mode, mode);
  }
  return false;
}

size_t LegacyLockManager::WaiterCount() const {
  size_t n = 0;
  for (const auto& [key, entry] : table_) n += entry.waiters.size();
  return n;
}

}  // namespace tpc::lock
