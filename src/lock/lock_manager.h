// Lock manager: strict two-phase locking over named resources.
//
// The paper's third performance metric is *resource lock time* — how long a
// transaction holds locks, which bounds the throughput other transactions
// can achieve. Locks here are therefore real: conflicting requests queue,
// grants happen when holders release at commit/abort, and the manager keeps
// a hold-time histogram that the benches report.

#ifndef TPC_LOCK_LOCK_MANAGER_H_
#define TPC_LOCK_LOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/sim_context.h"
#include "util/histogram.h"
#include "util/status.h"

namespace tpc::lock {

/// Lock modes, in increasing strength: intent-shared and intent-exclusive
/// (taken on a container, e.g. a table, before locking items inside it),
/// then shared and exclusive. Standard hierarchical compatibility:
///
///        IS   IX   S    X
///   IS   ok   ok   ok   -
///   IX   ok   ok   -    -
///   S    ok   -    ok   -
///   X    -    -    -    -
enum class LockMode : uint8_t {
  kIntentShared,
  kIntentExclusive,
  kShared,
  kExclusive,
};

std::string_view LockModeToString(LockMode mode);

/// True when a holder in `held` does not conflict with a request for
/// `requested` from another transaction.
bool LockModesCompatible(LockMode held, LockMode requested);

/// True when holding `held` already satisfies a request for `requested`
/// (same transaction): X covers everything, S covers S/IS, IX covers IX/IS.
bool LockModeCovers(LockMode held, LockMode requested);

/// The weakest single mode at least as strong as both (S+IX escalates to X;
/// this manager does not implement SIX).
LockMode LockModeSupremum(LockMode a, LockMode b);

/// Aggregate lock statistics.
struct LockStats {
  uint64_t acquisitions = 0;   ///< granted requests
  uint64_t waits = 0;          ///< requests that had to queue
  uint64_t timeouts = 0;       ///< requests abandoned after wait_timeout
  Histogram hold_time;         ///< grant -> release, per lock (microseconds)
  Histogram wait_time;         ///< request -> grant, waiters only
};

/// One node's lock table.
class LockManager {
 public:
  using GrantCallback = std::function<void(Status)>;

  explicit LockManager(sim::SimContext* ctx, std::string node,
                       sim::Time wait_timeout = 10 * sim::kSecond)
      : ctx_(ctx), node_(std::move(node)), wait_timeout_(wait_timeout) {}

  /// Requests `mode` on `key` for `txn`. The callback fires with OK on
  /// grant (possibly synchronously, if there is no conflict), or TimedOut
  /// if the wait exceeds the timeout (the caller should abort — this is the
  /// deadlock-resolution policy). Re-requesting a held lock in the same or
  /// weaker mode is a no-op grant; kShared -> kExclusive upgrades wait for
  /// other holders to drain.
  void Acquire(uint64_t txn, const std::string& key, LockMode mode,
               GrantCallback done);

  /// Releases every lock `txn` holds and grants unblocked waiters.
  /// Strict 2PL: called only at transaction end.
  void ReleaseAll(uint64_t txn);

  /// True if `txn` currently holds `key` in at least `mode`.
  bool Holds(uint64_t txn, const std::string& key, LockMode mode) const;

  /// Number of transactions currently waiting (for blocked-work metrics).
  size_t WaiterCount() const;

  const LockStats& stats() const { return stats_; }
  void ResetStats() { stats_ = LockStats{}; }

 private:
  struct Holder {
    uint64_t txn;
    LockMode mode;
    sim::Time granted_at;
  };
  struct Waiter {
    uint64_t txn;
    LockMode mode;
    GrantCallback done;
    sim::Time queued_at;
    sim::EventId timeout_event;
    bool cancelled = false;
  };
  struct Entry {
    std::vector<Holder> holders;
    std::deque<Waiter> waiters;
  };

  static bool Compatible(LockMode held, LockMode requested) {
    return LockModesCompatible(held, requested);
  }

  /// Grants as many queued waiters as compatibility allows.
  void PumpWaiters(const std::string& key);
  void Grant(const std::string& key, Entry& entry, Waiter& waiter);

  sim::SimContext* ctx_;
  std::string node_;
  sim::Time wait_timeout_;
  std::map<std::string, Entry> table_;
  // txn -> keys held (for ReleaseAll)
  std::unordered_map<uint64_t, std::vector<std::string>> held_by_txn_;
  LockStats stats_;
};

}  // namespace tpc::lock

#endif  // TPC_LOCK_LOCK_MANAGER_H_
