// Lock manager: strict two-phase locking over named resources.
//
// The paper's third performance metric is *resource lock time* — how long a
// transaction holds locks, which bounds the throughput other transactions
// can achieve. Locks here are therefore real: conflicting requests queue,
// grants happen when holders release at commit/abort, and the manager keeps
// a hold-time histogram that the benches report.
//
// Hot-path layout (see DESIGN.md §7): resource names are interned to dense
// uint32 KeyIds by a per-node StringInterner, the lock table is a flat
// vector indexed by KeyId (the interner is the open-addressed part), grant
// callbacks live in InlineFunction small-buffer storage, and each
// transaction's held locks form a singly linked list through a shared slab
// with free-list reuse. Callers that already know the KeyId (the resource
// manager interns each key once per operation) use the KeyId overloads and
// skip string hashing entirely; ReleaseAll walks the per-txn list in
// acquisition order and performs no hashing at all.
//
// Upgrade policy: a transaction holding S (or any weaker mode) that requests
// a stronger mode waits only for the *current* holders to drain — the
// upgrade is placed at the front of the wait queue, ahead of any queued
// later arrivals, because queueing an upgrade behind an incompatible waiter
// would deadlock that waiter against the upgrader's own hold (and starve
// the upgrader behind traffic that arrived after it). Two transactions
// upgrading the same key concurrently still deadlock against each other's
// S holds; the wait timeout resolves that, as it does all deadlocks here.

#ifndef TPC_LOCK_LOCK_MANAGER_H_
#define TPC_LOCK_LOCK_MANAGER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include <memory>

#include "runtime/runtime.h"
#include "sim/inline_function.h"
#include "sim/sim_context.h"
#include "util/histogram.h"
#include "util/interner.h"
#include "util/status.h"

namespace tpc::lock {

/// Lock modes, in increasing strength: intent-shared and intent-exclusive
/// (taken on a container, e.g. a table, before locking items inside it),
/// then shared and exclusive. Standard hierarchical compatibility:
///
///        IS   IX   S    X
///   IS   ok   ok   ok   -
///   IX   ok   ok   -    -
///   S    ok   -    ok   -
///   X    -    -    -    -
enum class LockMode : uint8_t {
  kIntentShared,
  kIntentExclusive,
  kShared,
  kExclusive,
};

std::string_view LockModeToString(LockMode mode);

/// True when a holder in `held` does not conflict with a request for
/// `requested` from another transaction.
bool LockModesCompatible(LockMode held, LockMode requested);

/// True when holding `held` already satisfies a request for `requested`
/// (same transaction): X covers everything, S covers S/IS, IX covers IX/IS.
bool LockModeCovers(LockMode held, LockMode requested);

/// The weakest single mode at least as strong as both (S+IX escalates to X;
/// this manager does not implement SIX).
LockMode LockModeSupremum(LockMode a, LockMode b);

/// Aggregate lock statistics.
struct LockStats {
  uint64_t acquisitions = 0;   ///< granted requests
  uint64_t waits = 0;          ///< requests that had to queue
  uint64_t timeouts = 0;       ///< requests abandoned after wait_timeout
  Histogram hold_time;         ///< grant -> release, per lock (microseconds)
  Histogram wait_time;         ///< request -> grant, waiters only
};

/// Dense id of an interned resource name, index into the flat lock table.
using KeyId = uint32_t;

/// One node's lock table.
class LockManager {
 public:
  /// Grant callbacks are move-only small-buffer functions; the resource
  /// manager's largest grant closure (write path: this + txn + key + value +
  /// done) is 112 bytes, so that is the inline capacity.
  using GrantCallback = sim::InlineFunction<112, void(Status)>;

  /// Compatibility constructor for the sim path: owns a SimRuntime adapter
  /// over `ctx`.
  explicit LockManager(sim::SimContext* ctx, std::string node,
                       sim::Time wait_timeout = 10 * sim::kSecond);

  /// Backend-explicit constructor: `rt` supplies the clock and wait-timeout
  /// timers; `ctx` supplies the trace.
  LockManager(runtime::Runtime* rt, sim::SimContext* ctx, std::string node,
              sim::Time wait_timeout = 10 * sim::kSecond);

  /// Interns `key`, returning its dense id. Callers performing several
  /// operations against one key intern once and use the KeyId overloads.
  KeyId InternKey(std::string_view key) {
    ++string_lookups_;
    return interner_.Intern(key);
  }

  /// Requests `mode` on `key` for `txn`. The callback fires with OK on
  /// grant (possibly synchronously, if there is no conflict), or TimedOut
  /// if the wait exceeds the timeout (the caller should abort — this is the
  /// deadlock-resolution policy). Re-requesting a held lock in the same or
  /// weaker mode is a no-op grant; kShared -> kExclusive upgrades wait for
  /// current holders only (see the policy note above).
  void Acquire(uint64_t txn, const std::string& key, LockMode mode,
               GrantCallback done) {
    Acquire(txn, InternKey(key), mode, std::move(done));
  }
  void Acquire(uint64_t txn, KeyId key, LockMode mode, GrantCallback done);

  /// Releases every lock `txn` holds and grants unblocked waiters.
  /// Strict 2PL: called only at transaction end. Walks the per-txn held
  /// list in acquisition order — O(locks held), no hashing.
  void ReleaseAll(uint64_t txn);

  /// True if `txn` currently holds `key` in at least `mode`.
  bool Holds(uint64_t txn, const std::string& key, LockMode mode) const {
    ++string_lookups_;
    KeyId id = interner_.Find(key);
    return id != StringInterner::kNotFound && Holds(txn, id, mode);
  }
  bool Holds(uint64_t txn, KeyId key, LockMode mode) const;

  /// Number of transactions currently waiting (for blocked-work metrics).
  size_t WaiterCount() const;

  /// Number of (txn, key) holds currently granted, across all transactions.
  /// Zero at quiescence — the torture oracle's leaked-lock check.
  size_t HeldLockCount() const {
    size_t n = 0;
    for (const auto& entry : table_) n += entry.holders.size();
    return n;
  }

  const LockStats& stats() const { return stats_; }
  void ResetStats() { stats_ = LockStats{}; }

  const StringInterner& interner() const { return interner_; }

  /// Instrumentation: string->id hash lookups performed (Acquire/Holds by
  /// name, InternKey). The O(held) regression test asserts ReleaseAll adds
  /// none — releases never touch the interner.
  uint64_t string_lookups() const { return string_lookups_; }

 private:
  static constexpr uint32_t kNil = UINT32_MAX;
  // Txn ids below this index a flat vector directly; the simulation hands
  // out dense ids from 1, so the overflow map is for synthetic ids only.
  static constexpr uint64_t kDenseTxnIds = 1ull << 22;

  struct Holder {
    uint64_t txn;
    LockMode mode;
    sim::Time granted_at;
  };
  struct Waiter {
    uint64_t txn;
    LockMode mode;
    GrantCallback done;
    sim::Time queued_at;
    sim::EventId timeout_event;
  };
  struct Entry {
    std::vector<Holder> holders;
    // FIFO: front is index 0. Queues are short (a handful of conflicting
    // txns), so vector beats deque on locality; upgrades insert at front.
    std::vector<Waiter> waiters;
  };
  /// Slab node: one held lock, linked in acquisition order.
  struct HeldNode {
    KeyId key;
    uint32_t next;
  };
  struct HeldList {
    uint32_t head = kNil;
    uint32_t tail = kNil;
    uint32_t count = 0;
  };

  static bool Compatible(LockMode held, LockMode requested) {
    return LockModesCompatible(held, requested);
  }

  Entry& EntryFor(KeyId key) {
    if (key >= table_.size()) {
      size_t want = key + 1;
      if (want < table_.size() * 2) want = table_.size() * 2;
      table_.resize(want);
    }
    return table_[key];
  }
  HeldList& ListFor(uint64_t txn);
  HeldList* FindList(uint64_t txn);

  void AppendHeld(uint64_t txn, KeyId key);
  void TraceGrant(uint64_t txn, KeyId key, LockMode mode);

  /// Grants as many queued waiters as compatibility allows. Re-fetches the
  /// entry after every grant callback — callbacks may re-enter Acquire and
  /// grow the table.
  void PumpWaiters(KeyId key);
  void Grant(KeyId key, Waiter waiter);
  void OnTimeout(uint64_t txn, KeyId key);

  std::unique_ptr<runtime::Runtime> owned_rt_;  ///< compat-ctor SimRuntime
  runtime::Runtime* rt_;
  sim::SimContext* ctx_;  ///< trace only
  std::string node_;
  sim::Time wait_timeout_;
  StringInterner interner_;
  std::vector<Entry> table_;  // indexed by KeyId
  // Per-txn held-lock lists through a shared slab with free-list reuse.
  std::vector<HeldNode> held_slab_;
  std::vector<uint32_t> free_nodes_;
  std::vector<HeldList> held_by_txn_;  // indexed by txn id
  std::unordered_map<uint64_t, HeldList> held_overflow_;
  LockStats stats_;
  mutable uint64_t string_lookups_ = 0;
};

}  // namespace tpc::lock

#endif  // TPC_LOCK_LOCK_MANAGER_H_
