#include "lock/lock_manager.h"

#include <algorithm>

#include "runtime/sim_runtime.h"

#include "util/format.h"
#include "util/logging.h"

namespace tpc::lock {

LockManager::LockManager(sim::SimContext* ctx, std::string node,
                         sim::Time wait_timeout)
    : owned_rt_(std::make_unique<runtime::SimRuntime>(ctx)),
      rt_(owned_rt_.get()),
      ctx_(ctx),
      node_(std::move(node)),
      wait_timeout_(wait_timeout) {}

LockManager::LockManager(runtime::Runtime* rt, sim::SimContext* ctx,
                         std::string node, sim::Time wait_timeout)
    : rt_(rt), ctx_(ctx), node_(std::move(node)), wait_timeout_(wait_timeout) {}

std::string_view LockModeToString(LockMode mode) {
  switch (mode) {
    case LockMode::kIntentShared: return "IS";
    case LockMode::kIntentExclusive: return "IX";
    case LockMode::kShared: return "S";
    case LockMode::kExclusive: return "X";
  }
  return "?";
}

bool LockModesCompatible(LockMode held, LockMode requested) {
  // Standard hierarchical matrix (see the header). Indexed
  // [held][requested]; symmetric.
  static constexpr bool kCompatible[4][4] = {
      /* IS */ {true, true, true, false},
      /* IX */ {true, true, false, false},
      /* S  */ {true, false, true, false},
      /* X  */ {false, false, false, false},
  };
  return kCompatible[static_cast<int>(held)][static_cast<int>(requested)];
}

bool LockModeCovers(LockMode held, LockMode requested) {
  if (held == requested) return true;
  switch (held) {
    case LockMode::kExclusive:
      return true;  // X covers everything
    case LockMode::kShared:
      return requested == LockMode::kIntentShared;
    case LockMode::kIntentExclusive:
      return requested == LockMode::kIntentShared;
    case LockMode::kIntentShared:
      return false;
  }
  return false;
}

LockMode LockModeSupremum(LockMode a, LockMode b) {
  if (LockModeCovers(a, b)) return a;
  if (LockModeCovers(b, a)) return b;
  // The only incomparable pairs are {S, IX} and {S, IS}/{IX, IS} which are
  // ordered; S+IX has no single supremum short of X (no SIX here).
  return LockMode::kExclusive;
}

LockManager::HeldList& LockManager::ListFor(uint64_t txn) {
  if (txn < kDenseTxnIds) {
    if (txn >= held_by_txn_.size()) {
      size_t want = static_cast<size_t>(txn) + 1;
      if (want < held_by_txn_.size() * 2) want = held_by_txn_.size() * 2;
      held_by_txn_.resize(want);
    }
    return held_by_txn_[txn];
  }
  return held_overflow_[txn];
}

LockManager::HeldList* LockManager::FindList(uint64_t txn) {
  if (txn < kDenseTxnIds) {
    return txn < held_by_txn_.size() ? &held_by_txn_[txn] : nullptr;
  }
  auto it = held_overflow_.find(txn);
  return it == held_overflow_.end() ? nullptr : &it->second;
}

void LockManager::AppendHeld(uint64_t txn, KeyId key) {
  uint32_t idx;
  if (!free_nodes_.empty()) {
    idx = free_nodes_.back();
    free_nodes_.pop_back();
  } else {
    idx = static_cast<uint32_t>(held_slab_.size());
    held_slab_.emplace_back();
  }
  held_slab_[idx] = HeldNode{key, kNil};
  HeldList& list = ListFor(txn);
  if (list.tail == kNil) {
    list.head = idx;
  } else {
    held_slab_[list.tail].next = idx;
  }
  list.tail = idx;
  ++list.count;
}

void LockManager::TraceGrant(uint64_t txn, KeyId key, LockMode mode) {
  if (!ctx_->trace().capturing()) return;
  ctx_->trace().Add(
      {rt_->Now(), sim::TraceKind::kLock, node_, "", txn,
       interner_.NameOf(key) + ":" + std::string(LockModeToString(mode))});
}

void LockManager::Acquire(uint64_t txn, KeyId key, LockMode mode,
                          GrantCallback done) {
  Entry& entry = EntryFor(key);

  // Re-entrant requests: covered modes return immediately; otherwise try
  // an in-place upgrade to the supremum of held and requested.
  bool is_upgrade = false;
  for (auto& h : entry.holders) {
    if (h.txn == txn) {
      if (LockModeCovers(h.mode, mode)) {
        done(Status::OK());  // already held strongly enough
        return;
      }
      is_upgrade = true;
      break;
    }
  }
  const LockMode wanted =
      is_upgrade ? [&] {
        for (const auto& h : entry.holders)
          if (h.txn == txn) return LockModeSupremum(h.mode, mode);
        return mode;
      }()
                 : mode;

  const bool no_queue = entry.waiters.empty();
  bool compatible = true;
  for (const auto& h : entry.holders) {
    if (h.txn == txn) continue;  // upgrade: only others matter
    if (!Compatible(h.mode, wanted)) {
      compatible = false;
      break;
    }
  }

  // Grant immediately when compatible with all holders and (to stay fair)
  // nobody is already queued. Upgrades jump the queue — queueing behind a
  // conflicting waiter would deadlock against our own hold.
  if (compatible && (no_queue || is_upgrade)) {
    if (is_upgrade) {
      for (auto& h : entry.holders)
        if (h.txn == txn) h.mode = wanted;
    } else {
      entry.holders.push_back(Holder{txn, mode, rt_->Now()});
      AppendHeld(txn, key);
      TraceGrant(txn, key, mode);
    }
    ++stats_.acquisitions;
    done(Status::OK());
    return;
  }

  // Queue. Upgrades go to the front: they wait only for current holders.
  ++stats_.waits;
  Waiter w;
  w.txn = txn;
  w.mode = wanted;
  w.done = std::move(done);
  w.queued_at = rt_->Now();
  w.timeout_event = rt_->ArmTimer(
      wait_timeout_, [this, key, txn] { OnTimeout(txn, key); });
  if (is_upgrade) {
    entry.waiters.insert(entry.waiters.begin(), std::move(w));
  } else {
    entry.waiters.push_back(std::move(w));
  }
}

void LockManager::OnTimeout(uint64_t txn, KeyId key) {
  Entry& entry = table_[key];
  for (auto it = entry.waiters.begin(); it != entry.waiters.end(); ++it) {
    if (it->txn == txn) {
      GrantCallback cb = std::move(it->done);
      entry.waiters.erase(it);
      ++stats_.timeouts;
      cb(Status::TimedOut("lock wait timeout on " + interner_.NameOf(key)));
      PumpWaiters(key);
      return;
    }
  }
}

void LockManager::Grant(KeyId key, Waiter waiter) {
  rt_->CancelTimer(waiter.timeout_event);
  stats_.wait_time.Add(static_cast<double>(rt_->Now() - waiter.queued_at));
  ++stats_.acquisitions;

  Entry& entry = table_[key];
  bool upgraded = false;
  for (auto& h : entry.holders) {
    if (h.txn == waiter.txn) {
      h.mode = LockModeSupremum(h.mode, waiter.mode);  // queued upgrade
      upgraded = true;
      break;
    }
  }
  if (!upgraded) {
    entry.holders.push_back(Holder{waiter.txn, waiter.mode, rt_->Now()});
    AppendHeld(waiter.txn, key);
    TraceGrant(waiter.txn, key, waiter.mode);
  }
  // Callback last: it may re-enter Acquire and invalidate `entry`.
  waiter.done(Status::OK());
}

void LockManager::PumpWaiters(KeyId key) {
  if (key >= table_.size()) return;
  while (true) {
    // Re-fetch each round: grant callbacks can re-enter Acquire and grow
    // the table, moving entries.
    Entry& entry = table_[key];
    if (entry.waiters.empty()) break;
    Waiter& next = entry.waiters.front();
    bool compatible = true;
    for (const auto& h : entry.holders) {
      if (h.txn == next.txn) continue;
      if (!Compatible(h.mode, next.mode)) {
        compatible = false;
        break;
      }
    }
    if (!compatible) break;
    Waiter w = std::move(next);
    entry.waiters.erase(entry.waiters.begin());
    Grant(key, std::move(w));
  }
}

void LockManager::ReleaseAll(uint64_t txn) {
  HeldList* list_slot = FindList(txn);
  if (list_slot == nullptr || list_slot->head == kNil) return;
  // Detach the list up front so re-entrant releases (from grant callbacks)
  // see it empty, mirroring the map-erase in the seed implementation.
  HeldList list = *list_slot;
  *list_slot = HeldList{};

  if (ctx_->trace().capturing()) {
    ctx_->trace().Add({rt_->Now(), sim::TraceKind::kUnlock, node_, "", txn,
                       StringPrintf("%zu locks", size_t{list.count})});
  }
  uint32_t idx = list.head;
  while (idx != kNil) {
    // Copy the node and recycle its slot before any callback runs: grant
    // callbacks may Acquire and take nodes from the free list.
    HeldNode node = held_slab_[idx];
    free_nodes_.push_back(idx);
    Entry& entry = table_[node.key];
    for (auto h = entry.holders.begin(); h != entry.holders.end(); ++h) {
      if (h->txn == txn) {
        stats_.hold_time.Add(static_cast<double>(rt_->Now() - h->granted_at));
        entry.holders.erase(h);
        break;
      }
    }
    PumpWaiters(node.key);
    idx = node.next;
  }
}

bool LockManager::Holds(uint64_t txn, KeyId key, LockMode mode) const {
  if (key >= table_.size()) return false;
  for (const auto& h : table_[key].holders) {
    if (h.txn == txn) return LockModeCovers(h.mode, mode);
  }
  return false;
}

size_t LockManager::WaiterCount() const {
  size_t n = 0;
  for (const auto& entry : table_) n += entry.waiters.size();
  return n;
}

}  // namespace tpc::lock
