// Local resource manager (LRM) interface.
//
// LRMs (database/file managers in the paper's terminology) own local
// resources only; a transaction manager drives them through the two phases.
// Votes carry the protocol attributes the paper's optimizations negotiate:
// read-only, reliable (vote-reliable optimization), and OK-to-leave-out.

#ifndef TPC_RM_RESOURCE_MANAGER_H_
#define TPC_RM_RESOURCE_MANAGER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "util/status.h"

namespace tpc::rm {

/// A participant's phase-one vote.
enum class Vote : uint8_t {
  kYes,       ///< prepared; can commit or abort on command
  kNo,        ///< cannot prepare; transaction must abort
  kReadOnly,  ///< performed no updates; outcome is irrelevant to it
};

std::string_view VoteToString(Vote vote);

/// Vote plus the negotiated attributes riding on a YES vote.
struct VoteInfo {
  Vote vote = Vote::kNo;
  /// Vote-reliable: heuristic decisions are (near) impossible here, so the
  /// coordinator may use early-acknowledgment semantics.
  bool reliable = false;
  /// OK_TO_LEAVE_OUT: the resource will stay suspended until its services
  /// are requested again, so it may be omitted from later transactions.
  bool ok_to_leave_out = false;
};

/// Interface the transaction manager drives during commit processing.
class ResourceManager {
 public:
  using VoteCallback = std::function<void(VoteInfo)>;
  using DoneCallback = std::function<void(Status)>;

  virtual ~ResourceManager() = default;

  /// Stable identifier, used as the log owner tag.
  virtual const std::string& name() const = 0;

  /// Phase one. The callback fires once the vote is durable (YES requires
  /// the prepared state to survive a crash).
  virtual void Prepare(uint64_t txn, VoteCallback done) = 0;

  /// Phase two, commit outcome. Callback fires when locally committed.
  virtual void Commit(uint64_t txn, DoneCallback done) = 0;

  /// Phase two, abort outcome (also used before any prepare).
  virtual void Abort(uint64_t txn, DoneCallback done) = 0;

  /// Called instead of phase two when this RM voted read-only: the
  /// transaction is over for it and locks may be released.
  virtual void EndReadOnly(uint64_t txn) = 0;

  /// True if the RM performed updates for `txn` (drives read-only voting).
  virtual bool HasUpdates(uint64_t txn) const = 0;
};

}  // namespace tpc::rm

#endif  // TPC_RM_RESOURCE_MANAGER_H_
