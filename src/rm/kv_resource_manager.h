// Key-value resource manager: a small transactional store that plays the
// LRM role — strict 2PL through a LockManager, undo/redo logging through a
// LogManager, real prepare/commit/abort/recovery.
//
// Logging policy (the shared-log optimization, Section 4 "Sharing the Log"):
// when `shared_log_with_tm` is set, the RM writes its prepared and committed
// records *non-forced*. This is sound because the records go to the same log
// the TM forces: the TM's forced prepared/committed records are appended
// after the RM's and a log force covers every earlier record. Recovery then
// reasons exactly as the paper describes — a lost RM prepared record implies
// the TM never voted/committed, a lost RM committed record is re-derivable
// from the TM's committed record.

#ifndef TPC_RM_KV_RESOURCE_MANAGER_H_
#define TPC_RM_KV_RESOURCE_MANAGER_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lock/lock_manager.h"
#include "rm/resource_manager.h"
#include "runtime/runtime.h"
#include "sim/sim_context.h"
#include "util/result.h"
#include "wal/log_manager.h"

namespace tpc::rm {

/// Construction options.
struct KVOptions {
  /// Advertised on YES votes: heuristic decisions effectively impossible.
  bool reliable = false;
  /// Advertised on YES votes: may be suspended / left out of later 2PCs.
  bool ok_to_leave_out = false;
  /// Shared-log optimization: prepared/committed records are not forced.
  bool shared_log_with_tm = false;
  /// Lock-wait deadlock timeout.
  sim::Time lock_timeout = 10 * sim::kSecond;
};

/// Transactional key-value store.
class KVResourceManager : public ResourceManager {
 public:
  using ReadCallback = std::function<void(Result<std::string>)>;
  using WriteCallback = std::function<void(Status)>;

  /// `log` is the node's WAL (shared with the TM when the shared-log
  /// optimization is on, which is also the common single-log deployment).
  /// The sim-path compatibility constructor builds the lock manager on a
  /// SimRuntime over `ctx`.
  KVResourceManager(sim::SimContext* ctx, std::string name,
                    wal::LogManager* log, KVOptions options = {});

  /// Backend-explicit constructor: `rt` drives the lock manager's clock and
  /// wait-timeout timers; `ctx` supplies the trace and failure injector.
  KVResourceManager(runtime::Runtime* rt, sim::SimContext* ctx,
                    std::string name, wal::LogManager* log,
                    KVOptions options = {});

  const std::string& name() const override { return name_; }

  // --- transactional data operations -------------------------------------
  // Keys are views so callers can address bytes parsed straight out of a
  // delivered network payload; the RM copies a key exactly once (into the
  // deferred lock-grant capture), never per call layer.

  /// Reads `key` under a shared lock. NotFound if absent.
  void Read(uint64_t txn, std::string_view key, ReadCallback done);

  /// Writes `key` under an exclusive lock; undo/redo is logged (non-forced).
  void Write(uint64_t txn, std::string_view key, std::string value,
             WriteCallback done);

  /// Scans every key with the given prefix under a store-level shared lock
  /// (hierarchical locking: readers/writers of individual keys take IS/IX
  /// on the store, so a scan waits out all writers and blocks new ones
  /// until the transaction ends).
  using ScanCallback =
      std::function<void(Result<std::vector<std::pair<std::string, std::string>>>)>;
  void Scan(uint64_t txn, std::string_view prefix, ScanCallback done);

  // --- commit protocol ----------------------------------------------------

  void Prepare(uint64_t txn, VoteCallback done) override;
  void Commit(uint64_t txn, DoneCallback done) override;
  void Abort(uint64_t txn, DoneCallback done) override;
  void EndReadOnly(uint64_t txn) override;
  bool HasUpdates(uint64_t txn) const override;

  // --- failure & recovery --------------------------------------------------

  /// Wipes volatile state (store image, active transactions, locks).
  void Crash();

  /// Rebuilds the store from the given durable log records (the node's
  /// recovery pass hands each RM the records it owns). Returns the
  /// transactions left in doubt (prepared, outcome unknown): the TM must
  /// resolve each via ResolveRecovered().
  std::vector<uint64_t> Recover(const std::vector<wal::LogRecord>& records);

  /// Applies the outcome for a transaction reported in doubt by Recover().
  void ResolveRecovered(uint64_t txn, bool commit);

  // --- introspection -------------------------------------------------------

  /// Committed value lookup outside any transaction (tests/verification).
  Result<std::string> Peek(std::string_view key) const;

  /// Full committed-store snapshot (oracle/verification use only).
  const std::map<std::string, std::string, std::less<>>& store() const {
    return store_;
  }

  /// Writes a checkpoint record (a full store snapshot) to the log,
  /// forced. Requires no active transactions (returns FailedPrecondition
  /// otherwise). `done` receives the checkpoint record's LSN: records
  /// before it are no longer needed to recover this RM.
  Status Checkpoint(std::function<void(wal::Lsn)> done);

  /// Number of transactions with live state (for checkpoint safety).
  size_t ActiveCount() const { return active_.size(); }

  /// Makes the next Prepare() vote NO (fault injection for abort paths).
  void FailNextPrepare() { fail_next_prepare_ = true; }

  /// Registers this RM's crash points (`rm.before_prepared_log` etc., see
  /// tm/crash_points.h) with the failure injector under `node`'s identity:
  /// an armed point crashes the whole node mid-call, exactly as a machine
  /// failure between two log writes would. Called by the harness; until
  /// then the points are never consulted.
  void EnableCrashPoints(const std::string& node);

  lock::LockManager& locks() { return locks_; }
  const KVOptions& options() const { return options_; }
  /// True while the RM holds prepared state for `txn`.
  bool InDoubt(uint64_t txn) const;

 private:
  struct Update {
    std::string key;
    std::string old_value;
    bool had_old = false;
    std::string new_value;
  };
  struct TxnState {
    std::vector<Update> updates;
    bool prepared = false;
    /// Rebuilt by Recover(): updates are redo images not yet applied to the
    /// store, so Commit must apply them and Abort must not undo them.
    bool recovered = false;
  };

  void DoWrite(uint64_t txn, std::string_view key, std::string value,
               WriteCallback done);
  void LogUpdate(uint64_t txn, const Update& update);
  void ApplyUndo(const TxnState& state);

  /// True means the node crashed inside this call: unwind without invoking
  /// any callback. `point` indexes tm::kRmCrashPoints.
  bool CrashHere(size_t point);

  sim::SimContext* ctx_;
  std::string name_;
  wal::LogManager* log_;
  KVOptions options_;
  lock::LockManager locks_;
  lock::KeyId store_lock_id_;  ///< interned once; refreshed on Crash()
  // Transparent comparator: lookups by string_view probe without building a
  // temporary key string.
  std::map<std::string, std::string, std::less<>> store_;
  std::unordered_map<uint64_t, TxnState> active_;
  bool fail_next_prepare_ = false;

  // Crash-point interning (EnableCrashPoints); disabled by default.
  bool fi_armed_ = false;
  uint32_t fi_node_ = 0;
  std::array<uint32_t, 6> fi_points_{};
};

}  // namespace tpc::rm

#endif  // TPC_RM_KV_RESOURCE_MANAGER_H_
