#include "rm/kv_resource_manager.h"

#include <memory>
#include <utility>

#include "tm/crash_points.h"
#include "util/binary_io.h"
#include "util/logging.h"

namespace tpc::rm {
namespace {

// Indices into tm::kRmCrashPoints (and fi_points_).
enum RmCrashIdx : size_t {
  kBeforePreparedLog = 0,
  kAfterPreparedLog = 1,
  kBeforeCommittedLog = 2,
  kAfterCommittedLog = 3,
  kBeforeAbortLog = 4,
  kAfterAbortLog = 5,
};

std::string EncodeUpdateBody(const std::string& key, const std::string& old_value,
                             bool had_old, const std::string& new_value) {
  Encoder enc;
  enc.PutString(key);
  enc.PutString(old_value);
  enc.PutBool(had_old);
  enc.PutString(new_value);
  return enc.Release();
}

Status DecodeUpdateBody(std::string_view body, std::string* key,
                        std::string* old_value, bool* had_old,
                        std::string* new_value) {
  Decoder dec(body);
  TPC_RETURN_IF_ERROR(dec.GetString(key));
  TPC_RETURN_IF_ERROR(dec.GetString(old_value));
  TPC_RETURN_IF_ERROR(dec.GetBool(had_old));
  TPC_RETURN_IF_ERROR(dec.GetString(new_value));
  return Status::OK();
}

// The container resource for hierarchical (intent) locking. The name uses
// a control character so it cannot collide with user keys.
const char kStoreLock[] = "\x01store";

}  // namespace

std::string_view VoteToString(Vote vote) {
  switch (vote) {
    case Vote::kYes: return "YES";
    case Vote::kNo: return "NO";
    case Vote::kReadOnly: return "READ-ONLY";
  }
  return "?";
}

KVResourceManager::KVResourceManager(sim::SimContext* ctx, std::string name,
                                     wal::LogManager* log, KVOptions options)
    : ctx_(ctx),
      name_(std::move(name)),
      log_(log),
      options_(options),
      locks_(ctx, name_, options.lock_timeout),
      store_lock_id_(locks_.InternKey(kStoreLock)) {}

KVResourceManager::KVResourceManager(runtime::Runtime* rt,
                                     sim::SimContext* ctx, std::string name,
                                     wal::LogManager* log, KVOptions options)
    : ctx_(ctx),
      name_(std::move(name)),
      log_(log),
      options_(options),
      locks_(rt, ctx, name_, options.lock_timeout),
      store_lock_id_(locks_.InternKey(kStoreLock)) {}

void KVResourceManager::EnableCrashPoints(const std::string& node) {
  fi_node_ = ctx_->failures().InternNode(node);
  for (size_t i = 0; i < tm::kRmCrashPointCount; ++i)
    fi_points_[i] = ctx_->failures().InternPoint(tm::kRmCrashPoints[i]);
  fi_armed_ = true;
}

bool KVResourceManager::CrashHere(size_t point) {
  if (!fi_armed_) return false;
  return ctx_->failures().CrashPoint(fi_node_, fi_points_[point]);
}

void KVResourceManager::Read(uint64_t txn, std::string_view key,
                             ReadCallback done) {
  // Lock grants can be deferred (waits), so the capture owns the key.
  locks_.Acquire(txn, store_lock_id_, lock::LockMode::kIntentShared,
                 [this, txn, key = std::string(key),
                  done = std::move(done)](Status st) mutable {
    if (!st.ok()) {
      done(std::move(st));
      return;
    }
    // Intern once; the grant path then works entirely in dense ids.
    locks_.Acquire(txn, locks_.InternKey(key), lock::LockMode::kShared,
                   [this, key = std::move(key), done = std::move(done)](Status st) {
      if (!st.ok()) {
        done(std::move(st));
        return;
      }
      auto it = store_.find(key);
      if (it == store_.end()) {
        done(Status::NotFound("no such key: " + key));
      } else {
        done(it->second);
      }
    });
  });
}

void KVResourceManager::Scan(uint64_t txn, std::string_view prefix,
                             ScanCallback done) {
  locks_.Acquire(txn, store_lock_id_, lock::LockMode::kShared,
                 [this, prefix = std::string(prefix),
                  done = std::move(done)](Status st) {
    if (!st.ok()) {
      done(std::move(st));
      return;
    }
    std::vector<std::pair<std::string, std::string>> rows;
    for (auto it = store_.lower_bound(prefix); it != store_.end(); ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      rows.emplace_back(it->first, it->second);
    }
    done(std::move(rows));
  });
}

void KVResourceManager::Write(uint64_t txn, std::string_view key,
                              std::string value, WriteCallback done) {
  locks_.Acquire(txn, store_lock_id_, lock::LockMode::kIntentExclusive,
                 [this, txn, key = std::string(key), value = std::move(value),
                  done = std::move(done)](Status st) mutable {
    if (!st.ok()) {
      done(std::move(st));
      return;
    }
    DoWrite(txn, key, std::move(value), std::move(done));
  });
}

void KVResourceManager::DoWrite(uint64_t txn, std::string_view key,
                                std::string value, WriteCallback done) {
  locks_.Acquire(txn, locks_.InternKey(key), lock::LockMode::kExclusive,
                 [this, txn, key = std::string(key), value = std::move(value),
                  done = std::move(done)](Status st) mutable {
    if (!st.ok()) {
      done(std::move(st));
      return;
    }
    TxnState& state = active_[txn];
    TPC_CHECK(!state.prepared);  // strict 2PC: no updates after prepare
    Update update;
    update.key = key;
    auto it = store_.find(key);
    update.had_old = it != store_.end();
    if (update.had_old) update.old_value = it->second;
    update.new_value = value;
    LogUpdate(txn, update);
    store_[key] = std::move(value);
    state.updates.push_back(std::move(update));
    done(Status::OK());
  });
}

void KVResourceManager::LogUpdate(uint64_t txn, const Update& update) {
  wal::LogRecord rec;
  rec.type = wal::RecordType::kRmUpdate;
  rec.txn = txn;
  rec.owner = name_;
  rec.body = EncodeUpdateBody(update.key, update.old_value, update.had_old,
                              update.new_value);
  log_->Append(rec, /*force=*/false);
}

void KVResourceManager::Prepare(uint64_t txn, VoteCallback done) {
  if (fail_next_prepare_) {
    fail_next_prepare_ = false;
    VoteInfo info;
    info.vote = Vote::kNo;
    done(info);
    return;
  }
  auto it = active_.find(txn);
  if (it == active_.end() || it->second.updates.empty()) {
    // No updates: read-only vote. (Early lock release — the serialization
    // hazard the paper warns about — is the caller's decision via
    // EndReadOnly.)
    VoteInfo info;
    info.vote = Vote::kReadOnly;
    info.reliable = options_.reliable;
    info.ok_to_leave_out = options_.ok_to_leave_out;
    done(info);
    return;
  }
  if (CrashHere(kBeforePreparedLog)) return;
  it->second.prepared = true;
  wal::LogRecord rec;
  rec.type = wal::RecordType::kRmPrepared;
  rec.txn = txn;
  rec.owner = name_;
  const bool force = !options_.shared_log_with_tm;
  log_->Append(rec, force, [this, done = std::move(done)] {
    if (CrashHere(kAfterPreparedLog)) return;
    VoteInfo info;
    info.vote = Vote::kYes;
    info.reliable = options_.reliable;
    info.ok_to_leave_out = options_.ok_to_leave_out;
    done(info);
  });
}

void KVResourceManager::Commit(uint64_t txn, DoneCallback done) {
  auto it = active_.find(txn);
  if (it == active_.end()) {
    done(Status::OK());  // nothing local (e.g. read-only already ended)
    return;
  }
  if (CrashHere(kBeforeCommittedLog)) return;
  if (it->second.recovered) {
    // Recovered in-doubt transaction: the redo phase skipped its updates
    // because the outcome was unknown; apply them now.
    for (const auto& u : it->second.updates) store_[u.key] = u.new_value;
  }
  wal::LogRecord rec;
  rec.type = wal::RecordType::kRmCommitted;
  rec.txn = txn;
  rec.owner = name_;
  const bool force = !options_.shared_log_with_tm;
  log_->Append(rec, force, [this, txn, done = std::move(done)] {
    if (CrashHere(kAfterCommittedLog)) return;
    active_.erase(txn);
    locks_.ReleaseAll(txn);
    done(Status::OK());
  });
}

void KVResourceManager::Abort(uint64_t txn, DoneCallback done) {
  auto it = active_.find(txn);
  if (it == active_.end()) {
    done(Status::OK());
    return;
  }
  if (CrashHere(kBeforeAbortLog)) return;
  if (!it->second.recovered) ApplyUndo(it->second);
  wal::LogRecord rec;
  rec.type = wal::RecordType::kRmAborted;
  rec.txn = txn;
  rec.owner = name_;
  // Presumed-abort reasoning: losing an abort record is harmless (recovery
  // re-derives abort), so it is never forced.
  log_->Append(rec, /*force=*/false);
  if (CrashHere(kAfterAbortLog)) return;
  active_.erase(it);
  locks_.ReleaseAll(txn);
  done(Status::OK());
}

void KVResourceManager::EndReadOnly(uint64_t txn) {
  active_.erase(txn);
  locks_.ReleaseAll(txn);
}

bool KVResourceManager::HasUpdates(uint64_t txn) const {
  auto it = active_.find(txn);
  return it != active_.end() && !it->second.updates.empty();
}

void KVResourceManager::ApplyUndo(const TxnState& state) {
  for (auto it = state.updates.rbegin(); it != state.updates.rend(); ++it) {
    if (it->had_old) {
      store_[it->key] = it->old_value;
    } else {
      store_.erase(it->key);
    }
  }
}

void KVResourceManager::Crash() {
  store_.clear();
  active_.clear();
  locks_ = lock::LockManager(ctx_, name_, options_.lock_timeout);
  store_lock_id_ = locks_.InternKey(kStoreLock);
}

std::vector<uint64_t> KVResourceManager::Recover(
    const std::vector<wal::LogRecord>& records) {
  struct RecoveredTxn {
    std::vector<Update> updates;
    bool prepared = false;
    bool committed = false;
    bool aborted = false;
    size_t first_seen = 0;  // log order for deterministic redo
  };
  std::unordered_map<uint64_t, RecoveredTxn> txns;
  std::vector<uint64_t> order;  // txn ids in first-appearance order

  for (const auto& rec : records) {
    if (rec.owner != name_) continue;
    if (rec.type == wal::RecordType::kCheckpoint) {
      // Snapshot: everything earlier is superseded (checkpoints are only
      // taken with no transactions in flight).
      store_.clear();
      txns.clear();
      order.clear();
      Decoder dec(rec.body);
      uint64_t n = 0;
      TPC_CHECK_OK(dec.GetVarint(&n));
      for (uint64_t i = 0; i < n; ++i) {
        std::string key, value;
        TPC_CHECK_OK(dec.GetString(&key));
        TPC_CHECK_OK(dec.GetString(&value));
        store_[key] = std::move(value);
      }
      continue;
    }
    auto [it, inserted] = txns.try_emplace(rec.txn);
    if (inserted) order.push_back(rec.txn);
    RecoveredTxn& t = it->second;
    switch (rec.type) {
      case wal::RecordType::kRmUpdate: {
        Update u;
        TPC_CHECK_OK(DecodeUpdateBody(rec.body, &u.key, &u.old_value,
                                      &u.had_old, &u.new_value));
        t.updates.push_back(std::move(u));
        break;
      }
      case wal::RecordType::kRmPrepared: t.prepared = true; break;
      case wal::RecordType::kRmCommitted: t.committed = true; break;
      case wal::RecordType::kRmAborted: t.aborted = true; break;
      default: break;
    }
  }

  // Redo phase: committed transactions' updates, in log order.
  for (uint64_t id : order) {
    const RecoveredTxn& t = txns[id];
    if (!t.committed) continue;
    for (const auto& u : t.updates) store_[u.key] = u.new_value;
  }

  // In-doubt: prepared, unresolved. Re-acquire exclusive locks and keep the
  // redo images until the TM resolves the outcome.
  std::vector<uint64_t> in_doubt;
  for (uint64_t id : order) {
    RecoveredTxn& t = txns[id];
    if (!t.prepared || t.committed || t.aborted) continue;
    in_doubt.push_back(id);
    TxnState state;
    state.prepared = true;
    state.recovered = true;
    state.updates = std::move(t.updates);
    for (const auto& u : state.updates) {
      locks_.Acquire(id, u.key, lock::LockMode::kExclusive, [](Status st) {
        TPC_CHECK(st.ok());  // fresh lock table: grants are immediate
      });
    }
    active_[id] = std::move(state);
  }
  return in_doubt;
}

void KVResourceManager::ResolveRecovered(uint64_t txn, bool commit) {
  auto it = active_.find(txn);
  TPC_CHECK(it != active_.end());
  if (commit) {
    // Updates were not re-applied during redo (outcome was unknown): apply
    // them now, then write the committed record.
    for (const auto& u : it->second.updates) store_[u.key] = u.new_value;
    wal::LogRecord rec;
    rec.type = wal::RecordType::kRmCommitted;
    rec.txn = txn;
    rec.owner = name_;
    log_->Append(rec, !options_.shared_log_with_tm);
  } else {
    wal::LogRecord rec;
    rec.type = wal::RecordType::kRmAborted;
    rec.txn = txn;
    rec.owner = name_;
    log_->Append(rec, /*force=*/false);
  }
  active_.erase(it);
  locks_.ReleaseAll(txn);
}

Status KVResourceManager::Checkpoint(std::function<void(wal::Lsn)> done) {
  if (!active_.empty())
    return Status::FailedPrecondition(name_ + ": transactions in flight");
  Encoder enc;
  enc.PutVarint(store_.size());
  for (const auto& [key, value] : store_) {
    enc.PutString(key);
    enc.PutString(value);
  }
  wal::LogRecord rec;
  rec.type = wal::RecordType::kCheckpoint;
  rec.txn = 0;
  rec.owner = name_;
  rec.body = enc.Release();
  auto lsn_holder = std::make_shared<wal::Lsn>(0);
  wal::Lsn lsn = log_->Append(rec, /*force=*/true,
                              [lsn_holder, done = std::move(done)] {
    done(*lsn_holder);
  });
  // Forced-append completion is always asynchronous (device I/O), so the
  // holder is filled before the callback can run.
  *lsn_holder = lsn;
  return Status::OK();
}

Result<std::string> KVResourceManager::Peek(std::string_view key) const {
  auto it = store_.find(key);
  if (it == store_.end())
    return Status::NotFound("no such key: " + std::string(key));
  return it->second;
}

bool KVResourceManager::InDoubt(uint64_t txn) const {
  auto it = active_.find(txn);
  return it != active_.end() && it->second.prepared;
}

}  // namespace tpc::rm
