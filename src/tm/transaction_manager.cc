#include "tm/transaction_manager.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <utility>

#include "runtime/sim_runtime.h"
#include "util/binary_io.h"
#include "util/format.h"
#include "util/logging.h"

namespace tpc::tm {
namespace {

// Body shared by the TM protocol records. Children are the peers a decision
// must reach during recovery; upstream is where acknowledgments (or
// inquiries) go.
struct TmRecordBody {
  std::string upstream;  // empty at the root
  bool is_root = false;
  bool heur_commit = false;  // kTmHeuristic only
  std::vector<std::string> children;
  /// Paxos Commit: the full cohort, persisted in the prepared record so a
  /// recovered participant can lead a takeover. Empty for other protocols.
  std::vector<std::string> cohort;
};

std::string EncodeBody(const TmRecordBody& body) {
  Encoder enc;
  enc.PutString(body.upstream);
  enc.PutBool(body.is_root);
  enc.PutBool(body.heur_commit);
  enc.PutVarint(body.children.size());
  for (const auto& c : body.children) enc.PutString(c);
  enc.PutVarint(body.cohort.size());
  for (const auto& c : body.cohort) enc.PutString(c);
  return enc.Release();
}

Status DecodeBody(std::string_view data, TmRecordBody* body) {
  Decoder dec(data);
  TPC_RETURN_IF_ERROR(dec.GetString(&body->upstream));
  TPC_RETURN_IF_ERROR(dec.GetBool(&body->is_root));
  TPC_RETURN_IF_ERROR(dec.GetBool(&body->heur_commit));
  uint64_t n = 0;
  TPC_RETURN_IF_ERROR(dec.GetVarint(&n));
  body->children.resize(n);
  for (uint64_t i = 0; i < n; ++i)
    TPC_RETURN_IF_ERROR(dec.GetString(&body->children[i]));
  TPC_RETURN_IF_ERROR(dec.GetVarint(&n));
  body->cohort.resize(n);
  for (uint64_t i = 0; i < n; ++i)
    TPC_RETURN_IF_ERROR(dec.GetString(&body->cohort[i]));
  return Status::OK();
}

}  // namespace

TransactionManager::TransactionManager(sim::SimContext* ctx,
                                       net::Transport* network,
                                       wal::LogManager* log, std::string name,
                                       TmConfig config)
    : owned_rt_(std::make_unique<runtime::SimRuntime>(ctx)),
      rt_(owned_rt_.get()),
      ctx_(ctx),
      network_(network),
      log_(log),
      name_(std::move(name)),
      config_(config) {
  Init();
}

TransactionManager::TransactionManager(runtime::Runtime* rt,
                                       sim::SimContext* ctx,
                                       net::Transport* network,
                                       wal::LogManager* log, std::string name,
                                       TmConfig config)
    : rt_(rt),
      ctx_(ctx),
      network_(network),
      log_(log),
      name_(std::move(name)),
      config_(config) {
  Init();
}

void TransactionManager::Init() {
  network_->Register(name_, this);
  self_id_ = network_->InternId(name_);
  // Intern the full crash-point catalog once; hot-path hits are then flat
  // array increments in the injector, no string work.
  sim::FailureInjector& failures = ctx_->failures();
  fi_node_ = failures.InternNode(name_);
  for (size_t i = 0; i < kCrashPointCount; ++i)
    fi_points_[i] = failures.InternPoint(kCrashPointNames[i]);
  fi_legacy_prepared_ = failures.InternPoint("after_prepared_force");
  fi_legacy_commit_ = failures.InternPoint("after_commit_force");
}

void TransactionManager::AttachRm(rm::KVResourceManager* rm) {
  rms_.push_back(rm);
}

void TransactionManager::Connect(const net::NodeId& peer,
                                 SessionOptions options) {
  SessionSlot(peer).options = options;
}

// ---------------------------------------------------------------------------
// Plumbing
// ---------------------------------------------------------------------------

TransactionManager::TxnMeta& TransactionManager::MetaSlot(uint64_t id) {
  // May rehash: callers use the reference transiently, never across another
  // MetaSlot/GetOrCreateTxn call.
  return txn_meta_.GetOrCreate(id);
}

const TransactionManager::TxnMeta* TransactionManager::FindMeta(
    uint64_t id) const {
  return txn_meta_.Find(id);
}

TransactionManager::Txn& TransactionManager::GetOrCreateTxn(uint64_t id) {
  TxnMeta& meta = MetaSlot(id);
  if (meta.slot != kNoSlot) return txn_slab_[meta.slot];
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(txn_slab_.size());
    txn_slab_.emplace_back();
  }
  meta.slot = slot;
  ++live_txns_;
  Txn& txn = txn_slab_[slot];
  txn.id = id;
  txn.in_use = true;
  return txn;
}

TransactionManager::Txn* TransactionManager::FindTxn(uint64_t id) {
  const TxnMeta* meta = FindMeta(id);
  if (meta == nullptr || meta->slot == kNoSlot) return nullptr;
  return &txn_slab_[meta->slot];
}

const TransactionManager::Txn* TransactionManager::FindTxn(uint64_t id) const {
  const TxnMeta* meta = FindMeta(id);
  if (meta == nullptr || meta->slot == kNoSlot) return nullptr;
  return &txn_slab_[meta->slot];
}

TransactionManager::Session* TransactionManager::FindSession(
    const net::NodeId& peer) {
  const uint32_t sid = network_->IdOf(peer);
  if (sid == net::Transport::kNoId) return nullptr;
  return FindSessionById(sid);
}

TransactionManager::Session* TransactionManager::FindSessionById(uint32_t sid) {
  const auto it =
      std::lower_bound(session_ids_.begin(), session_ids_.end(), sid);
  if (it == session_ids_.end() || *it != sid) return nullptr;
  return &sessions_[session_slots_[it - session_ids_.begin()]];
}

TransactionManager::Session& TransactionManager::SessionSlot(
    const net::NodeId& peer) {
  const uint32_t sid = network_->InternId(peer);
  if (Session* existing = FindSessionById(sid)) return *existing;
  const uint32_t slot = static_cast<uint32_t>(sessions_.size());
  sessions_.emplace_back();
  sessions_.back().peer_id = sid;
  const auto it =
      std::lower_bound(session_ids_.begin(), session_ids_.end(), sid);
  session_slots_.insert(session_slots_.begin() + (it - session_ids_.begin()),
                        slot);
  session_ids_.insert(it, sid);
  RebuildSessionOrder();
  return sessions_.back();
}

void TransactionManager::RebuildSessionOrder() {
  session_order_.clear();
  for (uint32_t slot = 0; slot < sessions_.size(); ++slot)
    session_order_.push_back(slot);
  std::sort(session_order_.begin(), session_order_.end(),
            [this](uint32_t a, uint32_t b) {
              return network_->NameOf(sessions_[a].peer_id) <
                     network_->NameOf(sessions_[b].peer_id);
            });
}

void TransactionManager::AddPeer(Txn& txn, const net::NodeId& peer) {
  auto it = std::lower_bound(txn.peers.begin(), txn.peers.end(), peer);
  if (it == txn.peers.end() || *it != peer) txn.peers.insert(it, peer);
}

bool TransactionManager::HasPeer(const Txn& txn, const net::NodeId& peer) {
  return std::binary_search(txn.peers.begin(), txn.peers.end(), peer);
}

void TransactionManager::SendPdu(const net::NodeId& peer, Pdu pdu,
                                 std::string_view app_data) {
  TPC_CHECK(up_);
  const uint32_t sid = network_->IdOf(peer);
  TPC_CHECK(sid != net::Transport::kNoId);
  Session* session_ptr = FindSessionById(sid);
  TPC_CHECK(session_ptr != nullptr);
  Session& session = *session_ptr;

  const bool protocol_flow = pdu.type != PduType::kAppData;
  const uint64_t primary_txn = pdu.txn;

  // Flow accounting: a message whose primary PDU is protocol traffic counts
  // as one commit flow against that transaction. Piggybacked PDUs and app
  // data ride for free (the packet exists anyway) — this matches how the
  // paper credits the long-locks and implied-ack savings.
  if (protocol_flow) ++MetaSlot(primary_txn).cost.flows_sent;

  if (config_.legacy_string_messaging) {
    // Frozen seed path, kept as the commit_bench baseline: PDU vector,
    // EncodePdus temporary, by-name message. Same bytes on the wire.
    std::vector<Pdu> pdus;
    if (!session.outbox.empty()) {
      pdus = std::move(session.outbox);
      session.outbox.clear();
    }
    pdus.push_back(std::move(pdu));
    // The seed path owns every byte it ships: app data lands in Pdu::data
    // before encoding, exactly as the pre-pooling SendWork materialized it.
    if (!app_data.empty()) pdus.back().data.assign(app_data);
    net::LegacyMessage msg;
    msg.from = name_;
    msg.to = peer;
    msg.kind = net::MsgKind::kPdu;
    if (network_->tracing()) msg.trace_tag = DescribePdus(pdus);
    msg.txn = primary_txn;
    msg.payload = EncodePdus(pdus);
    TPC_CHECK_OK(network_->SendLegacy(std::move(msg)));
    return;
  }

  net::Message msg;
  msg.from = self_id_;
  msg.to = sid;
  msg.kind = net::MsgKind::kPdu;
  msg.txn = primary_txn;
  msg.payload = network_->AcquirePayload();
  std::string& buf = network_->PayloadBuffer(msg.payload);
  PduWriter writer(&buf);
  // Piggyback anything buffered for this peer (long-locks acks, deferred
  // last-agent decisions) — that is the whole point of the buffering.
  for (const Pdu& buffered : session.outbox) writer.Append(buffered);
  session.outbox.clear();
  if (app_data.empty()) {
    writer.Append(pdu);
  } else {
    writer.Append(pdu, app_data);  // app bytes go view -> buffer, copy-free
  }
  // The describe tag exists only for traces; skip building it when tracing
  // is off.
  if (network_->tracing()) DescribePayload(buf, &msg.trace_tag);
  TPC_CHECK_OK(network_->Send(std::move(msg)));
}

void TransactionManager::BufferPdu(const net::NodeId& peer, Pdu pdu) {
  Session* session = FindSession(peer);
  TPC_CHECK(session != nullptr);
  session->outbox.push_back(std::move(pdu));
}

void TransactionManager::AppendTmRecord(uint64_t txn, wal::RecordType type,
                                        bool force, std::string body,
                                        std::function<void()> done) {
  TxnCost& cost = MetaSlot(txn).cost;
  ++cost.tm_log_writes;
  if (force) ++cost.tm_log_forced;
  wal::LogRecord rec;
  rec.type = type;
  rec.txn = txn;
  rec.owner = name_ + ".tm";
  rec.body = std::move(body);
  if (!done) {
    log_->Append(rec, force);
    return;
  }
  const uint64_t epoch = epoch_;
  log_->Append(rec, force, [this, epoch, done = std::move(done)] {
    if (up_ && epoch == epoch_) done();
  });
}

// ---------------------------------------------------------------------------
// Application interface
// ---------------------------------------------------------------------------

uint64_t TransactionManager::Begin() {
  uint64_t id = rt_->NextTxnId();
  GetOrCreateTxn(id);
  return id;
}

Status TransactionManager::SendWork(uint64_t txn_id, const net::NodeId& peer,
                                    std::string_view payload) {
  if (!up_) return Status::Unavailable(name_ + " is down");
  Session* session = FindSession(peer);
  if (session == nullptr)
    return Status::InvalidArgument("no session with " + peer);
  Txn& txn = GetOrCreateTxn(txn_id);
  AddPeer(txn, peer);
  session->suspended_leave_out = false;  // data wakes the server

  Pdu pdu;
  pdu.type = PduType::kAppData;
  pdu.txn = txn_id;
  SendPdu(peer, std::move(pdu), payload);
  return Status::OK();
}

void TransactionManager::Read(uint64_t txn, size_t rm_index,
                              std::string_view key,
                              rm::KVResourceManager::ReadCallback done) {
  GetOrCreateTxn(txn);
  rms_.at(rm_index)->Read(txn, key, std::move(done));
}

void TransactionManager::Write(uint64_t txn, size_t rm_index,
                               std::string_view key, std::string value,
                               rm::KVResourceManager::WriteCallback done) {
  Txn& t = GetOrCreateTxn(txn);
  // The one-phase family's prepare constraint: once this node prepared (the
  // early-prepare timer fired), the transaction's write set is frozen — a
  // late write can no longer be covered by the vote already sent. The same
  // rule holds for every protocol once phase one starts here.
  if (t.phase != Phase::kActive) {
    done(Status::FailedPrecondition("transaction already prepared"));
    return;
  }
  rms_.at(rm_index)->Write(txn, key, std::move(value), std::move(done));
}

void TransactionManager::Commit(uint64_t txn_id, CommitCallback done) {
  TPC_CHECK(up_);
  Txn& txn = GetOrCreateTxn(txn_id);
  TPC_CHECK(txn.phase == Phase::kActive);
  txn.is_root = true;
  txn.has_app_cb = true;
  txn.app_cb = std::move(done);
  txn.commit_started = rt_->Now();
  ctx_->trace().Add({rt_->Now(), sim::TraceKind::kState, name_, "", txn_id,
                     "commit initiated"});
  StartPhaseOne(txn);
}

void TransactionManager::AbortTxn(uint64_t txn_id) {
  TPC_CHECK(up_);
  Txn& txn = GetOrCreateTxn(txn_id);
  TPC_CHECK(txn.phase == Phase::kActive);
  txn.is_root = true;
  // An abort needs to reach anyone who may have done work.
  for (const auto& peer : txn.peers) {
    Child child;
    child.peer = peer;
    txn.children.push_back(std::move(child));
  }
  DecideAndPropagate(txn, /*commit=*/false);
}

void TransactionManager::UnsolicitedPrepare(uint64_t txn_id) {
  TPC_CHECK(up_);
  Txn* txn = FindTxn(txn_id);
  TPC_CHECK(txn != nullptr);
  TPC_CHECK(txn->has_work_source);  // a server knows who its requester is
  TPC_CHECK(txn->phase == Phase::kActive);
  txn->has_upstream = true;
  txn->upstream = txn->work_source;
  txn->unsolicited_sent = true;
  StartPhaseOne(*txn);
}

// ---------------------------------------------------------------------------
// Coordinator path: phase one
// ---------------------------------------------------------------------------

void TransactionManager::ComputeParticipants(Txn& txn) {
  // Touched peers are always in. Untouched connected sessions join only in
  // include-idle mode, and even then the leave-out optimization can exclude
  // them (PA: any untouched server; PN: only a server that voted
  // OK_TO_LEAVE_OUT in an earlier commit and is suspended since).
  std::set<net::NodeId> existing;
  for (const auto& c : txn.children) existing.insert(c.peer);
  for (uint32_t slot : session_order_) {
    const Session& session = sessions_[slot];
    const net::NodeId& peer = network_->NameOf(session.peer_id);
    if (txn.has_upstream && peer == txn.upstream) continue;
    if (existing.count(peer)) continue;
    const bool touched = HasPeer(txn, peer);
    bool included = touched;
    if (!included && config_.include_idle_sessions) {
      const bool eligible_leave_out =
          config_.leave_out_opt &&
          (BaseProtocol(config_.protocol) == ProtocolKind::kPresumedAbort
               ? true
               : session.suspended_leave_out);
      included = !eligible_leave_out;
    }
    if (!included) continue;
    Child child;
    child.peer = peer;
    txn.children.push_back(std::move(child));
  }
}

void TransactionManager::StartPhaseOne(Txn& txn) {
  txn.phase = Phase::kPreparing;
  ComputeParticipants(txn);

  // PN: a coordinator (root or cascaded, including a last agent) must
  // remember its subordinates durably *before* any of them can become
  // dependent on it — it is the one responsible for driving recovery and
  // collecting heuristic-damage reports.
  const bool needs_pre_prepare_record =
      config_.protocol == ProtocolKind::kPresumedNothing ||
      config_.protocol == ProtocolKind::kPresumedCommit;  // PC "collecting"
  if (needs_pre_prepare_record && !txn.commit_pending_logged &&
      !txn.children.empty()) {
    if (CrashHere(CoordPt(txn, CrashPt::kRootBeforeCommitPendingForce,
                          CrashPt::kCascBeforeCommitPendingForce)))
      return;
    txn.commit_pending_logged = true;
    TmRecordBody body;
    body.is_root = !txn.has_upstream;
    if (txn.has_upstream) body.upstream = txn.upstream;
    for (const auto& c : txn.children) body.children.push_back(c.peer);
    const uint64_t id = txn.id;
    const CrashPt after = CoordPt(txn, CrashPt::kRootAfterCommitPendingForce,
                                  CrashPt::kCascAfterCommitPendingForce);
    AppendTmRecord(id, wal::RecordType::kTmCommitPending, /*force=*/true,
                   EncodeBody(body), [this, id, after] {
      if (CrashHere(after)) return;
      if (Txn* t = FindTxn(id)) ContinuePhaseOne(*t);
    });
    return;
  }
  ContinuePhaseOne(txn);
}

void TransactionManager::ContinuePhaseOne(Txn& txn) {
  const uint64_t id = txn.id;

  if (IsPaxos(config_.protocol) && !txn.has_upstream) {
    // Paxos Commit: there is no last agent and no vote counting here — each
    // participant sends its vote to the acceptors (its own instance's
    // ballot-0 2a), and the acceptors' 2b replies come back to us. Prepare
    // still tells the cohort to prepare, and carries the cohort + acceptor
    // set every participant needs to lead a takeover if we die.
    txn.paxos_leader = true;
    txn.paxos_cohort.clear();
    txn.paxos_cohort.push_back(name_);
    for (const auto& child : txn.children)
      txn.paxos_cohort.push_back(child.peer);
    std::sort(txn.paxos_cohort.begin(), txn.paxos_cohort.end());
    txn.paxos_insts.clear();
    for (const auto& member : txn.paxos_cohort) {
      txn.paxos_insts.emplace_back();
      txn.paxos_insts.back().name = member;
    }
    if (!txn.children.empty()) {
      PaxosBody body;
      body.leader = name_;
      body.cohort = txn.paxos_cohort;
      body.acceptors = config_.acceptors;
      paxos_wire_.clear();
      EncodePaxosBody(body, &paxos_wire_);
      for (auto& child : txn.children) {
        child.prepare_sent = true;
        Pdu pdu;
        pdu.type = PduType::kPrepare;
        pdu.txn = id;
        SendPdu(child.peer, std::move(pdu), paxos_wire_);
      }
      if (CrashHere(CrashPt::kRootAfterPrepareSend)) return;
    }
    PrepareLocalRms(txn);
    return;
  }

  // Select the last agent. Only a node that owns the commit decision (a
  // root or a node the decision was delegated to) may delegate it further.
  const bool owns_decision = !txn.has_upstream || txn.i_am_last_agent;
  if (config_.last_agent_opt && owns_decision && !txn.children.empty()) {
    Child* pick = nullptr;
    sim::Time best_latency = -1;
    for (auto& child : txn.children) {
      if (child.voted) continue;  // vote already in hand (incl. initiator)
      const Session* session = FindSession(child.peer);
      const bool candidate =
          session != nullptr && session->options.last_agent_candidate;
      sim::Time latency = network_->LatencyBetween(name_, child.peer);
      if (candidate) latency += 1'000'000'000;  // candidates dominate
      if (latency > best_latency) {
        best_latency = latency;
        pick = &child;
      }
    }
    if (pick != nullptr) {
      pick->is_last_agent = true;
      txn.last_agent_peer = pick->peer;
      txn.awaiting_last_agent = true;
    }
  }

  // Send Prepare to everyone except the last agent and the already-voted.
  const bool one_phase = IsOnePhase(config_.protocol);
  bool sent_prepare = false;
  for (auto& child : txn.children) {
    if (child.is_last_agent || child.voted) continue;
    if (one_phase) {
      // One-phase family: there is no Prepare round. The subordinate's
      // early-prepare timer produces its (unsolicited) vote; count it as
      // outstanding so the vote timer still guards a silent child.
      ++txn.votes_outstanding;
      continue;
    }
    child.prepare_sent = true;
    ++txn.votes_outstanding;
    Pdu pdu;
    pdu.type = PduType::kPrepare;
    pdu.txn = id;
    const Session* session = FindSession(child.peer);
    pdu.long_locks = session != nullptr && session->options.long_locks;
    SendPdu(child.peer, std::move(pdu));
    sent_prepare = true;
  }
  if (sent_prepare &&
      CrashHere(CoordPt(txn, CrashPt::kRootAfterPrepareSend,
                        CrashPt::kCascAfterPrepareSend)))
    return;

  if (txn.votes_outstanding > 0) {
    txn.vote_timer_armed = true;
    const uint64_t epoch = epoch_;
    txn.vote_timer = rt_->ArmTimer(config_.vote_timeout,
                                                  [this, epoch, id] {
      if (!up_ || epoch != epoch_) return;
      Txn* t = FindTxn(id);
      if (t == nullptr || t->phase != Phase::kPreparing) return;
      if (t->votes_outstanding == 0) return;
      t->vote_timer_armed = false;
      t->any_no = true;  // missing votes decide abort
      t->votes_outstanding = 0;
      MaybePhaseOneComplete(*t);
    });
  }

  PrepareLocalRms(txn);
}

void TransactionManager::PrepareLocalRms(Txn& txn) {
  const uint64_t id = txn.id;
  txn.rms_outstanding = rms_.size();
  if (rms_.empty()) {
    MaybePhaseOneComplete(txn);
    return;
  }
  const uint64_t epoch = epoch_;
  for (auto* rm : rms_) {
    if (!up_) return;  // an RM crash point may have taken the node down
    rm->Prepare(id, [this, epoch, id](rm::VoteInfo info) {
      if (!up_ || epoch != epoch_) return;
      Txn* t = FindTxn(id);
      if (t == nullptr) return;
      TPC_CHECK(t->rms_outstanding > 0);
      --t->rms_outstanding;
      switch (info.vote) {
        case rm::Vote::kNo:
          t->any_no = true;
          break;
        case rm::Vote::kYes:
          t->local_updates = true;
          break;
        case rm::Vote::kReadOnly:
          break;
      }
      if (!info.reliable) t->all_reliable = false;
      if (!info.ok_to_leave_out) t->all_leave_out = false;
      MaybePhaseOneComplete(*t);
    });
  }
}

void TransactionManager::OnVotePdu(const net::NodeId& from, const Pdu& pdu) {
  // Last-agent vote: the sender hands us the commit decision.
  if (pdu.last_agent) {
    Txn& txn = GetOrCreateTxn(pdu.txn);
    if (txn.is_root && txn.has_app_cb) {
      // Two initiators for one transaction: protocol violation, abort.
      Pdu abort;
      abort.type = PduType::kAbort;
      abort.txn = pdu.txn;
      abort.from_last_agent = true;
      SendPdu(from, std::move(abort));
      if (txn.phase == Phase::kActive || txn.phase == Phase::kPreparing) {
        txn.any_no = true;
        if (txn.phase == Phase::kPreparing) MaybePhaseOneComplete(txn);
      }
      return;
    }
    txn.i_am_last_agent = true;
    txn.initiator_read_only = pdu.vote == rm::Vote::kReadOnly;
    txn.implied_ack_peer = from;
    AddPeer(txn, from);
    // Represent the initiator as an already-prepared child we must send the
    // decision to; its ack is implied by its next message.
    Child initiator;
    initiator.peer = from;
    initiator.voted = true;
    initiator.vote = pdu.vote;
    initiator.prepare_sent = true;
    txn.children.push_back(std::move(initiator));
    // The initiator requests long locks on its vote: our decision message
    // will be buffered for piggybacking.
    txn.initiator_requested_long_locks = pdu.vote_long_locks;
    // Now run our own phase one (we may cascade, even pick our own last
    // agent) and then decide.
    StartPhaseOne(txn);
    return;
  }

  Txn& txn = GetOrCreateTxn(pdu.txn);
  if (pdu.unsolicited && txn.phase == Phase::kActive) {
    // Early vote stashed until commit processing starts.
    AddPeer(txn, from);
    Child child;
    child.peer = from;
    child.voted = true;
    child.vote = pdu.vote;
    child.reliable = pdu.reliable;
    child.ok_leave_out = pdu.ok_to_leave_out;
    child.unsolicited = true;
    txn.children.push_back(std::move(child));
    if (pdu.vote == rm::Vote::kNo) txn.any_no = true;
    if (!pdu.reliable) txn.all_reliable = false;
    if (!pdu.ok_to_leave_out) txn.all_leave_out = false;
    return;
  }

  if (txn.phase != Phase::kPreparing) return;  // stale/duplicate vote
  for (auto& child : txn.children) {
    if (child.peer != from || child.voted) continue;
    child.voted = true;
    child.vote = pdu.vote;
    child.reliable = pdu.reliable;
    child.ok_leave_out = pdu.ok_to_leave_out;
    if (pdu.vote == rm::Vote::kNo) txn.any_no = true;
    if (!pdu.reliable) txn.all_reliable = false;
    if (!pdu.ok_to_leave_out) txn.all_leave_out = false;
    TPC_CHECK(txn.votes_outstanding > 0);
    --txn.votes_outstanding;
    MaybePhaseOneComplete(txn);
    return;
  }
}

void TransactionManager::MaybePhaseOneComplete(Txn& txn) {
  if (txn.phase != Phase::kPreparing) return;
  if (txn.votes_outstanding > 0 || txn.rms_outstanding > 0) return;
  if (txn.vote_timer_armed) {
    rt_->CancelTimer(txn.vote_timer);
    txn.vote_timer_armed = false;
  }

  if (IsPaxos(config_.protocol) && !txn.has_upstream) {
    if (txn.paxos_voted_self) return;  // consensus in flight; 2b's decide
    if (txn.any_no) {
      // A local RM voted NO before our own ballot-0 2a went out: no
      // acceptor has (or will ever) accept Prepared for our instance, so a
      // takeover's free choice for it defaults to Aborted — deciding abort
      // directly agrees with every possible consensus outcome.
      DecidePaxos(txn, /*commit=*/false);
      return;
    }
    StartPaxosCommit(txn);
    return;
  }

  if (txn.any_no) {
    if (txn.has_upstream && !txn.i_am_last_agent) {
      SendVote(txn);  // vote NO upward; abort our subtree
      return;
    }
    DecideAndPropagate(txn, /*commit=*/false);
    return;
  }

  // All votes are YES or read-only.
  const bool children_all_ro = std::all_of(
      txn.children.begin(), txn.children.end(), [&](const Child& c) {
        if (c.is_last_agent) return true;  // not voted yet, not a vote
        if (txn.i_am_last_agent && c.peer == txn.implied_ack_peer)
          return c.vote == rm::Vote::kReadOnly;
        return c.vote == rm::Vote::kReadOnly;
      });
  const bool subtree_read_only =
      config_.read_only_opt && children_all_ro && !txn.local_updates;

  if (txn.has_upstream && !txn.i_am_last_agent) {
    // Subordinate / cascaded coordinator: vote upward.
    SendVote(txn);
    return;
  }

  if (txn.awaiting_last_agent) {
    // Hand the decision to the last agent. A read-only initiator can skip
    // the prepared force-write (it has nothing at stake).
    const uint64_t id = txn.id;
    auto send_vote_to_last_agent = [this, id](rm::Vote vote) {
      Txn* t = FindTxn(id);
      if (t == nullptr) return;
      t->phase = Phase::kAwaitLastAgent;
      t->my_la_vote_ro = vote == rm::Vote::kReadOnly;
      Pdu pdu;
      pdu.type = PduType::kVote;
      pdu.txn = id;
      pdu.vote = vote;
      pdu.last_agent = true;
      const Session* session = FindSession(t->last_agent_peer);
      pdu.vote_long_locks = session != nullptr && session->options.long_locks;
      SendPdu(t->last_agent_peer, std::move(pdu));
      if (CrashHere(vote == rm::Vote::kReadOnly
                        ? CrashPt::kRootAfterLaRoVoteSend
                        : CrashPt::kRootAfterLaVoteSend))
        return;
      if (vote == rm::Vote::kYes) {
        t = FindTxn(id);
        // We are now in doubt: arm the usual in-doubt machinery.
        ArmHeuristicTimer(*t);
        ArmInquiryTimer(*t);
      }
    };

    if (subtree_read_only) {
      // Release read-only resources now (the read-only optimization).
      for (auto* rm : rms_) rm->EndReadOnly(txn.id);
      for (auto& child : txn.children)
        if (!child.is_last_agent) child.excluded = true;
      send_vote_to_last_agent(rm::Vote::kReadOnly);
      return;
    }
    if (CrashHere(CrashPt::kRootBeforeLaVoteForce)) return;
    TmRecordBody body;
    body.upstream = txn.last_agent_peer;  // decisions/inquiries go there
    body.is_root = true;
    for (const auto& c : txn.children)
      if (!c.is_last_agent) body.children.push_back(c.peer);
    AppendTmRecord(txn.id, wal::RecordType::kTmPrepared, /*force=*/true,
                   EncodeBody(body), [this, send_vote_to_last_agent] {
      if (CrashHereOrLegacy(CrashPt::kRootAfterLaVoteForce,
                            fi_legacy_prepared_))
        return;
      send_vote_to_last_agent(rm::Vote::kYes);
    });
    return;
  }

  if (subtree_read_only && !txn.i_am_last_agent) {
    // Entirely read-only transaction: commit outcome, second phase skipped
    // for everyone, and (PA) no logging at all.
    txn.decided = true;
    txn.commit_decision = true;
    txn.outcome = Outcome::kCommitted;
    for (auto& child : txn.children) child.excluded = true;
    for (auto* rm : rms_) rm->EndReadOnly(txn.id);
    if (config_.protocol == ProtocolKind::kPresumedNothing &&
        txn.commit_pending_logged) {
      AppendTmRecord(txn.id, wal::RecordType::kTmEnd, /*force=*/false, "",
                     nullptr);
      txn.end_written = true;
    }
    CompleteApp(txn, /*pending=*/false);
    Forget(txn);
    return;
  }

  if (txn.i_am_last_agent && subtree_read_only && txn.initiator_read_only) {
    // Fully read-only last-agent transaction: nothing at stake anywhere.
    // Reply with the outcome (the initiator's app needs it) and forget;
    // no logging, no implied-ack wait.
    txn.decided = true;
    txn.commit_decision = true;
    txn.outcome = Outcome::kCommitted;
    for (auto* rm : rms_) rm->EndReadOnly(txn.id);
    Pdu pdu;
    pdu.type = PduType::kCommit;
    pdu.txn = txn.id;
    pdu.from_last_agent = true;
    SendPdu(txn.implied_ack_peer, std::move(pdu));
    Forget(txn);
    return;
  }

  DecideAndPropagate(txn, /*commit=*/true);
}

// ---------------------------------------------------------------------------
// Decision and phase two
// ---------------------------------------------------------------------------

void TransactionManager::DecideAndPropagate(Txn& txn, bool commit) {
  txn.decided = true;
  txn.commit_decision = commit;
  txn.phase = Phase::kDeciding;
  const uint64_t id = txn.id;

  if (commit) {
    txn.outcome = Outcome::kCommitted;
    if (CrashHere(CoordPt(txn, CrashPt::kRootBeforeCommitForce,
                          CrashPt::kCascBeforeCommitForce)))
      return;
    TmRecordBody body;
    body.is_root = !txn.has_upstream;
    if (txn.has_upstream) body.upstream = txn.upstream;
    for (const auto& c : txn.children)
      if (!c.excluded) body.children.push_back(c.peer);
    const CrashPt after = CoordPt(txn, CrashPt::kRootAfterCommitForce,
                                  CrashPt::kCascAfterCommitForce);
    AppendTmRecord(id, wal::RecordType::kTmCommitted,
                   /*force=*/!ForceDowngraded(), EncodeBody(body),
                   [this, id, after] {
      if (CrashHereOrLegacy(after, fi_legacy_commit_)) return;
      Txn* t = FindTxn(id);
      if (t == nullptr) return;
      SendDecision(*t, /*commit=*/true);
    });
    return;
  }

  txn.outcome = Outcome::kAborted;
  if (BaseProtocol(config_.protocol) == ProtocolKind::kPresumedAbort) {
    // PA abort: the root logs nothing; absence of information means abort.
    // (Paxos Commit inherits this: an abort outcome is pinned by the
    // acceptors' durable state, so the leader need not log it.)
    SendDecision(txn, /*commit=*/false);
    return;
  }
  if (CrashHere(CoordPt(txn, CrashPt::kRootBeforeAbortForce,
                        CrashPt::kCascBeforeAbortForce)))
    return;
  TmRecordBody body;
  body.is_root = !txn.has_upstream;
  if (txn.has_upstream) body.upstream = txn.upstream;
  for (const auto& c : txn.children)
    if (!c.excluded) body.children.push_back(c.peer);
  const CrashPt after = CoordPt(txn, CrashPt::kRootAfterAbortForce,
                                CrashPt::kCascAfterAbortForce);
  AppendTmRecord(id, wal::RecordType::kTmAborted, /*force=*/true,
                 EncodeBody(body), [this, id, after] {
    if (CrashHere(after)) return;
    Txn* t = FindTxn(id);
    if (t == nullptr) return;
    SendDecision(*t, /*commit=*/false);
  });
}

void TransactionManager::SendDecision(Txn& txn, bool commit) {
  const uint64_t id = txn.id;
  const bool pa = BaseProtocol(config_.protocol) == ProtocolKind::kPresumedAbort;
  const bool pc = BaseProtocol(config_.protocol) == ProtocolKind::kPresumedCommit;
  bool sent_decision = false;

  for (auto& child : txn.children) {
    if (child.is_last_agent) {
      // The last agent *made* this decision; it learns nothing from us and
      // its END waits on our implied ack (our next message to it).
      child.ack_required = false;
      continue;
    }
    const bool is_la_initiator =
        txn.i_am_last_agent && child.peer == txn.implied_ack_peer;
    // Read-only voters and left-out partners see no second phase — except a
    // read-only last-agent initiator, whose app still needs the outcome.
    if (child.voted && child.vote == rm::Vote::kReadOnly &&
        config_.read_only_opt && !is_la_initiator) {
      child.excluded = true;
    }
    if (child.excluded) continue;
    if (child.acked) {
      // Already resolved and acknowledged (a NO voter that aborted its
      // subtree and acked proactively): nothing to send.
      child.ack_required = true;
      continue;
    }
    // A child that never received a Prepare (vote timeout fired before we
    // contacted it) still gets the abort: it may hold work for the txn.

    // Ack requirements: none for abort under PA, none for NO voters, none
    // for reliable subtrees when the optimization is on, and the last
    // agent's initiator acks implicitly.
    bool ack_required = true;
    if (!commit && pa) ack_required = false;
    if (commit && pc) ack_required = false;  // commits are presumed
    // A NO voter has nothing to resolve under PA; under PN/basic its ack
    // still closes the late-acknowledgment loop (it may have a subtree).
    if (child.voted && child.vote == rm::Vote::kNo && pa)
      ack_required = false;
    if (commit && child.reliable && config_.vote_reliable_opt)
      ack_required = false;
    if (is_la_initiator) ack_required = false;
    child.ack_required = ack_required;

    Pdu pdu;
    pdu.type = commit ? PduType::kCommit : PduType::kAbort;
    pdu.txn = id;
    pdu.from_last_agent = is_la_initiator;

    const Session* session = FindSession(child.peer);
    const bool buffer_decision =
        is_la_initiator && txn.initiator_requested_long_locks;
    if (buffer_decision) {
      // Last-agent + long-locks: the decision itself waits for the next
      // message on the session (Table 4's three-flows-per-two-transactions
      // pattern; also the paper's "no messages flow for the next
      // transaction" application-design hazard).
      BufferPdu(child.peer, std::move(pdu));
    } else {
      SendPdu(child.peer, std::move(pdu));
      sent_decision = true;
    }
    if (is_la_initiator && commit && child.vote != rm::Vote::kReadOnly) {
      SessionSlot(child.peer).awaiting_implied_ack_txn = id;
      txn.awaiting_implied_ack = true;
      session = FindSession(child.peer);  // SessionSlot may grow sessions_
    }
    // Long-locks sessions deliberately defer the ack until the next
    // transaction begins — retrying the decision on a timer would defeat
    // the optimization (and the paper's "application design problem"
    // caveat is exactly that the wait can be unbounded).
    const bool long_locks_session =
        session != nullptr && session->options.long_locks;
    if (ack_required && !long_locks_session) ArmAckTimer(txn, child);
  }

  if (sent_decision &&
      CrashHere(CoordPt(txn, CrashPt::kRootAfterDecisionSend,
                        CrashPt::kCascAfterDecisionSend)))
    return;

  // Second phase against local resource managers.
  txn.rm_phase2_outstanding = rms_.size();
  const uint64_t epoch = epoch_;
  for (auto* rm : rms_) {
    if (!up_) return;  // an RM crash point may have taken the node down
    auto done = [this, epoch, id](Status st) {
      TPC_CHECK(st.ok());
      if (!up_ || epoch != epoch_) return;
      Txn* t = FindTxn(id);
      if (t == nullptr) return;
      TPC_CHECK(t->rm_phase2_outstanding > 0);
      --t->rm_phase2_outstanding;
      MaybeComplete(*t);
    };
    if (commit) {
      rm->Commit(id, std::move(done));
    } else {
      rm->Abort(id, std::move(done));
    }
  }
  if (!up_) return;
  if (rms_.empty()) MaybeComplete(txn);
}

void TransactionManager::ArmAckTimer(Txn& txn, Child& child) {
  const uint64_t id = txn.id;
  const net::NodeId peer = child.peer;
  const uint64_t epoch = epoch_;
  child.ack_timer_armed = true;
  child.ack_timer = rt_->ArmTimer(config_.ack_timeout,
                                                 [this, epoch, id, peer] {
    if (!up_ || epoch != epoch_) return;
    Txn* t = FindTxn(id);
    if (t == nullptr) return;
    for (auto& c : t->children) {
      if (c.peer != peer || c.acked || !c.ack_required) continue;
      c.ack_timer_armed = false;
      Pdu pdu;
      pdu.type = t->commit_decision ? PduType::kCommit : PduType::kAbort;
      pdu.txn = id;
      pdu.from_last_agent = t->i_am_last_agent && peer == t->implied_ack_peer;
      if (!c.retried) {
        // One retry (the paper's wait-for-outcome contract: one attempt to
        // contact a failed partner before giving up the wait).
        c.retried = true;
        SendPdu(peer, std::move(pdu));
        ArmAckTimer(*t, c);
        return;
      }
      // Still unreachable after the retry.
      t->subtree_pending = true;
      if (!config_.wait_for_outcome_block) {
        // Wait-for-outcome: stop blocking the application / the upstream
        // ack; recovery continues in the background.
        c.ack_required = false;
        ScheduleRecoveryRetry(id);
        if (!t->has_upstream || t->i_am_last_agent) {
          CompleteApp(*t, /*pending=*/true);
        } else if (!t->ack_sent) {
          // "Recovery is in progress" acknowledgment to our coordinator.
          DoSendAck(*t, /*pending=*/true);
        }
      } else {
        // Classic blocking behavior: keep retrying until the peer returns.
        SendPdu(peer, std::move(pdu));
        ArmAckTimer(*t, c);
      }
      return;
    }
  });
}

void TransactionManager::OnAckPdu(const net::NodeId& from, const Pdu& pdu) {
  Txn* txn = FindTxn(pdu.txn);
  if (txn == nullptr) {
    // Late/duplicate ack for a forgotten transaction: fold any damage
    // report into the archive (background wait-for-outcome resolutions).
    if (pdu.damage) {
      TxnMeta& meta = MetaSlot(pdu.txn);
      if (meta.has_view) meta.view.damage_reported_here = true;
    }
    return;
  }
  for (auto& child : txn->children) {
    if (child.peer != from) continue;
    if (child.ack_timer_armed) {
      rt_->CancelTimer(child.ack_timer);
      child.ack_timer_armed = false;
    }
    child.acked = true;
    // Aggregate the subtree's heuristic report.
    if (pdu.heur_commit) txn->heur_commit = true;
    if (pdu.heur_abort) txn->heur_abort = true;
    if (pdu.damage) txn->damage = true;
    if (pdu.outcome_pending) txn->subtree_pending = true;
    MaybeComplete(*txn);
    return;
  }
}

void TransactionManager::MaybeComplete(Txn& txn) {
  if (!txn.decided || txn.phase != Phase::kDeciding) return;
  if (txn.rm_phase2_outstanding > 0) return;
  for (const auto& child : txn.children)
    if (child.ack_required && !child.acked) return;
  if (txn.i_am_last_agent && txn.awaiting_implied_ack) {
    // Everything else is done, but the initiator's implied ack is still
    // outstanding: hold the END record until its next message arrives.
    return;
  }

  const bool pa = BaseProtocol(config_.protocol) == ProtocolKind::kPresumedAbort;

  if (txn.has_upstream && !txn.i_am_last_agent) {
    // Subordinate / cascaded completion: END + ack upstream.
    AckUpstreamIfReady(txn);
    return;
  }

  // Root (or last-agent) completion.
  const bool logged_something =
      txn.commit_decision || !pa || txn.took_heuristic;
  const uint64_t id = txn.id;
  if (logged_something && !txn.end_written) {
    if (CrashHere(CrashPt::kRootBeforeEndWrite)) return;
    txn.end_written = true;
    AppendTmRecord(id, wal::RecordType::kTmEnd, /*force=*/false, "", nullptr);
    if (CrashHere(CrashPt::kRootAfterEndWrite)) return;
  }
  CompleteApp(txn, txn.subtree_pending);
  Forget(txn);
}

void TransactionManager::CompleteApp(Txn& txn, bool pending) {
  if (txn.app_completed || !txn.has_app_cb) {
    txn.app_completed = true;
    return;
  }
  txn.app_completed = true;
  CommitResult result;
  result.outcome = txn.outcome;
  result.heuristic_seen = txn.heur_commit || txn.heur_abort;
  // Damage: a reported heuristic decision that disagrees with the outcome.
  const bool mismatch = (txn.commit_decision && txn.heur_abort) ||
                        (!txn.commit_decision && txn.heur_commit) ||
                        txn.damage;
  result.heuristic_damage = mismatch;
  result.outcome_pending = pending;
  ctx_->trace().Add(
      {rt_->Now(), sim::TraceKind::kState, name_, "", txn.id,
       StringPrintf("commit complete (%s%s%s)",
                    std::string(OutcomeToString(txn.outcome)).c_str(),
                    mismatch ? ", damage" : "", pending ? ", pending" : "")});
  txn.app_cb(result);
}

void TransactionManager::WriteEndIfNeeded(Txn& txn, bool force,
                                          std::function<void()> done) {
  if (txn.end_written) {
    if (done) done();
    return;
  }
  // Only subordinate/cascaded completion routes through here; the root's END
  // is written inline in MaybeComplete.
  const CrashPt before =
      force ? SubPt(txn, CrashPt::kCascBeforeEndForce, CrashPt::kSubBeforeEndForce)
            : SubPt(txn, CrashPt::kCascBeforeEndWrite, CrashPt::kSubBeforeEndWrite);
  const CrashPt after =
      force ? SubPt(txn, CrashPt::kCascAfterEndForce, CrashPt::kSubAfterEndForce)
            : SubPt(txn, CrashPt::kCascAfterEndWrite, CrashPt::kSubAfterEndWrite);
  if (CrashHere(before)) return;
  txn.end_written = true;
  if (force) {
    AppendTmRecord(txn.id, wal::RecordType::kTmEnd, /*force=*/true, "",
                   [this, after, done = std::move(done)] {
                     if (CrashHere(after)) return;
                     if (done) done();
                   });
    return;
  }
  AppendTmRecord(txn.id, wal::RecordType::kTmEnd, /*force=*/false, "", nullptr);
  if (CrashHere(after)) return;
  if (done) done();
}

// ---------------------------------------------------------------------------
// Subordinate path
// ---------------------------------------------------------------------------

void TransactionManager::OnAppData(const net::NodeId& from, const Pdu& pdu,
                                   std::string_view data) {
  Txn& txn = GetOrCreateTxn(pdu.txn);
  AddPeer(txn, from);
  if (!txn.has_work_source) {
    txn.has_work_source = true;
    txn.work_source = from;
  }
  if (on_app_data_) on_app_data_(pdu.txn, from, data);
  if (!up_) return;
  // One-phase family: each burst of work (re)arms the quiesce timer; when
  // the data flow pauses long enough, this server prepares unsolicited —
  // the early prepare that removes the explicit voting phase.
  if (IsOnePhase(config_.protocol)) {
    Txn* t = FindTxn(pdu.txn);
    if (t != nullptr && !t->is_root && t->phase == Phase::kActive &&
        t->has_work_source && !t->unsolicited_sent)
      ArmEarlyPrepare(*t);
  }
}

void TransactionManager::OnPreparePdu(const net::NodeId& from, const Pdu& pdu,
                                      std::string_view data) {
  Txn& txn = GetOrCreateTxn(pdu.txn);

  if (txn.is_root && txn.has_app_cb) {
    // Two initiators (the Figure 5 hazard class): vote NO; both trees abort.
    Pdu vote;
    vote.type = PduType::kVote;
    vote.txn = pdu.txn;
    vote.vote = rm::Vote::kNo;
    SendPdu(from, std::move(vote));
    if (txn.phase == Phase::kPreparing) {
      txn.any_no = true;
      MaybePhaseOneComplete(txn);
    }
    return;
  }

  if (txn.voted_yes || txn.phase == Phase::kInDoubt) {
    // Duplicate prepare (e.g. unsolicited vote raced with it): re-vote.
    SendVote(txn);
    return;
  }
  if (txn.phase != Phase::kActive) return;  // late prepare; ignore

  txn.has_upstream = true;
  txn.upstream = from;
  txn.upstream_long_locks = pdu.long_locks;
  AddPeer(txn, from);

  if (IsPaxos(config_.protocol)) {
    // The Prepare's body carries everything a participant needs to act
    // without the root: the cohort (instance set) and the acceptor set.
    if (DecodePaxosBody(data, &paxos_in_).ok() && !paxos_in_.cohort.empty())
      txn.paxos_cohort = paxos_in_.cohort;
  }

  if (config_.protocol == ProtocolKind::kPresumedNothing) {
    // PN notes the coordinator's identity as soon as commit processing
    // touches this node (non-forced; it rides the prepared force).
    if (CrashHere(CrashPt::kSubBeforeJoinWrite)) return;
    TmRecordBody body;
    body.upstream = from;
    AppendTmRecord(txn.id, wal::RecordType::kTmJoin, /*force=*/false,
                   EncodeBody(body), nullptr);
    if (CrashHere(CrashPt::kSubAfterJoinWrite)) return;
  }

  // Cascade phase one to our own subtree.
  StartPhaseOne(txn);
}

void TransactionManager::SendVote(Txn& txn) {
  const uint64_t id = txn.id;
  TPC_CHECK(txn.has_upstream);

  if (txn.phase == Phase::kInDoubt) {
    if (IsPaxos(config_.protocol)) {
      // Our vote goes to the acceptors, not the coordinator: re-fan the
      // ballot-0 2a (idempotent at the acceptors) instead of a kVote.
      SendPaxosVote(txn, /*prepared=*/true, CrashPt::kSubAfterPaxosVoteSend,
                    /*self_accepted=*/false);
      return;
    }
    // Re-vote (duplicate prepare): resend YES without re-logging.
    Pdu vote;
    vote.type = PduType::kVote;
    vote.txn = id;
    vote.vote = rm::Vote::kYes;
    vote.reliable = txn.all_reliable;
    vote.ok_to_leave_out = config_.ok_to_leave_out && txn.all_leave_out;
    const CrashPt resend = SubPt(txn, CrashPt::kCascAfterVoteResend,
                                 CrashPt::kSubAfterVoteResend);
    SendPdu(txn.upstream, std::move(vote));
    CrashHere(resend);
    return;
  }

  if (txn.any_no) {
    // Our subtree cannot commit: vote NO and abort everything below us.
    txn.phase = Phase::kDeciding;
    txn.decided = true;
    txn.commit_decision = false;
    txn.outcome = Outcome::kAborted;
    if (IsPaxos(config_.protocol)) {
      // The NO is an Aborted value for our instance at ballot 0; the leader
      // learns it from the acceptors' 2b majority. Locally we are done:
      // abort the subtree and forget — the PA base answers any straggler.
      // The self-accept stays volatile (no force follows): losing it in a
      // crash is safe, Aborted being the free choice a takeover lands on.
      const bool self_accepted = PaxosSelfAccept(txn, /*prepared=*/false);
      SendPaxosVote(txn, /*prepared=*/false, CrashPt::kSubAfterPaxosVoteSend,
                    self_accepted);
      if (!up_) return;
      Txn* t = FindTxn(id);
      if (t == nullptr) return;
      SendDecision(*t, /*commit=*/false);
      t = FindTxn(id);
      if (t != nullptr) {
        for (auto& child : t->children) {
          if (child.ack_timer_armed) {
            rt_->CancelTimer(child.ack_timer);
            child.ack_timer_armed = false;
          }
          child.ack_required = false;
        }
        Forget(*t);
      }
      return;
    }
    Pdu vote;
    vote.type = PduType::kVote;
    vote.txn = id;
    vote.vote = rm::Vote::kNo;
    vote.unsolicited = txn.unsolicited_sent;
    const CrashPt no_sent = SubPt(txn, CrashPt::kCascAfterNoVoteSend,
                                  CrashPt::kSubAfterNoVoteSend);
    SendPdu(txn.upstream, std::move(vote));
    if (CrashHere(no_sent)) return;

    if (BaseProtocol(config_.protocol) == ProtocolKind::kPresumedAbort) {
      // PA: forget immediately; any prepared child that asks later gets the
      // presumed-abort answer, so nothing needs to be remembered or logged.
      // SendDecision's RM callbacks can complete synchronously and Forget
      // the transaction themselves, so re-look it up before touching it.
      SendDecision(txn, /*commit=*/false);
      Txn* survivor = FindTxn(id);
      if (survivor != nullptr) {
        for (auto& child : survivor->children) {
          if (child.ack_timer_armed) {
            rt_->CancelTimer(child.ack_timer);
            child.ack_timer_armed = false;
          }
          child.ack_required = false;
        }
        Forget(*survivor);
      }
      return;
    }
    // PN/basic: there is no presumption a prepared child could fall back
    // on, so we must durably remember the abort and drive the subtree to
    // completion ourselves (retrying through crashes). The normal
    // completion path then acknowledges upstream.
    if (CrashHere(SubPt(txn, CrashPt::kCascBeforeAbortForce,
                        CrashPt::kSubBeforeAbortForce)))
      return;
    TmRecordBody body;
    body.upstream = txn.upstream;
    for (const auto& c : txn.children)
      if (c.prepare_sent || c.voted) body.children.push_back(c.peer);
    const CrashPt after = SubPt(txn, CrashPt::kCascAfterAbortForce,
                                CrashPt::kSubAfterAbortForce);
    AppendTmRecord(id, wal::RecordType::kTmAborted, /*force=*/true,
                   EncodeBody(body), [this, id, after] {
      if (CrashHere(after)) return;
      Txn* t = FindTxn(id);
      if (t == nullptr) return;
      SendDecision(*t, /*commit=*/false);
    });
    return;
  }

  if (IsPaxos(config_.protocol)) {
    // Read-only is not special-cased: our instance must still reach a
    // consensus value, and Prepared is correct for a read-only subtree.
    TmRecordBody body;
    body.upstream = txn.upstream;
    body.cohort = txn.paxos_cohort;
    // Co-located acceptor: fold the ballot-0 self-accept snapshot into the
    // prepared record's force, so vote + accept cost one durable write.
    const bool self_accepted = PaxosSelfAccept(txn, /*prepared=*/true);
    if (self_accepted && CrashHere(CrashPt::kSubBeforeVoteAcceptForce))
      return;
    AppendTmRecord(id, wal::RecordType::kTmPrepared,
                   /*force=*/!ForceDowngraded(), EncodeBody(body),
                   [this, id, self_accepted] {
      if (CrashHereOrLegacy(CrashPt::kSubAfterPreparedForce,
                            fi_legacy_prepared_))
        return;
      if (self_accepted && CrashHere(CrashPt::kSubAfterVoteAcceptForce))
        return;
      Txn* t = FindTxn(id);
      if (t == nullptr) return;
      t->voted_yes = true;
      t->phase = Phase::kInDoubt;
      t->outcome = Outcome::kInDoubt;
      SendPaxosVote(*t, /*prepared=*/true, CrashPt::kSubAfterPaxosVoteSend,
                    self_accepted);
      if (!up_) return;
      t = FindTxn(id);
      if (t == nullptr) return;
      ArmHeuristicTimer(*t);
      ArmInquiryTimer(*t);  // paxos flavor: the takeover timer
    });
    return;
  }

  const bool children_all_ro = std::all_of(
      txn.children.begin(), txn.children.end(),
      [](const Child& c) { return c.vote == rm::Vote::kReadOnly; });
  const bool subtree_read_only =
      config_.read_only_opt && children_all_ro && !txn.local_updates;

  if (subtree_read_only) {
    // Read-only vote: no logs, locks released now, outcome never learned.
    // (Early release is the serialization hazard of Section 4.)
    txn.outcome = Outcome::kReadOnly;
    Pdu vote;
    vote.type = PduType::kVote;
    vote.txn = id;
    vote.vote = rm::Vote::kReadOnly;
    vote.reliable = txn.all_reliable;
    vote.ok_to_leave_out = config_.ok_to_leave_out && txn.all_leave_out;
    vote.unsolicited = txn.unsolicited_sent;
    const CrashPt ro_sent = SubPt(txn, CrashPt::kCascAfterRoVoteSend,
                                  CrashPt::kSubAfterRoVoteSend);
    SendPdu(txn.upstream, std::move(vote));
    if (CrashHere(ro_sent)) return;
    for (auto* rm : rms_) rm->EndReadOnly(id);
    txn.commit_decision = true;  // archive as committed-equivalent
    Forget(txn);
    return;
  }

  // YES vote: force the prepared record, then vote.
  const bool reliable = txn.all_reliable;
  const bool leave_out = config_.ok_to_leave_out && txn.all_leave_out;
  auto send_yes = [this, id, reliable, leave_out] {
    Txn* t = FindTxn(id);
    if (t == nullptr) return;
    t->voted_yes = true;
    t->my_vote_reliable = reliable;
    t->phase = Phase::kInDoubt;
    t->outcome = Outcome::kInDoubt;
    Pdu vote;
    vote.type = PduType::kVote;
    vote.txn = id;
    vote.vote = rm::Vote::kYes;
    vote.reliable = reliable;
    vote.ok_to_leave_out = leave_out;
    vote.unsolicited = t->unsolicited_sent;
    const CrashPt sent =
        t->unsolicited_sent ? CrashPt::kSubAfterUnsolicitedVoteSend
                            : SubPt(*t, CrashPt::kCascAfterYesVoteSend,
                                    CrashPt::kSubAfterYesVoteSend);
    SendPdu(t->upstream, std::move(vote));
    if (CrashHere(sent)) return;
    t = FindTxn(id);
    ArmHeuristicTimer(*t);
    ArmInquiryTimer(*t);
  };

  if (config_.protocol == ProtocolKind::kOnePhaseLogless) {
    // Logless variant: no prepared force at all — the promise exists only
    // in the coordinator's decision record and the RM's own log. A crash
    // here forgets the YES; the txn still converges because a committing
    // coordinator redrives its unacked decision and the RM log supplies
    // the redo, while an undelivered vote dies with the session and the
    // coordinator aborts. See DESIGN.md section 11.2.
    send_yes();
    return;
  }

  if (CrashHere(SubPt(txn, CrashPt::kCascBeforePreparedForce,
                      CrashPt::kSubBeforePreparedForce)))
    return;
  TmRecordBody body;
  body.upstream = txn.upstream;
  for (const auto& c : txn.children)
    if (!(c.voted && c.vote == rm::Vote::kReadOnly && config_.read_only_opt))
      body.children.push_back(c.peer);
  const CrashPt after_force = SubPt(txn, CrashPt::kCascAfterPreparedForce,
                                    CrashPt::kSubAfterPreparedForce);
  AppendTmRecord(id, wal::RecordType::kTmPrepared,
                 /*force=*/!ForceDowngraded(), EncodeBody(body),
                 [this, after_force, send_yes] {
    if (CrashHereOrLegacy(after_force, fi_legacy_prepared_)) return;
    send_yes();
  });
}

void TransactionManager::OnDecisionPdu(const net::NodeId& from,
                                       const Pdu& pdu) {
  const bool commit = pdu.type == PduType::kCommit;
  Txn* txn = FindTxn(pdu.txn);

  if (txn == nullptr || txn->phase == Phase::kActive) {
    // Forgotten (or never-prepared) transaction receiving a decision:
    // abort any active work, then acknowledge from the archive so a
    // recovering coordinator can finish collecting acks.
    if (txn != nullptr && txn->phase == Phase::kActive) {
      AbortLocal(*txn);
      if (!up_) return;
      Forget(*txn);
    }
    const bool should_ack =
        commit ? BaseProtocol(config_.protocol) != ProtocolKind::kPresumedCommit
               : BaseProtocol(config_.protocol) != ProtocolKind::kPresumedAbort;
    if (should_ack) {
      Pdu ack;
      ack.type = PduType::kAck;
      ack.txn = pdu.txn;
      const TxnMeta* meta = FindMeta(pdu.txn);
      if (meta != nullptr && meta->has_view) {
        const Outcome o = meta->view.outcome;
        ack.heur_commit = o == Outcome::kHeuristicCommitted;
        ack.heur_abort = o == Outcome::kHeuristicAborted;
        ack.damage = (commit && o == Outcome::kHeuristicAborted) ||
                     (!commit && o == Outcome::kHeuristicCommitted) ||
                     meta->view.damage_reported_here;
      }
      SendPdu(from, std::move(ack));
    }
    return;
  }

  if (txn->phase == Phase::kAwaitLastAgent) {
    // The last agent we delegated to has decided.
    CancelTimers(*txn);
    if (txn->my_la_vote_ro) {
      // We voted read-only to the last agent: nothing to log or propagate
      // (our subtree was read-only too); report to the application. If the
      // decision was itself delegated to us by an upstream initiator (a
      // cascaded read-only delegation chain), relay it there exactly as a
      // fully read-only last agent replies — otherwise the outcome dies
      // here and every delegator above waits forever.
      txn->decided = true;
      txn->commit_decision = commit;
      txn->outcome = commit ? Outcome::kCommitted : Outcome::kAborted;
      if (txn->i_am_last_agent) {
        Pdu relay;
        relay.type = commit ? PduType::kCommit : PduType::kAbort;
        relay.txn = txn->id;
        relay.from_last_agent = true;
        SendPdu(txn->implied_ack_peer, std::move(relay));
      }
      CompleteApp(*txn, /*pending=*/false);
      Forget(*txn);
      return;
    }
    ApplyDecision(*txn, commit);
    return;
  }

  if (txn->phase == Phase::kInDoubt) {
    // Paxos Commit: the decision may come from a takeover leader rather
    // than the (possibly dead) root. The leader owns the decision now, so
    // acknowledgments must flow to it.
    if (IsPaxos(config_.protocol) && txn->has_upstream &&
        from != txn->upstream) {
      txn->upstream = from;
    }
    CancelTimers(*txn);
    if (txn->took_heuristic) {
      ResolveAfterHeuristic(*txn, commit);
      return;
    }
    ApplyDecision(*txn, commit);
    return;
  }

  if (txn->phase == Phase::kPreparing && commit &&
      IsPaxos(config_.protocol) && txn->paxos_voted_self) {
    // A takeover leader completed the consensus while we (the root) were
    // still collecting 2b's. Commit implies every instance — ours included —
    // was Prepared, so our local RMs are all prepared; adopt the decision.
    DecidePaxos(*txn, /*commit=*/true);
    return;
  }

  if (txn->phase == Phase::kPreparing && !commit) {
    // Abort while still preparing (e.g. a sibling voted NO).
    txn->any_no = true;
    if (txn->votes_outstanding == 0 && txn->rms_outstanding == 0)
      MaybePhaseOneComplete(*txn);
    return;
  }

  if (txn->phase == Phase::kDeciding && txn->decided &&
      !txn->commit_decision && !commit &&
      !(txn->has_upstream && from == txn->upstream)) {
    // Abort arriving from outside our own coordinator while we are already
    // aborting: this happens when two initiators raced (each side thinks
    // the other is its subordinate). Acknowledge directly — aborts are
    // final and idempotent — or the two trees livelock waiting for each
    // other's acks.
    if (BaseProtocol(config_.protocol) != ProtocolKind::kPresumedAbort) {
      Pdu ack;
      ack.type = PduType::kAck;
      ack.txn = pdu.txn;
      SendPdu(from, std::move(ack));
    }
    return;
  }
  // Duplicate decision from our coordinator while kDeciding: the normal
  // completion path will acknowledge (late-ack semantics preserved).
}

void TransactionManager::ResolveAfterHeuristic(Txn& txn, bool commit) {
  // Compare the heuristic decision with the real outcome.
  const bool we_committed = txn.outcome == Outcome::kHeuristicCommitted;
  const bool damage = we_committed != commit;
  txn.decided = true;
  txn.commit_decision = commit;
  txn.phase = Phase::kDeciding;
  if (damage) {
    ctx_->trace().Add({rt_->Now(), sim::TraceKind::kHeuristic, name_, "",
                       txn.id, "heuristic damage detected"});
  }
  txn.heur_commit = txn.heur_commit || we_committed;
  txn.heur_abort = txn.heur_abort || !we_committed;
  txn.damage = txn.damage || damage;
  // Propagate the real decision to our subtree (they are prepared and
  // must not be left blocked by our unilateral action); then the
  // normal completion path acks upstream with the damage report.
  SendDecision(txn, commit);
}

void TransactionManager::ApplyDecision(Txn& txn, bool commit) {
  const uint64_t id = txn.id;
  txn.decided = true;
  txn.commit_decision = commit;
  txn.phase = Phase::kDeciding;

  if (commit) {
    txn.outcome = Outcome::kCommitted;
    if (CrashHere(RolePt(txn, CrashPt::kRootBeforeCommitForce,
                         CrashPt::kCascBeforeCommitForce,
                         CrashPt::kSubBeforeCommitForce)))
      return;
    TmRecordBody body;
    body.upstream = txn.has_upstream ? txn.upstream : "";
    for (const auto& c : txn.children)
      if (!c.excluded) body.children.push_back(c.peer);
    // Presumed commit: the subordinate's commit record need not be forced —
    // losing it leaves the transaction in doubt, and "no information"
    // resolves to commit.
    const bool force_commit =
        !ForceDowngraded() &&
        BaseProtocol(config_.protocol) != ProtocolKind::kPresumedCommit;
    const CrashPt after = RolePt(txn, CrashPt::kRootAfterCommitForce,
                                 CrashPt::kCascAfterCommitForce,
                                 CrashPt::kSubAfterCommitForce);
    AppendTmRecord(id, wal::RecordType::kTmCommitted, force_commit,
                   EncodeBody(body), [this, id, after] {
      if (CrashHereOrLegacy(after, fi_legacy_commit_)) return;
      Txn* t = FindTxn(id);
      if (t == nullptr) return;
      SendDecision(*t, /*commit=*/true);
      if (!up_) return;
      t = FindTxn(id);
      if (t == nullptr) return;
      // Early acknowledgment: ack upstream as soon as our own commit is
      // durable, before the subtree acks arrive.
      if (config_.ack_timing == AckTiming::kEarly && t->has_upstream &&
          !t->i_am_last_agent && !t->ack_sent &&
          BaseProtocol(config_.protocol) != ProtocolKind::kPresumedCommit) {
        DoSendAck(*t, /*pending=*/false);
      }
    });
    return;
  }

  txn.outcome = Outcome::kAborted;
  if (BaseProtocol(config_.protocol) == ProtocolKind::kPresumedAbort) {
    // Non-forced abort record; no ack will be sent.
    if (CrashHere(RolePt(txn, CrashPt::kRootBeforeAbortWrite,
                         CrashPt::kCascBeforeAbortWrite,
                         CrashPt::kSubBeforeAbortWrite)))
      return;
    AppendTmRecord(id, wal::RecordType::kTmAborted, /*force=*/false, "",
                   nullptr);
    if (CrashHere(RolePt(txn, CrashPt::kRootAfterAbortWrite,
                         CrashPt::kCascAfterAbortWrite,
                         CrashPt::kSubAfterAbortWrite)))
      return;
    SendDecision(txn, /*commit=*/false);
    return;
  }
  if (CrashHere(RolePt(txn, CrashPt::kRootBeforeAbortForce,
                       CrashPt::kCascBeforeAbortForce,
                       CrashPt::kSubBeforeAbortForce)))
    return;
  TmRecordBody body;
  body.upstream = txn.has_upstream ? txn.upstream : "";
  for (const auto& c : txn.children)
    if (!c.excluded) body.children.push_back(c.peer);
  const CrashPt after = RolePt(txn, CrashPt::kRootAfterAbortForce,
                               CrashPt::kCascAfterAbortForce,
                               CrashPt::kSubAfterAbortForce);
  AppendTmRecord(id, wal::RecordType::kTmAborted, /*force=*/true,
                 EncodeBody(body), [this, id, after] {
    if (CrashHere(after)) return;
    Txn* t = FindTxn(id);
    if (t == nullptr) return;
    SendDecision(*t, /*commit=*/false);
  });
}

void TransactionManager::AckUpstreamIfReady(Txn& txn) {
  TPC_CHECK(txn.has_upstream);
  const bool pa = BaseProtocol(config_.protocol) == ProtocolKind::kPresumedAbort;
  const bool pn = BaseProtocol(config_.protocol) == ProtocolKind::kPresumedNothing;
  const uint64_t id = txn.id;

  // PA abort: no acknowledgment at all; forget immediately.
  if (!txn.commit_decision && pa) {
    Forget(txn);
    return;
  }

  // Presumed commit: commits are never acknowledged, and there is nothing
  // to close out.
  if (txn.commit_decision &&
      BaseProtocol(config_.protocol) == ProtocolKind::kPresumedCommit) {
    Forget(txn);
    return;
  }

  // A NO voter aborted on its own initiative; the acknowledgment answers
  // the coordinator's Abort *command* ("force write an abort record before
  // acknowledging an abort command"), which is served from the archive
  // when that command arrives.
  if (!txn.commit_decision && !txn.voted_yes) {
    WriteEndIfNeeded(txn, /*force=*/false, nullptr);
    if (!up_) return;
    Forget(txn);
    return;
  }

  // Reliable subtrees skip the explicit ack: it is buffered as an "implied
  // ack" that can ride a later message but never costs a flow of its own.
  if (txn.commit_decision && txn.my_vote_reliable &&
      config_.vote_reliable_opt && !txn.ack_sent) {
    txn.ack_sent = true;
    Pdu ack;
    ack.type = PduType::kAck;
    ack.txn = id;
    BufferPdu(txn.upstream, std::move(ack));
    WriteEndIfNeeded(txn, /*force=*/false, nullptr);
    if (!up_) return;
    Forget(txn);
    return;
  }

  if (txn.ack_sent) {
    // Early ack (or pending ack) already went out; just close the books.
    WriteEndIfNeeded(txn, /*force=*/false, nullptr);
    if (!up_) return;
    Forget(txn);
    return;
  }

  if (pn) {
    // PN: force the END record *before* acknowledging. Once we ack, the
    // coordinator may forget the transaction; with no presumption to fall
    // back on we must never come back asking.
    WriteEndIfNeeded(txn, /*force=*/true, [this, id] {
      Txn* t = FindTxn(id);
      if (t == nullptr) return;
      DoSendAck(*t, t->subtree_pending);
      if (!up_) return;
      t = FindTxn(id);
      if (t == nullptr) return;
      Forget(*t);
    });
    return;
  }

  DoSendAck(txn, txn.subtree_pending);
  if (!up_) return;
  Txn* t = FindTxn(id);
  if (t == nullptr) return;
  WriteEndIfNeeded(*t, /*force=*/false, nullptr);
  if (!up_) return;
  Forget(*t);
}

void TransactionManager::DoSendAck(Txn& txn, bool pending) {
  txn.ack_sent = true;
  Pdu ack;
  ack.type = PduType::kAck;
  ack.txn = txn.id;
  ack.outcome_pending = pending;
  // Heuristic report aggregation. PA (R*) reports damage to the immediate
  // coordinator only: what our children reported to us stops here. PN
  // propagates the full report toward the root.
  const bool pn = BaseProtocol(config_.protocol) == ProtocolKind::kPresumedNothing;
  const bool own_heur_commit = txn.outcome == Outcome::kHeuristicCommitted;
  const bool own_heur_abort = txn.outcome == Outcome::kHeuristicAborted;
  const bool own_damage = (txn.commit_decision && own_heur_abort) ||
                          (!txn.commit_decision && own_heur_commit);
  if (pn) {
    ack.heur_commit = txn.heur_commit || own_heur_commit;
    ack.heur_abort = txn.heur_abort || own_heur_abort;
    ack.damage = txn.damage || own_damage;
  } else {
    ack.heur_commit = own_heur_commit;
    ack.heur_abort = own_heur_abort;
    ack.damage = own_damage;
  }

  if (txn.upstream_long_locks) {
    // Long locks: the ack rides the first message of the next transaction.
    BufferPdu(txn.upstream, std::move(ack));
    return;
  }
  const CrashPt sent =
      SubPt(txn, CrashPt::kCascAfterAckSend, CrashPt::kSubAfterAckSend);
  SendPdu(txn.upstream, std::move(ack));
  if (CrashHere(sent)) return;
}

// ---------------------------------------------------------------------------
// In-doubt handling: heuristics and recovery inquiries
// ---------------------------------------------------------------------------

void TransactionManager::ArmHeuristicTimer(Txn& txn) {
  if (config_.heuristic_policy == HeuristicPolicy::kNever) return;
  const uint64_t id = txn.id;
  const uint64_t epoch = epoch_;
  txn.heur_timer_armed = true;
  txn.heur_timer = rt_->ArmTimer(config_.heuristic_delay,
                                                [this, epoch, id] {
    if (!up_ || epoch != epoch_) return;
    Txn* t = FindTxn(id);
    if (t == nullptr) return;
    t->heur_timer_armed = false;
    if (t->phase != Phase::kInDoubt && t->phase != Phase::kAwaitLastAgent)
      return;
    TakeHeuristicDecision(*t);
  });
}

void TransactionManager::TakeHeuristicDecision(Txn& txn) {
  const bool commit = config_.heuristic_policy == HeuristicPolicy::kCommit;
  const uint64_t id = txn.id;
  if (CrashHere(CrashPt::kSubBeforeHeuristicForce)) return;
  txn.took_heuristic = true;
  txn.outcome =
      commit ? Outcome::kHeuristicCommitted : Outcome::kHeuristicAborted;
  ctx_->trace().Add({rt_->Now(), sim::TraceKind::kHeuristic, name_, "", id,
                     commit ? "heuristic commit" : "heuristic abort"});
  TmRecordBody body;
  body.upstream = txn.has_upstream ? txn.upstream : "";
  body.heur_commit = commit;
  AppendTmRecord(id, wal::RecordType::kTmHeuristic, /*force=*/true,
                 EncodeBody(body), [this, epoch = epoch_, id, commit] {
    if (!up_ || epoch != epoch_) return;
    if (CrashHere(CrashPt::kSubAfterHeuristicForce)) return;
    Txn* t = FindTxn(id);
    if (t == nullptr) return;
    // Apply the unilateral outcome locally and release the valuable locks —
    // the entire reason heuristics exist. We stay registered so the real
    // decision (whenever it arrives) can be compared and damage reported.
    for (auto* rm : rms_) {
      if (!up_) return;
      if (commit) {
        rm->Commit(id, [](Status st) { TPC_CHECK(st.ok()); });
      } else {
        rm->Abort(id, [](Status st) { TPC_CHECK(st.ok()); });
      }
    }
    if (!up_) return;
    t = FindTxn(id);
    if (t == nullptr) return;
    // Children (if any) get our heuristic decision as if it were real;
    // leaving them blocked would defeat the purpose.
    bool sent = false;
    for (auto& child : t->children) {
      child.ack_required = false;
      if (child.excluded || !child.voted || child.vote != rm::Vote::kYes)
        continue;
      Pdu pdu;
      pdu.type = commit ? PduType::kCommit : PduType::kAbort;
      pdu.txn = id;
      SendPdu(child.peer, std::move(pdu));
      sent = true;
    }
    if (sent && CrashHere(CrashPt::kSubAfterHeurDecisionSend)) return;
  });
}

void TransactionManager::ArmInquiryTimer(Txn& txn) {
  // Coordinator-driven recovery under PN: the subordinate waits.
  if (BaseProtocol(config_.protocol) == ProtocolKind::kPresumedNothing) return;
  const uint64_t id = txn.id;
  const uint64_t epoch = epoch_;

  if (IsPaxos(config_.protocol)) {
    // Paxos Commit never inquires: a PA-presuming answer from a recovered
    // pre-decision root would say "aborted" while a takeover leader may
    // have committed. Instead the in-doubt participant *takes over* the
    // consensus itself — this is what makes the protocol non-blocking.
    txn.inq_timer_armed = true;
    txn.inq_timer = rt_->ArmTimer(config_.inquiry_delay, [this, epoch, id] {
      if (!up_ || epoch != epoch_) return;
      Txn* t = FindTxn(id);
      if (t == nullptr) return;
      t->inq_timer_armed = false;
      if (t->phase != Phase::kInDoubt) return;
      StartPaxosTakeover(*t);
      if (!up_) return;
      if (CrashHere(CrashPt::kSubAfterTakeoverSend)) return;
      t = FindTxn(id);
      if (t == nullptr || t->decided) return;
      ArmInquiryTimer(*t);  // keep trying until resolved
    });
    return;
  }

  txn.inq_timer_armed = true;
  txn.inq_timer = rt_->ArmTimer(config_.inquiry_delay,
                                               [this, epoch, id] {
    if (!up_ || epoch != epoch_) return;
    Txn* t = FindTxn(id);
    if (t == nullptr) return;
    t->inq_timer_armed = false;
    if (t->phase != Phase::kInDoubt && t->phase != Phase::kAwaitLastAgent)
      return;
    SendInquiry(*t);
    if (!up_) return;
    t = FindTxn(id);
    if (t == nullptr) return;
    ArmInquiryTimer(*t);  // keep asking until resolved
  });
}

void TransactionManager::SendInquiry(Txn& txn) {
  const bool la = txn.phase == Phase::kAwaitLastAgent;
  const net::NodeId target = la ? txn.last_agent_peer : txn.upstream;
  const CrashPt sent =
      la ? CrashPt::kRootAfterLaInquirySend : CrashPt::kSubAfterInquirySend;
  Pdu pdu;
  pdu.type = PduType::kInquiry;
  pdu.txn = txn.id;
  SendPdu(target, std::move(pdu));
  if (CrashHere(sent)) return;
}

void TransactionManager::OnInquiryPdu(const net::NodeId& from,
                                      const Pdu& pdu) {
  Pdu reply;
  reply.type = PduType::kInquiryReply;
  reply.txn = pdu.txn;

  Txn* txn = FindTxn(pdu.txn);
  if (txn != nullptr && txn->phase == Phase::kActive) {
    // A prepared participant thinks we own this transaction's decision,
    // but we never even began commit processing for it — the handoff (a
    // last-agent vote, typically) was lost with a crash and can never
    // arrive now (sessions are FIFO and a recovered initiator only
    // inquires or re-sends decisions). We never voted, so aborting our
    // own work and answering "aborted" is safe and unblocks the inquirer.
    AbortLocal(*txn);
    if (!up_) return;
    Forget(*txn);
    txn = nullptr;
  }
  if (txn != nullptr && txn->decided) {
    reply.answer = txn->commit_decision ? InquiryAnswer::kCommitted
                                        : InquiryAnswer::kAborted;
  } else if (txn != nullptr) {
    reply.answer = InquiryAnswer::kInDoubt;
  } else {
    const TxnMeta* meta = FindMeta(pdu.txn);
    if (meta != nullptr && meta->has_view) {
      reply.answer = CommittedEffects(meta->view.outcome)
                         ? InquiryAnswer::kCommitted
                         : InquiryAnswer::kAborted;
    } else if (IsPaxos(config_.protocol)) {
      // No unilateral presumption exists: the outcome belongs to the
      // acceptor set, and paxos participants resolve by takeover, not
      // inquiry. Answering "aborted" here would race a takeover commit.
      reply.answer = InquiryAnswer::kUnknown;
    } else if (config_.protocol == ProtocolKind::kPresumedAbort ||
               config_.protocol == ProtocolKind::kOnePhase ||
               config_.protocol == ProtocolKind::kOnePhaseLogless) {
      // The presumption that gives PA its name: no information => abort.
      // The one-phase family inherits it.
      reply.answer = InquiryAnswer::kAborted;
    } else if (config_.protocol == ProtocolKind::kPresumedCommit) {
      reply.answer = InquiryAnswer::kCommitted;
    } else {
      // Baseline/PN cannot presume: the inquirer stays blocked.
      reply.answer = InquiryAnswer::kUnknown;
    }
  }
  SendPdu(from, std::move(reply));
  if (CrashHere(CrashPt::kAnyAfterInquiryReplySend)) return;
}

void TransactionManager::OnInquiryReplyPdu(const net::NodeId& from,
                                           const Pdu& pdu) {
  (void)from;
  Txn* txn = FindTxn(pdu.txn);
  if (txn == nullptr) return;
  if (txn->phase != Phase::kInDoubt && txn->phase != Phase::kAwaitLastAgent)
    return;
  switch (pdu.answer) {
    case InquiryAnswer::kCommitted:
    case InquiryAnswer::kAborted: {
      const bool commit = pdu.answer == InquiryAnswer::kCommitted;
      CancelTimers(*txn);
      // A participant that already took a heuristic decision must run the
      // damage comparison, exactly as when the decision arrives as a
      // Commit/Abort PDU — resolving via inquiry must not silently swallow
      // a heuristic mismatch.
      if (txn->took_heuristic) {
        ResolveAfterHeuristic(*txn, commit);
      } else {
        ApplyDecision(*txn, commit);
      }
      break;
    }
    case InquiryAnswer::kUnknown:
    case InquiryAnswer::kInDoubt:
      // Stay blocked; the inquiry timer will fire again.
      break;
  }
}

// ---------------------------------------------------------------------------
// One-phase family
// ---------------------------------------------------------------------------

void TransactionManager::ArmEarlyPrepare(Txn& txn) {
  if (txn.ep_timer_armed) {
    rt_->CancelTimer(txn.ep_timer);
    txn.ep_timer_armed = false;
  }
  const uint64_t id = txn.id;
  const uint64_t epoch = epoch_;
  txn.ep_timer_armed = true;
  txn.ep_timer = rt_->ArmTimer(config_.early_prepare_delay,
                               [this, epoch, id] {
    if (!up_ || epoch != epoch_) return;
    Txn* t = FindTxn(id);
    if (t == nullptr) return;
    t->ep_timer_armed = false;
    if (t->phase != Phase::kActive || t->is_root || !t->has_work_source ||
        t->unsolicited_sent)
      return;
    UnsolicitedPrepare(id);
  });
}

// ---------------------------------------------------------------------------
// Paxos Commit
// ---------------------------------------------------------------------------

bool TransactionManager::IsAcceptor() const {
  for (const auto& acc : config_.acceptors)
    if (acc == name_) return true;
  return false;
}

uint64_t TransactionManager::PaxosBallot(uint64_t attempt) const {
  const uint64_t n = static_cast<uint64_t>(config_.acceptors.size());
  uint64_t rank = n;  // non-acceptor leaders draw from the top residue
  for (uint64_t i = 0; i < n; ++i) {
    if (config_.acceptors[i] == name_) {
      rank = i;
      break;
    }
  }
  // Saturate instead of wrapping: at the cap every leader still draws a
  // distinct ballot (the rank residue survives), and a capped ballot can
  // never fall back under an already-promised one — dueling takeovers
  // plateau at the cap rather than colliding or regressing.
  const uint64_t cap =
      (std::numeric_limits<uint64_t>::max() - (n + 1)) / (n + 1);
  if (attempt > cap) attempt = cap;
  return attempt * (n + 1) + rank + 1;
}

TransactionManager::Txn::PaxosInst* TransactionManager::FindInst(
    Txn& txn, std::string_view name) {
  for (auto& inst : txn.paxos_insts)
    if (inst.name == name) return &inst;
  return nullptr;
}

void TransactionManager::SendPaxosPdu(const net::NodeId& peer, PduType type,
                                      uint64_t id, const PaxosBody& body) {
  // Paxos traffic runs between nodes that may never have exchanged app
  // data (leader -> acceptor, takeover -> cohort): make sure the session
  // exists before the send-path asserts on it.
  SessionSlot(peer);
  paxos_wire_.clear();
  EncodePaxosBody(body, &paxos_wire_);
  Pdu pdu;
  pdu.type = type;
  pdu.txn = id;
  SendPdu(peer, std::move(pdu), paxos_wire_);
}

void TransactionManager::SendPaxosBundle(const net::NodeId& peer,
                                         PduType type, uint64_t id,
                                         const PaxosBody& body) {
  SessionSlot(peer);
  paxos_wire_.clear();
  EncodePaxosBundle(body, &paxos_wire_);
  Pdu pdu;
  pdu.type = type;
  pdu.txn = id;
  SendPdu(peer, std::move(pdu), paxos_wire_);
}

bool TransactionManager::PaxosSelfAccept(Txn& txn, bool prepared) {
  if (!IsAcceptor()) return false;
  const uint64_t id = txn.id;
  const net::NodeId leader = txn.has_upstream ? txn.upstream : name_;
  if (!acceptor_.Accept(id, name_, 0, prepared, txn.paxos_cohort, leader))
    return false;  // a takeover ballot already outbid our ballot-0 vote
  // The snapshot is appended NON-forced: the caller's prepared-record force
  // immediately follows and covers it, so vote + accept cost one durable
  // write. (A NO voter has no prepared force; its acceptance stays safely
  // volatile — Aborted is the free choice a takeover lands on anyway.)
  std::string snap;
  acceptor_.EncodeSnapshot(id, &snap);
  AppendTmRecord(id, wal::RecordType::kTmAccept, /*force=*/false,
                 std::move(snap), nullptr);
  return true;
}

void TransactionManager::SendPaxosVote(Txn& txn, bool prepared,
                                       CrashPt after_send,
                                       bool self_accepted) {
  const uint64_t id = txn.id;
  txn.paxos_voted_self = true;
  // Stack body: the co-located self-delivery below may reuse paxos_wire_.
  PaxosBody body;
  body.ballot = 0;
  body.prepared = prepared;
  body.instance = name_;
  body.leader = txn.has_upstream ? txn.upstream : name_;
  body.cohort = txn.paxos_cohort;
  body.acceptors = config_.acceptors;
  bool sent = false;
  for (const auto& acc : config_.acceptors) {
    if (acc == name_) continue;  // the self-accept rode the prepared force
    SendPaxosPdu(acc, PduType::kPaxosAccept, id, body);
    sent = true;
  }
  if (sent && CrashHere(after_send)) return;
  if (!IsAcceptor()) return;
  if (!self_accepted) {
    // The combined-force fold did not happen (a takeover outbid ballot 0
    // before we voted): run the classic accept path, which rechecks the
    // ballot and forces before any reply. May complete synchronously.
    AcceptorOnAccept(body.leader, id, name_, 0, prepared, body.cohort,
                     body.leader);
    return;
  }
  // Our acceptance already rode the prepared force; reply (bundled) once
  // the whole cohort's instances are in. May decide synchronously.
  AcceptorMaybeReply(body.leader, id);
}

void TransactionManager::StartPaxosCommit(Txn& txn) {
  // Every local RM voted YES/RO and no NO arrived: our own instance
  // proposes Prepared. The decision itself now belongs to the consensus —
  // we stay kPreparing and learn the outcome from the acceptors' 2b's.
  const uint64_t id = txn.id;
  TmRecordBody body;
  body.is_root = true;
  body.cohort = txn.paxos_cohort;
  const bool self_accepted = PaxosSelfAccept(txn, /*prepared=*/true);
  if (self_accepted && CrashHere(CrashPt::kRootBeforeVoteAcceptForce)) return;
  // F = 0 degenerate: we are the only acceptor, so the 2a fan-out
  // externalizes nothing — every later externalization (a 1b/2b reply's
  // snapshot force, or our own decision force) covers these buffered
  // records, and losing them in a crash aborts by presumption exactly as
  // 2PC would. The vote then costs no force at all, collapsing the
  // protocol to Presumed-Abort cost.
  const bool lazy_f0 = config_.acceptors.size() == 1 && IsAcceptor();
  AppendTmRecord(id, wal::RecordType::kTmPrepared,
                 /*force=*/!ForceDowngraded() && !lazy_f0, EncodeBody(body),
                 [this, id, self_accepted] {
    if (self_accepted && CrashHere(CrashPt::kRootAfterVoteAcceptForce))
      return;
    Txn* t = FindTxn(id);
    if (t == nullptr) return;
    ArmPaxosRetry(*t);
    SendPaxosVote(*t, /*prepared=*/true, CrashPt::kRootAfterPaxosVoteSend,
                  self_accepted);
  });
}

void TransactionManager::ArmPaxosRetry(Txn& txn) {
  if (txn.vote_timer_armed) {
    rt_->CancelTimer(txn.vote_timer);
    txn.vote_timer_armed = false;
  }
  const uint64_t id = txn.id;
  const uint64_t epoch = epoch_;
  txn.vote_timer_armed = true;
  txn.vote_timer = rt_->ArmTimer(config_.vote_timeout, [this, epoch, id] {
    if (!up_ || epoch != epoch_) return;
    Txn* t = FindTxn(id);
    if (t == nullptr) return;
    t->vote_timer_armed = false;
    // kPreparing is the live ballot-0 round; kInDoubt is a recovered root
    // re-driving the consensus as a takeover leader. Both must keep
    // re-bidding until decided, or a stalled takeover (partition, dueling
    // leader) would block forever after its first attempt.
    if (t->decided ||
        (t->phase != Phase::kPreparing && t->phase != Phase::kInDoubt))
      return;
    // Some instance is stuck (a crashed participant never voted, or our
    // 2a/2b traffic was lost): run a takeover round at a fresh ballot to
    // finish the consensus — Aborted by default for silent instances.
    StartPaxosTakeover(*t);
    if (!up_) return;
    t = FindTxn(id);
    if (t == nullptr || t->decided) return;
    ArmPaxosRetry(*t);
  });
}

void TransactionManager::StartPaxosTakeover(Txn& txn) {
  if (txn.decided) return;
  const uint64_t id = txn.id;
  txn.paxos_leader = true;
  txn.paxos_phase1 = true;
  txn.paxos_promises = 0;
  txn.paxos_ballot = PaxosBallot(txn.takeover_attempt++);
  // (Re)build the instance table from the cohort; phase 1 repopulates the
  // discovered values.
  txn.paxos_insts.clear();
  for (const auto& member : txn.paxos_cohort) {
    txn.paxos_insts.emplace_back();
    txn.paxos_insts.back().name = member;
  }
  ctx_->trace().Add({rt_->Now(), sim::TraceKind::kState, name_, "", id,
                     StringPrintf("paxos takeover, ballot %llu",
                                  static_cast<unsigned long long>(
                                      txn.paxos_ballot))});
  // Tell the other cohort members we are driving, so they back their own
  // takeover timers off instead of dueling ballots.
  {
    PaxosBody note;
    note.leader = name_;
    note.cohort = txn.paxos_cohort;
    note.acceptors = config_.acceptors;
    for (const auto& member : txn.paxos_cohort) {
      if (member == name_) continue;
      SendPaxosPdu(member, PduType::kPaxosTakeover, id, note);
    }
  }
  // Phase 1a to every acceptor.
  PaxosBody query;
  query.ballot = txn.paxos_ballot;
  query.leader = name_;
  bool sent = false;
  for (const auto& acc : config_.acceptors) {
    if (acc == name_) continue;
    SendPaxosPdu(acc, PduType::kPaxosQuery, id, query);
    sent = true;
  }
  if (sent && CrashHere(CrashPt::kTakeoverAfterQuerySend)) return;
  if (IsAcceptor()) AcceptorOnQuery(name_, id, query.ballot);
}

void TransactionManager::SendPaxosProposals(Txn& txn) {
  txn.paxos_phase1 = false;
  const uint64_t id = txn.id;
  const uint64_t ballot = txn.paxos_ballot;
  // The classic rule: an instance whose value some acceptor reported must
  // be re-proposed at that value; a free instance (no acceptor accepted
  // anything) is proposed Aborted — its participant never voted, and
  // Aborted is always safe for an unvoted instance.
  for (auto& inst : txn.paxos_insts) {
    inst.acks = 0;
    inst.done = false;
    inst.value = inst.seen_any ? inst.seen_value : false;
  }
  // One 2a bundle per acceptor: every instance's proposal rides one PDU,
  // and the acceptor answers the whole transaction with one covering force
  // and one bundled 2b (the paper's bundling optimization) instead of a
  // force and a reply per instance.
  PaxosBody body;
  body.ballot = ballot;
  body.leader = name_;
  body.cohort = txn.paxos_cohort;
  body.acceptors = config_.acceptors;
  for (const auto& inst : txn.paxos_insts)
    body.accepted.push_back({inst.name, ballot, inst.value});
  for (const auto& acc : config_.acceptors) {
    if (acc == name_) continue;
    SendPaxosBundle(acc, PduType::kPaxosAcceptBundle, id, body);
  }
  if (CrashHere(CrashPt::kTakeoverAfterProposalSend)) return;
  if (IsAcceptor()) {
    // Copy what self-delivery needs: the bundle's force callback can
    // complete instances and even decide + forget the transaction.
    const std::vector<PaxosAccepted> mine = std::move(body.accepted);
    const std::vector<std::string> cohort = txn.paxos_cohort;
    AcceptorOnAcceptBundle(name_, id, ballot, mine, cohort);
  }
}

void TransactionManager::CheckPaxosOutcome(Txn& txn) {
  bool commit = true;
  for (const auto& inst : txn.paxos_insts) {
    if (!inst.done) return;
    if (!inst.value) commit = false;
  }
  DecidePaxos(txn, commit);
}

void TransactionManager::DecidePaxos(Txn& txn, bool commit) {
  if (txn.decided) return;
  CancelTimers(txn);
  txn.paxos_leader = false;
  txn.paxos_phase1 = false;
  // The consensus owner drives phase two for the whole cohort, root or not:
  // a takeover leader simply becomes the coordinator the root would have
  // been. Cohort members not already children gain a prepared-child entry;
  // under the PA base, unnecessary or duplicate decisions are answered
  // idempotently from the receivers' archives.
  txn.has_upstream = false;
  for (const auto& member : txn.paxos_cohort) {
    if (member == name_) continue;
    Child* child = nullptr;
    for (auto& c : txn.children)
      if (c.peer == member) child = &c;
    if (child == nullptr) {
      txn.children.emplace_back();
      child = &txn.children.back();
      child->peer = member;
    }
    child->voted = true;
    child->vote = rm::Vote::kYes;
    child->prepare_sent = true;
  }
  DecideAndPropagate(txn, commit);
}

void TransactionManager::AcceptorOnAccept(
    const net::NodeId& leader, uint64_t id, const net::NodeId& instance,
    uint64_t ballot, bool prepared, const std::vector<std::string>& cohort,
    const net::NodeId& leader0) {
  if (!IsAcceptor()) return;  // stray traffic
  if (!acceptor_.Accept(id, instance, ballot, prepared, cohort, leader0))
    return;  // promised a higher ballot: the proposer is stale
  if (ballot == 0) {
    // Ballot-0 votes arrive one per participant. Defer the reply until the
    // whole cohort's instances are in, so the transaction costs this
    // acceptor ONE covering force and ONE bundled 2b instead of one of
    // each per instance (the paper's bundling optimization). Deferral is
    // liveness-safe: the leader cannot decide without every instance
    // anyway, and a lost vote is redriven by the takeover machinery.
    AcceptorMaybeReply(leader, id);
    return;
  }
  // A singleton 2a at a takeover ballot (wire compatibility; live takeover
  // leaders now send bundles): classic immediate path — force, then the
  // per-instance 2b.
  if (CrashHere(CrashPt::kAcceptorBeforeAcceptForce)) return;
  // The acceptor's word must survive its crash: force the snapshot before
  // the 2b leaves. Last-record-wins on recovery.
  std::string snap;
  acceptor_.EncodeSnapshot(id, &snap);
  AppendTmRecord(id, wal::RecordType::kTmAccept, /*force=*/true,
                 std::move(snap),
                 [this, id, leader, instance, ballot, prepared] {
    if (CrashHere(CrashPt::kAcceptorAfterAcceptForce)) return;
    if (leader == name_) {
      LeaderOnAccepted(id, instance, ballot, prepared);
      return;
    }
    PaxosBody reply;  // 2b
    reply.ballot = ballot;
    reply.prepared = prepared;
    reply.instance = instance;
    SendPaxosPdu(leader, PduType::kPaxosAccepted, id, reply);
    CrashHere(CrashPt::kAcceptorAfterAcceptedSend);
  });
}

void TransactionManager::AcceptorMaybeReply(const net::NodeId& fallback_leader,
                                            uint64_t id) {
  const AcceptorTxn* state = acceptor_.Find(id);
  if (state == nullptr) return;
  if (!acceptor_.HasAllInstances(id)) return;  // defer; more votes coming
  const net::NodeId leader =
      state->leader0.empty() ? fallback_leader : state->leader0;
  if (leader == name_) {
    // Externalization rule: we are the ballot-0 leader, so acceptance and
    // observation live on one node — the decision record's force is the
    // durability barrier, and the snapshot rides non-forced under it. A
    // crash loses the acceptances and their observation together.
    std::string snap;
    acceptor_.EncodeSnapshot(id, &snap);
    AppendTmRecord(id, wal::RecordType::kTmAccept, /*force=*/false,
                   std::move(snap), nullptr);
    // Copy the entries out: LeaderOnAccepted can decide the transaction
    // and reclaim the acceptor state under the iteration.
    paxos_entries_.clear();
    for (const auto& acc : state->accepted)
      paxos_entries_.push_back({acc.name, acc.ballot, acc.prepared});
    for (const PaxosAccepted& e : paxos_entries_) {
      LeaderOnAccepted(id, e.instance, e.ballot, e.prepared);
      if (!up_) return;
    }
    return;
  }
  if (CrashHere(CrashPt::kAcceptorBeforeBundleForce)) return;
  std::string snap;
  acceptor_.EncodeSnapshot(id, &snap);
  AppendTmRecord(id, wal::RecordType::kTmAccept, /*force=*/true,
                 std::move(snap), [this, id, leader] {
    if (CrashHere(CrashPt::kAcceptorAfterBundleForce)) return;
    const AcceptorTxn* state = acceptor_.Find(id);
    // promised != 0 means a takeover outbid the ballot-0 round while the
    // force was in flight: entries may now hold the new leader's values,
    // and a ballot-0 bundle misreporting them could let the old leader
    // count a cross-ballot majority. The new leader's own bundle reply
    // supersedes ours; stay silent.
    if (state == nullptr || state->promised != 0) return;
    PaxosBody reply;  // bundled 2b: every instance in one PDU
    reply.ballot = 0;
    reply.accepted.clear();
    for (const auto& acc : state->accepted)
      reply.accepted.push_back({acc.name, acc.ballot, acc.prepared});
    SendPaxosBundle(leader, PduType::kPaxosAcceptedBundle, id, reply);
    CrashHere(CrashPt::kAcceptorAfterBundleSend);
  });
}

void TransactionManager::AcceptorOnAcceptBundle(
    const net::NodeId& leader, uint64_t id, uint64_t ballot,
    const std::vector<PaxosAccepted>& entries,
    const std::vector<std::string>& cohort) {
  if (!IsAcceptor() || entries.empty()) return;
  bool any = false;
  for (const PaxosAccepted& e : entries)
    any |= acceptor_.Accept(id, e.instance, ballot, e.prepared, cohort, "");
  if (!any) return;  // a higher ballot was promised: the proposer is stale
  if (CrashHere(CrashPt::kAcceptorBeforeBundleForce)) return;
  // One covering force for every instance of the transaction, then one
  // bundled 2b to the proposing leader.
  std::string snap;
  acceptor_.EncodeSnapshot(id, &snap);
  AppendTmRecord(id, wal::RecordType::kTmAccept, /*force=*/true,
                 std::move(snap), [this, id, leader, ballot] {
    if (CrashHere(CrashPt::kAcceptorAfterBundleForce)) return;
    const AcceptorTxn* state = acceptor_.Find(id);
    // Outbid while the force was in flight: the higher-ballot leader's
    // reply supersedes ours (see the ballot-0 bundle path).
    if (state == nullptr || state->promised != ballot) return;
    if (leader == name_) {
      paxos_entries_.clear();
      for (const auto& acc : state->accepted)
        if (acc.ballot == ballot)
          paxos_entries_.push_back({acc.name, acc.ballot, acc.prepared});
      for (const PaxosAccepted& e : paxos_entries_) {
        LeaderOnAccepted(id, e.instance, ballot, e.prepared);
        if (!up_) return;
      }
      return;
    }
    PaxosBody reply;
    reply.ballot = ballot;
    for (const auto& acc : state->accepted)
      if (acc.ballot == ballot)
        reply.accepted.push_back({acc.name, acc.ballot, acc.prepared});
    SendPaxosBundle(leader, PduType::kPaxosAcceptedBundle, id, reply);
    CrashHere(CrashPt::kAcceptorAfterBundleSend);
  });
}

void TransactionManager::AcceptorReclaim(uint64_t id) {
  if (!acceptor_.Erase(id)) return;
  // Tombstone: an empty snapshot — last-record-wins replay then ends with
  // the entry reclaimed instead of resurrected. Non-forced: losing it in a
  // crash resurrects a stale entry (bounded memory, not correctness).
  std::string snap;
  acceptor_.EncodeSnapshot(id, &snap);
  AppendTmRecord(id, wal::RecordType::kTmAccept, /*force=*/false,
                 std::move(snap), nullptr);
}

void TransactionManager::PaxosBroadcastEnd(Txn& txn) {
  const uint64_t id = txn.id;
  AcceptorReclaim(id);
  // Buffered, not sent: kPaxosEnd rides the session outbox and piggybacks
  // on the next message to each acceptor (zero extra flows) — reclamation
  // is a hint, never a protocol step.
  for (const auto& acc : config_.acceptors) {
    if (acc == name_) continue;
    Pdu pdu;
    pdu.type = PduType::kPaxosEnd;
    pdu.txn = id;
    BufferPdu(acc, std::move(pdu));
  }
}

void TransactionManager::AcceptorOnQuery(const net::NodeId& leader,
                                         uint64_t id, uint64_t ballot) {
  if (!IsAcceptor()) return;
  if (!acceptor_.Promise(id, ballot)) {
    // Nack: tell the stale leader which ballot outbid it (no durable
    // change happened, so no force).
    const uint64_t promised = acceptor_.Promised(id);
    if (leader == name_) {
      Txn* t = LeaderForPromise(id, ballot);
      if (t != nullptr) LeaderPromiseNack(*t, promised);
      return;
    }
    PaxosBody reply;
    reply.ballot = ballot;
    reply.granted = false;
    reply.promised = promised;
    SendPaxosPdu(leader, PduType::kPaxosPromise, id, reply);
    return;
  }
  if (CrashHere(CrashPt::kAcceptorBeforeAcceptForce)) return;
  std::string snap;
  acceptor_.EncodeSnapshot(id, &snap);
  AppendTmRecord(id, wal::RecordType::kTmAccept, /*force=*/true,
                 std::move(snap), [this, id, leader, ballot] {
    const AcceptorTxn* state = acceptor_.Find(id);
    if (leader == name_) {
      Txn* t = LeaderForPromise(id, ballot);
      if (t == nullptr) return;
      if (state != nullptr) {
        if (t->paxos_cohort.size() < state->cohort.size())
          t->paxos_cohort = state->cohort;
        for (const auto& acc : state->accepted)
          LeaderMergeAccepted(*t, acc.name, acc.ballot, acc.prepared);
      }
      LeaderPromiseGranted(*t);
      return;
    }
    PaxosBody reply;  // 1b
    reply.ballot = ballot;
    reply.granted = true;
    if (state != nullptr) {
      reply.cohort = state->cohort;
      reply.leader = state->leader0;
      for (const auto& acc : state->accepted)
        reply.accepted.push_back({acc.name, acc.ballot, acc.prepared});
    }
    SendPaxosPdu(leader, PduType::kPaxosPromise, id, reply);
    CrashHere(CrashPt::kAcceptorAfterPromiseSend);
  });
}

void TransactionManager::LeaderOnAccepted(uint64_t id,
                                          std::string_view instance,
                                          uint64_t ballot, bool prepared) {
  Txn* txn = FindTxn(id);
  if (txn == nullptr || !txn->paxos_leader || txn->decided) return;
  if (txn->paxos_phase1) return;            // still collecting promises
  if (ballot != txn->paxos_ballot) return;  // stragglers of an old round
  Txn::PaxosInst* inst = FindInst(*txn, instance);
  if (inst == nullptr || inst->done) return;
  inst->value = prepared;  // every 2b at one ballot carries the same value
  ++inst->acks;
  if (!PaxosAcceptor::IsMajority(inst->acks, config_.acceptors.size()))
    return;
  inst->done = true;
  CheckPaxosOutcome(*txn);
}

TransactionManager::Txn* TransactionManager::LeaderForPromise(
    uint64_t id, uint64_t ballot) {
  Txn* txn = FindTxn(id);
  if (txn == nullptr || !txn->paxos_leader || !txn->paxos_phase1) return nullptr;
  if (txn->decided || txn->paxos_ballot != ballot) return nullptr;
  return txn;
}

void TransactionManager::LeaderMergeAccepted(Txn& txn,
                                             std::string_view instance,
                                             uint64_t ballot, bool prepared) {
  Txn::PaxosInst* inst = FindInst(txn, instance);
  if (inst == nullptr) {
    // An instance we did not know about (our cohort view was thinner than
    // the acceptor's): adopt it.
    txn.paxos_cohort.emplace_back(instance);
    txn.paxos_insts.emplace_back();
    inst = &txn.paxos_insts.back();
    inst->name.assign(instance);
  }
  if (!inst->seen_any || ballot >= inst->seen_ballot) {
    inst->seen_any = true;
    inst->seen_ballot = ballot;
    inst->seen_value = prepared;
  }
}

void TransactionManager::LeaderPromiseGranted(Txn& txn) {
  ++txn.paxos_promises;
  if (!PaxosAcceptor::IsMajority(txn.paxos_promises,
                                 config_.acceptors.size()))
    return;
  SendPaxosProposals(txn);
}

void TransactionManager::LeaderPromiseNack(Txn& txn, uint64_t promised) {
  // A higher ballot is active (another leader is driving). Stop this round
  // and let the retry timer re-run the takeover with a ballot above the
  // one that outbid us — immediate re-bidding would duel. `promised` is
  // wire data: the division keeps the derived attempt in range (PaxosBallot
  // saturates it again anyway), so a hostile value cannot wrap us to 0.
  const uint64_t n = static_cast<uint64_t>(config_.acceptors.size()) + 1;
  const uint64_t attempt = promised / n + 1;
  if (attempt > txn.takeover_attempt) txn.takeover_attempt = attempt;
  txn.paxos_phase1 = false;
}

void TransactionManager::OnPaxosAcceptPdu(const net::NodeId& from,
                                          const Pdu& pdu,
                                          std::string_view data) {
  if (!DecodePaxosBody(data, &paxos_in_).ok()) return;  // drop malformed
  const net::NodeId& leader =
      paxos_in_.leader.empty() ? from : paxos_in_.leader;
  AcceptorOnAccept(leader, pdu.txn, paxos_in_.instance, paxos_in_.ballot,
                   paxos_in_.prepared, paxos_in_.cohort, leader);
}

void TransactionManager::OnPaxosAcceptBundlePdu(const net::NodeId& from,
                                                const Pdu& pdu,
                                                std::string_view data) {
  if (!DecodePaxosBundle(data, &paxos_in_).ok()) return;  // drop malformed
  const net::NodeId& leader =
      paxos_in_.leader.empty() ? from : paxos_in_.leader;
  AcceptorOnAcceptBundle(leader, pdu.txn, paxos_in_.ballot,
                         paxos_in_.accepted, paxos_in_.cohort);
}

void TransactionManager::OnPaxosAcceptedBundlePdu(const Pdu& pdu,
                                                  std::string_view data) {
  if (!DecodePaxosBundle(data, &paxos_in_).ok()) return;
  // Copy out of the reused decode scratch: completing an instance can
  // decide the transaction and drive sends that re-enter the codec.
  paxos_entries_.assign(paxos_in_.accepted.begin(), paxos_in_.accepted.end());
  const uint64_t ballot = paxos_in_.ballot;
  for (const PaxosAccepted& e : paxos_entries_) {
    LeaderOnAccepted(pdu.txn, e.instance, ballot, e.prepared);
    if (!up_) return;
  }
}

void TransactionManager::OnPaxosEndPdu(const Pdu& pdu) {
  // The decision owner finished resolving everywhere: our acceptor state
  // for this transaction can never be read by a takeover again.
  AcceptorReclaim(pdu.txn);
}

void TransactionManager::OnPaxosAcceptedPdu(const Pdu& pdu,
                                            std::string_view data) {
  if (!DecodePaxosBody(data, &paxos_in_).ok()) return;
  LeaderOnAccepted(pdu.txn, paxos_in_.instance, paxos_in_.ballot,
                   paxos_in_.prepared);
}

void TransactionManager::OnPaxosQueryPdu(const net::NodeId& from,
                                         const Pdu& pdu,
                                         std::string_view data) {
  if (!DecodePaxosBody(data, &paxos_in_).ok()) return;
  AcceptorOnQuery(from, pdu.txn, paxos_in_.ballot);
}

void TransactionManager::OnPaxosPromisePdu(const Pdu& pdu,
                                           std::string_view data) {
  if (!DecodePaxosBody(data, &paxos_in_).ok()) return;
  Txn* txn = LeaderForPromise(pdu.txn, paxos_in_.ballot);
  if (txn == nullptr) return;
  if (!paxos_in_.granted) {
    LeaderPromiseNack(*txn, paxos_in_.promised);
    return;
  }
  // Merge the acceptor's knowledge: a fuller cohort first, then the
  // accepted values (LeaderMergeAccepted grows the instance table for
  // members we did not know).
  for (const auto& member : paxos_in_.cohort)
    if (FindInst(*txn, member) == nullptr) {
      txn->paxos_cohort.push_back(member);
      txn->paxos_insts.emplace_back();
      txn->paxos_insts.back().name = member;
    }
  for (const auto& acc : paxos_in_.accepted)
    LeaderMergeAccepted(*txn, acc.instance, acc.ballot, acc.prepared);
  LeaderPromiseGranted(*txn);
}

void TransactionManager::OnPaxosTakeoverPdu(const net::NodeId& from,
                                            const Pdu& pdu,
                                            std::string_view data) {
  (void)from;
  if (!DecodePaxosBody(data, &paxos_in_).ok()) return;
  Txn* txn = FindTxn(pdu.txn);
  if (txn == nullptr || txn->phase != Phase::kInDoubt || txn->decided) return;
  if (txn->paxos_leader) return;  // we are driving too; ballots arbitrate
  if (txn->paxos_cohort.size() < paxos_in_.cohort.size())
    txn->paxos_cohort = paxos_in_.cohort;
  // Back off: restart our takeover clock instead of starting a duel.
  if (txn->inq_timer_armed) {
    rt_->CancelTimer(txn->inq_timer);
    txn->inq_timer_armed = false;
  }
  ArmInquiryTimer(*txn);
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

void TransactionManager::AbortLocal(Txn& txn) {
  for (auto* rm : rms_) {
    if (!up_) return;
    rm->Abort(txn.id, [](Status st) { TPC_CHECK(st.ok()); });
  }
  if (!up_) return;
  txn.outcome = Outcome::kAborted;
}

void TransactionManager::CancelTimers(Txn& txn) {
  if (txn.heur_timer_armed) {
    rt_->CancelTimer(txn.heur_timer);
    txn.heur_timer_armed = false;
  }
  if (txn.inq_timer_armed) {
    rt_->CancelTimer(txn.inq_timer);
    txn.inq_timer_armed = false;
  }
  if (txn.vote_timer_armed) {
    rt_->CancelTimer(txn.vote_timer);
    txn.vote_timer_armed = false;
  }
  if (txn.ep_timer_armed) {
    rt_->CancelTimer(txn.ep_timer);
    txn.ep_timer_armed = false;
  }
  for (auto& child : txn.children) {
    if (child.ack_timer_armed) {
      rt_->CancelTimer(child.ack_timer);
      child.ack_timer_armed = false;
    }
  }
}

void TransactionManager::Forget(Txn& txn) {
  CancelTimers(txn);
  if (IsPaxos(config_.protocol) && txn.decided) {
    if (!txn.has_upstream) {
      // The decision owner forgets only once the outcome is stable at every
      // cohort member (commit: all acks are in; abort: the free choice a
      // takeover lands on anyway) — acceptor state for this transaction is
      // dead weight everywhere. Reclaim ours, hint the rest.
      PaxosBroadcastEnd(txn);
    } else if (!txn.commit_decision) {
      // A locally-decided abort (NO voter): our acceptor state can only
      // re-abort, so reclaim it now; the owner's kPaxosEnd covers peers.
      AcceptorReclaim(txn.id);
    }
  }
  TxnView view;
  view.outcome = txn.outcome;
  const bool mismatch = (txn.commit_decision && txn.heur_abort) ||
                        (!txn.commit_decision && txn.heur_commit) ||
                        txn.damage;
  view.damage_reported_here = mismatch;

  // A committed transaction whose subordinate voted OK_TO_LEAVE_OUT
  // suspends that session (leave-out bookkeeping; the vote is a protected
  // variable — it only takes effect on commit).
  if (txn.commit_decision) {
    for (const auto& child : txn.children) {
      if (child.voted && child.ok_leave_out) {
        Session* session = FindSession(child.peer);
        if (session != nullptr) session->suspended_leave_out = true;
      }
    }
  }

  TxnMeta& meta = MetaSlot(txn.id);
  meta.has_view = true;
  meta.view = view;
  const uint32_t slot = meta.slot;
  meta.slot = kNoSlot;
  --live_txns_;
  // Reset the slab entry in place so captured closures and strings release
  // now, exactly where the old map erase destroyed them.
  txn_slab_[slot] = Txn{};
  free_slots_.push_back(slot);
}

void TransactionManager::NoteImpliedAck(const net::NodeId& from) {
  Session* session_ptr = FindSession(from);
  if (session_ptr == nullptr) return;
  Session& session = *session_ptr;
  if (session.awaiting_implied_ack_txn == 0) return;
  const uint64_t id = session.awaiting_implied_ack_txn;
  session.awaiting_implied_ack_txn = 0;
  Txn* txn = FindTxn(id);
  if (txn == nullptr) return;
  txn->awaiting_implied_ack = false;
  for (auto& child : txn->children)
    if (child.peer == from) child.acked = true;
  ctx_->trace().Add({rt_->Now(), sim::TraceKind::kState, name_, from, id,
                     "implied ack received"});
  MaybeComplete(*txn);
}

// ---------------------------------------------------------------------------
// Message dispatch
// ---------------------------------------------------------------------------

void TransactionManager::OnMessage(const net::Message& msg) {
  const net::NodeId& from = network_->NameOf(msg.from);
  const std::string_view payload = network_->PayloadOf(msg);

  if (config_.legacy_string_messaging) {
    // Frozen seed receive path (commit_bench baseline): decode the payload
    // into an owned PDU vector, re-allocating per delivery.
    auto pdus = DecodePdus(payload);
    if (!pdus.ok()) {
      ctx_->trace().Add({rt_->Now(), sim::TraceKind::kApp, name_, from, 0,
                         "dropped malformed message: " +
                             std::string(pdus.status().message())});
      return;
    }
    NoteImpliedAck(from);
    for (const auto& pdu : *pdus) DispatchPdu(from, pdu, pdu.data);
    return;
  }

  // Validation pass: walk every frame before dispatching any, so a bundle
  // with a malformed tail is dropped whole — partial dispatch would create
  // protocol state (e.g. an in-doubt txn from a truncated Prepare bundle)
  // that the sender never committed to.
  Status bad;
  if (payload.empty()) {
    bad = Status::Corruption("empty pdu payload");
  } else {
    PduCursor check(payload);
    while (check.Next()) {
    }
    bad = check.status();
  }
  if (!bad.ok()) {
    // Corrupt or malformed traffic: drop it rather than crash. Protocol
    // retries and recovery treat a dropped message like any other loss.
    ctx_->trace().Add({rt_->Now(), sim::TraceKind::kApp, name_, from, 0,
                       "dropped malformed message: " +
                           std::string(bad.message())});
    return;
  }

  // Any traffic on a session acts as the implied acknowledgment for a
  // last-agent decision outstanding on it.
  NoteImpliedAck(from);
  PduCursor cursor(payload);
  while (cursor.Next()) DispatchPdu(from, cursor.pdu(), cursor.data());
}

void TransactionManager::DispatchPdu(const net::NodeId& from, const Pdu& pdu,
                                     std::string_view data) {
  switch (pdu.type) {
    case PduType::kAppData:
      OnAppData(from, pdu, data);
      break;
    case PduType::kPrepare:
      OnPreparePdu(from, pdu, data);
      break;
    case PduType::kVote:
      OnVotePdu(from, pdu);
      break;
    case PduType::kCommit:
    case PduType::kAbort:
      OnDecisionPdu(from, pdu);
      break;
    case PduType::kAck:
      OnAckPdu(from, pdu);
      break;
    case PduType::kInquiry:
      OnInquiryPdu(from, pdu);
      break;
    case PduType::kInquiryReply:
      OnInquiryReplyPdu(from, pdu);
      break;
    case PduType::kPaxosAccept:
      OnPaxosAcceptPdu(from, pdu, data);
      break;
    case PduType::kPaxosAccepted:
      OnPaxosAcceptedPdu(pdu, data);
      break;
    case PduType::kPaxosQuery:
      OnPaxosQueryPdu(from, pdu, data);
      break;
    case PduType::kPaxosPromise:
      OnPaxosPromisePdu(pdu, data);
      break;
    case PduType::kPaxosTakeover:
      OnPaxosTakeoverPdu(from, pdu, data);
      break;
    case PduType::kPaxosAcceptBundle:
      OnPaxosAcceptBundlePdu(from, pdu, data);
      break;
    case PduType::kPaxosAcceptedBundle:
      OnPaxosAcceptedBundlePdu(pdu, data);
      break;
    case PduType::kPaxosEnd:
      OnPaxosEndPdu(pdu);
      break;
  }
}

// ---------------------------------------------------------------------------
// Crash & recovery
// ---------------------------------------------------------------------------

void TransactionManager::Crash() {
  TPC_CHECK(up_);
  up_ = false;
  ++epoch_;
  ctx_->trace().Add({rt_->Now(), sim::TraceKind::kCrash, name_, "", 0, ""});
  // Free every live slot. The archive views in TxnMeta survive the crash,
  // as the old separate archive_ map did.
  for (uint32_t slot = 0; slot < txn_slab_.size(); ++slot) {
    Txn& txn = txn_slab_[slot];
    if (!txn.in_use) continue;
    CancelTimers(txn);
    MetaSlot(txn.id).slot = kNoSlot;
    txn_slab_[slot] = Txn{};
    free_slots_.push_back(slot);
  }
  live_txns_ = 0;
  for (Session& session : sessions_) {
    session.outbox.clear();
    session.awaiting_implied_ack_txn = 0;
  }
  // Volatile acceptor state is lost too; RecoverFromLog replays the forced
  // kTmAccept snapshots.
  acceptor_.Clear();
}

void TransactionManager::Restart() {
  TPC_CHECK(!up_);
  up_ = true;
  ++epoch_;
  ctx_->trace().Add({rt_->Now(), sim::TraceKind::kRecover, name_, "", 0, ""});
  RecoverFromLog();
}

void TransactionManager::RecoverFromLog() {
  const std::vector<wal::LogRecord> records = log_->Recover();

  // Resource managers first (store redo; collects their in-doubt lists).
  std::vector<std::vector<uint64_t>> rm_in_doubt;
  rm_in_doubt.reserve(rms_.size());
  for (auto* rm : rms_) rm_in_doubt.push_back(rm->Recover(records));

  // Classify TM state per transaction.
  struct TmTxnImage {
    bool commit_pending = false;
    bool prepared = false;
    bool committed = false;
    bool aborted = false;
    bool end = false;
    bool heuristic = false;
    bool heur_commit = false;
    TmRecordBody last_body;  // from the most recent state-bearing record
  };
  std::map<uint64_t, TmTxnImage> images;
  const std::string owner = name_ + ".tm";
  for (const auto& rec : records) {
    if (rec.owner != owner) continue;
    if (rec.type == wal::RecordType::kTmAccept) {
      // Acceptor snapshots are a separate state machine: restore them
      // directly (last record wins) without creating a TM image — an
      // acceptor-only node must not fabricate transaction state.
      TPC_CHECK_OK(acceptor_.RestoreSnapshot(rec.txn, rec.body));
      continue;
    }
    TmTxnImage& img = images[rec.txn];
    TmRecordBody body;
    switch (rec.type) {
      case wal::RecordType::kTmCommitPending:
        img.commit_pending = true;
        TPC_CHECK_OK(DecodeBody(rec.body, &body));
        img.last_body = body;
        break;
      case wal::RecordType::kTmPrepared:
        img.prepared = true;
        TPC_CHECK_OK(DecodeBody(rec.body, &body));
        img.last_body = body;
        break;
      case wal::RecordType::kTmCommitted:
        img.committed = true;
        TPC_CHECK_OK(DecodeBody(rec.body, &body));
        img.last_body = body;
        break;
      case wal::RecordType::kTmAborted:
        img.aborted = true;
        if (!rec.body.empty()) {
          TPC_CHECK_OK(DecodeBody(rec.body, &body));
          img.last_body = body;
        }
        break;
      case wal::RecordType::kTmEnd:
        img.end = true;
        break;
      case wal::RecordType::kTmHeuristic:
        img.heuristic = true;
        TPC_CHECK_OK(DecodeBody(rec.body, &body));
        img.heur_commit = body.heur_commit;
        if (img.last_body.upstream.empty())
          img.last_body.upstream = body.upstream;
        break;
      default:
        break;
    }
  }

  for (const auto& [id, img] : images) {
    if (img.end) {
      // Fully resolved before the crash; restore the archive view.
      TxnView view;
      view.outcome = img.heuristic ? (img.heur_commit
                                          ? Outcome::kHeuristicCommitted
                                          : Outcome::kHeuristicAborted)
                     : img.committed ? Outcome::kCommitted
                     : img.aborted   ? Outcome::kAborted
                                     : Outcome::kCommitted;
      TxnMeta& meta = MetaSlot(id);
      meta.has_view = true;
      meta.view = view;
      continue;
    }

    if (img.heuristic && !img.committed && !img.aborted) {
      // We decided unilaterally and then crashed before seeing the real
      // outcome. Restore the heuristic state; the coordinator's decision
      // retry (or our inquiry under PA/basic) triggers the damage check.
      Txn& txn = GetOrCreateTxn(id);
      txn.phase = Phase::kInDoubt;
      txn.took_heuristic = true;
      txn.voted_yes = true;
      txn.outcome = img.heur_commit ? Outcome::kHeuristicCommitted
                                    : Outcome::kHeuristicAborted;
      for (auto* rm : rms_) {
        if (rm->InDoubt(id)) rm->ResolveRecovered(id, img.heur_commit);
      }
      if (!img.last_body.upstream.empty()) {
        txn.has_upstream = true;
        txn.upstream = img.last_body.upstream;
        ArmInquiryTimer(txn);
      }
      continue;
    }

    if (img.committed || img.aborted) {
      // Decision reached but END not on disk: resume the decision phase.
      // Conservatively re-send to every child (duplicates are acknowledged
      // idempotently via the archive).
      const bool commit = img.committed;
      const bool pa =
          BaseProtocol(config_.protocol) == ProtocolKind::kPresumedAbort;
      if (!commit && pa) {
        // PA abort leaves nothing to resume (abort records are advisory).
        TxnMeta& meta = MetaSlot(id);
        meta.has_view = true;
        meta.view = TxnView{Outcome::kAborted, false};
        for (auto* rm : rms_)
          if (rm->InDoubt(id)) rm->ResolveRecovered(id, false);
        continue;
      }
      Txn& txn = GetOrCreateTxn(id);
      txn.decided = true;
      txn.commit_decision = commit;
      txn.outcome = commit ? Outcome::kCommitted : Outcome::kAborted;
      txn.phase = Phase::kDeciding;
      txn.is_root = img.last_body.is_root;
      if (!img.last_body.upstream.empty()) {
        txn.has_upstream = true;
        txn.upstream = img.last_body.upstream;
      }
      for (auto* rm : rms_) {
        if (rm->InDoubt(id)) rm->ResolveRecovered(id, commit);
      }
      for (const auto& peer : img.last_body.children) {
        Child child;
        child.peer = peer;
        child.voted = true;
        child.vote = rm::Vote::kYes;
        child.prepare_sent = true;
        child.ack_required =
            commit ? config_.protocol != ProtocolKind::kPresumedCommit
                   : !pa;
        txn.children.push_back(child);
      }
      for (auto& child : txn.children) {
        Pdu pdu;
        pdu.type = commit ? PduType::kCommit : PduType::kAbort;
        pdu.txn = id;
        SendPdu(child.peer, std::move(pdu));
        if (CrashHere(CrashPt::kRecoveryAfterDecisionSend)) return;
        if (child.ack_required) ArmAckTimer(txn, child);
      }
      MaybeComplete(txn);
      if (!up_) return;
      continue;
    }

    if (img.prepared) {
      // In doubt. PA/basic: inquire upstream. PN: wait for the coordinator
      // (it logged commit-pending and will drive recovery).
      Txn& txn = GetOrCreateTxn(id);
      txn.phase = Phase::kInDoubt;
      txn.outcome = Outcome::kInDoubt;
      txn.voted_yes = true;
      txn.has_upstream = !img.last_body.upstream.empty();
      txn.upstream = img.last_body.upstream;
      txn.is_root = img.last_body.is_root;
      for (const auto& peer : img.last_body.children) {
        Child child;
        child.peer = peer;
        child.voted = true;
        child.vote = rm::Vote::kYes;
        child.prepare_sent = true;
        txn.children.push_back(child);
      }
      txn.rm_recovered_in_doubt = true;
      ArmHeuristicTimer(txn);
      if (IsPaxos(config_.protocol)) {
        // An in-doubt paxos participant never falls back to the PA
        // presumption (a takeover may still commit); it re-joins the
        // consensus instead. The root (which has no upstream) re-runs the
        // takeover immediately; participants let the takeover timer fire.
        if (!img.last_body.cohort.empty())
          txn.paxos_cohort = img.last_body.cohort;
        txn.paxos_voted_self = true;
        if (img.last_body.is_root) {
          StartPaxosTakeover(txn);
          if (!up_) return;
          Txn* t = FindTxn(id);
          if (t != nullptr && !t->decided) ArmPaxosRetry(*t);
        } else {
          ArmInquiryTimer(txn);
        }
        continue;
      }
      if (txn.has_upstream &&
          BaseProtocol(config_.protocol) != ProtocolKind::kPresumedNothing) {
        ArmInquiryTimer(txn);
        SendInquiry(txn);
        if (!up_) return;
      }
      continue;
    }

    if (img.commit_pending) {
      // PN coordinator crashed before the decision: presume nothing, decide
      // abort, and drive the subordinates — the coordinator's duty in PN.
      Txn& txn = GetOrCreateTxn(id);
      txn.is_root = img.last_body.is_root;
      if (!img.last_body.upstream.empty()) {
        txn.has_upstream = true;
        txn.upstream = img.last_body.upstream;
      }
      for (const auto& peer : img.last_body.children) {
        Child child;
        child.peer = peer;
        child.voted = true;
        child.vote = rm::Vote::kYes;
        child.prepare_sent = true;
        txn.children.push_back(child);
      }
      for (auto* rm : rms_) {
        if (rm->InDoubt(id)) rm->ResolveRecovered(id, false);
      }
      DecideAndPropagate(txn, /*commit=*/false);
      if (!up_) return;
      continue;
    }

    // Join-only image: a non-forced join record survived (covered by a
    // later force) but the prepared force did not, so the vote was never
    // sent and nothing can have committed — abort any RM state by
    // presumption, exactly as if there were no TM record at all.
    for (auto* rm : rms_) {
      if (rm->InDoubt(id)) rm->ResolveRecovered(id, false);
    }
  }

  // RM in-doubt transactions with no TM record at all: the TM never voted
  // (the RM's prepared force preceded the TM's), so no coordinator can have
  // committed — abort by presumption, which is safe under every protocol.
  for (size_t i = 0; i < rms_.size(); ++i) {
    for (uint64_t id : rm_in_doubt[i]) {
      if (images.count(id)) continue;
      rms_[i]->ResolveRecovered(id, false);
    }
  }
}

void TransactionManager::ScheduleRecoveryRetry(uint64_t id) {
  const uint64_t epoch = epoch_;
  rt_->ArmTimer(config_.recovery_retry_interval,
                               [this, epoch, id] {
    if (!up_ || epoch != epoch_) return;
    Txn* txn = FindTxn(id);
    if (txn == nullptr) return;
    bool outstanding = false;
    for (auto& child : txn->children) {
      if (child.acked || child.excluded) continue;
      // Even a child that never voted may hold prepared state (its vote
      // may have been lost); only read-only voters are certainly done.
      if (child.voted && child.vote == rm::Vote::kReadOnly) continue;
      outstanding = true;
      Pdu pdu;
      pdu.type = txn->commit_decision ? PduType::kCommit : PduType::kAbort;
      pdu.txn = id;
      SendPdu(child.peer, std::move(pdu));
      if (CrashHere(CrashPt::kRecoveryAfterDecisionSend)) return;
    }
    if (outstanding) ScheduleRecoveryRetry(id);
  });
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

TxnView TransactionManager::View(uint64_t id) const {
  if (const Txn* txn = FindTxn(id)) {
    TxnView view;
    view.outcome = txn->outcome;
    view.damage_reported_here = txn->damage ||
                                (txn->decided && txn->commit_decision &&
                                 txn->heur_abort) ||
                                (txn->decided && !txn->commit_decision &&
                                 txn->heur_commit);
    return view;
  }
  const TxnMeta* meta = FindMeta(id);
  if (meta != nullptr && meta->has_view) return meta->view;
  return TxnView{};
}

TxnCost TransactionManager::CostOf(uint64_t txn) const {
  const TxnMeta* meta = FindMeta(txn);
  return meta == nullptr ? TxnCost{} : meta->cost;
}

bool TransactionManager::Knows(uint64_t txn) const {
  return FindTxn(txn) != nullptr;
}

size_t TransactionManager::InDoubtCount() const {
  size_t n = 0;
  for (const Txn& txn : txn_slab_)
    if (txn.in_use && txn.phase == Phase::kInDoubt) ++n;
  return n;
}

uint64_t TransactionManager::ApproxBytes() const {
  uint64_t bytes = txn_meta_.ApproxBytes();
  bytes += acceptor_.ApproxBytes();
  bytes += sessions_.capacity() * sizeof(Session);
  for (const Session& s : sessions_)
    bytes += s.outbox.capacity() * sizeof(Pdu);
  bytes += session_ids_.capacity() * sizeof(uint32_t);
  bytes += session_slots_.capacity() * sizeof(uint32_t);
  bytes += session_order_.capacity() * sizeof(uint32_t);
  bytes += txn_slab_.size() * sizeof(Txn);
  for (const Txn& t : txn_slab_) {
    bytes += t.children.capacity() * sizeof(Child);
    bytes += t.peers.capacity() * sizeof(net::NodeId);
    bytes += t.paxos_insts.capacity() * sizeof(Txn::PaxosInst);
    bytes += t.paxos_cohort.capacity() * sizeof(std::string);
  }
  bytes += free_slots_.capacity() * sizeof(uint32_t);
  return bytes;
}

}  // namespace tpc::tm
