// Core vocabulary for the commit-protocol engine.

#ifndef TPC_TM_TYPES_H_
#define TPC_TM_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "sim/event_queue.h"

namespace tpc::tm {

/// Which commit protocol a transaction manager runs.
enum class ProtocolKind : uint8_t {
  kBasic2PC,        ///< Section 2 baseline
  kPresumedAbort,   ///< PA (R*, ISO-OSI, X/Open)
  kPresumedNothing, ///< PN (LU 6.2 sync point)
  /// Extension (not in the paper): Presumed Commit, PA's sibling from the
  /// R* work. The coordinator forces a *collecting* record before the
  /// first Prepare; commits are not acknowledged and the subordinate's
  /// commit record is not forced (no information presumes commit); aborts
  /// are explicit, forced, and acknowledged.
  kPresumedCommit,
  /// Extension (Gray & Lamport, "Consensus on Transaction Commit"): each
  /// participant's vote is ballot 0 of its own Paxos instance against a
  /// 2F+1 acceptor set; the commit decision is a function of the accepted
  /// instances, so any node can finish it after the coordinator dies.
  /// Removes the coordinator-blocking window at the price of 2a/2b flows
  /// and an accept force per acceptor.
  kPaxosCommit,
  /// Extension (early prepare / "short" commit): subordinates prepare and
  /// vote unsolicited as soon as their work quiesces, eliminating the
  /// Prepare round. PA presumptions and recovery; same forces as PA.
  kOnePhase,
  /// Extension (Zhu et al., "To Vote Before Decide"): kOnePhase without
  /// the subordinate's forced prepared record — the vote rides on the
  /// RM's own durability. Fewest forces of any family. A participant that
  /// crashes between vote and decision has no TM record of its promise;
  /// it converges anyway because the coordinator redrives its unacked
  /// decision and the RM's own log supplies the redo — which is why the
  /// torture matrix runs this variant like any other.
  kOnePhaseLogless,
};

std::string_view ProtocolKindToString(ProtocolKind kind);

/// True for both one-phase variants (early unsolicited vote, no Prepare
/// round, PA-style presumptions).
inline bool IsOnePhase(ProtocolKind k) {
  return k == ProtocolKind::kOnePhase || k == ProtocolKind::kOnePhaseLogless;
}

/// True for the replicated-coordinator family.
inline bool IsPaxos(ProtocolKind k) { return k == ProtocolKind::kPaxosCommit; }

/// Which classic family's presumption/ack/recovery rules a protocol reuses.
/// The new families layer their vote/decision machinery over PA semantics
/// (absence of information presumes abort, aborts unacknowledged); the
/// original four map to themselves.
inline ProtocolKind BaseProtocol(ProtocolKind k) {
  return (IsOnePhase(k) || IsPaxos(k)) ? ProtocolKind::kPresumedAbort : k;
}

/// Commit-acknowledgment timing for cascaded coordinators (Section 4,
/// "Commit Acknowledgment").
enum class AckTiming : uint8_t {
  kLate,   ///< ack upstream only after the whole subtree acked
  kEarly,  ///< ack upstream right after the local commit is durable
};

/// What an in-doubt participant does when blocked too long.
enum class HeuristicPolicy : uint8_t {
  kNever,   ///< wait (possibly forever) for resolution
  kCommit,  ///< heuristically commit after heuristic_delay
  kAbort,   ///< heuristically abort after heuristic_delay
};

/// A participant's final local view of a transaction.
enum class Outcome : uint8_t {
  kUnknown,  ///< no record of the transaction
  kActive,
  kInDoubt,  ///< prepared, outcome not yet known
  kCommitted,
  kAborted,
  kHeuristicCommitted,
  kHeuristicAborted,
  /// Voted read-only: the outcome is immaterial to this participant (it
  /// has no effects either way) and it was never told what it was.
  kReadOnly,
};

std::string_view OutcomeToString(Outcome outcome);

/// True for the two heuristic outcomes.
inline bool IsHeuristic(Outcome o) {
  return o == Outcome::kHeuristicCommitted || o == Outcome::kHeuristicAborted;
}

/// True if the participant's data reflects a commit.
inline bool CommittedEffects(Outcome o) {
  return o == Outcome::kCommitted || o == Outcome::kHeuristicCommitted;
}

/// Result delivered to the application that initiated commit processing.
struct CommitResult {
  Outcome outcome = Outcome::kUnknown;
  /// Heuristic damage was *reported to this node*. Under PN this is
  /// reliable; under PA damage deeper in the tree may go unreported here —
  /// exactly the reliability tradeoff the paper analyzes.
  bool heuristic_damage = false;
  /// Heuristic decisions happened somewhere in the subtree (reported ones).
  bool heuristic_seen = false;
  /// Wait-for-outcome: the call completed before all acknowledgments, with
  /// recovery continuing in the background.
  bool outcome_pending = false;
};

using CommitCallback = std::function<void(CommitResult)>;

/// Per-transaction cost counters kept by each TM node — the quantities the
/// paper's tables report.
struct TxnCost {
  uint64_t flows_sent = 0;       ///< network messages this node sent
  uint64_t tm_log_writes = 0;    ///< TM protocol records written
  uint64_t tm_log_forced = 0;    ///< ... of which forced
};

}  // namespace tpc::tm

#endif  // TPC_TM_TYPES_H_
