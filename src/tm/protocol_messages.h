// Protocol data units (PDUs) exchanged between transaction managers, and
// their wire encoding.
//
// A network message carries one or more PDUs: piggybacking is how the
// long-locks optimization folds a commit acknowledgment into the first data
// message of the next transaction, and how last-agent/long-locks pairs
// commit two transactions in three flows.
//
// Wire format: PDU frames are self-delimiting and packed back to back until
// the end of the payload (no count prefix), so PduWriter appends piggybacked
// bundles in place with no patching, and PduCursor walks a received payload
// without materializing a vector. The hot path is writer/cursor straight
// against the network's pooled payload buffers; EncodePdus/DecodePdus remain
// as the vector-based compatibility and fuzzing surface over the same bytes.

#ifndef TPC_TM_PROTOCOL_MESSAGES_H_
#define TPC_TM_PROTOCOL_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/message.h"
#include "rm/resource_manager.h"
#include "tm/types.h"
#include "util/result.h"

namespace tpc::tm {

/// PDU discriminator.
enum class PduType : uint8_t {
  kAppData = 1,   ///< application data; enrolls the receiver in the txn
  kPrepare,       ///< phase-one request
  kVote,          ///< phase-one response (or unsolicited / last-agent vote)
  kCommit,        ///< commit decision
  kAbort,         ///< abort decision
  kAck,           ///< decision acknowledged (carries heuristic report)
  kInquiry,       ///< recovery: what happened to txn?
  kInquiryReply,  ///< recovery answer

  // Paxos Commit (Gray & Lamport). Each carries a PaxosBody in the frame's
  // data field; the frame layout itself is unchanged.
  kPaxosAccept,    ///< 2a: proposer -> acceptor (ballot-0 vote or takeover)
  kPaxosAccepted,  ///< 2b: acceptor -> leader
  kPaxosQuery,     ///< 1a: takeover leader -> acceptor (promise request)
  kPaxosPromise,   ///< 1b: acceptor -> takeover leader (grant or nack)
  kPaxosTakeover,  ///< stuck participant asks a candidate to lead

  // Bundled paxos traffic (the paper's cost optimization): all of one
  // transaction's instances ride in a single PDU whose data field holds the
  // repeated-instance bundle encoding (EncodePaxosBundle).
  kPaxosAcceptBundle,    ///< 2a bundle: takeover leader -> acceptor
  kPaxosAcceptedBundle,  ///< 2b bundle: acceptor -> leader, all instances
  kPaxosEnd,  ///< leader -> acceptor after full resolution: reclaim state
};

std::string_view PduTypeToString(PduType type);

/// One accepted instance reported in a 1b promise or carried in a 2a/2b
/// bundle: the participant whose instance it is, the ballot it was
/// accepted at, and the accepted value. Ballots are 64-bit end to end so
/// the takeover ballot arithmetic never wraps back under a promised value
/// (see TransactionManager::PaxosBallot).
struct PaxosAccepted {
  std::string instance;
  uint64_t ballot = 0;
  bool prepared = false;
};

/// Body of the paxos PDU family, carried in the frame's data field. A flat
/// union like Pdu: only the fields relevant to the PDU type are meaningful.
///
///   kPaxosAccept:   ballot, instance, prepared, leader, cohort, acceptors
///   kPaxosAccepted: ballot, instance, prepared
///   kPaxosQuery:    ballot
///   kPaxosPromise:  ballot, granted, promised (nack), accepted, cohort,
///                   acceptors, leader (ballot-0 leader, if known)
///   kPaxosTakeover: cohort, acceptors
struct PaxosBody {
  uint64_t ballot = 0;
  uint64_t promised = 0;  ///< nack: the higher ballot already promised
  bool granted = false;
  bool prepared = false;  ///< the proposed/accepted value of an instance
  std::string instance;   ///< which participant's instance
  std::string leader;     ///< where 2b replies go
  std::vector<std::string> cohort;     ///< all instances of the transaction
  std::vector<std::string> acceptors;  ///< the 2F+1 acceptor set
  std::vector<PaxosAccepted> accepted;

  /// Resets every field, keeping container capacity (decode-loop reuse).
  void Clear();
};

/// Appends the body's encoding to `out` (no clear — callers reuse a warm
/// scratch buffer and pass the result as the frame's data bytes).
void EncodePaxosBody(const PaxosBody& body, std::string* out);

/// Decodes a paxos body, reusing `out`'s container capacity. Corruption on
/// truncated or malformed input; implausible list sizes are rejected.
Status DecodePaxosBody(std::string_view data, PaxosBody* out);

/// Repeated-instance bundle codec (kPaxosAcceptBundle / kPaxosAcceptedBundle
/// data field). The bundle shares one ballot and leader across all entries:
/// the header (ballot, leader, cohort, acceptors) is encoded once, followed
/// by one (instance, prepared) pair per entry from `body.accepted` — entry
/// ballots are not encoded (they equal `body.ballot`; decode restores them).
/// A 2b bundle leaves leader/cohort/acceptors empty. Same reuse discipline
/// as EncodePaxosBody: append-only encode, capacity-reusing decode.
void EncodePaxosBundle(const PaxosBody& body, std::string* out);

/// Inverse of EncodePaxosBundle. Corruption on truncation at any bundle
/// boundary, on a malformed entry, and on trailing bytes; list sizes are
/// bounded. Fields not in the bundle format are cleared on `out`.
Status DecodePaxosBundle(std::string_view data, PaxosBody* out);

/// Answer carried by kInquiryReply.
enum class InquiryAnswer : uint8_t {
  kCommitted,
  kAborted,
  kUnknown,  ///< no information (baseline/PN cannot presume; caller blocks)
  kInDoubt,  ///< responder itself has not resolved the transaction
};

/// One protocol data unit. A tagged union kept flat for simplicity; only
/// the fields relevant to `type` are meaningful.
struct Pdu {
  PduType type = PduType::kAppData;
  uint64_t txn = 0;

  // kPrepare
  bool long_locks = false;  ///< coordinator requests the long-locks variation

  // kVote
  rm::Vote vote = rm::Vote::kNo;
  bool reliable = false;        ///< whole subtree is reliable
  bool ok_to_leave_out = false; ///< whole subtree may be suspended/left out
  bool unsolicited = false;     ///< sent without a Prepare
  bool last_agent = false;      ///< YES vote that transfers the commit decision
  bool vote_long_locks = false; ///< last-agent path: sender requests long locks

  // kAck / kInquiryReply heuristic report
  bool heur_commit = false;   ///< subtree contains a heuristic commit
  bool heur_abort = false;    ///< subtree contains a heuristic abort
  bool damage = false;        ///< heuristic decision conflicted with outcome
  bool outcome_pending = false;  ///< "recovery is in progress" ack

  // kCommit
  bool from_last_agent = false;  ///< decision flowing last agent -> initiator

  // kInquiryReply
  InquiryAnswer answer = InquiryAnswer::kUnknown;

  // kAppData
  std::string data;

  /// Appends this PDU's frame in place: one resize, then raw-pointer field
  /// writes — no temporary encoder or string.
  void EncodeTo(std::string* out) const { EncodeTo(out, data); }

  /// Same, but the app-data bytes come from `data_bytes` instead of the
  /// `data` member — the send path encodes application payloads straight
  /// from the caller's view into the pooled buffer, never owning a copy
  /// (symmetric with PduCursor::data() on receive).
  void EncodeTo(std::string* out, std::string_view data_bytes) const;
};

/// Encodes PDU frames directly into a caller-owned buffer — typically a
/// network pooled payload buffer (Network::PayloadBuffer), so a send
/// bundles piggybacked PDUs with zero intermediate copies or allocations
/// once the buffer's capacity is warm.
class PduWriter {
 public:
  explicit PduWriter(std::string* out) : out_(out) {}

  /// Appends one PDU frame after whatever the buffer already holds.
  void Append(const Pdu& pdu) {
    pdu.EncodeTo(out_);
    ++count_;
  }

  /// Appends a frame whose app-data bytes come from `data` rather than
  /// `pdu.data` (zero-copy app-data send).
  void Append(const Pdu& pdu, std::string_view data) {
    pdu.EncodeTo(out_, data);
    ++count_;
  }

  size_t count() const { return count_; }

 private:
  std::string* out_;
  size_t count_ = 0;
};

/// Iterates the PDU frames of a received payload in place, with no copies:
/// kAppData bytes are exposed as a string_view into the payload (pdu().data
/// is always left empty — use data()). Views live only as long as the
/// payload bytes, i.e. for the duration of the OnMessage upcall.
///
/// Usage:
///   PduCursor cursor(payload);
///   while (cursor.Next()) { use(cursor.pdu(), cursor.data()); }
///   if (!cursor.status().ok()) { /* malformed frame; drop the message */ }
class PduCursor {
 public:
  explicit PduCursor(std::string_view payload) : rest_(payload) {}

  /// Advances to the next frame. Returns false at the clean end of the
  /// payload or on a malformed frame — distinguish via status().
  bool Next();

  /// The current PDU (valid after Next() returned true). Its `data` member
  /// is always empty; app-data bytes are in data().
  const Pdu& pdu() const { return pdu_; }

  /// kAppData payload bytes of the current PDU, viewed in place.
  std::string_view data() const { return data_; }

  /// OK until a malformed frame is hit; then the decode error.
  const Status& status() const { return status_; }

  /// Frames successfully decoded so far.
  size_t index() const { return count_; }

 private:
  std::string_view rest_;
  Pdu pdu_;
  std::string_view data_;
  Status status_;
  size_t count_ = 0;
};

/// Encodes a bundle of PDUs into one network-message payload
/// (compatibility surface; the hot path appends via PduWriter).
std::string EncodePdus(const std::vector<Pdu>& pdus);

/// Decodes a network-message payload into owned PDUs (compatibility and
/// fuzzing surface over the same frames PduCursor walks). An empty payload
/// and a payload with any malformed frame are errors; a decoded kAppData
/// PDU carries its bytes in Pdu::data.
Result<std::vector<Pdu>> DecodePdus(std::string_view payload);

/// Human-readable tag for traces: "PREPARE" or "ACK+APP_DATA".
std::string DescribePdus(const std::vector<Pdu>& pdus);

/// Appends the same human-readable tag, derived from an already-encoded
/// payload, into a message trace tag — the in-place send path builds its
/// trace label from the bytes it just wrote instead of a PDU vector it no
/// longer has. Frames after a malformed one are ignored (callers only
/// describe payloads they encoded themselves).
void DescribePayload(std::string_view payload, net::TraceTag* tag);

}  // namespace tpc::tm

#endif  // TPC_TM_PROTOCOL_MESSAGES_H_
