// Protocol data units (PDUs) exchanged between transaction managers, and
// their wire encoding.
//
// A network message carries one or more PDUs: piggybacking is how the
// long-locks optimization folds a commit acknowledgment into the first data
// message of the next transaction, and how last-agent/long-locks pairs
// commit two transactions in three flows.

#ifndef TPC_TM_PROTOCOL_MESSAGES_H_
#define TPC_TM_PROTOCOL_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rm/resource_manager.h"
#include "tm/types.h"
#include "util/result.h"

namespace tpc::tm {

/// PDU discriminator.
enum class PduType : uint8_t {
  kAppData = 1,   ///< application data; enrolls the receiver in the txn
  kPrepare,       ///< phase-one request
  kVote,          ///< phase-one response (or unsolicited / last-agent vote)
  kCommit,        ///< commit decision
  kAbort,         ///< abort decision
  kAck,           ///< decision acknowledged (carries heuristic report)
  kInquiry,       ///< recovery: what happened to txn?
  kInquiryReply,  ///< recovery answer
};

std::string_view PduTypeToString(PduType type);

/// Answer carried by kInquiryReply.
enum class InquiryAnswer : uint8_t {
  kCommitted,
  kAborted,
  kUnknown,  ///< no information (baseline/PN cannot presume; caller blocks)
  kInDoubt,  ///< responder itself has not resolved the transaction
};

/// One protocol data unit. A tagged union kept flat for simplicity; only
/// the fields relevant to `type` are meaningful.
struct Pdu {
  PduType type = PduType::kAppData;
  uint64_t txn = 0;

  // kPrepare
  bool long_locks = false;  ///< coordinator requests the long-locks variation

  // kVote
  rm::Vote vote = rm::Vote::kNo;
  bool reliable = false;        ///< whole subtree is reliable
  bool ok_to_leave_out = false; ///< whole subtree may be suspended/left out
  bool unsolicited = false;     ///< sent without a Prepare
  bool last_agent = false;      ///< YES vote that transfers the commit decision
  bool vote_long_locks = false; ///< last-agent path: sender requests long locks

  // kAck / kInquiryReply heuristic report
  bool heur_commit = false;   ///< subtree contains a heuristic commit
  bool heur_abort = false;    ///< subtree contains a heuristic abort
  bool damage = false;        ///< heuristic decision conflicted with outcome
  bool outcome_pending = false;  ///< "recovery is in progress" ack

  // kCommit
  bool from_last_agent = false;  ///< decision flowing last agent -> initiator

  // kInquiryReply
  InquiryAnswer answer = InquiryAnswer::kUnknown;

  // kAppData
  std::string data;

  void EncodeTo(std::string* out) const;
};

/// Encodes a bundle of PDUs into one network-message payload.
std::string EncodePdus(const std::vector<Pdu>& pdus);

/// Decodes a network-message payload.
Result<std::vector<Pdu>> DecodePdus(std::string_view payload);

/// Human-readable tag for traces: "PREPARE" or "ACK+APP_DATA".
std::string DescribePdus(const std::vector<Pdu>& pdus);

}  // namespace tpc::tm

#endif  // TPC_TM_PROTOCOL_MESSAGES_H_
