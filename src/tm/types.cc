#include "tm/types.h"

namespace tpc::tm {

std::string_view ProtocolKindToString(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kBasic2PC: return "basic-2pc";
    case ProtocolKind::kPresumedAbort: return "presumed-abort";
    case ProtocolKind::kPresumedNothing: return "presumed-nothing";
    case ProtocolKind::kPresumedCommit: return "presumed-commit";
    case ProtocolKind::kPaxosCommit: return "paxos-commit";
    case ProtocolKind::kOnePhase: return "one-phase";
    case ProtocolKind::kOnePhaseLogless: return "one-phase-logless";
  }
  return "?";
}

std::string_view OutcomeToString(Outcome outcome) {
  switch (outcome) {
    case Outcome::kUnknown: return "unknown";
    case Outcome::kActive: return "active";
    case Outcome::kInDoubt: return "in-doubt";
    case Outcome::kCommitted: return "committed";
    case Outcome::kAborted: return "aborted";
    case Outcome::kHeuristicCommitted: return "heuristic-committed";
    case Outcome::kHeuristicAborted: return "heuristic-aborted";
    case Outcome::kReadOnly: return "read-only";
  }
  return "?";
}

}  // namespace tpc::tm
