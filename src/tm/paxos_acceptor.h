// Paxos Commit acceptor state machine (Gray & Lamport, "Consensus on
// Transaction Commit").
//
// One acceptor participates in every instance of a transaction's commit
// consensus: instance = one participant's vote, proposed at ballot 0 by the
// participant itself and at ballots >= 1 by a takeover leader. The class is
// pure state — no I/O, no timers — so ballot safety and majority
// intersection are unit-testable in isolation; the TransactionManager owns
// durability (a forced kTmAccept snapshot before every reply) and the wire
// plumbing.
//
// Ballot discipline (single promise ballot per transaction, shared by all
// of its instances, as in the paper's coordinator-failure protocol):
//   - Promise(b) grants iff b >= promised, and raises promised to b.
//   - Accept(b) accepts iff b >= promised, raises promised to b, and
//     overwrites the instance's accepted (ballot, value) pair.
// Distinct leaders always use distinct ballots (see
// TransactionManager::PaxosBallot), so two leaders can never both assemble
// accepted majorities for conflicting values: the later ballot's 1a round
// either sees the earlier value at a majority member and must re-propose
// it, or revokes the earlier ballot's unfinished majority.

#ifndef TPC_TM_PAXOS_ACCEPTOR_H_
#define TPC_TM_PAXOS_ACCEPTOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace tpc::tm {

/// One instance's accepted state at this acceptor.
struct AcceptorInstance {
  std::string name;       ///< the participant whose vote this instance is
  uint64_t ballot = 0;    ///< ballot the value was accepted at
  bool prepared = false;  ///< accepted value: Prepared (true) or Aborted
};

/// All consensus state one acceptor holds for one transaction.
struct AcceptorTxn {
  uint64_t promised = 0;  ///< highest ballot promised or accepted
  std::vector<AcceptorInstance> accepted;
  /// Instance set, learned from 2a traffic — a takeover leader that knows
  /// nothing recovers the cohort from any acceptor's promise.
  std::vector<std::string> cohort;
  /// Ballot-0 leader (the root), learned from 2a traffic.
  std::string leader0;

  const AcceptorInstance* Find(std::string_view instance) const;
};

class PaxosAcceptor {
 public:
  /// Phase 1a: grants when `ballot` >= the transaction's promised ballot
  /// (idempotent re-grant for the same leader), raising the promise.
  /// Returns false — a nack — when a higher ballot was already promised.
  bool Promise(uint64_t txn, uint64_t ballot);

  /// Phase 2a: accepts when `ballot` >= promised, recording (ballot, value)
  /// for the instance and merging the cohort/ballot-0-leader metadata.
  /// Returns false when a higher ballot was promised (stale proposer).
  bool Accept(uint64_t txn, std::string_view instance, uint64_t ballot,
              bool prepared, const std::vector<std::string>& cohort,
              std::string_view leader);

  /// nullptr when this acceptor holds nothing for `txn`.
  const AcceptorTxn* Find(uint64_t txn) const;

  /// promised ballot, 0 when the transaction is unknown.
  uint64_t Promised(uint64_t txn) const;

  /// True when every cohort member's instance holds an accepted value —
  /// the point where an acceptor can answer the whole transaction with one
  /// bundled 2b (and one covering force) instead of per-instance replies.
  bool HasAllInstances(uint64_t txn) const;

  /// Reclaims one transaction's state (END-driven garbage collection once
  /// the decision is stable at every cohort member). Returns true when
  /// state existed. Pair with an empty-snapshot tombstone so recovery's
  /// last-record-wins replay does not resurrect the entry.
  bool Erase(uint64_t txn) { return txns_.erase(txn) > 0; }

  /// True when `count` voters out of `acceptors` form a majority.
  static bool IsMajority(size_t count, size_t acceptors) {
    return count * 2 > acceptors;
  }

  /// Appends a durable snapshot of one transaction's state (the kTmAccept
  /// record body). Snapshot-restore is idempotent: the last record wins.
  void EncodeSnapshot(uint64_t txn, std::string* out) const;

  /// Replaces the transaction's state from a snapshot body.
  Status RestoreSnapshot(uint64_t txn, std::string_view body);

  /// Volatile loss (crash). Durable state comes back via RestoreSnapshot.
  void Clear() { txns_.clear(); }

  size_t txn_count() const { return txns_.size(); }

  /// Heap bytes held for live transactions (cluster memory budgets; the
  /// bounded-memory torture assertions watch this through the TM).
  uint64_t ApproxBytes() const;

 private:
  std::unordered_map<uint64_t, AcceptorTxn> txns_;
};

}  // namespace tpc::tm

#endif  // TPC_TM_PAXOS_ACCEPTOR_H_
