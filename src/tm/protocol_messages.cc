#include "tm/protocol_messages.h"

#include "util/binary_io.h"

namespace tpc::tm {

std::string_view PduTypeToString(PduType type) {
  switch (type) {
    case PduType::kAppData: return "APP_DATA";
    case PduType::kPrepare: return "PREPARE";
    case PduType::kVote: return "VOTE";
    case PduType::kCommit: return "COMMIT";
    case PduType::kAbort: return "ABORT";
    case PduType::kAck: return "ACK";
    case PduType::kInquiry: return "INQUIRY";
    case PduType::kInquiryReply: return "INQUIRY_REPLY";
  }
  return "?";
}

namespace {

// Bit positions for the flag word.
enum : uint16_t {
  kFlagLongLocks = 1 << 0,
  kFlagReliable = 1 << 1,
  kFlagOkToLeaveOut = 1 << 2,
  kFlagUnsolicited = 1 << 3,
  kFlagLastAgent = 1 << 4,
  kFlagVoteLongLocks = 1 << 5,
  kFlagHeurCommit = 1 << 6,
  kFlagHeurAbort = 1 << 7,
  kFlagDamage = 1 << 8,
  kFlagOutcomePending = 1 << 9,
  kFlagFromLastAgent = 1 << 10,
};

}  // namespace

void Pdu::EncodeTo(std::string* out) const {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(type));
  enc.PutVarint(txn);
  uint16_t flags = 0;
  if (long_locks) flags |= kFlagLongLocks;
  if (reliable) flags |= kFlagReliable;
  if (ok_to_leave_out) flags |= kFlagOkToLeaveOut;
  if (unsolicited) flags |= kFlagUnsolicited;
  if (last_agent) flags |= kFlagLastAgent;
  if (vote_long_locks) flags |= kFlagVoteLongLocks;
  if (heur_commit) flags |= kFlagHeurCommit;
  if (heur_abort) flags |= kFlagHeurAbort;
  if (damage) flags |= kFlagDamage;
  if (outcome_pending) flags |= kFlagOutcomePending;
  if (from_last_agent) flags |= kFlagFromLastAgent;
  enc.PutU16(flags);
  enc.PutU8(static_cast<uint8_t>(vote));
  enc.PutU8(static_cast<uint8_t>(answer));
  enc.PutString(data);
  *out += enc.buffer();
}

std::string EncodePdus(const std::vector<Pdu>& pdus) {
  Encoder enc;
  enc.PutVarint(pdus.size());
  std::string out = enc.Release();
  for (const auto& pdu : pdus) pdu.EncodeTo(&out);
  return out;
}

Result<std::vector<Pdu>> DecodePdus(std::string_view payload) {
  Decoder dec(payload);
  uint64_t count = 0;
  TPC_RETURN_IF_ERROR(dec.GetVarint(&count));
  if (count > 1024) return Status::Corruption("pdu count implausible");
  std::vector<Pdu> pdus;
  pdus.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Pdu pdu;
    uint8_t type = 0;
    TPC_RETURN_IF_ERROR(dec.GetU8(&type));
    if (type < 1 || type > static_cast<uint8_t>(PduType::kInquiryReply))
      return Status::Corruption("bad pdu type");
    pdu.type = static_cast<PduType>(type);
    TPC_RETURN_IF_ERROR(dec.GetVarint(&pdu.txn));
    uint16_t flags = 0;
    TPC_RETURN_IF_ERROR(dec.GetU16(&flags));
    pdu.long_locks = flags & kFlagLongLocks;
    pdu.reliable = flags & kFlagReliable;
    pdu.ok_to_leave_out = flags & kFlagOkToLeaveOut;
    pdu.unsolicited = flags & kFlagUnsolicited;
    pdu.last_agent = flags & kFlagLastAgent;
    pdu.vote_long_locks = flags & kFlagVoteLongLocks;
    pdu.heur_commit = flags & kFlagHeurCommit;
    pdu.heur_abort = flags & kFlagHeurAbort;
    pdu.damage = flags & kFlagDamage;
    pdu.outcome_pending = flags & kFlagOutcomePending;
    pdu.from_last_agent = flags & kFlagFromLastAgent;
    uint8_t vote = 0;
    TPC_RETURN_IF_ERROR(dec.GetU8(&vote));
    if (vote > static_cast<uint8_t>(rm::Vote::kReadOnly))
      return Status::Corruption("bad vote");
    pdu.vote = static_cast<rm::Vote>(vote);
    uint8_t answer = 0;
    TPC_RETURN_IF_ERROR(dec.GetU8(&answer));
    if (answer > static_cast<uint8_t>(InquiryAnswer::kInDoubt))
      return Status::Corruption("bad inquiry answer");
    pdu.answer = static_cast<InquiryAnswer>(answer);
    TPC_RETURN_IF_ERROR(dec.GetString(&pdu.data));
    pdus.push_back(std::move(pdu));
  }
  if (!dec.empty()) return Status::Corruption("trailing bytes after pdus");
  return pdus;
}

std::string DescribePdus(const std::vector<Pdu>& pdus) {
  std::string out;
  for (size_t i = 0; i < pdus.size(); ++i) {
    if (i) out += "+";
    out += PduTypeToString(pdus[i].type);
    if (pdus[i].type == PduType::kVote) {
      out += "(";
      out += rm::VoteToString(pdus[i].vote);
      if (pdus[i].unsolicited) out += ",unsolicited";
      if (pdus[i].last_agent) out += ",last-agent";
      out += ")";
    }
  }
  return out;
}

}  // namespace tpc::tm
