#include "tm/protocol_messages.h"

#include <cstring>

#include "util/binary_io.h"

namespace tpc::tm {

std::string_view PduTypeToString(PduType type) {
  switch (type) {
    case PduType::kAppData: return "APP_DATA";
    case PduType::kPrepare: return "PREPARE";
    case PduType::kVote: return "VOTE";
    case PduType::kCommit: return "COMMIT";
    case PduType::kAbort: return "ABORT";
    case PduType::kAck: return "ACK";
    case PduType::kInquiry: return "INQUIRY";
    case PduType::kInquiryReply: return "INQUIRY_REPLY";
    case PduType::kPaxosAccept: return "PX_ACCEPT";
    case PduType::kPaxosAccepted: return "PX_ACCEPTED";
    case PduType::kPaxosQuery: return "PX_QUERY";
    case PduType::kPaxosPromise: return "PX_PROMISE";
    case PduType::kPaxosTakeover: return "PX_TAKEOVER";
    case PduType::kPaxosAcceptBundle: return "PX_ACCEPT_BUNDLE";
    case PduType::kPaxosAcceptedBundle: return "PX_ACCEPTED_BUNDLE";
    case PduType::kPaxosEnd: return "PX_END";
  }
  return "?";
}

namespace {

// Bit positions for the flag word.
enum : uint16_t {
  kFlagLongLocks = 1 << 0,
  kFlagReliable = 1 << 1,
  kFlagOkToLeaveOut = 1 << 2,
  kFlagUnsolicited = 1 << 3,
  kFlagLastAgent = 1 << 4,
  kFlagVoteLongLocks = 1 << 5,
  kFlagHeurCommit = 1 << 6,
  kFlagHeurAbort = 1 << 7,
  kFlagDamage = 1 << 8,
  kFlagOutcomePending = 1 << 9,
  kFlagFromLastAgent = 1 << 10,
};

// Decodes one frame off the front of `rest` into (pdu, data). On success
// `rest` is advanced past the frame; on failure it is left unspecified and
// the error describes the first malformed field.
Status DecodeFrame(std::string_view* rest, Pdu* pdu, std::string_view* data) {
  Decoder dec(*rest);
  uint8_t type = 0;
  TPC_RETURN_IF_ERROR(dec.GetU8(&type));
  if (type < 1 || type > static_cast<uint8_t>(PduType::kPaxosEnd))
    return Status::Corruption("bad pdu type");
  pdu->type = static_cast<PduType>(type);
  TPC_RETURN_IF_ERROR(dec.GetVarint(&pdu->txn));
  uint16_t flags = 0;
  TPC_RETURN_IF_ERROR(dec.GetU16(&flags));
  pdu->long_locks = flags & kFlagLongLocks;
  pdu->reliable = flags & kFlagReliable;
  pdu->ok_to_leave_out = flags & kFlagOkToLeaveOut;
  pdu->unsolicited = flags & kFlagUnsolicited;
  pdu->last_agent = flags & kFlagLastAgent;
  pdu->vote_long_locks = flags & kFlagVoteLongLocks;
  pdu->heur_commit = flags & kFlagHeurCommit;
  pdu->heur_abort = flags & kFlagHeurAbort;
  pdu->damage = flags & kFlagDamage;
  pdu->outcome_pending = flags & kFlagOutcomePending;
  pdu->from_last_agent = flags & kFlagFromLastAgent;
  uint8_t vote = 0;
  TPC_RETURN_IF_ERROR(dec.GetU8(&vote));
  if (vote > static_cast<uint8_t>(rm::Vote::kReadOnly))
    return Status::Corruption("bad vote");
  pdu->vote = static_cast<rm::Vote>(vote);
  uint8_t answer = 0;
  TPC_RETURN_IF_ERROR(dec.GetU8(&answer));
  if (answer > static_cast<uint8_t>(InquiryAnswer::kInDoubt))
    return Status::Corruption("bad inquiry answer");
  pdu->answer = static_cast<InquiryAnswer>(answer);
  TPC_RETURN_IF_ERROR(dec.GetStringView(data));
  rest->remove_prefix(rest->size() - dec.remaining());
  return Status::OK();
}

// Appends one PDU's tag piece ("VOTE(YES,unsolicited)") to any sink with a
// string_view append — std::string and net::TraceTag both qualify, so the
// vector path and the encoded-payload path share one formatting definition.
template <typename Sink>
void AppendPduTag(Sink* out, const Pdu& pdu, bool first) {
  if (!first) out->append("+");
  out->append(PduTypeToString(pdu.type));
  if (pdu.type == PduType::kVote) {
    out->append("(");
    out->append(rm::VoteToString(pdu.vote));
    if (pdu.unsolicited) out->append(",unsolicited");
    if (pdu.last_agent) out->append(",last-agent");
    out->append(")");
  }
}

// Guards the list sizes of a decoded paxos body: the cohort can at most be
// the whole cluster, and even the 2048-server sweeps stay under this.
constexpr uint64_t kMaxPaxosList = 4096;

Status GetBoundedCount(Decoder* dec, uint64_t* n) {
  TPC_RETURN_IF_ERROR(dec->GetVarint(n));
  if (*n > kMaxPaxosList) return Status::Corruption("paxos list implausible");
  return Status::OK();
}

Status GetName(Decoder* dec, std::string* s) {
  std::string_view view;
  TPC_RETURN_IF_ERROR(dec->GetStringView(&view));
  s->assign(view);  // reuses the string's capacity when warm
  return Status::OK();
}

Status DecodeNameList(Decoder* dec, std::vector<std::string>* out) {
  uint64_t n = 0;
  TPC_RETURN_IF_ERROR(GetBoundedCount(dec, &n));
  if (out->size() > n) out->resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (i >= out->size()) out->emplace_back();
    TPC_RETURN_IF_ERROR(GetName(dec, &(*out)[i]));
  }
  return Status::OK();
}

}  // namespace

void PaxosBody::Clear() {
  ballot = 0;
  promised = 0;
  granted = false;
  prepared = false;
  instance.clear();
  leader.clear();
  cohort.clear();
  acceptors.clear();
  accepted.clear();
}

void EncodePaxosBody(const PaxosBody& body, std::string* out) {
  AppendVarint(*out, body.ballot);
  AppendVarint(*out, body.promised);
  AppendU8(*out, static_cast<uint8_t>((body.granted ? 1 : 0) |
                                      (body.prepared ? 2 : 0)));
  AppendLengthPrefixed(*out, body.instance);
  AppendLengthPrefixed(*out, body.leader);
  AppendVarint(*out, body.cohort.size());
  for (const std::string& n : body.cohort) AppendLengthPrefixed(*out, n);
  AppendVarint(*out, body.acceptors.size());
  for (const std::string& n : body.acceptors) AppendLengthPrefixed(*out, n);
  AppendVarint(*out, body.accepted.size());
  for (const PaxosAccepted& a : body.accepted) {
    AppendLengthPrefixed(*out, a.instance);
    AppendVarint(*out, a.ballot);
    AppendU8(*out, a.prepared ? 1 : 0);
  }
}

Status DecodePaxosBody(std::string_view data, PaxosBody* out) {
  Decoder dec(data);
  TPC_RETURN_IF_ERROR(dec.GetVarint(&out->ballot));
  TPC_RETURN_IF_ERROR(dec.GetVarint(&out->promised));
  uint8_t flags = 0;
  TPC_RETURN_IF_ERROR(dec.GetU8(&flags));
  if (flags > 3) return Status::Corruption("bad paxos flags");
  out->granted = flags & 1;
  out->prepared = flags & 2;
  TPC_RETURN_IF_ERROR(GetName(&dec, &out->instance));
  TPC_RETURN_IF_ERROR(GetName(&dec, &out->leader));
  TPC_RETURN_IF_ERROR(DecodeNameList(&dec, &out->cohort));
  TPC_RETURN_IF_ERROR(DecodeNameList(&dec, &out->acceptors));
  uint64_t n = 0;
  TPC_RETURN_IF_ERROR(GetBoundedCount(&dec, &n));
  if (out->accepted.size() > n) out->accepted.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (i >= out->accepted.size()) out->accepted.emplace_back();
    PaxosAccepted& a = out->accepted[i];
    TPC_RETURN_IF_ERROR(GetName(&dec, &a.instance));
    TPC_RETURN_IF_ERROR(dec.GetVarint(&a.ballot));
    uint8_t prepared = 0;
    TPC_RETURN_IF_ERROR(dec.GetU8(&prepared));
    if (prepared > 1) return Status::Corruption("bad paxos accepted value");
    a.prepared = prepared != 0;
  }
  if (!dec.empty()) return Status::Corruption("trailing paxos body bytes");
  return Status::OK();
}

void EncodePaxosBundle(const PaxosBody& body, std::string* out) {
  AppendVarint(*out, body.ballot);
  AppendLengthPrefixed(*out, body.leader);
  AppendVarint(*out, body.cohort.size());
  for (const std::string& n : body.cohort) AppendLengthPrefixed(*out, n);
  AppendVarint(*out, body.acceptors.size());
  for (const std::string& n : body.acceptors) AppendLengthPrefixed(*out, n);
  AppendVarint(*out, body.accepted.size());
  for (const PaxosAccepted& a : body.accepted) {
    AppendLengthPrefixed(*out, a.instance);
    AppendU8(*out, a.prepared ? 1 : 0);
  }
}

Status DecodePaxosBundle(std::string_view data, PaxosBody* out) {
  Decoder dec(data);
  TPC_RETURN_IF_ERROR(dec.GetVarint(&out->ballot));
  out->promised = 0;
  out->granted = false;
  out->prepared = false;
  out->instance.clear();
  TPC_RETURN_IF_ERROR(GetName(&dec, &out->leader));
  TPC_RETURN_IF_ERROR(DecodeNameList(&dec, &out->cohort));
  TPC_RETURN_IF_ERROR(DecodeNameList(&dec, &out->acceptors));
  uint64_t n = 0;
  TPC_RETURN_IF_ERROR(GetBoundedCount(&dec, &n));
  if (out->accepted.size() > n) out->accepted.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (i >= out->accepted.size()) out->accepted.emplace_back();
    PaxosAccepted& a = out->accepted[i];
    TPC_RETURN_IF_ERROR(GetName(&dec, &a.instance));
    a.ballot = out->ballot;  // entries share the bundle ballot
    uint8_t prepared = 0;
    TPC_RETURN_IF_ERROR(dec.GetU8(&prepared));
    if (prepared > 1) return Status::Corruption("bad paxos bundle value");
    a.prepared = prepared != 0;
  }
  if (!dec.empty()) return Status::Corruption("trailing paxos bundle bytes");
  return Status::OK();
}

void Pdu::EncodeTo(std::string* out, std::string_view data_bytes) const {
  uint16_t flags = 0;
  if (long_locks) flags |= kFlagLongLocks;
  if (reliable) flags |= kFlagReliable;
  if (ok_to_leave_out) flags |= kFlagOkToLeaveOut;
  if (unsolicited) flags |= kFlagUnsolicited;
  if (last_agent) flags |= kFlagLastAgent;
  if (vote_long_locks) flags |= kFlagVoteLongLocks;
  if (heur_commit) flags |= kFlagHeurCommit;
  if (heur_abort) flags |= kFlagHeurAbort;
  if (damage) flags |= kFlagDamage;
  if (outcome_pending) flags |= kFlagOutcomePending;
  if (from_last_agent) flags |= kFlagFromLastAgent;

  const size_t base = out->size();
  const size_t need = 1 + VarintLength(txn) + 2 + 1 + 1 +
                      VarintLength(data_bytes.size()) + data_bytes.size();
  out->resize(base + need);
  char* p = out->data() + base;
  *p++ = static_cast<char>(static_cast<uint8_t>(type));
  p += PutVarintTo(p, txn);
  *p++ = static_cast<char>(static_cast<uint8_t>(flags & 0xff));
  *p++ = static_cast<char>(static_cast<uint8_t>(flags >> 8));
  *p++ = static_cast<char>(static_cast<uint8_t>(vote));
  *p++ = static_cast<char>(static_cast<uint8_t>(answer));
  p += PutVarintTo(p, data_bytes.size());
  if (!data_bytes.empty())
    std::memcpy(p, data_bytes.data(), data_bytes.size());
}

bool PduCursor::Next() {
  if (!status_.ok() || rest_.empty()) return false;
  data_ = std::string_view();
  status_ = DecodeFrame(&rest_, &pdu_, &data_);
  if (!status_.ok()) return false;
  ++count_;
  return true;
}

std::string EncodePdus(const std::vector<Pdu>& pdus) {
  std::string out;
  for (const auto& pdu : pdus) pdu.EncodeTo(&out);
  return out;
}

Result<std::vector<Pdu>> DecodePdus(std::string_view payload) {
  if (payload.empty()) return Status::Corruption("empty pdu payload");
  std::vector<Pdu> pdus;
  PduCursor cursor(payload);
  while (cursor.Next()) {
    // Frames are >= 7 bytes so the payload length bounds the count; the cap
    // only guards absurd adversarial inputs.
    if (pdus.size() >= 1024) return Status::Corruption("pdu count implausible");
    pdus.push_back(cursor.pdu());
    pdus.back().data.assign(cursor.data());
  }
  TPC_RETURN_IF_ERROR(cursor.status());
  return pdus;
}

std::string DescribePdus(const std::vector<Pdu>& pdus) {
  std::string out;
  for (size_t i = 0; i < pdus.size(); ++i) AppendPduTag(&out, pdus[i], i == 0);
  return out;
}

void DescribePayload(std::string_view payload, net::TraceTag* tag) {
  PduCursor cursor(payload);
  for (bool first = true; cursor.Next(); first = false)
    AppendPduTag(tag, cursor.pdu(), first);
}

}  // namespace tpc::tm
