// Named crash points instrumenting the TM and KV-RM state machines.
//
// Naming convention: `role.point_name`, where the role is the position the
// node plays for the transaction at the moment the point is reached:
//   root.  — the decision owner: a coordinator with no upstream, or the
//            last agent once it owns the decision
//   casc.  — a cascaded (intermediate) coordinator: has an upstream and
//            downstream children of its own
//   sub.   — a leaf subordinate
//   rm.    — a local resource manager on the node
//   any.   — role-independent points (e.g. inquiry replies, which may be
//            answered from the archive by any former participant)
//   recovery. — points reached while replaying the recovery protocol
//
// Points come in before/after pairs around every log write — `*_force` for
// forced (synchronous durable) writes, `*_write` for non-forced buffered
// writes — and `after_*_send` points follow protocol message sends. A crash
// at a `before_` point loses the record; at an `after_` point the record is
// durable (forced) or buffered (non-forced) but the following protocol step
// never happens.
//
// The torture campaign (harness/torture.h) enumerates this catalog; the TM
// interns every name once at construction so reporting a hit is a flat
// array increment (see sim::FailureInjector).

#ifndef TPC_TM_CRASH_POINTS_H_
#define TPC_TM_CRASH_POINTS_H_

#include <cstddef>

namespace tpc::tm {

// X(enumerator, "role.point_name")
#define TPC_CRASH_POINT_LIST(X)                                         \
  /* coordinator: PN/PC commit-pending force before phase one */        \
  X(kRootBeforeCommitPendingForce, "root.before_commit_pending_force")  \
  X(kRootAfterCommitPendingForce, "root.after_commit_pending_force")    \
  X(kCascBeforeCommitPendingForce, "casc.before_commit_pending_force")  \
  X(kCascAfterCommitPendingForce, "casc.after_commit_pending_force")    \
  /* coordinator: after PREPARE flows go out */                         \
  X(kRootAfterPrepareSend, "root.after_prepare_send")                   \
  X(kCascAfterPrepareSend, "casc.after_prepare_send")                   \
  /* last-agent initiator: the deferred vote that delegates the
     decision (legacy alias: after_prepared_force) */                   \
  X(kRootBeforeLaVoteForce, "root.before_la_vote_force")                \
  X(kRootAfterLaVoteForce, "root.after_la_vote_force")                  \
  X(kRootAfterLaVoteSend, "root.after_la_vote_send")                    \
  X(kRootAfterLaRoVoteSend, "root.after_la_ro_vote_send")               \
  /* commit decision record (legacy alias: after_commit_force) */       \
  X(kRootBeforeCommitForce, "root.before_commit_force")                 \
  X(kRootAfterCommitForce, "root.after_commit_force")                   \
  X(kCascBeforeCommitForce, "casc.before_commit_force")                 \
  X(kCascAfterCommitForce, "casc.after_commit_force")                   \
  X(kSubBeforeCommitForce, "sub.before_commit_force")                   \
  X(kSubAfterCommitForce, "sub.after_commit_force")                     \
  /* forced abort record (basic 2PC / PN) */                            \
  X(kRootBeforeAbortForce, "root.before_abort_force")                   \
  X(kRootAfterAbortForce, "root.after_abort_force")                     \
  X(kCascBeforeAbortForce, "casc.before_abort_force")                   \
  X(kCascAfterAbortForce, "casc.after_abort_force")                     \
  X(kSubBeforeAbortForce, "sub.before_abort_force")                     \
  X(kSubAfterAbortForce, "sub.after_abort_force")                       \
  /* non-forced abort record (PA subordinate side) */                   \
  X(kRootBeforeAbortWrite, "root.before_abort_write")                   \
  X(kRootAfterAbortWrite, "root.after_abort_write")                     \
  X(kCascBeforeAbortWrite, "casc.before_abort_write")                   \
  X(kCascAfterAbortWrite, "casc.after_abort_write")                     \
  X(kSubBeforeAbortWrite, "sub.before_abort_write")                     \
  X(kSubAfterAbortWrite, "sub.after_abort_write")                       \
  /* after the decision flows to the children go out */                 \
  X(kRootAfterDecisionSend, "root.after_decision_send")                 \
  X(kCascAfterDecisionSend, "casc.after_decision_send")                 \
  /* end (forget) record */                                             \
  X(kRootBeforeEndWrite, "root.before_end_write")                       \
  X(kRootAfterEndWrite, "root.after_end_write")                         \
  X(kCascBeforeEndWrite, "casc.before_end_write")                       \
  X(kCascAfterEndWrite, "casc.after_end_write")                         \
  X(kSubBeforeEndWrite, "sub.before_end_write")                         \
  X(kSubAfterEndWrite, "sub.after_end_write")                           \
  X(kCascBeforeEndForce, "casc.before_end_force")                       \
  X(kCascAfterEndForce, "casc.after_end_force")                         \
  X(kSubBeforeEndForce, "sub.before_end_force")                         \
  X(kSubAfterEndForce, "sub.after_end_force")                           \
  /* subordinate: PN join record on first PREPARE */                    \
  X(kSubBeforeJoinWrite, "sub.before_join_write")                       \
  X(kSubAfterJoinWrite, "sub.after_join_write")                         \
  /* subordinate: prepared force + vote (legacy alias:
     after_prepared_force) */                                           \
  X(kCascBeforePreparedForce, "casc.before_prepared_force")             \
  X(kCascAfterPreparedForce, "casc.after_prepared_force")               \
  X(kSubBeforePreparedForce, "sub.before_prepared_force")               \
  X(kSubAfterPreparedForce, "sub.after_prepared_force")                 \
  X(kCascAfterYesVoteSend, "casc.after_yes_vote_send")                  \
  X(kSubAfterYesVoteSend, "sub.after_yes_vote_send")                    \
  X(kSubAfterUnsolicitedVoteSend, "sub.after_unsolicited_vote_send")    \
  X(kCascAfterNoVoteSend, "casc.after_no_vote_send")                    \
  X(kSubAfterNoVoteSend, "sub.after_no_vote_send")                      \
  X(kCascAfterRoVoteSend, "casc.after_ro_vote_send")                    \
  X(kSubAfterRoVoteSend, "sub.after_ro_vote_send")                      \
  X(kCascAfterVoteResend, "casc.after_vote_resend")                     \
  X(kSubAfterVoteResend, "sub.after_vote_resend")                       \
  /* subordinate: ack flow upstream */                                  \
  X(kCascAfterAckSend, "casc.after_ack_send")                           \
  X(kSubAfterAckSend, "sub.after_ack_send")                             \
  /* heuristic decision */                                              \
  X(kSubBeforeHeuristicForce, "sub.before_heuristic_force")             \
  X(kSubAfterHeuristicForce, "sub.after_heuristic_force")               \
  X(kSubAfterHeurDecisionSend, "sub.after_heur_decision_send")          \
  /* inquiry traffic */                                                 \
  X(kSubAfterInquirySend, "sub.after_inquiry_send")                     \
  X(kRootAfterLaInquirySend, "root.after_la_inquiry_send")              \
  X(kAnyAfterInquiryReplySend, "any.after_inquiry_reply_send")          \
  /* recovery-driven decision re-sends */                               \
  X(kRecoveryAfterDecisionSend, "recovery.after_decision_send")         \
  /* paxos commit: participant 2a votes (the prepared force reuses the
     sub.*_prepared_force pair above) */                                \
  X(kRootAfterPaxosVoteSend, "root.after_paxos_vote_send")              \
  X(kSubAfterPaxosVoteSend, "sub.after_paxos_vote_send")                \
  /* paxos commit: co-located leader/acceptor — the ballot-0 self-accept
     snapshot rides the prepared record's force, so vote + accept cost
     one durable write (before_ loses both; after_ has both durable but
     the 2a fan-out never leaves) */                                    \
  X(kRootBeforeVoteAcceptForce, "root.before_vote_accept_force")        \
  X(kRootAfterVoteAcceptForce, "root.after_vote_accept_force")          \
  X(kSubBeforeVoteAcceptForce, "sub.before_vote_accept_force")          \
  X(kSubAfterVoteAcceptForce, "sub.after_vote_accept_force")            \
  /* paxos commit: acceptor durability + replies */                     \
  X(kAcceptorBeforeAcceptForce, "acceptor.before_accept_force")         \
  X(kAcceptorAfterAcceptForce, "acceptor.after_accept_force")           \
  X(kAcceptorAfterAcceptedSend, "acceptor.after_accepted_send")         \
  X(kAcceptorAfterPromiseSend, "acceptor.after_promise_send")           \
  /* paxos commit: bundled acceptor replies (one force covers every
     instance of the transaction; one 2b bundle per leader) */          \
  X(kAcceptorBeforeBundleForce, "acceptor.before_bundle_force")         \
  X(kAcceptorAfterBundleForce, "acceptor.after_bundle_force")           \
  X(kAcceptorAfterBundleSend, "acceptor.after_bundle_send")             \
  /* paxos commit: takeover by a new leader */                          \
  X(kSubAfterTakeoverSend, "sub.after_takeover_send")                   \
  X(kTakeoverAfterQuerySend, "takeover.after_query_send")               \
  X(kTakeoverAfterProposalSend, "takeover.after_proposal_send")

enum class CrashPt : unsigned {
#define TPC_CRASH_POINT_ENUM(id, name) id,
  TPC_CRASH_POINT_LIST(TPC_CRASH_POINT_ENUM)
#undef TPC_CRASH_POINT_ENUM
      kCount
};

inline constexpr size_t kCrashPointCount = static_cast<size_t>(CrashPt::kCount);

inline constexpr const char* kCrashPointNames[] = {
#define TPC_CRASH_POINT_NAME(id, name) name,
    TPC_CRASH_POINT_LIST(TPC_CRASH_POINT_NAME)
#undef TPC_CRASH_POINT_NAME
};

inline const char* CrashPointName(CrashPt p) {
  return kCrashPointNames[static_cast<size_t>(p)];
}

// Resource-manager crash points, interned by KVResourceManager when the
// harness enables node-level crash injection. `*_log` rather than `*_force`:
// under the shared-log optimization prepared/committed records ride the
// host TM's forces and are appended non-forced.
inline constexpr const char* kRmCrashPoints[] = {
    "rm.before_prepared_log", "rm.after_prepared_log",
    "rm.before_committed_log", "rm.after_committed_log",
    "rm.before_abort_log",     "rm.after_abort_log",
};
inline constexpr size_t kRmCrashPointCount =
    sizeof(kRmCrashPoints) / sizeof(kRmCrashPoints[0]);

}  // namespace tpc::tm

#endif  // TPC_TM_CRASH_POINTS_H_
