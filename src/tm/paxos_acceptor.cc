#include "tm/paxos_acceptor.h"

#include "util/binary_io.h"

namespace tpc::tm {

const AcceptorInstance* AcceptorTxn::Find(std::string_view instance) const {
  for (const AcceptorInstance& a : accepted)
    if (a.name == instance) return &a;
  return nullptr;
}

bool PaxosAcceptor::Promise(uint64_t txn, uint64_t ballot) {
  AcceptorTxn& state = txns_[txn];
  if (ballot < state.promised) return false;
  state.promised = ballot;
  return true;
}

bool PaxosAcceptor::Accept(uint64_t txn, std::string_view instance,
                           uint64_t ballot, bool prepared,
                           const std::vector<std::string>& cohort,
                           std::string_view leader) {
  AcceptorTxn& state = txns_[txn];
  if (ballot < state.promised) return false;
  state.promised = ballot;
  AcceptorInstance* slot = nullptr;
  for (AcceptorInstance& a : state.accepted)
    if (a.name == instance) slot = &a;
  if (slot == nullptr) {
    state.accepted.emplace_back();
    slot = &state.accepted.back();
    slot->name.assign(instance);
  }
  // ballot >= promised >= any previously accepted ballot, so overwriting is
  // always the classic acceptor rule.
  slot->ballot = ballot;
  slot->prepared = prepared;
  if (state.cohort.size() < cohort.size()) state.cohort = cohort;
  if (ballot == 0 && !leader.empty() && state.leader0.empty())
    state.leader0.assign(leader);
  return true;
}

const AcceptorTxn* PaxosAcceptor::Find(uint64_t txn) const {
  auto it = txns_.find(txn);
  return it == txns_.end() ? nullptr : &it->second;
}

uint64_t PaxosAcceptor::Promised(uint64_t txn) const {
  const AcceptorTxn* state = Find(txn);
  return state == nullptr ? 0 : state->promised;
}

bool PaxosAcceptor::HasAllInstances(uint64_t txn) const {
  const AcceptorTxn* state = Find(txn);
  if (state == nullptr || state->cohort.empty()) return false;
  for (const std::string& member : state->cohort)
    if (state->Find(member) == nullptr) return false;
  return true;
}

uint64_t PaxosAcceptor::ApproxBytes() const {
  // Bucket-array estimate plus per-entry heap: the unordered_map's nodes
  // and every string/vector the entries own.
  uint64_t bytes = txns_.bucket_count() * sizeof(void*);
  for (const auto& [id, state] : txns_) {
    bytes += sizeof(id) + sizeof(state) + 2 * sizeof(void*);
    bytes += state.leader0.capacity();
    bytes += state.cohort.capacity() * sizeof(std::string);
    for (const std::string& n : state.cohort) bytes += n.capacity();
    bytes += state.accepted.capacity() * sizeof(AcceptorInstance);
    for (const AcceptorInstance& a : state.accepted) bytes += a.name.capacity();
  }
  return bytes;
}

void PaxosAcceptor::EncodeSnapshot(uint64_t txn, std::string* out) const {
  static const AcceptorTxn kEmpty;
  const AcceptorTxn* state = Find(txn);
  if (state == nullptr) state = &kEmpty;
  AppendVarint(*out, state->promised);
  AppendLengthPrefixed(*out, state->leader0);
  AppendVarint(*out, state->cohort.size());
  for (const std::string& n : state->cohort) AppendLengthPrefixed(*out, n);
  AppendVarint(*out, state->accepted.size());
  for (const AcceptorInstance& a : state->accepted) {
    AppendLengthPrefixed(*out, a.name);
    AppendVarint(*out, a.ballot);
    AppendU8(*out, a.prepared ? 1 : 0);
  }
}

Status PaxosAcceptor::RestoreSnapshot(uint64_t txn, std::string_view body) {
  Decoder dec(body);
  AcceptorTxn state;
  TPC_RETURN_IF_ERROR(dec.GetVarint(&state.promised));
  TPC_RETURN_IF_ERROR(dec.GetString(&state.leader0));
  uint64_t n = 0;
  TPC_RETURN_IF_ERROR(dec.GetVarint(&n));
  if (n > 4096) return Status::Corruption("acceptor cohort implausible");
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    TPC_RETURN_IF_ERROR(dec.GetString(&name));
    state.cohort.push_back(std::move(name));
  }
  TPC_RETURN_IF_ERROR(dec.GetVarint(&n));
  if (n > 4096) return Status::Corruption("acceptor instances implausible");
  for (uint64_t i = 0; i < n; ++i) {
    AcceptorInstance a;
    TPC_RETURN_IF_ERROR(dec.GetString(&a.name));
    TPC_RETURN_IF_ERROR(dec.GetVarint(&a.ballot));
    uint8_t prepared = 0;
    TPC_RETURN_IF_ERROR(dec.GetU8(&prepared));
    if (prepared > 1) return Status::Corruption("bad acceptor value");
    a.prepared = prepared != 0;
    state.accepted.push_back(std::move(a));
  }
  if (!dec.empty()) return Status::Corruption("trailing acceptor bytes");
  if (state.promised == 0 && state.accepted.empty() && state.cohort.empty() &&
      state.leader0.empty()) {
    // An empty snapshot is the END tombstone: last-record-wins replay must
    // end with the entry reclaimed, not resurrected as empty state.
    txns_.erase(txn);
    return Status::OK();
  }
  txns_[txn] = std::move(state);
  return Status::OK();
}

}  // namespace tpc::tm
