// TransactionManager: the commit-protocol engine — the paper's subject.
//
// One TransactionManager per simulated node. It coordinates the node's
// local resource managers and its session peers (other TMs) through the
// two-phase commit variants the paper analyzes:
//
//   * protocols: baseline 2PC, Presumed Abort, Presumed Nothing;
//   * optimizations (composable via TmConfig/SessionOptions): read-only,
//     leave-inactive-partners-out, last agent, unsolicited vote, long locks,
//     vote reliable, wait-for-outcome, early/late acknowledgment; shared
//     logs and group commit live in the WAL layer but are honored here;
//   * failure handling: crash/restart with log-driven recovery,
//     in-doubt resolution per protocol presumption, heuristic decisions
//     with damage detection and protocol-specific reporting.
//
// Peer-to-peer model (PN): any participant may initiate commit; two
// concurrent initiators abort the transaction. Trees form dynamically from
// data flow: a peer that received APP_DATA for a transaction is in the
// commit tree, with the sender of the eventual Prepare as its coordinator.

#ifndef TPC_TM_TRANSACTION_MANAGER_H_
#define TPC_TM_TRANSACTION_MANAGER_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/transport.h"
#include "rm/kv_resource_manager.h"
#include "runtime/runtime.h"
#include "rm/resource_manager.h"
#include "sim/sim_context.h"
#include "tm/crash_points.h"
#include "tm/paxos_acceptor.h"
#include "tm/protocol_messages.h"
#include "tm/types.h"
#include "util/flat_map.h"
#include "util/status.h"
#include "wal/log_manager.h"

namespace tpc::tm {

/// Per-session (conversation) attributes.
struct SessionOptions {
  /// Coordinator side: prefer this peer as the last agent.
  bool last_agent_candidate = false;
  /// Coordinator side: request the long-locks variation on this session
  /// (the subordinate buffers its ack and piggybacks it on the first
  /// message of the next transaction).
  bool long_locks = false;
};

/// Node-level protocol configuration.
struct TmConfig {
  ProtocolKind protocol = ProtocolKind::kPresumedAbort;

  // --- normal-case optimizations -----------------------------------------
  /// Honor read-only votes (exclude RO voters from phase two, no logging).
  bool read_only_opt = true;
  /// Exclude suspended, untouched, OK_TO_LEAVE_OUT subtrees from the 2PC.
  bool leave_out_opt = false;
  /// Include connected-but-untouched sessions in commit processing (the
  /// pre-leave-out baseline behavior; needed to measure what leave-out and
  /// read-only save).
  bool include_idle_sessions = false;
  /// Delegate the commit decision to one subordinate (the last agent).
  bool last_agent_opt = false;
  /// Elide acknowledgments from subtrees that voted reliable.
  bool vote_reliable_opt = false;
  /// Cascaded-coordinator acknowledgment timing.
  AckTiming ack_timing = AckTiming::kLate;
  /// Block commit completion on full recovery (true = classic late ack);
  /// false = wait-for-outcome: one contact attempt, then return with
  /// "outcome pending" and finish recovery in the background.
  bool wait_for_outcome_block = true;
  /// This node advertises OK_TO_LEAVE_OUT on its YES/RO votes when its
  /// whole subtree agrees (it acts as a suspendable server).
  bool ok_to_leave_out = false;
  /// Shared log with a host TM: this node's log object is owned by another
  /// node and that node's forces cover ours, so our TM records need not be
  /// forced. (Used by the shared-logs accounting experiments.)
  bool shared_log_with_host = false;

  // --- protocol-family parameters ------------------------------------------
  /// Paxos Commit: the 2F+1 acceptor node names, identical at every node.
  /// Acceptors are co-located on existing nodes; a node that finds its own
  /// name here also plays acceptor. Empty unless protocol == kPaxosCommit.
  std::vector<std::string> acceptors;
  /// One-phase family: how long a subordinate lets a transaction go idle
  /// before preparing early (an unsolicited YES without waiting for the
  /// coordinator's Prepare — the "early prepare" that removes phase one).
  sim::Time early_prepare_delay = 10 * sim::kMillisecond;

  // --- benchmarking baseline ----------------------------------------------
  /// Route protocol traffic through the frozen seed string path (PDU vector
  /// + EncodePdus temporary + by-name LegacyMessage + DecodePdus on receive)
  /// instead of the pooled writer/cursor path. Protocol behavior and traces
  /// are identical; bench/commit_bench measures what the pooled path saves.
  bool legacy_string_messaging = false;

  // --- failure behavior ----------------------------------------------------
  HeuristicPolicy heuristic_policy = HeuristicPolicy::kNever;
  sim::Time heuristic_delay = 60 * sim::kSecond;
  /// Coordinator: how long to wait for votes before deciding abort.
  sim::Time vote_timeout = 20 * sim::kSecond;
  /// Decision sender: per-attempt wait for an acknowledgment.
  sim::Time ack_timeout = 10 * sim::kSecond;
  /// PA subordinate: in-doubt duration before sending a recovery inquiry.
  sim::Time inquiry_delay = 15 * sim::kSecond;
  /// Background recovery retry cadence.
  sim::Time recovery_retry_interval = 30 * sim::kSecond;
};

/// Audit view of one transaction at one node (for cluster-wide consistency
/// checks and the reliability metrics).
struct TxnView {
  Outcome outcome = Outcome::kUnknown;
  bool damage_reported_here = false;  ///< a damage report reached this node
};

/// The transaction manager.
class TransactionManager : public net::Endpoint {
 public:
  /// Compatibility constructor for the sim path: owns a SimRuntime adapter
  /// over `ctx`, so every pre-seam call site (tests, benches, harness)
  /// compiles unchanged while exercising the adapter on every run.
  TransactionManager(sim::SimContext* ctx, net::Transport* network,
                     wal::LogManager* log, std::string name,
                     TmConfig config = {});

  /// Backend-explicit constructor. `rt` supplies the clock/timers/txn ids;
  /// `ctx` supplies the trace and failure injector (live nodes pass a
  /// private per-node SimContext for those); `network` is either the
  /// simulated interconnect or a live transport.
  TransactionManager(runtime::Runtime* rt, sim::SimContext* ctx,
                     net::Transport* network, wal::LogManager* log,
                     std::string name, TmConfig config = {});

  const std::string& name() const { return name_; }
  const TmConfig& config() const { return config_; }
  TmConfig& mutable_config() { return config_; }

  // --- wiring ---------------------------------------------------------------

  /// Attaches a local resource manager (not owned).
  void AttachRm(rm::KVResourceManager* rm);

  /// Declares a session with `peer` (call on both sides).
  void Connect(const net::NodeId& peer, SessionOptions options = {});

  /// Application upcall invoked when APP_DATA arrives (workloads use it to
  /// perform subordinate-side updates). `data` views the delivered payload
  /// in place and dies with the upcall — copy it to keep it.
  using AppDataHandler = std::function<void(
      uint64_t txn, const net::NodeId& from, std::string_view data)>;
  void SetAppDataHandler(AppDataHandler handler) {
    on_app_data_ = std::move(handler);
  }

  // --- application interface -------------------------------------------------

  /// Starts a new distributed transaction rooted here. Returns the txn id.
  uint64_t Begin();

  /// Sends application data to `peer`, enrolling it (and unsuspending a
  /// left-out session) in the transaction. Any acknowledgments buffered for
  /// `peer` (long locks / implied acks) piggyback on this flow.
  Status SendWork(uint64_t txn, const net::NodeId& peer,
                  std::string_view payload = {});

  /// Data operations against a local RM (index into attachment order).
  /// Keys are views so handlers can address data parsed straight out of a
  /// delivered payload without materializing strings.
  void Read(uint64_t txn, size_t rm_index, std::string_view key,
            rm::KVResourceManager::ReadCallback done);
  void Write(uint64_t txn, size_t rm_index, std::string_view key,
             std::string value, rm::KVResourceManager::WriteCallback done);

  /// Server-side unsolicited vote: prepare now and vote YES to the peer the
  /// work came from, without waiting for its Prepare.
  void UnsolicitedPrepare(uint64_t txn);

  /// Initiates commit processing; this node becomes the commit coordinator.
  void Commit(uint64_t txn, CommitCallback done);

  /// Aborts a transaction this node participates in.
  void AbortTxn(uint64_t txn);

  // --- failure & recovery -----------------------------------------------------

  /// Crash: volatile state vanishes; the log keeps its durable prefix.
  void Crash();

  /// Restart after a crash: scans the log and resumes/resolves protocol
  /// state (PN coordinators drive their subordinates; PA subordinates
  /// inquire upstream; RMs redo/undo and re-acquire in-doubt locks).
  void Restart();

  bool IsUp() const override { return up_; }

  // --- net::Endpoint -----------------------------------------------------------

  void OnMessage(const net::Message& msg) override;

  // --- introspection (tests, benches, audits) ----------------------------------

  /// This node's current view of `txn`.
  TxnView View(uint64_t txn) const;

  /// Cost counters for `txn` at this node (flows sent, TM log writes).
  TxnCost CostOf(uint64_t txn) const;

  /// True if a transaction is still tracked (not forgotten).
  bool Knows(uint64_t txn) const;

  /// Number of in-doubt transactions (blocked, for lock-time analysis).
  size_t InDoubtCount() const;

  /// Number of transactions currently tracked (for checkpoint safety).
  size_t ActiveTxnCount() const { return live_txns_; }

  /// Transactions still held by the co-located paxos acceptor (0 for
  /// non-acceptors). END-driven reclamation keeps this bounded by the
  /// in-flight window; tests gate the leak here.
  size_t AcceptorTxnCount() const { return acceptor_.txn_count(); }

  rm::KVResourceManager* rm(size_t index) { return rms_.at(index); }
  size_t rm_count() const { return rms_.size(); }

  /// Heap bytes held by this TM's own tables (sessions, txn slab, per-txn
  /// meta). Feeds the cluster memory budget. The key property at cluster
  /// scale: a node's footprint is O(fanout + transactions it touched), not
  /// O(cluster size) or O(global txn-id space).
  uint64_t ApproxBytes() const;

 private:
  struct Child {
    net::NodeId peer;
    bool prepare_sent = false;
    bool voted = false;
    rm::Vote vote = rm::Vote::kNo;
    bool reliable = false;
    bool ok_leave_out = false;
    bool unsolicited = false;
    bool is_last_agent = false;
    bool excluded = false;      ///< not part of phase two (RO / left out)
    bool ack_required = false;  ///< computed when the decision is sent
    bool acked = false;
    bool retried = false;       ///< wait-for-outcome single retry used
    sim::EventId ack_timer = 0;
    bool ack_timer_armed = false;
  };

  enum class Phase : uint8_t {
    kActive,
    kPreparing,       ///< phase one in progress (this node coordinates it)
    kAwaitLastAgent,  ///< voted YES to the last agent; decision is theirs
    kInDoubt,         ///< prepared as subordinate, outcome unknown
    kDeciding,        ///< outcome known; phase two in progress
    kDone,
  };

  struct Txn {
    uint64_t id = 0;
    bool in_use = false;  ///< slab slot is live (vs free-listed)
    Phase phase = Phase::kActive;
    Outcome outcome = Outcome::kActive;
    bool is_root = false;
    bool has_upstream = false;
    net::NodeId upstream;
    bool has_work_source = false;
    net::NodeId work_source;  ///< peer whose data enrolled us (requester)
    std::vector<Child> children;
    /// Peers with data exchange this txn; kept sorted (AddPeer/HasPeer) so
    /// iteration matches the std::set order the protocol was built on.
    std::vector<net::NodeId> peers;

    // Phase-one aggregation.
    size_t votes_outstanding = 0;
    size_t rms_outstanding = 0;
    bool any_no = false;
    bool all_reliable = true;
    bool all_leave_out = true;
    bool local_updates = false;  ///< any local RM voted YES (has updates)

    // Subordinate-side context.
    bool upstream_long_locks = false;
    bool voted_yes = false;           ///< sent a YES (incl. unsolicited/LA path)
    bool unsolicited_sent = false;
    bool my_vote_reliable = false;    ///< our YES carried reliable=true

    // Decision state.
    bool decided = false;
    bool commit_decision = false;

    // Last-agent handling.
    bool awaiting_last_agent = false;
    net::NodeId last_agent_peer;
    bool i_am_last_agent = false;
    bool initiator_read_only = false;  ///< last agent got an RO vote
    bool my_la_vote_ro = false;        ///< initiator voted RO to its last agent
    bool awaiting_implied_ack = false;
    net::NodeId implied_ack_peer;

    // PN bookkeeping.
    bool commit_pending_logged = false;

    /// Last agent side: the initiator's vote requested long locks, so our
    /// decision message is buffered for piggybacking.
    bool initiator_requested_long_locks = false;

    // Heuristic aggregation (what the subtree reported to us).
    bool heur_commit = false;
    bool heur_abort = false;
    bool damage = false;
    bool subtree_pending = false;

    // Heuristic state at this node.
    bool took_heuristic = false;

    // Application completion.
    bool has_app_cb = false;
    CommitCallback app_cb;
    sim::Time commit_started = 0;
    bool app_completed = false;

    // Phase-two RM countdown.
    size_t rm_phase2_outstanding = 0;
    bool end_written = false;
    bool ack_sent = false;  ///< subordinate: acknowledged upstream already

    // Timers.
    sim::EventId heur_timer = 0;
    bool heur_timer_armed = false;
    sim::EventId inq_timer = 0;
    bool inq_timer_armed = false;
    sim::EventId vote_timer = 0;
    bool vote_timer_armed = false;
    /// One-phase family: quiesce timer driving the early prepare.
    sim::EventId ep_timer = 0;
    bool ep_timer_armed = false;

    // Paxos Commit: one consensus instance per cohort member (leader side).
    struct PaxosInst {
      net::NodeId name;     ///< cohort member whose vote this instance is
      bool done = false;    ///< 2b majority reached at the current ballot
      bool value = false;   ///< instance outcome: Prepared (true) / Aborted
      uint32_t acks = 0;    ///< 2b count at the current ballot
      // Takeover phase 1: highest-ballot accepted value reported in 1b.
      uint64_t seen_ballot = 0;
      bool seen_value = false;
      bool seen_any = false;
    };
    std::vector<PaxosInst> paxos_insts;
    /// Every participant (instance) of the consensus, self included; learned
    /// from the root's Prepare and persisted in the prepared record so a
    /// recovered participant can lead a takeover.
    std::vector<net::NodeId> paxos_cohort;
    bool paxos_leader = false;      ///< currently proposing (root or takeover)
    bool paxos_phase1 = false;      ///< collecting 1b promises
    uint64_t paxos_ballot = 0;      ///< proposal ballot (0 = self-vote round)
    uint32_t paxos_promises = 0;    ///< granted 1b count at paxos_ballot
    uint64_t takeover_attempt = 0;  ///< generates the next takeover ballot
    bool paxos_voted_self = false;  ///< our ballot-0 2a fan-out happened

    // Recovery: RM in-doubt transactions awaiting our outcome.
    bool rm_recovered_in_doubt = false;
  };

  struct Session {
    /// The peer's interned network id (sessions_ is compact, O(fanout), so
    /// each entry must say who it talks to).
    uint32_t peer_id = net::Transport::kNoId;
    SessionOptions options;
    /// Peer is suspended after voting OK_TO_LEAVE_OUT (may be left out).
    bool suspended_leave_out = false;
    /// Outbound PDUs buffered for piggybacking (long-locks acks).
    std::vector<Pdu> outbox;
    /// As last agent: decision sent, END awaits the peer's implied ack.
    uint64_t awaiting_implied_ack_txn = 0;
  };

  /// Everything keyed by transaction id, folded into one dense slot: the
  /// live transaction's slab index (kNoSlot once forgotten), the archived
  /// verdict kept for audits/inquiries after END, and the cost counters.
  struct TxnMeta {
    uint32_t slot = UINT32_MAX;  // == kNoSlot
    bool has_view = false;       ///< archived verdict present
    TxnView view;
    TxnCost cost;
  };

  static constexpr uint32_t kNoSlot = UINT32_MAX;

  // --- plumbing -------------------------------------------------------------
  void Init();  ///< shared constructor body (register, intern crash points)
  TxnMeta& MetaSlot(uint64_t id);
  const TxnMeta* FindMeta(uint64_t id) const;
  Txn& GetOrCreateTxn(uint64_t id);
  Txn* FindTxn(uint64_t id);
  const Txn* FindTxn(uint64_t id) const;
  /// The session slot for `peer`, or nullptr if none was ever declared.
  Session* FindSession(const net::NodeId& peer);
  /// Same, by interned network id. O(log fanout). Never allocates.
  Session* FindSessionById(uint32_t sid);
  /// The session slot for `peer`, creating (and connecting) it if absent —
  /// mirrors the seed's operator[] insertion semantics.
  Session& SessionSlot(const net::NodeId& peer);
  void RebuildSessionOrder();
  static void AddPeer(Txn& txn, const net::NodeId& peer);
  static bool HasPeer(const Txn& txn, const net::NodeId& peer);
  /// Sends `pdu` (plus anything buffered for the peer) as one message.
  /// kAppData bytes may arrive as `app_data` instead of `pdu.data`: the
  /// pooled path encodes them straight from the caller's view into the
  /// payload buffer, copy-free. The view only needs to live for this call.
  void SendPdu(const net::NodeId& peer, Pdu pdu, std::string_view app_data = {});
  void BufferPdu(const net::NodeId& peer, Pdu pdu);
  void AppendTmRecord(uint64_t txn, wal::RecordType type, bool force,
                      std::string body, std::function<void()> done);
  bool ForceDowngraded() const { return config_.shared_log_with_host; }

  // --- crash-point instrumentation ------------------------------------------
  // Point names are interned once at construction; reporting a hit is a flat
  // array increment in the injector. When CrashHere returns true this node
  // just crashed: the caller must unwind without touching any Txn state
  // (slab slots were reset by Crash()).
  bool CrashHere(CrashPt p) {
    return ctx_->failures().CrashPoint(fi_node_, PointId(p));
  }
  /// Fires `p`, then the legacy alias armed by pre-campaign tests.
  bool CrashHereOrLegacy(CrashPt p, uint32_t legacy_point) {
    if (CrashHere(p)) return true;
    return ctx_->failures().CrashPoint(fi_node_, legacy_point);
  }
  uint32_t PointId(CrashPt p) const {
    return fi_points_[static_cast<size_t>(p)];
  }
  /// Coordinator-side role split: decision owner vs cascaded coordinator.
  static CrashPt CoordPt(const Txn& txn, CrashPt root, CrashPt casc) {
    return txn.has_upstream ? casc : root;
  }
  /// Subordinate-side role split: cascaded (has children) vs leaf.
  static CrashPt SubPt(const Txn& txn, CrashPt casc, CrashPt sub) {
    return txn.children.empty() ? sub : casc;
  }
  /// Three-way split for sites any role reaches.
  static CrashPt RolePt(const Txn& txn, CrashPt root, CrashPt casc,
                        CrashPt sub) {
    if (!txn.has_upstream) return root;
    return txn.children.empty() ? sub : casc;
  }

  // --- coordinator path -------------------------------------------------------
  void StartPhaseOne(Txn& txn);
  void ComputeParticipants(Txn& txn);
  void ContinuePhaseOne(Txn& txn);
  void PrepareLocalRms(Txn& txn);
  void OnVotePdu(const net::NodeId& from, const Pdu& pdu);
  void MaybePhaseOneComplete(Txn& txn);
  void DecideAndPropagate(Txn& txn, bool commit);
  void SendDecision(Txn& txn, bool commit);
  void ArmAckTimer(Txn& txn, Child& child);
  void OnAckPdu(const net::NodeId& from, const Pdu& pdu);
  void MaybeComplete(Txn& txn);
  void CompleteApp(Txn& txn, bool pending);
  void WriteEndIfNeeded(Txn& txn, bool force, std::function<void()> done);

  /// Routes one decoded PDU to its handler. `data` is the kAppData payload
  /// view (empty for protocol PDUs).
  void DispatchPdu(const net::NodeId& from, const Pdu& pdu,
                   std::string_view data);

  // --- subordinate path ---------------------------------------------------------
  void OnAppData(const net::NodeId& from, const Pdu& pdu,
                 std::string_view data);
  void OnPreparePdu(const net::NodeId& from, const Pdu& pdu,
                    std::string_view data);
  void SendVote(Txn& txn);
  void OnDecisionPdu(const net::NodeId& from, const Pdu& pdu);
  void ApplyDecision(Txn& txn, bool commit);
  /// Resolves an in-doubt txn that already took a heuristic decision:
  /// runs the damage comparison against the real outcome, then propagates
  /// the real decision to the subtree. Shared by the decision-PDU and
  /// inquiry-reply paths.
  void ResolveAfterHeuristic(Txn& txn, bool commit);
  void AckUpstreamIfReady(Txn& txn);
  void DoSendAck(Txn& txn, bool pending);
  void ArmHeuristicTimer(Txn& txn);
  void TakeHeuristicDecision(Txn& txn);
  void ArmInquiryTimer(Txn& txn);
  void SendInquiry(Txn& txn);
  void OnInquiryPdu(const net::NodeId& from, const Pdu& pdu);
  void OnInquiryReplyPdu(const net::NodeId& from, const Pdu& pdu);

  // --- one-phase family ------------------------------------------------------
  /// (Re)arms the quiesce timer that triggers the early prepare once data
  /// flow pauses; fires UnsolicitedPrepare.
  void ArmEarlyPrepare(Txn& txn);

  // --- Paxos Commit -----------------------------------------------------------
  bool IsAcceptor() const;
  /// Ballot for this node's `attempt`-th takeover. Distinct leaders draw
  /// from distinct residues mod (acceptors + 1), so no two leaders ever
  /// share a ballot; 0 is reserved for the participants' self-votes. The
  /// 64-bit arithmetic saturates at a cap where the residues still differ,
  /// so dueling takeovers can never wrap a ballot back under a promised
  /// value or collide two leaders on one ballot.
  uint64_t PaxosBallot(uint64_t attempt) const;
  /// Encodes `body` and sends `type` for txn `id` to `peer`.
  void SendPaxosPdu(const net::NodeId& peer, PduType type, uint64_t id,
                    const PaxosBody& body);
  /// Same, but with the repeated-instance bundle encoding (kPaxos*Bundle).
  void SendPaxosBundle(const net::NodeId& peer, PduType type, uint64_t id,
                       const PaxosBody& body);
  /// Fans the ballot-0 2a for our own instance out to the acceptor set;
  /// callers force the prepared record first. `prepared` is our vote.
  /// `self_accepted` reports whether the co-located ballot-0 self-accept
  /// already rode that force (PaxosSelfAccept) — if so, the self 2a is
  /// short-circuited into a direct 2b delivery.
  void SendPaxosVote(Txn& txn, bool prepared, CrashPt after_send,
                     bool self_accepted);
  /// Co-located leader/acceptor piggyback: applies our ballot-0 self-accept
  /// to the acceptor state machine and appends its snapshot non-forced, so
  /// the caller's immediately following prepared-record force makes vote
  /// and accept durable in ONE write (Gray & Lamport's first cost
  /// optimization). Returns false when this node is not an acceptor or a
  /// takeover ballot already outbid ballot 0.
  bool PaxosSelfAccept(Txn& txn, bool prepared);
  /// Root: all local RMs voted YES — force our prepared record (with the
  /// cohort) and enter the consensus with our own ballot-0 instance.
  void StartPaxosCommit(Txn& txn);
  /// A prepared participant (or restarted root) assumes leadership: new
  /// ballot, 1a query to the acceptors, completes unfinished instances.
  void StartPaxosTakeover(Txn& txn);
  /// Phase 2 of a takeover: propose the discovered (or default Aborted)
  /// value for every instance at our ballot.
  void SendPaxosProposals(Txn& txn);
  /// Decides once every instance has a 2b majority: commit iff all Prepared.
  void CheckPaxosOutcome(Txn& txn);
  /// Leader-side liveness timer: re-runs the takeover until decided.
  void ArmPaxosRetry(Txn& txn);
  /// Funnels a paxos outcome into the classic decision machinery: this node
  /// becomes the decision owner and drives phase two for the whole cohort.
  void DecidePaxos(Txn& txn, bool commit);
  Txn::PaxosInst* FindInst(Txn& txn, std::string_view name);

  // Acceptor ingress (wire handlers and co-located self-delivery share
  // these). Acceptor state must be durable before it becomes observable
  // off-node: a snapshot force precedes every 2b/1b reply to a REMOTE
  // leader. A reply delivered locally to ourself-as-leader rides without
  // its own force — the decision record's force is the externalization
  // barrier, so a crash loses the acceptance and its observation together.
  void AcceptorOnAccept(const net::NodeId& leader, uint64_t id,
                        const net::NodeId& instance, uint64_t ballot,
                        bool prepared, const std::vector<std::string>& cohort,
                        const net::NodeId& leader0);
  /// Bundled 2a ingress (one PDU, every instance): applies all accepts,
  /// forces ONE covering snapshot, replies with ONE bundled 2b.
  void AcceptorOnAcceptBundle(const net::NodeId& leader, uint64_t id,
                              uint64_t ballot,
                              const std::vector<PaxosAccepted>& entries,
                              const std::vector<std::string>& cohort);
  /// Ballot-0 deferral: once every cohort instance holds a value, force one
  /// covering snapshot and send the leader one bundled 2b for the whole
  /// transaction (or deliver locally when we are the leader).
  void AcceptorMaybeReply(const net::NodeId& leader, uint64_t id);
  void AcceptorOnQuery(const net::NodeId& leader, uint64_t id,
                       uint64_t ballot);
  /// END-driven reclamation: erases the transaction from the acceptor state
  /// machine and appends an empty-snapshot tombstone (non-forced; it rides
  /// any later force) so recovery does not resurrect the entry.
  void AcceptorReclaim(uint64_t id);
  /// Decision stable at every cohort member (the owner's Forget): reclaim
  /// our own acceptor state and buffer kPaxosEnd to the other acceptors —
  /// buffered PDUs piggyback on the next message to each peer, so
  /// reclamation costs zero extra flows.
  void PaxosBroadcastEnd(Txn& txn);

  // Leader ingress for acceptor replies (wire + local short-circuit).
  void LeaderOnAccepted(uint64_t id, std::string_view instance,
                        uint64_t ballot, bool prepared);
  Txn* LeaderForPromise(uint64_t id, uint64_t ballot);
  void LeaderMergeAccepted(Txn& txn, std::string_view instance,
                           uint64_t ballot, bool prepared);
  void LeaderPromiseGranted(Txn& txn);
  void LeaderPromiseNack(Txn& txn, uint64_t promised);

  void OnPaxosAcceptPdu(const net::NodeId& from, const Pdu& pdu,
                        std::string_view data);
  void OnPaxosAcceptedPdu(const Pdu& pdu, std::string_view data);
  void OnPaxosQueryPdu(const net::NodeId& from, const Pdu& pdu,
                       std::string_view data);
  void OnPaxosPromisePdu(const Pdu& pdu, std::string_view data);
  void OnPaxosTakeoverPdu(const net::NodeId& from, const Pdu& pdu,
                          std::string_view data);
  void OnPaxosAcceptBundlePdu(const net::NodeId& from, const Pdu& pdu,
                              std::string_view data);
  void OnPaxosAcceptedBundlePdu(const Pdu& pdu, std::string_view data);
  void OnPaxosEndPdu(const Pdu& pdu);

  // --- shared ---------------------------------------------------------------
  void AbortLocal(Txn& txn);  ///< undo local RMs (pre-prepare abort)
  void CancelTimers(Txn& txn);
  void Forget(Txn& txn);
  void NoteImpliedAck(const net::NodeId& from);

  // --- recovery ----------------------------------------------------------------
  void RecoverFromLog();
  void ScheduleRecoveryRetry(uint64_t txn);

  std::unique_ptr<runtime::Runtime> owned_rt_;  ///< compat-ctor SimRuntime
  runtime::Runtime* rt_;
  sim::SimContext* ctx_;  ///< trace + failure injector only
  net::Transport* network_;
  wal::LogManager* log_;
  std::string name_;
  uint32_t self_id_;  ///< our interned network id, cached at construction
  uint32_t fi_node_;  ///< our interned failure-injector node id
  std::array<uint32_t, kCrashPointCount> fi_points_;  ///< interned point ids
  uint32_t fi_legacy_prepared_;  ///< "after_prepared_force" alias
  uint32_t fi_legacy_commit_;    ///< "after_commit_force" alias
  TmConfig config_;
  bool up_ = true;
  uint64_t epoch_ = 0;  ///< bumped on crash; stale timer closures no-op

  std::vector<rm::KVResourceManager*> rms_;

  // Sessions live in a compact vector (one entry per declared session, so a
  // node's session memory is O(fanout) even in a 2048-node cluster, not a
  // vector with holes sized by the largest interned network id). Lookups by
  // peer go through a sorted (peer id -> slot) index: one interner probe
  // plus a binary search over the fanout. session_order_ lists the slots
  // sorted by peer name so participant computation iterates in the same
  // (name-lexicographic) order the old std::map gave — that order is
  // trace-visible.
  std::vector<Session> sessions_;
  std::vector<uint32_t> session_ids_;    // sorted peer ids
  std::vector<uint32_t> session_slots_;  // parallel: slot in sessions_
  std::vector<uint32_t> session_order_;  // slots, sorted by peer name

  // Live transactions sit in a slab (deque: references stay stable while it
  // grows) with freed slots recycled through a free list. TxnMeta maps the
  // id to its slot and carries the archive view and cost counters. The map
  // is sparse: txn ids are global across the cluster, so a dense by-id
  // table would cost every node O(cluster-wide txn count).
  std::deque<Txn> txn_slab_;
  std::vector<uint32_t> free_slots_;
  size_t live_txns_ = 0;
  FlatId64Map<TxnMeta> txn_meta_;

  /// Paxos acceptor role state (co-located; empty unless this node's name is
  /// in config_.acceptors). Volatile — crash clears it, kTmAccept snapshots
  /// restore it.
  PaxosAcceptor acceptor_;
  /// Reusable encode buffer for outgoing PaxosBody payloads (steady-state
  /// paxos sends stay allocation-free once its capacity is warm).
  std::string paxos_wire_;
  /// Reusable decode target for incoming PaxosBody payloads.
  PaxosBody paxos_in_;
  /// Reusable entry scratch: bundle paths copy accepted entries here before
  /// delivering them, because completing an instance can decide the
  /// transaction and reclaim the acceptor state mid-iteration.
  std::vector<PaxosAccepted> paxos_entries_;

  AppDataHandler on_app_data_;
};

}  // namespace tpc::tm

#endif  // TPC_TM_TRANSACTION_MANAGER_H_
