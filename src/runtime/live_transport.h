// LiveTransport: the real-threads net::Transport backend.
//
// Send parks the message in a slab and posts a 16-byte delivery task to the
// destination node's mailbox, so OnMessage runs on the destination's
// serialized worker context — the same "delivery is an event on the
// receiver" shape the simulated Network gives the engines. Per-pair FIFO
// falls out of construction: a sender posts its deliveries from one thread
// in Send order, and the destination mailbox preserves post order.
//
// One mutex guards all shared state (interning tables, endpoint registry,
// payload pool, parked-message slab, stats). It is held only for pointer /
// index manipulation — never across OnMessage, which may itself Send.
// Payload buffers live in a deque, so the address a sender encodes into
// stays stable after the lock drops; cross-thread visibility of the bytes
// rides the destination-mailbox mutex (release on Post, acquire on drain).
//
// Crash semantics differ from the sim on purpose: there is no global
// "messages in flight" list to drop, so a message posted to a crashed node
// is discarded by the delivery task's IsUp() check on the destination
// thread — equivalent to the sim's deliver-time drop.

#ifndef TPC_RUNTIME_LIVE_TRANSPORT_H_
#define TPC_RUNTIME_LIVE_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/transport.h"
#include "runtime/live_runtime.h"

namespace tpc::runtime {

class LiveTransport final : public net::Transport {
 public:
  struct Stats {
    uint64_t messages_sent = 0;
    uint64_t messages_delivered = 0;
    uint64_t messages_dropped = 0;  ///< destination down at delivery
    uint64_t messages_rejected = 0;
    uint64_t bytes_sent = 0;
  };

  LiveTransport() = default;

  /// Associates `name` with the node runtime whose mailbox receives its
  /// deliveries. Must precede Register(name, ...); setup phase only.
  void Bind(const net::NodeId& name, LiveNodeRuntime* node);

  void Register(const net::NodeId& id, net::Endpoint* endpoint) override;

  uint32_t InternId(const net::NodeId& name) override;
  uint32_t IdOf(const net::NodeId& name) const override;
  const net::NodeId& NameOf(uint32_t id) const override;

  net::PayloadRef AcquirePayload() override;
  std::string& PayloadBuffer(net::PayloadRef ref) override;
  std::string_view PayloadView(net::PayloadRef ref) const override;

  Status Send(net::Message msg) override;
  Status SendLegacy(net::LegacyMessage msg) override;

  sim::Time LatencyBetween(const net::NodeId& a,
                           const net::NodeId& b) const override {
    (void)a;
    (void)b;
    return 0;  // the scheduler decides; engines only use this for traces
  }

  bool tracing() const override { return false; }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  uint32_t InternLocked(const net::NodeId& name);
  void Deliver(uint32_t slab_index);
  void ReleasePayloadLocked(net::PayloadRef ref);

  mutable std::mutex mu_;
  std::unordered_map<net::NodeId, uint32_t> ids_;
  std::vector<net::NodeId> names_;
  std::vector<net::Endpoint*> endpoints_;
  std::vector<LiveNodeRuntime*> node_rts_;
  std::deque<std::string> payload_pool_;  ///< stable addresses
  std::vector<uint32_t> payload_free_;
  std::deque<net::Message> slab_;  ///< parked in-flight messages
  std::vector<uint32_t> slab_free_;
  Stats stats_;
};

}  // namespace tpc::runtime

#endif  // TPC_RUNTIME_LIVE_TRANSPORT_H_
