// LiveRuntime: the real-threads Runtime backend — same protocol engines,
// wall clock, worker pool, hashed timer wheel, real message handoff.
//
// Execution model (actor-style, mirroring the sim's serialization):
//   - Every node owns an MPSC mailbox (mutex + deque). Any thread may Post;
//     tasks run strictly in post order.
//   - A node is executed by at most one worker at a time: a `scheduled`
//     flag guarantees the node sits in the global ready queue (mutex +
//     condvar, feeding `worker_threads` workers) at most once, and the
//     worker that dequeues it holds exclusive run rights until it drains a
//     batch and either re-enqueues or clears the flag. Protocol code
//     therefore never needs internal locking — exactly the guarantee the
//     deterministic event loop gave it.
//   - Timers live on one hashed timer wheel (buckets hashed by deadline
//     tick) driven by a dedicated tick thread. The wheel only *posts* a
//     fire task to the owning node; the slot is claimed under the wheel
//     mutex when that task runs on the node's thread. Cancel therefore wins
//     against any fire task that has not started running — on a node's own
//     thread, cancel-before-fire always returns true, preserving the
//     engines' armed-flag discipline (TPC_CHECK(CancelTimer(...))).
//   - Now() is a monotonic wall clock (microseconds since runtime start);
//     NextTxnId() is one shared atomic, so ids stay cluster-unique.
//
// A blocking call inside a task (FileStorage's fsync) parks only that
// node's worker; other ready nodes run on the remaining workers. That I/O
// overlap — not compute parallelism — is where live commit throughput
// scales with the worker count, on any core count.

#ifndef TPC_RUNTIME_LIVE_RUNTIME_H_
#define TPC_RUNTIME_LIVE_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/runtime.h"
#include "sim/inline_function.h"

namespace tpc::runtime {

/// A mailbox task. 64 bytes of inline storage: enough for a posted storage
/// completion (a 48-byte WriteCallback plus its wrapper) or a std::function
/// handed in by a client thread; larger closures fall back to one heap
/// allocation, as everywhere else.
using Task = sim::InlineFunction<64>;

class LiveRuntime;
class LiveNodeRuntime;

/// The shared timer wheel. Buckets are hashed by deadline tick; the tick
/// thread scans the buckets its window passed and posts fire tasks; slots
/// are claimed (or cancelled) under the wheel mutex.
class TimerWheel {
 public:
  TimerWheel(LiveRuntime* rt, int64_t tick_us) : rt_(rt), tick_us_(tick_us) {}

  TimerId Arm(sim::Time deadline_us, TimerCallback fn, LiveNodeRuntime* owner);
  bool Cancel(TimerId id);
  /// Posts fire tasks for every armed slot whose deadline passed.
  void Advance(sim::Time now_us);

 private:
  struct Slot {
    TimerCallback fn;
    LiveNodeRuntime* owner = nullptr;
    sim::Time deadline = 0;
    uint32_t gen = 0;   // bumped on every (re)arm; stale ids never cancel
    bool armed = false;
  };
  struct Entry {
    uint32_t slot;
    uint32_t gen;
  };
  static constexpr size_t kBuckets = 256;

  /// Claims the slot (if still armed and current) and runs its callback on
  /// the owning node's thread.
  void Fire(uint32_t slot, uint32_t gen);

  LiveRuntime* rt_;
  const int64_t tick_us_;
  std::mutex mu_;
  std::vector<std::vector<Entry>> buckets_{kBuckets};
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_;
  int64_t last_tick_ = 0;
};

/// One node's runtime face: the Runtime the node's TM/LogManager/LockManager
/// hold, plus the mailbox everything destined for the node goes through.
class LiveNodeRuntime final : public Runtime {
 public:
  sim::Time Now() const override;
  TimerId ArmTimer(sim::Time delay, TimerCallback fn) override;
  bool CancelTimer(TimerId id) override;
  uint64_t NextTxnId() override;

  /// Enqueues `task` on this node's mailbox (any thread; FIFO per sender).
  void Post(Task task);

  const std::string& name() const { return name_; }
  LiveRuntime* runtime() { return rt_; }

 private:
  friend class LiveRuntime;
  LiveNodeRuntime(LiveRuntime* rt, std::string name)
      : rt_(rt), name_(std::move(name)) {}

  LiveRuntime* rt_;
  std::string name_;
  std::mutex mu_;
  std::deque<Task> mailbox_;
  bool scheduled_ = false;  ///< in the ready queue or held by a worker
};

/// Namespace-scope (not nested) so it can be a defaulted constructor
/// argument — GCC rejects brace-defaulting a nested aggregate with member
/// initializers inside the enclosing class.
struct LiveOptions {
  /// Worker threads executing node mailboxes.
  int worker_threads = 4;
  /// Timer wheel resolution (tick thread period).
  int64_t timer_tick_us = 250;
};

class LiveRuntime {
 public:
  using Options = LiveOptions;

  explicit LiveRuntime(Options options = {});
  ~LiveRuntime();  ///< Stops if still running.

  LiveRuntime(const LiveRuntime&) = delete;
  LiveRuntime& operator=(const LiveRuntime&) = delete;

  /// Creates a node (single-threaded setup phase, before Start).
  LiveNodeRuntime* AddNode(const std::string& name);

  void Start();
  /// Drains nothing: workers stop after their current batch; pending tasks
  /// stay queued. Call WaitIdle first for a clean quiesce.
  void Stop();

  /// Microseconds since the runtime was constructed (monotonic).
  sim::Time NowUs() const;

  uint64_t NextTxnId() { return ++txn_ids_; }

  /// Blocks until no node is ready or running. Timers may still be armed;
  /// quiescence here means the mailboxes drained.
  void WaitIdle();

  const Options& options() const { return options_; }

 private:
  friend class LiveNodeRuntime;
  friend class TimerWheel;

  void WorkerLoop();
  void TickLoop();
  void Enqueue(LiveNodeRuntime* node);  ///< node became ready

  Options options_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> txn_ids_{0};
  TimerWheel wheel_;

  std::mutex ready_mu_;
  std::condition_variable ready_cv_;
  std::condition_variable idle_cv_;
  std::deque<LiveNodeRuntime*> ready_;
  int running_ = 0;  ///< workers currently executing a node batch
  bool stopping_ = false;
  bool started_ = false;

  std::vector<std::thread> workers_;
  std::thread ticker_;
  std::vector<std::unique_ptr<LiveNodeRuntime>> nodes_;
};

}  // namespace tpc::runtime

#endif  // TPC_RUNTIME_LIVE_RUNTIME_H_
