#include "runtime/live_transport.h"

#include <utility>

#include "util/logging.h"

namespace tpc::runtime {

uint32_t LiveTransport::InternLocked(const net::NodeId& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(names_.size());
  ids_.emplace(name, id);
  names_.push_back(name);
  endpoints_.push_back(nullptr);
  node_rts_.push_back(nullptr);
  return id;
}

void LiveTransport::Bind(const net::NodeId& name, LiveNodeRuntime* node) {
  TPC_CHECK(node != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t id = InternLocked(name);
  TPC_CHECK(node_rts_[id] == nullptr);
  node_rts_[id] = node;
}

void LiveTransport::Register(const net::NodeId& id, net::Endpoint* endpoint) {
  TPC_CHECK(endpoint != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t node = InternLocked(id);
  TPC_CHECK(endpoints_[node] == nullptr);  // names must be unique
  TPC_CHECK(node_rts_[node] != nullptr);   // Bind must precede Register
  endpoints_[node] = endpoint;
}

uint32_t LiveTransport::InternId(const net::NodeId& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return InternLocked(name);
}

uint32_t LiveTransport::IdOf(const net::NodeId& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(name);
  return it == ids_.end() ? kNoId : it->second;
}

const net::NodeId& LiveTransport::NameOf(uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  TPC_CHECK(id < names_.size());
  return names_[id];
}

net::PayloadRef LiveTransport::AcquirePayload() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!payload_free_.empty()) {
    const uint32_t idx = payload_free_.back();
    payload_free_.pop_back();
    payload_pool_[idx].clear();
    return net::PayloadRef{idx};
  }
  payload_pool_.emplace_back();
  return net::PayloadRef{static_cast<uint32_t>(payload_pool_.size() - 1)};
}

std::string& LiveTransport::PayloadBuffer(net::PayloadRef ref) {
  std::lock_guard<std::mutex> lock(mu_);
  return payload_pool_[ref.index];  // deque: address stable after unlock
}

std::string_view LiveTransport::PayloadView(net::PayloadRef ref) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ref.valid() ? std::string_view(payload_pool_[ref.index])
                     : std::string_view();
}

void LiveTransport::ReleasePayloadLocked(net::PayloadRef ref) {
  if (ref.valid()) payload_free_.push_back(ref.index);
}

Status LiveTransport::Send(net::Message msg) {
  LiveNodeRuntime* dest;
  uint32_t idx;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint32_t from = msg.from;
    const uint32_t to = msg.to;
    if (from >= endpoints_.size() || endpoints_[from] == nullptr) {
      ++stats_.messages_rejected;
      ReleasePayloadLocked(msg.payload);
      return Status::InvalidArgument(
          "unknown sender: " +
          (from < names_.size() ? names_[from] : "(uninterned id)"));
    }
    if (to >= endpoints_.size() || endpoints_[to] == nullptr) {
      ++stats_.messages_rejected;
      ReleasePayloadLocked(msg.payload);
      return Status::InvalidArgument(
          "unknown destination: " +
          (to < names_.size() ? names_[to] : "(uninterned id)"));
    }
    // IsUp is owned by the node's thread; Send does not probe it. A message
    // from a node that crashed mid-task is dropped at delivery, like the
    // sim's deliver-time check.
    ++stats_.messages_sent;
    stats_.bytes_sent += msg.payload.valid()
                             ? payload_pool_[msg.payload.index].size()
                             : 0;
    dest = node_rts_[to];
    if (!slab_free_.empty()) {
      idx = slab_free_.back();
      slab_free_.pop_back();
      slab_[idx] = std::move(msg);
    } else {
      idx = static_cast<uint32_t>(slab_.size());
      slab_.push_back(std::move(msg));
    }
  }
  dest->Post(Task([this, idx] { Deliver(idx); }));
  return Status::OK();
}

Status LiveTransport::SendLegacy(net::LegacyMessage msg) {
  net::Message out;
  out.from = IdOf(msg.from);
  out.to = IdOf(msg.to);
  out.kind = msg.kind;
  out.txn = msg.txn;
  if (!msg.trace_tag.empty()) out.trace_tag = msg.trace_tag;
  if (!msg.payload.empty()) {
    out.payload = AcquirePayload();
    PayloadBuffer(out.payload).assign(msg.payload);
  }
  return Send(std::move(out));
}

void LiveTransport::Deliver(uint32_t slab_index) {
  net::Message msg;
  net::Endpoint* endpoint;
  {
    std::lock_guard<std::mutex> lock(mu_);
    msg = std::move(slab_[slab_index]);
    slab_free_.push_back(slab_index);
    endpoint = endpoints_[msg.to];
  }
  // IsUp/OnMessage run on the destination's own serialized context, outside
  // the transport lock — the upcall may Send.
  if (endpoint == nullptr || !endpoint->IsUp()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.messages_dropped;
    ReleasePayloadLocked(msg.payload);
    return;
  }
  endpoint->OnMessage(msg);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.messages_delivered;
  ReleasePayloadLocked(msg.payload);
}

}  // namespace tpc::runtime
