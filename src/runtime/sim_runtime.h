// SimRuntime: the deterministic Runtime backend — a stateless forwarding
// adapter over SimContext.
//
// Every call maps 1:1 onto the call the engines made before the seam
// existed (events().ScheduleAfter, events().Cancel, now(), NextTxnId), in
// the same order, returning the same EventId values. The adapter is
// therefore bit-identity-preserving by construction: frozen traces, the
// torture matrix, and all sweeps exercise it on every run.
//
// ArmTimer moves the caller's TimerCallback into the event slab via
// InlineFunction's same-type adoption, so the adapter adds zero heap
// allocations to the hot path (proven by the counting-allocator test in
// tests/messaging_test.cc).

#ifndef TPC_RUNTIME_SIM_RUNTIME_H_
#define TPC_RUNTIME_SIM_RUNTIME_H_

#include <utility>

#include "runtime/runtime.h"
#include "sim/sim_context.h"

namespace tpc::runtime {

class SimRuntime final : public Runtime {
 public:
  explicit SimRuntime(sim::SimContext* ctx) : ctx_(ctx) {}

  sim::Time Now() const override { return ctx_->now(); }

  TimerId ArmTimer(sim::Time delay, TimerCallback fn) override {
    return ctx_->events().ScheduleAfter(delay, std::move(fn));
  }

  bool CancelTimer(TimerId id) override { return ctx_->events().Cancel(id); }

  uint64_t NextTxnId() override { return ctx_->NextTxnId(); }

 private:
  sim::SimContext* ctx_;
};

}  // namespace tpc::runtime

#endif  // TPC_RUNTIME_SIM_RUNTIME_H_
