#include "runtime/live_runtime.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace tpc::runtime {

// --- TimerWheel -------------------------------------------------------------

TimerId TimerWheel::Arm(sim::Time deadline_us, TimerCallback fn,
                        LiveNodeRuntime* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.owner = owner;
  s.deadline = deadline_us;
  ++s.gen;
  s.armed = true;
  // Hash by deadline tick; anything already due lands in the next tick's
  // bucket so Advance picks it up on the following pass.
  int64_t target_tick = deadline_us / tick_us_;
  if (target_tick <= last_tick_) target_tick = last_tick_ + 1;
  buckets_[static_cast<size_t>(target_tick) % kBuckets].push_back(
      Entry{slot, s.gen});
  return (static_cast<TimerId>(s.gen) << 32) | slot;
}

bool TimerWheel::Cancel(TimerId id) {
  const uint32_t slot = static_cast<uint32_t>(id & 0xffffffffu);
  const uint32_t gen = static_cast<uint32_t>(id >> 32);
  std::lock_guard<std::mutex> lock(mu_);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.armed || s.gen != gen) return false;
  s.armed = false;
  s.fn = TimerCallback();
  s.owner = nullptr;
  free_.push_back(slot);
  // The bucket entry (if still queued) becomes stale and is skipped by the
  // gen check in Advance/Fire.
  return true;
}

void TimerWheel::Advance(sim::Time now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now_tick = now_us / tick_us_;
  if (now_tick <= last_tick_) return;
  // Scan every bucket the window passed; a full wrap covers them all.
  const int64_t span =
      std::min<int64_t>(now_tick - last_tick_, static_cast<int64_t>(kBuckets));
  for (int64_t i = 1; i <= span; ++i) {
    auto& bucket = buckets_[static_cast<size_t>(last_tick_ + i) % kBuckets];
    size_t keep = 0;
    for (const Entry e : bucket) {
      if (e.slot >= slots_.size()) continue;
      Slot& s = slots_[e.slot];
      if (!s.armed || s.gen != e.gen) continue;  // cancelled or re-used
      if (s.deadline > now_us) {
        bucket[keep++] = e;  // future wrap of this bucket
        continue;
      }
      // Due: post a fire task to the owner. The slot stays armed — Cancel
      // on the node's thread can still win until the task body claims it.
      LiveNodeRuntime* owner = s.owner;
      TimerWheel* wheel = this;
      const uint32_t slot = e.slot;
      const uint32_t gen = e.gen;
      owner->Post(Task([wheel, slot, gen] { wheel->Fire(slot, gen); }));
    }
    bucket.resize(keep);
  }
  last_tick_ = now_tick;
}

void TimerWheel::Fire(uint32_t slot, uint32_t gen) {
  TimerCallback fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Slot& s = slots_[slot];
    if (!s.armed || s.gen != gen) return;  // cancelled after posting
    s.armed = false;
    fn = std::move(s.fn);
    s.fn = TimerCallback();
    s.owner = nullptr;
    free_.push_back(slot);
  }
  fn();  // outside the wheel lock: the callback may arm/cancel timers
}

// --- LiveNodeRuntime --------------------------------------------------------

sim::Time LiveNodeRuntime::Now() const { return rt_->NowUs(); }

TimerId LiveNodeRuntime::ArmTimer(sim::Time delay, TimerCallback fn) {
  return rt_->wheel_.Arm(rt_->NowUs() + delay, std::move(fn), this);
}

bool LiveNodeRuntime::CancelTimer(TimerId id) { return rt_->wheel_.Cancel(id); }

uint64_t LiveNodeRuntime::NextTxnId() { return rt_->NextTxnId(); }

void LiveNodeRuntime::Post(Task task) {
  bool enqueue = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    mailbox_.push_back(std::move(task));
    if (!scheduled_) {
      scheduled_ = true;
      enqueue = true;
    }
  }
  if (enqueue) rt_->Enqueue(this);
}

// --- LiveRuntime ------------------------------------------------------------

LiveRuntime::LiveRuntime(Options options)
    : options_(options),
      epoch_(std::chrono::steady_clock::now()),
      wheel_(this, options.timer_tick_us) {
  TPC_CHECK(options_.worker_threads >= 1);
  TPC_CHECK(options_.timer_tick_us >= 1);
}

LiveRuntime::~LiveRuntime() { Stop(); }

LiveNodeRuntime* LiveRuntime::AddNode(const std::string& name) {
  TPC_CHECK(!started_);
  nodes_.emplace_back(new LiveNodeRuntime(this, name));
  return nodes_.back().get();
}

void LiveRuntime::Start() {
  TPC_CHECK(!started_);
  started_ = true;
  stopping_ = false;
  workers_.reserve(static_cast<size_t>(options_.worker_threads));
  for (int i = 0; i < options_.worker_threads; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
  ticker_ = std::thread([this] { TickLoop(); });
}

void LiveRuntime::Stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(ready_mu_);
    stopping_ = true;
  }
  ready_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  if (ticker_.joinable()) ticker_.join();
  started_ = false;
}

sim::Time LiveRuntime::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void LiveRuntime::WaitIdle() {
  std::unique_lock<std::mutex> lock(ready_mu_);
  idle_cv_.wait(lock, [this] { return ready_.empty() && running_ == 0; });
}

void LiveRuntime::Enqueue(LiveNodeRuntime* node) {
  {
    std::lock_guard<std::mutex> lock(ready_mu_);
    ready_.push_back(node);
  }
  ready_cv_.notify_one();
}

void LiveRuntime::WorkerLoop() {
  std::deque<Task> batch;
  for (;;) {
    LiveNodeRuntime* node;
    {
      std::unique_lock<std::mutex> lock(ready_mu_);
      ready_cv_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
      if (stopping_) return;
      node = ready_.front();
      ready_.pop_front();
      ++running_;
    }
    // Exclusive run rights on `node` until we release its scheduled flag.
    {
      std::lock_guard<std::mutex> lock(node->mu_);
      batch.swap(node->mailbox_);
    }
    for (Task& t : batch) t();
    batch.clear();
    bool requeue;
    {
      std::lock_guard<std::mutex> lock(node->mu_);
      requeue = !node->mailbox_.empty();
      if (!requeue) node->scheduled_ = false;
    }
    {
      std::lock_guard<std::mutex> lock(ready_mu_);
      if (requeue) ready_.push_back(node);
      --running_;
      if (ready_.empty() && running_ == 0) idle_cv_.notify_all();
    }
    if (requeue) ready_cv_.notify_one();
  }
}

void LiveRuntime::TickLoop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(ready_mu_);
      if (stopping_) return;
    }
    wheel_.Advance(NowUs());
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.timer_tick_us));
  }
}

}  // namespace tpc::runtime
