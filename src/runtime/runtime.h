// Runtime: the execution-environment seam the protocol engines code against.
//
// TransactionManager, LogManager, and LockManager never touch a clock, a
// timer queue, or a txn-id counter directly — they go through this interface.
// Two backends exist:
//
//   - SimRuntime (sim_runtime.h): forwards verbatim to the deterministic
//     SimContext/EventQueue. Same calls, same order, same EventId values —
//     the sim path is bit-identical to pre-seam code, so frozen traces, the
//     torture matrix, and every sweep remain the correctness oracle.
//   - LiveRuntime (live_runtime.h): real threads. Now() is a monotonic
//     wall clock, timers live on a hashed timer wheel driven by a tick
//     thread, and callbacks are posted to the owning node's mailbox so each
//     node's protocol code stays single-threaded (actor model).
//
// Contract every backend guarantees to the engines:
//   - Now() is monotonic non-decreasing, microseconds.
//   - ArmTimer(delay, fn) runs fn exactly once at >= Now()+delay unless
//     cancelled first; fn runs on the owning node's execution context
//     (the sim event loop, or the node's serialized mailbox).
//   - CancelTimer(id) returns true iff it prevented the run: a timer is
//     run exactly once XOR cancelled-true exactly once. Engines rely on
//     this for their armed-flag discipline (TPC_CHECK(Cancel(...))).
//   - NextTxnId() is unique across the cluster sharing the runtime family
//     (sim: the shared SimContext counter; live: one atomic).
//
// Sends and storage forces stay on their existing seams — net::Transport
// (transport.h) and wal::StorageBackend (storage_backend.h) — which the
// live backend implements with real channels and a real fsync'd file; this
// interface covers the ambient services (clock, timers, ids) that would
// otherwise weld the engines to SimContext.

#ifndef TPC_RUNTIME_RUNTIME_H_
#define TPC_RUNTIME_RUNTIME_H_

#include <cstdint>

#include "sim/event_queue.h"

namespace tpc::runtime {

/// Timer handles reuse the sim kernel's (generation << 32 | slot) encoding;
/// LiveRuntime's wheel mints ids with the same stale-handle-safe scheme.
using TimerId = sim::EventId;

/// Timer callbacks are the sim kernel's callback type so the sim backend
/// can pass them through to EventQueue without re-wrapping (and without
/// allocating — see InlineFunction::emplace's same-type adoption).
using TimerCallback = sim::EventQueue::Callback;

class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Current time in microseconds. Simulated time or monotonic wall clock.
  virtual sim::Time Now() const = 0;

  /// Arms a one-shot timer `delay` microseconds from Now().
  virtual TimerId ArmTimer(sim::Time delay, TimerCallback fn) = 0;

  /// Cancels a pending timer. True iff the callback will not run.
  virtual bool CancelTimer(TimerId id) = 0;

  /// Cluster-unique transaction ids (global across nodes, as the paper's
  /// transaction identifiers are).
  virtual uint64_t NextTxnId() = 0;
};

}  // namespace tpc::runtime

#endif  // TPC_RUNTIME_RUNTIME_H_
