#include "analysis/cost_model.h"

#include "util/logging.h"

namespace tpc::analysis {

std::string_view Table3VariantName(Table3Variant variant) {
  switch (variant) {
    case Table3Variant::kBasic2PC: return "Basic 2PC";
    case Table3Variant::kPaReadOnly: return "PA & Read Only";
    case Table3Variant::kPaLastAgent: return "PA & Last Agent";
    case Table3Variant::kPaUnsolicitedVote: return "PA & Unsolicited Vote";
    case Table3Variant::kPaLeaveOut: return "PA & Leave-Out";
    case Table3Variant::kPaVoteReliable: return "PA & Vote Reliable";
    case Table3Variant::kPaWaitForOutcome: return "PA & Wait For Outcome";
    case Table3Variant::kPaSharedLogs: return "PA & Shared Logs";
    case Table3Variant::kPaLongLocks: return "PA & Long Locks";
  }
  return "?";
}

std::vector<Table3Variant> AllTable3Variants() {
  return {Table3Variant::kBasic2PC,        Table3Variant::kPaReadOnly,
          Table3Variant::kPaLastAgent,     Table3Variant::kPaUnsolicitedVote,
          Table3Variant::kPaLeaveOut,      Table3Variant::kPaVoteReliable,
          Table3Variant::kPaWaitForOutcome, Table3Variant::kPaSharedLogs,
          Table3Variant::kPaLongLocks};
}

CostTriplet Table3Cost(Table3Variant variant, uint64_t n, uint64_t m) {
  TPC_CHECK(n >= 1);
  TPC_CHECK(m <= n - 1);  // the coordinator itself is not an "m member"
  CostTriplet base;
  base.flows = 4 * (n - 1);
  base.writes = 3 * n - 1;
  base.forced = 2 * n - 1;
  switch (variant) {
    case Table3Variant::kBasic2PC:
      return base;
    case Table3Variant::kPaReadOnly:
      // An RO member skips the decision/ack flows and all three of its log
      // writes (two of them forced).
      return {base.flows - 2 * m, base.writes - 3 * m, base.forced - 2 * m};
    case Table3Variant::kPaLastAgent:
      // Prepare+vote collapse into the single YES-vote flow, and the ack is
      // implied: two flows saved per last agent; logging unchanged.
      return {base.flows - 2 * m, base.writes, base.forced};
    case Table3Variant::kPaUnsolicitedVote:
      // The Prepare flow disappears (the vote arrives on its own).
      return {base.flows - m, base.writes, base.forced};
    case Table3Variant::kPaLeaveOut:
      // A left-out member exchanges nothing and logs nothing.
      return {base.flows - 4 * m, base.writes - 3 * m, base.forced - 2 * m};
    case Table3Variant::kPaVoteReliable:
      // The explicit ack becomes an implied one.
      return {base.flows - m, base.writes, base.forced};
    case Table3Variant::kPaWaitForOutcome:
      // Normal-case costs are unchanged; the benefit is in failure cases.
      return base;
    case Table3Variant::kPaSharedLogs:
      // The member's prepared and committed records ride the shared log's
      // forces: two forced writes per member become non-forced.
      return {base.flows, base.writes, base.forced - 2 * m};
    case Table3Variant::kPaLongLocks:
      // The ack piggybacks on the next transaction's first data message.
      return {base.flows - m, base.writes, base.forced};
  }
  return base;
}

std::vector<Table2Row> Table2Expected() {
  // See DESIGN.md section 3 for the reconstruction of this table from the
  // paper's prose (the printed table has OCR noise).
  return {
      {"Basic 2PC", {2, 2, 1}, {2, 3, 2}},
      {"PN", {2, 3, 2}, {2, 4, 3}},
      {"PA, commit", {2, 2, 1}, {2, 3, 2}},
      {"PA, abort (NO vote)", {2, 0, 0}, {1, 0, 0}},
      {"PA, read-only", {1, 0, 0}, {1, 0, 0}},
      {"PA & last agent", {1, 3, 2}, {1, 2, 1}},
      {"PA & unsolicited vote", {1, 2, 1}, {2, 3, 2}},
      {"PA & leave-out", {0, 0, 0}, {0, 0, 0}},
      {"PA & vote reliable", {2, 2, 1}, {1, 3, 2}},
      {"PA & wait for outcome", {2, 2, 1}, {2, 3, 2}},
      {"PA & shared log", {2, 2, 1}, {2, 3, 0}},
  };
}

std::string_view Table4VariantName(Table4Variant variant) {
  switch (variant) {
    case Table4Variant::kBasic2PC: return "Basic 2PC";
    case Table4Variant::kLongLocks: return "PA & Long Locks (not last agent)";
    case Table4Variant::kLongLocksLastAgent:
      return "PA & Long Locks (last agent)";
  }
  return "?";
}

CostTriplet Table4Cost(Table4Variant variant, uint64_t r) {
  // Two members per transaction: the baseline costs 4 flows, 5 writes
  // (2 coordinator + 3 subordinate), 3 forced (1 + 2) per transaction.
  switch (variant) {
    case Table4Variant::kBasic2PC:
      return {4 * r, 5 * r, 3 * r};
    case Table4Variant::kLongLocks:
      // The ack piggybacks on the next transaction's data: 3 flows each.
      return {3 * r, 5 * r, 3 * r};
    case Table4Variant::kLongLocksLastAgent:
      // Two transactions commit in three flows (vote-yes / commit+vote-yes /
      // commit), per the paper.
      return {3 * r / 2, 5 * r, 3 * r};
  }
  return {};
}

double GroupCommitExpectedForces(uint64_t n, uint64_t group_size,
                                 uint64_t forces_per_txn) {
  if (group_size == 0) group_size = 1;
  return static_cast<double>(n * forces_per_txn) /
         static_cast<double>(group_size);
}

}  // namespace tpc::analysis
