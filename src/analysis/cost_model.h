// Closed-form cost formulas from the paper's Section 4/5 analysis.
//
// The benches that reproduce Tables 2-4 print these analytic values next to
// the counts measured from the simulation, so any divergence between the
// implementation and the paper's accounting is immediately visible.

#ifndef TPC_ANALYSIS_COST_MODEL_H_
#define TPC_ANALYSIS_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tpc::analysis {

/// Total (flows, log writes, forced writes) — the triplet of Tables 3 and 4.
struct CostTriplet {
  uint64_t flows = 0;
  uint64_t writes = 0;
  uint64_t forced = 0;

  bool operator==(const CostTriplet&) const = default;
};

/// The protocol variants analyzed by Table 3 (n participants, m of them
/// using the optimization).
enum class Table3Variant {
  kBasic2PC,
  kPaReadOnly,
  kPaLastAgent,
  kPaUnsolicitedVote,
  kPaLeaveOut,
  kPaVoteReliable,
  kPaWaitForOutcome,
  kPaSharedLogs,
  kPaLongLocks,
};

std::string_view Table3VariantName(Table3Variant variant);

/// All Table 3 variants in the paper's row order.
std::vector<Table3Variant> AllTable3Variants();

/// Paper formulas: basic 2PC costs 4(n-1) flows, 3n-1 writes, 2n-1 forced;
/// each optimization subtracts its per-member savings for the m members
/// that use it.
CostTriplet Table3Cost(Table3Variant variant, uint64_t n, uint64_t m);

/// Per-role cost of a two-participant transaction (Table 2): messages the
/// role sends, and its log writes (total, forced).
struct RoleCost {
  uint64_t flows = 0;
  uint64_t writes = 0;
  uint64_t forced = 0;

  bool operator==(const RoleCost&) const = default;
};

/// One Table 2 row.
struct Table2Row {
  std::string label;
  RoleCost coordinator;
  RoleCost subordinate;
};

/// The reconstructed Table 2 (see DESIGN.md for the reconstruction notes).
std::vector<Table2Row> Table2Expected();

/// Table 4: long-locks cost over r successive two-member transactions.
enum class Table4Variant {
  kBasic2PC,
  kLongLocks,           ///< PA + long locks, not last agent: 3r flows
  kLongLocksLastAgent,  ///< PA + long locks + last agent: 3r/2 flows
};

std::string_view Table4VariantName(Table4Variant variant);

CostTriplet Table4Cost(Table4Variant variant, uint64_t r);

/// Group commit (Section 4): expected physical forces for n transactions
/// with group size m, assuming saturating arrivals (each transaction issues
/// three forces in the two-participant configuration; batching divides).
double GroupCommitExpectedForces(uint64_t n, uint64_t group_size,
                                 uint64_t forces_per_txn = 3);

}  // namespace tpc::analysis

#endif  // TPC_ANALYSIS_COST_MODEL_H_
