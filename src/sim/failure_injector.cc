#include "sim/failure_injector.h"

#include <utility>

#include "util/logging.h"

namespace tpc::sim {

void FailureInjector::RegisterNode(const std::string& node, CrashFn crash,
                                   CrashFn restart) {
  NodeState& st = nodes_[InternNode(node)];
  st.crash = std::move(crash);
  st.restart = std::move(restart);
}

uint32_t FailureInjector::InternNode(const std::string& node) {
  auto [it, inserted] =
      node_ids_.emplace(node, static_cast<uint32_t>(nodes_.size()));
  if (inserted) {
    nodes_.emplace_back();
    cells_.emplace_back();
  }
  return it->second;
}

uint32_t FailureInjector::InternPoint(const std::string& point) {
  auto [it, inserted] =
      point_ids_.emplace(point, static_cast<uint32_t>(point_count_));
  if (inserted) ++point_count_;
  return it->second;
}

FailureInjector::PointState& FailureInjector::Cell(uint32_t node,
                                                   uint32_t point) {
  TPC_CHECK(node < cells_.size());
  auto& per_node = cells_[node];
  if (point >= per_node.size()) {
    per_node.resize(point_count_ > point ? point_count_ : point + 1);
  }
  return per_node[point];
}

void FailureInjector::ArmCrash(const std::string& node,
                               const std::string& point, int occurrence,
                               int epoch) {
  TPC_CHECK(occurrence >= 1);
  const uint32_t n = InternNode(node);
  const uint32_t p = InternPoint(point);
  Cell(n, p).armed = true;
  triggers_[PairKey(n, p)].push_back(Trigger{occurrence, epoch});
}

bool FailureInjector::CrashPoint(uint32_t node, uint32_t point) {
  TPC_CHECK(node < cells_.size());
  auto& per_node = cells_[node];
  if (point >= per_node.size()) {
    // First hit on a point interned after this node's row was last sized.
    per_node.resize(point_count_ > point ? point_count_ : point + 1);
  }
  PointState& cell = per_node[point];
  ++cell.total_hits;
  const uint64_t count = ++cell.epoch_hits;
  if (!cell.armed) return false;

  auto it = triggers_.find(PairKey(node, point));
  if (it == triggers_.end()) return false;
  const int epoch = nodes_[node].epoch;
  for (auto& t : it->second) {
    if (t.fired) continue;
    if (t.epoch != kAnyEpoch && t.epoch != epoch) continue;
    if (count != static_cast<uint64_t>(t.occurrence)) continue;
    t.fired = true;
    CrashNode(node);
    return true;
  }
  return false;
}

bool FailureInjector::CrashPoint(const std::string& node,
                                 const std::string& point) {
  return CrashPoint(InternNode(node), InternPoint(point));
}

void FailureInjector::CrashNode(uint32_t node) {
  NodeState& st = nodes_[node];
  TPC_CHECK(st.crash != nullptr);
  st.crash();
  // New epoch: occurrence counters restart so triggers can target the
  // post-recovery lifetime of the node.
  ++st.epoch;
  for (PointState& cell : cells_[node]) cell.epoch_hits = 0;
}

void FailureInjector::CrashNow(const std::string& node) {
  auto it = node_ids_.find(node);
  TPC_CHECK(it != node_ids_.end());
  CrashNode(it->second);
}

void FailureInjector::RestartNow(const std::string& node) {
  auto it = node_ids_.find(node);
  TPC_CHECK(it != node_ids_.end());
  NodeState& st = nodes_[it->second];
  TPC_CHECK(st.restart != nullptr);
  st.restart();
}

void FailureInjector::ScheduleCrash(const std::string& node, Time at) {
  TPC_CHECK(events_ != nullptr);
  events_->ScheduleAt(at, [this, node] { CrashNow(node); });
}

void FailureInjector::ScheduleRestartAfter(const std::string& node,
                                           Time delay) {
  TPC_CHECK(events_ != nullptr);
  events_->ScheduleAfter(delay, [this, node] { RestartNow(node); });
}

void FailureInjector::ScheduleLinkFlap(const std::string& a,
                                       const std::string& b, Time down_at,
                                       Time up_at) {
  TPC_CHECK(events_ != nullptr);
  TPC_CHECK(link_fn_ != nullptr);
  TPC_CHECK(down_at <= up_at);
  events_->ScheduleAt(down_at, [this, a, b] { link_fn_(a, b, true); });
  events_->ScheduleAt(up_at, [this, a, b] { link_fn_(a, b, false); });
}

uint64_t FailureInjector::hits(const std::string& node,
                               const std::string& point) const {
  auto n = node_ids_.find(node);
  auto p = point_ids_.find(point);
  if (n == node_ids_.end() || p == point_ids_.end()) return 0;
  const auto& per_node = cells_[n->second];
  if (p->second >= per_node.size()) return 0;
  return per_node[p->second].total_hits;
}

uint64_t FailureInjector::epoch_hits(const std::string& node,
                                     const std::string& point) const {
  auto n = node_ids_.find(node);
  auto p = point_ids_.find(point);
  if (n == node_ids_.end() || p == point_ids_.end()) return 0;
  const auto& per_node = cells_[n->second];
  if (p->second >= per_node.size()) return 0;
  return per_node[p->second].epoch_hits;
}

int FailureInjector::node_epoch(const std::string& node) const {
  auto n = node_ids_.find(node);
  return n == node_ids_.end() ? 0 : nodes_[n->second].epoch;
}

void FailureInjector::DisarmAll() {
  triggers_.clear();
  for (auto& per_node : cells_) {
    for (PointState& cell : per_node) cell.armed = false;
  }
}

void FailureInjector::Reset() {
  triggers_.clear();
  for (auto& per_node : cells_) {
    for (PointState& cell : per_node) cell = PointState{};
  }
  // Drop registrations too: an injector that outlives a harness must not
  // keep crash callbacks pointing into destroyed nodes. Interned ids stay
  // valid so components that cached them keep working after re-registration.
  for (NodeState& st : nodes_) st = NodeState{};
}

}  // namespace tpc::sim
