#include "sim/failure_injector.h"

#include "util/logging.h"

namespace tpc::sim {

void FailureInjector::RegisterNode(const std::string& node, CrashFn crash) {
  nodes_[node] = std::move(crash);
}

void FailureInjector::ArmCrash(const std::string& node,
                               const std::string& point, int occurrence) {
  TPC_CHECK(occurrence >= 1);
  triggers_[Key(node, point)].push_back(Trigger{occurrence});
}

bool FailureInjector::CrashPoint(const std::string& node,
                                 const std::string& point) {
  const std::string key = Key(node, point);
  uint64_t count = ++hit_counts_[key];
  auto it = triggers_.find(key);
  if (it == triggers_.end()) return false;
  for (auto& t : it->second) {
    if (!t.fired && count == static_cast<uint64_t>(t.occurrence)) {
      t.fired = true;
      CrashNow(node);
      return true;
    }
  }
  return false;
}

void FailureInjector::CrashNow(const std::string& node) {
  auto it = nodes_.find(node);
  TPC_CHECK(it != nodes_.end());
  it->second();
}

uint64_t FailureInjector::hits(const std::string& node,
                               const std::string& point) const {
  auto it = hit_counts_.find(Key(node, point));
  return it == hit_counts_.end() ? 0 : it->second;
}

void FailureInjector::Reset() {
  triggers_.clear();
  hit_counts_.clear();
}

}  // namespace tpc::sim
