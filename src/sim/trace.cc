#include "sim/trace.h"

#include "util/format.h"

namespace tpc::sim {

std::string_view TraceKindToString(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSend: return "SEND";
    case TraceKind::kReceive: return "RECV";
    case TraceKind::kLogWrite: return "WRITE";
    case TraceKind::kLogForce: return "FORCE";
    case TraceKind::kState: return "STATE";
    case TraceKind::kCrash: return "CRASH";
    case TraceKind::kRecover: return "RECOVER";
    case TraceKind::kHeuristic: return "HEURISTIC";
    case TraceKind::kLock: return "LOCK";
    case TraceKind::kUnlock: return "UNLOCK";
    case TraceKind::kApp: return "APP";
  }
  return "?";
}

size_t Trace::Count(TraceKind kind, std::string_view node) const {
  size_t n = 0;
  for (const auto& e : entries_)
    if (e.kind == kind && (node.empty() || e.node == node)) ++n;
  return n;
}

size_t Trace::CountTxn(uint64_t txn) const {
  size_t n = 0;
  for (const auto& e : entries_)
    if (e.txn == txn) ++n;
  return n;
}

void Trace::AppendEntry(std::string* out, const TraceEntry& e) {
  std::string who = e.node;
  if (!e.peer.empty()) who += " -> " + e.peer;
  StringAppendF(out, "[%8lldus] %-24s %-9s %-28s",
                static_cast<long long>(e.at), who.c_str(),
                std::string(TraceKindToString(e.kind)).c_str(),
                e.detail.c_str());
  if (e.txn != 0)
    StringAppendF(out, " (txn %llu)", static_cast<unsigned long long>(e.txn));
  *out += "\n";
}

std::string Trace::Render() const {
  std::string out;
  for (const auto& e : entries_) AppendEntry(&out, e);
  return out;
}

std::string Trace::Render(uint64_t txn) const {
  std::string out;
  ForEach([txn](const TraceEntry& e) { return e.txn == txn; },
          [&out](const TraceEntry& e) { AppendEntry(&out, e); });
  return out;
}

}  // namespace tpc::sim
