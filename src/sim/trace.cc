#include "sim/trace.h"

#include "util/format.h"

namespace tpc::sim {

std::string_view TraceKindToString(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSend: return "SEND";
    case TraceKind::kReceive: return "RECV";
    case TraceKind::kLogWrite: return "WRITE";
    case TraceKind::kLogForce: return "FORCE";
    case TraceKind::kState: return "STATE";
    case TraceKind::kCrash: return "CRASH";
    case TraceKind::kRecover: return "RECOVER";
    case TraceKind::kHeuristic: return "HEURISTIC";
    case TraceKind::kLock: return "LOCK";
    case TraceKind::kUnlock: return "UNLOCK";
    case TraceKind::kApp: return "APP";
  }
  return "?";
}

std::vector<TraceEntry> Trace::OfKind(TraceKind kind) const {
  std::vector<TraceEntry> out;
  for (const auto& e : entries_)
    if (e.kind == kind) out.push_back(e);
  return out;
}

std::vector<TraceEntry> Trace::OfTxn(uint64_t txn) const {
  std::vector<TraceEntry> out;
  for (const auto& e : entries_)
    if (e.txn == txn) out.push_back(e);
  return out;
}

size_t Trace::Count(TraceKind kind, std::string_view node) const {
  size_t n = 0;
  for (const auto& e : entries_)
    if (e.kind == kind && (node.empty() || e.node == node)) ++n;
  return n;
}

std::string Trace::RenderEntries(const std::vector<TraceEntry>& es) const {
  std::string out;
  for (const auto& e : es) {
    std::string who = e.node;
    if (!e.peer.empty()) who += " -> " + e.peer;
    StringAppendF(&out, "[%8lldus] %-24s %-9s %-28s",
                  static_cast<long long>(e.at), who.c_str(),
                  std::string(TraceKindToString(e.kind)).c_str(),
                  e.detail.c_str());
    if (e.txn != 0)
      StringAppendF(&out, " (txn %llu)", static_cast<unsigned long long>(e.txn));
    out += "\n";
  }
  return out;
}

std::string Trace::Render() const { return RenderEntries(entries_); }

std::string Trace::Render(uint64_t txn) const {
  return RenderEntries(OfTxn(txn));
}

}  // namespace tpc::sim
