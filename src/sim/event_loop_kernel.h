// Event-loop microbenchmark kernel, shared by bench/event_queue_bench and
// tests/event_queue_bench_test.
//
// The kernel drives a queue implementation through the simulator's real
// hot-path mix: batches of message-delivery-like events whose closures are
// too big for std::function's small-buffer store (a network delivery
// captures ~16-32 bytes), plus armed-then-cancelled timers (the TM arms a
// timeout per send and nearly always cancels it). LegacyEventQueue is a
// frozen copy of the seed implementation so the speedup of the slab kernel
// is measured in-process and reported in BENCH_event_loop.json.

#ifndef TPC_SIM_EVENT_LOOP_KERNEL_H_
#define TPC_SIM_EVENT_LOOP_KERNEL_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/event_queue.h"

namespace tpc::sim {

/// The seed event queue (two hash-map lookups per Step, std::function
/// handlers, cancellation via an unordered_set). Kept verbatim as the
/// benchmark baseline; production code uses EventQueue.
class LegacyEventQueue {
 public:
  Time now() const { return now_; }

  EventId ScheduleAt(Time at, std::function<void()> fn) {
    EventId id = next_id_++;
    heap_.push(Entry{at, next_seq_++, id});
    handlers_.emplace(id, std::move(fn));
    return id;
  }

  EventId ScheduleAfter(Time delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  bool Cancel(EventId id) {
    auto it = handlers_.find(id);
    if (it == handlers_.end()) return false;
    handlers_.erase(it);
    cancelled_.insert(id);
    return true;
  }

  bool Step() {
    while (!heap_.empty()) {
      Entry e = heap_.top();
      heap_.pop();
      auto c = cancelled_.find(e.id);
      if (c != cancelled_.end()) {
        cancelled_.erase(c);
        continue;
      }
      auto it = handlers_.find(e.id);
      std::function<void()> fn = std::move(it->second);
      handlers_.erase(it);
      now_ = e.at;
      fn();
      return true;
    }
    return false;
  }

  uint64_t Run(uint64_t max_events = UINT64_MAX) {
    uint64_t n = 0;
    while (n < max_events && Step()) ++n;
    return n;
  }

 private:
  struct Entry {
    Time at;
    uint64_t seq;
    EventId id;
    bool operator>(const Entry& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
  std::unordered_set<EventId> cancelled_;
};

struct EventLoopKernelResult {
  uint64_t events = 0;      ///< handlers actually executed
  uint64_t cancelled = 0;   ///< timers armed and cancelled
  double wall_seconds = 0;
  double events_per_sec = 0;
};

/// Runs the mixed schedule/cancel/run workload until ~`total_events`
/// handlers have executed. Works with EventQueue and LegacyEventQueue.
template <typename Queue>
EventLoopKernelResult RunEventLoopKernel(Queue& q, uint64_t total_events) {
  EventLoopKernelResult r;
  // Delivery-closure ballast: the size of a network delivery capture.
  struct Ballast {
    uint64_t a = 0, b = 0, c = 0;
  };
  Ballast ballast;
  uint64_t done = 0;
  const auto start = std::chrono::steady_clock::now();
  while (done < total_events) {
    // A burst of deliveries at staggered times...
    for (int i = 0; i < 64; ++i) {
      q.ScheduleAfter(i % 7, [&done, ballast] {
        ++done;
        (void)ballast;
      });
    }
    // ...each send also arms a timeout that is cancelled on the ack.
    EventId timers[16];
    for (auto& t : timers)
      t = q.ScheduleAfter(1000000, [&done] { ++done; });
    for (auto& t : timers) {
      if (q.Cancel(t)) ++r.cancelled;
    }
    q.Run();
  }
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  r.events = done;
  r.events_per_sec =
      r.wall_seconds > 0 ? static_cast<double>(done) / r.wall_seconds : 0;
  return r;
}

}  // namespace tpc::sim

#endif  // TPC_SIM_EVENT_LOOP_KERNEL_H_
